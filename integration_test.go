package repro

// Cross-module integration tests: these drive the same end-to-end paths as
// the cmd binaries (train → persist → reload → evaluate) and assert the
// invariants that hold across package boundaries.

import (
	"math"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fedavg"
	"repro/internal/fl"
	"repro/internal/sched"
	"repro/internal/stats"
)

func tinyTrain(t *testing.T, sys *fl.System, arch core.Arch, seed int64) *core.Agent {
	t.Helper()
	agent, eps, err := experiments.TrainAgent(sys, experiments.TrainOptions{
		Episodes: 8, Hidden: []int{12}, Arch: arch, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(eps) != 8 {
		t.Fatalf("trained %d episodes", len(eps))
	}
	return agent
}

func TestEndToEndPipeline(t *testing.T) {
	sc := experiments.TestbedScenario(100)
	sys, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	agent := tinyTrain(t, sys, core.ArchJoint, 1)

	// Persist → reload → identical decisions (the fltrain → flsim path).
	path := filepath.Join(t.TempDir(), "agent.gob")
	if err := agent.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := core.LoadAgent(path)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := agent.Scheduler()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := loaded.Scheduler()
	if err != nil {
		t.Fatal(err)
	}
	ctx := sched.Context{Sys: sys, Clock: 250}
	f1, err := d1.Frequencies(ctx)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := d2.Frequencies(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatal("reloaded agent diverges")
		}
	}

	// Evaluate and check cross-module accounting: every iteration's cost
	// must decompose as T^k + λ·ΣE with the device-level equations.
	results, err := core.Evaluate(sys, []sched.Scheduler{d1, sched.MaxFreq{}}, 0, 25)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		for _, it := range r.Iterations {
			var maxT, sumE float64
			for i, ds := range it.Devices {
				dev := sys.Devices[i]
				wantCmp := dev.ComputeTime(sys.Tau, ds.FreqHz)
				if math.Abs(ds.ComputeTime-wantCmp) > 1e-9 {
					t.Fatalf("eq.(1) violated: %v vs %v", ds.ComputeTime, wantCmp)
				}
				wantE := dev.ComputeEnergy(sys.Tau, ds.FreqHz)
				if math.Abs(ds.ComputeEnergy-wantE) > 1e-6 {
					t.Fatalf("eq.(6) violated: %v vs %v", ds.ComputeEnergy, wantE)
				}
				if ds.TotalTime > maxT {
					maxT = ds.TotalTime
				}
				sumE += ds.ComputeEnergy + ds.TxEnergy
			}
			if math.Abs(it.Duration-maxT) > 1e-9 {
				t.Fatal("eq.(5) violated: duration != max total time")
			}
			if math.Abs(it.Cost-(it.Duration+sys.Lambda*sumE)) > 1e-6 {
				t.Fatal("eq.(9) violated: cost decomposition")
			}
		}
	}
}

func TestSeedReproducibility(t *testing.T) {
	// The whole pipeline is deterministic under a seed: two identical runs
	// produce bit-identical evaluation costs.
	run := func() []float64 {
		sc := experiments.TestbedScenario(7)
		sys, err := sc.Build()
		if err != nil {
			t.Fatal(err)
		}
		agent := tinyTrain(t, sys, core.ArchJoint, 3)
		drl, err := agent.Scheduler()
		if err != nil {
			t.Fatal(err)
		}
		its, err := sched.Run(sys, drl, 0, 20)
		if err != nil {
			t.Fatal(err)
		}
		return sched.Costs(its)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("iteration %d differs across identical runs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSchedulingNeverTouchesLearning(t *testing.T) {
	// The controller changes when rounds finish, never what FedAvg learns:
	// running the same federation under two different schedulers produces
	// bit-identical global models after the same number of rounds.
	cfg := fedavg.DefaultSyntheticConfig(3)
	cfg.SamplesMin, cfg.SamplesMax = 40, 60
	sc := experiments.TestbedScenario(5)
	sys, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}

	train := func(s sched.Scheduler) ([]float64, float64) {
		clients, _, err := fedavg.GenerateSynthetic(cfg, 9)
		if err != nil {
			t.Fatal(err)
		}
		fed, err := fedavg.NewFederation(clients, fedavg.NewLogisticModel(cfg.Dim, 0), 1, 0.05, 4)
		if err != nil {
			t.Fatal(err)
		}
		ses, err := fl.NewSession(sys, 0)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 5; k++ {
			ctx := sched.Context{Sys: sys, Clock: ses.Clock, Iter: k, LastBW: ses.LastBandwidths()}
			freqs, err := s.Frequencies(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := ses.Step(freqs); err != nil {
				t.Fatal(err)
			}
			fed.Round()
		}
		return fed.Global.Params(), ses.Clock
	}

	h, err := sched.NewHeuristic([]float64{3e6, 3e6, 3e6}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	pMax, clockMax := train(sched.MaxFreq{})
	pHeu, clockHeu := train(h)
	for i := range pMax {
		if pMax[i] != pHeu[i] {
			t.Fatal("scheduler changed the learned model")
		}
	}
	// But wall-clock must differ: the heuristic slows non-critical devices.
	if clockMax == clockHeu {
		t.Fatal("schedulers produced identical wall clocks — scheduling had no effect")
	}
}

func TestEvaluateStatisticallySane(t *testing.T) {
	// Oracle ≤ mean(Random) in cost; MaxFreq has minimal time among all.
	sc := experiments.TestbedScenario(9)
	sys, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	or, err := sched.NewOracle(0.05, 60)
	if err != nil {
		t.Fatal(err)
	}
	res, err := experiments.Compare("sanity", sc, tinyTrain(t, sys, core.ArchJoint, 2),
		experiments.CompareOptions{Iterations: 40, Runs: 2, StaticSamples: 3, IncludeExtras: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	orc, _ := res.Summary("oracle")
	rnd, _ := res.Summary("random")
	mf, _ := res.Summary("maxfreq")
	if orc.MeanCost >= rnd.MeanCost {
		t.Fatalf("oracle %v not better than random %v", orc.MeanCost, rnd.MeanCost)
	}
	for _, s := range res.Summaries {
		if mf.MeanTime > s.MeanTime+1e-9 {
			t.Fatalf("maxfreq time %v exceeds %s's %v", mf.MeanTime, s.Name, s.MeanTime)
		}
	}
	_ = or
	// Pooled sample counts line up with iterations × runs.
	if len(orc.Costs) != 80 {
		t.Fatalf("pooled %d samples", len(orc.Costs))
	}
	m := stats.Mean(orc.Costs)
	if math.Abs(m-orc.MeanCost) > 1e-9 {
		t.Fatal("summary mean inconsistent with pooled samples")
	}
}
