// Selection: compare the two straggler levers the literature offers —
// the paper's CPU-frequency control versus FedCS-style client selection
// (Nishio & Yonetani, cited in §VI) — inside the same cost model, and show
// why they must be composed carefully.
//
// Run with: go run ./examples/selection
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/bandwidth"
	"repro/internal/device"
	"repro/internal/fl"
	"repro/internal/sched"
	"repro/internal/trace"
)

func main() {
	// Ten devices; two of them ride the slow HSDPA bus and straggle badly.
	const n = 10
	devs := device.MustNewFleet(n, device.FleetParams{}, 17)
	traces := make([]*trace.Trace, n)
	for i := range traces {
		p := bandwidth.Walking4G()
		if i >= 8 {
			p = bandwidth.BusHSDPA() // stragglers: ~50× slower uplink
		}
		traces[i] = p.MustGenerate(fmt.Sprintf("%s-%02d", p.Name, i), 3000, 500+int64(i)*71)
	}
	sys := &fl.System{Devices: devs, Traces: traces, Tau: 1, ModelBytes: 25e6, Lambda: 0.2}
	if err := sys.Validate(); err != nil {
		log.Fatal(err)
	}

	initBW := make([]float64, n)
	for i, tr := range sys.Traces {
		initBW[i] = tr.Summary().Mean
	}
	heuristic, err := sched.NewHeuristic(initBW, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	deadline, err := sched.NewDeadlineSelector(60, 2)
	if err != nil {
		log.Fatal(err)
	}
	half, err := sched.NewRandomFraction(0.5, rand.New(rand.NewSource(9)))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("two straggler levers on a fleet with 2 bus-bound devices (150 rounds):")
	fmt.Println()
	fmt.Println("configuration                      cost    round(s)  energy(J)  devs/round  upd/s")
	for _, entry := range []struct {
		label string
		s     sched.Scheduler
		sel   sched.Selector
	}{
		{"all devices, max frequency     ", sched.MaxFreq{}, sched.FullParticipation{}},
		{"all devices, frequency control ", heuristic, sched.FullParticipation{}},
		{"deadline selection, max freq   ", sched.MaxFreq{}, deadline},
		{"random half, max frequency     ", sched.MaxFreq{}, half},
	} {
		rounds, err := sched.RunWithSelection(sys, entry.s, entry.sel, 0, 150)
		if err != nil {
			log.Fatal(err)
		}
		sum := sched.Summarize(rounds)
		fmt.Printf("%s  %6.1f  %8.1f  %9.1f  %10.1f  %5.3f\n",
			entry.label, sum.MeanCost, sum.MeanTime, sum.MeanEnergy,
			sum.MeanParticipants, sum.UpdatesPerSecond)
	}

	fmt.Println()
	fmt.Println("reading: selection buys short rounds by dropping the bus devices from")
	fmt.Println("training entirely (their data never contributes); frequency control")
	fmt.Println("keeps every device in the round and spends the barrier slack on energy")
	fmt.Println("instead. The levers are complementary, but composing them needs a")
	fmt.Println("mask-aware planner — see experiments.AblationSelection.")
}
