// Heterogeneous fleet: the paper's Fig. 8 scenario at a laptop-friendly
// size. Twenty devices draw their uplinks from five different mobility
// profiles (walking variants, bus, train) and their hardware from the §V-A
// distributions; the weight-shared DRL actor learns one per-device policy
// that serves them all.
//
// Run with: go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/bandwidth"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/experiments"
	"repro/internal/fl"
	"repro/internal/sched"
	"repro/internal/trace"
)

func main() {
	const n = 20
	devs := device.MustNewFleet(n, device.FleetParams{}, 11)

	// A deliberately diverse link mix: three walking variants plus bus
	// (HSDPA, 50× slower) and train (deep tunnel fades).
	profiles := []*bandwidth.Profile{
		bandwidth.Walking4G(),
		bandwidth.Bicycle4G(),
		bandwidth.Car4G(),
		bandwidth.Train4G(),
		bandwidth.Walking4G(),
	}
	traces := make([]*trace.Trace, n)
	for i := range traces {
		p := profiles[i%len(profiles)]
		traces[i] = p.MustGenerate(fmt.Sprintf("%s-%02d", p.Name, i), 4000, 1000+int64(i)*131)
	}
	sys := &fl.System{Devices: devs, Traces: traces, Tau: 1, ModelBytes: 25e6, Lambda: 0.2}
	if err := sys.Validate(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("fleet of %d devices across %d mobility profiles:\n", n, len(profiles))
	for i := 0; i < 5; i++ {
		d := sys.Devices[i]
		s := sys.Traces[i].Summary()
		fmt.Printf("  dev %2d: D=%.0f MB, c=%.1f cyc/bit, δmax=%.2f GHz, link %s mean %.2f MB/s\n",
			i, d.DataBits/device.BitsPerMB, d.CyclesPerBit, d.MaxFreqHz/device.GHz,
			sys.Traces[i].Name, s.Mean/1e6)
	}
	fmt.Println("  ...")

	// Weight-shared actor: one small network applied per device, so the
	// same policy generalizes across the whole heterogeneous fleet.
	agent, _, err := experiments.TrainAgent(sys, experiments.TrainOptions{
		Episodes: 150,
		Hidden:   []int{32, 32},
		Arch:     core.ArchShared,
		Seed:     3,
	})
	if err != nil {
		log.Fatal(err)
	}

	drl, err := agent.Scheduler()
	if err != nil {
		log.Fatal(err)
	}
	initBW := make([]float64, n)
	for i, tr := range sys.Traces {
		initBW[i] = tr.Summary().Mean
	}
	heuristic, err := sched.NewHeuristic(initBW, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	static, err := sched.NewStaticSampled(sys, 2, 0.05, rand.New(rand.NewSource(5)))
	if err != nil {
		log.Fatal(err)
	}
	oracle, err := sched.NewOracle(0.05, 60)
	if err != nil {
		log.Fatal(err)
	}
	results, err := core.Evaluate(sys,
		[]sched.Scheduler{drl, heuristic, static, sched.MaxFreq{}, oracle}, 0, 150)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nscheduler   mean cost   mean time   mean energy   P80 cost")
	for _, r := range results {
		fmt.Printf("%-10s  %9.2f  %9.2f  %11.2f  %9.2f\n",
			r.Name, r.MeanCost, r.MeanTime, r.MeanEnergy, r.CostCDF.Quantile(0.8))
	}

	// Show the learned per-device discrimination: frequency fractions the
	// agent assigns right now, against each device's current link quality.
	ctx := sched.Context{Sys: sys, Clock: 500}
	freqs, err := drl.Frequencies(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nlearned per-device allocation at t=500s (fraction of δmax vs current link):")
	for i := 0; i < 10; i++ {
		frac := freqs[i] / sys.Devices[i].MaxFreqHz
		link := sys.Traces[i].At(500)
		fmt.Printf("  dev %2d: δ = %4.0f%% of max   link now %6.2f MB/s (%s)\n",
			i, frac*100, link/1e6, sys.Traces[i].Name)
	}
}
