// Tradeoff: sweep the cost weight λ of the paper's objective (9) and print
// the learning-time vs energy frontier. A small λ says "finish fast, energy
// be damned"; a large λ trades iteration time for battery life. Each λ
// trains its own DRL agent, and the known-bandwidth planner's frontier is
// shown alongside as the model-based reference.
//
// Run with: go run ./examples/tradeoff
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/sched"
	"repro/internal/stats"
)

func main() {
	lambdas := []float64{0, 0.2, 0.5, 1, 2, 5}
	const iters = 150

	fmt.Println("λ sweep on the 3-device testbed (150 iterations each)")
	fmt.Println()
	fmt.Println("                ---- DRL agent ----      ---- planner (true mean BW) ----")
	fmt.Println("     λ          time      energy          time      energy")

	for _, lam := range lambdas {
		sc := experiments.TestbedScenario(42)
		sc.Lambda = lam
		sys, err := sc.Build()
		if err != nil {
			log.Fatal(err)
		}

		// DRL operating point at this λ.
		var drlTime, drlEnergy float64
		if lam == 0 {
			// Degenerate objective: optimal policy is run-at-max; skip
			// training and report that directly.
			its, err := sched.Run(sys, sched.MaxFreq{}, 0, iters)
			if err != nil {
				log.Fatal(err)
			}
			drlTime = stats.Mean(sched.Durations(its))
			drlEnergy = stats.Mean(sched.ComputeEnergies(its))
		} else {
			agent, _, err := experiments.TrainAgent(sys, experiments.TrainOptions{
				Episodes: 120, Hidden: []int{32, 32}, Arch: core.ArchJoint, Seed: 1,
			})
			if err != nil {
				log.Fatal(err)
			}
			drl, err := agent.Scheduler()
			if err != nil {
				log.Fatal(err)
			}
			its, err := sched.Run(sys, drl, 0, iters)
			if err != nil {
				log.Fatal(err)
			}
			drlTime = stats.Mean(sched.Durations(its))
			drlEnergy = stats.Mean(sched.ComputeEnergies(its))
		}

		// Model-based reference: the barrier-aware plan with each trace's
		// true long-run mean bandwidth.
		meanBW := make([]float64, sys.N())
		for i, tr := range sys.Traces {
			meanBW[i] = tr.Summary().Mean
		}
		var planTime, planEnergy float64
		if lam == 0 {
			its, err := sched.Run(sys, sched.MaxFreq{}, 0, iters)
			if err != nil {
				log.Fatal(err)
			}
			planTime = stats.Mean(sched.Durations(its))
			planEnergy = stats.Mean(sched.ComputeEnergies(its))
		} else {
			plan, err := sched.NewStatic(sys, meanBW, 0.05)
			if err != nil {
				log.Fatal(err)
			}
			its, err := sched.Run(sys, plan, 0, iters)
			if err != nil {
				log.Fatal(err)
			}
			planTime = stats.Mean(sched.Durations(its))
			planEnergy = stats.Mean(sched.ComputeEnergies(its))
		}

		fmt.Printf("  %4.1f      %8.2fs  %8.2fJ      %8.2fs  %8.2fJ\n",
			lam, drlTime, drlEnergy, planTime, planEnergy)
	}

	fmt.Println()
	fmt.Println("reading the frontier: as λ grows, both controllers surrender iteration")
	fmt.Println("time to cut CPU energy — the knob the parameter server exposes to the")
	fmt.Println("federated-learning operator (paper §III-B).")
}
