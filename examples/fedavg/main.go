// FedAvg end-to-end: couple the real federated-learning substrate (local
// SGD + weighted model averaging, eqs. 7–8) with the timing/energy
// simulator, and train a logistic-regression model across devices until the
// global loss meets the paper's quality constraint F(ω) < ε (eq. 10). The
// DRL frequency controller and the run-at-max default reach the same model
// quality — the controller never touches the learning — but at different
// wall-clock time and energy, which is the paper's entire point.
//
// Run with: go run ./examples/fedavg
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fedavg"
	"repro/internal/fl"
	"repro/internal/sched"
)

func main() {
	// Federated task: 3 clients, non-IID synthetic data, logistic model.
	dataCfg := fedavg.DefaultSyntheticConfig(3)
	clients, _, err := fedavg.GenerateSynthetic(dataCfg, 7)
	if err != nil {
		log.Fatal(err)
	}

	// Timing substrate: the same 3-device testbed the paper uses.
	sc := experiments.TestbedScenario(42)
	sys, err := sc.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Train the frequency controller offline (Algorithm 1).
	agent, _, err := experiments.TrainAgent(sys, experiments.TrainOptions{
		Episodes: 100, Hidden: []int{64, 64}, Arch: core.ArchJoint, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	drl, err := agent.Scheduler()
	if err != nil {
		log.Fatal(err)
	}

	const eps = 0.35 // quality constraint ε of eq. (10)
	const maxRounds = 120

	for _, entry := range []struct {
		name string
		s    sched.Scheduler
	}{
		{"drl", drl},
		{"maxfreq", sched.MaxFreq{}},
	} {
		rounds, loss, acc, wallClock, energy, err := runFederated(sys, clients, entry.s, eps, maxRounds)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s reached F(ω)=%.4f (ε=%.2f) acc=%.3f in K=%d rounds — wall clock %.1fs, CPU energy %.1fJ\n",
			entry.name, loss, eps, acc, rounds, wallClock, energy)
	}
	fmt.Println("\nsame rounds, same model — the controller only reshapes when devices")
	fmt.Println("finish within each synchronized round, trading idle time for energy.")
}

// runFederated drives FedAvg rounds and the timing simulator in lockstep:
// round k's model exchange happens inside FL iteration k, whose duration
// and energy the scheduler controls.
func runFederated(sys *fl.System, clients []*fedavg.Client, s sched.Scheduler, eps float64, maxRounds int) (rounds int, loss, acc, wallClock, energy float64, err error) {
	model := fedavg.NewLogisticModel(10, 1e-4)
	fed, err := fedavg.NewFederation(clients, model, sys.Tau, 0.1, 99)
	if err != nil {
		return 0, 0, 0, 0, 0, err
	}
	ses, err := fl.NewSession(sys, 0)
	if err != nil {
		return 0, 0, 0, 0, 0, err
	}
	for k := 0; k < maxRounds; k++ {
		// The scheduler picks frequencies for this synchronized round.
		ctx := sched.Context{Sys: sys, Clock: ses.Clock, Iter: k, LastBW: ses.LastBandwidths()}
		freqs, err := s.Frequencies(ctx)
		if err != nil {
			return 0, 0, 0, 0, 0, err
		}
		it, err := ses.Step(freqs)
		if err != nil {
			return 0, 0, 0, 0, 0, err
		}
		energy += it.ComputeEnergy

		// Inside that round, the devices actually train and the server
		// aggregates (FedAvg).
		loss = fed.Round()
		rounds = k + 1
		if loss < eps {
			break
		}
	}
	// Accuracy over the union of client data.
	var correct, total float64
	lm := fed.Global.(*fedavg.LogisticModel)
	for _, c := range clients {
		correct += lm.Accuracy(c.X, c.Y) * float64(c.Size())
		total += float64(c.Size())
	}
	return rounds, loss, correct / total, ses.Clock, energy, nil
}
