// Quickstart: train the experience-driven DRL frequency controller on the
// paper's 3-device testbed scenario and compare its online reasoning against
// the Heuristic and Static baselines.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/sched"
)

func main() {
	// 1. Build the federated-learning system: 3 heterogeneous devices
	//    (datasets, CPU limits, capacitance per §V-A) on walking-4G traces.
	scenario := experiments.TestbedScenario(42)
	sys, err := scenario.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("system: %d devices, ξ=%.0f MB, λ=%g\n", sys.N(), sys.ModelBytes/1e6, sys.Lambda)

	// 2. Offline training (Algorithm 1): the agent observes per-device
	//    bandwidth histories and learns CPU frequencies that minimize
	//    T^k + λ·ΣE (100 episodes keep this example under ~5 s).
	agent, episodes, err := experiments.TrainAgent(sys, experiments.TrainOptions{
		Episodes: 100,
		Hidden:   []int{64, 64},
		Arch:     core.ArchJoint,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}
	first, last := episodes[0].AvgCost, episodes[len(episodes)-1].AvgCost
	fmt.Printf("training: episode cost %.2f → %.2f over %d episodes\n", first, last, len(episodes))

	// 3. Online reasoning: the trained actor (deterministic mean action)
	//    against the paper's baselines, 200 iterations from the same start.
	drl, err := agent.Scheduler()
	if err != nil {
		log.Fatal(err)
	}
	heuristicInit := make([]float64, sys.N())
	for i, tr := range sys.Traces {
		heuristicInit[i] = tr.Summary().Mean
	}
	heuristic, err := sched.NewHeuristic(heuristicInit, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	static, err := sched.NewStaticSampled(sys, 2, 0.05, rand.New(rand.NewSource(7)))
	if err != nil {
		log.Fatal(err)
	}
	results, err := core.Evaluate(sys, []sched.Scheduler{drl, heuristic, static, sched.MaxFreq{}}, 0, 200)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nscheduler   mean cost   mean time   mean energy")
	for _, r := range results {
		fmt.Printf("%-10s  %9.2f  %9.2f  %11.3f\n", r.Name, r.MeanCost, r.MeanTime, r.MeanEnergy)
	}

	// 4. Persist the agent for reuse (see cmd/flsim).
	if err := agent.Save("quickstart-agent.gob"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsaved trained agent to quickstart-agent.gob")
	os.Remove("quickstart-agent.gob") // keep the example side-effect free
}
