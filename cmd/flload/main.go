// Command flload is the load generator and chaos client for flserver: it
// registers tenants, drives decide traffic from many workers with
// client-side retry/backoff (honoring Retry-After, with jitter), and
// records exact latency quantiles plus the server's shed/degrade/timeout
// counters into a benchmark JSON.
//
// Usage:
//
//	flload [-addr http://localhost:8700] [-tenants 4] [-n 3] [-workers 32]
//	       [-duration 10s] [-deadline-ms 250] [-seed 1]
//	       [-out results/BENCH_serving.json] [-max-p99-ms 0]
//	       [-chaos 0] [-observe-cost]
//
// With -chaos p, fraction p of requests are deliberately malformed (five
// classes: bad JSON, unknown fields, trailing garbage, non-finite values,
// wrong tenant) and the client verifies each is rejected with a 4xx —
// never a 5xx, never a hang.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"flag"

	"repro/internal/report"
	"repro/internal/server"
)

// result is the benchmark JSON written to -out.
type result struct {
	Addr            string          `json:"addr"`
	Tenants         int             `json:"tenants"`
	Workers         int             `json:"workers"`
	Batch           int             `json:"batch"`
	DurationSec     float64         `json:"duration_sec"`
	Requests        int64           `json:"requests"`
	Decisions       int64           `json:"decisions"`
	DecisionsPerMin float64         `json:"decisions_per_min"`
	Shed            int64           `json:"shed"`
	Timeouts        int64           `json:"timeouts"`
	Retries         int64           `json:"retries"`
	ChaosSent       int64           `json:"chaos_sent,omitempty"`
	ChaosRejected   int64           `json:"chaos_rejected_4xx,omitempty"`
	ChaosBad        int64           `json:"chaos_unexpected,omitempty"`
	P50MS           float64         `json:"p50_ms"`
	P90MS           float64         `json:"p90_ms"`
	P99MS           float64         `json:"p99_ms"`
	Server          json.RawMessage `json:"server_stats,omitempty"`
}

type counters struct {
	requests, decisions, shed, timeouts, retries atomic.Int64
	chaosSent, chaosRejected, chaosBad           atomic.Int64
}

func main() {
	var (
		addr     = flag.String("addr", "http://localhost:8700", "flserver base URL")
		tenants  = flag.Int("tenants", 4, "tenants to register and drive")
		n        = flag.Int("n", 3, "devices per tenant")
		workers  = flag.Int("workers", 32, "concurrent client workers")
		duration = flag.Duration("duration", 10*time.Second, "load duration")
		deadline = flag.Float64("deadline-ms", 250, "per-request deadline sent to the server (0 = server default)")
		seed     = flag.Int64("seed", 1, "tenant scenario seed base")
		out      = flag.String("out", "results/BENCH_serving.json", "benchmark JSON output path")
		maxP99   = flag.Float64("max-p99-ms", 0, "fail (exit 1) if client p99 exceeds this many ms (0 = no bound)")
		batch    = flag.Int("batch", 1, "decisions per request (amortizes the HTTP round trip; charged per decision by admission)")
		chaos    = flag.Float64("chaos", 0, "fraction of requests sent malformed (0..1)")
		obsCost  = flag.Bool("observe-cost", false, "feed a synthetic observed cost back with each request")
	)
	flag.Parse()

	client := &http.Client{
		Timeout: 5 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        *workers * 2,
			MaxIdleConnsPerHost: *workers * 2,
		},
	}

	names := make([]string, *tenants)
	for i := range names {
		names[i] = fmt.Sprintf("load-%d", i)
		spec := server.TenantSpec{Name: names[i], N: *n, Seed: *seed + int64(i), Primary: server.PrimaryFresh}
		if err := register(client, *addr, spec); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("registered %d tenants (N=%d, primary=fresh, batch=%d)\n", *tenants, *n, *batch)

	var (
		c         counters
		stop      atomic.Bool
		wg        sync.WaitGroup
		latMu     sync.Mutex
		latencies []float64 // ms, merged from workers
	)

	// Early stop on SIGINT/SIGTERM still writes the benchmark JSON.
	unhook := server.OnSignal(func(sig os.Signal) {
		fmt.Printf("\n%v: stopping load early\n", sig)
		stop.Store(true)
	})
	defer unhook()

	start := time.Now()
	deadlineT := start.Add(*duration)
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)*7919))
			local := make([]float64, 0, 1<<16)
			for time.Now().Before(deadlineT) && !stop.Load() {
				if *chaos > 0 && rng.Float64() < *chaos {
					sendChaos(client, *addr, rng, &c)
					continue
				}
				tenant := names[rng.Intn(len(names))]
				lat, ok := decideWithRetry(client, *addr, tenant, *deadline, *batch, *obsCost, rng, &c)
				if ok {
					local = append(local, lat)
				}
			}
			latMu.Lock()
			latencies = append(latencies, local...)
			latMu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Float64s(latencies)
	res := result{
		Addr:          *addr,
		Tenants:       *tenants,
		Workers:       *workers,
		Batch:         *batch,
		DurationSec:   elapsed.Seconds(),
		Requests:      c.requests.Load(),
		Decisions:     c.decisions.Load(),
		Shed:          c.shed.Load(),
		Timeouts:      c.timeouts.Load(),
		Retries:       c.retries.Load(),
		ChaosSent:     c.chaosSent.Load(),
		ChaosRejected: c.chaosRejected.Load(),
		ChaosBad:      c.chaosBad.Load(),
		P50MS:         quantile(latencies, 0.50),
		P90MS:         quantile(latencies, 0.90),
		P99MS:         quantile(latencies, 0.99),
	}
	if elapsed > 0 {
		res.DecisionsPerMin = float64(res.Decisions) / elapsed.Minutes()
	}
	if stats, err := fetchStats(client, *addr); err == nil {
		res.Server = stats
	} else {
		fmt.Fprintf(os.Stderr, "flload: stats: %v\n", err)
	}

	data, err := json.MarshalIndent(&res, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := report.WriteFileAtomic(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}

	fmt.Printf("%d decisions in %v (%.3gM/min), p50 %.3gms p90 %.3gms p99 %.3gms\n",
		res.Decisions, elapsed.Round(time.Millisecond), res.DecisionsPerMin/1e6,
		res.P50MS, res.P90MS, res.P99MS)
	fmt.Printf("shed %d, timeouts %d, retries %d", res.Shed, res.Timeouts, res.Retries)
	if res.ChaosSent > 0 {
		fmt.Printf(", chaos %d sent / %d rejected 4xx / %d unexpected", res.ChaosSent, res.ChaosRejected, res.ChaosBad)
	}
	fmt.Printf("\nwrote %s\n", *out)

	if res.ChaosBad > 0 {
		fatal(fmt.Errorf("%d chaos requests were not rejected with a 4xx", res.ChaosBad))
	}
	if *maxP99 > 0 && res.P99MS > *maxP99 {
		fatal(fmt.Errorf("p99 %.3gms exceeds the %.3gms bound", res.P99MS, *maxP99))
	}
}

// register creates one tenant; an already-registered tenant (rerun against
// a live daemon) is not an error.
func register(client *http.Client, addr string, spec server.TenantSpec) error {
	body, err := json.Marshal(&spec)
	if err != nil {
		return err
	}
	resp, err := client.Post(addr+"/v1/tenants", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer drainClose(resp)
	if resp.StatusCode == http.StatusCreated {
		return nil
	}
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	if resp.StatusCode == http.StatusUnprocessableEntity && bytes.Contains(msg, []byte("already registered")) {
		return nil
	}
	return fmt.Errorf("register %s: %s: %s", spec.Name, resp.Status, msg)
}

// decideWithRetry sends one decide request, retrying shed responses with
// jittered backoff that honors Retry-After. Returns the last attempt's
// latency in ms and whether a decision was served.
func decideWithRetry(client *http.Client, addr, tenant string, deadlineMS float64, batch int, obsCost bool, rng *rand.Rand, c *counters) (float64, bool) {
	req := server.DecideRequest{Tenant: tenant, DeadlineMS: deadlineMS}
	if batch > 1 {
		req.Count = batch
	}
	if obsCost {
		cost := 5 + rng.Float64()
		req.ObservedCost = &cost
	}
	body, _ := json.Marshal(&req)

	backoff := 2 * time.Millisecond
	for attempt := 0; attempt < 4; attempt++ {
		c.requests.Add(1)
		t0 := time.Now()
		resp, err := client.Post(addr+"/v1/decide", "application/json", bytes.NewReader(body))
		lat := float64(time.Since(t0)) / float64(time.Millisecond)
		if err != nil {
			c.timeouts.Add(1)
			return 0, false
		}
		status := resp.StatusCode
		retryHdr := resp.Header.Get("Retry-After")
		drainClose(resp)
		switch {
		case status == http.StatusOK:
			n := int64(1)
			if batch > 1 {
				n = int64(batch)
			}
			c.decisions.Add(n)
			return lat, true
		case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
			c.shed.Add(1)
			c.retries.Add(1)
			wait := backoff
			if retryHdr != "" {
				var secs int
				if _, err := fmt.Sscanf(retryHdr, "%d", &secs); err == nil && secs > 0 {
					wait = time.Duration(secs) * time.Second
				}
			}
			if wait > 50*time.Millisecond {
				wait = 50 * time.Millisecond // cap: this is a load test, not a polite client
			}
			// Full jitter: sleep U(0, wait] to decorrelate retries.
			time.Sleep(time.Duration(rng.Float64() * float64(wait)))
			backoff *= 2
		case status == http.StatusGatewayTimeout:
			c.timeouts.Add(1)
			return 0, false
		default:
			return 0, false
		}
	}
	return 0, false
}

// sendChaos fires one malformed request and verifies the daemon rejects it
// with a 4xx (never a 5xx or a hang).
func sendChaos(client *http.Client, addr string, rng *rand.Rand, c *counters) {
	bodies := []string{
		`{"tenant": "load-0"`,                        // truncated JSON
		`{"tenant": "load-0", "bogus_field": 1}`,     // unknown field
		`{"tenant": "load-0"} trailing garbage`,      // trailing bytes
		`{"tenant": "load-0", "deadline_ms": 1e999}`, // non-finite value
		`{"tenant": "no-such-tenant-ever"}`,          // unknown tenant
		`{"tenant": "../../etc/passwd"}`,             // hostile name
	}
	body := bodies[rng.Intn(len(bodies))]
	c.chaosSent.Add(1)
	c.requests.Add(1)
	resp, err := client.Post(addr+"/v1/decide", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		c.chaosBad.Add(1)
		return
	}
	status := resp.StatusCode
	drainClose(resp)
	if status >= 400 && status < 500 {
		c.chaosRejected.Add(1)
	} else {
		c.chaosBad.Add(1)
	}
}

// fetchStats pulls the server's /v1/stats for the benchmark record.
func fetchStats(client *http.Client, addr string) (json.RawMessage, error) {
	resp, err := client.Get(addr + "/v1/stats")
	if err != nil {
		return nil, err
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("stats: %s", resp.Status)
	}
	return io.ReadAll(io.LimitReader(resp.Body, 1<<20))
}

// drainClose fully consumes and closes a response body so the connection
// returns to the keep-alive pool.
func drainClose(resp *http.Response) {
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// quantile returns the p-quantile of sorted values (nearest-rank), or 0.
func quantile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flload:", err)
	os.Exit(1)
}
