// Command flsim runs the online-reasoning comparison of the paper's §V-B2:
// a trained DRL agent against the Heuristic [3] and Static [4] baselines
// (plus MaxFreq/Random/Oracle references) on a trace-driven federated-
// learning simulation, printing Fig. 7/8-style tables.
//
// The agent must have been trained with fltrain on a scenario with the same
// device count and history length; flsim rebuilds the scenario from the
// same seed.
//
// Usage:
//
//	flsim -agent agent.gob [-n 3] [-lambda 1] [-iters 400] [-runs 3]
//	      [-seed 1] [-cdf cost.csv] [-serve-f32]
//	      [-guard] [-guard-fallback heuristic,maxfreq] [-ood-threshold 4]
//
// With -hier the command instead runs the two-tier hierarchical engine
// standalone (no agent file needed) and prints the protocol-scaling table —
// flat barrier vs hier-sync vs cohort subsampling vs semi-async — at any
// population size, a million devices included:
//
//	flsim -hier -n 1000000 -hier-regions 1024 -hier-cohort 0.05
//	      [-hier-min-arrivals 768] [-hier-beta 0.5] [-hier-edge-latency 0]
//	      [-hier-workers 0] [-hier-steps 20]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/guard"
)

func main() {
	var (
		agentPath = flag.String("agent", "agent.gob", "trained agent file from fltrain")
		n         = flag.Int("n", 3, "number of mobile devices (must match training)")
		lambda    = flag.Float64("lambda", 1, "cost weight λ")
		iters     = flag.Int("iters", 400, "iterations per evaluation run")
		runs      = flag.Int("runs", 3, "evaluation runs from spread start times")
		seed      = flag.Int64("seed", 1, "scenario seed (must match training)")
		cdfPath   = flag.String("cdf", "", "optional CSV path for the cost CDFs (Fig. 7(d))")

		serveF32 = flag.Bool("serve-f32", false, "serve DRL actions through the float32 fleet-batched backend (training-equivalent within 1e-4; guard audit records the backend)")

		useGuard = flag.Bool("guard", false, "add a drl+guard column: the actor wrapped in the online safety pipeline")
		guardFB  = flag.String("guard-fallback", "", "guard fallback chain spec (default heuristic,maxfreq)")
		oodThr   = flag.Float64("ood-threshold", 0, "guard OOD trip threshold in capped-|z| units (0 = guard default, <0 disables OOD)")

		hierMode    = flag.Bool("hier", false, "run the two-tier hierarchical engine standalone (protocol-scaling table; ignores -agent)")
		hierRegions = flag.Int("hier-regions", 64, "edge aggregator count")
		hierCohort  = flag.Float64("hier-cohort", 0.05, "per-region cohort sampling fraction in (0, 1]")
		hierMinArr  = flag.Int("hier-min-arrivals", 0, "regional arrivals that commit a semi-async step (0 = 75% of regions)")
		hierBeta    = flag.Float64("hier-beta", 0, "staleness decay β of late updates (0 = engine default)")
		hierEdge    = flag.Float64("hier-edge-latency", 0, "aggregator→cloud upload latency in seconds")
		hierWorkers = flag.Int("hier-workers", 0, "per-region worker pool size (0 = serial; results identical either way)")
		hierSteps   = flag.Int("hier-steps", 20, "global rounds per protocol variant")
	)
	flag.Parse()

	if *hierMode {
		if err := runHier(*n, *hierRegions, *hierSteps, *hierCohort, *hierMinArr, *hierBeta, *hierEdge, *hierWorkers, *lambda, *seed); err != nil {
			fatal(err)
		}
		return
	}

	agent, err := core.LoadAgent(*agentPath)
	if err != nil {
		fatal(err)
	}
	sc := experiments.TestbedScenario(*seed)
	sc.N = *n
	sc.Lambda = *lambda
	opts := experiments.DefaultCompareOptions()
	opts.Iterations = *iters
	opts.Runs = *runs
	opts.Seed = *seed
	opts.ServeF32 = *serveF32
	if *serveF32 {
		agent.ServeF32 = true
		if drl, err := agent.Scheduler(); err == nil {
			fmt.Printf("serving backend: %s\n", drl.Backend())
			if ferr := drl.F32Err(); ferr != nil {
				fmt.Fprintf(os.Stderr, "flsim: warning: float32 backend unavailable, serving float64 (%v)\n", ferr)
			}
		}
	}
	if *useGuard {
		opts.Guard = &guard.Config{OODThreshold: *oodThr}
		opts.GuardFallback = *guardFB
	}
	res, err := experiments.Compare(
		fmt.Sprintf("online reasoning (N=%d, λ=%g, %d iterations × %d runs)", *n, *lambda, *iters, *runs),
		sc, agent, opts)
	if err != nil {
		fatal(err)
	}
	if err := res.Render(os.Stdout); err != nil {
		fatal(err)
	}
	if res.GuardAudit != nil {
		fmt.Println()
		if err := res.GuardAudit.Summary().Render(os.Stdout); err != nil {
			fatal(err)
		}
		if trips := res.GuardAudit.TripSummary(); trips != nil {
			fmt.Println()
			if err := trips.Render(os.Stdout); err != nil {
				fatal(err)
			}
		}
	}
	if *cdfPath != "" {
		f, err := os.Create(*cdfPath)
		if err != nil {
			fatal(err)
		}
		if err := res.WriteCDFCSV(f, "cost", 100); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote cost CDFs to %s\n", *cdfPath)
	}
}

// runHier drives the standalone hierarchical protocol-scaling table.
func runHier(n, regions, steps int, cohort float64, minArrivals int, beta, edge float64, workers int, lambda float64, seed int64) error {
	opts := experiments.DefaultHierSweepOptions()
	opts.N = n
	opts.Regions = regions
	opts.Steps = steps
	opts.CohortFrac = cohort
	opts.MinArrivals = minArrivals
	opts.StalenessBeta = beta
	opts.EdgeLatencySec = edge
	opts.Workers = workers
	opts.Lambda = lambda
	opts.Seed = seed
	res, err := experiments.HierSweep(opts)
	if err != nil {
		return err
	}
	return res.Render(os.Stdout)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flsim:", err)
	os.Exit(1)
}
