// Command flserver is the long-running frequency-plan serving daemon: a
// multi-tenant HTTP front end over the guarded scheduler stack. Tenants are
// registered over the API, each with its own guard chain, admission limit
// and bounded queue; SIGTERM triggers a graceful drain (stop accepting,
// finish in-flight, flush audit logs, snapshot the registry crash-safely).
//
// Usage:
//
//	flserver [-addr :8700] [-agent agent.gob] [-snapshot flserver.snap.json]
//	         [-audit-dir audits] [-rate 0] [-burst 32] [-queue-cap 256]
//	         [-request-timeout 1s] [-actor-budget 0] [-degrade-after 8]
//	         [-cooldown 64] [-drain-timeout 10s] [-chaos-slow-actor 0]
//	         [-tenants tenants.json] [-record-plans] [-online] [-online-dir ckpts]
//	         [-telemetry-interval 0] [-pprof ""]
//
// -tenants points at a declarative spec file (JSON array of tenant specs)
// loaded on boot; SIGHUP or POST /v1/reload re-reads it atomically,
// rebuilding only changed tenants with zero dropped in-flight requests.
// -online turns on drift-triggered continual learning for DRL tenants:
// guard decisions stream into an online replay loop off the decide path,
// retrains shadow-evaluate against the chaos probe set, and promoted
// candidates are hot-swapped into the serving actor.
//
// -telemetry-interval periodically flushes the live stats document, every
// tenant's audit log and the registry snapshot to the configured paths
// (atomic renames; the drain still performs the final authoritative flush).
// -pprof serves net/http/pprof on its own opt-in listener, e.g.
// -pprof localhost:6060.
//
// Endpoints:
//
//	POST /v1/tenants              register a tenant (server.TenantSpec JSON)
//	GET  /v1/tenants/{name}       one tenant's stats
//	GET  /v1/tenants/{name}/audit export the tenant's audit log (text)
//	POST /v1/decide               one frequency-plan decision (server.DecideRequest)
//	POST /v1/reload               re-read the -tenants file (atomic)
//	GET  /v1/stats                counters, latency quantiles, all tenants
//	GET  /v1/healthz              200 serving / 503 draining
package main

import (
	"context"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers profiling handlers on the default mux (served only when -pprof is set)
	"os"
	"os/signal"
	"syscall"
	"time"

	"flag"

	"repro/internal/core"
	"repro/internal/online"
	"repro/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8700", "listen address")
		agentPath = flag.String("agent", "", "optional trained agent from fltrain (tenants with a matching layout serve it)")
		snapPath  = flag.String("snapshot", "", "registry snapshot path: restored on boot, written atomically on drain")
		auditDir  = flag.String("audit-dir", "", "directory for per-tenant audit logs flushed on drain")

		rate     = flag.Float64("rate", 0, "default per-tenant admission rate, requests/s (0 = unlimited)")
		burst    = flag.Float64("burst", 32, "default admission burst")
		queueCap = flag.Int("queue-cap", 256, "default per-tenant queue bound")
		reqTO    = flag.Duration("request-timeout", time.Second, "default end-to-end request budget")
		actorBud = flag.Duration("actor-budget", 0, "guard per-decision latency watchdog (0 disables)")
		degAfter = flag.Int("degrade-after", 8, "consecutive bad guarded decisions before demoting a tenant")
		cooldown = flag.Int("cooldown", 64, "decisions on a lower ladder rung before probing back up")
		drainTO  = flag.Duration("drain-timeout", 10*time.Second, "graceful drain budget on SIGTERM")

		slowActor = flag.Duration("chaos-slow-actor", 0, "chaos: inject this much latency into every tenant's primary actor")

		tenantsPath = flag.String("tenants", "", "declarative tenant spec file (JSON array of specs), loaded on boot and re-read on SIGHUP / POST /v1/reload")
		recordPlans = flag.Bool("record-plans", false, "record served plans in audit lines (replayable by the online continual-learning loop)")
		onlineFlag  = flag.Bool("online", false, "enable drift-triggered online retraining for DRL tenants (implies -record-plans)")
		onlineDir   = flag.String("online-dir", "", "directory for online retrain candidate checkpoints")

		telemetryIv = flag.Duration("telemetry-interval", 0, "periodic live flush of stats, audits and snapshot (0 disables)")
		pprofAddr   = flag.String("pprof", "", "opt-in net/http/pprof listen address (e.g. localhost:6060); empty disables")
	)
	flag.Parse()

	cfg := server.DefaultServerConfig()
	cfg.Rate = *rate
	cfg.Burst = *burst
	cfg.QueueCap = *queueCap
	cfg.RequestTimeout = *reqTO
	cfg.ActorBudget = *actorBud
	cfg.DegradeAfter = *degAfter
	cfg.Cooldown = *cooldown
	cfg.SlowActor = *slowActor
	cfg.AuditDir = *auditDir
	cfg.SnapshotPath = *snapPath
	cfg.RecordPlans = *recordPlans
	if *onlineFlag {
		cfg.Online = &online.Config{CheckpointDir: *onlineDir}
	}
	if *tenantsPath != "" {
		path := *tenantsPath
		cfg.TenantSource = func() ([]server.TenantSpec, error) {
			data, err := os.ReadFile(path)
			if err != nil {
				return nil, fmt.Errorf("flserver: tenants file: %w", err)
			}
			return server.ParseTenantSpecs(data)
		}
	}

	if *agentPath != "" {
		agent, err := core.LoadAgent(*agentPath)
		if err != nil {
			fatal(err)
		}
		cfg.Agent = agent
		fmt.Printf("loaded agent: action dim %d, state dim %d\n",
			agent.Policy.ActionDim(), agent.Policy.StateDim())
	}

	srv, err := server.New(cfg)
	if err != nil {
		fatal(err)
	}
	if *snapPath != "" {
		fmt.Printf("snapshot: %s\n", *snapPath)
	}

	// Boot-load the declarative tenants, then re-apply the file on every
	// SIGHUP (same code path as POST /v1/reload).
	if cfg.TenantSource != nil {
		rep, err := srv.ReloadFromSource()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("tenants from %s: %d added, %d rebuilt, %d unchanged\n",
			*tenantsPath, rep.Added, rep.Rebuilt, rep.Unchanged)
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		defer signal.Stop(hup)
		go func() {
			for range hup {
				rep, err := srv.ReloadFromSource()
				if err != nil {
					fmt.Fprintf(os.Stderr, "flserver: reload: %v\n", err)
					continue
				}
				fmt.Printf("reloaded %s: %d added, %d rebuilt, %d unchanged, %d dropped\n",
					*tenantsPath, rep.Added, rep.Rebuilt, rep.Unchanged, rep.Dropped)
			}
		}()
	}

	// The profiler gets its own listener so production traffic and the
	// default mux never mix; the import above registered the handlers.
	if *pprofAddr != "" {
		go func() {
			fmt.Printf("pprof listening on %s\n", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "flserver: pprof: %v\n", err)
			}
		}()
	}

	if *telemetryIv > 0 {
		fmt.Printf("telemetry: flushing every %v\n", *telemetryIv)
		stopTelemetry := srv.StartTelemetry(*telemetryIv, func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, "flserver: "+format+"\n", args...)
		})
		defer stopTelemetry()
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	// Graceful drain on the first SIGINT/SIGTERM: stop accepting, let
	// in-flight requests finish, flush audits, snapshot the registry. A
	// second signal force-exits (the OnSignal contract).
	drained := make(chan struct{})
	stop := server.OnSignal(func(sig os.Signal) {
		fmt.Printf("\n%v: draining (budget %v)...\n", sig, *drainTO)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTO)
		defer cancel()
		srv.BeginDrain()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "flserver: shutdown: %v\n", err)
		}
		rep, err := srv.FinishDrain(ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flserver: drain: %v\n", err)
		}
		if rep != nil {
			fmt.Printf("drained: %d tenants, accepted %d, responded %d, dropped %d\n",
				rep.Tenants, rep.Accepted, rep.Responded, rep.Dropped)
			for _, f := range rep.AuditFiles {
				fmt.Printf("audit: %s\n", f)
			}
			if rep.Snapshot != "" {
				fmt.Printf("snapshot written: %s\n", rep.Snapshot)
			}
		}
		close(drained)
	})
	defer stop()

	fmt.Printf("flserver listening on %s\n", *addr)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
	<-drained
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flserver:", err)
	os.Exit(1)
}
