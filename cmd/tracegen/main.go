// Command tracegen generates synthetic uplink-bandwidth traces from the
// calibrated mobility profiles (the stand-in for the paper's 4G/HSDPA
// datasets) and prints Fig. 2-style dynamics summaries. Traces can be
// exported as two-column CSV files for reuse or replaced by real datasets
// in the same format.
//
// Usage:
//
//	tracegen [-profile walking|bus|train|car|bicycle] [-duration 400]
//	         [-count 3] [-seed 1] [-out dir]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/bandwidth"
	"repro/internal/report"
	"repro/internal/trace"
)

func main() {
	var (
		profile  = flag.String("profile", "walking", "mobility profile: walking, bus, train, car, bicycle")
		duration = flag.Float64("duration", 400, "trace duration in seconds")
		count    = flag.Int("count", 3, "number of traces to generate")
		seed     = flag.Int64("seed", 1, "generation seed")
		out      = flag.String("out", "", "optional directory to write CSV files into")
	)
	flag.Parse()

	p, err := profileByName(*profile)
	if err != nil {
		fatal(err)
	}
	tb := report.NewTable(fmt.Sprintf("%s traces (%gs, seed %d)", p.Name, *duration, *seed),
		"trace", "min", "max", "mean", "std", "dynamics")
	var traces []*trace.Trace
	for i := 0; i < *count; i++ {
		tr, err := p.Generate(fmt.Sprintf("%s-%02d", p.Name, i), *duration, *seed+int64(i)*977)
		if err != nil {
			fatal(err)
		}
		traces = append(traces, tr)
		s := tr.Summary()
		tb.AddRow(tr.Name,
			report.FormatSI(s.Min, "B/s"),
			report.FormatSI(s.Max, "B/s"),
			report.FormatSI(s.Mean, "B/s"),
			report.FormatSI(s.Std, "B/s"),
			report.Sparkline(tr.Samples, 60))
	}
	if err := tb.Render(os.Stdout); err != nil {
		fatal(err)
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
		for _, tr := range traces {
			path := filepath.Join(*out, tr.Name+".csv")
			if err := tr.SaveCSVFile(path); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
}

func profileByName(name string) (*bandwidth.Profile, error) {
	switch name {
	case "walking":
		return bandwidth.Walking4G(), nil
	case "bus":
		return bandwidth.BusHSDPA(), nil
	case "train":
		return bandwidth.Train4G(), nil
	case "car":
		return bandwidth.Car4G(), nil
	case "bicycle":
		return bandwidth.Bicycle4G(), nil
	default:
		return nil, fmt.Errorf("unknown profile %q (want walking, bus, train, car or bicycle)", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
