// Command fltrain runs the paper's Algorithm 1: offline DRL training of the
// CPU-frequency controller against a trace-driven federated-learning
// simulator. It prints the Fig. 6 convergence curves and saves the trained
// agent for online reasoning with flsim.
//
// Training is crash-safe: with -checkpoint set, periodic snapshots are
// written atomically, Ctrl-C stops at the next episode boundary and saves a
// final snapshot, and -resume continues a snapshot bit-identically to a run
// that was never interrupted. Device faults (crash/rejoin churn, upload
// blackouts, compute stragglers) can be injected into the training
// environment with the -crash-prob family of flags; crashes require a
// -deadline so rounds with missing devices still terminate.
//
// With -constrained, the trainer switches to the Lagrangian constrained
// PPO update: per-iteration deadline and energy-budget cost signals are
// measured against targets auto-calibrated from a run-at-max probe
// (-time-slack, -energy-frac), and projected-ascent Lagrange multipliers
// drive the batch-mean overshoot of each target under -cost-limit. The
// update keeps the shard engine's bit-identical worker invariance, and
// multiplier state rides in checkpoints, so interrupt/resume stays exact.
//
// Usage:
//
//	fltrain [-n 3] [-lambda 1] [-episodes 300] [-arch joint|shared]
//	        [-seed 1] [-workers 0] [-train-workers 0]
//	        [-constrained] [-cost-limit 0] [-time-slack 1.25] [-energy-frac 0.9]
//	        [-o agent.gob] [-curves fig6.csv]
//	        [-checkpoint train.ckpt] [-checkpoint-every 25] [-resume train.ckpt]
//	        [-crash-prob 0] [-rejoin-prob 0] [-blackout-prob 0]
//	        [-straggler-prob 0] [-straggler-mult 4] [-deadline 0]
//	        [-retry-backoff 1]
//	        [-cpuprofile cpu.pprof] [-memprofile mem.pprof] [-trace exec.trace]
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/profiling"
	"repro/internal/server"
)

func main() {
	var (
		n            = flag.Int("n", 3, "number of mobile devices")
		lambda       = flag.Float64("lambda", 1, "cost weight λ (eq. 9)")
		episodes     = flag.Int("episodes", 300, "training episodes")
		arch         = flag.String("arch", "joint", "actor architecture: joint (paper) or shared (per-device weight sharing)")
		seed         = flag.Int64("seed", 1, "scenario and training seed")
		workers      = flag.Int("workers", 0, "rollout workers: 0 = sequential Algorithm 1; w>=1 = parallel episode collection (deterministic, output independent of w)")
		trainWorkers = flag.Int("train-workers", 0, "gradient-engine workers inside each PPO/A2C update (bit-identical at any value; 0 = single-threaded)")
		out          = flag.String("o", "agent.gob", "output path for the trained agent")
		curves       = flag.String("curves", "", "optional CSV path for the Fig. 6 convergence curves")

		constrained = flag.Bool("constrained", false, "train with Lagrangian constrained PPO: deadline/energy targets auto-calibrated from a run-at-max probe")
		costLimit   = flag.Float64("cost-limit", 0, "constrained mode: allowed mean normalized overshoot d_j of each target (0.05 = 5% average overshoot)")
		timeSlack   = flag.Float64("time-slack", 0, "constrained mode: deadline target as a multiple of the run-at-max mean round time (0 = default 1.25)")
		energyFrac  = flag.Float64("energy-frac", 0, "constrained mode: energy budget as a fraction of the run-at-max mean energy (0 = default 0.9)")

		checkpoint = flag.String("checkpoint", "", "path for crash-safe training snapshots (empty disables)")
		ckEvery    = flag.Int("checkpoint-every", 0, "episodes between snapshots (0 = default 25)")
		resume     = flag.String("resume", "", "resume training from this checkpoint file")

		crashProb     = flag.Float64("crash-prob", 0, "per-iteration device crash probability (requires -deadline)")
		rejoinProb    = flag.Float64("rejoin-prob", 0.5, "per-iteration rejoin probability for crashed devices")
		blackoutProb  = flag.Float64("blackout-prob", 0, "per-attempt upload blackout probability")
		stragglerProb = flag.Float64("straggler-prob", 0, "per-iteration compute-straggler probability")
		stragglerMult = flag.Float64("straggler-mult", 0, "compute-time multiplier for straggler spikes (0 = default 4)")
		deadline      = flag.Float64("deadline", 0, "round barrier deadline in seconds (0 disables partial aggregation)")
		retryBackoff  = flag.Float64("retry-backoff", 0, "base retry backoff in seconds after a blacked-out upload (0 = default 1)")
	)
	prof := profiling.Register(flag.CommandLine)
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "fltrain:", err)
		}
	}()

	sc := experiments.TestbedScenario(*seed)
	sc.N = *n
	sc.Lambda = *lambda
	opts := experiments.TrainOptions{
		Episodes:     *episodes,
		Hidden:       []int{64, 64},
		Arch:         core.Arch(*arch),
		Seed:         *seed,
		Workers:      *workers,
		TrainWorkers: *trainWorkers,
		Constrained:  *constrained,
		CostLimit:    *costLimit,
		TimeSlack:    *timeSlack,
		EnergyFrac:   *energyFrac,
	}
	if core.Arch(*arch) == core.ArchShared {
		opts.Hidden = []int{32, 32}
	}
	sys, err := sc.Build()
	if err != nil {
		fatal(err)
	}
	cfg, err := experiments.TrainConfig(sys, opts)
	if err != nil {
		fatal(err)
	}
	cfg.Checkpoint = *checkpoint
	cfg.CheckpointEvery = *ckEvery
	cfg.Env.RoundDeadline = *deadline
	cfg.Env.RetryBackoffSec = *retryBackoff
	fc := fault.Config{
		CrashProb:     *crashProb,
		RejoinProb:    *rejoinProb,
		BlackoutProb:  *blackoutProb,
		StragglerProb: *stragglerProb,
		StragglerMult: *stragglerMult,
	}
	if fc.Enabled() {
		cfg.Env.Faults = &fc
		fmt.Printf("fault injection: crash=%g rejoin=%g blackout=%g straggler=%g deadline=%gs\n",
			fc.CrashProb, fc.RejoinProb, fc.BlackoutProb, fc.StragglerProb, *deadline)
	}

	var tr *core.Trainer
	if *resume != "" {
		tr, err = core.ResumeTrainer(sys, cfg, *resume)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("resumed from %s\n", *resume)
	} else {
		tr, err = core.NewTrainer(sys, cfg)
		if err != nil {
			fatal(err)
		}
	}

	// Ctrl-C / SIGTERM: stop at the next episode (or wave) boundary so the
	// final snapshot is resumable. A second signal force-exits (the
	// server.OnSignal contract, shared by every binary).
	stopSig := server.OnSignal(func(os.Signal) {
		fmt.Fprintln(os.Stderr, "fltrain: interrupt — stopping at the next episode boundary")
		tr.Stop()
	})
	defer stopSig()

	fmt.Printf("training DRL agent: N=%d λ=%g episodes=%d arch=%s\n", *n, *lambda, *episodes, *arch)
	if *constrained {
		fmt.Printf("constrained PPO: deadline=%.3gs energy=%.3gJ cost-limit=%g\n",
			cfg.Env.DeadlineTarget, cfg.Env.EnergyBudget, *costLimit)
	}
	eps, err := tr.Run(nil)
	if errors.Is(err, core.ErrInterrupted) {
		if *checkpoint == "" {
			fmt.Fprintln(os.Stderr, "fltrain: interrupted with no -checkpoint path; training state discarded")
			os.Exit(1)
		}
		if err := tr.SaveCheckpoint(*checkpoint); err != nil {
			fatal(err)
		}
		fmt.Printf("interrupted after %d episodes; resume with -resume %s\n", len(eps), *checkpoint)
		return
	}
	if err != nil {
		fatal(err)
	}

	res := experiments.NewFig6Result(eps, tr.Agent())
	if err := res.Render(os.Stdout); err != nil {
		fatal(err)
	}
	if err := res.Agent.Save(*out); err != nil {
		fatal(err)
	}
	fmt.Printf("saved agent to %s\n", *out)
	if *curves != "" {
		f, err := os.Create(*curves)
		if err != nil {
			fatal(err)
		}
		if err := res.WriteCSV(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote convergence curves to %s\n", *curves)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fltrain:", err)
	os.Exit(1)
}
