// Command fltrain runs the paper's Algorithm 1: offline DRL training of the
// CPU-frequency controller against a trace-driven federated-learning
// simulator. It prints the Fig. 6 convergence curves and saves the trained
// agent for online reasoning with flsim.
//
// Usage:
//
//	fltrain [-n 3] [-lambda 1] [-episodes 300] [-arch joint|shared]
//	        [-seed 1] [-workers 0] [-o agent.gob] [-curves fig6.csv]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	var (
		n        = flag.Int("n", 3, "number of mobile devices")
		lambda   = flag.Float64("lambda", 1, "cost weight λ (eq. 9)")
		episodes = flag.Int("episodes", 300, "training episodes")
		arch     = flag.String("arch", "joint", "actor architecture: joint (paper) or shared (per-device weight sharing)")
		seed     = flag.Int64("seed", 1, "scenario and training seed")
		workers  = flag.Int("workers", 0, "rollout workers: 0 = sequential Algorithm 1; w>=1 = parallel episode collection (deterministic, output independent of w)")
		out      = flag.String("o", "agent.gob", "output path for the trained agent")
		curves   = flag.String("curves", "", "optional CSV path for the Fig. 6 convergence curves")
	)
	flag.Parse()

	sc := experiments.TestbedScenario(*seed)
	sc.N = *n
	sc.Lambda = *lambda
	opts := experiments.TrainOptions{
		Episodes: *episodes,
		Hidden:   []int{64, 64},
		Arch:     core.Arch(*arch),
		Seed:     *seed,
		Workers:  *workers,
	}
	if core.Arch(*arch) == core.ArchShared {
		opts.Hidden = []int{32, 32}
	}
	fmt.Printf("training DRL agent: N=%d λ=%g episodes=%d arch=%s\n", *n, *lambda, *episodes, *arch)
	res, err := experiments.Fig6(sc, opts)
	if err != nil {
		fatal(err)
	}
	if err := res.Render(os.Stdout); err != nil {
		fatal(err)
	}
	if err := res.Agent.Save(*out); err != nil {
		fatal(err)
	}
	fmt.Printf("saved agent to %s\n", *out)
	if *curves != "" {
		f, err := os.Create(*curves)
		if err != nil {
			fatal(err)
		}
		if err := res.WriteCSV(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote convergence curves to %s\n", *curves)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fltrain:", err)
	os.Exit(1)
}
