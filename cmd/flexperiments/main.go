// Command flexperiments regenerates every table and figure of the paper's
// evaluation end to end — Fig. 2 (trace dynamics), Fig. 6 (training
// convergence), Fig. 7 (3-device testbed), Fig. 8 (50-device simulation) —
// plus the design ablations, printing each and optionally writing CSV data
// for plotting. A full run takes a few minutes; -quick shrinks everything
// for smoke testing.
//
// Usage:
//
//	flexperiments [-quick] [-out results/] [-skip-ablations]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/experiments"
)

type sizing struct {
	trainEpisodes  int
	simEpisodes    int
	iters          int
	runs           int
	simN           int
	simIters       int
	ablEpisodes    int
	ablIters       int
	ablStaticSeeds int
}

func main() {
	var (
		quick   = flag.Bool("quick", false, "shrink all experiments for a fast smoke run")
		out     = flag.String("out", "", "optional directory for CSV outputs")
		skipAbl = flag.Bool("skip-ablations", false, "skip the ablation sweeps")
		seed    = flag.Int64("seed", 1, "master seed")
	)
	flag.Parse()

	sz := sizing{
		trainEpisodes: 600, simEpisodes: 400,
		iters: 400, runs: 3,
		simN: 50, simIters: 200,
		ablEpisodes: 60, ablIters: 100, ablStaticSeeds: 6,
	}
	if *quick {
		sz = sizing{
			trainEpisodes: 10, simEpisodes: 6,
			iters: 20, runs: 2,
			simN: 8, simIters: 15,
			ablEpisodes: 4, ablIters: 10, ablStaticSeeds: 2,
		}
	}

	var outDir string
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
		outDir = *out
	}
	writeCSV := func(name string, write func(io.Writer) error) {
		if outDir == "" {
			return
		}
		path := filepath.Join(outDir, name)
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := write(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}

	// ---- Figure 2: bandwidth dynamics -------------------------------
	fig2, err := experiments.Fig2(400, *seed)
	if err != nil {
		fatal(err)
	}
	must(fig2.Render(os.Stdout))
	if outDir != "" {
		w, err := os.Create(filepath.Join(outDir, "fig2_walking.csv"))
		if err != nil {
			fatal(err)
		}
		b, err := os.Create(filepath.Join(outDir, "fig2_bus.csv"))
		if err != nil {
			w.Close()
			fatal(err)
		}
		if err := fig2.WriteCSV(w, b); err != nil {
			fatal(err)
		}
		w.Close()
		b.Close()
		fmt.Printf("wrote %s and %s\n", filepath.Join(outDir, "fig2_walking.csv"), filepath.Join(outDir, "fig2_bus.csv"))
	}
	fmt.Println()

	// ---- Figure 6: offline training convergence ---------------------
	testbed := experiments.TestbedScenario(*seed)
	trainOpts := experiments.TestbedTrainOptions()
	trainOpts.Episodes = sz.trainEpisodes
	trainOpts.Seed = *seed
	fig6, err := experiments.Fig6(testbed, trainOpts)
	if err != nil {
		fatal(err)
	}
	must(fig6.Render(os.Stdout))
	writeCSV("fig6_convergence.csv", fig6.WriteCSV)
	fmt.Println()

	// ---- Figure 7: testbed comparison -------------------------------
	cmpOpts := experiments.DefaultCompareOptions()
	cmpOpts.Iterations = sz.iters
	cmpOpts.Runs = sz.runs
	cmpOpts.Seed = *seed
	fig7, err := experiments.Fig7(testbed, fig6.Agent, cmpOpts)
	if err != nil {
		fatal(err)
	}
	must(fig7.Render(os.Stdout))
	for _, metric := range []string{"cost", "time", "energy"} {
		m := metric
		writeCSV("fig7_cdf_"+m+".csv", func(f io.Writer) error { return fig7.WriteCDFCSV(f, m, 100) })
	}
	fmt.Println()

	// ---- Figure 8: 50-device simulation ------------------------------
	sim := experiments.SimulationScenario(sz.simN, *seed)
	simOpts := experiments.SimulationTrainOptions()
	simOpts.Episodes = sz.simEpisodes
	simOpts.Seed = *seed
	simSys, err := sim.Build()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("training Fig. 8 agent (N=%d, shared actor, %d episodes)...\n", sz.simN, sz.simEpisodes)
	agent8, _, err := experiments.TrainAgent(simSys, simOpts)
	if err != nil {
		fatal(err)
	}
	cmp8 := cmpOpts
	cmp8.Iterations = sz.simIters
	fig8, err := experiments.Fig8(sim, agent8, cmp8)
	if err != nil {
		fatal(err)
	}
	must(fig8.Render(os.Stdout))
	writeCSV("fig8_cost_series.csv", fig8.WriteCostSeriesCSV)
	fmt.Println()

	if *skipAbl {
		return
	}

	// ---- Ablations ----------------------------------------------------
	abl1, err := experiments.AblationStaticSamples(testbed, []int{1, 2, 3, 5, 10, 20}, sz.ablStaticSeeds, sz.ablIters)
	if err != nil {
		fatal(err)
	}
	must(abl1.Render(os.Stdout))
	fmt.Println()

	abl2, err := experiments.AblationHistory(testbed, []int{0, 1, 3, 5, 8}, sz.ablEpisodes, sz.ablIters)
	if err != nil {
		fatal(err)
	}
	must(abl2.Render(os.Stdout))
	fmt.Println()

	abl3, err := experiments.AblationLambda(testbed, []float64{0.1, 0.5, 1, 2}, sz.ablEpisodes, sz.ablIters)
	if err != nil {
		fatal(err)
	}
	must(abl3.Render(os.Stdout))
	fmt.Println()

	abl4, err := experiments.AblationArch(experiments.SimulationScenario(10, *seed), sz.ablEpisodes, sz.ablIters)
	if err != nil {
		fatal(err)
	}
	must(abl4.Render(os.Stdout))
	fmt.Println()

	abl5, err := experiments.AblationBarrierAwareness(testbed, sz.ablIters)
	if err != nil {
		fatal(err)
	}
	must(abl5.Render(os.Stdout))
	fmt.Println()

	abl6, err := experiments.AblationSyncAsync(testbed, sz.ablIters)
	if err != nil {
		fatal(err)
	}
	must(abl6.Render(os.Stdout))
	fmt.Println()

	abl7, err := experiments.AblationOptimizer(testbed, sz.trainEpisodes/2, sz.ablIters)
	if err != nil {
		fatal(err)
	}
	must(abl7.Render(os.Stdout))
	fmt.Println()

	abl8, err := experiments.AblationSelection(experiments.SimulationScenario(10, *seed), 30, sz.ablIters, *seed)
	if err != nil {
		fatal(err)
	}
	must(abl8.Render(os.Stdout))
}

func must(err error) {
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flexperiments:", err)
	os.Exit(1)
}
