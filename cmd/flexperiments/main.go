// Command flexperiments regenerates every table and figure of the paper's
// evaluation end to end — Fig. 2 (trace dynamics), Fig. 6 (training
// convergence), Fig. 7 (3-device testbed), Fig. 8 (50-device simulation) —
// plus the fault sweep, the guard-chaos ablation, the safe-training
// comparison, the hierarchical protocol-scaling sweep and the design
// ablations,
// printing each and optionally writing CSV data
// for plotting. Independent sections run concurrently on a bounded worker
// pool (-workers, default NumCPU); each renders into its own buffer and the
// buffers are printed in the canonical order as they complete, so the
// output is identical at any worker count (sole exception: the hier-sweep
// table's measured rounds/s columns are host timings; its CSV is
// deterministic). A full run takes a few minutes;
// -quick shrinks everything for smoke testing.
//
// Usage:
//
//	flexperiments [-quick] [-out results/] [-skip-ablations] [-workers N]
//	              [-cpuprofile cpu.pprof] [-memprofile mem.pprof] [-trace exec.trace]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"

	"repro/internal/experiments"
	"repro/internal/guard"
	"repro/internal/profiling"
)

type sizing struct {
	trainEpisodes  int
	simEpisodes    int
	iters          int
	runs           int
	simN           int
	simIters       int
	ablEpisodes    int
	ablIters       int
	ablStaticSeeds int
	faultEpisodes  int
	faultIters     int
	guardEpisodes  int
	guardIters     int
	safeEpisodes   int
	safeIters      int
	hierN          int
	hierRegions    int
	hierSteps      int
}

// section is one independently runnable chunk of the evaluation. run writes
// every table and progress note into w (never to stdout directly) so
// concurrent sections cannot interleave their output.
type section struct {
	name string
	run  func(w io.Writer) error
}

func main() {
	var (
		quick   = flag.Bool("quick", false, "shrink all experiments for a fast smoke run")
		out     = flag.String("out", "", "optional directory for CSV outputs")
		skipAbl = flag.Bool("skip-ablations", false, "skip the ablation sweeps")
		seed    = flag.Int64("seed", 1, "master seed")
		workers = flag.Int("workers", runtime.NumCPU(), "bound on concurrent jobs in each worker pool (sections, comparison runs, ablation grids); 1 = fully serial")
	)
	prof := profiling.Register(flag.CommandLine)
	flag.Parse()
	experiments.MaxWorkers = *workers

	stopProf, err := prof.Start()
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "flexperiments:", err)
		}
	}()

	sz := sizing{
		trainEpisodes: 600, simEpisodes: 400,
		iters: 400, runs: 3,
		simN: 50, simIters: 200,
		ablEpisodes: 60, ablIters: 100, ablStaticSeeds: 6,
		faultEpisodes: 300, faultIters: 200,
		guardEpisodes: 300, guardIters: 40,
		safeEpisodes: 120, safeIters: 30,
		hierN: 20_000, hierRegions: 64, hierSteps: 40,
	}
	if *quick {
		sz = sizing{
			trainEpisodes: 10, simEpisodes: 6,
			iters: 20, runs: 2,
			simN: 8, simIters: 15,
			ablEpisodes: 4, ablIters: 10, ablStaticSeeds: 2,
			faultEpisodes: 4, faultIters: 10,
			guardEpisodes: 4, guardIters: 8,
			safeEpisodes: 4, safeIters: 8,
			hierN: 2_000, hierRegions: 16, hierSteps: 10,
		}
	}

	var outDir string
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
		outDir = *out
	}
	// writeCSV writes one CSV file and notes it on w (the section's buffer).
	writeCSV := func(w io.Writer, name string, write func(io.Writer) error) error {
		if outDir == "" {
			return nil
		}
		path := filepath.Join(outDir, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", path)
		return nil
	}

	testbed := experiments.TestbedScenario(*seed)
	cmpOpts := experiments.DefaultCompareOptions()
	cmpOpts.Iterations = sz.iters
	cmpOpts.Runs = sz.runs
	cmpOpts.Seed = *seed

	sections := []section{
		{"fig2", func(w io.Writer) error {
			fig2, err := experiments.Fig2(400, *seed)
			if err != nil {
				return err
			}
			if err := fig2.Render(w); err != nil {
				return err
			}
			if outDir != "" {
				wp := filepath.Join(outDir, "fig2_walking.csv")
				bp := filepath.Join(outDir, "fig2_bus.csv")
				wf, err := os.Create(wp)
				if err != nil {
					return err
				}
				bf, err := os.Create(bp)
				if err != nil {
					wf.Close()
					return err
				}
				err = fig2.WriteCSV(wf, bf)
				wf.Close()
				bf.Close()
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "wrote %s and %s\n", wp, bp)
			}
			fmt.Fprintln(w)
			return nil
		}},
		// Figures 6 and 7 chain (Fig. 7 evaluates the Fig. 6 agent), so
		// they form one section; its inner Compare fans out over runs.
		{"fig6+fig7", func(w io.Writer) error {
			trainOpts := experiments.TestbedTrainOptions()
			trainOpts.Episodes = sz.trainEpisodes
			trainOpts.Seed = *seed
			fig6, err := experiments.Fig6(testbed, trainOpts)
			if err != nil {
				return err
			}
			if err := fig6.Render(w); err != nil {
				return err
			}
			if err := writeCSV(w, "fig6_convergence.csv", fig6.WriteCSV); err != nil {
				return err
			}
			fmt.Fprintln(w)

			fig7, err := experiments.Fig7(testbed, fig6.Agent, cmpOpts)
			if err != nil {
				return err
			}
			if err := fig7.Render(w); err != nil {
				return err
			}
			for _, metric := range []string{"cost", "time", "energy"} {
				m := metric
				err := writeCSV(w, "fig7_cdf_"+m+".csv", func(f io.Writer) error { return fig7.WriteCDFCSV(f, m, 100) })
				if err != nil {
					return err
				}
			}
			fmt.Fprintln(w)
			return nil
		}},
		{"fig8", func(w io.Writer) error {
			sim := experiments.SimulationScenario(sz.simN, *seed)
			simOpts := experiments.SimulationTrainOptions()
			simOpts.Episodes = sz.simEpisodes
			simOpts.Seed = *seed
			simSys, err := sim.Build()
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "training Fig. 8 agent (N=%d, shared actor, %d episodes)...\n", sz.simN, sz.simEpisodes)
			agent8, _, err := experiments.TrainAgent(simSys, simOpts)
			if err != nil {
				return err
			}
			cmp8 := cmpOpts
			cmp8.Iterations = sz.simIters
			fig8, err := experiments.Fig8(sim, agent8, cmp8)
			if err != nil {
				return err
			}
			if err := fig8.Render(w); err != nil {
				return err
			}
			if err := writeCSV(w, "fig8_cost_series.csv", fig8.WriteCostSeriesCSV); err != nil {
				return err
			}
			fmt.Fprintln(w)
			return nil
		}},
		// Robustness: cost vs crash rate under partial aggregation — the
		// graceful-degradation companion to Fig. 7 (DESIGN.md §9).
		{"fault-sweep", func(w io.Writer) error {
			fo := experiments.DefaultFaultSweepOptions()
			fo.Episodes = sz.faultEpisodes
			fo.Iterations = sz.faultIters
			fo.Seed = *seed
			res, err := experiments.FaultSweep(testbed, fo)
			if err != nil {
				return err
			}
			if err := res.Render(w); err != nil {
				return err
			}
			if err := writeCSV(w, "fault_sweep.csv", res.WriteCSV); err != nil {
				return err
			}
			fmt.Fprintln(w)
			return nil
		}},
		// Scaling: the flat barrier vs the two-tier protocols on one shared
		// population (DESIGN.md §14). Engine workers stay serial here so the
		// measured rounds/s are comparable while other sections run.
		{"hier-sweep", func(w io.Writer) error {
			ho := experiments.DefaultHierSweepOptions()
			ho.N = sz.hierN
			ho.Regions = sz.hierRegions
			ho.Steps = sz.hierSteps
			ho.Seed = *seed
			res, err := experiments.HierSweep(ho)
			if err != nil {
				return err
			}
			if err := res.Render(w); err != nil {
				return err
			}
			if err := writeCSV(w, "hier_sweep.csv", res.WriteCSV); err != nil {
				return err
			}
			fmt.Fprintln(w)
			return nil
		}},
		// Robustness: the guard ablation — guarded controller vs its own
		// unguarded actor vs max-frequency safe mode across the chaos
		// mutation classes (DESIGN.md §11).
		{"guard-chaos", func(w io.Writer) error {
			gopts := experiments.DefaultGuardChaosOptions()
			gopts.Episodes = sz.guardEpisodes
			gopts.Iterations = sz.guardIters
			gopts.Seed = *seed
			res, err := experiments.GuardChaos(testbed, gopts)
			if err != nil {
				return err
			}
			if err := res.Render(w); err != nil {
				return err
			}
			if err := writeCSV(w, "guard_chaos.csv", res.WriteCSV); err != nil {
				return err
			}
			fmt.Fprintln(w)
			return nil
		}},
		// Robustness: safe training — does constraint-aware training reduce
		// how often the serving-time guard has to fire? (DESIGN.md §16).
		{"safe-training", func(w io.Writer) error {
			sc := experiments.TestbedScenario(*seed)
			sc.N = 2
			sc.TraceSec = 1500
			sc.Lambda = 0.1 // time-dominated objective: the plan gate is policy-sensitive
			sopts := experiments.DefaultSafeTrainingOptions()
			sopts.Episodes = sz.safeEpisodes
			sopts.Iterations = sz.safeIters
			sopts.Seed = *seed
			// The gate's CostFactor matches the constrained arm's deadline
			// slack, so constrained training internalizes the exact bound
			// the guard enforces (the acceptance-test profile).
			sopts.Guard = guard.Config{CostFactor: 1.25, TripAfter: 1, Probation: 4}
			res, err := experiments.SafeTraining(sc, sopts)
			if err != nil {
				return err
			}
			if err := res.Render(w); err != nil {
				return err
			}
			if err := res.Check(); err != nil {
				fmt.Fprintf(w, "acceptance: %v\n", err)
			} else {
				fmt.Fprintf(w, "acceptance: constrained arm trips strictly less (%d < %d) at cost %.1f <= %.1f\n",
					res.Constrained.Trips, res.Unconstrained.Trips,
					res.Constrained.Cost, res.Unconstrained.Cost)
			}
			if err := writeCSV(w, "safe_training.csv", res.WriteCSV); err != nil {
				return err
			}
			fmt.Fprintln(w)
			return nil
		}},
	}

	if !*skipAbl {
		ablation := func(name string, run func() (*experiments.AblationResult, error)) section {
			return section{name, func(w io.Writer) error {
				res, err := run()
				if err != nil {
					return err
				}
				if err := res.Render(w); err != nil {
					return err
				}
				fmt.Fprintln(w)
				return nil
			}}
		}
		sections = append(sections,
			ablation("abl-static-samples", func() (*experiments.AblationResult, error) {
				return experiments.AblationStaticSamples(testbed, []int{1, 2, 3, 5, 10, 20}, sz.ablStaticSeeds, sz.ablIters)
			}),
			ablation("abl-history", func() (*experiments.AblationResult, error) {
				return experiments.AblationHistory(testbed, []int{0, 1, 3, 5, 8}, sz.ablEpisodes, sz.ablIters)
			}),
			ablation("abl-lambda", func() (*experiments.AblationResult, error) {
				return experiments.AblationLambda(testbed, []float64{0.1, 0.5, 1, 2}, sz.ablEpisodes, sz.ablIters)
			}),
			ablation("abl-arch", func() (*experiments.AblationResult, error) {
				return experiments.AblationArch(experiments.SimulationScenario(10, *seed), sz.ablEpisodes, sz.ablIters)
			}),
			ablation("abl-barrier", func() (*experiments.AblationResult, error) {
				return experiments.AblationBarrierAwareness(testbed, sz.ablIters)
			}),
			ablation("abl-sync-async", func() (*experiments.AblationResult, error) {
				return experiments.AblationSyncAsync(testbed, sz.ablIters)
			}),
			ablation("abl-optimizer", func() (*experiments.AblationResult, error) {
				return experiments.AblationOptimizer(testbed, sz.trainEpisodes/2, sz.ablIters)
			}),
			ablation("abl-selection", func() (*experiments.AblationResult, error) {
				return experiments.AblationSelection(experiments.SimulationScenario(10, *seed), 30, sz.ablIters, *seed)
			}),
		)
	}

	// Run all sections on the pool. Each renders into its own buffer; a
	// printer goroutine flushes the buffers in canonical order as soon as
	// every earlier section has finished, so output streams progressively
	// yet deterministically.
	bufs := make([]bytes.Buffer, len(sections))
	done := make([]chan struct{}, len(sections))
	for i := range done {
		done[i] = make(chan struct{})
	}
	printed := make(chan struct{})
	go func() {
		defer close(printed)
		for i := range sections {
			<-done[i]
			os.Stdout.Write(bufs[i].Bytes())
		}
	}()
	err = experiments.RunJobs(len(sections), *workers, func(i int) error {
		defer close(done[i])
		if err := sections[i].run(&bufs[i]); err != nil {
			return fmt.Errorf("%s: %w", sections[i].name, err)
		}
		return nil
	})
	if err != nil {
		fatal(err)
	}
	<-printed
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flexperiments:", err)
	os.Exit(1)
}
