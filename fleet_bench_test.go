package repro

// Fleet-serving benchmarks: how fast can one actor price an entire fleet
// tick? Three backends over the same paper-default shared actor
// (perDev=6 → 64 → 64 → 1, tanh):
//
//   - f64-perdev:  the original serving loop, one float64 MLP.Forward per
//     device (the baseline recorded in results/BENCH_fleet.json)
//   - f64-batched: one float64 ForwardBatch over all device rows
//     (bit-identical to f64-perdev)
//   - f32-fleet:   the cache-blocked float32 fleet actor (rl.FleetActor)
//
// All three report decisions/s (devices priced per second). Regenerate the
// JSON numbers with `make bench-fleet`.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/rl"
	"repro/internal/tensor"
)

// fleetBenchPolicy builds the paper-default shared actor over n devices.
func fleetBenchPolicy(n int) (*rl.SharedGaussianPolicy, tensor.Vector) {
	rng := rand.New(rand.NewSource(1))
	p := rl.NewSharedGaussianPolicy(n, 6, []int{64, 64}, 0.4, rng)
	s := tensor.NewVector(p.StateDim())
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	return p, s
}

func reportFleet(b *testing.B, n int) {
	perDev := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(n)
	b.ReportMetric(perDev, "ns/device")
	b.ReportMetric(1e9/perDev, "decisions/s")
}

func BenchmarkFleetInference(b *testing.B) {
	for _, n := range []int{1000, 100000} {
		p, s := fleetBenchPolicy(n)
		dst := tensor.NewVector(n)

		b.Run(benchName("f32-fleet", n), func(b *testing.B) {
			fa, err := rl.NewFleetActor(p)
			if err != nil {
				b.Fatal(err)
			}
			fa.MeanInto(dst, s) // warmup: grow the arena
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fa.MeanInto(dst, s)
			}
			reportFleet(b, n)
		})

		b.Run(benchName("f64-batched", n), func(b *testing.B) {
			p.MeanInto(dst, s) // warmup: grow the layer caches
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.MeanInto(dst, s)
			}
			reportFleet(b, n)
		})

		b.Run(benchName("f64-perdev", n), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Mean(s)
			}
			reportFleet(b, n)
		})
	}
}

func benchName(backend string, n int) string {
	return fmt.Sprintf("%s/N=%d", backend, n)
}
