#!/bin/sh
# serve_smoke.sh — boot flserver, drive it with flload, verify the SLO and
# the drain invariants, then tear down. Two modes:
#
#   ./scripts/serve_smoke.sh          quick CI smoke: short burst with chaos
#                                     requests mixed in, p99 bound, clean
#                                     drain with zero dropped requests
#   ./scripts/serve_smoke.sh -bench   measurement run: longer, more workers,
#                                     results into results/BENCH_serving.json
#
# Exits non-zero on any failed invariant. Requires only the go toolchain.
set -eu

MODE=smoke
[ "${1:-}" = "-bench" ] && MODE=bench

GO=${GO:-go}
ADDR=127.0.0.1:8701
BASE=http://$ADDR
TMP=$(mktemp -d)
BIN=$TMP/bin
SNAP=$TMP/flserver.snap.json
AUDITS=$TMP/audits
SERVER_LOG=$TMP/flserver.log

mkdir -p "$BIN" results
$GO build -o "$BIN/flserver" ./cmd/flserver
$GO build -o "$BIN/flload" ./cmd/flload

cleanup() {
    [ -n "${SERVER_PID:-}" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

"$BIN/flserver" -addr "$ADDR" -snapshot "$SNAP" -audit-dir "$AUDITS" \
    -queue-cap 4096 -request-timeout 2s >"$SERVER_LOG" 2>&1 &
SERVER_PID=$!

# Wait for the daemon to come up.
i=0
until curl -sf "$BASE/v1/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ $i -gt 50 ]; then
        echo "serve-smoke: flserver did not come up" >&2
        cat "$SERVER_LOG" >&2
        exit 1
    fi
    sleep 0.1
done

if [ "$MODE" = bench ]; then
    "$BIN/flload" -addr "$BASE" -tenants 8 -workers 32 -duration 30s \
        -deadline-ms 500 -batch 16 -out results/BENCH_serving.json
else
    "$BIN/flload" -addr "$BASE" -tenants 4 -workers 16 -duration 5s \
        -deadline-ms 500 -chaos 0.05 -max-p99-ms 250 \
        -out "$TMP/BENCH_smoke.json"
fi

# Graceful drain: SIGTERM, then verify the daemon reports zero dropped
# in-flight requests and leaves the audit files and snapshot behind.
kill -TERM "$SERVER_PID"
i=0
while kill -0 "$SERVER_PID" 2>/dev/null; do
    i=$((i + 1))
    if [ $i -gt 150 ]; then
        echo "serve-smoke: flserver did not drain within 15s" >&2
        cat "$SERVER_LOG" >&2
        exit 1
    fi
    sleep 0.1
done
SERVER_PID=

grep -q "dropped 0" "$SERVER_LOG" || {
    echo "serve-smoke: drain dropped in-flight requests" >&2
    cat "$SERVER_LOG" >&2
    exit 1
}
[ -f "$SNAP" ] || { echo "serve-smoke: no registry snapshot written" >&2; exit 1; }
ls "$AUDITS"/*.audit >/dev/null 2>&1 || {
    echo "serve-smoke: no audit files flushed on drain" >&2
    exit 1
}

# Chaos: reboot from the snapshot, kill -9 mid-load, and verify the
# snapshot written by the clean drain still restores intact — the atomic
# write pattern means a hard kill can never leave a partial registry.
cp "$SNAP" "$SNAP.golden"
"$BIN/flserver" -addr "$ADDR" -snapshot "$SNAP" -audit-dir "$AUDITS" \
    -queue-cap 4096 >"$SERVER_LOG.2" 2>&1 &
SERVER_PID=$!
i=0
until curl -sf "$BASE/v1/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ $i -gt 50 ] && { echo "serve-smoke: restart from snapshot failed" >&2; cat "$SERVER_LOG.2" >&2; exit 1; }
    sleep 0.1
done
"$BIN/flload" -addr "$BASE" -tenants 2 -workers 8 -duration 10s \
    -out "$TMP/BENCH_chaos.json" >/dev/null 2>&1 &
LOAD_PID=$!
sleep 1
kill -9 "$SERVER_PID"
SERVER_PID=
wait "$LOAD_PID" 2>/dev/null || true
cmp -s "$SNAP" "$SNAP.golden" || {
    echo "serve-smoke: kill -9 corrupted the registry snapshot" >&2
    exit 1
}
"$BIN/flserver" -addr "$ADDR" -snapshot "$SNAP" >"$SERVER_LOG.3" 2>&1 &
SERVER_PID=$!
i=0
until curl -sf "$BASE/v1/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ $i -gt 50 ] && { echo "serve-smoke: reboot after kill -9 failed" >&2; cat "$SERVER_LOG.3" >&2; exit 1; }
    sleep 0.1
done
curl -sf "$BASE/v1/stats" | grep -q '"load-0"' || {
    echo "serve-smoke: tenants not restored after kill -9 reboot" >&2
    exit 1
}
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=

echo "serve-smoke: OK (clean drain, snapshot + audits written, kill -9 survived)"
