package nn

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// TestForwardBatchMatchesForward pins the batching contract: row i of
// ForwardBatch must be bit-identical to Forward on sample i alone, for
// both activations and at batch sizes spanning the inline and parallel
// activation paths.
func TestForwardBatchMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := NewMLP([]int{5, 16, 4}, Tanh, Identity, rng)
	for _, n := range []int{1, 7, 64} {
		X := tensor.NewMatrix(n, 5)
		for i := range X.Data {
			X.Data[i] = rng.NormFloat64()
		}
		Y := net.ForwardBatch(X)
		for i := 0; i < n; i++ {
			y := net.Forward(tensor.Vector(X.Data[i*5 : (i+1)*5]))
			for j, want := range y {
				if got := Y.At(i, j); got != want {
					t.Fatalf("n=%d sample %d out %d: batch %v != single %v", n, i, j, got, want)
				}
			}
			// Forward overwrote the per-sample caches; re-run the batch so
			// the next row comparison reads fresh batch outputs.
			Y = net.ForwardBatch(X)
		}
	}
}

// TestBackwardBatchMatchesBackward pins the gradient contract: one
// BackwardBatch call accumulates exactly the gradients of n sequential
// Forward/Backward passes, in the same floating-point order, and returns
// the same per-sample input gradients.
func TestBackwardBatchMatchesBackward(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net := NewMLP([]int{4, 12, 3}, Tanh, Identity, rng)
	ref := net.Clone()

	n := 9
	X := tensor.NewMatrix(n, 4)
	D := tensor.NewMatrix(n, 3)
	for i := range X.Data {
		X.Data[i] = rng.NormFloat64()
	}
	for i := range D.Data {
		D.Data[i] = rng.NormFloat64()
	}

	net.ForwardBatch(X)
	dX := net.BackwardBatch(D)

	refDX := tensor.NewMatrix(n, 4)
	for i := 0; i < n; i++ {
		ref.Forward(tensor.Vector(X.Data[i*4 : (i+1)*4]))
		g := tensor.Vector(D.Data[i*3 : (i+1)*3])
		dx := g
		for li := len(ref.Layers) - 1; li >= 0; li-- {
			dx = ref.Layers[li].Backward(dx)
		}
		copy(refDX.Data[i*4:(i+1)*4], dx)
	}

	gp, rp := net.Params(), ref.Params()
	for pi := range gp {
		for i := range gp[pi].G {
			if gp[pi].G[i] != rp[pi].G[i] {
				t.Fatalf("param %s[%d]: batch grad %v != sequential %v",
					gp[pi].Name, i, gp[pi].G[i], rp[pi].G[i])
			}
		}
	}
	for i := range dX.Data {
		if dX.Data[i] != refDX.Data[i] {
			t.Fatalf("dX[%d]: batch %v != sequential %v", i, dX.Data[i], refDX.Data[i])
		}
	}
}

// TestBackwardBatchWithoutForwardPanics pins the usage contract.
func TestBackwardBatchWithoutForwardPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l := NewLinear(3, 2, Tanh, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("BackwardBatch without ForwardBatch did not panic")
		}
	}()
	l.BackwardBatch(tensor.NewMatrix(4, 2))
}
