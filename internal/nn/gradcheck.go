package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// LossFunc evaluates a scalar loss for an input, writing d(loss)/d(output)
// into dout when requested. It is used by GradCheck to compare analytic and
// numeric gradients.
type LossFunc func(out tensor.Vector, dout tensor.Vector) float64

// GradCheck compares backprop gradients with central finite differences for
// a single input sample and returns the worst relative error across all
// parameters. loss must be deterministic.
func GradCheck(m *MLP, x tensor.Vector, loss LossFunc, h float64) (float64, error) {
	// Analytic pass.
	m.ZeroGrad()
	out := m.Forward(x)
	dout := tensor.NewVector(len(out))
	loss(out, dout)
	m.Backward(dout)

	analytic := make([][]float64, 0)
	for _, p := range m.Params() {
		analytic = append(analytic, append([]float64(nil), p.G...))
	}

	worst := 0.0
	scratch := tensor.NewVector(m.OutDim())
	for pi, p := range m.Params() {
		for i := range p.W {
			orig := p.W[i]
			p.W[i] = orig + h
			lp := loss(m.Forward(x), scratch)
			p.W[i] = orig - h
			lm := loss(m.Forward(x), scratch)
			p.W[i] = orig
			num := (lp - lm) / (2 * h)
			ana := analytic[pi][i]
			den := math.Max(math.Abs(num)+math.Abs(ana), 1e-8)
			rel := math.Abs(num-ana) / den
			if rel > worst {
				worst = rel
			}
			if math.IsNaN(rel) {
				return worst, fmt.Errorf("nn: GradCheck NaN at param %q index %d", p.Name, i)
			}
		}
	}
	return worst, nil
}
