package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestActivationValues(t *testing.T) {
	cases := []struct {
		a    Activation
		x    float64
		want float64
	}{
		{Identity, 2.5, 2.5},
		{Tanh, 0, 0},
		{ReLU, -1, 0},
		{ReLU, 3, 3},
		{Sigmoid, 0, 0.5},
		{Softplus, 0, math.Log(2)},
		{Softplus, 40, 40}, // overflow guard path
	}
	for _, c := range cases {
		got := c.a.apply(c.x)
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%v(%v) = %v, want %v", c.a, c.x, got, c.want)
		}
	}
}

func TestActivationDerivMatchesNumeric(t *testing.T) {
	h := 1e-6
	for _, a := range []Activation{Identity, Tanh, ReLU, Sigmoid, Softplus} {
		for _, x := range []float64{-2, -0.5, 0.3, 1.7} {
			y := a.apply(x)
			got := a.deriv(x, y)
			num := (a.apply(x+h) - a.apply(x-h)) / (2 * h)
			if math.Abs(got-num) > 1e-5 {
				t.Errorf("%v'(%v) = %v, numeric %v", a, x, got, num)
			}
		}
	}
}

func TestActivationString(t *testing.T) {
	if Tanh.String() != "tanh" || Activation(99).String() == "" {
		t.Fatal("String() broken")
	}
}

func TestLinearForwardKnown(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear(2, 2, Identity, rng)
	l.W.Set(0, 0, 1)
	l.W.Set(0, 1, 2)
	l.W.Set(1, 0, 3)
	l.W.Set(1, 1, 4)
	l.B[0], l.B[1] = 10, 20
	out := l.Forward(tensor.Vector{1, 1})
	if out[0] != 13 || out[1] != 27 {
		t.Fatalf("Forward = %v", out)
	}
}

func TestMLPGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, act := range []Activation{Tanh, Sigmoid, Softplus} {
		m := NewMLP([]int{4, 8, 3}, act, Identity, rng)
		x := tensor.NewVector(4)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		// Loss: 0.5·Σ(out-target)²
		target := tensor.Vector{0.3, -0.7, 1.2}
		loss := func(out, dout tensor.Vector) float64 {
			var l float64
			for i := range out {
				d := out[i] - target[i]
				l += 0.5 * d * d
				dout[i] = d
			}
			return l
		}
		worst, err := GradCheck(m, x, loss, 1e-5)
		if err != nil {
			t.Fatalf("%v: %v", act, err)
		}
		if worst > 1e-4 {
			t.Errorf("%v: gradcheck worst relative error %v", act, worst)
		}
	}
}

func TestMLPGradCheckReLU(t *testing.T) {
	// ReLU kinks can upset finite differences; use inputs away from zero.
	rng := rand.New(rand.NewSource(11))
	m := NewMLP([]int{3, 6, 2}, ReLU, Identity, rng)
	x := tensor.Vector{0.9, -1.3, 0.6}
	loss := func(out, dout tensor.Vector) float64 {
		var l float64
		for i := range out {
			l += out[i]
			dout[i] = 1
		}
		return l
	}
	worst, err := GradCheck(m, x, loss, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if worst > 1e-3 {
		t.Errorf("gradcheck worst relative error %v", worst)
	}
}

func TestBackwardAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMLP([]int{2, 2}, Identity, Identity, rng)
	x := tensor.Vector{1, 2}
	dout := tensor.Vector{1, 1}
	m.ZeroGrad()
	m.Forward(x)
	m.Backward(dout)
	g1 := append([]float64(nil), m.Layers[0].GW.Data...)
	m.Forward(x)
	m.Backward(dout)
	for i, g := range m.Layers[0].GW.Data {
		if math.Abs(g-2*g1[i]) > 1e-12 {
			t.Fatalf("gradients should accumulate: %v vs 2*%v", g, g1[i])
		}
	}
	m.ZeroGrad()
	for _, g := range m.Layers[0].GW.Data {
		if g != 0 {
			t.Fatal("ZeroGrad did not clear")
		}
	}
}

func TestMLPDims(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewMLP([]int{7, 16, 16, 4}, Tanh, Identity, rng)
	if m.InDim() != 7 || m.OutDim() != 4 {
		t.Fatalf("dims = %d,%d", m.InDim(), m.OutDim())
	}
	want := 7*16 + 16 + 16*16 + 16 + 16*4 + 4
	if m.NumParams() != want {
		t.Fatalf("NumParams = %d want %d", m.NumParams(), want)
	}
	if len(m.Params()) != 6 {
		t.Fatalf("Params count = %d", len(m.Params()))
	}
}

func TestNewMLPTooFewSizesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMLP([]int{3}, Tanh, Identity, rand.New(rand.NewSource(1)))
}

func TestCloneAndCopyParams(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := NewMLP([]int{3, 5, 2}, Tanh, Identity, rng)
	c := m.Clone()
	x := tensor.Vector{0.1, -0.2, 0.3}
	a := m.Forward(x).Clone()
	b := c.Forward(x).Clone()
	if !tensor.Equal(a, b) {
		t.Fatal("clone forward differs")
	}
	// Mutate the clone; original unaffected.
	c.Layers[0].W.Data[0] += 1
	b2 := c.Forward(x).Clone()
	if tensor.Equal(a, b2) {
		t.Fatal("clone shares storage with original")
	}
	// CopyParamsFrom restores equality.
	c.CopyParamsFrom(m)
	b3 := c.Forward(x).Clone()
	if !tensor.Equal(a, b3) {
		t.Fatal("CopyParamsFrom did not restore")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m := NewMLP([]int{4, 6, 2}, ReLU, Sigmoid, rng)
	data, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var m2 MLP
	if err := m2.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	x := tensor.Vector{0.5, -1, 2, 0.25}
	if !tensor.Equal(m.Forward(x).Clone(), m2.Forward(x).Clone()) {
		t.Fatal("round-trip changed forward pass")
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	var m MLP
	if err := m.UnmarshalBinary([]byte("not gob")); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	// Minimize f(w) = Σ (w_i - i)² with raw Params.
	w := make([]float64, 4)
	g := make([]float64, 4)
	p := []Param{{Name: "w", W: w, G: g}}
	opt := NewSGD(0.1, 0.9)
	for step := 0; step < 300; step++ {
		for i := range w {
			g[i] = 2 * (w[i] - float64(i))
		}
		opt.Step(p)
	}
	for i := range w {
		if math.Abs(w[i]-float64(i)) > 1e-3 {
			t.Fatalf("SGD failed to converge: w=%v", w)
		}
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	w := make([]float64, 4)
	g := make([]float64, 4)
	p := []Param{{Name: "w", W: w, G: g}}
	opt := NewAdam(0.05)
	for step := 0; step < 2000; step++ {
		for i := range w {
			g[i] = 2 * (w[i] - float64(i))
		}
		opt.Step(p)
	}
	for i := range w {
		if math.Abs(w[i]-float64(i)) > 1e-2 {
			t.Fatalf("Adam failed to converge: w=%v", w)
		}
	}
}

func TestAdamFirstStepBiasCorrection(t *testing.T) {
	// With bias correction the very first Adam step has magnitude ≈ lr,
	// regardless of gradient scale.
	for _, scale := range []float64{1e-3, 1, 1e3} {
		w := []float64{0}
		g := []float64{scale}
		opt := NewAdam(0.1)
		opt.Step([]Param{{W: w, G: g}})
		if math.Abs(math.Abs(w[0])-0.1) > 1e-6 {
			t.Fatalf("first step = %v for grad scale %v", w[0], scale)
		}
	}
}

func TestClipGradNorm(t *testing.T) {
	g := []float64{3, 4} // norm 5
	p := []Param{{W: make([]float64, 2), G: g}}
	norm := ClipGradNorm(p, 1)
	if math.Abs(norm-5) > 1e-12 {
		t.Fatalf("pre-clip norm = %v", norm)
	}
	var after float64
	for _, x := range g {
		after += x * x
	}
	if math.Abs(math.Sqrt(after)-1) > 1e-9 {
		t.Fatalf("post-clip norm = %v", math.Sqrt(after))
	}
	// Below the cap: unchanged.
	g2 := []float64{0.1, 0.1}
	ClipGradNorm([]Param{{W: make([]float64, 2), G: g2}}, 10)
	if g2[0] != 0.1 {
		t.Fatal("clip modified small gradient")
	}
	// Disabled clipping leaves gradients alone.
	g3 := []float64{30, 40}
	ClipGradNorm([]Param{{W: make([]float64, 2), G: g3}}, 0)
	if g3[0] != 30 {
		t.Fatal("maxNorm<=0 should not clip")
	}
}

func TestForwardDeterministicProperty(t *testing.T) {
	// Same input ⇒ same output (no hidden state leaks between calls).
	rng := rand.New(rand.NewSource(33))
	m := NewMLP([]int{5, 8, 3}, Tanh, Identity, rng)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := tensor.NewVector(5)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		a := m.Forward(x).Clone()
		// Interleave an unrelated forward pass.
		m.Forward(tensor.NewVector(5))
		b := m.Forward(x).Clone()
		return tensor.Equal(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestXavierInitScale(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	l := NewLinear(1000, 10, Tanh, rng)
	var sq float64
	for _, w := range l.W.Data {
		sq += w * w
	}
	std := math.Sqrt(sq / float64(len(l.W.Data)))
	want := math.Sqrt(1.0 / 1000)
	if std < want*0.8 || std > want*1.2 {
		t.Fatalf("init std = %v, want ≈ %v", std, want)
	}
	for _, b := range l.B {
		if b != 0 {
			t.Fatal("bias should start at zero")
		}
	}
}
