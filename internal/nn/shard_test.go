package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func randBatch(n, d int, rng *rand.Rand) *tensor.Matrix {
	m := tensor.NewMatrix(n, d)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// TestCloneGradOnlySharesWeights pins the replica contract: weights and
// biases alias the primary's storage (a primary update is instantly visible
// to every replica) while gradients stay private.
func TestCloneGradOnlySharesWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	net := NewMLP([]int{4, 8, 2}, Tanh, Identity, rng)
	rep := net.CloneGradOnly()

	net.Layers[0].W.Data[0] = 123.5
	net.Layers[1].B[1] = -7.25
	if rep.Layers[0].W.Data[0] != 123.5 || rep.Layers[1].B[1] != -7.25 {
		t.Fatal("replica does not share weight/bias storage with primary")
	}
	if &rep.Layers[0].GW.Data[0] == &net.Layers[0].GW.Data[0] {
		t.Fatal("replica shares gradient storage with primary")
	}

	// A replica backward must not disturb the primary's accumulated grads.
	X := randBatch(6, 4, rng)
	D := randBatch(6, 2, rng)
	net.ZeroGrad()
	rep.ForwardBatch(X)
	rep.BackwardBatchParams(D)
	for _, p := range net.Params() {
		for _, g := range p.G {
			if g != 0 {
				t.Fatal("replica backward wrote into primary gradients")
			}
		}
	}
}

// TestCloneGradOnlySetsGrads pins the zero-free accumulation contract: a
// replica's batched backward overwrites stale gradients instead of adding
// to them, so no ZeroGrad is needed between minibatches.
func TestCloneGradOnlySetsGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	net := NewMLP([]int{3, 6, 2}, Tanh, Identity, rng)
	rep := net.CloneGradOnly()
	X := randBatch(5, 3, rng)
	D := randBatch(5, 2, rng)

	rep.ForwardBatch(X)
	rep.BackwardBatchParams(D)
	want := make([][]float64, 0)
	for _, p := range rep.Params() {
		want = append(want, append([]float64(nil), p.G...))
	}

	// Run the same minibatch again without zeroing: grads must not double.
	rep.ForwardBatch(X)
	rep.BackwardBatchParams(D)
	for pi, p := range rep.Params() {
		for i, g := range p.G {
			if g != want[pi][i] {
				t.Fatalf("param %s[%d]: second pass %v != first %v (accumulated, not set)",
					p.Name, i, g, want[pi][i])
			}
		}
	}
}

// refTreeSum computes the reduction tree MergeGradTree promises for b
// shards, elementwise, from untouched copies of the shard grads.
func refTreeSum(grads [][]float64) []float64 {
	b := len(grads)
	work := make([][]float64, b)
	for i, g := range grads {
		work[i] = append([]float64(nil), g...)
	}
	if b == 1 {
		return work[0]
	}
	stride := 1
	for ; stride*2 < b; stride *= 2 {
		for i := 0; i+stride < b; i += stride * 2 {
			for k := range work[i] {
				work[i][k] += work[i+stride][k]
			}
		}
	}
	out := make([]float64, len(work[0]))
	for k := range out {
		out[k] = work[0][k] + work[stride][k]
	}
	return out
}

// TestMergeGradTreeShape pins the exact reduction tree for every shard
// count up to 9, and that the destination is overwritten (stale primary
// grads never leak into the merge).
func TestMergeGradTreeShape(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for b := 1; b <= 9; b++ {
		net := NewMLP([]int{3, 5, 2}, Tanh, Identity, rng)
		for _, p := range net.Params() {
			for i := range p.G {
				p.G[i] = 999 // must be overwritten, not accumulated into
			}
		}
		shards := make([][]Param, b)
		raw := make([][][]float64, b)
		for s := 0; s < b; s++ {
			rep := net.CloneGradOnly()
			shards[s] = rep.Params()
			raw[s] = make([][]float64, len(shards[s]))
			for pi, p := range shards[s] {
				for i := range p.G {
					p.G[i] = rng.NormFloat64()
				}
				raw[s][pi] = append([]float64(nil), p.G...)
			}
		}
		MergeGradTree(net.Params(), shards)
		for pi, p := range net.Params() {
			grads := make([][]float64, b)
			for s := 0; s < b; s++ {
				grads[s] = raw[s][pi]
			}
			want := refTreeSum(grads)
			for i, g := range p.G {
				if g != want[i] {
					t.Fatalf("b=%d param %s[%d]: merged %v != tree %v", b, p.Name, i, g, want[i])
				}
			}
		}
	}
}

// TestShardedBackwardMatchesMonolith splits a batch into fixed row blocks,
// runs each block through its own replica, merges with MergeGradTree, and
// checks the result against the monolithic batched backward. The summation
// trees differ (block-grouped vs strictly sequential), so the comparison is
// a tight tolerance, not bit equality — the determinism contract is about
// worker-count invariance, which TestMergeGradTreeShape pins structurally.
func TestShardedBackwardMatchesMonolith(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	net := NewMLP([]int{6, 16, 3}, Tanh, Identity, rng)
	mono := net.Clone()

	const n, block = 37, 16 // odd total forces a short trailing block
	X := randBatch(n, 6, rng)
	D := randBatch(n, 3, rng)

	mono.ZeroGrad()
	mono.ForwardBatch(X)
	mono.BackwardBatchParams(D)

	var shards [][]Param
	for lo := 0; lo < n; lo += block {
		hi := lo + block
		if hi > n {
			hi = n
		}
		rep := net.CloneGradOnly()
		xv := &tensor.Matrix{Rows: hi - lo, Cols: 6, Data: X.Data[lo*6 : hi*6]}
		dv := &tensor.Matrix{Rows: hi - lo, Cols: 3, Data: D.Data[lo*3 : hi*3]}
		rep.ForwardBatch(xv)
		rep.BackwardBatchParams(dv)
		shards = append(shards, rep.Params())
	}
	MergeGradTree(net.Params(), shards)

	mp, sp := mono.Params(), net.Params()
	for pi := range sp {
		for i := range sp[pi].G {
			got, want := sp[pi].G[i], mp[pi].G[i]
			if math.Abs(got-want) > 1e-12*(1+math.Abs(want)) {
				t.Fatalf("param %s[%d]: sharded %v vs monolith %v", sp[pi].Name, i, got, want)
			}
		}
	}
}

// TestBackwardBatchParamsMatchesBackwardBatch pins that skipping the
// layer-0 input gradient changes no parameter gradient bit.
func TestBackwardBatchParamsMatchesBackwardBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := NewMLP([]int{5, 10, 2}, Tanh, Identity, rng)
	b := a.Clone()
	X := randBatch(8, 5, rng)
	D := randBatch(8, 2, rng)

	a.ForwardBatch(X)
	a.BackwardBatch(D)
	b.ForwardBatch(X)
	b.BackwardBatchParams(D)

	ap, bp := a.Params(), b.Params()
	for pi := range ap {
		for i := range ap[pi].G {
			if ap[pi].G[i] != bp[pi].G[i] {
				t.Fatalf("param %s[%d]: %v != %v", ap[pi].Name, i, bp[pi].G[i], ap[pi].G[i])
			}
		}
	}
}

// TestBatchedGradCheck runs central finite differences over the batched
// forward against the analytic gradients produced by the tiled backward
// kernels, for both serial replicas and the parallel primary path.
func TestBatchedGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for _, serial := range []bool{false, true} {
		net := NewMLP([]int{4, 9, 3}, Tanh, Identity, rng)
		work := net
		if serial {
			work = net.CloneGradOnly()
		}
		const n = 11
		X := randBatch(n, 4, rng)
		Wt := randBatch(n, 3, rng) // fixed loss weights: L = Σ Wt∘Y

		loss := func() float64 {
			Y := work.ForwardBatch(X)
			var s float64
			for i, y := range Y.Data {
				s += Wt.Data[i] * y
			}
			return s
		}

		work.ZeroGrad()
		loss()
		work.BackwardBatchParams(Wt)

		const h = 1e-6
		for _, p := range work.Params() {
			for i := range p.W {
				orig := p.W[i]
				p.W[i] = orig + h
				up := loss()
				p.W[i] = orig - h
				down := loss()
				p.W[i] = orig
				numeric := (up - down) / (2 * h)
				if math.Abs(numeric-p.G[i]) > 1e-4*(1+math.Abs(numeric)) {
					t.Fatalf("serial=%v param %s[%d]: analytic %v vs numeric %v",
						serial, p.Name, i, p.G[i], numeric)
				}
			}
		}
	}
}

// TestStepScaledMatchesClipThenStep pins the optimizer fusion: one
// StepScaled with the clip multiplier must reproduce ClipGradNorm followed
// by Step bit for bit, across clipping and non-clipping norms.
func TestStepScaledMatchesClipThenStep(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for _, maxNorm := range []float64{0.001, 0.5, 1e9, 0} {
		a := NewMLP([]int{3, 7, 2}, Tanh, Identity, rng)
		b := a.Clone()
		for pi, p := range a.Params() {
			for i := range p.G {
				g := rng.NormFloat64()
				p.G[i] = g
				b.Params()[pi].G[i] = g
			}
		}
		oa, ob := NewAdam(3e-3), NewAdam(3e-3)
		for step := 0; step < 3; step++ {
			ClipGradNorm(a.Params(), maxNorm)
			oa.Step(a.Params())

			scale := ClipScale(GradNorm(b.Params()), maxNorm)
			ob.StepScaled(b.Params(), scale)

			ap, bp := a.Params(), b.Params()
			for pi := range ap {
				for i := range ap[pi].W {
					if ap[pi].W[i] != bp[pi].W[i] {
						t.Fatalf("maxNorm=%v step %d param %s[%d]: fused %v != legacy %v",
							maxNorm, step, ap[pi].Name, i, bp[pi].W[i], ap[pi].W[i])
					}
				}
			}
		}
	}
}

// TestClipGradNormSinglePass pins the restructured ClipGradNorm against an
// inline two-pass reference, including the no-clip and disabled cases.
func TestClipGradNormSinglePass(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, maxNorm := range []float64{0.001, 0.75, 1e9, 0, -1} {
		a := NewMLP([]int{3, 5, 2}, Tanh, Identity, rng)
		b := a.Clone()
		for pi, p := range a.Params() {
			for i := range p.G {
				g := rng.NormFloat64()
				p.G[i] = g
				b.Params()[pi].G[i] = g
			}
		}
		gotNorm := ClipGradNorm(a.Params(), maxNorm)

		// Historical two-pass form.
		var sq float64
		for _, p := range b.Params() {
			for _, g := range p.G {
				sq += g * g
			}
		}
		wantNorm := math.Sqrt(sq)
		if maxNorm > 0 && wantNorm > maxNorm {
			scale := maxNorm / (wantNorm + 1e-12)
			for _, p := range b.Params() {
				for i := range p.G {
					p.G[i] *= scale
				}
			}
		}

		if gotNorm != wantNorm {
			t.Fatalf("maxNorm=%v: norm %v != reference %v", maxNorm, gotNorm, wantNorm)
		}
		ap, bp := a.Params(), b.Params()
		for pi := range ap {
			for i := range ap[pi].G {
				if ap[pi].G[i] != bp[pi].G[i] {
					t.Fatalf("maxNorm=%v param %s[%d]: %v != %v",
						maxNorm, ap[pi].Name, i, ap[pi].G[i], bp[pi].G[i])
				}
			}
		}
	}
}

// TestParamsCachedStable pins the caching contract: repeated Params() calls
// return the same backing slice with len == cap, so caller appends copy.
func TestParamsCachedStable(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	net := NewMLP([]int{3, 4, 2}, Tanh, Identity, rng)
	p1 := net.Params()
	p2 := net.Params()
	if &p1[0] != &p2[0] {
		t.Fatal("Params() not cached")
	}
	if len(p1) != cap(p1) {
		t.Fatalf("Params() len %d != cap %d: caller appends would alias the cache", len(p1), cap(p1))
	}
	ext := append(net.Params(), Param{Name: "extra"})
	if len(net.Params()) != len(p1) {
		t.Fatal("append to Params() result mutated the cache")
	}
	_ = ext

	// UnmarshalBinary replaces layers and must invalidate the cache.
	blob, err := net.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := net.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	p3 := net.Params()
	if &p3[0].W[0] != &net.Layers[0].W.Data[0] {
		t.Fatal("Params() cache stale after UnmarshalBinary")
	}
}
