package nn

import "math"

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update to every parameter and leaves the gradient
	// buffers untouched (callers decide when to ZeroGrad).
	Step(params []Param)
}

// SGD is stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64
	vel      map[*float64][]float64 // keyed by &W[0]
}

// NewSGD returns an SGD optimizer with the given learning rate and momentum.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, vel: make(map[*float64][]float64)}
}

// Step applies one SGD update.
func (o *SGD) Step(params []Param) {
	for _, p := range params {
		if len(p.W) == 0 {
			continue
		}
		if o.Momentum == 0 {
			for i := range p.W {
				p.W[i] -= o.LR * p.G[i]
			}
			continue
		}
		key := &p.W[0]
		v := o.vel[key]
		if v == nil {
			v = make([]float64, len(p.W))
			o.vel[key] = v
		}
		for i := range p.W {
			v[i] = o.Momentum*v[i] + p.G[i]
			p.W[i] -= o.LR * v[i]
		}
	}
}

// Adam implements the Adam optimizer (Kingma & Ba 2015) with bias
// correction.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64

	t    int
	m, v map[*float64][]float64
}

// NewAdam returns an Adam optimizer with the usual defaults
// (β1=0.9, β2=0.999, ε=1e-8).
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8,
		m: make(map[*float64][]float64),
		v: make(map[*float64][]float64),
	}
}

// Step applies one Adam update.
func (o *Adam) Step(params []Param) { o.StepScaled(params, 1) }

// StepScaled applies one Adam update reading each gradient as G[i]*scale,
// fusing gradient clipping into the moment update so the gradient buffers
// are read once and never rewritten. Because x*1 is an exact identity (for
// every float64 including ±0 and NaN), StepScaled(p, 1) is bit-identical to
// an unscaled step, and StepScaled(p, ClipScale(GradNorm(p), max)) is
// bit-identical to ClipGradNorm(p, max) followed by Step(p).
func (o *Adam) StepScaled(params []Param, scale float64) {
	o.t++
	bc1 := 1 - math.Pow(o.Beta1, float64(o.t))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for _, p := range params {
		if len(p.W) == 0 {
			continue
		}
		key := &p.W[0]
		m := o.m[key]
		v := o.v[key]
		if m == nil {
			m = make([]float64, len(p.W))
			v = make([]float64, len(p.W))
			o.m[key] = m
			o.v[key] = v
		}
		for i := range p.W {
			g := p.G[i] * scale
			m[i] = o.Beta1*m[i] + (1-o.Beta1)*g
			v[i] = o.Beta2*v[i] + (1-o.Beta2)*g*g
			mh := m[i] / bc1
			vh := v[i] / bc2
			p.W[i] -= o.LR * mh / (math.Sqrt(vh) + o.Epsilon)
		}
	}
}

// GradNorm returns the global L2 norm of all gradients, summing squares in
// the same parameter-then-element order ClipGradNorm has always used.
func GradNorm(params []Param) float64 {
	var sq float64
	for _, p := range params {
		for _, g := range p.G {
			sq += g * g
		}
	}
	return math.Sqrt(sq)
}

// ClipScale returns the multiplier gradient clipping applies for a pre-clip
// norm: 1 when no clipping is needed (maxNorm ≤ 0, norm ≤ maxNorm, or a
// NaN norm, which disables clipping just as the historical comparison did).
func ClipScale(norm, maxNorm float64) float64 {
	if maxNorm > 0 && norm > maxNorm {
		return maxNorm / (norm + 1e-12)
	}
	return 1
}

// ClipGradNorm rescales all gradients so their global L2 norm is at most
// maxNorm, and returns the pre-clip norm. maxNorm ≤ 0 disables clipping.
// It is a single read pass plus a conditional scale pass; callers on the
// hot path should fuse the scale into Adam.StepScaled instead, which is
// bit-identical (pinned by TestStepScaledMatchesClipThenStep).
func ClipGradNorm(params []Param, maxNorm float64) float64 {
	norm := GradNorm(params)
	if scale := ClipScale(norm, maxNorm); scale != 1 {
		for _, p := range params {
			for i := range p.G {
				p.G[i] *= scale
			}
		}
	}
	return norm
}
