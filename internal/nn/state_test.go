package nn

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/tensor"
)

func stateTestNet(seed int64) *MLP {
	return NewMLP([]int{3, 4, 2}, Tanh, Identity, rand.New(rand.NewSource(seed)))
}

func TestMLPStateRoundTrip(t *testing.T) {
	src := stateTestNet(1)
	st := src.State()
	// Through JSON, as the checkpoint file does.
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var back MLPState
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	dst := stateTestNet(2) // different weights, same architecture
	if err := dst.LoadState(back); err != nil {
		t.Fatal(err)
	}
	x := tensor.Vector{0.3, -0.7, 1.1}
	got := dst.Forward(x)
	want := src.Forward(x)
	if !reflect.DeepEqual(append(tensor.Vector(nil), got...), append(tensor.Vector(nil), want...)) {
		t.Fatalf("restored forward %v, want %v", got, want)
	}
}

func TestMLPLoadStateInPlace(t *testing.T) {
	m := stateTestNet(3)
	ptrs := make([]*float64, 0, len(m.Layers))
	for _, l := range m.Layers {
		ptrs = append(ptrs, &l.W.Data[0])
	}
	if err := m.LoadState(stateTestNet(4).State()); err != nil {
		t.Fatal(err)
	}
	for i, l := range m.Layers {
		if &l.W.Data[0] != ptrs[i] {
			t.Fatalf("layer %d weights reallocated by LoadState", i)
		}
	}
}

func TestMLPLoadStateRejectsMismatch(t *testing.T) {
	m := stateTestNet(1)
	cases := []MLPState{
		NewMLP([]int{3, 4, 4, 2}, Tanh, Identity, rand.New(rand.NewSource(1))).State(), // depth
		NewMLP([]int{3, 5, 2}, Tanh, Identity, rand.New(rand.NewSource(1))).State(),    // width
		NewMLP([]int{3, 4, 2}, ReLU, Identity, rand.New(rand.NewSource(1))).State(),    // activation
	}
	for i, st := range cases {
		if err := m.LoadState(st); err == nil {
			t.Fatalf("case %d: mismatched checkpoint accepted", i)
		}
	}
}

// A restored optimizer must continue the step sequence bit-identically: run
// A for 2k steps; run B for k steps, checkpoint net+optimizer, restore into
// fresh objects, run k more — final weights must match A exactly.
func TestAdamStateRoundTripContinuesIdentically(t *testing.T) {
	step := func(m *MLP, o *Adam, i int) {
		x := tensor.Vector{float64(i%5) * 0.2, -0.4, 0.9}
		dy := tensor.Vector{0.1, -0.2}
		m.ZeroGrad()
		m.Forward(x)
		m.Backward(dy)
		o.Step(m.Params())
	}

	ref := stateTestNet(7)
	refOpt := NewAdam(1e-2)
	for i := 0; i < 20; i++ {
		step(ref, refOpt, i)
	}

	half := stateTestNet(7)
	halfOpt := NewAdam(1e-2)
	for i := 0; i < 10; i++ {
		step(half, halfOpt, i)
	}
	netSt := half.State()
	optSt := halfOpt.State(half.Params())
	raw, err := json.Marshal(optSt)
	if err != nil {
		t.Fatal(err)
	}
	var backOpt AdamState
	if err := json.Unmarshal(raw, &backOpt); err != nil {
		t.Fatal(err)
	}

	resumed := stateTestNet(99)
	resumedOpt := NewAdam(1e-2)
	if err := resumed.LoadState(netSt); err != nil {
		t.Fatal(err)
	}
	if err := resumedOpt.LoadState(resumed.Params(), backOpt); err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 20; i++ {
		step(resumed, resumedOpt, i)
	}

	x := tensor.Vector{0.5, 0.5, 0.5}
	got := append(tensor.Vector(nil), resumed.Forward(x)...)
	want := append(tensor.Vector(nil), ref.Forward(x)...)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed training diverged: %v vs %v", got, want)
	}
}

func TestAdamStateFreshOptimizerSnapshotsZeros(t *testing.T) {
	m := stateTestNet(1)
	o := NewAdam(1e-3)
	st := o.State(m.Params())
	if st.T != 0 {
		t.Fatalf("fresh optimizer step count %d", st.T)
	}
	for i, row := range st.M {
		for _, v := range row {
			if v != 0 {
				t.Fatalf("row %d: fresh first moment %v nonzero", i, v)
			}
		}
	}
}

func TestAdamLoadStateRejectsMismatch(t *testing.T) {
	m := stateTestNet(1)
	o := NewAdam(1e-3)
	st := o.State(m.Params())

	bad := st
	bad.M = bad.M[:len(bad.M)-1]
	if err := o.LoadState(m.Params(), bad); err == nil {
		t.Fatal("row-count mismatch accepted")
	}

	bad = st
	bad.M = append([][]float64(nil), st.M...)
	bad.M[0] = bad.M[0][:1]
	if err := o.LoadState(m.Params(), bad); err == nil {
		t.Fatal("row-length mismatch accepted")
	}

	bad = st
	bad.T = -1
	if err := o.LoadState(m.Params(), bad); err == nil {
		t.Fatal("negative step count accepted")
	}
}
