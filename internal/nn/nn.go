// Package nn implements the small feed-forward neural networks used by the
// DRL agent: fully-connected layers with a choice of activations, manual
// reverse-mode backpropagation, standard initializers and first-order
// optimizers (SGD with momentum, Adam). Everything is float64 and pure
// stdlib; a finite-difference gradient checker is provided so tests can
// verify the analytic gradients.
package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Activation identifies an elementwise nonlinearity.
type Activation int

// Supported activations.
const (
	Identity Activation = iota
	Tanh
	ReLU
	Sigmoid
	Softplus
)

// String returns the activation's name.
func (a Activation) String() string {
	switch a {
	case Identity:
		return "identity"
	case Tanh:
		return "tanh"
	case ReLU:
		return "relu"
	case Sigmoid:
		return "sigmoid"
	case Softplus:
		return "softplus"
	default:
		return fmt.Sprintf("Activation(%d)", int(a))
	}
}

// apply computes the activation value. Tanh uses tensor.FastTanh (the
// Eigen/XLA rational evaluated in float64, max error < 5e-7 vs math.Tanh):
// the approximation error is orders of magnitude below gradient noise while
// roughly tripling activation throughput, and the per-sample and batched
// paths share it so they stay bit-identical to each other.
func (a Activation) apply(x float64) float64 {
	switch a {
	case Identity:
		return x
	case Tanh:
		return tensor.FastTanh(x)
	case ReLU:
		if x > 0 {
			return x
		}
		return 0
	case Sigmoid:
		return 1 / (1 + math.Exp(-x))
	case Softplus:
		// Numerically stable log(1+e^x).
		if x > 30 {
			return x
		}
		return math.Log1p(math.Exp(x))
	default:
		panic("nn: unknown activation")
	}
}

// deriv computes dσ/dx given the pre-activation x and post-activation y.
func (a Activation) deriv(x, y float64) float64 {
	switch a {
	case Identity:
		return 1
	case Tanh:
		return 1 - y*y
	case ReLU:
		if x > 0 {
			return 1
		}
		return 0
	case Sigmoid:
		return y * (1 - y)
	case Softplus:
		return 1 / (1 + math.Exp(-x)) // sigmoid(x)
	default:
		panic("nn: unknown activation")
	}
}

// applyBatch evaluates the activation elementwise over src into dst with the
// switch hoisted out of the loop. Element i is bit-identical to apply(src[i]).
func (a Activation) applyBatch(dst, src []float64) {
	switch a {
	case Identity:
		copy(dst, src)
	case Tanh:
		for i, x := range src {
			dst[i] = tensor.FastTanh(x)
		}
	case ReLU:
		for i, x := range src {
			if x > 0 {
				dst[i] = x
			} else {
				dst[i] = 0
			}
		}
	case Sigmoid:
		for i, x := range src {
			dst[i] = 1 / (1 + math.Exp(-x))
		}
	case Softplus:
		for i, x := range src {
			if x > 30 {
				dst[i] = x
			} else {
				dst[i] = math.Log1p(math.Exp(x))
			}
		}
	default:
		panic("nn: unknown activation")
	}
}

// derivBatch computes dz[i] = dout[i] * deriv(z[i], y[i]) with the switch
// hoisted out of the loop. Element i is bit-identical to the scalar form,
// including NaN propagation through inactive ReLU units.
func (a Activation) derivBatch(dz, dout, z, y []float64) {
	switch a {
	case Identity:
		copy(dz, dout)
	case Tanh:
		for i, yv := range y {
			dz[i] = dout[i] * (1 - yv*yv)
		}
	case ReLU:
		for i, zv := range z {
			var d float64
			if zv > 0 {
				d = 1
			}
			dz[i] = dout[i] * d
		}
	case Sigmoid:
		for i, yv := range y {
			dz[i] = dout[i] * (yv * (1 - yv))
		}
	case Softplus:
		for i, zv := range z {
			dz[i] = dout[i] * (1 / (1 + math.Exp(-zv)))
		}
	default:
		panic("nn: unknown activation")
	}
}

// Param is a flat view of one parameter tensor and its gradient accumulator.
type Param struct {
	Name string
	W    []float64
	G    []float64
}

// Linear is a fully-connected layer y = W·x + b with an activation.
type Linear struct {
	In, Out int
	Act     Activation

	W  *tensor.Matrix // Out×In
	B  tensor.Vector  // Out
	GW *tensor.Matrix
	GB tensor.Vector

	// forward caches (single-sample; the MLP drives samples sequentially)
	x tensor.Vector // input
	z tensor.Vector // pre-activation
	y tensor.Vector // post-activation

	// batched forward/backward caches, grown on demand (one row per sample).
	// xref is a reference to the last ForwardBatch input: the caller must
	// keep it unchanged until the matching BackwardBatch.
	xref             *tensor.Matrix
	zb, yb, dzb, dxb *tensor.Matrix

	// serial disables intra-layer ParallelRows so gradient-replica shards
	// (one per training worker) never nest parallelism; setGrads makes the
	// batched backward overwrite GW/GB instead of accumulating, so replica
	// gradients need no ZeroGrad memclr between minibatches.
	serial, setGrads bool
}

// NewLinear creates a layer with Xavier/He initialization appropriate for
// the activation, drawn from rng.
func NewLinear(in, out int, act Activation, rng *rand.Rand) *Linear {
	l := &Linear{
		In: in, Out: out, Act: act,
		W:  tensor.NewMatrix(out, in),
		B:  tensor.NewVector(out),
		GW: tensor.NewMatrix(out, in),
		GB: tensor.NewVector(out),
		x:  tensor.NewVector(in),
		z:  tensor.NewVector(out),
		y:  tensor.NewVector(out),
	}
	var scale float64
	switch act {
	case ReLU:
		scale = math.Sqrt(2 / float64(in)) // He
	default:
		scale = math.Sqrt(1 / float64(in)) // Xavier-ish
	}
	for i := range l.W.Data {
		l.W.Data[i] = rng.NormFloat64() * scale
	}
	return l
}

// Forward computes the layer output for one sample and caches the
// intermediates needed by Backward. The returned slice is owned by the layer
// and overwritten by the next Forward call.
func (l *Linear) Forward(x tensor.Vector) tensor.Vector {
	copy(l.x, x)
	tensor.MatVec(l.z, l.W, l.x)
	l.z.Add(l.z, l.B)
	for i, zv := range l.z {
		l.y[i] = l.Act.apply(zv)
	}
	return l.y
}

// Backward accumulates parameter gradients for the last Forward sample and
// returns d(loss)/d(input). dout is d(loss)/d(output).
func (l *Linear) Backward(dout tensor.Vector) tensor.Vector {
	if len(dout) != l.Out {
		panic("nn: Backward gradient length mismatch")
	}
	dz := tensor.NewVector(l.Out)
	for i, g := range dout {
		dz[i] = g * l.Act.deriv(l.z[i], l.y[i])
	}
	l.GW.AddOuter(1, dz, l.x)
	l.GB.Add(l.GB, dz)
	dx := tensor.NewVector(l.In)
	tensor.MatTVec(dx, l.W, dz)
	return dx
}

// ForwardBatch computes the layer output for a batch of samples (one per
// row of X) in a single matrix pass and caches the intermediates needed by
// BackwardBatch. Row i of the result is bit-identical to Forward(X.Row(i)).
// The returned matrix is owned by the layer and overwritten by the next
// ForwardBatch call. The layer keeps a reference to X instead of copying it:
// the caller must not mutate X before the matching BackwardBatch.
func (l *Linear) ForwardBatch(X *tensor.Matrix) *tensor.Matrix {
	if X.Cols != l.In {
		panic("nn: ForwardBatch input width mismatch")
	}
	n := X.Rows
	l.xref = X
	l.zb = tensor.EnsureShape(l.zb, n, l.Out)
	l.yb = tensor.EnsureShape(l.yb, n, l.Out)
	if l.serial {
		tensor.MatMulTransBRange(l.zb, X, l.W, 0, n)
		l.zb.AddRowVector(l.B)
		l.Act.applyBatch(l.yb.Data, l.zb.Data)
		return l.yb
	}
	tensor.MatMulTransB(l.zb, X, l.W)
	l.zb.AddRowVector(l.B)
	tensor.ParallelRows(n, n*l.Out*actWorkFactor, func(lo, hi int) {
		l.Act.applyBatch(l.yb.Data[lo*l.Out:hi*l.Out], l.zb.Data[lo*l.Out:hi*l.Out])
	})
	return l.yb
}

// actWorkFactor approximates the scalar-op cost of one activation (tanh is
// far more expensive than a fused multiply-add) for parallel scheduling.
const actWorkFactor = 16

// BackwardBatch accumulates parameter gradients for the last ForwardBatch
// batch and returns d(loss)/d(input), one row per sample. Gradients are
// accumulated in ascending sample order, so the result is bit-identical to
// calling Backward once per row of dout.
func (l *Linear) BackwardBatch(dout *tensor.Matrix) *tensor.Matrix {
	return l.backwardBatch(dout, true)
}

// backwardBatch is BackwardBatch with an optional input-gradient matmul:
// the first layer of a network has no upstream to feed, so skipping dX
// saves the single largest kernel of its backward pass.
func (l *Linear) backwardBatch(dout *tensor.Matrix, needDX bool) *tensor.Matrix {
	if l.zb == nil || dout.Rows != l.zb.Rows || dout.Cols != l.Out {
		panic("nn: BackwardBatch shape mismatch (ForwardBatch first)")
	}
	n := dout.Rows
	l.dzb = tensor.EnsureShape(l.dzb, n, l.Out)
	if l.serial {
		l.Act.derivBatch(l.dzb.Data, dout.Data[:n*l.Out], l.zb.Data, l.yb.Data)
		if l.setGrads {
			tensor.MatMulTransARange(l.GW, l.dzb, l.xref, 0, l.Out)
			l.GB.Zero()
		} else {
			tensor.AddMatMulTransARange(l.GW, l.dzb, l.xref, 0, l.Out)
		}
		tensor.AddRowSums(l.GB, l.dzb)
		if !needDX {
			return nil
		}
		l.dxb = tensor.EnsureShape(l.dxb, n, l.In)
		tensor.MatMulRange(l.dxb, l.dzb, l.W, 0, n)
		return l.dxb
	}
	tensor.ParallelRows(n, n*l.Out*actWorkFactor, func(lo, hi int) {
		l.Act.derivBatch(l.dzb.Data[lo*l.Out:hi*l.Out], dout.Data[lo*l.Out:hi*l.Out],
			l.zb.Data[lo*l.Out:hi*l.Out], l.yb.Data[lo*l.Out:hi*l.Out])
	})
	if l.setGrads {
		tensor.MatMulTransA(l.GW, l.dzb, l.xref)
		l.GB.Zero()
	} else {
		tensor.AddMatMulTransA(l.GW, l.dzb, l.xref) // GW += dZᵀ·X, sample-major
	}
	tensor.AddRowSums(l.GB, l.dzb)
	if !needDX {
		return nil
	}
	l.dxb = tensor.EnsureShape(l.dxb, n, l.In)
	tensor.MatMul(l.dxb, l.dzb, l.W) // dX = dZ·W
	return l.dxb
}

// ZeroGrad clears the accumulated gradients.
func (l *Linear) ZeroGrad() {
	l.GW.Zero()
	l.GB.Zero()
}

// Params returns the layer's parameter views.
func (l *Linear) Params() []Param {
	return []Param{
		{Name: "W", W: l.W.Data, G: l.GW.Data},
		{Name: "b", W: l.B, G: l.GB},
	}
}

// MLP is a multi-layer perceptron: a stack of Linear layers evaluated one
// sample at a time.
type MLP struct {
	Layers []*Linear

	// params caches the Params() views; the views stay valid across
	// in-place weight updates (Step, LoadState) and are invalidated only
	// when the layers themselves are replaced (UnmarshalBinary).
	params []Param
}

// NewMLP builds an MLP with the given layer sizes (len ≥ 2) where every
// hidden layer uses hiddenAct and the output layer uses outAct.
func NewMLP(sizes []int, hiddenAct, outAct Activation, rng *rand.Rand) *MLP {
	if len(sizes) < 2 {
		panic("nn: NewMLP needs at least input and output sizes")
	}
	m := &MLP{}
	for i := 0; i < len(sizes)-1; i++ {
		act := hiddenAct
		if i == len(sizes)-2 {
			act = outAct
		}
		m.Layers = append(m.Layers, NewLinear(sizes[i], sizes[i+1], act, rng))
	}
	return m
}

// InDim returns the network input dimension.
func (m *MLP) InDim() int { return m.Layers[0].In }

// OutDim returns the network output dimension.
func (m *MLP) OutDim() int { return m.Layers[len(m.Layers)-1].Out }

// Forward evaluates the network on one sample. The returned slice is owned
// by the final layer; callers that keep it across calls must Clone it.
func (m *MLP) Forward(x tensor.Vector) tensor.Vector {
	h := x
	for _, l := range m.Layers {
		h = l.Forward(h)
	}
	return h
}

// ForwardBatch evaluates the network on a batch of samples (one per row)
// in one matrix pass per layer. Row i of the result is bit-identical to
// Forward on row i alone. The returned matrix is owned by the final layer.
func (m *MLP) ForwardBatch(X *tensor.Matrix) *tensor.Matrix {
	h := X
	for _, l := range m.Layers {
		h = l.ForwardBatch(h)
	}
	return h
}

// BackwardBatch backpropagates per-sample output gradients (one per row)
// for the last ForwardBatch batch, accumulating parameter gradients in
// ascending sample order, and returns d(loss)/d(input) per row.
func (m *MLP) BackwardBatch(dout *tensor.Matrix) *tensor.Matrix {
	g := dout
	for i := len(m.Layers) - 1; i >= 0; i-- {
		g = m.Layers[i].BackwardBatch(g)
	}
	return g
}

// BackwardBatchParams is BackwardBatch without the layer-0 input-gradient
// matmul, for training callers that only need parameter gradients. The
// parameter gradients it produces are bit-identical to BackwardBatch's.
func (m *MLP) BackwardBatchParams(dout *tensor.Matrix) {
	g := dout
	for i := len(m.Layers) - 1; i >= 0; i-- {
		g = m.Layers[i].backwardBatch(g, i > 0)
	}
}

// Backward backpropagates d(loss)/d(output) for the last Forward sample,
// accumulating parameter gradients, and returns d(loss)/d(input).
func (m *MLP) Backward(dout tensor.Vector) tensor.Vector {
	g := dout
	for i := len(m.Layers) - 1; i >= 0; i-- {
		g = m.Layers[i].Backward(g)
	}
	return g
}

// ZeroGrad clears the accumulated gradients of every layer.
func (m *MLP) ZeroGrad() {
	for _, l := range m.Layers {
		l.ZeroGrad()
	}
}

// Params returns all parameter views, layer by layer. The slice is cached:
// the views alias the live weight and gradient buffers, so repeated calls in
// a training loop allocate nothing. It is returned with len == cap so a
// caller appending its own entries (e.g. a policy's LogStd) always copies.
func (m *MLP) Params() []Param {
	if m.params == nil {
		var ps []Param
		for i, l := range m.Layers {
			for _, p := range l.Params() {
				p.Name = fmt.Sprintf("layer%d.%s", i, p.Name)
				ps = append(ps, p)
			}
		}
		m.params = ps[:len(ps):len(ps)]
	}
	return m.params
}

// NumParams returns the total number of scalar parameters.
func (m *MLP) NumParams() int {
	n := 0
	for _, p := range m.Params() {
		n += len(p.W)
	}
	return n
}

// CopyParamsFrom copies all parameter values from src (same architecture).
func (m *MLP) CopyParamsFrom(src *MLP) {
	dst, s := m.Params(), src.Params()
	if len(dst) != len(s) {
		panic("nn: CopyParamsFrom architecture mismatch")
	}
	for i := range dst {
		if len(dst[i].W) != len(s[i].W) {
			panic("nn: CopyParamsFrom shape mismatch")
		}
		copy(dst[i].W, s[i].W)
	}
}

// Clone returns a deep copy of the network (parameters only; gradient
// accumulators start at zero).
func (m *MLP) Clone() *MLP {
	c := &MLP{}
	for _, l := range m.Layers {
		nl := &Linear{
			In: l.In, Out: l.Out, Act: l.Act,
			W:  l.W.Clone(),
			B:  l.B.Clone(),
			GW: tensor.NewMatrix(l.Out, l.In),
			GB: tensor.NewVector(l.Out),
			x:  tensor.NewVector(l.In),
			z:  tensor.NewVector(l.Out),
			y:  tensor.NewVector(l.Out),
		}
		c.Layers = append(c.Layers, nl)
	}
	return c
}

// mlpWire is the gob wire format for MLP.
type mlpWire struct {
	Sizes []int
	Acts  []Activation
	W     [][]float64
	B     [][]float64
}

// MarshalBinary encodes the network architecture and weights.
func (m *MLP) MarshalBinary() ([]byte, error) {
	w := mlpWire{}
	for i, l := range m.Layers {
		if i == 0 {
			w.Sizes = append(w.Sizes, l.In)
		}
		w.Sizes = append(w.Sizes, l.Out)
		w.Acts = append(w.Acts, l.Act)
		w.W = append(w.W, append([]float64(nil), l.W.Data...))
		w.B = append(w.B, append([]float64(nil), l.B...))
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, fmt.Errorf("nn: encode MLP: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary decodes a network previously encoded with MarshalBinary.
func (m *MLP) UnmarshalBinary(data []byte) error {
	var w mlpWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return fmt.Errorf("nn: decode MLP: %w", err)
	}
	if len(w.Sizes) < 2 || len(w.Acts) != len(w.Sizes)-1 {
		return fmt.Errorf("nn: decode MLP: inconsistent wire format")
	}
	m.Layers = nil
	m.params = nil // cached views point into the layers being replaced
	for i := 0; i < len(w.Sizes)-1; i++ {
		in, out := w.Sizes[i], w.Sizes[i+1]
		if len(w.W[i]) != in*out || len(w.B[i]) != out {
			return fmt.Errorf("nn: decode MLP: layer %d shape mismatch", i)
		}
		l := &Linear{
			In: in, Out: out, Act: w.Acts[i],
			W:  &tensor.Matrix{Rows: out, Cols: in, Data: append([]float64(nil), w.W[i]...)},
			B:  append(tensor.Vector(nil), w.B[i]...),
			GW: tensor.NewMatrix(out, in),
			GB: tensor.NewVector(out),
			x:  tensor.NewVector(in),
			z:  tensor.NewVector(out),
			y:  tensor.NewVector(out),
		}
		m.Layers = append(m.Layers, l)
	}
	return nil
}
