package nn

import "repro/internal/tensor"

// This file implements the gradient-replica machinery of the deterministic
// data-parallel training engine. A minibatch is cut into fixed-size row
// blocks; each block is forwarded and backpropagated through its own
// CloneGradOnly replica (weights shared with the primary network, gradients
// and forward caches private), and MergeGradTree folds the per-block
// gradients into the primary with a reduction tree whose shape depends only
// on the number of blocks — never on how many workers processed them — so
// the merged gradient is bit-identical at any worker count.

// CloneGradOnly returns a gradient replica of m: a network whose layers
// share m's weight and bias backing arrays but own private gradient
// accumulators and forward caches. Replicas run their kernels serially (the
// engine already runs one replica per worker, so nesting ParallelRows would
// only add scheduling overhead) and overwrite rather than accumulate their
// gradients on each batched backward pass, which makes per-minibatch
// ZeroGrad calls on replicas unnecessary.
func (m *MLP) CloneGradOnly() *MLP {
	c := &MLP{}
	for _, l := range m.Layers {
		nl := &Linear{
			In: l.In, Out: l.Out, Act: l.Act,
			W:  l.W, // shared backing: replica forwards always see live weights
			B:  l.B,
			GW: tensor.NewMatrix(l.Out, l.In),
			GB: tensor.NewVector(l.Out),
			x:  tensor.NewVector(l.In),
			z:  tensor.NewVector(l.Out),
			y:  tensor.NewVector(l.Out),

			serial:   true,
			setGrads: true,
		}
		c.Layers = append(c.Layers, nl)
	}
	return c
}

// MergeGradTree reduces the shard gradients into dst's gradient buffers
// with a fixed-shape pairwise tree: strides double (shard i absorbs shard
// i+stride in place) until the final level, which writes its sum directly
// into dst instead of touching dst first. Two properties follow:
//
//   - The addition tree over the B shards is a pure function of B, so the
//     result is bit-identical no matter how many workers filled the shards.
//   - dst's own gradient buffers are overwritten, not accumulated into, so
//     the primary network needs no ZeroGrad between minibatches either.
//
// Shard gradient buffers below the final level are clobbered by the
// reduction; replicas rewrite them on their next backward pass anyway.
func MergeGradTree(dst []Param, shards [][]Param) {
	b := len(shards)
	if b == 0 {
		panic("nn: MergeGradTree needs at least one shard")
	}
	for _, s := range shards {
		if len(s) != len(dst) {
			panic("nn: MergeGradTree shard/dst parameter count mismatch")
		}
	}
	if b == 1 {
		for pi, p := range dst {
			copy(p.G, shards[0][pi].G)
		}
		return
	}
	stride := 1
	for ; stride*2 < b; stride *= 2 {
		for i := 0; i+stride < b; i += stride * 2 {
			for pi := range dst {
				gd := shards[i][pi].G
				gs := shards[i+stride][pi].G
				for k := range gd {
					gd[k] += gs[k]
				}
			}
		}
	}
	for pi, p := range dst {
		g0 := shards[0][pi].G
		g1 := shards[stride][pi].G
		for k := range p.G {
			p.G[k] = g0[k] + g1[k]
		}
	}
}
