package nn

import "fmt"

// This file provides JSON-friendly snapshots of networks and optimizer
// state for crash-safe checkpointing. Snapshots restore IN PLACE: weights
// are copied into the existing tensors rather than reallocating, so views
// handed out earlier — in particular the &W[0] keys of optimizer moment
// maps — stay valid across a restore.

// MLPState is a serializable snapshot of an MLP's architecture and weights.
type MLPState struct {
	Sizes []int       `json:"sizes"`
	Acts  []int       `json:"acts"`
	W     [][]float64 `json:"w"`
	B     [][]float64 `json:"b"`
}

// State captures the network's architecture and weights.
func (m *MLP) State() MLPState {
	st := MLPState{}
	for i, l := range m.Layers {
		if i == 0 {
			st.Sizes = append(st.Sizes, l.In)
		}
		st.Sizes = append(st.Sizes, l.Out)
		st.Acts = append(st.Acts, int(l.Act))
		st.W = append(st.W, append([]float64(nil), l.W.Data...))
		st.B = append(st.B, append([]float64(nil), l.B...))
	}
	return st
}

// LoadState copies a snapshot's weights into the network in place. The
// snapshot's architecture must match exactly.
func (m *MLP) LoadState(st MLPState) error {
	if len(st.Sizes) != len(m.Layers)+1 || len(st.Acts) != len(m.Layers) ||
		len(st.W) != len(m.Layers) || len(st.B) != len(m.Layers) {
		return fmt.Errorf("nn: checkpoint has %d layers, network has %d", len(st.Acts), len(m.Layers))
	}
	for i, l := range m.Layers {
		if st.Sizes[i] != l.In || st.Sizes[i+1] != l.Out || Activation(st.Acts[i]) != l.Act {
			return fmt.Errorf("nn: checkpoint layer %d is %d→%d/%v, network has %d→%d/%v",
				i, st.Sizes[i], st.Sizes[i+1], Activation(st.Acts[i]), l.In, l.Out, l.Act)
		}
		if len(st.W[i]) != len(l.W.Data) || len(st.B[i]) != len(l.B) {
			return fmt.Errorf("nn: checkpoint layer %d weight shape mismatch", i)
		}
	}
	for i, l := range m.Layers {
		copy(l.W.Data, st.W[i])
		copy(l.B, st.B[i])
	}
	return nil
}

// AdamState is a serializable snapshot of an Adam optimizer's step count
// and first/second moment estimates, ordered by the parameter list the
// optimizer steps over.
type AdamState struct {
	T int         `json:"t"`
	M [][]float64 `json:"m"`
	V [][]float64 `json:"v"`
}

// State captures the optimizer's moments for the given parameters — the
// exact slice the caller passes to Step, in the same order. Parameters the
// optimizer has never stepped snapshot as zero moments (which is what a
// first Step would initialize them to).
func (o *Adam) State(params []Param) AdamState {
	st := AdamState{T: o.t}
	for _, p := range params {
		var m, v []float64
		if len(p.W) > 0 {
			m = o.m[&p.W[0]]
			v = o.v[&p.W[0]]
		}
		if m == nil {
			m = make([]float64, len(p.W))
			v = make([]float64, len(p.W))
		}
		st.M = append(st.M, append([]float64(nil), m...))
		st.V = append(st.V, append([]float64(nil), v...))
	}
	return st
}

// LoadState restores moments captured by State for the same parameter list.
func (o *Adam) LoadState(params []Param, st AdamState) error {
	if len(st.M) != len(params) || len(st.V) != len(params) {
		return fmt.Errorf("nn: Adam checkpoint has %d/%d moment rows for %d params",
			len(st.M), len(st.V), len(params))
	}
	for i, p := range params {
		if len(st.M[i]) != len(p.W) || len(st.V[i]) != len(p.W) {
			return fmt.Errorf("nn: Adam checkpoint row %d has %d moments for %d weights",
				i, len(st.M[i]), len(p.W))
		}
	}
	if st.T < 0 {
		return fmt.Errorf("nn: Adam checkpoint step count %d negative", st.T)
	}
	o.t = st.T
	for i, p := range params {
		if len(p.W) == 0 {
			continue
		}
		key := &p.W[0]
		o.m[key] = append([]float64(nil), st.M[i]...)
		o.v[key] = append([]float64(nil), st.V[i]...)
	}
	return nil
}
