package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Infer32 is an immutable float32 serving snapshot of an MLP. Weights are
// converted once (saturating) and stored k-major (In×Out — the transpose of
// the training layout) so the forward pass runs in saxpy form on the
// cache-blocked float32 kernels. Training never touches this type: it is a
// read-only copy, so the float64 learner's bit-exact reproducibility
// guarantee is unaffected (DESIGN.md §12).
type Infer32 struct {
	layers []infer32Layer
	maxOut int // widest layer output, sizes the panel scratch
}

type infer32Layer struct {
	in, out int
	act     Activation
	wt      *tensor.Matrix32 // In×Out, k-major
	b       tensor.Vector32
}

// inferPanel is the number of batch rows processed per panel. 64 rows of a
// 64-wide hidden layer is a 16 KiB float32 block — half of a typical 32 KiB
// L1d — so a layer's input and output panels fit in L1 together and the
// activation pass runs over panel-contiguous lanes it just wrote.
const inferPanel = 64

// NewInfer32 snapshots m's parameters into a float32 serving net.
func NewInfer32(m *MLP) *Infer32 {
	f := &Infer32{layers: make([]infer32Layer, len(m.Layers))}
	for li, l := range m.Layers {
		wt := tensor.NewMatrix32(l.In, l.Out)
		for o := 0; o < l.Out; o++ {
			for j := 0; j < l.In; j++ {
				wt.Data[j*l.Out+o] = tensor.ToF32Sat(l.W.Data[o*l.In+j])
			}
		}
		b := tensor.NewVector32(l.Out)
		for o, v := range l.B {
			b[o] = tensor.ToF32Sat(v)
		}
		f.layers[li] = infer32Layer{in: l.In, out: l.Out, act: l.Act, wt: wt, b: b}
		if l.Out > f.maxOut {
			f.maxOut = l.Out
		}
	}
	return f
}

// InDim returns the input dimensionality.
func (f *Infer32) InDim() int { return f.layers[0].in }

// OutDim returns the output dimensionality.
func (f *Infer32) OutDim() int { return f.layers[len(f.layers)-1].out }

// ForwardBatch computes dst = f(X) row-wise (X is batch×InDim, dst is
// batch×OutDim). Scratch panels come from ar and stay live until the
// caller's next ar.Reset; after a warmup tick the call performs zero heap
// allocations. Rows flow through the network a panel at a time, so every
// intermediate stays cache-resident instead of streaming a batch×hidden
// matrix through memory once per layer.
func (f *Infer32) ForwardBatch(dst, X *tensor.Matrix32, ar *tensor.Arena) {
	n := X.Rows
	if X.Cols != f.InDim() || dst.Rows != n || dst.Cols != f.OutDim() {
		panic(fmt.Sprintf("nn: Infer32.ForwardBatch shape mismatch %dx%d -> %dx%d (net %d->%d)",
			X.Rows, X.Cols, dst.Rows, dst.Cols, f.InDim(), f.OutDim()))
	}
	// Two ping-pong panel buffers cover every intermediate layer.
	bufA := ar.F32(inferPanel * f.maxOut)
	bufB := ar.F32(inferPanel * f.maxOut)
	for lo := 0; lo < n; lo += inferPanel {
		p := inferPanel
		if lo+p > n {
			p = n - lo
		}
		src := tensor.Matrix32{Rows: p, Cols: X.Cols, Data: X.Data[lo*X.Cols : (lo+p)*X.Cols]}
		cur, nxt := bufA, bufB
		for li := range f.layers {
			l := &f.layers[li]
			var out tensor.Matrix32
			if li == len(f.layers)-1 {
				out = tensor.Matrix32{Rows: p, Cols: l.out, Data: dst.Data[lo*l.out : (lo+p)*l.out]}
			} else {
				out = tensor.Matrix32{Rows: p, Cols: l.out, Data: cur[:p*l.out]}
				cur, nxt = nxt, cur
			}
			for r := 0; r < p; r++ {
				copy(out.Data[r*l.out:(r+1)*l.out], l.b)
			}
			tensor.AddMatMul32(&out, &src, l.wt)
			applyInPlace32(l.act, out.Data)
			src = out
		}
		_ = nxt
	}
}

// applyInPlace32 applies the activation elementwise. Tanh dispatches to the
// vectorized kernel; the others are scalar (no serving net in this repo uses
// them on a hot path). NaN propagates through every branch.
func applyInPlace32(act Activation, x tensor.Vector32) {
	switch act {
	case Identity:
	case Tanh:
		tensor.TanhInPlace32(x)
	case ReLU:
		for i, v := range x {
			if v < 0 {
				x[i] = 0
			}
		}
	case Sigmoid:
		for i, v := range x {
			x[i] = float32(1 / (1 + math.Exp(-float64(v))))
		}
	case Softplus:
		for i, v := range x {
			if v > 30 {
				continue
			}
			x[i] = float32(math.Log1p(math.Exp(float64(v))))
		}
	default:
		panic("nn: unknown activation")
	}
}
