package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// inferTol is the documented serving-precision contract: for tanh networks
// at the paper's scale (≤64-wide hidden layers, inputs within float32
// headroom) the float32 forward stays within 1e-4 of the float64 reference.
// In practice the gap is ~1e-6; the slack covers unlucky cancellation.
const inferTol = 1e-4

func TestInfer32MatchesFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, sizes := range [][]int{
		{6, 64, 64, 1},  // paper-default shared actor
		{18, 32, 32, 3}, // joint actor shape from the root benchmarks
		{5, 16, 2},
		{3, 7, 7, 7, 2}, // odd widths: tails of every kernel
	} {
		m := NewMLP(sizes, Tanh, Tanh, rng)
		f := NewInfer32(m)
		const batch = 131 // not a multiple of the panel size
		in, out := sizes[0], sizes[len(sizes)-1]
		X := tensor.NewMatrix32(batch, in)
		ar := tensor.NewArena()
		dst := tensor.NewMatrix32(batch, out)
		x64 := tensor.NewVector(in)
		worst := 0.0
		for r := 0; r < batch; r++ {
			for c := 0; c < in; c++ {
				v := rng.NormFloat64() * 3
				X.Data[r*in+c] = float32(v)
			}
		}
		f.ForwardBatch(dst, X, ar)
		for r := 0; r < batch; r++ {
			for c := 0; c < in; c++ {
				x64[c] = float64(X.Data[r*in+c])
			}
			want := m.Forward(x64)
			for c := 0; c < out; c++ {
				d := math.Abs(float64(dst.Data[r*out+c]) - want[c])
				if d > worst {
					worst = d
				}
			}
		}
		t.Logf("sizes %v: worst |f32-f64| = %.3g", sizes, worst)
		if worst > inferTol {
			t.Fatalf("sizes %v: serving diverges from float64 by %g (> %g)", sizes, worst, inferTol)
		}
	}
}

func TestInfer32AllActivations(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, act := range []Activation{Identity, Tanh, ReLU, Sigmoid, Softplus} {
		m := NewMLP([]int{4, 10, 2}, act, Identity, rng)
		f := NewInfer32(m)
		X := tensor.NewMatrix32(3, 4)
		x64 := tensor.NewVector(4)
		for i := range X.Data {
			X.Data[i] = float32(rng.NormFloat64())
		}
		dst := tensor.NewMatrix32(3, 2)
		f.ForwardBatch(dst, X, tensor.NewArena())
		for r := 0; r < 3; r++ {
			for c := 0; c < 4; c++ {
				x64[c] = float64(X.Data[r*4+c])
			}
			want := m.Forward(x64)
			for c := 0; c < 2; c++ {
				if d := math.Abs(float64(dst.Data[r*2+c]) - want[c]); d > inferTol {
					t.Fatalf("act %v row %d: f32 %g vs f64 %g", act, r, dst.Data[r*2+c], want[c])
				}
			}
		}
	}
}

func TestInfer32ExtremeInputsStayFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := NewMLP([]int{6, 64, 64, 1}, Tanh, Tanh, rng)
	f := NewInfer32(m)
	// Guard-sanitized states are finite but can be wildly mis-scaled; both
	// precisions must saturate the first tanh layer to ±1 and agree.
	X := tensor.NewMatrix32(4, 6)
	vals := []float64{1e30, -1e30, 1e15, -42313371337.5}
	for r := 0; r < 4; r++ {
		for c := 0; c < 6; c++ {
			X.Data[r*6+c] = tensor.ToF32Sat(vals[(r+c)%len(vals)])
		}
	}
	dst := tensor.NewMatrix32(4, 1)
	f.ForwardBatch(dst, X, tensor.NewArena())
	x64 := tensor.NewVector(6)
	for r := 0; r < 4; r++ {
		for c := 0; c < 6; c++ {
			x64[c] = float64(X.Data[r*6+c])
		}
		want := m.Forward(x64)[0]
		got := float64(dst.Data[r])
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Fatalf("row %d: non-finite serving output %g", r, got)
		}
		if d := math.Abs(got - want); d > inferTol {
			t.Fatalf("row %d: extreme-input f32 %g vs f64 %g (diff %g)", r, got, want, d)
		}
	}
}

func TestInfer32SnapshotIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewMLP([]int{4, 8, 2}, Tanh, Identity, rng)

	// Snapshotting and serving must leave the float64 parameters bit-intact.
	var paramBits []uint64
	for _, p := range m.Params() {
		for _, w := range p.W {
			paramBits = append(paramBits, math.Float64bits(w))
		}
	}
	f := NewInfer32(m)
	X := tensor.NewMatrix32(1, 4)
	for i := range X.Data {
		X.Data[i] = float32(rng.NormFloat64())
	}
	ar := tensor.NewArena()
	before := tensor.NewMatrix32(1, 2)
	f.ForwardBatch(before, X, ar)
	i := 0
	for _, p := range m.Params() {
		for _, w := range p.W {
			if math.Float64bits(w) != paramBits[i] {
				t.Fatal("serving mutated a training parameter")
			}
			i++
		}
	}

	// The snapshot must not track later weight mutations.
	m.Layers[0].W.Data[0] += 100
	ar.Reset()
	after := tensor.NewMatrix32(1, 2)
	f.ForwardBatch(after, X, ar)
	for i := range before.Data {
		if before.Data[i] != after.Data[i] {
			t.Fatal("snapshot tracked a post-snapshot weight mutation")
		}
	}
}
