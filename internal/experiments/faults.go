package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/fl"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/stats"
)

// FaultSweepOptions size the fault-robustness sweep.
type FaultSweepOptions struct {
	// CrashProbs are the per-iteration crash probabilities to sweep
	// (include 0 for the fault-free reference point).
	CrashProbs []float64
	// RejoinProb is the per-iteration rejoin probability of a crashed
	// device (0 selects 0.5).
	RejoinProb float64
	// Episodes of fault-free DRL training for the evaluated agent.
	Episodes int
	// Iterations evaluated per (crash rate, scheduler) cell.
	Iterations int
	// Deadline is the round barrier deadline in seconds; 0 auto-probes it
	// as 3× the longest fault-free run-at-max round so healthy schedulers
	// have comfortable slack and only crashes or pathological plans drop
	// devices.
	Deadline float64
	// Seed drives training, fault schedules and the Static estimate.
	Seed int64
	// Workers bounds the sweep's concurrency (see RunJobs); the output is
	// identical at any worker count.
	Workers int
}

// DefaultFaultSweepOptions cover the interesting regime: from fault-free to
// a third of the fleet crashing every iteration.
func DefaultFaultSweepOptions() FaultSweepOptions {
	return FaultSweepOptions{
		CrashProbs: []float64{0, 0.05, 0.1, 0.2, 0.3},
		RejoinProb: 0.5,
		Episodes:   300,
		Iterations: 200,
		Seed:       1,
	}
}

// FaultSweepCell is one scheduler's outcome at one crash rate.
type FaultSweepCell struct {
	// Scheduler names the policy.
	Scheduler string
	// MeanCost and MeanTime average the per-iteration cost and duration.
	MeanCost, MeanTime float64
	// SurvivorFrac is the mean fraction of the fleet whose update made the
	// aggregation (1 = nobody crashed or was dropped at the deadline).
	SurvivorFrac float64
}

// FaultSweepRow collects every scheduler's outcome at one crash rate. All
// schedulers in a row face the identical fault schedule, so the comparison
// isolates the scheduling policy.
type FaultSweepRow struct {
	CrashProb float64
	Cells     []FaultSweepCell
}

// FaultSweepResult is the graceful-degradation sweep: system cost as a
// function of device churn, DRL against the §V baselines.
type FaultSweepResult struct {
	Title string
	// Deadline is the barrier deadline every cell ran under (auto-probed
	// when the options left it zero).
	Deadline float64
	// Schedulers is the column order of every row's Cells.
	Schedulers []string
	Rows       []FaultSweepRow
	// Iterations echoes the options.
	Iterations int
}

// FaultSweep trains a DRL agent fault-free, then evaluates it against the
// paper's baselines under increasingly unreliable fleets: every device
// crashes with probability p per iteration and rejoins later, and the round
// barrier falls back to partial aggregation at the deadline. Each crash rate
// uses one seeded fault schedule shared by all schedulers, so cells differ
// only in the frequency policy. The whole grid is deterministic in
// (scenario, options) at any worker count.
func FaultSweep(sc Scenario, opts FaultSweepOptions) (*FaultSweepResult, error) {
	if len(opts.CrashProbs) == 0 || opts.Episodes <= 0 || opts.Iterations <= 0 {
		return nil, fmt.Errorf("experiments: invalid fault sweep parameters")
	}
	rejoin := opts.RejoinProb
	if rejoin == 0 {
		rejoin = 0.5
	}
	sys, err := sc.Build()
	if err != nil {
		return nil, err
	}
	agent, _, err := TrainAgent(sys, TrainOptions{Episodes: opts.Episodes, Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	deadline := opts.Deadline
	if deadline == 0 {
		// Probe the fault-free run-at-max round times: 3× their maximum is
		// generous for any sane plan (upload time is scheduler-independent)
		// yet finite, so an all-down round still terminates.
		probe, err := sched.Run(sys, sched.MaxFreq{}, 0, min(opts.Iterations, 20))
		if err != nil {
			return nil, err
		}
		deadline = 3 * stats.Summarize(sched.Durations(probe)).Max
	}

	res := &FaultSweepResult{
		Title:      fmt.Sprintf("Fault sweep — cost vs crash rate (N=%d, deadline %.0fs, %d iterations)", sys.N(), deadline, opts.Iterations),
		Deadline:   deadline,
		Schedulers: []string{"drl", "heuristic", "static-sampled", "maxfreq"},
		Iterations: opts.Iterations,
	}
	initBW := make([]float64, sys.N())
	for i, tr := range sys.Traces {
		initBW[i] = tr.Summary().Mean
	}
	// Each crash rate is an independent cell grid: it builds its own fault
	// schedule and scheduler instances (including a cloned DRL policy —
	// forward passes mutate scratch caches) from its own index-derived
	// seeds, so the rows fan out over the worker pool and fill a
	// preallocated table, bit-identical to the sequential loop.
	rows := make([]FaultSweepRow, len(opts.CrashProbs))
	err = RunJobs(len(opts.CrashProbs), opts.Workers, func(i int) error {
		p := opts.CrashProbs[i]
		iterOpts := fl.IterOptions{Deadline: deadline}
		if p > 0 {
			fs, err := fault.NewSchedule(fault.Config{CrashProb: p, RejoinProb: rejoin}, sys.N(), opts.Seed+int64(i)*7919)
			if err != nil {
				return err
			}
			iterOpts.Faults = fs
		}
		rng := rand.New(rand.NewSource(opts.Seed + int64(i)*104729 + 11))
		isolated := &core.Agent{Policy: agent.Policy.ClonePolicy(), Critic: agent.Critic, EnvCfg: agent.EnvCfg, Norm: agent.Norm}
		drl, err := isolated.Scheduler()
		if err != nil {
			return err
		}
		h, err := sched.NewHeuristic(initBW, 0.05)
		if err != nil {
			return err
		}
		st, err := sched.NewStaticSampled(sys, 2, 0.05, rng)
		if err != nil {
			return err
		}
		row := FaultSweepRow{CrashProb: p}
		for _, s := range []sched.Scheduler{drl, h, &named{st, "static-sampled"}, sched.MaxFreq{}} {
			its, err := sched.RunOpts(sys, s, 0, opts.Iterations, iterOpts)
			if err != nil {
				return err
			}
			surv := 0.0
			for _, n := range sched.Survivors(its) {
				surv += float64(n)
			}
			row.Cells = append(row.Cells, FaultSweepCell{
				Scheduler:    s.Name(),
				MeanCost:     stats.Mean(sched.Costs(its)),
				MeanTime:     stats.Mean(sched.Durations(its)),
				SurvivorFrac: surv / float64(len(its)*sys.N()),
			})
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// Render prints mean cost per scheduler against the crash rate, plus the
// realized survivor fraction under the DRL policy.
func (r *FaultSweepResult) Render(w io.Writer) error {
	headers := append([]string{"crash prob"}, r.Schedulers...)
	headers = append(headers, "survivors (drl)")
	tb := report.NewTable(r.Title, headers...)
	for _, row := range r.Rows {
		cells := []interface{}{fmt.Sprintf("%.2f", row.CrashProb)}
		for _, c := range row.Cells {
			cells = append(cells, c.MeanCost)
		}
		cells = append(cells, fmt.Sprintf("%.0f%%", 100*row.Cells[0].SurvivorFrac))
		tb.AddRowf(cells...)
	}
	return tb.Render(w)
}

// WriteCSV dumps crash rate vs per-scheduler mean cost and the DRL survivor
// fraction.
func (r *FaultSweepResult) WriteCSV(w io.Writer) error {
	x := make([]float64, len(r.Rows))
	series := map[string][]float64{}
	for i, row := range r.Rows {
		x[i] = row.CrashProb
		for _, c := range row.Cells {
			series["cost_"+c.Scheduler] = append(series["cost_"+c.Scheduler], c.MeanCost)
		}
		series["survivor_frac_drl"] = append(series["survivor_frac_drl"], row.Cells[0].SurvivorFrac)
	}
	return report.WriteSeriesCSV(w, "crash_prob", x, series)
}
