package experiments

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/core"
)

func TestRunJobsCompletesAll(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		n := 11
		var ran [11]int32
		if err := RunJobs(n, workers, func(i int) error {
			atomic.AddInt32(&ran[i], 1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range ran {
			if c != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestRunJobsFirstError(t *testing.T) {
	boom := errors.New("boom")
	err := RunJobs(8, 4, func(i int) error {
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want %v", err, boom)
	}
	if err := RunJobs(0, 4, func(int) error { return boom }); err != nil {
		t.Fatalf("empty job set: %v", err)
	}
}

// TestCompareWorkersDeterminism pins the Compare contract: the evaluation
// fans out across runs but merges in run order with per-run isolated
// schedulers, so serial and parallel executions are bit-identical.
func TestCompareWorkersDeterminism(t *testing.T) {
	sc := TestbedScenario(5)
	sys, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	agent, _, err := TrainAgent(sys, quickTrain())
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) *CompareResult {
		opts := quickCompare()
		opts.IncludeExtras = true
		opts.Runs = 3
		opts.Workers = workers
		res, err := Compare("determinism", sc, agent, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(1)
	for _, workers := range []int{2, 4} {
		got := run(workers)
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d: comparison diverged from serial run", workers)
		}
	}
}

// TestCompareNilAgent covers the new guard.
func TestCompareNilAgent(t *testing.T) {
	if _, err := Compare("x", TestbedScenario(1), nil, quickCompare()); err == nil {
		t.Fatal("nil agent accepted")
	}
	if _, err := Compare("x", TestbedScenario(1), &core.Agent{}, quickCompare()); err == nil {
		t.Fatal("agent without policy accepted")
	}
}
