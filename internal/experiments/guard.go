package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/guard"
	"repro/internal/guard/chaos"
	"repro/internal/report"
)

// GuardChaosOptions size the guard-ablation experiment: the guarded
// controller against its own unguarded actor and the max-frequency safe
// mode across the chaos mutation classes.
type GuardChaosOptions struct {
	// Episodes of DRL training on the pristine system.
	Episodes int
	// Iterations per chaos episode.
	Iterations int
	// Start is the wall-clock start time of every episode.
	Start float64
	// Seed drives training and the trace mutators.
	Seed int64
	// Guard configures the pipeline (zero value → guard defaults with the
	// conservative serving profile below).
	Guard guard.Config
	// Fallback is the guard.ChainFromSpec spec ("" → heuristic,maxfreq).
	Fallback string
	// Workers bounds episode concurrency; the output is identical at any
	// worker count.
	Workers int
}

// DefaultGuardChaosOptions use the conservative serving profile — a tight
// plan gate (CostFactor 1), one-strike breaker and long probation — whose
// contract includes the safe-mode cost bound on every chaos class.
func DefaultGuardChaosOptions() GuardChaosOptions {
	return GuardChaosOptions{
		Episodes:   300,
		Iterations: 40,
		Start:      65,
		Seed:       1,
		Guard: guard.Config{
			CostFactor: 1.0,
			TripAfter:  1,
			Probation:  20,
		},
	}
}

// GuardChaosResult is the guard ablation: one row per chaos class.
type GuardChaosResult struct {
	Title string
	// Iterations echoes the options.
	Iterations int
	Rows       []*chaos.Result
}

// GuardChaos trains a DRL agent on the pristine scenario, then replays
// every chaos mutation class through the guarded controller, the bare
// actor (negative control) and the max-frequency safe mode. Costs are
// paired counterfactuals — see the chaos package doc — so the guarded and
// safe columns are comparable decision-for-decision. Deterministic in
// (scenario, options) at any worker count.
func GuardChaos(sc Scenario, opts GuardChaosOptions) (*GuardChaosResult, error) {
	if opts.Episodes <= 0 || opts.Iterations <= 0 {
		return nil, fmt.Errorf("experiments: guard chaos episodes %d and iterations %d must be positive", opts.Episodes, opts.Iterations)
	}
	sys, err := sc.Build()
	if err != nil {
		return nil, err
	}
	agent, _, err := TrainAgent(sys, TrainOptions{Episodes: opts.Episodes, Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	copts := chaos.Options{
		Iters:    opts.Iterations,
		Start:    opts.Start,
		Seed:     opts.Seed,
		Guard:    opts.Guard,
		Fallback: opts.Fallback,
	}
	rows, err := chaos.RunAll(sys, agent, chaos.Classes(), copts, opts.Workers)
	if err != nil {
		return nil, err
	}
	return &GuardChaosResult{
		Title:      fmt.Sprintf("Guard ablation — chaos classes (N=%d, %d iterations)", sys.N(), opts.Iterations),
		Iterations: opts.Iterations,
		Rows:       rows,
	}, nil
}

// Render prints one row per chaos class: the guarded episode cost, its
// paired safe-mode counterfactual, the unguarded actor's cost (or how it
// failed), breaker trips and the fraction of decisions the actor served.
func (r *GuardChaosResult) Render(w io.Writer) error {
	tb := report.NewTable(r.Title,
		"class", "guarded", "safe (paired)", "unguarded", "trips", "actor served", "violations")
	for _, row := range r.Rows {
		ug := "failed"
		if row.UnguardedErr == "" {
			ug = fmt.Sprintf("%.1f", row.UnguardedCost)
		}
		tb.AddRowf(row.Class, row.GuardedCost, row.SafeCost, ug,
			row.Trips, fmt.Sprintf("%d/%d", row.ActorServed, row.Decisions), row.FreqViolations)
	}
	return tb.Render(w)
}

// WriteCSV dumps the per-class series; the class index column follows the
// canonical chaos.Classes order and unguarded failures appear as NaN.
func (r *GuardChaosResult) WriteCSV(w io.Writer) error {
	x := make([]float64, len(r.Rows))
	series := map[string][]float64{}
	for i, row := range r.Rows {
		x[i] = float64(i)
		series["guarded_cost"] = append(series["guarded_cost"], row.GuardedCost)
		series["safe_cost"] = append(series["safe_cost"], row.SafeCost)
		series["unguarded_cost"] = append(series["unguarded_cost"], row.UnguardedCost)
		series["trips"] = append(series["trips"], float64(row.Trips))
		actorFrac := math.NaN()
		if row.Decisions > 0 {
			actorFrac = float64(row.ActorServed) / float64(row.Decisions)
		}
		series["actor_frac"] = append(series["actor_frac"], actorFrac)
		series["freq_violations"] = append(series["freq_violations"], float64(row.FreqViolations))
	}
	return report.WriteSeriesCSV(w, "class_idx", x, series)
}
