// Package experiments reproduces every figure of the paper's evaluation
// (§V): Fig. 2 (bandwidth-trace dynamics), Fig. 6 (offline DRL training
// convergence), Fig. 7 (3-device testbed comparison against the Heuristic
// [3] and Static [4] baselines), Fig. 8 (50-device simulation), plus the
// design-choice ablations called out in DESIGN.md. Each experiment returns
// typed rows/series and can render itself for terminal or CSV output.
package experiments

import (
	"fmt"

	"repro/internal/bandwidth"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/fl"
	"repro/internal/rl"
	"repro/internal/trace"
)

// Scenario fixes the workload of an experiment: the fleet, traces and task
// constants of §V-A.
type Scenario struct {
	// N is the number of mobile devices.
	N int
	// Lambda is the cost weight λ (1 on the testbed, 0.1 in the 50-device
	// simulation).
	Lambda float64
	// ModelMB is ξ in megabytes.
	ModelMB float64
	// Tau is τ, local training passes per iteration.
	Tau int
	// TraceSec is the generated trace length in seconds.
	TraceSec float64
	// Seed drives fleet and trace generation.
	Seed int64
}

// TestbedScenario is the paper's small-scale testbed: N = 3 devices on
// walking 4G traces, λ = 1 (DESIGN.md §5 calibration).
func TestbedScenario(seed int64) Scenario {
	return Scenario{N: 3, Lambda: 1, ModelMB: 25, Tau: 1, TraceSec: 4000, Seed: seed}
}

// SimulationScenario is the paper's scalability simulation: N devices
// (50 in Fig. 8) drawing traces from five distinct walking datasets, λ = 0.1.
func SimulationScenario(n int, seed int64) Scenario {
	return Scenario{N: n, Lambda: 0.1, ModelMB: 25, Tau: 1, TraceSec: 4000, Seed: seed}
}

// Build materializes the scenario into a simulator System. Devices draw
// their parameters from the §V-A distributions; device i replays a trace
// generated from walking profile i mod 5 ("each mobile device randomly
// select[s] one dataset").
func (sc Scenario) Build() (*fl.System, error) {
	if sc.N <= 0 {
		return nil, fmt.Errorf("experiments: scenario with %d devices", sc.N)
	}
	devs, err := device.NewFleet(sc.N, device.FleetParams{}, sc.Seed)
	if err != nil {
		return nil, err
	}
	profiles := bandwidth.WalkingProfiles()
	traces := make([]*trace.Trace, sc.N)
	for i := range traces {
		p := profiles[i%len(profiles)]
		tr, err := p.Generate(fmt.Sprintf("%s-dev%02d", p.Name, i), sc.TraceSec, sc.Seed+int64(i)*10007)
		if err != nil {
			return nil, err
		}
		traces[i] = tr
	}
	sys := &fl.System{
		Devices:    devs,
		Traces:     traces,
		Tau:        sc.Tau,
		ModelBytes: sc.ModelMB * 1e6,
		Lambda:     sc.Lambda,
	}
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	return sys, nil
}

// TrainOptions size an offline training run.
type TrainOptions struct {
	// Episodes of Algorithm 1 training.
	Episodes int
	// Hidden layer widths.
	Hidden []int
	// Arch is the actor architecture.
	Arch core.Arch
	// Seed for the trainer.
	Seed int64
	// Workers selects the trainer's rollout mode (see core.Config.Workers):
	// 0 keeps the sequential Algorithm 1 loop, w ≥ 1 collects episodes
	// with a w-goroutine rollout pool whose output is independent of w.
	Workers int
	// TrainWorkers caps the goroutines of the data-parallel gradient engine
	// inside each optimizer update (see core.Config.TrainWorkers); the
	// result is bit-identical at any setting.
	TrainWorkers int
	// Constrained switches PPO to the Lagrangian constrained update:
	// per-iteration deadline and energy-budget cost signals, with targets
	// calibrated from the same run-at-max probe as the reward scale.
	Constrained bool
	// CostLimit is d_j for both constraints in normalized-overshoot units
	// (0 demands zero average overshoot of the calibrated targets).
	CostLimit float64
	// TimeSlack scales the probe's mean round duration into the deadline
	// target (0 → DefaultTimeSlack; must stay > 1 — max frequency is the
	// fastest the fleet can go).
	TimeSlack float64
	// EnergyFrac scales the probe's mean per-iteration energy into the
	// budget (0 → DefaultEnergyFrac; < 1 demands savings).
	EnergyFrac float64
}

// Default constraint-calibration factors of constrained training: a 25%
// deadline slack over the run-at-max round time and an energy budget at
// 90% of run-at-max burn.
const (
	DefaultTimeSlack  = 1.25
	DefaultEnergyFrac = 0.9
)

// TestbedTrainOptions reproduce the Fig. 6/7 agent.
func TestbedTrainOptions() TrainOptions {
	return TrainOptions{Episodes: 600, Hidden: []int{64, 64}, Arch: core.ArchJoint, Seed: 1}
}

// SimulationTrainOptions reproduce the Fig. 8 agent: the weight-shared
// per-device actor that scales to 50 devices (DESIGN.md substitution note).
func SimulationTrainOptions() TrainOptions {
	return TrainOptions{Episodes: 400, Hidden: []int{32, 32}, Arch: core.ArchShared, Seed: 1}
}

// TrainConfig materializes the trainer configuration the options describe,
// including the run-at-max reward-scale calibration. It is deterministic in
// (sys, opts), so a resumed run rebuilding the config gets the exact one
// the checkpoint was written under.
func TrainConfig(sys *fl.System, opts TrainOptions) (core.Config, error) {
	cfg := core.DefaultConfig()
	cfg.Episodes = opts.Episodes
	if len(opts.Hidden) > 0 {
		cfg.Hidden = opts.Hidden
	}
	if opts.Arch != "" {
		cfg.Arch = opts.Arch
	}
	cfg.Seed = opts.Seed
	cfg.Workers = opts.Workers
	cfg.TrainWorkers = opts.TrainWorkers
	scale, err := core.CalibrateRewardScale(sys, 10)
	if err != nil {
		return core.Config{}, err
	}
	cfg.Env.RewardScale = scale
	if opts.Constrained {
		slack := opts.TimeSlack
		if slack == 0 {
			slack = DefaultTimeSlack
		}
		frac := opts.EnergyFrac
		if frac == 0 {
			frac = DefaultEnergyFrac
		}
		if opts.CostLimit < 0 {
			return core.Config{}, fmt.Errorf("experiments: cost limit %v negative", opts.CostLimit)
		}
		deadline, energy, err := core.CalibrateConstraints(sys, 10, slack, frac)
		if err != nil {
			return core.Config{}, err
		}
		cfg.Env.DeadlineTarget = deadline
		cfg.Env.EnergyBudget = energy
		cc := rl.DefaultConstraintConfig()
		for j := range cc.CostLimit {
			cc.CostLimit[j] = opts.CostLimit
		}
		cfg.PPO.Constraint = cc
	}
	return cfg, nil
}

// TrainAgent runs Algorithm 1 on the system and returns the trained agent
// plus the per-episode statistics (the Fig. 6 curves). Reward scaling is
// auto-calibrated with a run-at-max probe so the same hyperparameters work
// at every fleet size.
func TrainAgent(sys *fl.System, opts TrainOptions) (*core.Agent, []core.EpisodeStats, error) {
	cfg, err := TrainConfig(sys, opts)
	if err != nil {
		return nil, nil, err
	}
	tr, err := core.NewTrainer(sys, cfg)
	if err != nil {
		return nil, nil, err
	}
	eps, err := tr.Run(nil)
	if err != nil {
		return nil, nil, err
	}
	return tr.Agent(), eps, nil
}
