package experiments

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// quickFaultSweep keeps the sweep small enough for unit tests while still
// exercising a fault-free and a heavily faulty cell.
func quickFaultSweep() (Scenario, FaultSweepOptions) {
	sc := TestbedScenario(5)
	sc.N = 2
	sc.TraceSec = 1500
	opts := DefaultFaultSweepOptions()
	opts.CrashProbs = []float64{0, 0.4}
	opts.Episodes = 3
	opts.Iterations = 10
	opts.Seed = 3
	return sc, opts
}

// The sweep is an experiment artifact: two invocations with the same inputs
// must agree bit-for-bit, at any worker count.
func TestFaultSweepGoldenDeterminism(t *testing.T) {
	sc, opts := quickFaultSweep()
	a, err := FaultSweep(sc, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 1
	b, err := FaultSweep(sc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("fault sweep not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestFaultSweepDegradesGracefully(t *testing.T) {
	sc, opts := quickFaultSweep()
	res, err := FaultSweep(sc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	if res.Deadline <= 0 {
		t.Fatalf("auto-probed deadline %v", res.Deadline)
	}
	for _, row := range res.Rows {
		if len(row.Cells) != len(res.Schedulers) {
			t.Fatalf("crash %v: %d cells for %d schedulers", row.CrashProb, len(row.Cells), len(res.Schedulers))
		}
		for _, c := range row.Cells {
			if !(c.MeanCost > 0) || !(c.MeanTime > 0) {
				t.Fatalf("crash %v %s: non-positive metrics %+v", row.CrashProb, c.Scheduler, c)
			}
			if c.SurvivorFrac < 0 || c.SurvivorFrac > 1 {
				t.Fatalf("crash %v %s: survivor fraction %v", row.CrashProb, c.Scheduler, c.SurvivorFrac)
			}
		}
	}
	// The fault-free row keeps the whole fleet; the 40%-crash row cannot.
	if frac := res.Rows[0].Cells[0].SurvivorFrac; frac != 1 {
		t.Fatalf("fault-free survivor fraction %v", frac)
	}
	if frac := res.Rows[1].Cells[0].SurvivorFrac; frac >= 1 {
		t.Fatalf("crash=0.4 survivor fraction %v, expected churn", frac)
	}

	var out bytes.Buffer
	if err := res.Render(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Fault sweep") || !strings.Contains(out.String(), "survivors (drl)") {
		t.Fatalf("render missing headline:\n%s", out.String())
	}
	var csv bytes.Buffer
	if err := res.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "crash_prob") || !strings.Contains(csv.String(), "cost_drl") {
		t.Fatalf("CSV missing headers:\n%s", csv.String())
	}
}

func TestFaultSweepRejectsBadOptions(t *testing.T) {
	sc, opts := quickFaultSweep()
	bad := opts
	bad.CrashProbs = nil
	if _, err := FaultSweep(sc, bad); err == nil {
		t.Fatal("empty crash grid accepted")
	}
	bad = opts
	bad.Iterations = 0
	if _, err := FaultSweep(sc, bad); err == nil {
		t.Fatal("zero iterations accepted")
	}
	bad = opts
	bad.CrashProbs = []float64{1.5}
	if _, err := FaultSweep(sc, bad); err == nil {
		t.Fatal("crash probability above 1 accepted")
	}
}
