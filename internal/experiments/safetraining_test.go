package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/guard"
)

// quickSafeTraining pins the acceptance configuration: λ = 0.1 makes the
// plan gate time-dominated, and the gate's CostFactor 1.25 matches the
// constrained arm's deadline slack — constrained training internalizes
// the very bound the guard enforces, so its plans should clear the gate
// that benches the unconstrained actor.
func quickSafeTraining() (Scenario, SafeTrainingOptions) {
	sc := TestbedScenario(3)
	sc.N = 2
	sc.TraceSec = 1500
	sc.Lambda = 0.1
	opts := DefaultSafeTrainingOptions()
	opts.Episodes = 120
	opts.Iterations = 30
	opts.Seed = 3
	opts.Guard = guard.Config{CostFactor: 1.25, TripAfter: 1, Probation: 4}
	return sc, opts
}

// TestSafeTrainingAcceptance pins the experiment's claim: the
// constrained+guard arm trips the breaker strictly fewer times than the
// unconstrained+guard arm at equal-or-better total guarded cost.
func TestSafeTrainingAcceptance(t *testing.T) {
	sc, opts := quickSafeTraining()
	res, err := SafeTraining(sc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Fatal(err)
	}
	c, u := res.Constrained, res.Unconstrained
	if !(c.Trips < u.Trips) {
		t.Fatalf("constrained trips %d not strictly below unconstrained %d", c.Trips, u.Trips)
	}
	if !(c.Cost <= u.Cost) {
		t.Fatalf("constrained cost %.3f worse than unconstrained %.3f", c.Cost, u.Cost)
	}
	want := opts.Iterations * len(res.Rows)
	if c.Decisions != want || u.Decisions != want {
		t.Fatalf("decision totals %d/%d, want %d", c.Decisions, u.Decisions, want)
	}
	if !(res.DeadlineTarget > 0) || !(res.EnergyBudget > 0) {
		t.Fatalf("constraint targets not calibrated: deadline %v, energy %v", res.DeadlineTarget, res.EnergyBudget)
	}
	// The unguarded column must ablate the guard: every finished class
	// reports a bare-actor cost, and the arm carries no breaker.
	if res.Unguarded.Trips != 0 {
		t.Fatalf("unguarded arm reports %d trips", res.Unguarded.Trips)
	}
	if res.Unguarded.Failures+countFinished(res) != len(res.Rows) {
		t.Fatalf("unguarded failures %d + finished %d != %d classes",
			res.Unguarded.Failures, countFinished(res), len(res.Rows))
	}
}

func countFinished(res *SafeTrainingResult) int {
	n := 0
	for _, row := range res.Rows {
		if row.Constrained.UnguardedErr == "" {
			n++
		}
	}
	return n
}

// TestSafeTrainingRender smoke-tests the table and CSV output.
func TestSafeTrainingRender(t *testing.T) {
	sc, opts := quickSafeTraining()
	opts.Episodes = 3
	opts.Iterations = 8
	res, err := SafeTraining(sc, opts)
	if err != nil {
		t.Fatal(err)
	}
	var tbl bytes.Buffer
	if err := res.Render(&tbl); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"constrained+guard", "unconstrained+guard", "con unguarded", "spike", "poison"} {
		if !strings.Contains(tbl.String(), want) {
			t.Errorf("render missing %q:\n%s", want, tbl.String())
		}
	}
	var csv bytes.Buffer
	if err := res.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	head := strings.SplitN(csv.String(), "\n", 2)[0]
	if !strings.HasPrefix(head, "class_idx,") || !strings.Contains(head, "con_trips") {
		t.Errorf("unexpected CSV header: %q", head)
	}
}
