package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/guard"
)

// quickGuardChaos keeps the ablation small enough for unit tests while
// still covering every chaos class.
func quickGuardChaos() (Scenario, GuardChaosOptions) {
	sc := TestbedScenario(5)
	sc.N = 2
	sc.TraceSec = 1500
	opts := DefaultGuardChaosOptions()
	opts.Episodes = 3
	opts.Iterations = 8
	opts.Seed = 3
	return sc, opts
}

func TestGuardChaosQuick(t *testing.T) {
	sc, opts := quickGuardChaos()
	res, err := GuardChaos(sc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 5 {
		t.Fatalf("got %d chaos rows, want ≥5", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.FreqViolations != 0 {
			t.Errorf("class %s: %d guarded frequency violations", row.Class, row.FreqViolations)
		}
		if row.Decisions != opts.Iterations {
			t.Errorf("class %s: %d decisions, want %d", row.Class, row.Decisions, opts.Iterations)
		}
		if !(row.GuardedCost > 0) || !(row.SafeCost > 0) {
			t.Errorf("class %s: non-positive costs %+v", row.Class, row)
		}
	}
	var tbl bytes.Buffer
	if err := res.Render(&tbl); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"guarded", "safe (paired)", "spike", "poison"} {
		if !strings.Contains(tbl.String(), want) {
			t.Errorf("render missing %q:\n%s", want, tbl.String())
		}
	}
	var csv bytes.Buffer
	if err := res.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "class_idx,") {
		t.Errorf("unexpected CSV header: %q", strings.SplitN(csv.String(), "\n", 2)[0])
	}
}

// The guarded column rides along the Fig. 7 comparison when requested.
func TestCompareWithGuard(t *testing.T) {
	sc := TestbedScenario(5)
	sc.N = 2
	sc.TraceSec = 1500
	sys, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	agent, _, err := TrainAgent(sys, TrainOptions{Episodes: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	opts := CompareOptions{Iterations: 8, Runs: 2, StaticSamples: 2, Seed: 3,
		Guard: &guard.Config{CostFactor: 1.0, TripAfter: 1, Probation: 20}}
	res, err := Compare("guarded compare", sc, agent, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Summary("drl"); !ok {
		t.Fatal("missing drl summary")
	}
	g, ok := res.Summary("drl+guard")
	if !ok {
		t.Fatal("missing drl+guard summary")
	}
	if len(g.Costs) != opts.Iterations*opts.Runs {
		t.Fatalf("guarded column pooled %d samples, want %d", len(g.Costs), opts.Iterations*opts.Runs)
	}
}
