package experiments

import (
	"runtime"
	"sync"
)

// MaxWorkers caps the concurrency of every worker pool in this package
// (Compare's evaluation runs, the ablation grids, and RunJobs). 0 — the
// default — means runtime.NumCPU(). Set it once at startup, e.g. from a
// -workers flag; it is read when a pool starts and is not synchronized
// against concurrent mutation.
var MaxWorkers int

// poolWidth resolves a requested worker count against MaxWorkers and the
// job count: requested 0 means "auto" (all CPUs up to the cap).
func poolWidth(requested, jobs int) int {
	w := requested
	if w <= 0 {
		w = MaxWorkers
		if w <= 0 {
			w = runtime.NumCPU()
		}
	}
	if w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// RunJobs executes n independent jobs across at most `workers` goroutines
// (workers <= 0 selects the MaxWorkers/NumCPU default) and returns the
// first error encountered, after all in-flight jobs finish. Jobs must be
// independent and deterministic given their index; because each job writes
// only to its own output slot, results are identical at any worker count —
// the same contract the parallel rollout layer follows. Remaining jobs are
// skipped once a job fails.
func RunJobs(n, workers int, job func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = poolWidth(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := job(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				mu.Lock()
				skip := firstErr != nil
				mu.Unlock()
				if skip {
					continue
				}
				if err := job(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return firstErr
}
