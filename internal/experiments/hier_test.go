package experiments

import (
	"math"
	"strings"
	"testing"
)

// TestHierSweep runs the protocol-scaling sweep at toy size and checks the
// cross-variant invariants the engines guarantee.
func TestHierSweep(t *testing.T) {
	opts := HierSweepOptions{N: 400, Regions: 8, Steps: 6, Seed: 3}
	res, err := HierSweep(opts)
	if err != nil {
		t.Fatalf("HierSweep: %v", err)
	}
	if len(res.Variant) != 4 {
		t.Fatalf("got %d variants, want 4", len(res.Variant))
	}
	byName := map[string]HierVariant{}
	for _, v := range res.Variant {
		if v.MeanDuration <= 0 || v.MeanCost <= 0 || v.RoundsPerSec <= 0 {
			t.Fatalf("variant %s has degenerate stats: %+v", v.Name, v)
		}
		byName[v.Name] = v
	}
	flat, sync := byName["flat-barrier"], byName["hier-sync"]
	if flat.MeanParticipants != 400 || sync.MeanParticipants != 400 {
		t.Fatalf("full-participation variants trained %.0f / %.0f devices, want 400",
			flat.MeanParticipants, sync.MeanParticipants)
	}
	// With full cohorts, no edge latency and a full barrier the two-tier
	// round time is the same max over the same devices: bit-equal.
	if flat.MeanDuration != sync.MeanDuration {
		t.Fatalf("hier-sync duration %v != flat %v", sync.MeanDuration, flat.MeanDuration)
	}
	// Energy merges in region order rather than device order, so costs only
	// agree to rounding.
	if d := math.Abs(sync.MeanCost-flat.MeanCost) / flat.MeanCost; d > 1e-9 {
		t.Fatalf("hier-sync cost %v vs flat %v (rel Δ %v)", sync.MeanCost, flat.MeanCost, d)
	}
	cohort := byName["hier-cohort"]
	if cohort.MeanParticipants >= 400 || cohort.MeanParticipants <= 0 {
		t.Fatalf("cohort variant trained %.0f devices, want a strict subsample", cohort.MeanParticipants)
	}
	semi := byName["semi-async"]
	if semi.StaleFrac < 0 || semi.StaleFrac > 1 {
		t.Fatalf("semi-async stale fraction %v outside [0, 1]", semi.StaleFrac)
	}
	if semi.MeanDuration > cohort.MeanDuration {
		t.Fatalf("semi-async commit (%.2fs) not faster than the full cohort barrier (%.2fs)",
			semi.MeanDuration, cohort.MeanDuration)
	}

	var tb, csv strings.Builder
	if err := res.Render(&tb); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if !strings.Contains(tb.String(), "semi-async") {
		t.Fatalf("rendered table misses variants:\n%s", tb.String())
	}
	if err := res.WriteCSV(&csv); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	if got := strings.Count(csv.String(), "\n"); got != 5 {
		t.Fatalf("CSV has %d lines, want header + 4 variants", got)
	}
}

// TestHierSweepValidation rejects degenerate sizings.
func TestHierSweepValidation(t *testing.T) {
	for _, opts := range []HierSweepOptions{
		{N: 0, Regions: 4, Steps: 2},
		{N: 100, Regions: 0, Steps: 2},
		{N: 100, Regions: 4, Steps: 0},
	} {
		if _, err := HierSweep(opts); err == nil {
			t.Fatalf("options %+v accepted", opts)
		}
	}
}
