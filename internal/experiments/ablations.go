package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/core"
	"repro/internal/fl"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/stats"
)

// AblationRow is one configuration's outcome in an ablation sweep.
type AblationRow struct {
	// Label names the configuration (e.g. "H=3", "λ=0.5").
	Label string
	// MeanCost, MeanTime and MeanEnergy summarize the run.
	MeanCost, MeanTime, MeanEnergy float64
}

// AblationResult is a labelled sweep.
type AblationResult struct {
	Title string
	Rows  []AblationRow
}

// Render prints the sweep as a table.
func (r *AblationResult) Render(w io.Writer) error {
	tb := report.NewTable(r.Title, "config", "mean cost", "mean time", "mean energy")
	for _, row := range r.Rows {
		tb.AddRowf(row.Label, row.MeanCost, row.MeanTime, row.MeanEnergy)
	}
	return tb.Render(w)
}

// AblationStaticSamples sweeps the Static baseline's estimate quality: the
// mean cost (across estimate seeds) as a function of how many bandwidth
// samples back its plan. It isolates why the paper's Static baseline
// degrades — few samples misrank devices.
func AblationStaticSamples(sc Scenario, sampleCounts []int, seeds int, iters int) (*AblationResult, error) {
	if len(sampleCounts) == 0 || seeds <= 0 || iters <= 0 {
		return nil, fmt.Errorf("experiments: invalid static ablation parameters")
	}
	sys, err := sc.Build()
	if err != nil {
		return nil, err
	}
	res := &AblationResult{Title: "Ablation — Static baseline vs bandwidth-sample count"}
	// Every (sample count, seed) cell is independent — the shared system is
	// read-only during sched.Run — so the whole grid fans out over the
	// worker pool and fills a preallocated row table, keeping the output
	// identical to the nested sequential loops.
	rows := make([]AblationRow, len(sampleCounts))
	err = RunJobs(len(sampleCounts), 0, func(i int) error {
		k := sampleCounts[i]
		var costs, times, energies []float64
		for s := 0; s < seeds; s++ {
			st, err := sched.NewStaticSampled(sys, k, 0.05, rand.New(rand.NewSource(int64(s)*104729+7)))
			if err != nil {
				return err
			}
			its, err := sched.Run(sys, st, 0, iters)
			if err != nil {
				return err
			}
			costs = append(costs, stats.Mean(sched.Costs(its)))
			times = append(times, stats.Mean(sched.Durations(its)))
			energies = append(energies, stats.Mean(sched.ComputeEnergies(its)))
		}
		rows[i] = AblationRow{
			Label:      fmt.Sprintf("samples=%d", k),
			MeanCost:   stats.Mean(costs),
			MeanTime:   stats.Mean(times),
			MeanEnergy: stats.Mean(energies),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// AblationHistory sweeps the DRL state's history length H: how many past
// bandwidth slots the agent observes (§IV-B1). Each H trains a fresh agent.
func AblationHistory(sc Scenario, histories []int, episodes, iters int) (*AblationResult, error) {
	if len(histories) == 0 || episodes <= 0 || iters <= 0 {
		return nil, fmt.Errorf("experiments: invalid history ablation parameters")
	}
	for _, h := range histories {
		if h < 0 {
			return nil, fmt.Errorf("experiments: negative history %d", h)
		}
	}
	res := &AblationResult{Title: "Ablation — DRL state history length H"}
	// Each history length trains a fresh agent on its own freshly built
	// system, so the grid points share nothing and run concurrently.
	rows := make([]AblationRow, len(histories))
	err := RunJobs(len(histories), 0, func(i int) error {
		h := histories[i]
		sys, err := sc.Build()
		if err != nil {
			return err
		}
		cfg := core.DefaultConfig()
		cfg.Episodes = episodes
		cfg.Env.History = h
		scale, err := core.CalibrateRewardScale(sys, 10)
		if err != nil {
			return err
		}
		cfg.Env.RewardScale = scale
		tr, err := core.NewTrainer(sys, cfg)
		if err != nil {
			return err
		}
		if _, err := tr.Run(nil); err != nil {
			return err
		}
		drl, err := tr.Agent().Scheduler()
		if err != nil {
			return err
		}
		its, err := sched.Run(sys, drl, 0, iters)
		if err != nil {
			return err
		}
		rows[i] = AblationRow{
			Label:      fmt.Sprintf("H=%d", h),
			MeanCost:   stats.Mean(sched.Costs(its)),
			MeanTime:   stats.Mean(sched.Durations(its)),
			MeanEnergy: stats.Mean(sched.ComputeEnergies(its)),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// AblationLambda sweeps the cost weight λ (eq. 9): each λ trains a fresh
// agent and reports its time/energy operating point — the tradeoff frontier
// the objective is designed to expose.
func AblationLambda(sc Scenario, lambdas []float64, episodes, iters int) (*AblationResult, error) {
	if len(lambdas) == 0 || episodes <= 0 || iters <= 0 {
		return nil, fmt.Errorf("experiments: invalid lambda ablation parameters")
	}
	for _, lam := range lambdas {
		if lam < 0 {
			return nil, fmt.Errorf("experiments: negative λ %v", lam)
		}
	}
	res := &AblationResult{Title: "Ablation — time/energy preference λ"}
	rows := make([]AblationRow, len(lambdas))
	err := RunJobs(len(lambdas), 0, func(i int) error {
		scl := sc
		scl.Lambda = lambdas[i]
		sys, err := scl.Build()
		if err != nil {
			return err
		}
		agent, _, err := TrainAgent(sys, TrainOptions{Episodes: episodes, Hidden: []int{32, 32}, Arch: core.ArchJoint, Seed: 1})
		if err != nil {
			return err
		}
		drl, err := agent.Scheduler()
		if err != nil {
			return err
		}
		its, err := sched.Run(sys, drl, 0, iters)
		if err != nil {
			return err
		}
		rows[i] = AblationRow{
			Label:      fmt.Sprintf("λ=%g", lambdas[i]),
			MeanCost:   stats.Mean(sched.Costs(its)),
			MeanTime:   stats.Mean(sched.Durations(its)),
			MeanEnergy: stats.Mean(sched.ComputeEnergies(its)),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// AblationArch compares the paper's joint actor against the weight-shared
// per-device actor at a given fleet size, quantifying the architecture
// substitution DESIGN.md documents for Fig. 8.
func AblationArch(sc Scenario, episodes, iters int) (*AblationResult, error) {
	if episodes <= 0 || iters <= 0 {
		return nil, fmt.Errorf("experiments: invalid arch ablation parameters")
	}
	res := &AblationResult{Title: fmt.Sprintf("Ablation — actor architecture (N=%d)", sc.N)}
	archs := []core.Arch{core.ArchJoint, core.ArchShared}
	rows := make([]AblationRow, len(archs))
	err := RunJobs(len(archs), 0, func(i int) error {
		sys, err := sc.Build()
		if err != nil {
			return err
		}
		agent, _, err := TrainAgent(sys, TrainOptions{Episodes: episodes, Hidden: []int{32, 32}, Arch: archs[i], Seed: 1})
		if err != nil {
			return err
		}
		drl, err := agent.Scheduler()
		if err != nil {
			return err
		}
		its, err := sched.Run(sys, drl, 0, iters)
		if err != nil {
			return err
		}
		rows[i] = AblationRow{
			Label:      string(archs[i]),
			MeanCost:   stats.Mean(sched.Costs(its)),
			MeanTime:   stats.Mean(sched.Durations(its)),
			MeanEnergy: stats.Mean(sched.ComputeEnergies(its)),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// AblationSyncAsync examines the synchronization choice the paper makes in
// §III-A (citing [14]): the synchronous barrier versus fully asynchronous
// updates, compared on update throughput, energy per update, fairness
// (per-device update-count spread) and staleness. Async always wins raw
// throughput — it never idles — but its updates are stale and skewed toward
// fast devices, the statistical-efficiency tax that motivates the barrier
// (and hence this paper's idle-time optimization).
func AblationSyncAsync(sc Scenario, iters int) (*AblationResult, error) {
	if iters <= 0 {
		return nil, fmt.Errorf("experiments: invalid iteration count %d", iters)
	}
	sys, err := sc.Build()
	if err != nil {
		return nil, err
	}
	freqs := make([]float64, sys.N())
	for i, d := range sys.Devices {
		freqs[i] = d.MaxFreqHz
	}
	syncRes, err := sys.SyncThroughput(0, freqs, iters)
	if err != nil {
		return nil, err
	}
	asyncRes, err := sys.RunAsync(0, freqs, syncRes.Updates)
	if err != nil {
		return nil, err
	}
	res := &AblationResult{Title: "Ablation — synchronous barrier vs asynchronous updates"}
	for _, entry := range []struct {
		label string
		r     flAsyncResult
	}{
		{"synchronous (paper)", flAsyncResult(syncRes)},
		{"asynchronous", flAsyncResult(asyncRes)},
	} {
		res.Rows = append(res.Rows, AblationRow{
			Label:      fmt.Sprintf("%s: %.3f upd/s, staleness %.2f", entry.label, entry.r.UpdateRate(), entry.r.MeanStaleness),
			MeanCost:   entry.r.Elapsed,
			MeanTime:   entry.r.Elapsed / float64(entry.r.Updates),
			MeanEnergy: (entry.r.ComputeEnergy + entry.r.TxEnergy) / float64(entry.r.Updates),
		})
	}
	return res, nil
}

// flAsyncResult aliases fl.AsyncResult for the table rows above.
type flAsyncResult = fl.AsyncResult

// AblationBarrierAwareness separates the paper's two ideas: how much of the
// win comes from *knowing about the synchronization barrier* at all
// (a barrier-aware planner with a perfect long-run bandwidth estimate)
// versus *adapting to network dynamics* (the DRL agent). It compares the
// barrier-unaware decoupled static [4], a barrier-aware static plan with
// oracle mean bandwidths, and run-at-max.
func AblationBarrierAwareness(sc Scenario, iters int) (*AblationResult, error) {
	if iters <= 0 {
		return nil, fmt.Errorf("experiments: invalid iteration count %d", iters)
	}
	sys, err := sc.Build()
	if err != nil {
		return nil, err
	}
	decoupled, err := sched.NewStaticDecoupled(sys, 0.05)
	if err != nil {
		return nil, err
	}
	meanBW := make([]float64, sys.N())
	for i, tr := range sys.Traces {
		meanBW[i] = tr.Summary().Mean
	}
	aware, err := sched.NewStatic(sys, meanBW, 0.05)
	if err != nil {
		return nil, err
	}
	res := &AblationResult{Title: "Ablation — value of barrier awareness (static plans)"}
	for _, entry := range []struct {
		label string
		s     sched.Scheduler
	}{
		{"maxfreq (no tradeoff)", sched.MaxFreq{}},
		{"decoupled static [4]", decoupled},
		{"barrier-aware static", aware},
	} {
		its, err := sched.Run(sys, entry.s, 0, iters)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, AblationRow{
			Label:      entry.label,
			MeanCost:   stats.Mean(sched.Costs(its)),
			MeanTime:   stats.Mean(sched.Durations(its)),
			MeanEnergy: stats.Mean(sched.ComputeEnergies(its)),
		})
	}
	return res, nil
}
