package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/sched"
)

// AblationSelection studies the other straggler lever the literature offers
// (client selection, Nishio & Yonetani [38], cited in §VI) inside the
// paper's cost model, and how it composes with frequency control:
//
//   - full participation at max frequency (the FL default),
//   - FedCS-style deadline selection at max frequency (drop stragglers),
//   - random-fraction selection (FedAvg's client sampling),
//   - full participation with the heuristic frequency controller
//     (the paper's lever),
//   - deadline selection combined with the heuristic controller.
//
// Selection shortens rounds by excluding devices; frequency control keeps
// everyone contributing but spends the barrier slack on energy. The table
// reports the tension: updates/second vs energy vs round breadth.
func AblationSelection(sc Scenario, deadlineSec float64, iters int, seed int64) (*AblationResult, error) {
	if deadlineSec <= 0 || iters <= 0 {
		return nil, fmt.Errorf("experiments: invalid selection ablation parameters")
	}
	sys, err := sc.Build()
	if err != nil {
		return nil, err
	}
	initBW := make([]float64, sys.N())
	for i, tr := range sys.Traces {
		initBW[i] = tr.Summary().Mean
	}
	heuristic, err := sched.NewHeuristic(initBW, 0.05)
	if err != nil {
		return nil, err
	}
	deadline, err := sched.NewDeadlineSelector(deadlineSec, 1)
	if err != nil {
		return nil, err
	}
	randomSel, err := sched.NewRandomFraction(0.5, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}

	res := &AblationResult{Title: fmt.Sprintf("Ablation — client selection vs frequency control (deadline %.0fs)", deadlineSec)}
	for _, entry := range []struct {
		label string
		s     sched.Scheduler
		sel   sched.Selector
	}{
		{"full + maxfreq", sched.MaxFreq{}, sched.FullParticipation{}},
		{"deadline-select + maxfreq", sched.MaxFreq{}, deadline},
		{"random-half + maxfreq", sched.MaxFreq{}, randomSel},
		{"full + heuristic freq", heuristic, sched.FullParticipation{}},
		{"deadline-select + heuristic freq", heuristic, deadline},
	} {
		rounds, err := sched.RunWithSelection(sys, entry.s, entry.sel, 0, iters)
		if err != nil {
			return nil, err
		}
		sum := sched.Summarize(rounds)
		res.Rows = append(res.Rows, AblationRow{
			Label: fmt.Sprintf("%s (%.1f devices/round, %.3f upd/s)",
				entry.label, sum.MeanParticipants, sum.UpdatesPerSecond),
			MeanCost:   sum.MeanCost,
			MeanTime:   sum.MeanTime,
			MeanEnergy: sum.MeanEnergy,
		})
	}
	return res, nil
}
