package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"repro/internal/fl"
	"repro/internal/hier"
	"repro/internal/report"
)

// HierSweepOptions size the hierarchical-federation scaling sweep.
type HierSweepOptions struct {
	// N is the device population shared by every protocol variant.
	N int
	// Regions is the edge-aggregator count for the two-tier variants.
	Regions int
	// Steps is the number of global rounds each variant runs.
	Steps int
	// CohortFrac is the per-region sampling fraction of the subsampled
	// variants (0 selects 0.05).
	CohortFrac float64
	// MinArrivalFrac is the fraction of regions whose arrival commits a
	// semi-async step (0 selects 0.75).
	MinArrivalFrac float64
	// MinArrivals overrides MinArrivalFrac with an absolute arrival count
	// when non-zero.
	MinArrivals int
	// StalenessBeta is the late-update decay of the semi-async variant
	// (0 = the engine default).
	StalenessBeta float64
	// EdgeLatencySec is the aggregator→cloud latency of the two-tier
	// variants (the price of the extra tier; 0 = colocated).
	EdgeLatencySec float64
	// Frac is the operating frequency fraction every device runs at, so all
	// variants execute the identical plan (0 selects 0.6).
	Frac float64
	// Tau, ModelBytes and Lambda parameterize the cost model (zeros select
	// 1, 5e5 and 1e-3).
	Tau        int
	ModelBytes float64
	Lambda     float64
	// Workers bounds the engine's per-region parallelism (0 = serial).
	Workers int
	// Seed drives fleet construction and cohort sampling.
	Seed int64
}

// DefaultHierSweepOptions cover the interesting regime at a size that still
// renders interactively.
func DefaultHierSweepOptions() HierSweepOptions {
	return HierSweepOptions{N: 20_000, Regions: 64, Steps: 40, Seed: 1}
}

func (o HierSweepOptions) withDefaults() HierSweepOptions {
	if o.CohortFrac == 0 {
		o.CohortFrac = 0.05
	}
	if o.MinArrivalFrac == 0 {
		o.MinArrivalFrac = 0.75
	}
	if o.Frac == 0 {
		o.Frac = 0.6
	}
	if o.Tau == 0 {
		o.Tau = 1
	}
	if o.ModelBytes == 0 {
		o.ModelBytes = 5e5
	}
	if o.Lambda == 0 {
		o.Lambda = 1e-3
	}
	return o
}

// HierVariant is one protocol's outcome over the sweep's rounds.
type HierVariant struct {
	// Name labels the protocol configuration.
	Name string
	// Regions is the edge-tier width (1 means flat).
	Regions int
	// MeanParticipants is the mean number of devices training per round.
	MeanParticipants float64
	// MeanCost, MeanDuration and MeanEnergy average the per-round system
	// cost, commit latency and total energy.
	MeanCost, MeanDuration, MeanEnergy float64
	// MeanUpdateWeight is the mean aggregation weight per commit
	// (N under a flat barrier; semi-async trades weight for speed).
	MeanUpdateWeight float64
	// StaleFrac is the fraction of incorporated updates that arrived late.
	StaleFrac float64
	// SimHorizon is the simulated wall-clock the rounds spanned.
	SimHorizon float64
	// RoundsPerSec is the measured host throughput of the engine itself —
	// the scaling number the two-tier design exists for.
	RoundsPerSec float64
}

// HierSweepResult compares the flat barrier against the two-tier protocols
// on one shared population.
type HierSweepResult struct {
	Title   string
	N       int
	Steps   int
	Variant []HierVariant
}

// HierSweep runs the same device population through four federation
// protocols — the flat synchronous barrier, the two-tier synchronous
// engine, cohort subsampling, and the buffered semi-async commit — under
// the identical fixed frequency plan, and reports both the simulated
// per-round economics and the measured host throughput of each engine.
// Variants run sequentially so the throughput numbers are not polluted by
// each other's scheduling.
func HierSweep(opts HierSweepOptions) (*HierSweepResult, error) {
	opts = opts.withDefaults()
	if opts.N <= 0 || opts.Regions <= 0 || opts.Steps <= 0 {
		return nil, fmt.Errorf("experiments: invalid hier sweep parameters")
	}
	// Aligned phases keep the fleet expressible as a flat fl.System, so the
	// flat baseline sees the exact same devices and traces.
	fleet, err := hier.NewFleet(opts.N, hier.FleetOptions{AlignPhases: true}, opts.Seed)
	if err != nil {
		return nil, err
	}
	res := &HierSweepResult{
		Title: fmt.Sprintf("Hierarchical federation — protocol scaling (N=%d, R=%d, %d rounds)",
			opts.N, opts.Regions, opts.Steps),
		N:     opts.N,
		Steps: opts.Steps,
	}

	flat, err := flatVariant(fleet, opts)
	if err != nil {
		return nil, err
	}
	res.Variant = append(res.Variant, flat)

	minArrivals := opts.MinArrivals
	if minArrivals == 0 {
		minArrivals = int(opts.MinArrivalFrac*float64(opts.Regions) + 0.5)
	}
	if minArrivals < 1 {
		minArrivals = 1
	}
	for _, v := range []struct {
		name        string
		cohortFrac  float64
		minArrivals int
	}{
		{"hier-sync", 1, 0},
		{"hier-cohort", opts.CohortFrac, 0},
		{"semi-async", opts.CohortFrac, minArrivals},
	} {
		hv, err := hierVariant(fleet, opts, v.name, v.cohortFrac, v.minArrivals)
		if err != nil {
			return nil, err
		}
		res.Variant = append(res.Variant, hv)
	}
	return res, nil
}

// flatVariant runs the PR 1 flat synchronous engine as the baseline.
func flatVariant(fleet *hier.Fleet, opts HierSweepOptions) (HierVariant, error) {
	sys, err := fleet.System(opts.Tau, opts.ModelBytes, opts.Lambda)
	if err != nil {
		return HierVariant{}, err
	}
	ses, err := fl.NewSession(sys, 0)
	if err != nil {
		return HierVariant{}, err
	}
	freqs := make([]float64, fleet.N())
	for i := range freqs {
		freqs[i] = opts.Frac * fleet.MaxFreqHz[i]
	}
	v := HierVariant{Name: "flat-barrier", Regions: 1}
	begin := time.Now()
	for k := 0; k < opts.Steps; k++ {
		it, err := ses.StepInto(freqs)
		if err != nil {
			return HierVariant{}, err
		}
		v.MeanCost += it.Cost
		v.MeanDuration += it.Duration
		v.MeanEnergy += it.TotalEnergy()
	}
	elapsed := time.Since(begin).Seconds()
	n := float64(opts.Steps)
	v.MeanCost /= n
	v.MeanDuration /= n
	v.MeanEnergy /= n
	v.MeanParticipants = float64(fleet.N())
	v.MeanUpdateWeight = float64(fleet.N())
	v.SimHorizon = ses.Clock
	v.RoundsPerSec = n / elapsed
	return v, nil
}

// hierVariant runs one two-tier configuration over the shared fleet.
func hierVariant(fleet *hier.Fleet, opts HierSweepOptions, name string, cohortFrac float64, minArrivals int) (HierVariant, error) {
	top, err := hier.EvenTopology(fleet.N(), opts.Regions)
	if err != nil {
		return HierVariant{}, err
	}
	eng, err := hier.NewEngine(fleet, top, hier.Config{
		Tau: opts.Tau, ModelBytes: opts.ModelBytes, Lambda: opts.Lambda,
		CohortFrac: cohortFrac, MinArrivals: minArrivals,
		StalenessBeta:  opts.StalenessBeta,
		EdgeLatencySec: opts.EdgeLatencySec,
		Workers:        opts.Workers, Seed: opts.Seed,
	})
	if err != nil {
		return HierVariant{}, err
	}
	var planner hier.CohortPlanner = hier.FixedPlanner{Frac: opts.Frac}
	v := HierVariant{Name: name, Regions: opts.Regions}
	applied, stale := 0, 0
	begin := time.Now()
	for k := 0; k < opts.Steps; k++ {
		st, err := eng.StepInto(planner)
		if err != nil {
			return HierVariant{}, err
		}
		v.MeanCost += st.Cost
		v.MeanDuration += st.Duration
		v.MeanEnergy += st.TotalEnergy()
		v.MeanParticipants += float64(st.Participants)
		v.MeanUpdateWeight += st.UpdateWeight
		applied += st.OnTime + st.StaleApplied
		stale += st.StaleApplied
	}
	elapsed := time.Since(begin).Seconds()
	n := float64(opts.Steps)
	v.MeanCost /= n
	v.MeanDuration /= n
	v.MeanEnergy /= n
	v.MeanParticipants /= n
	v.MeanUpdateWeight /= n
	if applied > 0 {
		v.StaleFrac = float64(stale) / float64(applied)
	}
	v.SimHorizon = eng.Clock()
	v.RoundsPerSec = n / elapsed
	return v, nil
}

// Render prints one row per protocol, with the host throughput speedup
// normalized to the flat barrier. The rounds/s and speedup columns are
// measured host timings — the one part of the flexperiments output that is
// legitimately not identical across runs or worker counts; every simulated
// column is deterministic.
func (r *HierSweepResult) Render(w io.Writer) error {
	tb := report.NewTable(r.Title+" — rounds/s measured on host",
		"protocol", "regions", "devices/round", "mean T (s)", "mean cost",
		"mean energy (J)", "update weight", "stale", "rounds/s", "speedup")
	base := r.Variant[0].RoundsPerSec
	for _, v := range r.Variant {
		speedup := "1.0x"
		if base > 0 && v.RoundsPerSec != base {
			speedup = fmt.Sprintf("%.1fx", v.RoundsPerSec/base)
		}
		tb.AddRowf(v.Name, v.Regions,
			fmt.Sprintf("%.0f", v.MeanParticipants),
			v.MeanDuration, v.MeanCost, v.MeanEnergy,
			fmt.Sprintf("%.0f", v.MeanUpdateWeight),
			fmt.Sprintf("%.0f%%", 100*v.StaleFrac),
			fmt.Sprintf("%.1f", v.RoundsPerSec), speedup)
	}
	return tb.Render(w)
}

// WriteCSV dumps one row per protocol variant. The measured throughput is
// deliberately excluded: the CSV is a plotting artifact and stays byte
// identical across runs and worker counts (results/BENCH_hier.json tracks
// the host timings).
func (r *HierSweepResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"protocol", "regions", "mean_participants", "mean_duration_s",
		"mean_cost", "mean_energy_j", "mean_update_weight", "stale_frac",
		"sim_horizon_s",
	}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, v := range r.Variant {
		if err := cw.Write([]string{
			v.Name, strconv.Itoa(v.Regions), f(v.MeanParticipants),
			f(v.MeanDuration), f(v.MeanCost), f(v.MeanEnergy),
			f(v.MeanUpdateWeight), f(v.StaleFrac), f(v.SimHorizon),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
