package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fl"
)

// quickTrain keeps unit-test training cheap.
func quickTrain() TrainOptions {
	return TrainOptions{Episodes: 6, Hidden: []int{16}, Arch: core.ArchJoint, Seed: 1}
}

func quickCompare() CompareOptions {
	return CompareOptions{Iterations: 15, Runs: 2, StaticSamples: 2, IncludeExtras: false, Seed: 1}
}

func TestScenarioBuild(t *testing.T) {
	sys, err := TestbedScenario(1).Build()
	if err != nil {
		t.Fatal(err)
	}
	if sys.N() != 3 || sys.Lambda != 1 {
		t.Fatalf("testbed = N%d λ%v", sys.N(), sys.Lambda)
	}
	sim, err := SimulationScenario(10, 1).Build()
	if err != nil {
		t.Fatal(err)
	}
	if sim.N() != 10 || sim.Lambda != 0.1 {
		t.Fatalf("sim = N%d λ%v", sim.N(), sim.Lambda)
	}
	// Devices draw from five distinct profiles.
	names := map[string]bool{}
	for _, tr := range sim.Traces {
		names[strings.SplitN(tr.Name, "-dev", 2)[0]] = true
	}
	if len(names) != 5 {
		t.Fatalf("expected 5 profiles, got %v", names)
	}
	bad := TestbedScenario(1)
	bad.N = 0
	if _, err := bad.Build(); err == nil {
		t.Fatal("zero-device scenario accepted")
	}
}

func TestFig2(t *testing.T) {
	res, err := Fig2(400, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Walking) != 3 || res.Bus == nil {
		t.Fatalf("traces: %d walking, bus %v", len(res.Walking), res.Bus)
	}
	for _, tr := range res.Walking {
		if tr.Duration() < 400 {
			t.Fatalf("trace %s too short: %v", tr.Name, tr.Duration())
		}
	}
	var out bytes.Buffer
	if err := res.Render(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Figure 2") {
		t.Fatal("render missing title")
	}
	var wcsv, bcsv bytes.Buffer
	if err := res.WriteCSV(&wcsv, &bcsv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(wcsv.String(), "time_s") || !strings.Contains(bcsv.String(), "bandwidth_Bps") {
		t.Fatal("CSV headers missing")
	}
	if _, err := Fig2(0, 1); err == nil {
		t.Fatal("zero duration accepted")
	}
}

func TestFig6Quick(t *testing.T) {
	res, err := Fig6(TestbedScenario(2), quickTrain())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Episodes) != 6 || len(res.Loss) != 6 || len(res.AvgCost) != 6 {
		t.Fatalf("episode series lengths wrong: %d", len(res.Episodes))
	}
	if res.Agent == nil {
		t.Fatal("no agent returned")
	}
	if res.ConvergedBy < 0 || res.ConvergedBy > 6 {
		t.Fatalf("ConvergedBy = %d", res.ConvergedBy)
	}
	var out bytes.Buffer
	if err := res.Render(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "episode") {
		t.Fatalf("render output:\n%s", out.String())
	}
	var csv bytes.Buffer
	if err := res.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "avg_cost") {
		t.Fatal("CSV missing series")
	}
}

func TestConvergenceEpisode(t *testing.T) {
	// Series that drops then flattens converges at the flat region.
	xs := make([]float64, 100)
	for i := range xs {
		if i < 40 {
			xs[i] = 100 - float64(i)*2
		} else {
			xs[i] = 20
		}
	}
	ep := convergenceEpisode(xs, 5, 0.05)
	if ep < 35 || ep > 50 {
		t.Fatalf("convergence at %d", ep)
	}
	if convergenceEpisode(nil, 5, 0.05) != 0 {
		t.Fatal("empty series")
	}
	// Constant series converges immediately.
	if ep := convergenceEpisode([]float64{5, 5, 5}, 2, 0.05); ep != 0 {
		t.Fatalf("constant converges at %d", ep)
	}
}

func TestFig7AndFig8Quick(t *testing.T) {
	sc := TestbedScenario(3)
	res6, err := Fig6(sc, quickTrain())
	if err != nil {
		t.Fatal(err)
	}
	f7, err := Fig7(sc, res6.Agent, quickCompare())
	if err != nil {
		t.Fatal(err)
	}
	// DRL, heuristic, static rows present with pooled samples.
	for _, name := range []string{"drl", "heuristic", "static"} {
		s, ok := f7.Summary(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		if len(s.Costs) != 15*2 {
			t.Fatalf("%s pooled %d samples", name, len(s.Costs))
		}
		if s.MeanCost <= 0 || s.P80Cost < s.MeanCost*0.2 {
			t.Fatalf("%s stats implausible: %+v", name, s)
		}
	}
	var out bytes.Buffer
	if err := f7.Render(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "vs drl") {
		t.Fatal("render missing comparison column")
	}
	var cdf bytes.Buffer
	if err := f7.WriteCDFCSV(&cdf, "cost", 20); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cdf.String(), "drl_F") {
		t.Fatal("CDF CSV missing columns")
	}
	if err := f7.WriteCDFCSV(&cdf, "nope", 20); err == nil {
		t.Fatal("unknown metric accepted")
	}

	// Fig 8 on a small fleet for speed.
	sc8 := SimulationScenario(5, 4)
	agent8, _, err := TrainAgent(mustBuild(t, sc8), TrainOptions{Episodes: 4, Hidden: []int{8}, Arch: core.ArchShared, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	f8, err := Fig8(sc8, agent8, quickCompare())
	if err != nil {
		t.Fatal(err)
	}
	if len(f8.FirstRunCosts["drl"]) != 15 {
		t.Fatalf("cost series %d", len(f8.FirstRunCosts["drl"]))
	}
	out.Reset()
	if err := f8.Render(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "per-iteration system cost") {
		t.Fatal("fig8 render missing curves")
	}
	var series bytes.Buffer
	if err := f8.WriteCostSeriesCSV(&series); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(series.String(), "iteration") {
		t.Fatal("cost series CSV missing header")
	}
}

func mustBuild(t *testing.T, sc Scenario) *fl.System {
	t.Helper()
	sys, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestCompareValidation(t *testing.T) {
	sc := TestbedScenario(5)
	res6, err := Fig6(sc, quickTrain())
	if err != nil {
		t.Fatal(err)
	}
	bad := quickCompare()
	bad.Iterations = 0
	if _, err := Compare("x", sc, res6.Agent, bad); err == nil {
		t.Fatal("zero iterations accepted")
	}
	bad = quickCompare()
	bad.StaticSamples = 0
	if _, err := Compare("x", sc, res6.Agent, bad); err == nil {
		t.Fatal("zero static samples accepted")
	}
}

func TestAblationStaticSamples(t *testing.T) {
	res, err := AblationStaticSamples(TestbedScenario(6), []int{1, 5}, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	var out bytes.Buffer
	if err := res.Render(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "samples=1") {
		t.Fatal("render missing labels")
	}
	if _, err := AblationStaticSamples(TestbedScenario(1), nil, 1, 10); err == nil {
		t.Fatal("empty sweep accepted")
	}
}

func TestAblationHistory(t *testing.T) {
	res, err := AblationHistory(TestbedScenario(7), []int{1, 3}, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0].Label != "H=1" {
		t.Fatalf("rows = %+v", res.Rows)
	}
	if _, err := AblationHistory(TestbedScenario(1), []int{-1}, 3, 8); err == nil {
		t.Fatal("negative history accepted")
	}
}

func TestAblationLambdaTradeoff(t *testing.T) {
	res, err := AblationLambda(TestbedScenario(8), []float64{0.1, 2}, 8, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Higher λ should push toward lower energy (the tradeoff direction),
	// allowing training noise some slack.
	if res.Rows[1].MeanEnergy > res.Rows[0].MeanEnergy*1.5 {
		t.Fatalf("λ=2 energy %v should not exceed λ=0.1 energy %v by 50%%",
			res.Rows[1].MeanEnergy, res.Rows[0].MeanEnergy)
	}
	if _, err := AblationLambda(TestbedScenario(1), []float64{-1}, 3, 5); err == nil {
		t.Fatal("negative lambda accepted")
	}
}

func TestAblationArch(t *testing.T) {
	res, err := AblationArch(SimulationScenario(4, 9), 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0].Label != "joint" || res.Rows[1].Label != "shared" {
		t.Fatalf("rows = %+v", res.Rows)
	}
}

func TestAblationBarrierAwareness(t *testing.T) {
	res, err := AblationBarrierAwareness(TestbedScenario(10), 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// The barrier-aware static must save energy over run-at-max.
	var maxE, awareE float64
	for _, r := range res.Rows {
		switch r.Label {
		case "maxfreq (no tradeoff)":
			maxE = r.MeanEnergy
		case "barrier-aware static":
			awareE = r.MeanEnergy
		}
	}
	if awareE >= maxE {
		t.Fatalf("barrier-aware energy %v ≥ maxfreq %v", awareE, maxE)
	}
	if _, err := AblationBarrierAwareness(TestbedScenario(1), 0); err == nil {
		t.Fatal("zero iterations accepted")
	}
}

func TestAblationSyncAsync(t *testing.T) {
	res, err := AblationSyncAsync(TestbedScenario(11), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Async (row 1) must not take longer than sync (row 0) to deliver the
	// same number of updates, and its per-update energy is no lower than
	// sync at the same frequencies.
	if res.Rows[1].MeanCost > res.Rows[0].MeanCost {
		t.Fatalf("async elapsed %v > sync %v", res.Rows[1].MeanCost, res.Rows[0].MeanCost)
	}
	if _, err := AblationSyncAsync(TestbedScenario(1), 0); err == nil {
		t.Fatal("zero iterations accepted")
	}
}

func TestAblationOptimizer(t *testing.T) {
	res, err := AblationOptimizer(TestbedScenario(12), 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if !strings.Contains(res.Rows[0].Label, "ppo") || !strings.Contains(res.Rows[1].Label, "a2c") {
		t.Fatalf("labels = %v, %v", res.Rows[0].Label, res.Rows[1].Label)
	}
	if _, err := AblationOptimizer(TestbedScenario(1), 0, 8); err == nil {
		t.Fatal("zero episodes accepted")
	}
}

func TestAblationSelection(t *testing.T) {
	res, err := AblationSelection(SimulationScenario(6, 13), 30, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Full participation rows must report all devices per round.
	if !strings.Contains(res.Rows[0].Label, "6.0 devices/round") {
		t.Fatalf("full participation label = %q", res.Rows[0].Label)
	}
	if _, err := AblationSelection(TestbedScenario(1), 0, 8, 1); err == nil {
		t.Fatal("zero deadline accepted")
	}
}
