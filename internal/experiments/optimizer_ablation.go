package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/stats"
)

// AblationOptimizer justifies the paper's §IV-C algorithm choice
// empirically: it trains one agent with PPO and one with vanilla A2C at the
// same sample budget and compares their converged online cost and their
// convergence speed (episodes to reach within 10% of the final level).
func AblationOptimizer(sc Scenario, episodes, iters int) (*AblationResult, error) {
	if episodes <= 0 || iters <= 0 {
		return nil, fmt.Errorf("experiments: invalid optimizer ablation parameters")
	}
	res := &AblationResult{Title: "Ablation — policy optimizer (PPO vs A2C, equal sample budget)"}
	for _, algo := range []core.Algo{core.AlgoPPO, core.AlgoA2C} {
		sys, err := sc.Build()
		if err != nil {
			return nil, err
		}
		cfg := core.DefaultConfig()
		cfg.Algo = algo
		cfg.Episodes = episodes
		cfg.Hidden = []int{32, 32}
		scale, err := core.CalibrateRewardScale(sys, 10)
		if err != nil {
			return nil, err
		}
		cfg.Env.RewardScale = scale
		tr, err := core.NewTrainer(sys, cfg)
		if err != nil {
			return nil, err
		}
		eps, err := tr.Run(nil)
		if err != nil {
			return nil, err
		}
		costs := make([]float64, len(eps))
		for i, e := range eps {
			costs[i] = e.AvgCost
		}
		settled := convergenceEpisode(costs, 20, 0.10)

		drl, err := tr.Agent().Scheduler()
		if err != nil {
			return nil, err
		}
		its, err := sched.Run(sys, drl, 0, iters)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, AblationRow{
			Label:      fmt.Sprintf("%s (settled by ep %d/%d)", algo, settled, episodes),
			MeanCost:   stats.Mean(sched.Costs(its)),
			MeanTime:   stats.Mean(sched.Durations(its)),
			MeanEnergy: stats.Mean(sched.ComputeEnergies(its)),
		})
	}
	return res, nil
}
