package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/report"
)

// Fig7 runs the testbed comparison of the paper's Fig. 7: the trained
// agent's online reasoning against Heuristic [3] and Static [4] on the
// 3-device system over 400 iterations, with cost/time/energy means and
// CDFs.
func Fig7(sc Scenario, agent *core.Agent, opts CompareOptions) (*CompareResult, error) {
	return Compare("Figure 7 — testbed comparison (N=3, λ=1)", sc, agent, opts)
}

// Fig8Result extends the comparison with the per-iteration cost curves the
// paper plots for the 50-device simulation.
type Fig8Result struct {
	*CompareResult
}

// Fig8 runs the scalability simulation of the paper's Fig. 8 (N devices,
// λ=0.1, five walking datasets).
func Fig8(sc Scenario, agent *core.Agent, opts CompareOptions) (*Fig8Result, error) {
	cr, err := Compare(fmt.Sprintf("Figure 8 — simulation (N=%d, λ=%g)", sc.N, sc.Lambda), sc, agent, opts)
	if err != nil {
		return nil, err
	}
	return &Fig8Result{CompareResult: cr}, nil
}

// Render prints the comparison table plus the per-iteration cost curves.
func (r *Fig8Result) Render(w io.Writer) error {
	if err := r.CompareResult.Render(w); err != nil {
		return err
	}
	tb := report.NewTable("per-iteration system cost (first run)", "scheduler", "curve")
	for _, s := range r.Summaries {
		if series, ok := r.FirstRunCosts[s.Name]; ok {
			tb.AddRow(s.Name, report.Sparkline(series, 48))
		}
	}
	return tb.Render(w)
}

// WriteCostSeriesCSV dumps iteration vs per-scheduler cost of the first run.
func (r *Fig8Result) WriteCostSeriesCSV(w io.Writer) error {
	n := 0
	for _, series := range r.FirstRunCosts {
		n = len(series)
		break
	}
	if n == 0 {
		return fmt.Errorf("experiments: no cost series recorded")
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i)
	}
	return report.WriteSeriesCSV(w, "iteration", x, r.FirstRunCosts)
}
