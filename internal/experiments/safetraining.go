package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/guard"
	"repro/internal/guard/chaos"
	"repro/internal/report"
)

// SafeTrainingOptions size the safe-training comparison: the same scenario
// trained twice (standard PPO and Lagrangian constrained PPO) and replayed
// through the chaos harness behind the same guard.
type SafeTrainingOptions struct {
	// Episodes of DRL training per arm.
	Episodes int
	// Iterations per chaos episode.
	Iterations int
	// Start is the wall-clock start time of every episode.
	Start float64
	// Seed drives training and the trace mutators (shared by both arms).
	Seed int64
	// CostLimit / TimeSlack / EnergyFrac parameterize the constrained arm
	// (see TrainOptions; zero values select the documented defaults).
	CostLimit  float64
	TimeSlack  float64
	EnergyFrac float64
	// Guard configures the serving pipeline of both guarded arms.
	Guard guard.Config
	// Fallback is the guard.ChainFromSpec spec ("" → heuristic,maxfreq).
	Fallback string
	// Workers bounds chaos-episode concurrency; output is identical at any
	// worker count.
	Workers int
}

// DefaultSafeTrainingOptions mirror the guard ablation's conservative
// serving profile with a zero-overshoot constraint target.
func DefaultSafeTrainingOptions() SafeTrainingOptions {
	return SafeTrainingOptions{
		Episodes:   300,
		Iterations: 40,
		Start:      65,
		Seed:       1,
		Guard: guard.Config{
			CostFactor: 1.0,
			TripAfter:  1,
			Probation:  20,
		},
	}
}

// SafeTrainingArm aggregates one training/serving combination across every
// chaos class.
type SafeTrainingArm struct {
	// Name identifies the arm ("unconstrained+guard", "constrained+guard",
	// "constrained (unguarded)").
	Name string
	// Cost is the summed episode cost across classes — guarded cost for
	// the guarded arms, the bare actor's cost for the unguarded arm
	// (failed classes excluded; see Failures).
	Cost float64
	// Trips is the summed breaker-trip count (0 by construction for the
	// unguarded arm: there is no breaker).
	Trips int
	// ActorServed / Decisions total the primary actor's share of decisions.
	ActorServed int
	Decisions   int
	// Failures counts chaos classes the arm could not finish (only the
	// unguarded arm can fail; guarded arms always complete).
	Failures int
}

// SafeTrainingRow is one chaos class's paired verdict.
type SafeTrainingRow struct {
	Class string
	// Unconstrained / Constrained are the guarded results of each arm.
	Unconstrained *chaos.Result
	Constrained   *chaos.Result
}

// SafeTrainingResult compares constraint-aware training against the
// runtime guard: does training-time safety reduce how often the
// serving-time safety net has to fire?
type SafeTrainingResult struct {
	Title string
	// DeadlineTarget / EnergyBudget are the calibrated constraint targets
	// of the constrained arm.
	DeadlineTarget float64
	EnergyBudget   float64
	Rows           []SafeTrainingRow
	// Unconstrained / Constrained / Unguarded are the three arms of the
	// comparison: standard PPO behind the guard, constrained PPO behind
	// the guard, and the constrained actor bare (ablating the guard).
	Unconstrained SafeTrainingArm
	Constrained   SafeTrainingArm
	Unguarded     SafeTrainingArm
}

// SafeTraining trains two agents on the same pristine scenario with the
// same seed — standard PPO and Lagrangian constrained PPO — then replays
// every chaos class through both behind an identical guard. The constrained
// actor's bare (unguarded) column rides along from the same runs, ablating
// the guard. Deterministic in (scenario, options) at any worker count.
func SafeTraining(sc Scenario, opts SafeTrainingOptions) (*SafeTrainingResult, error) {
	if opts.Episodes <= 0 || opts.Iterations <= 0 {
		return nil, fmt.Errorf("experiments: safe training episodes %d and iterations %d must be positive", opts.Episodes, opts.Iterations)
	}
	sys, err := sc.Build()
	if err != nil {
		return nil, err
	}
	base := TrainOptions{Episodes: opts.Episodes, Seed: opts.Seed}
	agentU, _, err := TrainAgent(sys, base)
	if err != nil {
		return nil, fmt.Errorf("experiments: unconstrained arm: %w", err)
	}
	conOpts := base
	conOpts.Constrained = true
	conOpts.CostLimit = opts.CostLimit
	conOpts.TimeSlack = opts.TimeSlack
	conOpts.EnergyFrac = opts.EnergyFrac
	agentC, _, err := TrainAgent(sys, conOpts)
	if err != nil {
		return nil, fmt.Errorf("experiments: constrained arm: %w", err)
	}

	copts := chaos.Options{
		Iters:    opts.Iterations,
		Start:    opts.Start,
		Seed:     opts.Seed,
		Guard:    opts.Guard,
		Fallback: opts.Fallback,
	}
	rowsU, err := chaos.RunAll(sys, agentU, chaos.Classes(), copts, opts.Workers)
	if err != nil {
		return nil, err
	}
	rowsC, err := chaos.RunAll(sys, agentC, chaos.Classes(), copts, opts.Workers)
	if err != nil {
		return nil, err
	}
	if len(rowsU) != len(rowsC) {
		return nil, fmt.Errorf("experiments: arm class counts diverge: %d vs %d", len(rowsU), len(rowsC))
	}

	res := &SafeTrainingResult{
		Title:          fmt.Sprintf("Safe training — constrained PPO vs runtime guard (N=%d, %d iterations)", sys.N(), opts.Iterations),
		DeadlineTarget: agentC.EnvCfg.DeadlineTarget,
		EnergyBudget:   agentC.EnvCfg.EnergyBudget,
		Unconstrained:  SafeTrainingArm{Name: "unconstrained+guard"},
		Constrained:    SafeTrainingArm{Name: "constrained+guard"},
		Unguarded:      SafeTrainingArm{Name: "constrained (unguarded)"},
	}
	for i := range rowsU {
		res.Rows = append(res.Rows, SafeTrainingRow{
			Class:         rowsU[i].Class,
			Unconstrained: rowsU[i],
			Constrained:   rowsC[i],
		})
		accumulateArm(&res.Unconstrained, rowsU[i])
		accumulateArm(&res.Constrained, rowsC[i])
		if rowsC[i].UnguardedErr != "" || math.IsNaN(rowsC[i].UnguardedCost) {
			res.Unguarded.Failures++
		} else {
			res.Unguarded.Cost += rowsC[i].UnguardedCost
			res.Unguarded.ActorServed += rowsC[i].Decisions
			res.Unguarded.Decisions += rowsC[i].Decisions
		}
	}
	return res, nil
}

func accumulateArm(arm *SafeTrainingArm, r *chaos.Result) {
	arm.Cost += r.GuardedCost
	arm.Trips += r.Trips
	arm.ActorServed += r.ActorServed
	arm.Decisions += r.Decisions
}

// Check verifies the experiment's acceptance claim: training-time safety
// must reduce runtime guard interventions without giving up cost —
// constrained+guard trips the breaker strictly fewer times than
// unconstrained+guard at equal-or-better total guarded cost.
func (r *SafeTrainingResult) Check() error {
	c, u := r.Constrained, r.Unconstrained
	if c.Trips >= u.Trips {
		return fmt.Errorf("experiments: constrained arm tripped %d times, unconstrained %d — want strictly fewer", c.Trips, u.Trips)
	}
	if !(c.Cost <= u.Cost) {
		return fmt.Errorf("experiments: constrained arm cost %.3f exceeds unconstrained %.3f", c.Cost, u.Cost)
	}
	return nil
}

// Render prints the per-class pairing and the three-arm summary.
func (r *SafeTrainingResult) Render(w io.Writer) error {
	tb := report.NewTable(r.Title,
		"class", "uncon cost", "uncon trips", "con cost", "con trips", "con unguarded")
	for _, row := range r.Rows {
		ug := "failed"
		if row.Constrained.UnguardedErr == "" && !math.IsNaN(row.Constrained.UnguardedCost) {
			ug = fmt.Sprintf("%.1f", row.Constrained.UnguardedCost)
		}
		tb.AddRowf(row.Class,
			row.Unconstrained.GuardedCost, row.Unconstrained.Trips,
			row.Constrained.GuardedCost, row.Constrained.Trips, ug)
	}
	if err := tb.Render(w); err != nil {
		return err
	}
	sum := report.NewTable(
		fmt.Sprintf("arm totals (deadline target %.3gs, energy budget %.3gJ)", r.DeadlineTarget, r.EnergyBudget),
		"arm", "cost", "trips", "actor served", "failed classes")
	for _, arm := range []SafeTrainingArm{r.Unconstrained, r.Constrained, r.Unguarded} {
		sum.AddRowf(arm.Name, arm.Cost, arm.Trips,
			fmt.Sprintf("%d/%d", arm.ActorServed, arm.Decisions), arm.Failures)
	}
	fmt.Fprintln(w)
	return sum.Render(w)
}

// WriteCSV dumps the per-class series of both guarded arms plus the
// unguarded column (failures as NaN).
func (r *SafeTrainingResult) WriteCSV(w io.Writer) error {
	x := make([]float64, len(r.Rows))
	series := map[string][]float64{}
	for i, row := range r.Rows {
		x[i] = float64(i)
		series["uncon_cost"] = append(series["uncon_cost"], row.Unconstrained.GuardedCost)
		series["uncon_trips"] = append(series["uncon_trips"], float64(row.Unconstrained.Trips))
		series["con_cost"] = append(series["con_cost"], row.Constrained.GuardedCost)
		series["con_trips"] = append(series["con_trips"], float64(row.Constrained.Trips))
		ug := math.NaN()
		if row.Constrained.UnguardedErr == "" {
			ug = row.Constrained.UnguardedCost
		}
		series["con_unguarded_cost"] = append(series["con_unguarded_cost"], ug)
	}
	return report.WriteSeriesCSV(w, "class_idx", x, series)
}
