package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/stats"
)

// Fig6Result holds the offline-training convergence data of the paper's
// Fig. 6: per-episode training loss (a) and average system cost (b).
type Fig6Result struct {
	// Episodes is the raw per-episode trainer output.
	Episodes []core.EpisodeStats
	// Loss and AvgCost are the extracted series.
	Loss, AvgCost []float64
	// ConvergedBy is the first episode from which the smoothed cost stays
	// within 10% of its final level (the paper observes ≈ 200).
	ConvergedBy int
	// Agent is the trained artifact, reused by Fig. 7.
	Agent *core.Agent
}

// Fig6 trains the DRL agent on the testbed scenario and extracts the
// convergence curves.
func Fig6(sc Scenario, opts TrainOptions) (*Fig6Result, error) {
	sys, err := sc.Build()
	if err != nil {
		return nil, err
	}
	agent, eps, err := TrainAgent(sys, opts)
	if err != nil {
		return nil, err
	}
	return NewFig6Result(eps, agent), nil
}

// NewFig6Result assembles the convergence-curve result from raw trainer
// output — used by Fig6 and by callers that drive the trainer themselves
// (e.g. cmd/fltrain's checkpoint/resume path).
func NewFig6Result(eps []core.EpisodeStats, agent *core.Agent) *Fig6Result {
	res := &Fig6Result{Episodes: eps, Agent: agent}
	for _, e := range eps {
		res.Loss = append(res.Loss, e.Loss)
		res.AvgCost = append(res.AvgCost, e.AvgCost)
	}
	res.ConvergedBy = convergenceEpisode(res.AvgCost, 20, 0.10)
	return res
}

// convergenceEpisode returns the first index from which the trailing
// moving average (window w) stays within tol of the final smoothed level,
// or len(xs) if it never settles.
func convergenceEpisode(xs []float64, w int, tol float64) int {
	if len(xs) == 0 {
		return 0
	}
	sm := stats.MovingAverage(xs, w)
	final := sm[len(sm)-1]
	if final == 0 {
		return len(xs)
	}
	for i := range sm {
		settled := true
		for j := i; j < len(sm); j++ {
			if diff := sm[j]/final - 1; diff > tol || diff < -tol {
				settled = false
				break
			}
		}
		if settled {
			return i
		}
	}
	return len(xs)
}

// Render prints the convergence summary and sparklines.
func (r *Fig6Result) Render(w io.Writer) error {
	tb := report.NewTable("Figure 6 — DRL training convergence",
		"series", "first", "last", "min", "curve")
	loss := stats.MovingAverage(r.Loss, 10)
	cost := stats.MovingAverage(r.AvgCost, 10)
	add := func(name string, ys []float64) {
		s := stats.Summarize(ys)
		tb.AddRowf(name, ys[0], ys[len(ys)-1], s.Min, report.Sparkline(ys, 48))
	}
	if len(loss) > 0 {
		add("training loss (a)", loss)
		add("avg system cost (b)", cost)
	}
	if err := tb.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "cost settled within 10%% of final level by episode %d of %d (paper: ≈200)\n",
		r.ConvergedBy, len(r.AvgCost))
	return err
}

// WriteCSV dumps episode vs loss/cost.
func (r *Fig6Result) WriteCSV(w io.Writer) error {
	x := make([]float64, len(r.Episodes))
	for i := range x {
		x[i] = float64(i)
	}
	return report.WriteSeriesCSV(w, "episode", x, map[string][]float64{
		"training_loss": r.Loss,
		"avg_cost":      r.AvgCost,
	})
}
