package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/core"
	"repro/internal/fl"
	"repro/internal/guard"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/stats"
)

// CompareOptions size an online-reasoning comparison run.
type CompareOptions struct {
	// Iterations per run (400 in Fig. 7).
	Iterations int
	// Runs repeats the evaluation from spread-out start times (and fresh
	// Static estimates) and pools the per-iteration samples; Static's cost
	// has high variance in its few-sample estimate, so single runs are
	// noisy.
	Runs int
	// StaticSamples is the per-device sample count of the Static
	// baseline's bandwidth estimate ("randomly select some bandwidth
	// data"); the paper's wording suggests very few.
	StaticSamples int
	// IncludeExtras adds the MaxFreq, Random and Oracle references that
	// the paper does not plot but that bound the comparison.
	IncludeExtras bool
	// Seed drives Static estimates and the Random scheduler.
	Seed int64
	// Guard, when non-nil, adds a "drl+guard" column: the same actor
	// wrapped in the internal/guard safety pipeline (guarded online
	// evaluation mode). Each run builds its own guard around its own
	// policy clone.
	Guard *guard.Config
	// GuardFallback is the guard.ChainFromSpec spec for the added column
	// ("" → heuristic,maxfreq).
	GuardFallback string
	// Workers bounds how many evaluation runs execute concurrently: 0
	// (the default) auto-sizes to min(NumCPU, Runs) — subject to the
	// package MaxWorkers cap — and 1 forces the serial path. Every run
	// gets its own scheduler instances (including a cloned DRL policy)
	// and results merge in run order, so the output is bit-identical at
	// any worker count.
	Workers int
	// ServeF32 serves the DRL columns (bare and guarded) through the
	// float32 fleet-batched actor backend instead of float64. Guard audit
	// lines record the active backend.
	ServeF32 bool
}

// DefaultCompareOptions match the paper's 400-iteration evaluation.
func DefaultCompareOptions() CompareOptions {
	return CompareOptions{Iterations: 400, Runs: 3, StaticSamples: 2, IncludeExtras: true, Seed: 1}
}

// SchedulerSummary aggregates one scheduler's pooled per-iteration metrics.
type SchedulerSummary struct {
	// Name of the scheduler.
	Name string
	// MeanCost/MeanTime/MeanEnergy are the bar heights of Fig. 7(a)–(c).
	MeanCost, MeanTime, MeanEnergy float64
	// P80Cost/P80Time are the 80th-percentile checkpoints the paper reads
	// off the CDFs of Fig. 7(d)–(e).
	P80Cost, P80Time float64
	// Costs, Times, Energies are the pooled per-iteration samples backing
	// the CDFs of Fig. 7(d)–(f).
	Costs, Times, Energies []float64
}

// CompareResult holds a full scheduler comparison (Figs. 7 and 8).
type CompareResult struct {
	// Title describes the scenario.
	Title string
	// Summaries holds one row per scheduler, DRL first.
	Summaries []SchedulerSummary
	// FirstRunCosts maps scheduler name to its per-iteration cost series
	// of the first run (the Fig. 8 "cost in each iteration" curves).
	FirstRunCosts map[string][]float64
	// GuardAudit is the first run's guard decision audit (nil unless
	// CompareOptions.Guard was set).
	GuardAudit *guard.Audit
	// Iterations and Runs echo the options.
	Iterations, Runs int
}

// Compare evaluates the trained agent against the paper's baselines on the
// scenario's system.
func Compare(title string, sc Scenario, agent *core.Agent, opts CompareOptions) (*CompareResult, error) {
	if opts.Iterations <= 0 || opts.Runs <= 0 {
		return nil, fmt.Errorf("experiments: iterations %d and runs %d must be positive", opts.Iterations, opts.Runs)
	}
	if opts.StaticSamples <= 0 {
		return nil, fmt.Errorf("experiments: static samples %d must be positive", opts.StaticSamples)
	}
	if agent == nil || agent.Policy == nil {
		return nil, fmt.Errorf("experiments: nil agent")
	}
	sys, err := sc.Build()
	if err != nil {
		return nil, err
	}
	res := &CompareResult{
		Title:         title,
		FirstRunCosts: map[string][]float64{},
		Iterations:    opts.Iterations,
		Runs:          opts.Runs,
	}
	pooled := map[string]*SchedulerSummary{}
	order := []string{}
	record := func(name string, its []fl.IterationStats, firstRun bool) {
		s, ok := pooled[name]
		if !ok {
			s = &SchedulerSummary{Name: name}
			pooled[name] = s
			order = append(order, name)
		}
		s.Costs = append(s.Costs, sched.Costs(its)...)
		s.Times = append(s.Times, sched.Durations(its)...)
		s.Energies = append(s.Energies, sched.ComputeEnergies(its)...)
		if firstRun {
			res.FirstRunCosts[name] = sched.Costs(its)
		}
	}

	// Spread deterministic start times across the trace cycle. Runs are
	// independent — every scheduler below is constructed per run from the
	// run's own seeded RNG, and the DRL scheduler samples a cloned policy
	// because network forward passes mutate scratch caches — so they fan
	// out across the worker pool and merge in run order, bit-identical to
	// the serial loop.
	maxStart := sys.Traces[0].Duration()
	evals := make([][]core.EvalResult, opts.Runs)
	audits := make([]*guard.Audit, opts.Runs)
	err = RunJobs(opts.Runs, opts.Workers, func(run int) error {
		start := maxStart * float64(run) / float64(opts.Runs)
		rng := rand.New(rand.NewSource(opts.Seed + int64(run)*7919))

		isolated := &core.Agent{Policy: agent.Policy.ClonePolicy(), Critic: agent.Critic, EnvCfg: agent.EnvCfg, Norm: agent.Norm, ServeF32: opts.ServeF32}
		drl, err := isolated.Scheduler()
		if err != nil {
			return err
		}
		schedulers := []sched.Scheduler{drl}
		if opts.Guard != nil {
			// A second policy clone: the guarded and bare columns must not
			// share forward-pass scratch buffers.
			giso := &core.Agent{Policy: agent.Policy.ClonePolicy(), Critic: agent.Critic, EnvCfg: agent.EnvCfg, Norm: agent.Norm, ServeF32: opts.ServeF32}
			g, err := giso.GuardedScheduler(sys, *opts.Guard, opts.GuardFallback)
			if err != nil {
				return err
			}
			schedulers = append(schedulers, g)
			audits[run] = g.Audit()
		}
		initBW := make([]float64, sys.N())
		for i, tr := range sys.Traces {
			// The heuristic's pre-observation estimate: the trace's overall
			// mean, the natural "no information yet" prior.
			initBW[i] = tr.Summary().Mean
		}
		h, err := sched.NewHeuristic(initBW, 0.05)
		if err != nil {
			return err
		}
		// The faithful Static [4]: barrier-unaware per-device optimum held
		// fixed for the whole run (the 2019 baseline predates the paper's
		// barrier-slack insight).
		st, err := sched.NewStaticDecoupled(sys, 0.05)
		if err != nil {
			return err
		}
		schedulers = append(schedulers, h, st)
		if opts.IncludeExtras {
			// A charitable Static variant: barrier-aware plan from a few
			// random per-device bandwidth samples (§V-A wording).
			ss, err := sched.NewStaticSampled(sys, opts.StaticSamples, 0.05, rng)
			if err != nil {
				return err
			}
			rd, err := sched.NewRandom(0.05, rng)
			if err != nil {
				return err
			}
			or, err := sched.NewOracle(0.05, 60)
			if err != nil {
				return err
			}
			schedulers = append(schedulers, &named{ss, "static-sampled"}, sched.MaxFreq{}, rd, or)
		}
		results, err := core.Evaluate(sys, schedulers, start, opts.Iterations)
		if err != nil {
			return err
		}
		evals[run] = results
		return nil
	})
	if err != nil {
		return nil, err
	}
	for run, results := range evals {
		for _, r := range results {
			record(r.Name, r.Iterations, run == 0)
		}
	}
	res.GuardAudit = audits[0]

	for _, name := range order {
		s := pooled[name]
		s.MeanCost = stats.Mean(s.Costs)
		s.MeanTime = stats.Mean(s.Times)
		s.MeanEnergy = stats.Mean(s.Energies)
		s.P80Cost = stats.Percentile(s.Costs, 80)
		s.P80Time = stats.Percentile(s.Times, 80)
		res.Summaries = append(res.Summaries, *s)
	}
	return res, nil
}

// named relabels a scheduler so two variants of the same type can appear
// in one comparison.
type named struct {
	sched.Scheduler
	name string
}

// Name implements sched.Scheduler.
func (n *named) Name() string { return n.name }

// Summary returns the named scheduler's row.
func (r *CompareResult) Summary(name string) (SchedulerSummary, bool) {
	for _, s := range r.Summaries {
		if s.Name == name {
			return s, true
		}
	}
	return SchedulerSummary{}, false
}

// Render prints the comparison table with the paper's headline ratios and a
// bootstrap 95% confidence interval on each scheduler's mean-cost gap to
// DRL (positive interval ⇒ statistically worse than DRL).
func (r *CompareResult) Render(w io.Writer) error {
	tb := report.NewTable(r.Title,
		"scheduler", "mean cost", "vs drl", "Δcost 95% CI", "mean time", "mean energy", "P80 cost", "P80 time")
	base := 0.0
	var drlCosts []float64
	if d, ok := r.Summary("drl"); ok {
		base = d.MeanCost
		drlCosts = d.Costs
	}
	for _, s := range r.Summaries {
		rel, ci := "—", "—"
		if base > 0 {
			rel = fmt.Sprintf("%+.1f%%", 100*(s.MeanCost/base-1))
			if s.Name != "drl" && len(drlCosts) > 0 && len(s.Costs) > 0 {
				d := stats.MeanDiffCI(s.Costs, drlCosts, 400, 0.95, 11)
				ci = fmt.Sprintf("[%+.2f, %+.2f]", d.Lo, d.Hi)
			}
		}
		tb.AddRowf(s.Name, s.MeanCost, rel, ci, s.MeanTime, s.MeanEnergy, s.P80Cost, s.P80Time)
	}
	return tb.Render(w)
}

// WriteCDFCSV dumps the pooled cost/time/energy CDF curves (Fig. 7(d)–(f))
// for every scheduler: columns are <scheduler>_x and <scheduler>_F.
func (r *CompareResult) WriteCDFCSV(w io.Writer, metric string, points int) error {
	series := map[string][]float64{}
	var x []float64
	for _, s := range r.Summaries {
		var data []float64
		switch metric {
		case "cost":
			data = s.Costs
		case "time":
			data = s.Times
		case "energy":
			data = s.Energies
		default:
			return fmt.Errorf("experiments: unknown CDF metric %q", metric)
		}
		xs, fs := stats.NewCDF(data).Points(points)
		if x == nil {
			x = make([]float64, len(xs))
			for i := range x {
				x[i] = float64(i)
			}
		}
		series[s.Name+"_x"] = xs
		series[s.Name+"_F"] = fs
	}
	return report.WriteSeriesCSV(w, "idx", x, series)
}
