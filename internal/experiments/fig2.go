package experiments

import (
	"fmt"
	"io"

	"repro/internal/bandwidth"
	"repro/internal/report"
	"repro/internal/trace"
)

// Fig2Result holds the bandwidth-dynamics traces of the paper's Fig. 2:
// (a) three 4G walking traces over 400 s, (b) an HSDPA bus trace.
type Fig2Result struct {
	// Walking holds the three 4G traces of Fig. 2(a).
	Walking []*trace.Trace
	// Bus holds the HSDPA trace of Fig. 2(b).
	Bus *trace.Trace
}

// Fig2 generates the trace set of Fig. 2. durationSec is 400 in the paper.
func Fig2(durationSec float64, seed int64) (*Fig2Result, error) {
	if durationSec <= 0 {
		return nil, fmt.Errorf("experiments: Fig2 duration %v must be positive", durationSec)
	}
	res := &Fig2Result{}
	p := bandwidth.Walking4G()
	for i := 0; i < 3; i++ {
		tr, err := p.Generate(fmt.Sprintf("walking-4g-%d", i+1), durationSec, seed+int64(i)*977)
		if err != nil {
			return nil, err
		}
		res.Walking = append(res.Walking, tr)
	}
	bus, err := bandwidth.BusHSDPA().Generate("bus-hsdpa", durationSec, seed+4441)
	if err != nil {
		return nil, err
	}
	res.Bus = bus
	return res, nil
}

// Render prints per-trace statistics and sparklines.
func (r *Fig2Result) Render(w io.Writer) error {
	tb := report.NewTable("Figure 2 — bandwidth dynamics (synthetic stand-in for [26]/[12])",
		"trace", "min", "max", "mean", "dynamics")
	all := append(append([]*trace.Trace(nil), r.Walking...), r.Bus)
	for _, tr := range all {
		s := tr.Summary()
		tb.AddRow(tr.Name,
			report.FormatSI(s.Min, "B/s"),
			report.FormatSI(s.Max, "B/s"),
			report.FormatSI(s.Mean, "B/s"),
			report.Sparkline(tr.Samples, 48))
	}
	return tb.Render(w)
}

// WriteCSV dumps the Fig. 2(a) series (time vs the three walking traces)
// and the bus trace to two CSV streams.
func (r *Fig2Result) WriteCSV(walking, bus io.Writer) error {
	if len(r.Walking) == 0 {
		return fmt.Errorf("experiments: empty Fig2 result")
	}
	n := len(r.Walking[0].Samples)
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i) * r.Walking[0].Interval
	}
	series := map[string][]float64{}
	for _, tr := range r.Walking {
		if len(tr.Samples) != n {
			return fmt.Errorf("experiments: walking traces have unequal lengths")
		}
		series[tr.Name] = tr.Samples
	}
	if err := report.WriteSeriesCSV(walking, "time_s", x, series); err != nil {
		return err
	}
	return r.Bus.WriteCSV(bus)
}
