// Package optimizer provides small deterministic 1-D minimizers. The
// baseline schedulers (Heuristic [3], Static [4] and the Oracle) reduce the
// known-bandwidth frequency-allocation problem to a single-variable convex
// minimization over the iteration deadline T, which these routines solve.
package optimizer

import (
	"fmt"
	"math"
)

// invPhi is 1/φ, the golden-section step ratio.
var invPhi = (math.Sqrt(5) - 1) / 2

// GoldenSection minimizes a unimodal function f over [lo, hi] to within tol
// of the optimal argument, and returns the argmin and the minimum value.
// It panics on an invalid bracket or non-positive tolerance.
func GoldenSection(f func(float64) float64, lo, hi, tol float64) (x, fx float64) {
	if !(lo <= hi) {
		panic(fmt.Sprintf("optimizer: invalid bracket [%v, %v]", lo, hi))
	}
	if tol <= 0 {
		panic(fmt.Sprintf("optimizer: non-positive tolerance %v", tol))
	}
	if hi-lo <= tol {
		mid := (lo + hi) / 2
		return mid, f(mid)
	}
	a, b := lo, hi
	c := b - (b-a)*invPhi
	d := a + (b-a)*invPhi
	fc, fd := f(c), f(d)
	// Bounded iteration count: the bracket shrinks by 1/φ each step.
	maxIter := int(math.Ceil(math.Log(tol/(hi-lo))/math.Log(invPhi))) + 2
	for i := 0; i < maxIter && b-a > tol; i++ {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - (b-a)*invPhi
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + (b-a)*invPhi
			fd = f(d)
		}
	}
	x = (a + b) / 2
	return x, f(x)
}

// GridMin evaluates f at n+1 evenly spaced points on [lo, hi] and returns
// the best point. It is the brute-force reference for GoldenSection and the
// fallback for non-unimodal objectives. It panics on an invalid bracket or
// n < 1.
func GridMin(f func(float64) float64, lo, hi float64, n int) (x, fx float64) {
	if !(lo <= hi) {
		panic(fmt.Sprintf("optimizer: invalid bracket [%v, %v]", lo, hi))
	}
	if n < 1 {
		panic(fmt.Sprintf("optimizer: grid size %d < 1", n))
	}
	x, fx = lo, f(lo)
	for i := 1; i <= n; i++ {
		xi := lo + (hi-lo)*float64(i)/float64(n)
		if fi := f(xi); fi < fx {
			x, fx = xi, fi
		}
	}
	return x, fx
}

// Refined runs GridMin to localize a minimum of a possibly multimodal
// function, then polishes it with GoldenSection on the surrounding cell.
func Refined(f func(float64) float64, lo, hi float64, n int, tol float64) (x, fx float64) {
	gx, _ := GridMin(f, lo, hi, n)
	cell := (hi - lo) / float64(n)
	a := math.Max(lo, gx-cell)
	b := math.Min(hi, gx+cell)
	return GoldenSection(f, a, b, tol)
}
