package optimizer

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGoldenSectionQuadratic(t *testing.T) {
	f := func(x float64) float64 { return (x - 3) * (x - 3) }
	x, fx := GoldenSection(f, -10, 10, 1e-8)
	if math.Abs(x-3) > 1e-6 || fx > 1e-10 {
		t.Fatalf("x=%v fx=%v", x, fx)
	}
}

func TestGoldenSectionBoundaryMin(t *testing.T) {
	// Monotone increasing: minimum at the left edge.
	f := func(x float64) float64 { return x }
	x, _ := GoldenSection(f, 2, 9, 1e-8)
	if math.Abs(x-2) > 1e-6 {
		t.Fatalf("left-edge min at %v", x)
	}
	// Monotone decreasing: minimum at the right edge.
	g := func(x float64) float64 { return -x }
	x, _ = GoldenSection(g, 2, 9, 1e-8)
	if math.Abs(x-9) > 1e-6 {
		t.Fatalf("right-edge min at %v", x)
	}
}

func TestGoldenSectionTightBracket(t *testing.T) {
	f := func(x float64) float64 { return x * x }
	x, fx := GoldenSection(f, 1, 1+1e-12, 1e-6)
	if math.Abs(x-1) > 1e-9 || math.Abs(fx-1) > 1e-9 {
		t.Fatalf("degenerate bracket: x=%v fx=%v", x, fx)
	}
}

func TestGoldenSectionPanics(t *testing.T) {
	f := func(x float64) float64 { return x }
	for name, call := range map[string]func(){
		"inverted bracket": func() { GoldenSection(f, 5, 1, 1e-6) },
		"bad tol":          func() { GoldenSection(f, 0, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			call()
		}()
	}
}

func TestGridMinKnown(t *testing.T) {
	f := func(x float64) float64 { return math.Abs(x - 0.5) }
	x, fx := GridMin(f, 0, 1, 10)
	if math.Abs(x-0.5) > 1e-12 || fx != 0 {
		t.Fatalf("x=%v fx=%v", x, fx)
	}
}

func TestGridMinPanics(t *testing.T) {
	f := func(x float64) float64 { return x }
	for name, call := range map[string]func(){
		"inverted": func() { GridMin(f, 1, 0, 5) },
		"n<1":      func() { GridMin(f, 0, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			call()
		}()
	}
}

func TestGoldenMatchesGridProperty(t *testing.T) {
	// On random convex quadratics the two methods agree.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := 0.1 + rng.Float64()*5
		c := rng.Float64()*10 - 5
		obj := func(x float64) float64 { return a*(x-c)*(x-c) + 1 }
		gx, _ := GoldenSection(obj, -10, 10, 1e-9)
		dx, _ := GridMin(obj, -10, 10, 20000)
		return math.Abs(gx-dx) < 1e-2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRefinedMultimodal(t *testing.T) {
	// Two local minima; the global one is at x = 4.
	f := func(x float64) float64 {
		return math.Min((x-1)*(x-1)+0.5, (x-4)*(x-4))
	}
	x, fx := Refined(f, -2, 8, 100, 1e-9)
	if math.Abs(x-4) > 1e-4 || fx > 1e-6 {
		t.Fatalf("x=%v fx=%v", x, fx)
	}
}

func TestRefinedEdges(t *testing.T) {
	// Global min at the domain edge survives refinement clamping.
	f := func(x float64) float64 { return x }
	x, _ := Refined(f, 3, 7, 13, 1e-9)
	if math.Abs(x-3) > 1e-4 {
		t.Fatalf("edge min at %v", x)
	}
}
