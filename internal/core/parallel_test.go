package core

import (
	"testing"

	"repro/internal/nn"
)

// runWithWorkers trains a fresh trainer on an identical system/config pair
// with the given worker count and returns the episode stats plus the final
// actor/critic parameters.
func runWithWorkers(t *testing.T, workers int, mut func(*Config)) ([]EpisodeStats, []nn.Param, []nn.Param) {
	t.Helper()
	sys := testbedSystem(2, 7)
	cfg := fastConfig()
	cfg.Episodes = 10 // more than one wave (waveSize 8)
	cfg.Workers = workers
	if mut != nil {
		mut(&cfg)
	}
	tr, err := NewTrainer(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eps, err := tr.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	return eps, tr.actor.Params(), tr.critic.Params()
}

// TestParallelRolloutDeterminism is the merge-ordering contract of the
// rollout pool: under the same seed the training run must be bit-identical
// at any worker count, including worker counts above the episode count
// (which are clamped). Table-driven over worker counts and configuration
// variants that exercise the normalizer replay and the shared actor.
func TestParallelRolloutDeterminism(t *testing.T) {
	variants := map[string]func(*Config){
		"joint":  nil,
		"norm":   func(c *Config) { c.NormalizeObs = true },
		"shared": func(c *Config) { c.Arch = ArchShared },
	}
	for name, mut := range variants {
		t.Run(name, func(t *testing.T) {
			refStats, refActor, refCritic := runWithWorkers(t, 1, mut)
			for _, workers := range []int{2, 4, 64} {
				stats, actor, critic := runWithWorkers(t, workers, mut)
				if len(stats) != len(refStats) {
					t.Fatalf("workers=%d: %d episodes, want %d", workers, len(stats), len(refStats))
				}
				for i := range stats {
					if stats[i] != refStats[i] {
						t.Fatalf("workers=%d episode %d stats diverge:\n%+v\n%+v",
							workers, i, stats[i], refStats[i])
					}
				}
				compareParamsBits(t, workers, "actor", actor, refActor)
				compareParamsBits(t, workers, "critic", critic, refCritic)
			}
		})
	}
}

func compareParamsBits(t *testing.T, workers int, label string, got, want []nn.Param) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("workers=%d %s: param count %d vs %d", workers, label, len(got), len(want))
	}
	for i := range got {
		for j := range got[i].W {
			if got[i].W[j] != want[i].W[j] {
				t.Fatalf("workers=%d %s %s[%d]: %v != %v",
					workers, label, got[i].Name, j, got[i].W[j], want[i].W[j])
			}
		}
	}
}

// TestParallelRolloutProgressOrder checks that the progress callback sees
// episodes in index order even when they are collected concurrently.
func TestParallelRolloutProgressOrder(t *testing.T) {
	sys := testbedSystem(2, 3)
	cfg := fastConfig()
	cfg.Episodes = 9
	cfg.Workers = 4
	tr, err := NewTrainer(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	next := 0
	if _, err := tr.Run(func(st EpisodeStats) {
		if st.Episode != next {
			t.Fatalf("progress episode %d, want %d", st.Episode, next)
		}
		next++
	}); err != nil {
		t.Fatal(err)
	}
	if next != cfg.Episodes {
		t.Fatalf("progress saw %d episodes, want %d", next, cfg.Episodes)
	}
}

// TestWorkersValidation covers the new Config.Workers rules.
func TestWorkersValidation(t *testing.T) {
	c := DefaultConfig()
	c.Workers = -1
	if err := c.Validate(); err == nil {
		t.Fatal("negative workers accepted")
	}
	c.Workers = 4
	if err := c.Validate(); err != nil {
		t.Fatalf("workers=4 rejected: %v", err)
	}
}
