package core

import (
	"testing"

	"repro/internal/rl"
	"repro/internal/sched"
)

func TestSharedArchTrainerAndRoundTrip(t *testing.T) {
	sys := testbedSystem(4, 21)
	cfg := fastConfig()
	cfg.Arch = ArchShared
	cfg.Hidden = []int{8}
	tr, err := NewTrainer(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Run(nil); err != nil {
		t.Fatal(err)
	}
	agent := tr.Agent()
	if _, ok := agent.Policy.(*rl.SharedGaussianPolicy); !ok {
		t.Fatalf("expected shared policy, got %T", agent.Policy)
	}
	path := t.TempDir() + "/shared.gob"
	if err := agent.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadAgent(path)
	if err != nil {
		t.Fatal(err)
	}
	sp, ok := back.Policy.(*rl.SharedGaussianPolicy)
	if !ok {
		t.Fatalf("round trip lost the shared architecture: %T", back.Policy)
	}
	if sp.N != 4 {
		t.Fatalf("restored N = %d", sp.N)
	}
	// Decisions identical after the round trip.
	s1, err := agent.Scheduler()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := back.Scheduler()
	if err != nil {
		t.Fatal(err)
	}
	ctx := sched.Context{Sys: sys, Clock: 33}
	f1, err := s1.Frequencies(ctx)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := s2.Frequencies(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatal("restored shared agent decides differently")
		}
	}
}

func TestUnknownArchRejected(t *testing.T) {
	sys := testbedSystem(2, 22)
	cfg := fastConfig()
	cfg.Arch = Arch("transformer")
	if _, err := NewTrainer(sys, cfg); err == nil {
		t.Fatal("unknown architecture accepted")
	}
}

func TestCalibrateRewardScale(t *testing.T) {
	sys := testbedSystem(3, 23)
	scale, err := CalibrateRewardScale(sys, 5)
	if err != nil {
		t.Fatal(err)
	}
	if scale <= 0 {
		t.Fatalf("scale = %v", scale)
	}
	// The probe's mean cost must be within the range of plausible costs:
	// at λ=1 it is at least the fastest possible iteration duration.
	if scale < 1 {
		t.Fatalf("scale %v implausibly small", scale)
	}
	if _, err := CalibrateRewardScale(sys, 0); err == nil {
		t.Fatal("zero probe iterations accepted")
	}
}

func TestMarshalUnknownPolicyType(t *testing.T) {
	a := &Agent{Policy: fakePolicy{}, Critic: nil}
	if _, err := a.MarshalBinary(); err == nil {
		t.Fatal("unknown policy type accepted")
	}
}

// fakePolicy satisfies rl.Policy but is not serializable.
type fakePolicy struct{ rl.Policy }

func TestA2CTrainerRuns(t *testing.T) {
	sys := testbedSystem(2, 31)
	cfg := fastConfig()
	cfg.Algo = AlgoA2C
	tr, err := NewTrainer(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eps, err := tr.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if eps[len(eps)-1].Updates < 1 {
		t.Fatal("A2C trainer never updated")
	}
	// The trained agent still schedules feasibly.
	drl, err := tr.Agent().Scheduler()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sched.Run(sys, drl, 0, 5); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownAlgoRejected(t *testing.T) {
	sys := testbedSystem(2, 32)
	cfg := fastConfig()
	cfg.Algo = Algo("trpo")
	if _, err := NewTrainer(sys, cfg); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	// Invalid A2C config is caught when A2C is selected.
	cfg = fastConfig()
	cfg.Algo = AlgoA2C
	cfg.A2C.ActorLR = 0
	if _, err := NewTrainer(sys, cfg); err == nil {
		t.Fatal("invalid A2C config accepted")
	}
}

func TestNormalizedObsTrainingAndRoundTrip(t *testing.T) {
	sys := testbedSystem(3, 41)
	cfg := fastConfig()
	cfg.NormalizeObs = true
	tr, err := NewTrainer(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Run(nil); err != nil {
		t.Fatal(err)
	}
	agent := tr.Agent()
	if agent.Norm == nil {
		t.Fatal("agent lost its normalizer")
	}
	if agent.Norm.Count == 0 {
		t.Fatal("normalizer never updated")
	}
	path := t.TempDir() + "/norm.gob"
	if err := agent.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadAgent(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Norm == nil || back.Norm.Count != agent.Norm.Count {
		t.Fatal("normalizer lost in round trip")
	}
	// Decisions match exactly, and the normalizer actually matters: a
	// scheduler stripped of it decides differently.
	s1, err := agent.Scheduler()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := back.Scheduler()
	if err != nil {
		t.Fatal(err)
	}
	ctx := sched.Context{Sys: sys, Clock: 123}
	f1, err := s1.Frequencies(ctx)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := s2.Frequencies(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatal("normalized agent decides differently after reload")
		}
	}
	stripped, err := back.Scheduler()
	if err != nil {
		t.Fatal(err)
	}
	stripped.Norm = nil
	f3, err := stripped.Frequencies(ctx)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range f1 {
		if f1[i] != f3[i] {
			same = false
		}
	}
	if same {
		t.Fatal("normalizer has no effect on decisions")
	}
}
