// Package core is the library's public face: it wires the federated-
// learning simulator, the MDP environment and the PPO machinery into the
// paper's experience-driven controller. Trainer implements Algorithm 1
// (offline DRL training on replayed traces); Agent is the trained artifact
// that schedules CPU frequencies online; Evaluate reproduces the online-
// reasoning comparisons of §V.
package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/rand"
	"os"
	"sync/atomic"

	"repro/internal/env"
	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/rl"
	"repro/internal/sched"
)

// Config bundles every knob of an offline training run.
type Config struct {
	// Env parameterizes the MDP (state history H, slot width h, reward
	// scaling, episode length).
	Env env.Config
	// PPO holds the optimizer hyperparameters, including M (epochs per
	// buffer drain). Used when Algo is AlgoPPO (the paper's choice).
	PPO rl.PPOConfig
	// A2C holds the alternative optimizer's hyperparameters, used when
	// Algo is AlgoA2C (the §IV-C comparison point).
	A2C rl.A2CConfig
	// Algo selects the policy-optimization algorithm.
	Algo Algo
	// Hidden lists the hidden-layer widths of both actor and critic.
	Hidden []int
	// Arch selects the actor architecture: ArchJoint (the paper's single
	// network over the whole state) or ArchShared (one per-device network
	// with shared weights, which scales to large fleets like Fig. 8's
	// 50 devices).
	Arch Arch
	// InitStd is the policy's initial exploration standard deviation.
	InitStd float64
	// NormalizeObs standardizes states with running statistics that are
	// frozen into the saved agent. Off by default (the raw states are
	// already scaled by Env.BWScale).
	NormalizeObs bool
	// ObsClip bounds normalized features (used when NormalizeObs is set;
	// 0 keeps the 10.0 default).
	ObsClip float64
	// BufferSize is |D|, the experience replay buffer capacity of
	// Algorithm 1.
	BufferSize int
	// Episodes is the number of training episodes.
	Episodes int
	// Seed makes the whole run deterministic.
	Seed int64
	// Workers selects the rollout collection mode. 0 (the default) runs
	// the exact sequential loop of Algorithm 1, bit-identical to earlier
	// versions. w ≥ 1 collects episodes in fixed-size waves across w
	// goroutines with per-episode seeded RNGs and wave-snapshot sampling
	// parameters; the result is deterministic and independent of w (so
	// Workers=1 and Workers=8 produce identical runs), but not identical
	// to the sequential mode because sampling lags the optimizer by up to
	// one wave. Negative values fail Validate; values above Episodes are
	// clamped.
	Workers int
	// TrainWorkers caps the goroutines of the data-parallel gradient engine
	// inside each PPO/A2C update (distinct from Workers, which parallelizes
	// rollout collection). The engine is bit-identical at any setting — fixed
	// 16-row gradient blocks merged by a worker-count-independent reduction
	// tree — so this only changes update wall-clock time. 0 or 1 runs the
	// update single-threaded. Overrides PPO.Workers/A2C.Workers when set.
	TrainWorkers int
	// Checkpoint, when non-empty, makes Run write crash-safe training
	// snapshots to this path (atomically, via a temp file and rename) so an
	// interrupted run can resume bit-identically.
	Checkpoint string
	// CheckpointEvery is the number of episodes between periodic snapshots
	// (0 keeps the 25 default; only meaningful with Checkpoint set). In
	// parallel mode snapshots land on wave boundaries, the only points a
	// parallel run can resume from.
	CheckpointEvery int
}

// Algo names a policy-optimization algorithm.
type Algo string

// Supported algorithms.
const (
	// AlgoPPO is proximal policy optimization with clipping — the paper's
	// choice (§IV-C).
	AlgoPPO Algo = "ppo"
	// AlgoA2C is vanilla advantage actor-critic, the alternative the paper
	// weighs PPO against.
	AlgoA2C Algo = "a2c"
)

// Arch names an actor architecture.
type Arch string

// Supported actor architectures.
const (
	// ArchJoint is one MLP from the full state to all device actions.
	ArchJoint Arch = "joint"
	// ArchShared applies one per-device MLP (shared weights) to each
	// device's slice of the state.
	ArchShared Arch = "shared"
)

// DefaultConfig returns a configuration that converges on the paper's
// 3-device testbed scenario within the ~200 episodes of Fig. 6.
func DefaultConfig() Config {
	return Config{
		Env:        env.DefaultConfig(),
		PPO:        rl.DefaultPPOConfig(),
		A2C:        rl.DefaultA2CConfig(),
		Algo:       AlgoPPO,
		Hidden:     []int{64, 64},
		Arch:       ArchJoint,
		InitStd:    0.4,
		BufferSize: 256,
		Episodes:   300,
		Seed:       1,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Env.Validate(); err != nil {
		return err
	}
	switch c.Algo {
	case AlgoPPO:
		if err := c.PPO.Validate(); err != nil {
			return err
		}
	case AlgoA2C:
		if err := c.A2C.Validate(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("core: unknown algorithm %q", c.Algo)
	}
	if len(c.Hidden) == 0 {
		return fmt.Errorf("core: no hidden layers configured")
	}
	if c.Arch != ArchJoint && c.Arch != ArchShared {
		return fmt.Errorf("core: unknown architecture %q", c.Arch)
	}
	for _, h := range c.Hidden {
		if h <= 0 {
			return fmt.Errorf("core: hidden width %d must be positive", h)
		}
	}
	if c.InitStd <= 0 {
		return fmt.Errorf("core: initial std %v must be positive", c.InitStd)
	}
	if c.BufferSize <= 0 {
		return fmt.Errorf("core: buffer size %d must be positive", c.BufferSize)
	}
	if c.Episodes <= 0 {
		return fmt.Errorf("core: episodes %d must be positive", c.Episodes)
	}
	if c.Workers < 0 {
		return fmt.Errorf("core: workers %d must not be negative", c.Workers)
	}
	if c.TrainWorkers < 0 {
		return fmt.Errorf("core: train workers %d must not be negative", c.TrainWorkers)
	}
	if c.CheckpointEvery < 0 {
		return fmt.Errorf("core: checkpoint interval %d must not be negative", c.CheckpointEvery)
	}
	return nil
}

// Agent is a trained experience-driven controller: the actor network used
// for online reasoning plus the critic and the environment layout it was
// trained under.
type Agent struct {
	Policy rl.Policy
	Critic *nn.MLP
	EnvCfg env.Config
	// Norm carries the frozen observation statistics when the agent was
	// trained with NormalizeObs (nil otherwise).
	Norm *rl.ObsNormalizer
	// ServeF32 selects the float32 fleet-batched serving backend for
	// schedulers built from this agent. It is a transient serving
	// preference, deliberately excluded from the checkpoint wire format:
	// the same saved agent can serve either backend.
	ServeF32 bool
}

// Scheduler wraps the agent for the evaluation harness (deterministic mean
// action, as in §V-B2 online reasoning).
func (a *Agent) Scheduler() (*sched.DRL, error) {
	d, err := sched.NewDRL(a.Policy, a.EnvCfg)
	if err != nil {
		return nil, err
	}
	if a.Norm != nil {
		d.Norm = a.Norm.Clone()
	}
	d.F32 = a.ServeF32
	return d, nil
}

// agentWire is the gob wire format of an Agent.
type agentWire struct {
	Arch      string
	N         int
	PolicyNet []byte
	LogStd    []float64
	Critic    []byte
	EnvCfg    env.Config
	HasNorm   bool
	NormMean  []float64
	NormM2    []float64
	NormCount float64
	NormClip  float64
}

// MarshalBinary encodes the agent.
func (a *Agent) MarshalBinary() ([]byte, error) {
	w := agentWire{EnvCfg: a.EnvCfg}
	if a.Norm != nil {
		w.HasNorm = true
		w.NormMean = append([]float64(nil), a.Norm.Mean...)
		w.NormM2 = append([]float64(nil), a.Norm.M2...)
		w.NormCount = a.Norm.Count
		w.NormClip = a.Norm.Clip
	}
	switch p := a.Policy.(type) {
	case *rl.GaussianPolicy:
		w.Arch = string(ArchJoint)
		pn, err := p.Net.MarshalBinary()
		if err != nil {
			return nil, err
		}
		w.PolicyNet = pn
		w.LogStd = append([]float64(nil), p.LogStd...)
	case *rl.SharedGaussianPolicy:
		w.Arch = string(ArchShared)
		w.N = p.N
		pn, err := p.Net.MarshalBinary()
		if err != nil {
			return nil, err
		}
		w.PolicyNet = pn
		w.LogStd = append([]float64(nil), p.LogStd...)
	default:
		return nil, fmt.Errorf("core: cannot serialize policy type %T", a.Policy)
	}
	cr, err := a.Critic.MarshalBinary()
	if err != nil {
		return nil, err
	}
	w.Critic = cr
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, fmt.Errorf("core: encode agent: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary decodes an agent written by MarshalBinary.
func (a *Agent) UnmarshalBinary(data []byte) error {
	var w agentWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return fmt.Errorf("core: decode agent: %w", err)
	}
	var net nn.MLP
	if err := net.UnmarshalBinary(w.PolicyNet); err != nil {
		return err
	}
	var critic nn.MLP
	if err := critic.UnmarshalBinary(w.Critic); err != nil {
		return err
	}
	switch Arch(w.Arch) {
	case ArchJoint:
		if len(w.LogStd) != net.OutDim() {
			return fmt.Errorf("core: decode agent: logstd length %d vs action dim %d", len(w.LogStd), net.OutDim())
		}
		a.Policy = &rl.GaussianPolicy{
			Net:     &net,
			LogStd:  append([]float64(nil), w.LogStd...),
			GLogStd: make([]float64, len(w.LogStd)),
		}
	case ArchShared:
		if len(w.LogStd) != 1 || w.N <= 0 {
			return fmt.Errorf("core: decode agent: malformed shared policy (logstd %d, N %d)", len(w.LogStd), w.N)
		}
		a.Policy = &rl.SharedGaussianPolicy{
			Net:     &net,
			N:       w.N,
			LogStd:  append([]float64(nil), w.LogStd...),
			GLogStd: make([]float64, 1),
		}
	default:
		return fmt.Errorf("core: decode agent: unknown architecture %q", w.Arch)
	}
	a.Critic = &critic
	a.EnvCfg = w.EnvCfg
	if w.HasNorm {
		if len(w.NormMean) != net.InDim() && Arch(w.Arch) == ArchJoint {
			return fmt.Errorf("core: decode agent: normalizer dim %d vs state dim %d", len(w.NormMean), net.InDim())
		}
		if len(w.NormMean) == 0 || len(w.NormMean) != len(w.NormM2) {
			return fmt.Errorf("core: decode agent: malformed normalizer")
		}
		a.Norm = &rl.ObsNormalizer{
			Mean:  append([]float64(nil), w.NormMean...),
			M2:    append([]float64(nil), w.NormM2...),
			Count: w.NormCount,
			Clip:  w.NormClip,
		}
	} else {
		a.Norm = nil
	}
	return nil
}

// Save writes the agent to a file.
func (a *Agent) Save(path string) error {
	data, err := a.MarshalBinary()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("core: save agent: %w", err)
	}
	return nil
}

// LoadAgent reads an agent from a file.
func LoadAgent(path string) (*Agent, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: load agent: %w", err)
	}
	a := &Agent{}
	if err := a.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	return a, nil
}

// EpisodeStats summarizes one training episode for the Fig. 6 curves.
type EpisodeStats struct {
	// Episode is the 0-based episode index.
	Episode int
	// AvgCost is the mean per-iteration system cost within the episode
	// (Fig. 6(b)).
	AvgCost float64
	// AvgReward is the mean scaled reward.
	AvgReward float64
	// Loss is the combined PPO training loss of the most recent update
	// (Fig. 6(a)); it carries the last value forward between updates.
	Loss float64
	// Updates counts PPO updates that completed by the end of the episode.
	Updates int
}

// Trainer runs the offline DRL training of Algorithm 1 against a simulated
// federated-learning system built on replayed bandwidth traces.
type Trainer struct {
	Cfg Config
	Sys *fl.System

	environment *env.Env
	actor       rl.Policy
	critic      *nn.MLP
	algo        rl.Trainable
	actorOld    rl.Policy
	norm        *rl.ObsNormalizer
	buffer      *rl.Buffer
	batch       *rl.Batch // reused across buffer drains (see MakeBatchInto)
	rng         *rand.Rand
	src         *rl.CountingSource
	lastLoss    float64
	updates     int

	// Crash-safety state: the episodes completed so far (and their stats,
	// so a resumed Run returns the full series), the episode count at the
	// last snapshot, and the cooperative stop flag set by Stop().
	stats       []EpisodeStats
	nextEpisode int
	lastSaved   int
	stop        atomic.Bool
}

// NewTrainer initializes networks and environment (Algorithm 1 lines 1–4).
func NewTrainer(sys *fl.System, cfg Config) (*Trainer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	// A counting source produces the exact stream of rand.NewSource(Seed)
	// while letting checkpoints pin the generator's position.
	src := rl.NewCountingSource(cfg.Seed)
	rng := rand.New(src)
	environment, err := env.New(sys, cfg.Env, rng)
	if err != nil {
		return nil, err
	}
	var actor rl.Policy
	switch cfg.Arch {
	case ArchShared:
		actor = rl.NewSharedGaussianPolicy(environment.ActionDim(), cfg.Env.History+1, cfg.Hidden, cfg.InitStd, rng)
	default:
		actor = rl.NewGaussianPolicy(environment.StateDim(), environment.ActionDim(), cfg.Hidden, cfg.InitStd, rng)
	}
	criticSizes := append(append([]int{environment.StateDim()}, cfg.Hidden...), 1)
	critic := nn.NewMLP(criticSizes, nn.Tanh, nn.Identity, rng)
	// The cost critic is constructed right after the reward critic so the
	// constrained RNG stream is a deterministic function of the config alone;
	// unconstrained runs skip the draw and keep their exact historical stream.
	var costCritic *nn.MLP
	if cfg.Algo == AlgoPPO && cfg.PPO.Constraint.Enabled {
		costSizes := append(append([]int{environment.StateDim()}, cfg.Hidden...), rl.NumConstraints)
		costCritic = nn.NewMLP(costSizes, nn.Tanh, nn.Identity, rng)
	}
	if cfg.TrainWorkers > 0 {
		cfg.PPO.Workers = cfg.TrainWorkers
		cfg.A2C.Workers = cfg.TrainWorkers
	}
	var algo rl.Trainable
	switch cfg.Algo {
	case AlgoA2C:
		if cfg.PPO.Constraint.Enabled {
			return nil, fmt.Errorf("core: constrained training requires the PPO algorithm")
		}
		a2c, err := rl.NewA2C(cfg.A2C, actor, critic)
		if err != nil {
			return nil, err
		}
		algo = a2c
	default:
		var ppo *rl.PPO
		var err error
		if cfg.PPO.Constraint.Enabled {
			ppo, err = rl.NewConstrainedPPO(cfg.PPO, actor, critic, costCritic, rng)
		} else {
			ppo, err = rl.NewPPO(cfg.PPO, actor, critic, rng)
		}
		if err != nil {
			return nil, err
		}
		algo = ppo
	}
	var norm *rl.ObsNormalizer
	if cfg.NormalizeObs {
		clip := cfg.ObsClip
		if clip == 0 {
			clip = 10
		}
		norm = rl.NewObsNormalizer(environment.StateDim(), clip)
	}
	return &Trainer{
		Cfg:         cfg,
		Sys:         sys,
		environment: environment,
		actor:       actor,
		critic:      critic,
		algo:        algo,
		actorOld:    actor.ClonePolicy(), // θ_old ← θ (line 4)
		norm:        norm,
		buffer:      rl.NewBuffer(cfg.BufferSize),
		batch:       &rl.Batch{},
		rng:         rng,
		src:         src,
	}, nil
}

// Env exposes the training environment.
func (t *Trainer) Env() *env.Env { return t.environment }

// constrainedPPO returns the algorithm as a Lagrangian PPO, or nil when the
// trainer runs unconstrained (plain PPO or A2C).
func (t *Trainer) constrainedPPO() *rl.PPO {
	if p, ok := t.algo.(*rl.PPO); ok && p.Constrained() {
		return p
	}
	return nil
}

// Agent returns the current trained agent (sharing parameters with the
// trainer; Save before further training if isolation matters).
func (t *Trainer) Agent() *Agent {
	a := &Agent{Policy: t.actor, Critic: t.critic, EnvCfg: t.Cfg.Env}
	if t.norm != nil {
		a.Norm = t.norm.Clone()
	}
	return a
}

// RunEpisode executes one training episode (Algorithm 1 lines 6–24) and
// returns its statistics.
func (t *Trainer) RunEpisode(episode int) (EpisodeStats, error) {
	state, err := t.environment.Reset() // random start time + initial state
	if err != nil {
		return EpisodeStats{}, err
	}
	if t.norm != nil {
		t.norm.Update(state)
		state = t.norm.Normalize(state)
	}
	var costSum, rewardSum float64
	steps := 0
	cp := t.constrainedPPO()
	for {
		// Derive a_k from the sampling policy θ_old (line 12).
		action, logp := t.actorOld.Sample(state, t.rng)
		value := t.algo.Value(state)
		var costValue rl.CostVec
		if cp != nil {
			costValue = cp.CostValues(state)
		}
		// Capture s_k before StepInto overwrites the environment's state
		// scratch (the buffer retains the transition anyway, so this clone
		// is the unavoidable one).
		stored := state.Clone()
		res, err := t.environment.StepInto(action)
		if err != nil {
			return EpisodeStats{}, err
		}
		// Store (s_k, a_k, r_k, s_{k+1}) (line 16).
		t.buffer.Add(rl.Transition{
			State:     stored,
			Action:    action.Clone(),
			Reward:    res.Reward,
			LogProb:   logp,
			Value:     value,
			Done:      res.Done,
			Cost:      rl.CostVec(res.Costs),
			CostValue: costValue,
		})
		costSum += res.Iter.Cost
		rewardSum += res.Reward
		steps++
		state = res.State
		if t.norm != nil {
			t.norm.Update(state)
			state = t.norm.Normalize(state)
		}

		// Buffer full: update with M PPO epochs, sync θ_old, clear D
		// (lines 17–23).
		if t.buffer.Full() {
			lastValue := 0.0
			if !res.Done {
				lastValue = t.algo.Value(state)
			}
			gamma, lambda := t.Cfg.PPO.Gamma, t.Cfg.PPO.Lambda
			if t.Cfg.Algo == AlgoA2C {
				gamma, lambda = t.Cfg.A2C.Gamma, t.Cfg.A2C.Lambda
			}
			var batch *rl.Batch
			if cp != nil {
				var lastCost rl.CostVec
				if !res.Done {
					lastCost = cp.CostValues(state)
				}
				batch = rl.MakeConstrainedBatchInto(t.batch, t.buffer, lastValue, lastCost, gamma, lambda)
			} else {
				batch = rl.MakeBatchInto(t.batch, t.buffer, lastValue, gamma, lambda)
			}
			st, err := t.algo.Update(batch)
			if err != nil {
				return EpisodeStats{}, err
			}
			t.lastLoss = st.Loss(t.Cfg.PPO)
			t.updates++
			t.actorOld.CopyFrom(t.actor)
			t.buffer.Clear()
		}
		if res.Done {
			break
		}
	}
	return EpisodeStats{
		Episode:   episode,
		AvgCost:   costSum / float64(steps),
		AvgReward: rewardSum / float64(steps),
		Loss:      t.lastLoss,
		Updates:   t.updates,
	}, nil
}

// Stop asks a running Run to stop at the next episode (sequential mode) or
// wave (parallel mode) boundary. Run then returns the statistics collected
// so far with ErrInterrupted, leaving the trainer in a state SaveCheckpoint
// can snapshot. Safe to call from another goroutine (e.g. a signal handler).
func (t *Trainer) Stop() { t.stop.Store(true) }

// Run executes cfg.Episodes training episodes and returns the per-episode
// statistics (the data behind Fig. 6). The optional progress callback is
// invoked after every episode. With Cfg.Workers ≥ 1 episodes are collected
// by a parallel rollout pool (see Config.Workers for the determinism
// contract); otherwise the sequential loop below runs unchanged.
//
// On a trainer restored from a checkpoint, Run continues from the saved
// episode and returns the full series including the restored prefix (the
// progress callback only fires for newly run episodes). With Cfg.Checkpoint
// set, snapshots are written every Cfg.CheckpointEvery episodes.
func (t *Trainer) Run(progress func(EpisodeStats)) ([]EpisodeStats, error) {
	if t.Cfg.Workers >= 1 {
		return t.runParallel(progress)
	}
	for ep := t.nextEpisode; ep < t.Cfg.Episodes; ep++ {
		if t.stop.Load() {
			return t.statsCopy(), ErrInterrupted
		}
		st, err := t.RunEpisode(ep)
		if err != nil {
			return t.statsCopy(), fmt.Errorf("core: episode %d: %w", ep, err)
		}
		t.stats = append(t.stats, st)
		t.nextEpisode = ep + 1
		if progress != nil {
			progress(st)
		}
		if err := t.autoCheckpoint(); err != nil {
			return t.statsCopy(), err
		}
	}
	return t.statsCopy(), nil
}

func (t *Trainer) statsCopy() []EpisodeStats {
	return append([]EpisodeStats(nil), t.stats...)
}
