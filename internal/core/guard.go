package core

import (
	"repro/internal/fl"
	"repro/internal/guard"
	"repro/internal/sched"
)

// GuardedScheduler wraps the agent's online actor in the layered safety
// pipeline of internal/guard — the guarded online evaluation mode. The
// OOD reference comes from the agent's trained normalizer when it has
// one; otherwise it is probed deterministically from the system's traces
// (which, in production serving, are the training traces). fallback is a
// guard.ChainFromSpec spec ("" → heuristic,maxfreq).
func (a *Agent) GuardedScheduler(sys *fl.System, gcfg guard.Config, fallback string) (*guard.Guard, error) {
	drl, err := a.Scheduler()
	if err != nil {
		return nil, err
	}
	gcfg.Env = a.EnvCfg
	if gcfg.Ref == nil && gcfg.OODThreshold >= 0 {
		if a.Norm != nil {
			gcfg.Ref, err = guard.RefFromNormalizer(a.Norm)
		} else {
			gcfg.Ref, err = guard.ProbeReference(sys, a.EnvCfg, 256)
		}
		if err != nil {
			return nil, err
		}
	}
	chain, err := guard.ChainFromSpec(sys, fallback, a.EnvCfg.MinFreqFrac)
	if err != nil {
		return nil, err
	}
	return guard.New(drl, gcfg, chain...)
}

// ensure the guard satisfies the interfaces the evaluation loop relies on.
var (
	_ sched.Scheduler = (*guard.Guard)(nil)
	_ sched.Observer  = (*guard.Guard)(nil)
)
