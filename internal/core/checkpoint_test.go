package core

import (
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/fault"
)

// trainInterrupted runs a trainer, stopping after stopAfter episodes, saves
// a checkpoint, and returns the checkpoint path.
func trainInterrupted(t *testing.T, cfg Config, stopAfter int) string {
	t.Helper()
	sys := testbedSystem(2, 7)
	tr, err := NewTrainer(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	_, err = tr.Run(func(EpisodeStats) {
		seen++
		if seen == stopAfter {
			tr.Stop()
		}
	})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("expected ErrInterrupted, got %v", err)
	}
	path := filepath.Join(t.TempDir(), "ck.json")
	if err := tr.SaveCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func referenceRun(t *testing.T, cfg Config) ([]EpisodeStats, *Trainer) {
	t.Helper()
	tr, err := NewTrainer(testbedSystem(2, 7), cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := tr.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	return stats, tr
}

// Interrupt → checkpoint → resume must reproduce an uninterrupted run
// bit-for-bit: same episode statistics, same final parameters.
func TestSequentialResumeBitIdentical(t *testing.T) {
	cfg := fastConfig()
	cfg.Episodes = 8
	refStats, refTr := referenceRun(t, cfg)

	path := trainInterrupted(t, cfg, 4)
	resumed, err := ResumeTrainer(testbedSystem(2, 7), cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	var fresh []int
	stats, err := resumed.Run(func(st EpisodeStats) { fresh = append(fresh, st.Episode) })
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stats, refStats) {
		t.Fatalf("resumed stats diverge:\n%+v\n%+v", stats, refStats)
	}
	if !reflect.DeepEqual(fresh, []int{4, 5, 6, 7}) {
		t.Fatalf("progress fired for %v, want the resumed episodes only", fresh)
	}
	compareParamsBits(t, 0, "actor", resumed.actor.Params(), refTr.actor.Params())
	compareParamsBits(t, 0, "critic", resumed.critic.Params(), refTr.critic.Params())
}

// The same contract must hold under fault injection: the per-episode fault
// schedules are drawn from the trainer RNG stream, so a resumed run must see
// the same crash/rejoin pattern the uninterrupted run does.
func TestFaultyResumeBitIdentical(t *testing.T) {
	cfg := fastConfig()
	cfg.Episodes = 6
	cfg.Env.RoundDeadline = 600
	cfg.Env.Faults = &fault.Config{CrashProb: 0.2, RejoinProb: 0.5, BlackoutProb: 0.2, StragglerProb: 0.1}
	refStats, refTr := referenceRun(t, cfg)

	path := trainInterrupted(t, cfg, 3)
	resumed, err := ResumeTrainer(testbedSystem(2, 7), cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := resumed.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stats, refStats) {
		t.Fatalf("faulty resumed stats diverge:\n%+v\n%+v", stats, refStats)
	}
	compareParamsBits(t, 0, "actor", resumed.actor.Params(), refTr.actor.Params())
}

// Parallel runs resume at wave boundaries and must match both the
// uninterrupted parallel run and (by the pool's contract) any worker count.
func TestParallelResumeBitIdentical(t *testing.T) {
	cfg := fastConfig()
	cfg.Episodes = 12 // waves of 8 + 4
	cfg.Workers = 3
	refStats, refTr := referenceRun(t, cfg)

	// Stop after the first wave: the stop flag is honored at the next wave
	// boundary, so the checkpoint lands at episode 8.
	path := trainInterrupted(t, cfg, 8)
	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Episode != 8 || !ck.Parallel {
		t.Fatalf("parallel checkpoint at episode %d (parallel=%v), want wave boundary 8", ck.Episode, ck.Parallel)
	}
	// Resume with a different worker count — the pool is worker-invariant.
	cfg.Workers = 5
	resumed, err := ResumeTrainer(testbedSystem(2, 7), cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := resumed.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stats, refStats) {
		t.Fatalf("parallel resumed stats diverge:\n%+v\n%+v", stats, refStats)
	}
	compareParamsBits(t, 5, "actor", resumed.actor.Params(), refTr.actor.Params())
	compareParamsBits(t, 5, "critic", resumed.critic.Params(), refTr.critic.Params())
}

// The gradient engine's worker invariance must hold end to end: a full run,
// an interrupted-and-resumed run, and any TrainWorkers setting all produce
// bit-identical episodes and parameters.
func TestTrainWorkersResumeBitIdentical(t *testing.T) {
	cfg := fastConfig()
	cfg.Episodes = 8
	refStats, refTr := referenceRun(t, cfg) // TrainWorkers 0: serial engine

	cfg.TrainWorkers = 4
	parStats, parTr := referenceRun(t, cfg)
	if !reflect.DeepEqual(parStats, refStats) {
		t.Fatalf("TrainWorkers=4 stats diverge from serial:\n%+v\n%+v", parStats, refStats)
	}
	compareParamsBits(t, 0, "actor", parTr.actor.Params(), refTr.actor.Params())
	compareParamsBits(t, 0, "critic", parTr.critic.Params(), refTr.critic.Params())

	// Interrupt under TrainWorkers=4, resume under TrainWorkers=2: the
	// engine holds no checkpointed state, so any combination must land on
	// the serial trajectory.
	path := trainInterrupted(t, cfg, 4)
	cfg.TrainWorkers = 2
	resumed, err := ResumeTrainer(testbedSystem(2, 7), cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := resumed.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stats, refStats) {
		t.Fatalf("resumed TrainWorkers stats diverge:\n%+v\n%+v", stats, refStats)
	}
	compareParamsBits(t, 0, "actor", resumed.actor.Params(), refTr.actor.Params())
	compareParamsBits(t, 0, "critic", resumed.critic.Params(), refTr.critic.Params())
}

func TestRestoreCheckpointValidation(t *testing.T) {
	cfg := fastConfig()
	cfg.Episodes = 8
	path := trainInterrupted(t, cfg, 2)
	good, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	newTrainer := func(mut func(*Config)) *Trainer {
		c := cfg
		if mut != nil {
			mut(&c)
		}
		tr, err := NewTrainer(testbedSystem(2, 7), c)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	cases := map[string]func(ck *Checkpoint, tr **Trainer){
		"version":  func(ck *Checkpoint, tr **Trainer) { ck.Version = 99 },
		"seed":     func(ck *Checkpoint, tr **Trainer) { ck.Seed = 12345 },
		"algo":     func(ck *Checkpoint, tr **Trainer) { ck.Algo = AlgoA2C },
		"arch":     func(ck *Checkpoint, tr **Trainer) { ck.Arch = ArchShared },
		"parallel": func(ck *Checkpoint, tr **Trainer) { *tr = newTrainer(func(c *Config) { c.Workers = 2 }) },
		"episode":  func(ck *Checkpoint, tr **Trainer) { ck.Episode = 99 },
		"stats":    func(ck *Checkpoint, tr **Trainer) { ck.Stats = nil },
		"buffer": func(ck *Checkpoint, tr **Trainer) {
			*tr = newTrainer(func(c *Config) { c.BufferSize = 1 })
		},
	}
	for name, mut := range cases {
		ck := *good
		tr := newTrainer(nil)
		mut(&ck, &tr)
		if err := tr.RestoreCheckpoint(&ck); err == nil {
			t.Errorf("%s: corrupted checkpoint accepted", name)
		}
	}
	// The pristine checkpoint must restore fine.
	if err := newTrainer(nil).RestoreCheckpoint(good); err != nil {
		t.Fatalf("valid checkpoint rejected: %v", err)
	}
}

func TestWaveAlignmentEnforced(t *testing.T) {
	cfg := fastConfig()
	cfg.Episodes = 12
	path := trainInterrupted(t, cfg, 3) // sequential checkpoint at episode 3
	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	ck.Parallel = true
	cfg.Workers = 2
	tr, err := NewTrainer(testbedSystem(2, 7), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.RestoreCheckpoint(ck); err == nil {
		t.Fatal("off-wave parallel checkpoint accepted")
	}
}

// Periodic snapshots must appear at the configured cadence and finish with
// the final episode.
func TestPeriodicCheckpointing(t *testing.T) {
	cfg := fastConfig()
	cfg.Episodes = 5
	cfg.Checkpoint = filepath.Join(t.TempDir(), "auto.json")
	cfg.CheckpointEvery = 2
	var episodes []int
	tr, err := NewTrainer(testbedSystem(2, 7), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Run(func(st EpisodeStats) {
		if ck, err := LoadCheckpoint(cfg.Checkpoint); err == nil {
			episodes = append(episodes, ck.Episode)
		}
	}); err != nil {
		t.Fatal(err)
	}
	ck, err := LoadCheckpoint(cfg.Checkpoint)
	if err != nil {
		t.Fatalf("no final checkpoint: %v", err)
	}
	if ck.Episode != 5 || len(ck.Stats) != 5 {
		t.Fatalf("final checkpoint at episode %d with %d stats, want 5/5", ck.Episode, len(ck.Stats))
	}
	// Resuming a finished run is a no-op that still returns the full series.
	resumed, err := ResumeTrainer(testbedSystem(2, 7), cfg, cfg.Checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := resumed.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 5 {
		t.Fatalf("finished-run resume returned %d stats", len(stats))
	}
}

// Fault schedules must be invariant to the worker count too: parallel
// rollouts draw per-episode fault seeds from per-episode RNGs.
func TestParallelFaultyDeterminism(t *testing.T) {
	mut := func(c *Config) {
		c.Env.RoundDeadline = 600
		c.Env.Faults = &fault.Config{CrashProb: 0.2, RejoinProb: 0.5, StragglerProb: 0.1}
	}
	refStats, refActor, refCritic := runWithWorkers(t, 1, mut)
	for _, workers := range []int{3, 8} {
		stats, actor, critic := runWithWorkers(t, workers, mut)
		if !reflect.DeepEqual(stats, refStats) {
			t.Fatalf("workers=%d: faulty stats diverge", workers)
		}
		compareParamsBits(t, workers, "actor", actor, refActor)
		compareParamsBits(t, workers, "critic", critic, refCritic)
	}
}

// A checkpointed faulty config must round-trip through JSON including the
// fault configuration's effect (the schedule itself is re-derived from the
// RNG stream, not serialized).
func TestCheckpointEnvConfigIndependent(t *testing.T) {
	cfg := fastConfig()
	cfg.Episodes = 4
	cfg.NormalizeObs = true
	path := trainInterrupted(t, cfg, 2)
	// Restoring into a trainer without the normalizer must fail loudly.
	bad := cfg
	bad.NormalizeObs = false
	tr, err := NewTrainer(testbedSystem(2, 7), bad)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.RestoreCheckpoint(ck); err == nil {
		t.Fatal("normalizer checkpoint accepted by norm-free trainer")
	}
	// And the matching config resumes cleanly.
	if _, err := ResumeTrainer(testbedSystem(2, 7), cfg, path); err != nil {
		t.Fatal(err)
	}
}
