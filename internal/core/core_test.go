package core

import (
	"math"
	"testing"

	"repro/internal/bandwidth"
	"repro/internal/device"
	"repro/internal/fl"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/trace"
)

func testbedSystem(n int, seed int64) *fl.System {
	devs := device.MustNewFleet(n, device.FleetParams{}, seed)
	p := bandwidth.Walking4G()
	traces := make([]*trace.Trace, n)
	for i := range traces {
		traces[i] = p.MustGenerate("w", 2000, seed+int64(i)*101)
	}
	return &fl.System{Devices: devs, Traces: traces, Tau: 1, ModelBytes: 25e6, Lambda: 1}
}

// fastConfig keeps training light enough for unit tests.
func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.Hidden = []int{16}
	cfg.BufferSize = 64
	cfg.Episodes = 4
	cfg.Env.EpisodeLen = 16
	cfg.PPO.Epochs = 3
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	muts := map[string]func(*Config){
		"env":     func(c *Config) { c.Env.SlotSec = 0 },
		"ppo":     func(c *Config) { c.PPO.Gamma = 2 },
		"hidden":  func(c *Config) { c.Hidden = nil },
		"width":   func(c *Config) { c.Hidden = []int{0} },
		"std":     func(c *Config) { c.InitStd = 0 },
		"buffer":  func(c *Config) { c.BufferSize = 0 },
		"episode": func(c *Config) { c.Episodes = 0 },
	}
	for name, mut := range muts {
		c := DefaultConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestNewTrainerValidation(t *testing.T) {
	sys := testbedSystem(2, 1)
	bad := fastConfig()
	bad.BufferSize = 0
	if _, err := NewTrainer(sys, bad); err == nil {
		t.Fatal("bad config accepted")
	}
	sys.Tau = 0
	if _, err := NewTrainer(sys, fastConfig()); err == nil {
		t.Fatal("bad system accepted")
	}
}

func TestTrainerRunsAndUpdates(t *testing.T) {
	sys := testbedSystem(2, 2)
	tr, err := NewTrainer(sys, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	var seen int
	eps, err := tr.Run(func(EpisodeStats) { seen++ })
	if err != nil {
		t.Fatal(err)
	}
	if len(eps) != 4 || seen != 4 {
		t.Fatalf("episodes = %d, callbacks = %d", len(eps), seen)
	}
	// 4 episodes × 16 steps = 64 = one buffer fill ⇒ ≥ 1 update.
	if eps[len(eps)-1].Updates < 1 {
		t.Fatal("no PPO update happened")
	}
	for _, e := range eps {
		if math.IsNaN(e.AvgCost) || e.AvgCost <= 0 {
			t.Fatalf("episode cost %v", e.AvgCost)
		}
		if math.Abs(e.AvgReward) == 0 {
			t.Fatal("reward identically zero")
		}
	}
	if tr.Env() == nil {
		t.Fatal("Env() nil")
	}
}

func TestTrainingImprovesCost(t *testing.T) {
	// End-to-end: on the 3-device walking scenario, the average episode
	// cost after training should be materially below the initial episodes
	// (the Fig. 6(b) trend), and the trained agent should beat the Random
	// scheduler online.
	sys := testbedSystem(3, 3)
	cfg := fastConfig()
	cfg.Episodes = 60
	cfg.Env.EpisodeLen = 20
	cfg.Hidden = []int{32}
	cfg.Seed = 7
	tr, err := NewTrainer(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eps, err := tr.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	var early, late []float64
	for _, e := range eps[:10] {
		early = append(early, e.AvgCost)
	}
	for _, e := range eps[len(eps)-10:] {
		late = append(late, e.AvgCost)
	}
	me, ml := stats.Mean(early), stats.Mean(late)
	if ml > me {
		t.Fatalf("training made things worse: %v → %v", me, ml)
	}
}

func TestAgentSaveLoadRoundTrip(t *testing.T) {
	sys := testbedSystem(2, 4)
	tr, err := NewTrainer(sys, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.RunEpisode(0); err != nil {
		t.Fatal(err)
	}
	agent := tr.Agent()
	path := t.TempDir() + "/agent.gob"
	if err := agent.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadAgent(path)
	if err != nil {
		t.Fatal(err)
	}
	// The loaded policy must act identically.
	s1, err := agent.Scheduler()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := back.Scheduler()
	if err != nil {
		t.Fatal(err)
	}
	ctx := sched.Context{Sys: sys, Clock: 77}
	f1, err := s1.Frequencies(ctx)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := s2.Frequencies(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatalf("loaded agent decides differently: %v vs %v", f1, f2)
		}
	}
	if back.EnvCfg.History != agent.EnvCfg.History {
		t.Fatal("env config lost in round trip")
	}
}

func TestLoadAgentErrors(t *testing.T) {
	if _, err := LoadAgent("/nonexistent/agent.gob"); err == nil {
		t.Fatal("missing file accepted")
	}
	a := &Agent{}
	if err := a.UnmarshalBinary([]byte("garbage")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestEvaluatePaired(t *testing.T) {
	sys := testbedSystem(3, 5)
	h, err := sched.NewHeuristic([]float64{3e6, 3e6, 3e6}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sched.NewStatic(sys, []float64{3e6, 3e6, 3e6}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	results, err := Evaluate(sys, []sched.Scheduler{sched.MaxFreq{}, h, st}, 0, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	for _, r := range results {
		if len(r.Iterations) != 30 {
			t.Fatalf("%s: %d iterations", r.Name, len(r.Iterations))
		}
		if r.MeanCost <= 0 || r.MeanTime <= 0 || r.MeanEnergy <= 0 {
			t.Fatalf("%s: non-positive means %+v", r.Name, r)
		}
		if r.CostCDF.At(math.Inf(1)) != 1 {
			t.Fatalf("%s: CDF malformed", r.Name)
		}
		// Internal consistency: mean cost = mean time + λ·mean total energy.
		var te float64
		for _, it := range r.Iterations {
			te += it.TotalEnergy()
		}
		te /= float64(len(r.Iterations))
		if math.Abs(r.MeanCost-(r.MeanTime+sys.Lambda*te)) > 1e-9 {
			t.Fatalf("%s: cost decomposition broken", r.Name)
		}
	}
	// MaxFreq must have the highest energy.
	mf, _ := ResultByName(results, "maxfreq")
	hr, _ := ResultByName(results, "heuristic")
	if mf.MeanEnergy <= hr.MeanEnergy {
		t.Fatalf("maxfreq energy %v ≤ heuristic %v", mf.MeanEnergy, hr.MeanEnergy)
	}
	if _, ok := ResultByName(results, "nope"); ok {
		t.Fatal("found nonexistent result")
	}
	if _, err := Evaluate(sys, nil, 0, 10); err == nil {
		t.Fatal("empty scheduler list accepted")
	}
	if _, err := Evaluate(sys, []sched.Scheduler{sched.MaxFreq{}}, 0, 0); err == nil {
		t.Fatal("zero iterations accepted")
	}
}

func TestTrainedAgentSchedulesFeasibly(t *testing.T) {
	sys := testbedSystem(3, 6)
	cfg := fastConfig()
	cfg.Episodes = 6
	tr, err := NewTrainer(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Run(nil); err != nil {
		t.Fatal(err)
	}
	drl, err := tr.Agent().Scheduler()
	if err != nil {
		t.Fatal(err)
	}
	its, err := sched.Run(sys, drl, 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range its {
		for i, d := range it.Devices {
			if d.FreqHz <= 0 || d.FreqHz > sys.Devices[i].MaxFreqHz+1 {
				t.Fatalf("infeasible frequency %v", d.FreqHz)
			}
		}
	}
}
