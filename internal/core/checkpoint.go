package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/rl"
)

// CheckpointVersion is the format version written by SaveCheckpoint.
const CheckpointVersion = 1

// DefaultCheckpointEvery is the snapshot interval used when Config.Checkpoint
// is set but Config.CheckpointEvery is zero.
const DefaultCheckpointEvery = 25

// ErrInterrupted is returned by Run when Stop was called; the statistics
// collected so far accompany it and the trainer remains snapshot-able.
var ErrInterrupted = errors.New("core: training interrupted")

// Checkpoint is a complete, JSON-serializable snapshot of a training run:
// every network, optimizer moment, pending experience sample and the RNG
// position, so a restored run continues bit-identically to one that was
// never interrupted. Snapshots are taken at episode boundaries (wave
// boundaries in parallel mode), which keeps the environment out of the
// picture — each episode begins with a Reset.
type Checkpoint struct {
	Version  int   `json:"version"`
	Seed     int64 `json:"seed"`
	Algo     Algo  `json:"algo"`
	Arch     Arch  `json:"arch"`
	Parallel bool  `json:"parallel"`

	// Episode is the next episode index to run; Stats holds the completed
	// episodes' statistics (len(Stats) == Episode).
	Episode  int            `json:"episode"`
	Updates  int            `json:"updates"`
	LastLoss float64        `json:"last_loss"`
	Stats    []EpisodeStats `json:"stats"`

	Actor     rl.PolicyState     `json:"actor"`
	ActorOld  rl.PolicyState     `json:"actor_old"`
	Critic    nn.MLPState        `json:"critic"`
	ActorOpt  nn.AdamState       `json:"actor_opt"`
	CriticOpt nn.AdamState       `json:"critic_opt"`
	Norm      rl.NormalizerState `json:"norm"`
	Buffer    []rl.Transition    `json:"buffer"`
	RNG       rl.RNGState        `json:"rng"`

	// Constrained carries the Lagrangian extras (multipliers, cost critic,
	// cost optimizer moments) of a constrained run; nil otherwise, so plain
	// checkpoints keep their exact historical encoding.
	Constrained *rl.ConstrainedState `json:"constrained,omitempty"`
}

// optimizers exposes the algorithm's Adam pair for checkpointing.
func (t *Trainer) optimizers() (actor, critic *nn.Adam, err error) {
	switch a := t.algo.(type) {
	case *rl.PPO:
		actor, critic = a.Optimizers()
	case *rl.A2C:
		actor, critic = a.Optimizers()
	default:
		return nil, nil, fmt.Errorf("core: cannot checkpoint algorithm %T", t.algo)
	}
	return actor, critic, nil
}

// CaptureCheckpoint snapshots the trainer's full training state.
func (t *Trainer) CaptureCheckpoint() (*Checkpoint, error) {
	actorSt, err := rl.CapturePolicy(t.actor)
	if err != nil {
		return nil, err
	}
	oldSt, err := rl.CapturePolicy(t.actorOld)
	if err != nil {
		return nil, err
	}
	actorOpt, criticOpt, err := t.optimizers()
	if err != nil {
		return nil, err
	}
	buf := make([]rl.Transition, 0, t.buffer.Len())
	for _, tr := range t.buffer.Items() {
		buf = append(buf, rl.Transition{
			State:     tr.State.Clone(),
			Action:    tr.Action.Clone(),
			Reward:    tr.Reward,
			LogProb:   tr.LogProb,
			Value:     tr.Value,
			Done:      tr.Done,
			Cost:      tr.Cost,
			CostValue: tr.CostValue,
		})
	}
	var constrained *rl.ConstrainedState
	if cp := t.constrainedPPO(); cp != nil {
		constrained = cp.CaptureConstrained()
	}
	return &Checkpoint{
		Version:     CheckpointVersion,
		Seed:        t.Cfg.Seed,
		Algo:        t.Cfg.Algo,
		Arch:        t.Cfg.Arch,
		Parallel:    t.Cfg.Workers >= 1,
		Episode:     t.nextEpisode,
		Updates:     t.updates,
		LastLoss:    t.lastLoss,
		Stats:       t.statsCopy(),
		Actor:       actorSt,
		ActorOld:    oldSt,
		Critic:      t.critic.State(),
		ActorOpt:    actorOpt.State(t.actor.Params()),
		CriticOpt:   criticOpt.State(t.critic.Params()),
		Norm:        rl.CaptureNormalizer(t.norm),
		Buffer:      buf,
		RNG:         t.src.State(),
		Constrained: constrained,
	}, nil
}

// RestoreCheckpoint loads a snapshot into a freshly constructed trainer.
// The trainer's configuration must agree with the one that wrote the
// checkpoint on everything that shapes the training trajectory: seed,
// algorithm, architecture and collection mode.
func (t *Trainer) RestoreCheckpoint(ck *Checkpoint) error {
	switch {
	case ck.Version != CheckpointVersion:
		return fmt.Errorf("core: checkpoint version %d, want %d", ck.Version, CheckpointVersion)
	case ck.Seed != t.Cfg.Seed:
		return fmt.Errorf("core: checkpoint seed %d, trainer configured with %d", ck.Seed, t.Cfg.Seed)
	case ck.Algo != t.Cfg.Algo:
		return fmt.Errorf("core: checkpoint algorithm %q, trainer configured with %q", ck.Algo, t.Cfg.Algo)
	case ck.Arch != t.Cfg.Arch:
		return fmt.Errorf("core: checkpoint architecture %q, trainer configured with %q", ck.Arch, t.Cfg.Arch)
	case ck.Parallel != (t.Cfg.Workers >= 1):
		return fmt.Errorf("core: checkpoint from parallel=%v run, trainer has Workers=%d", ck.Parallel, t.Cfg.Workers)
	case ck.Episode < 0 || ck.Episode > t.Cfg.Episodes:
		return fmt.Errorf("core: checkpoint episode %d outside [0,%d]", ck.Episode, t.Cfg.Episodes)
	case len(ck.Stats) != ck.Episode:
		return fmt.Errorf("core: checkpoint has %d episode stats for episode %d", len(ck.Stats), ck.Episode)
	case len(ck.Buffer) > t.buffer.Cap():
		return fmt.Errorf("core: checkpoint buffer holds %d samples, capacity is %d", len(ck.Buffer), t.buffer.Cap())
	}
	if ck.Parallel && ck.Episode%waveSize != 0 && ck.Episode != t.Cfg.Episodes {
		return fmt.Errorf("core: parallel checkpoint episode %d not on a wave boundary (multiple of %d)", ck.Episode, waveSize)
	}
	if err := rl.RestorePolicy(t.actor, ck.Actor); err != nil {
		return fmt.Errorf("core: restore actor: %w", err)
	}
	if err := rl.RestorePolicy(t.actorOld, ck.ActorOld); err != nil {
		return fmt.Errorf("core: restore θ_old: %w", err)
	}
	if err := t.critic.LoadState(ck.Critic); err != nil {
		return fmt.Errorf("core: restore critic: %w", err)
	}
	actorOpt, criticOpt, err := t.optimizers()
	if err != nil {
		return err
	}
	if err := actorOpt.LoadState(t.actor.Params(), ck.ActorOpt); err != nil {
		return fmt.Errorf("core: restore actor optimizer: %w", err)
	}
	if err := criticOpt.LoadState(t.critic.Params(), ck.CriticOpt); err != nil {
		return fmt.Errorf("core: restore critic optimizer: %w", err)
	}
	if err := rl.RestoreNormalizer(t.norm, ck.Norm); err != nil {
		return err
	}
	if cp := t.constrainedPPO(); cp != nil {
		if err := cp.RestoreConstrained(ck.Constrained); err != nil {
			return fmt.Errorf("core: restore constrained state: %w", err)
		}
	} else if ck.Constrained != nil {
		return fmt.Errorf("core: checkpoint is from a constrained run, trainer is unconstrained")
	}
	t.buffer.Clear()
	for _, tr := range ck.Buffer {
		t.buffer.Add(tr)
	}
	t.src.Restore(ck.RNG)
	t.updates = ck.Updates
	t.lastLoss = ck.LastLoss
	t.stats = append([]EpisodeStats(nil), ck.Stats...)
	t.nextEpisode = ck.Episode
	t.lastSaved = ck.Episode
	return nil
}

// SaveCheckpoint captures the trainer's state and writes it crash-safely:
// the snapshot goes to a temp file in the target directory first and is
// renamed into place, so a crash mid-write leaves the previous checkpoint
// intact.
func (t *Trainer) SaveCheckpoint(path string) error {
	ck, err := t.CaptureCheckpoint()
	if err != nil {
		return err
	}
	data, err := json.Marshal(ck)
	if err != nil {
		return fmt.Errorf("core: encode checkpoint: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("core: write checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: commit checkpoint: %w", err)
	}
	t.lastSaved = t.nextEpisode
	return nil
}

// LoadCheckpoint reads a snapshot written by SaveCheckpoint.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: load checkpoint: %w", err)
	}
	ck := &Checkpoint{}
	if err := json.Unmarshal(data, ck); err != nil {
		return nil, fmt.Errorf("core: decode checkpoint %s: %w", filepath.Base(path), err)
	}
	return ck, nil
}

// ResumeTrainer builds a trainer and restores the checkpoint at path into
// it — the one-call resume used by cmd/fltrain's -resume flag.
func ResumeTrainer(sys *fl.System, cfg Config, path string) (*Trainer, error) {
	ck, err := LoadCheckpoint(path)
	if err != nil {
		return nil, err
	}
	t, err := NewTrainer(sys, cfg)
	if err != nil {
		return nil, err
	}
	if err := t.RestoreCheckpoint(ck); err != nil {
		return nil, err
	}
	return t, nil
}

// autoCheckpoint writes a periodic snapshot when Config.Checkpoint is set
// and enough episodes have completed since the last save.
func (t *Trainer) autoCheckpoint() error {
	if t.Cfg.Checkpoint == "" {
		return nil
	}
	every := t.Cfg.CheckpointEvery
	if every == 0 {
		every = DefaultCheckpointEvery
	}
	if t.nextEpisode-t.lastSaved < every && t.nextEpisode != t.Cfg.Episodes {
		return nil
	}
	return t.SaveCheckpoint(t.Cfg.Checkpoint)
}
