package core

import (
	"reflect"
	"testing"

	"repro/internal/rl"
)

// constrainedConfig is fastConfig with the Lagrangian machinery on and
// targets tight enough that both constraints bind on the test fleet, so the
// multipliers actually move during these runs.
func constrainedConfig() Config {
	cfg := fastConfig()
	cfg.Episodes = 8
	cfg.Env.DeadlineTarget = 1
	cfg.Env.EnergyBudget = 5
	cfg.PPO.Constraint = rl.DefaultConstraintConfig()
	return cfg
}

func lagrangianOf(t *testing.T, tr *Trainer) *rl.PPO {
	t.Helper()
	p := tr.constrainedPPO()
	if p == nil {
		t.Fatal("trainer is not constrained")
	}
	return p
}

// TestConstrainedTrainWorkersResumeBitIdentical extends the engine's
// end-to-end determinism contract to constrained training: full runs at any
// TrainWorkers setting, and an interrupted-and-resumed run crossing worker
// counts, must all land on the serial trajectory bit-for-bit — including the
// Lagrange multipliers and cost-critic parameters carried by the checkpoint.
func TestConstrainedTrainWorkersResumeBitIdentical(t *testing.T) {
	cfg := constrainedConfig()
	refStats, refTr := referenceRun(t, cfg) // TrainWorkers 0: serial engine
	refPPO := lagrangianOf(t, refTr)
	if refPPO.Multipliers() == (rl.CostVec{}) {
		t.Fatal("multipliers never moved — constraint targets do not bind on the fixture")
	}

	cfg.TrainWorkers = 4
	parStats, parTr := referenceRun(t, cfg)
	if !reflect.DeepEqual(parStats, refStats) {
		t.Fatalf("TrainWorkers=4 constrained stats diverge from serial:\n%+v\n%+v", parStats, refStats)
	}
	parPPO := lagrangianOf(t, parTr)
	if parPPO.Multipliers() != refPPO.Multipliers() {
		t.Fatalf("TrainWorkers=4 multipliers diverge: %v vs %v",
			parPPO.Multipliers(), refPPO.Multipliers())
	}
	compareParamsBits(t, 0, "actor", parTr.actor.Params(), refTr.actor.Params())
	compareParamsBits(t, 0, "critic", parTr.critic.Params(), refTr.critic.Params())
	compareParamsBits(t, 0, "cost critic", parPPO.CostCritic.Params(), refPPO.CostCritic.Params())

	// Interrupt under TrainWorkers=4, resume under TrainWorkers=2: the
	// multipliers, cost critic, and cost optimizer moments ride in the
	// checkpoint's Constrained block and must restore bit-identically.
	path := trainInterrupted(t, cfg, 4)
	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Constrained == nil {
		t.Fatal("constrained checkpoint has no Constrained block")
	}
	cfg.TrainWorkers = 2
	resumed, err := ResumeTrainer(testbedSystem(2, 7), cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := resumed.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stats, refStats) {
		t.Fatalf("resumed constrained stats diverge:\n%+v\n%+v", stats, refStats)
	}
	resPPO := lagrangianOf(t, resumed)
	if resPPO.Multipliers() != refPPO.Multipliers() {
		t.Fatalf("resumed multipliers diverge: %v vs %v",
			resPPO.Multipliers(), refPPO.Multipliers())
	}
	compareParamsBits(t, 0, "actor", resumed.actor.Params(), refTr.actor.Params())
	compareParamsBits(t, 0, "critic", resumed.critic.Params(), refTr.critic.Params())
	compareParamsBits(t, 0, "cost critic", resPPO.CostCritic.Params(), refPPO.CostCritic.Params())
}

// TestConstrainedCheckpointMismatch: resuming across the constrained /
// unconstrained boundary in either direction is a configuration error, never
// a silent multiplier reset.
func TestConstrainedCheckpointMismatch(t *testing.T) {
	ccfg := constrainedConfig()
	constrainedCk := trainInterrupted(t, ccfg, 2)

	plain := ccfg
	plain.PPO.Constraint = rl.ConstraintConfig{}
	plain.Env.DeadlineTarget = 0
	plain.Env.EnergyBudget = 0
	if _, err := ResumeTrainer(testbedSystem(2, 7), plain, constrainedCk); err == nil {
		t.Fatal("unconstrained trainer accepted a constrained checkpoint")
	}

	plainCk := trainInterrupted(t, plain, 2)
	if _, err := ResumeTrainer(testbedSystem(2, 7), ccfg, plainCk); err == nil {
		t.Fatal("constrained trainer accepted an unconstrained checkpoint")
	}
}
