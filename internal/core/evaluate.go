package core

import (
	"fmt"

	"repro/internal/fl"
	"repro/internal/sched"
	"repro/internal/stats"
)

// EvalResult summarizes one scheduler's online run — the rows of Fig. 7/8.
type EvalResult struct {
	// Name is the scheduler's name.
	Name string
	// Iterations holds the full per-iteration breakdowns.
	Iterations []fl.IterationStats
	// MeanCost is the average per-iteration system cost (Fig. 7(a), 8).
	MeanCost float64
	// MeanTime is the average per-iteration training time (Fig. 7(b)).
	MeanTime float64
	// MeanEnergy is the average per-iteration computational energy
	// (Fig. 7(c)).
	MeanEnergy float64
	// CostCDF, TimeCDF and EnergyCDF back Fig. 7(d)–(f).
	CostCDF, TimeCDF, EnergyCDF *stats.CDF
}

// Evaluate runs every scheduler through the same system for the same number
// of iterations from the same start time, so the comparison is paired.
func Evaluate(sys *fl.System, schedulers []sched.Scheduler, startTime float64, iters int) ([]EvalResult, error) {
	if len(schedulers) == 0 {
		return nil, fmt.Errorf("core: no schedulers to evaluate")
	}
	out := make([]EvalResult, 0, len(schedulers))
	for _, s := range schedulers {
		its, err := sched.Run(sys, s, startTime, iters)
		if err != nil {
			return nil, fmt.Errorf("core: evaluate %s: %w", s.Name(), err)
		}
		costs := sched.Costs(its)
		times := sched.Durations(its)
		energies := sched.ComputeEnergies(its)
		out = append(out, EvalResult{
			Name:       s.Name(),
			Iterations: its,
			MeanCost:   stats.Mean(costs),
			MeanTime:   stats.Mean(times),
			MeanEnergy: stats.Mean(energies),
			CostCDF:    stats.NewCDF(costs),
			TimeCDF:    stats.NewCDF(times),
			EnergyCDF:  stats.NewCDF(energies),
		})
	}
	return out, nil
}

// CalibrateRewardScale probes the system with a short run-at-max burst and
// returns its mean per-iteration cost, a natural RewardScale: scaled rewards
// then land near −1, which keeps the critic's regression targets O(1)
// regardless of fleet size N or cost weight λ.
func CalibrateRewardScale(sys *fl.System, iters int) (float64, error) {
	its, err := sched.Run(sys, sched.MaxFreq{}, 0, iters)
	if err != nil {
		return 0, fmt.Errorf("core: calibrate reward scale: %w", err)
	}
	m := stats.Mean(sched.Costs(its))
	if m <= 0 {
		return 0, fmt.Errorf("core: degenerate probe cost %v", m)
	}
	return m, nil
}

// CalibrateConstraints probes the system with a short run-at-max burst and
// derives per-iteration constraint targets for constrained training: the
// deadline target is the probe's mean round duration times timeSlack (>1
// leaves headroom — max frequency is the fastest the fleet can go), and the
// energy budget is the probe's mean per-iteration energy times energyFrac
// (<1 demands savings — max frequency is the most energy the fleet can
// burn). The pair plugs into env.Config.DeadlineTarget/EnergyBudget.
func CalibrateConstraints(sys *fl.System, iters int, timeSlack, energyFrac float64) (deadline, energy float64, err error) {
	if timeSlack <= 0 || energyFrac <= 0 {
		return 0, 0, fmt.Errorf("core: calibrate constraints: slack %v / fraction %v must be positive", timeSlack, energyFrac)
	}
	its, err := sched.Run(sys, sched.MaxFreq{}, 0, iters)
	if err != nil {
		return 0, 0, fmt.Errorf("core: calibrate constraints: %w", err)
	}
	meanTime := stats.Mean(sched.Durations(its))
	var meanEnergy float64
	for _, it := range its {
		meanEnergy += it.TotalEnergy()
	}
	meanEnergy /= float64(len(its))
	if meanTime <= 0 || meanEnergy <= 0 {
		return 0, 0, fmt.Errorf("core: degenerate probe: mean time %v, mean energy %v", meanTime, meanEnergy)
	}
	return meanTime * timeSlack, meanEnergy * energyFrac, nil
}

// ResultByName finds a named result in an Evaluate output.
func ResultByName(results []EvalResult, name string) (EvalResult, bool) {
	for _, r := range results {
		if r.Name == name {
			return r, true
		}
	}
	return EvalResult{}, false
}
