package core

import (
	"fmt"
	"math/rand"

	"repro/internal/env"
	"repro/internal/nn"
	"repro/internal/rl"
)

// waveSize is the number of episodes collected per parallel wave. It is a
// fixed constant — never derived from the worker count — because the
// sampling parameters are snapshotted once per wave: with a fixed wave
// boundary the collected experience depends only on (seed, episode index,
// wave-start parameters), so any worker count produces bit-identical
// training output.
const waveSize = 8

// episodeSeed derives the private RNG seed of one episode from the run seed
// via a splitmix64-style mix, so episodes are decorrelated but fully
// determined by (seed, episode).
func episodeSeed(seed int64, episode int) int64 {
	x := uint64(seed) + 0x9e3779b97f4a7c15*uint64(episode+1)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e9b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}

// runParallel is the Workers ≥ 1 training loop: episodes are collected in
// fixed-size waves by a pool of rollout workers, then merged into the
// shared experience buffer strictly in episode order, replaying the
// buffer-full PPO updates of Algorithm 1 during the merge. Sampling uses
// the θ_old/critic/normalizer snapshot taken at the wave boundary, which
// makes the scheme slightly off-policy (up to one wave of update lag)
// but worker-count invariant: runs with Workers=1 and Workers=N are
// bit-identical under the same seed.
func (t *Trainer) runParallel(progress func(EpisodeStats)) ([]EpisodeStats, error) {
	workers := t.Cfg.Workers
	if workers > t.Cfg.Episodes {
		workers = t.Cfg.Episodes // no point idling extra goroutines
	}
	// Resume keeps the absolute wave grid: RestoreCheckpoint only accepts
	// wave-aligned episodes in parallel mode, so starting the loop at
	// nextEpisode reproduces the same wave boundaries as an uninterrupted
	// run.
	for start := t.nextEpisode; start < t.Cfg.Episodes; start += waveSize {
		if t.stop.Load() {
			return t.statsCopy(), ErrInterrupted
		}
		count := t.Cfg.Episodes - start
		if count > waveSize {
			count = waveSize
		}
		w := workers
		if w > count {
			w = count
		}
		// Snapshot the sampling state once per wave; every worker gets its
		// own clones because network forward passes mutate scratch caches.
		cp := t.constrainedPPO()
		actors := make([]rl.Policy, w)
		critics := make([]*nn.MLP, w)
		costCritics := make([]*nn.MLP, w)
		norms := make([]*rl.ObsNormalizer, w)
		for i := 0; i < w; i++ {
			actors[i] = t.actorOld.ClonePolicy()
			critics[i] = t.critic.Clone()
			if cp != nil {
				costCritics[i] = cp.CostCritic.Clone()
			}
			if t.norm != nil {
				norms[i] = t.norm.Clone()
			}
		}
		trajs, err := rl.CollectEpisodes(start, count, w, func(worker, ep int) (*rl.Trajectory, error) {
			return t.collectEpisode(ep, actors[worker], critics[worker], costCritics[worker], norms[worker])
		})
		if err != nil {
			return t.statsCopy(), fmt.Errorf("core: parallel rollout: %w", err)
		}
		for _, tr := range trajs {
			st, err := t.absorb(tr)
			if err != nil {
				return t.statsCopy(), fmt.Errorf("core: episode %d: %w", tr.Episode, err)
			}
			t.stats = append(t.stats, st)
			if progress != nil {
				progress(st)
			}
		}
		t.nextEpisode = start + count
		if err := t.autoCheckpoint(); err != nil {
			return t.statsCopy(), err
		}
	}
	return t.statsCopy(), nil
}

// collectEpisode rolls out one episode against a private environment whose
// RNG is derived from (run seed, episode index), sampling from the given
// wave-snapshot actor/critic/normalizer clones. It is safe to call from
// concurrent workers as long as each worker passes its own clones; the
// shared fl.System is read-only during simulation.
func (t *Trainer) collectEpisode(episode int, actor rl.Policy, critic, costCritic *nn.MLP, norm *rl.ObsNormalizer) (*rl.Trajectory, error) {
	rng := rand.New(rand.NewSource(episodeSeed(t.Cfg.Seed, episode)))
	e, err := env.New(t.Sys, t.Cfg.Env, rng)
	if err != nil {
		return nil, err
	}
	state, err := e.Reset()
	if err != nil {
		return nil, err
	}
	tr := &rl.Trajectory{Episode: episode}
	if norm != nil {
		tr.RawStates = append(tr.RawStates, state.Clone())
		state = norm.Normalize(state) // wave-frozen statistics; no Update
	}
	for {
		action, logp := actor.Sample(state, rng)
		value := critic.Forward(state)[0]
		var costValue rl.CostVec
		if costCritic != nil {
			copy(costValue[:], costCritic.Forward(state))
		}
		// Capture s_k before StepInto overwrites the environment's state
		// scratch; the trajectory retains the transition anyway.
		stored := state.Clone()
		res, err := e.StepInto(action)
		if err != nil {
			return nil, err
		}
		tr.Steps = append(tr.Steps, rl.Transition{
			State:     stored,
			Action:    action.Clone(),
			Reward:    res.Reward,
			LogProb:   logp,
			Value:     value,
			Done:      res.Done,
			Cost:      rl.CostVec(res.Costs),
			CostValue: costValue,
		})
		tr.CostSum += res.Iter.Cost
		tr.RewardSum += res.Reward
		state = res.State
		if norm != nil {
			tr.RawStates = append(tr.RawStates, state.Clone())
			state = norm.Normalize(state)
		}
		if res.Done {
			tr.FinalState = state.Clone()
			return tr, nil
		}
	}
}

// absorb merges one collected trajectory into the shared buffer, replaying
// Algorithm 1's buffer-full updates (lines 17–23) exactly as the sequential
// loop would: value bootstrap from the transition after the fill point
// under the current critic, M optimization epochs, θ_old sync, buffer
// clear. Running observation statistics are replayed in state-visit order.
func (t *Trainer) absorb(tr *rl.Trajectory) (EpisodeStats, error) {
	if t.norm != nil {
		for _, raw := range tr.RawStates {
			t.norm.Update(raw)
		}
	}
	cp := t.constrainedPPO()
	for i, step := range tr.Steps {
		t.buffer.Add(step)
		if !t.buffer.Full() {
			continue
		}
		lastValue := 0.0
		var lastCost rl.CostVec
		if !step.Done {
			next := tr.FinalState
			if i+1 < len(tr.Steps) {
				next = tr.Steps[i+1].State
			}
			lastValue = t.algo.Value(next)
			if cp != nil {
				lastCost = cp.CostValues(next)
			}
		}
		gamma, lambda := t.Cfg.PPO.Gamma, t.Cfg.PPO.Lambda
		if t.Cfg.Algo == AlgoA2C {
			gamma, lambda = t.Cfg.A2C.Gamma, t.Cfg.A2C.Lambda
		}
		var batch *rl.Batch
		if cp != nil {
			batch = rl.MakeConstrainedBatchInto(t.batch, t.buffer, lastValue, lastCost, gamma, lambda)
		} else {
			batch = rl.MakeBatch(t.buffer, lastValue, gamma, lambda)
		}
		st, err := t.algo.Update(batch)
		if err != nil {
			return EpisodeStats{}, err
		}
		t.lastLoss = st.Loss(t.Cfg.PPO)
		t.updates++
		t.actorOld.CopyFrom(t.actor)
		t.buffer.Clear()
	}
	steps := float64(len(tr.Steps))
	return EpisodeStats{
		Episode:   tr.Episode,
		AvgCost:   tr.CostSum / steps,
		AvgReward: tr.RewardSum / steps,
		Loss:      t.lastLoss,
		Updates:   t.updates,
	}, nil
}
