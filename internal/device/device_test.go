package device

import (
	"math"
	"testing"
	"testing/quick"
)

func validDevice() *Device {
	return &Device{
		ID:           0,
		DataBits:     75 * BitsPerMB,
		CyclesPerBit: 20,
		MaxFreqHz:    1.5 * GHz,
		Alpha:        2e-28,
	}
}

func TestValidate(t *testing.T) {
	if err := validDevice().Validate(); err != nil {
		t.Fatalf("valid device rejected: %v", err)
	}
	muts := map[string]func(*Device){
		"data":   func(d *Device) { d.DataBits = 0 },
		"cycles": func(d *Device) { d.CyclesPerBit = -1 },
		"freq":   func(d *Device) { d.MaxFreqHz = 0 },
		"alpha":  func(d *Device) { d.Alpha = 0 },
		"tx":     func(d *Device) { d.TxEnergyPerSec = -1 },
	}
	for name, mut := range muts {
		d := validDevice()
		mut(d)
		if err := d.Validate(); err == nil {
			t.Errorf("%s: invalid device accepted", name)
		}
	}
}

func TestComputeTimeEquation1(t *testing.T) {
	d := validDevice()
	// t_cmp = τ·c·D/δ exactly.
	want := 1 * 20.0 * 75 * BitsPerMB / (1.5 * GHz)
	if got := d.ComputeTime(1, 1.5*GHz); math.Abs(got-want) > 1e-12 {
		t.Fatalf("ComputeTime = %v want %v", got, want)
	}
	// τ scales linearly.
	if got := d.ComputeTime(3, 1.5*GHz); math.Abs(got-3*want) > 1e-9 {
		t.Fatalf("τ=3 ComputeTime = %v want %v", got, 3*want)
	}
}

func TestComputeTimeMonotoneInFreq(t *testing.T) {
	d := validDevice()
	f := func(a, b uint8) bool {
		lo := 0.1 + float64(a%200)/250.0 // in (0, 0.9]
		hi := lo + 0.01 + float64(b%25)/250.0
		if hi > 1 {
			hi = 1
		}
		t1 := d.ComputeTime(1, lo*d.MaxFreqHz)
		t2 := d.ComputeTime(1, hi*d.MaxFreqHz)
		return t2 < t1 // strictly faster at higher frequency
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestComputeEnergyEquation6(t *testing.T) {
	d := validDevice()
	freq := 1.2 * GHz
	want := d.Alpha * 20 * 75 * BitsPerMB * freq * freq
	if got := d.ComputeEnergy(1, freq); math.Abs(got-want) > 1e-9*want {
		t.Fatalf("ComputeEnergy = %v want %v", got, want)
	}
	// Quadratic in δ: doubling frequency quadruples energy.
	e1 := d.ComputeEnergy(1, 0.5*GHz)
	e2 := d.ComputeEnergy(1, 1.0*GHz)
	if math.Abs(e2/e1-4) > 1e-9 {
		t.Fatalf("energy ratio = %v, want 4", e2/e1)
	}
}

func TestEnergyMonotoneInFreqProperty(t *testing.T) {
	d := validDevice()
	f := func(a, b uint8) bool {
		lo := 0.05 + float64(a%200)/250.0
		hi := lo + 0.01 + float64(b%25)/250.0
		if hi > 1 {
			hi = 1
		}
		return d.ComputeEnergy(1, hi*d.MaxFreqHz) > d.ComputeEnergy(1, lo*d.MaxFreqHz)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeEnergyTradeoffInvariant(t *testing.T) {
	// t_cmp²·E_cmp = α·(τcD)³ is frequency-invariant — the core physics of
	// the paper's tradeoff (halving time costs 4× energy).
	d := validDevice()
	prod := func(fr float64) float64 {
		tc := d.ComputeTime(1, fr)
		return tc * tc * d.ComputeEnergy(1, fr)
	}
	ref := prod(0.3 * GHz)
	for _, fr := range []float64{0.5 * GHz, 1.0 * GHz, 1.5 * GHz} {
		if math.Abs(prod(fr)-ref) > 1e-9*ref {
			t.Fatalf("t·E not invariant: %v vs %v", prod(fr), ref)
		}
	}
}

func TestTxEnergy(t *testing.T) {
	d := validDevice()
	d.TxEnergyPerSec = 0.5
	if got := d.TxEnergy(4); got != 2 {
		t.Fatalf("TxEnergy = %v", got)
	}
	if got := d.TxEnergy(0); got != 0 {
		t.Fatalf("zero time TxEnergy = %v", got)
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	d := validDevice()
	cases := map[string]func(){
		"zero freq":       func() { d.ComputeTime(1, 0) },
		"over max":        func() { d.ComputeTime(1, 2*d.MaxFreqHz) },
		"negative energy": func() { d.ComputeEnergy(1, -1) },
		"negative tx":     func() { d.TxEnergy(-1) },
		"bad minFrac":     func() { d.ClampFreq(1, 0) },
		"minFrac > 1":     func() { d.ClampFreq(1, 1.5) },
	}
	for name, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestClampFreq(t *testing.T) {
	d := validDevice()
	if got := d.ClampFreq(0, 0.1); got != 0.1*d.MaxFreqHz {
		t.Fatalf("clamp low = %v", got)
	}
	if got := d.ClampFreq(10*GHz, 0.1); got != d.MaxFreqHz {
		t.Fatalf("clamp high = %v", got)
	}
	if got := d.ClampFreq(1*GHz, 0.1); got != 1*GHz {
		t.Fatalf("in-range clamp = %v", got)
	}
}

func TestNewFleetDistributions(t *testing.T) {
	fleet, err := NewFleet(200, FleetParams{}, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet) != 200 {
		t.Fatalf("fleet size %d", len(fleet))
	}
	for _, d := range fleet {
		mb := d.DataBits / BitsPerMB
		if mb < 50 || mb > 100 {
			t.Fatalf("D_i = %v MB outside [50,100]", mb)
		}
		if d.CyclesPerBit < 10 || d.CyclesPerBit > 30 {
			t.Fatalf("c_i = %v outside [10,30]", d.CyclesPerBit)
		}
		ghz := d.MaxFreqHz / GHz
		if ghz < 1.0 || ghz > 2.0 {
			t.Fatalf("δmax = %v GHz outside [1,2]", ghz)
		}
	}
	// Heterogeneity: parameters must actually vary.
	if fleet[0].DataBits == fleet[1].DataBits && fleet[1].DataBits == fleet[2].DataBits {
		t.Fatal("fleet not heterogeneous")
	}
}

func TestNewFleetDeterministic(t *testing.T) {
	a := MustNewFleet(5, FleetParams{}, 7)
	b := MustNewFleet(5, FleetParams{}, 7)
	for i := range a {
		if a[i].DataBits != b[i].DataBits || a[i].MaxFreqHz != b[i].MaxFreqHz {
			t.Fatal("same seed must give identical fleets")
		}
	}
}

func TestNewFleetErrors(t *testing.T) {
	if _, err := NewFleet(0, FleetParams{}, 1); err == nil {
		t.Fatal("zero fleet accepted")
	}
	if _, err := NewFleet(3, FleetParams{DataMBMin: 100, DataMBMax: 50}, 1); err == nil {
		t.Fatal("inverted range accepted")
	}
}

func TestMustNewFleetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNewFleet(-1, FleetParams{}, 1)
}

func TestFleetParamsCustom(t *testing.T) {
	fleet := MustNewFleet(10, FleetParams{
		DataMBMin: 10, DataMBMax: 10,
		CyclesMin: 5, CyclesMax: 5,
		FreqGHzMin: 2, FreqGHzMax: 2,
		Alpha:          1e-27,
		TxEnergyPerSec: 0.3,
	}, 1)
	d := fleet[0]
	if d.DataBits != 10*BitsPerMB || d.CyclesPerBit != 5 || d.MaxFreqHz != 2*GHz {
		t.Fatalf("custom params ignored: %+v", d)
	}
	if d.Alpha != 1e-27 || d.TxEnergyPerSec != 0.3 {
		t.Fatalf("alpha/tx ignored: %+v", d)
	}
}

func TestCalibrationBand(t *testing.T) {
	// DESIGN.md §5: with paper defaults the per-device computational energy
	// at mid-range frequency should land near the paper's 0.5–3 J band.
	fleet := MustNewFleet(100, FleetParams{}, 3)
	var lo, hi float64 = math.Inf(1), math.Inf(-1)
	for _, d := range fleet {
		e := d.ComputeEnergy(1, 0.8*d.MaxFreqHz)
		if e < lo {
			lo = e
		}
		if e > hi {
			hi = e
		}
	}
	if lo < 0.05 || hi > 20 {
		t.Fatalf("energy calibration off: [%v, %v] J", lo, hi)
	}
}
