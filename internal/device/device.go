// Package device models the mobile devices that participate in federated
// learning: their datasets, CPU characteristics and energy coefficients, and
// the paper's per-iteration time/energy equations (1) and (6). Fleets are
// generated with exactly the parameter distributions of §V-A.
package device

import (
	"fmt"
	"math/rand"
)

// Unit conversions used throughout the model. Dataset sizes are quoted in
// megabytes in the paper but c_i is in cycles/bit, so the model works in bits.
const (
	BitsPerMB = 8e6 // 1 MB = 10^6 bytes = 8·10^6 bits
	GHz       = 1e9
)

// Device holds the static parameters of one mobile device (Table I).
type Device struct {
	// ID identifies the device within a fleet.
	ID int
	// DataBits is D_i, the size of the local dataset in bits.
	DataBits float64
	// CyclesPerBit is c_i, CPU cycles to train one bit of data.
	CyclesPerBit float64
	// MaxFreqHz is δ_i^max, the CPU-cycle frequency upper bound in Hz.
	MaxFreqHz float64
	// Alpha is α_i, the effective capacitance coefficient of the chipset.
	Alpha float64
	// TxEnergyPerSec is e_i, the energy drawn per second of uploading
	// (eq. 6's communication term). The paper's evaluation tracks
	// computational energy, so fleets default this to 0; the simulator
	// still accounts for it separately when set.
	TxEnergyPerSec float64
}

// Validate checks the device's parameters.
func (d *Device) Validate() error {
	switch {
	case d.DataBits <= 0:
		return fmt.Errorf("device %d: non-positive dataset size %v", d.ID, d.DataBits)
	case d.CyclesPerBit <= 0:
		return fmt.Errorf("device %d: non-positive cycles/bit %v", d.ID, d.CyclesPerBit)
	case d.MaxFreqHz <= 0:
		return fmt.Errorf("device %d: non-positive max frequency %v", d.ID, d.MaxFreqHz)
	case d.Alpha <= 0:
		return fmt.Errorf("device %d: non-positive capacitance %v", d.ID, d.Alpha)
	case d.TxEnergyPerSec < 0:
		return fmt.Errorf("device %d: negative tx energy %v", d.ID, d.TxEnergyPerSec)
	}
	return nil
}

// Workload returns τ·c_i·D_i, the total CPU cycles of one training round
// with τ local passes.
func (d *Device) Workload(tau int) float64 {
	return float64(tau) * d.CyclesPerBit * d.DataBits
}

// ComputeTime implements eq. (1): t_cmp = τ·c_i·D_i / δ.
// It panics if freqHz is not in (0, MaxFreqHz] — callers are expected to
// clamp actions before applying them.
func (d *Device) ComputeTime(tau int, freqHz float64) float64 {
	if freqHz <= 0 || freqHz > d.MaxFreqHz*(1+1e-9) {
		panic(fmt.Sprintf("device %d: frequency %v outside (0, %v]", d.ID, freqHz, d.MaxFreqHz))
	}
	return d.Workload(tau) / freqHz
}

// ComputeEnergy implements the computational term of eq. (6):
// E_cmp = α_i·τ·c_i·D_i·δ² (the τ factor generalizes the paper's τ=1 form —
// energy is power κδ³ × time τcD/δ).
func (d *Device) ComputeEnergy(tau int, freqHz float64) float64 {
	if freqHz < 0 {
		panic(fmt.Sprintf("device %d: negative frequency %v", d.ID, freqHz))
	}
	return d.Alpha * d.Workload(tau) * freqHz * freqHz
}

// TxEnergy implements the communication term of eq. (6): e_i · t_com.
func (d *Device) TxEnergy(comTimeSec float64) float64 {
	if comTimeSec < 0 {
		panic(fmt.Sprintf("device %d: negative communication time %v", d.ID, comTimeSec))
	}
	return d.TxEnergyPerSec * comTimeSec
}

// ClampFreq limits a requested frequency to the feasible range
// [minFrac·MaxFreq, MaxFreq]. minFrac must be in (0, 1]; a small positive
// floor keeps eq. (1) finite, matching the paper's open interval (0, δmax].
func (d *Device) ClampFreq(freqHz, minFrac float64) float64 {
	if minFrac <= 0 || minFrac > 1 {
		panic(fmt.Sprintf("device %d: minFrac %v outside (0,1]", d.ID, minFrac))
	}
	lo := minFrac * d.MaxFreqHz
	if freqHz < lo {
		return lo
	}
	if freqHz > d.MaxFreqHz {
		return d.MaxFreqHz
	}
	return freqHz
}

// FleetParams configures random fleet generation; zero values take the
// paper's §V-A defaults.
type FleetParams struct {
	// DataMB range for D_i (uniform); paper: [50, 100] MB.
	DataMBMin, DataMBMax float64
	// CyclesPerBit range for c_i (uniform); paper: [10, 30].
	CyclesMin, CyclesMax float64
	// MaxFreqGHz range for δ_i^max (uniform); paper: [1.0, 2.0] GHz.
	FreqGHzMin, FreqGHzMax float64
	// Alpha is the effective capacitance coefficient; calibrated so the
	// computational energy lands in the paper's reported band (DESIGN.md §5).
	Alpha float64
	// TxEnergyPerSec is e_i for every device (default 0; see Device).
	TxEnergyPerSec float64
}

// WithDefaults returns a copy of the parameters with zero fields filled
// with the paper's §V-A settings — the distributions NewFleet draws from,
// exposed so other fleet builders (the hierarchical struct-of-arrays fleet)
// sample the same population.
func (p FleetParams) WithDefaults() FleetParams { return p.withDefaults() }

// withDefaults fills zero fields with the paper's settings.
func (p FleetParams) withDefaults() FleetParams {
	if p.DataMBMin == 0 && p.DataMBMax == 0 {
		p.DataMBMin, p.DataMBMax = 50, 100
	}
	if p.CyclesMin == 0 && p.CyclesMax == 0 {
		p.CyclesMin, p.CyclesMax = 10, 30
	}
	if p.FreqGHzMin == 0 && p.FreqGHzMax == 0 {
		p.FreqGHzMin, p.FreqGHzMax = 1.0, 2.0
	}
	if p.Alpha == 0 {
		p.Alpha = 2e-28
	}
	return p
}

// NewFleet draws n devices with parameters distributed per §V-A, seeded
// deterministically.
func NewFleet(n int, params FleetParams, seed int64) ([]*Device, error) {
	if n <= 0 {
		return nil, fmt.Errorf("device: fleet size %d must be positive", n)
	}
	p := params.withDefaults()
	if p.DataMBMax < p.DataMBMin || p.CyclesMax < p.CyclesMin || p.FreqGHzMax < p.FreqGHzMin {
		return nil, fmt.Errorf("device: inverted parameter range in %+v", p)
	}
	rng := rand.New(rand.NewSource(seed))
	uniform := func(lo, hi float64) float64 {
		if hi == lo {
			return lo
		}
		return lo + rng.Float64()*(hi-lo)
	}
	fleet := make([]*Device, n)
	for i := range fleet {
		d := &Device{
			ID:             i,
			DataBits:       uniform(p.DataMBMin, p.DataMBMax) * BitsPerMB,
			CyclesPerBit:   uniform(p.CyclesMin, p.CyclesMax),
			MaxFreqHz:      uniform(p.FreqGHzMin, p.FreqGHzMax) * GHz,
			Alpha:          p.Alpha,
			TxEnergyPerSec: p.TxEnergyPerSec,
		}
		if err := d.Validate(); err != nil {
			return nil, err
		}
		fleet[i] = d
	}
	return fleet, nil
}

// MustNewFleet is NewFleet, panicking on error.
func MustNewFleet(n int, params FleetParams, seed int64) []*Device {
	f, err := NewFleet(n, params, seed)
	if err != nil {
		panic(err)
	}
	return f
}
