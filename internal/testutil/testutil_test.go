package testutil

import (
	"math"
	"testing"
)

func TestClose(t *testing.T) {
	inf, nan := math.Inf(1), math.NaN()
	cases := []struct {
		name           string
		got, want      float64
		relTol, absTol float64
		ok             bool
	}{
		{"exact", 1.5, 1.5, 0, 0, true},
		{"zero-want-abs", 1e-12, 0, 1e-9, 1e-9, true},
		{"zero-want-too-far", 1e-3, 0, 1e-9, 1e-9, false},
		{"relative-hit", 1000.0001, 1000, 1e-6, 0, true},
		{"relative-miss", 1001, 1000, 1e-6, 0, false},
		{"negative-pair", -2.0000001, -2, 1e-6, 0, true},
		{"sign-flip", 1, -1, 1e-6, 1e-6, false},
		{"negative-zero", math.Copysign(0, -1), 0, 0, 0, true},
		{"nan-got", nan, 1, 1, 1, false},
		{"nan-want", 1, nan, 1, 1, false},
		{"nan-both", nan, nan, 1, 1, false},
		{"inf-equal", inf, inf, 0, 0, true},
		{"inf-sign", inf, -inf, 1, 1e300, false},
		{"inf-vs-finite", inf, 1e300, 1, 1e300, false},
	}
	for _, c := range cases {
		if got := Close(c.got, c.want, c.relTol, c.absTol); got != c.ok {
			t.Errorf("%s: Close(%v, %v, %v, %v) = %v, want %v",
				c.name, c.got, c.want, c.relTol, c.absTol, got, c.ok)
		}
	}
}

func TestWithin(t *testing.T) {
	if !Within(1.05, 1, 0.1) {
		t.Error("1.05 should be within 0.1 of 1")
	}
	if Within(1.2, 1, 0.1) {
		t.Error("1.2 should not be within 0.1 of 1")
	}
}
