// Package testutil holds shared test helpers. It depends on nothing but
// the standard library so every package in the repository can use it.
package testutil

import (
	"math"
	"testing"
)

// Close reports whether got approximates want under a combined tolerance:
// true when |got−want| ≤ absTol, or when the difference is within relTol
// of the larger magnitude of the two values. The absolute term handles
// comparisons against zero (where any relative tolerance is vacuous) and
// the relative term keeps large-magnitude comparisons meaningful; signs
// matter, so 1 and −1 are never close. NaN is close to nothing, and
// infinities are close only to themselves with matching sign.
func Close(got, want, relTol, absTol float64) bool {
	if math.IsNaN(got) || math.IsNaN(want) {
		return false
	}
	if got == want { // handles equal infinities and exact hits
		return true
	}
	if math.IsInf(got, 0) || math.IsInf(want, 0) {
		return false
	}
	d := math.Abs(got - want)
	if d <= absTol {
		return true
	}
	return d <= relTol*math.Max(math.Abs(got), math.Abs(want))
}

// Within reports whether |got−want| ≤ tol, the plain absolute comparison
// most tests want for small fixed-scale quantities.
func Within(got, want, tol float64) bool {
	return Close(got, want, 0, tol)
}

// AssertClose fails the test when got and want are not Close. The label
// names the quantity in the failure message.
func AssertClose(t testing.TB, label string, got, want, relTol, absTol float64) {
	t.Helper()
	if !Close(got, want, relTol, absTol) {
		t.Fatalf("%s = %v, want %v (relTol %v, absTol %v)", label, got, want, relTol, absTol)
	}
}

// AssertWithin fails the test when |got−want| > tol.
func AssertWithin(t testing.TB, label string, got, want, tol float64) {
	t.Helper()
	if !Within(got, want, tol) {
		t.Fatalf("%s = %v, want %v (±%v)", label, got, want, tol)
	}
}
