package fl

import (
	"math/rand"
	"sort"
	"testing"
)

// TestHeapPopsSorted checks the heap against a reference sort on random
// inputs, including duplicate keys (the tie-break keeps the order total).
func TestHeapPopsSorted(t *testing.T) {
	type ev struct {
		t  float64
		id int
	}
	less := func(a, b ev) bool {
		if a.t != b.t {
			return a.t < b.t
		}
		return a.id < b.id
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		h := NewHeap(less, 0)
		want := make([]ev, n)
		for i := range want {
			// Coarse keys force ties so the id tie-break is exercised.
			want[i] = ev{t: float64(rng.Intn(20)), id: i}
			h.Push(want[i])
		}
		sort.Slice(want, func(i, j int) bool { return less(want[i], want[j]) })
		for i, w := range want {
			if got := h.Pop(); got != w {
				t.Fatalf("trial %d: pop %d = %+v, want %+v", trial, i, got, w)
			}
		}
		if h.Len() != 0 {
			t.Fatalf("trial %d: %d elements left after draining", trial, h.Len())
		}
	}
}

// TestHeapInterleaved pushes and pops in interleaved bursts: the minimum
// must always be correct relative to what remains.
func TestHeapInterleaved(t *testing.T) {
	less := func(a, b int) bool { return a < b }
	h := NewHeap(less, 4)
	rng := rand.New(rand.NewSource(11))
	var ref []int
	for op := 0; op < 2000; op++ {
		if h.Len() == 0 || rng.Intn(3) > 0 {
			v := rng.Intn(1000)
			h.Push(v)
			ref = append(ref, v)
			continue
		}
		sort.Ints(ref)
		if got := h.Pop(); got != ref[0] {
			t.Fatalf("op %d: pop %d, want %d", op, got, ref[0])
		}
		ref = ref[1:]
	}
}

// TestHeapReset reuses a drained heap without reallocating.
func TestHeapReset(t *testing.T) {
	h := NewHeap(func(a, b int) bool { return a < b }, 8)
	for i := 5; i > 0; i-- {
		h.Push(i)
	}
	h.Reset()
	if h.Len() != 0 {
		t.Fatalf("Len after Reset = %d", h.Len())
	}
	h.Push(3)
	h.Push(1)
	if got := h.Peek(); got != 1 {
		t.Fatalf("Peek = %d, want 1", got)
	}
	if got := h.Pop(); got != 1 {
		t.Fatalf("Pop = %d, want 1", got)
	}
}
