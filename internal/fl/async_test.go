package fl

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/device"
	"repro/internal/trace"
)

func TestRunAsyncHandComputed(t *testing.T) {
	s := testSystem() // constant links: 5, 2, 1 MB/s; ξ = 10 MB
	fs := maxFreqs(s)
	// Per-round times at max frequency: dev0 6.4+2=8.4, dev1 4.8+5=9.8,
	// dev2 4+10=14. First three updates: 8.4, 9.8, 14.
	res, err := s.RunAsync(0, fs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Updates != 3 {
		t.Fatalf("updates = %d", res.Updates)
	}
	if math.Abs(res.Elapsed-14) > 1e-9 {
		t.Fatalf("elapsed = %v want 14", res.Elapsed)
	}
	for i, c := range res.PerDeviceUpdates {
		if c != 1 {
			t.Fatalf("device %d contributed %d updates", i, c)
		}
	}
	// Next round: dev0 finishes again at 16.8 before dev1's 19.6 — fast
	// devices start to dominate.
	res5, err := s.RunAsync(0, fs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res5.PerDeviceUpdates[0] != 2 {
		t.Fatalf("fast device should have 2 updates, got %v", res5.PerDeviceUpdates)
	}
	if res5.PerDeviceUpdates[2] != 1 {
		t.Fatalf("slow device should have 1 update, got %v", res5.PerDeviceUpdates)
	}
}

func TestAsyncStaleness(t *testing.T) {
	s := testSystem()
	res, err := s.RunAsync(0, maxFreqs(s), 9)
	if err != nil {
		t.Fatal(err)
	}
	// With three devices interleaving, some updates must be stale.
	if res.MeanStaleness <= 0 {
		t.Fatalf("async staleness = %v, expected > 0", res.MeanStaleness)
	}
}

func TestAsyncVsSyncThroughput(t *testing.T) {
	// Async never idles, so with heterogeneous devices it must deliver at
	// least the synchronous update rate; sync must have zero staleness.
	s := testSystem()
	fs := maxFreqs(s)
	sync, err := s.SyncThroughput(0, fs, 5)
	if err != nil {
		t.Fatal(err)
	}
	async, err := s.RunAsync(0, fs, sync.Updates)
	if err != nil {
		t.Fatal(err)
	}
	if async.UpdateRate() < sync.UpdateRate() {
		t.Fatalf("async rate %v < sync rate %v", async.UpdateRate(), sync.UpdateRate())
	}
	if sync.MeanStaleness != 0 {
		t.Fatal("sync updates must not be stale")
	}
	if sync.Updates != 15 || sync.PerDeviceUpdates[0] != 5 {
		t.Fatalf("sync accounting wrong: %+v", sync)
	}
}

func TestRunAsyncValidation(t *testing.T) {
	s := testSystem()
	if _, err := s.RunAsync(0, []float64{1e9}, 3); err == nil {
		t.Fatal("frequency count mismatch accepted")
	}
	if _, err := s.RunAsync(0, maxFreqs(s), 0); err == nil {
		t.Fatal("zero updates accepted")
	}
	if _, err := s.RunAsync(-1, maxFreqs(s), 3); err == nil {
		t.Fatal("negative start accepted")
	}
	bad := maxFreqs(s)
	bad[0] = 0
	if _, err := s.RunAsync(0, bad, 3); err == nil {
		t.Fatal("zero frequency accepted")
	}
	s.Tau = 0
	if _, err := s.RunAsync(0, maxFreqs(s), 3); err == nil {
		t.Fatal("invalid system accepted")
	}
}

func TestUpdateRateEdge(t *testing.T) {
	if (AsyncResult{}).UpdateRate() != 0 {
		t.Fatal("zero-elapsed rate should be 0")
	}
}

// identicalSystem builds a fleet of n clones of one device/trace pair so
// every round of every device finishes at exactly the same instant —
// maximal stress for the event heap's tie-breaking.
func identicalSystem(n int) *System {
	devs := make([]*device.Device, n)
	traces := make([]*trace.Trace, n)
	for i := range devs {
		devs[i] = &device.Device{ID: i, DataBits: 80 * device.BitsPerMB, CyclesPerBit: 20,
			MaxFreqHz: 2 * device.GHz, Alpha: 2e-28}
		traces[i] = trace.MustNew("flat", 1, []float64{5e6})
	}
	return &System{Devices: devs, Traces: traces, Tau: 1, ModelBytes: 10e6, Lambda: 1}
}

func TestAsyncTieBreakDeterminism(t *testing.T) {
	// All devices finish every round simultaneously; ties must pop in
	// device order, so counts stay balanced round-robin and repeated runs
	// are identical.
	s := identicalSystem(5)
	fs := maxFreqs(s)
	first, err := s.RunAsync(0, fs, 13)
	if err != nil {
		t.Fatal(err)
	}
	// 13 = 2 full waves of 5 + 3: devices 0-2 lead by one update.
	want := []int{3, 3, 3, 2, 2}
	for i, c := range first.PerDeviceUpdates {
		if c != want[i] {
			t.Fatalf("tie-break order broken: counts %v, want %v", first.PerDeviceUpdates, want)
		}
	}
	for rep := 0; rep < 5; rep++ {
		again, err := s.RunAsync(0, fs, 13)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("rerun %d diverged:\nfirst %+v\nagain %+v", rep, first, again)
		}
	}
}

func TestAsyncMinimumFrequencyDevices(t *testing.T) {
	// At a fraction of δmax the compute time stretches by exactly the
	// inverse fraction while uploads are untouched; the engine must accept
	// tiny-but-positive frequencies and keep its accounting consistent.
	s := testSystem()
	fs := maxFreqs(s)
	for i := range fs {
		fs[i] *= 0.1
	}
	res, err := s.RunAsync(0, fs, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Slowed rounds: dev0 64+2=66, dev1 48+5=53, dev2 40+10=50 — the
	// former straggler now finishes first.
	if math.Abs(res.Elapsed-66) > 1e-9 {
		t.Fatalf("elapsed = %v, want 66", res.Elapsed)
	}
	for i, c := range res.PerDeviceUpdates {
		if c != 1 {
			t.Fatalf("device %d contributed %d updates", i, c)
		}
	}
	// Quadratic energy law: a ×0.1 frequency costs ×0.01 compute energy.
	full, err := s.RunAsync(0, maxFreqs(s), 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.ComputeEnergy-0.01*full.ComputeEnergy) > 1e-9*full.ComputeEnergy {
		t.Fatalf("compute energy %v, want %v", res.ComputeEnergy, 0.01*full.ComputeEnergy)
	}
}

func TestSyncThroughputMatchesSynchronousEngine(t *testing.T) {
	// SyncThroughput must be exactly a Session replay: same clock, same
	// summed energies, N updates per iteration.
	s := testSystem()
	fs := maxFreqs(s)
	const iters = 7
	agg, err := s.SyncThroughput(3.5, fs, iters)
	if err != nil {
		t.Fatal(err)
	}
	ses, err := NewSession(s, 3.5)
	if err != nil {
		t.Fatal(err)
	}
	var computeE, txE float64
	for k := 0; k < iters; k++ {
		it, err := ses.Step(fs)
		if err != nil {
			t.Fatal(err)
		}
		computeE += it.ComputeEnergy
		txE += it.TxEnergy
	}
	if agg.Elapsed != ses.Clock-3.5 {
		t.Fatalf("elapsed %v vs session %v", agg.Elapsed, ses.Clock-3.5)
	}
	if agg.ComputeEnergy != computeE || agg.TxEnergy != txE {
		t.Fatalf("energy %v/%v vs session %v/%v", agg.ComputeEnergy, agg.TxEnergy, computeE, txE)
	}
	if agg.Updates != iters*s.N() {
		t.Fatalf("updates %d, want %d", agg.Updates, iters*s.N())
	}
}

func TestAsyncEnergyAccounting(t *testing.T) {
	s := testSystem()
	for _, d := range s.Devices {
		d.TxEnergyPerSec = 0.1
	}
	res, err := s.RunAsync(0, maxFreqs(s), 3)
	if err != nil {
		t.Fatal(err)
	}
	// One full round per device: compute energy equals the synchronous
	// iteration's total; tx energy = 0.1·(2+5+10).
	it, err := s.RunIteration(0, 0, maxFreqs(s))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.ComputeEnergy-it.ComputeEnergy) > 1e-9 {
		t.Fatalf("compute energy %v vs sync %v", res.ComputeEnergy, it.ComputeEnergy)
	}
	if math.Abs(res.TxEnergy-1.7) > 1e-9 {
		t.Fatalf("tx energy %v want 1.7", res.TxEnergy)
	}
}
