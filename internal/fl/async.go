package fl

import "fmt"

// The paper adopts the synchronous model, citing evidence [14] that it
// trains more efficiently than asynchronous alternatives. This file
// implements the asynchronous counterpart so that claim can be examined in
// the same cost model: devices never wait for a barrier — each one loops
// compute→upload on its own timeline and the parameter server applies
// updates as they arrive. Async delivers more raw updates per second (no
// idle time at all), but its updates are stale: other devices' updates land
// in between, which is what degrades statistical efficiency in practice.

// AsyncResult summarizes an asynchronous run.
type AsyncResult struct {
	// Elapsed is the wall-clock time until the target update count.
	Elapsed float64
	// Updates is the number of model uploads the server received.
	Updates int
	// ComputeEnergy and TxEnergy are summed over all device activity.
	ComputeEnergy, TxEnergy float64
	// PerDeviceUpdates counts each device's contributions — async lets
	// fast devices dominate, a fairness problem the barrier prevents.
	PerDeviceUpdates []int
	// MeanStaleness is the average number of foreign updates applied
	// between a device starting its computation and its own update
	// arriving — the async efficiency tax.
	MeanStaleness float64
}

// UpdateRate returns updates per second.
func (r AsyncResult) UpdateRate() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Updates) / r.Elapsed
}

// asyncEvent is one device's next upload completion.
type asyncEvent struct {
	finish    float64 // wall-clock completion time
	device    int
	startedAt float64 // when the device read the global model
	computeE  float64
	txE       float64
}

// eventLess orders events by completion time, breaking exact ties by device
// index so simultaneous completions pop in one fixed order regardless of
// heap-internal layout. (finish, device) is a total order, so the pop
// sequence is identical to container/heap's.
func eventLess(a, b asyncEvent) bool {
	if a.finish != b.finish {
		return a.finish < b.finish
	}
	return a.device < b.device
}

// RunAsync simulates asynchronous federated learning from startTime with
// fixed per-device frequencies until the server has received totalUpdates
// model uploads.
func (s *System) RunAsync(startTime float64, freqs []float64, totalUpdates int) (AsyncResult, error) {
	if err := s.Validate(); err != nil {
		return AsyncResult{}, err
	}
	if len(freqs) != s.N() {
		return AsyncResult{}, fmt.Errorf("fl: %d frequencies for %d devices", len(freqs), s.N())
	}
	if totalUpdates <= 0 {
		return AsyncResult{}, fmt.Errorf("fl: target update count %d must be positive", totalUpdates)
	}
	if startTime < 0 {
		return AsyncResult{}, fmt.Errorf("fl: negative start time %v", startTime)
	}
	for i, d := range s.Devices {
		if freqs[i] <= 0 || freqs[i] > d.MaxFreqHz*(1+1e-9) {
			return AsyncResult{}, fmt.Errorf("fl: device %d frequency %v outside (0, %v]", i, freqs[i], d.MaxFreqHz)
		}
	}

	schedule := func(dev int, from float64) (asyncEvent, error) {
		d := s.Devices[dev]
		tcmp := d.ComputeTime(s.Tau, freqs[dev])
		upStart := from + tcmp
		upEnd, err := s.Traces[dev].UploadFinish(upStart, s.ModelBytes)
		if err != nil {
			return asyncEvent{}, fmt.Errorf("fl: device %d upload: %w", dev, err)
		}
		return asyncEvent{
			finish:    upEnd,
			device:    dev,
			startedAt: from,
			computeE:  d.ComputeEnergy(s.Tau, freqs[dev]),
			txE:       d.TxEnergy(upEnd - upStart),
		}, nil
	}

	h := NewHeap(eventLess, s.N())
	for i := range s.Devices {
		ev, err := schedule(i, startTime)
		if err != nil {
			return AsyncResult{}, err
		}
		h.Push(ev)
	}

	res := AsyncResult{PerDeviceUpdates: make([]int, s.N())}
	// arrivalLog records update completion times to compute staleness.
	arrivals := make([]float64, 0, totalUpdates)
	var stalenessSum float64
	for res.Updates < totalUpdates {
		ev := h.Pop()
		res.Updates++
		res.PerDeviceUpdates[ev.device]++
		res.ComputeEnergy += ev.computeE
		res.TxEnergy += ev.txE
		res.Elapsed = ev.finish - startTime
		// Staleness: foreign updates that arrived inside [startedAt, finish).
		var foreign int
		for i := len(arrivals) - 1; i >= 0 && arrivals[i] >= ev.startedAt; i-- {
			foreign++
		}
		stalenessSum += float64(foreign)
		arrivals = append(arrivals, ev.finish)

		next, err := schedule(ev.device, ev.finish)
		if err != nil {
			return AsyncResult{}, err
		}
		h.Push(next)
	}
	res.MeanStaleness = stalenessSum / float64(res.Updates)
	return res, nil
}

// SyncThroughput runs `iters` synchronous iterations with the given fixed
// frequencies and reports the equivalent aggregate metrics, so sync and
// async can be compared on updates/second and energy/update.
func (s *System) SyncThroughput(startTime float64, freqs []float64, iters int) (AsyncResult, error) {
	ses, err := NewSession(s, startTime)
	if err != nil {
		return AsyncResult{}, err
	}
	res := AsyncResult{PerDeviceUpdates: make([]int, s.N())}
	for k := 0; k < iters; k++ {
		it, err := ses.StepInto(freqs)
		if err != nil {
			return AsyncResult{}, err
		}
		res.Updates += s.N()
		res.ComputeEnergy += it.ComputeEnergy
		res.TxEnergy += it.TxEnergy
		for i := range res.PerDeviceUpdates {
			res.PerDeviceUpdates[i]++
		}
	}
	res.Elapsed = ses.Clock - startTime
	// Synchronous updates are never stale: every device trains on the
	// freshest global model.
	res.MeanStaleness = 0
	return res, nil
}
