package fl

// Heap is a hand-rolled binary min-heap over concrete elements. It exists
// because container/heap boxes every element into an interface — one heap
// allocation per push — which would put the simulator's event loops off the
// zero-allocation hot path (DESIGN.md §10). Pushes and pops move concrete
// structs instead; after the backing slice has grown to its working set the
// heap performs no allocation.
//
// The ordering function must be a strict weak order; for deterministic
// simulation it should be a *total* order (break ties on an index), so the
// pop sequence is independent of heap-internal layout. The async engine's
// event heap and the hierarchical engine's arrival queues are both built on
// this type.
type Heap[E any] struct {
	s    []E
	less func(a, b E) bool
}

// NewHeap builds a heap with the given ordering and initial capacity.
func NewHeap[E any](less func(a, b E) bool, capacity int) *Heap[E] {
	if less == nil {
		panic("fl: NewHeap with nil ordering")
	}
	return &Heap[E]{s: make([]E, 0, capacity), less: less}
}

// Len returns the number of queued elements.
func (h *Heap[E]) Len() int { return len(h.s) }

// Reset empties the heap, keeping its capacity for reuse.
func (h *Heap[E]) Reset() { h.s = h.s[:0] }

// Push inserts an element.
func (h *Heap[E]) Push(e E) {
	h.s = append(h.s, e)
	s := h.s
	for i := len(s) - 1; i > 0; {
		parent := (i - 1) / 2
		if !h.less(s[i], s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

// Pop removes and returns the minimum element. It panics on an empty heap.
func (h *Heap[E]) Pop() E {
	s := h.s
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	var zero E
	s[n] = zero // release references held by pointerful payloads
	s = s[:n]
	h.s = s
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && h.less(s[l], s[least]) {
			least = l
		}
		if r < n && h.less(s[r], s[least]) {
			least = r
		}
		if least == i {
			break
		}
		s[i], s[least] = s[least], s[i]
		i = least
	}
	return top
}

// Peek returns the minimum element without removing it. It panics on an
// empty heap.
func (h *Heap[E]) Peek() E { return h.s[0] }
