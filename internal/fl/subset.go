package fl

import "fmt"

// Client selection (Nishio & Yonetani [38], cited in §VI) is the other
// lever against stragglers: rather than slowing fast devices down, the
// server simply excludes slow ones from the round. This file adds
// participation masks to the synchronous engine so selection policies can
// be studied in the same cost model; frequency control and selection
// compose naturally.

// RunIterationSubset simulates iteration k with only the masked devices
// participating: non-participants neither compute, upload, nor burn energy,
// and the barrier (eq. 5) ranges over participants only. freqs must still
// have one entry per device; entries for non-participants are ignored.
// Per-device stats of non-participants are zero-valued with IdleTime equal
// to the whole round.
func (s *System) RunIterationSubset(k int, startTime float64, freqs []float64, participants []bool) (IterationStats, error) {
	return s.RunIterationSubsetInto(k, startTime, freqs, participants, nil)
}

// RunIterationSubsetInto is RunIterationSubset writing the per-device stats
// into a caller-provided buffer (reallocated only when its capacity is
// short); the returned IterationStats.Devices aliases it. Callers that
// retain stats across calls must keep passing nil.
func (s *System) RunIterationSubsetInto(k int, startTime float64, freqs []float64, participants []bool, devs []DeviceIterStats) (IterationStats, error) {
	if err := s.Validate(); err != nil {
		return IterationStats{}, err
	}
	if len(freqs) != s.N() || len(participants) != s.N() {
		return IterationStats{}, fmt.Errorf("fl: %d frequencies and %d masks for %d devices",
			len(freqs), len(participants), s.N())
	}
	count := 0
	for _, p := range participants {
		if p {
			count++
		}
	}
	if count == 0 {
		return IterationStats{}, fmt.Errorf("fl: no participating devices in iteration %d", k)
	}
	if cap(devs) < s.N() {
		devs = make([]DeviceIterStats, s.N())
	} else {
		devs = devs[:s.N()]
		// Non-participants are skipped by the loop below, so stale entries
		// from a previous round must be cleared explicitly.
		for i := range devs {
			devs[i] = DeviceIterStats{}
		}
	}
	it := IterationStats{
		Index:     k,
		StartTime: startTime,
		Devices:   devs,
	}
	for i, d := range s.Devices {
		if !participants[i] {
			continue
		}
		f := freqs[i]
		if f <= 0 || f > d.MaxFreqHz*(1+1e-9) {
			return IterationStats{}, fmt.Errorf("fl: device %d frequency %v outside (0, %v]", i, f, d.MaxFreqHz)
		}
		tcmp := d.ComputeTime(s.Tau, f)
		upStart := startTime + tcmp
		upEnd, err := s.Traces[i].UploadFinish(upStart, s.ModelBytes)
		if err != nil {
			return IterationStats{}, fmt.Errorf("fl: device %d upload: %w", i, err)
		}
		tcom := upEnd - upStart
		var avgBW float64
		if tcom > 0 {
			avgBW = s.ModelBytes / tcom
		} else {
			avgBW = s.Traces[i].At(upStart)
		}
		ds := DeviceIterStats{
			FreqHz:        f,
			ComputeTime:   tcmp,
			ComTime:       tcom,
			TotalTime:     tcmp + tcom,
			AvgBandwidth:  avgBW,
			ComputeEnergy: d.ComputeEnergy(s.Tau, f),
			TxEnergy:      d.TxEnergy(tcom),
		}
		it.Devices[i] = ds
		it.ComputeEnergy += ds.ComputeEnergy
		it.TxEnergy += ds.TxEnergy
		if ds.TotalTime > it.Duration {
			it.Duration = ds.TotalTime
		}
	}
	for i := range it.Devices {
		it.Devices[i].IdleTime = it.Duration - it.Devices[i].TotalTime
	}
	it.Survivors = count
	it.Cost = it.Duration + s.Lambda*it.TotalEnergy()
	return it, nil
}

// Participants extracts the mask's participating-device indices.
func Participants(mask []bool) []int {
	var out []int
	for i, p := range mask {
		if p {
			out = append(out, i)
		}
	}
	return out
}

// StepSubset runs the next iteration with a participation mask and advances
// the session clock.
func (ses *Session) StepSubset(freqs []float64, participants []bool) (IterationStats, error) {
	it, err := ses.Sys.RunIterationSubset(ses.steps, ses.Clock, freqs, participants)
	if err != nil {
		return IterationStats{}, err
	}
	ses.Clock += it.Duration
	ses.History = append(ses.History, it)
	ses.steps++
	return it, nil
}
