// Package fl implements the paper's federated-learning timing model: the
// continuous-time, synchronous iteration engine of §III. Given per-device
// CPU frequencies chosen at the start of iteration k, it computes each
// device's computation time (eq. 1), finds the upload completion instant by
// integrating the device's bandwidth trace (eqs. 2–3), takes the barrier
// maximum (eq. 5), accounts energy (eq. 6) and the system cost that the
// DRL agent's reward (eq. 13) negates, and advances the wall clock (eq. 11).
package fl

import (
	"fmt"
	"math"

	"repro/internal/device"
	"repro/internal/trace"
)

// System is one federated-learning deployment: a fleet of devices with
// their uplink traces and the task constants.
type System struct {
	// Devices in the group (N ≥ 1).
	Devices []*device.Device
	// Traces[i] is device i's uplink bandwidth over wall-clock time.
	Traces []*trace.Trace
	// Tau is τ, the number of local training passes per iteration.
	Tau int
	// ModelBytes is ξ, the size of the uploaded model parameters in bytes.
	ModelBytes float64
	// Lambda is λ, the energy weight in the system cost (eq. 9).
	Lambda float64
}

// Validate checks that the system is consistent.
func (s *System) Validate() error {
	if len(s.Devices) == 0 {
		return fmt.Errorf("fl: no devices")
	}
	if len(s.Traces) != len(s.Devices) {
		return fmt.Errorf("fl: %d traces for %d devices", len(s.Traces), len(s.Devices))
	}
	for i, d := range s.Devices {
		if d == nil {
			return fmt.Errorf("fl: device %d is nil", i)
		}
		if err := d.Validate(); err != nil {
			return fmt.Errorf("fl: %w", err)
		}
		if s.Traces[i] == nil {
			return fmt.Errorf("fl: trace %d is nil", i)
		}
	}
	if s.Tau <= 0 {
		return fmt.Errorf("fl: τ = %d must be positive", s.Tau)
	}
	if s.ModelBytes <= 0 {
		return fmt.Errorf("fl: model size %v must be positive", s.ModelBytes)
	}
	if s.Lambda < 0 {
		return fmt.Errorf("fl: λ = %v must be non-negative", s.Lambda)
	}
	return nil
}

// N returns the number of devices.
func (s *System) N() int { return len(s.Devices) }

// DeviceIterStats records one device's outcome within one iteration.
type DeviceIterStats struct {
	// FreqHz is the applied CPU frequency δ_i^k.
	FreqHz float64
	// ComputeTime is t_cmp (eq. 1).
	ComputeTime float64
	// ComTime is t_com (eq. 2), derived from the trace integral (eq. 3).
	ComTime float64
	// TotalTime is T_i^k = t_cmp + t_com (eq. 4).
	TotalTime float64
	// IdleTime is T^k − T_i^k, the slack the paper's mechanism converts
	// into energy savings.
	IdleTime float64
	// AvgBandwidth is B_i^k, the realized mean upload speed (bytes/s).
	AvgBandwidth float64
	// ComputeEnergy is the α·τ·c·D·δ² term of eq. 6.
	ComputeEnergy float64
	// TxEnergy is the e_i·t_com term of eq. 6.
	TxEnergy float64
	// Down marks a device that was crashed for this whole iteration
	// (fault injection); all other fields are zero.
	Down bool
	// Dropped marks a device that missed the barrier deadline and was
	// excluded from the round's aggregation (partial-aggregation mode).
	Dropped bool
	// Retries is the number of blacked-out upload attempts that preceded
	// the successful one (each cost a backoff wait).
	Retries int
}

// IterationStats records one whole iteration.
type IterationStats struct {
	// Index is k (0-based).
	Index int
	// StartTime is t^k on the global wall clock.
	StartTime float64
	// Duration is T^k = max_i T_i^k (eq. 5).
	Duration float64
	// Devices holds per-device breakdowns.
	Devices []DeviceIterStats
	// ComputeEnergy is Σ_i of the computational term.
	ComputeEnergy float64
	// TxEnergy is Σ_i of the communication term.
	TxEnergy float64
	// Cost is T^k + λ·Σ_i E_i^k (the negative of reward, eq. 13).
	Cost float64
	// Survivors is the number of devices whose update made this round's
	// aggregation (N minus Down minus Dropped; N when fault-free).
	Survivors int
	// Dropped counts devices that missed the barrier deadline.
	Dropped int
	// Down counts devices that were crashed for the whole iteration.
	Down int
}

// TotalEnergy returns Σ_i E_i^k with both terms of eq. (6).
func (it *IterationStats) TotalEnergy() float64 {
	return it.ComputeEnergy + it.TxEnergy
}

// RunIteration simulates iteration k starting at startTime with the given
// per-device frequencies (Hz). Frequencies must lie in (0, δ_i^max]; the
// engine reports an error rather than silently clamping so schedulers stay
// honest about the action space. It is the fault-free special case of
// RunIterationOpts (see faults.go).
func (s *System) RunIteration(k int, startTime float64, freqs []float64) (IterationStats, error) {
	return s.RunIterationOpts(k, startTime, freqs, IterOptions{})
}

// Session drives a System across iterations, advancing the wall clock per
// eq. (11): t^{k+1} = t^k + T^k.
type Session struct {
	Sys *System
	// Clock is the current wall-clock time t^k (seconds).
	Clock float64
	// History holds the stats of completed iterations in order. StepInto
	// advances the session without recording here.
	History []IterationStats
	// Opts are the fault-tolerance options applied to every Step. The zero
	// value keeps the paper's fault-free engine.
	Opts IterOptions

	// steps counts completed iterations (= len(History) unless StepInto
	// was used), so K keeps indexing fault schedules on the history-free
	// hot path.
	steps int
	// devScratch is StepInto's reusable per-device stats buffer.
	devScratch []DeviceIterStats
}

// NewSession starts a session at the given wall-clock time (the paper's
// "randomly select a federated learning start time t¹").
func NewSession(sys *System, startTime float64) (*Session, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if startTime < 0 || math.IsNaN(startTime) || math.IsInf(startTime, 0) {
		return nil, fmt.Errorf("fl: invalid start time %v", startTime)
	}
	return &Session{Sys: sys, Clock: startTime}, nil
}

// Step runs the next iteration with the given frequencies under the
// session's Opts and advances the clock.
func (ses *Session) Step(freqs []float64) (IterationStats, error) {
	return ses.StepOpts(freqs, ses.Opts)
}

// StepInto is Step without the history record: the returned stats' Devices
// alias a per-session scratch buffer that the next StepInto overwrites, and
// nothing is appended to History. In steady state the call performs no
// allocation, which is what keeps the RL training loop's environment step
// allocation-free (the trainer consumes each iteration's stats immediately
// and never replays session history). K still advances, so fault schedules
// stay correctly indexed.
func (ses *Session) StepInto(freqs []float64) (IterationStats, error) {
	it, err := ses.Sys.RunIterationOptsInto(ses.steps, ses.Clock, freqs, ses.Opts, ses.devScratch)
	if err != nil {
		return IterationStats{}, err
	}
	ses.devScratch = it.Devices
	ses.Clock += it.Duration
	ses.steps++
	return it, nil
}

// K returns the number of completed iterations.
func (ses *Session) K() int { return ses.steps }

// LastBandwidths returns each device's most recently realized average
// bandwidth — the information the Heuristic baseline [3] acts on — or nil
// before the first iteration. Under client selection a device may not have
// participated in the latest iteration (its entry is zero there), so the
// lookup walks history backwards per device; a device never observed falls
// back to its trace's long-run mean.
func (ses *Session) LastBandwidths() []float64 {
	if len(ses.History) == 0 {
		return nil
	}
	n := len(ses.Sys.Devices)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		for k := len(ses.History) - 1; k >= 0; k-- {
			if bw := ses.History[k].Devices[i].AvgBandwidth; bw > 0 {
				out[i] = bw
				break
			}
		}
		if out[i] <= 0 {
			out[i] = ses.Sys.Traces[i].Summary().Mean
		}
	}
	return out
}

// TotalCost returns Σ_k (T^k + λΣE), the paper's objective (9) over the
// session so far.
func (ses *Session) TotalCost() float64 {
	var c float64
	for _, it := range ses.History {
		c += it.Cost
	}
	return c
}

// Reward returns the DRL reward (eq. 13) for an iteration: the negated cost.
func Reward(it IterationStats) float64 { return -it.Cost }
