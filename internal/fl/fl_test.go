package fl

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/device"
	"repro/internal/trace"
)

// testSystem builds a deterministic 3-device system on constant-bandwidth
// traces so expected times can be computed by hand.
func testSystem() *System {
	devs := []*device.Device{
		{ID: 0, DataBits: 80 * device.BitsPerMB, CyclesPerBit: 20, MaxFreqHz: 2 * device.GHz, Alpha: 2e-28},
		{ID: 1, DataBits: 60 * device.BitsPerMB, CyclesPerBit: 15, MaxFreqHz: 1.5 * device.GHz, Alpha: 2e-28},
		{ID: 2, DataBits: 50 * device.BitsPerMB, CyclesPerBit: 10, MaxFreqHz: 1 * device.GHz, Alpha: 2e-28},
	}
	traces := []*trace.Trace{
		trace.MustNew("t0", 1, []float64{5e6}),
		trace.MustNew("t1", 1, []float64{2e6}),
		trace.MustNew("t2", 1, []float64{1e6}),
	}
	return &System{
		Devices:    devs,
		Traces:     traces,
		Tau:        1,
		ModelBytes: 10e6,
		Lambda:     1,
	}
}

func maxFreqs(s *System) []float64 {
	fs := make([]float64, s.N())
	for i, d := range s.Devices {
		fs[i] = d.MaxFreqHz
	}
	return fs
}

func TestValidate(t *testing.T) {
	s := testSystem()
	if err := s.Validate(); err != nil {
		t.Fatalf("valid system rejected: %v", err)
	}
	muts := map[string]func(*System){
		"no devices":  func(s *System) { s.Devices = nil },
		"trace count": func(s *System) { s.Traces = s.Traces[:2] },
		"nil device":  func(s *System) { s.Devices[1] = nil },
		"nil trace":   func(s *System) { s.Traces[0] = nil },
		"bad device":  func(s *System) { s.Devices[0].Alpha = 0 },
		"zero tau":    func(s *System) { s.Tau = 0 },
		"zero model":  func(s *System) { s.ModelBytes = 0 },
		"neg lambda":  func(s *System) { s.Lambda = -1 },
	}
	for name, mut := range muts {
		s := testSystem()
		mut(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestRunIterationHandComputed(t *testing.T) {
	s := testSystem()
	it, err := s.RunIteration(0, 0, maxFreqs(s))
	if err != nil {
		t.Fatal(err)
	}
	// Device 0: t_cmp = 20·80·8e6 / 2e9 = 6.4 s; t_com = 10e6/5e6 = 2 s.
	d0 := it.Devices[0]
	if math.Abs(d0.ComputeTime-6.4) > 1e-9 || math.Abs(d0.ComTime-2) > 1e-9 {
		t.Fatalf("device 0 times = %v, %v", d0.ComputeTime, d0.ComTime)
	}
	// Device 1: t_cmp = 15·60·8e6 / 1.5e9 = 4.8 s; t_com = 10e6/2e6 = 5 s.
	d1 := it.Devices[1]
	if math.Abs(d1.TotalTime-9.8) > 1e-9 {
		t.Fatalf("device 1 total = %v", d1.TotalTime)
	}
	// Device 2: t_cmp = 10·50·8e6 / 1e9 = 4 s; t_com = 10 s ⇒ slowest, 14 s.
	d2 := it.Devices[2]
	if math.Abs(d2.TotalTime-14) > 1e-9 {
		t.Fatalf("device 2 total = %v", d2.TotalTime)
	}
	if math.Abs(it.Duration-14) > 1e-9 {
		t.Fatalf("T^k = %v, want 14", it.Duration)
	}
	// Idle time: T^k − T_i.
	if math.Abs(d0.IdleTime-(14-8.4)) > 1e-9 || math.Abs(d2.IdleTime) > 1e-12 {
		t.Fatalf("idle = %v, %v", d0.IdleTime, d2.IdleTime)
	}
	// Realized bandwidth matches the constant traces.
	if math.Abs(d0.AvgBandwidth-5e6) > 1e-3 {
		t.Fatalf("avg bw = %v", d0.AvgBandwidth)
	}
	// Cost = T + λ·ΣE with e_i = 0.
	wantE := 0.0
	for i, d := range s.Devices {
		wantE += d.ComputeEnergy(1, maxFreqs(s)[i])
	}
	if math.Abs(it.Cost-(14+wantE)) > 1e-9 {
		t.Fatalf("cost = %v, want %v", it.Cost, 14+wantE)
	}
	if Reward(it) != -it.Cost {
		t.Fatal("reward must negate cost (eq. 13)")
	}
}

func TestBarrierIsMax(t *testing.T) {
	// Property: T^k equals the max of per-device totals for random freqs.
	s := testSystem()
	f := func(a, b, c uint8) bool {
		fr := []float64{
			(0.2 + 0.8*float64(a)/255) * s.Devices[0].MaxFreqHz,
			(0.2 + 0.8*float64(b)/255) * s.Devices[1].MaxFreqHz,
			(0.2 + 0.8*float64(c)/255) * s.Devices[2].MaxFreqHz,
		}
		it, err := s.RunIteration(0, 0, fr)
		if err != nil {
			return false
		}
		want := 0.0
		for _, d := range it.Devices {
			if d.TotalTime > want {
				want = d.TotalTime
			}
		}
		return math.Abs(it.Duration-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSlowingNonCriticalDeviceKeepsDuration(t *testing.T) {
	// The paper's core insight: lowering a fast device's frequency so that
	// it still finishes before the straggler leaves T^k unchanged but cuts
	// energy.
	s := testSystem()
	base, err := s.RunIteration(0, 0, maxFreqs(s))
	if err != nil {
		t.Fatal(err)
	}
	// Device 0 finishes at 8.4 s vs barrier 14 s. Slow it so t_cmp grows by
	// ≤ the idle slack.
	fr := maxFreqs(s)
	fr[0] = fr[0] * 0.6 // t_cmp: 6.4 → 10.67, total 12.67 < 14
	slowed, err := s.RunIteration(0, 0, fr)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(slowed.Duration-base.Duration) > 1e-9 {
		t.Fatalf("duration changed: %v → %v", base.Duration, slowed.Duration)
	}
	if slowed.ComputeEnergy >= base.ComputeEnergy {
		t.Fatalf("energy did not drop: %v → %v", base.ComputeEnergy, slowed.ComputeEnergy)
	}
	if slowed.Cost >= base.Cost {
		t.Fatalf("cost did not drop: %v → %v", base.Cost, slowed.Cost)
	}
}

func TestRunIterationErrors(t *testing.T) {
	s := testSystem()
	if _, err := s.RunIteration(0, 0, []float64{1e9}); err == nil {
		t.Fatal("wrong frequency count accepted")
	}
	bad := maxFreqs(s)
	bad[0] = 0
	if _, err := s.RunIteration(0, 0, bad); err == nil {
		t.Fatal("zero frequency accepted")
	}
	bad[0] = 10 * device.GHz
	if _, err := s.RunIteration(0, 0, bad); err == nil {
		t.Fatal("over-max frequency accepted")
	}
	// Dead uplink propagates the trace error.
	s2 := testSystem()
	s2.Traces[2] = trace.MustNew("dead", 1, []float64{0})
	if _, err := s2.RunIteration(0, 0, maxFreqs(s2)); err == nil {
		t.Fatal("dead uplink should error")
	}
}

func TestSessionClockTelescopes(t *testing.T) {
	// Eq. (11): t^{k+1} = t^k + T^k, so the final clock is the start plus
	// the sum of iteration durations.
	s := testSystem()
	ses, err := NewSession(s, 100)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for k := 0; k < 5; k++ {
		it, err := ses.Step(maxFreqs(s))
		if err != nil {
			t.Fatal(err)
		}
		if it.Index != k {
			t.Fatalf("iteration index = %d want %d", it.Index, k)
		}
		sum += it.Duration
	}
	if math.Abs(ses.Clock-(100+sum)) > 1e-9 {
		t.Fatalf("clock = %v, want %v", ses.Clock, 100+sum)
	}
	if ses.K() != 5 {
		t.Fatalf("K = %d", ses.K())
	}
}

func TestSessionTotalCostAndBandwidths(t *testing.T) {
	s := testSystem()
	ses, _ := NewSession(s, 0)
	if ses.LastBandwidths() != nil {
		t.Fatal("LastBandwidths before any iteration should be nil")
	}
	var want float64
	for k := 0; k < 3; k++ {
		it, err := ses.Step(maxFreqs(s))
		if err != nil {
			t.Fatal(err)
		}
		want += it.Cost
	}
	if math.Abs(ses.TotalCost()-want) > 1e-9 {
		t.Fatalf("TotalCost = %v want %v", ses.TotalCost(), want)
	}
	bw := ses.LastBandwidths()
	if len(bw) != 3 || math.Abs(bw[0]-5e6) > 1e-3 {
		t.Fatalf("LastBandwidths = %v", bw)
	}
}

func TestNewSessionValidation(t *testing.T) {
	s := testSystem()
	if _, err := NewSession(s, -1); err == nil {
		t.Fatal("negative start accepted")
	}
	if _, err := NewSession(s, math.NaN()); err == nil {
		t.Fatal("NaN start accepted")
	}
	s.Tau = 0
	if _, err := NewSession(s, 0); err == nil {
		t.Fatal("invalid system accepted")
	}
}

func TestVaryingBandwidthAffectsComTime(t *testing.T) {
	// Uploading across a bandwidth drop takes longer than the naive
	// ξ/B(start) estimate — the continuous-time model of eq. (3).
	s := testSystem()
	s.Traces[0] = trace.MustNew("drop", 1, []float64{5e6, 5e6, 5e6, 5e6, 5e6, 5e6, 5e6, 1e5, 1e5, 1e5, 1e5, 1e5, 1e5, 1e5, 1e5, 1e5, 5e6, 5e6, 5e6, 5e6})
	it, err := s.RunIteration(0, 0, maxFreqs(s))
	if err != nil {
		t.Fatal(err)
	}
	d0 := it.Devices[0]
	// Upload starts at 6.4 s with 0.6 s of 5 MB/s (3 MB), then hits the
	// 0.1 MB/s hole: far longer than the naive 2 s.
	if d0.ComTime <= 2 {
		t.Fatalf("com time %v should exceed naive estimate through a fade", d0.ComTime)
	}
	if d0.AvgBandwidth >= 5e6 {
		t.Fatalf("avg bandwidth %v should reflect the fade", d0.AvgBandwidth)
	}
}

func TestTxEnergyAccounting(t *testing.T) {
	s := testSystem()
	for _, d := range s.Devices {
		d.TxEnergyPerSec = 0.1
	}
	it, err := s.RunIteration(0, 0, maxFreqs(s))
	if err != nil {
		t.Fatal(err)
	}
	if it.TxEnergy <= 0 {
		t.Fatal("tx energy should be positive when e_i > 0")
	}
	wantTx := 0.1 * (2 + 5 + 10.0)
	if math.Abs(it.TxEnergy-wantTx) > 1e-9 {
		t.Fatalf("tx energy = %v want %v", it.TxEnergy, wantTx)
	}
	if math.Abs(it.TotalEnergy()-(it.ComputeEnergy+it.TxEnergy)) > 1e-12 {
		t.Fatal("TotalEnergy mismatch")
	}
	if math.Abs(it.Cost-(it.Duration+s.Lambda*it.TotalEnergy())) > 1e-9 {
		t.Fatal("cost must include tx energy")
	}
}

func TestFrequencyMonotonicityProperty(t *testing.T) {
	// Raising any single device's frequency never lengthens the iteration
	// (T^k is a max of terms that are non-increasing in δ_i) and never
	// lowers the computational energy.
	s := testSystem()
	f := func(dev uint8, loFrac, hiFrac uint8) bool {
		i := int(dev) % s.N()
		lo := 0.2 + 0.7*float64(loFrac)/255
		hi := lo + (1-lo)*float64(hiFrac)/255
		base := maxFreqs(s)
		base[i] = lo * s.Devices[i].MaxFreqHz
		itLo, err := s.RunIteration(0, 0, base)
		if err != nil {
			return false
		}
		base[i] = hi * s.Devices[i].MaxFreqHz
		itHi, err := s.RunIteration(0, 0, base)
		if err != nil {
			return false
		}
		return itHi.Duration <= itLo.Duration+1e-9 &&
			itHi.ComputeEnergy >= itLo.ComputeEnergy-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestIdleTimeNonNegativeProperty(t *testing.T) {
	// Idle time T^k − T_i^k is non-negative for every device, and exactly
	// zero for at least one (the straggler).
	s := testSystem()
	f := func(a, b, c uint8) bool {
		fr := []float64{
			(0.2 + 0.8*float64(a)/255) * s.Devices[0].MaxFreqHz,
			(0.2 + 0.8*float64(b)/255) * s.Devices[1].MaxFreqHz,
			(0.2 + 0.8*float64(c)/255) * s.Devices[2].MaxFreqHz,
		}
		it, err := s.RunIteration(0, 0, fr)
		if err != nil {
			return false
		}
		zeroSeen := false
		for _, d := range it.Devices {
			if d.IdleTime < -1e-9 {
				return false
			}
			if d.IdleTime < 1e-9 {
				zeroSeen = true
			}
		}
		return zeroSeen
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
