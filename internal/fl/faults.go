package fl

import (
	"fmt"
	"math"

	"repro/internal/fault"
)

// This file grows the synchronous engine toward realistic fleets: a barrier
// deadline with partial aggregation (devices that miss the deadline are
// dropped from the round instead of holding the barrier hostage, the
// FedCS-style remedy), retry-with-backoff on blacked-out uploads, and
// composition with the seeded fault processes of internal/fault. The
// zero-valued IterOptions reproduce the paper's fault-free engine
// bit-for-bit — RunIteration is now a thin wrapper over RunIterationOpts.

// DefaultRetryBackoffSec is the wait before the first upload retry when
// IterOptions.RetryBackoffSec is left zero; each further retry doubles it.
const DefaultRetryBackoffSec = 1.0

// IterOptions extends RunIteration with fault tolerance. The zero value is
// exactly the paper's engine: no deadline, no faults, no retries.
type IterOptions struct {
	// Deadline is the barrier deadline T_max per iteration (seconds,
	// relative to the iteration start). Devices whose total time exceeds it
	// are dropped from the round: excluded from the barrier maximum, their
	// partial upload wasted. 0 disables the deadline.
	Deadline float64
	// Faults supplies the per-(iteration, device) fault states. nil means
	// fault-free.
	Faults *fault.Schedule
	// RetryBackoffSec is the wait before the first retry of a blacked-out
	// upload; retry r waits RetryBackoffSec·2^r. 0 selects
	// DefaultRetryBackoffSec (only relevant when a fault schedule injects
	// upload failures).
	RetryBackoffSec float64
}

// Validate checks the options against a system.
func (o IterOptions) Validate(s *System) error {
	if o.Deadline < 0 || math.IsNaN(o.Deadline) || math.IsInf(o.Deadline, 0) {
		return fmt.Errorf("fl: invalid deadline %v", o.Deadline)
	}
	if o.RetryBackoffSec < 0 || math.IsNaN(o.RetryBackoffSec) || math.IsInf(o.RetryBackoffSec, 0) {
		return fmt.Errorf("fl: invalid retry backoff %v", o.RetryBackoffSec)
	}
	if o.Faults != nil && o.Faults.N() != s.N() {
		return fmt.Errorf("fl: fault schedule for %d devices, system has %d", o.Faults.N(), s.N())
	}
	if o.Faults != nil && o.Faults.Config().CrashProb > 0 && o.Deadline == 0 {
		// Without a deadline an all-down iteration has no defined duration;
		// crashes therefore require partial aggregation to be enabled.
		return fmt.Errorf("fl: device crashes require a barrier deadline")
	}
	return nil
}

// backoff resolves the retry backoff default.
func (o IterOptions) backoff() float64 {
	if o.RetryBackoffSec > 0 {
		return o.RetryBackoffSec
	}
	return DefaultRetryBackoffSec
}

// retryWait returns the total wait accumulated by `failed` consecutive
// blacked-out upload attempts: Σ_{r<failed} backoff·2^r.
func (o IterOptions) retryWait(failed int) float64 {
	var wait float64
	b := o.backoff()
	for r := 0; r < failed; r++ {
		wait += b
		b *= 2
	}
	return wait
}

// RunIterationOpts simulates iteration k starting at startTime with the
// given per-device frequencies under the fault-tolerance options. With the
// zero IterOptions it is bit-identical to the original RunIteration.
//
// Semantics under faults:
//   - A Down device sits the round out: zero stats, Down marked, no energy.
//   - FailedUploads delay a device's upload start by the exponential-backoff
//     wait; the blacked-out attempts transmit nothing and burn no tx energy.
//   - ComputeMult > 1 stretches both compute time and compute energy
//     (a straggler spike scales the workload τ·c·D).
//   - With Deadline > 0, devices whose TotalTime exceeds it are Dropped:
//     excluded from the barrier maximum, compute energy fully charged
//     (the local training ran), tx energy charged only for the transmission
//     time that fit before the deadline, AvgBandwidth measured over that
//     window. The paper's cost (eq. 9) keeps charging their wasted energy.
//   - An iteration with zero survivors lasts exactly Deadline.
func (s *System) RunIterationOpts(k int, startTime float64, freqs []float64, opts IterOptions) (IterationStats, error) {
	return s.RunIterationOptsInto(k, startTime, freqs, opts, nil)
}

// RunIterationOptsInto is RunIterationOpts writing the per-device stats into
// a caller-provided buffer: devs is resliced to N() entries (reallocated
// only when its capacity is short) and the returned IterationStats.Devices
// aliases it. With an adequate buffer the engine performs no allocation —
// the zero-allocation contract of the simulation hot path (DESIGN.md §10).
// Callers that retain iteration stats across calls (e.g. a session history)
// must keep passing nil.
func (s *System) RunIterationOptsInto(k int, startTime float64, freqs []float64, opts IterOptions, devs []DeviceIterStats) (IterationStats, error) {
	if err := s.Validate(); err != nil {
		return IterationStats{}, err
	}
	if err := opts.Validate(s); err != nil {
		return IterationStats{}, err
	}
	if len(freqs) != s.N() {
		return IterationStats{}, fmt.Errorf("fl: %d frequencies for %d devices", len(freqs), s.N())
	}
	if cap(devs) < s.N() {
		devs = make([]DeviceIterStats, s.N())
	} else {
		devs = devs[:s.N()]
	}
	it := IterationStats{
		Index:     k,
		StartTime: startTime,
		Devices:   devs,
	}
	for i, d := range s.Devices {
		var df fault.DeviceFault
		if opts.Faults != nil {
			df = opts.Faults.At(k, i)
		}
		if df.Down {
			// Crashed for the whole iteration: contributes nothing, costs
			// nothing; IdleTime is set to the round duration below.
			it.Devices[i] = DeviceIterStats{Down: true}
			it.Down++
			continue
		}
		f := freqs[i]
		// !(f > 0) rather than f <= 0: NaN fails both orderings, and a NaN
		// frequency must be rejected here, not propagated into the timing
		// model (+Inf is caught by the upper bound).
		if !(f > 0) || f > d.MaxFreqHz*(1+1e-9) {
			return IterationStats{}, fmt.Errorf("fl: device %d frequency %v outside (0, %v]", i, f, d.MaxFreqHz)
		}
		tcmp := d.ComputeTime(s.Tau, f)
		computeE := d.ComputeEnergy(s.Tau, f)
		if df.ComputeMult > 1 {
			tcmp *= df.ComputeMult
			computeE *= df.ComputeMult
		}
		wait := 0.0
		if df.FailedUploads > 0 {
			wait = opts.retryWait(df.FailedUploads)
		}
		upStart := startTime + tcmp + wait
		upEnd, err := s.Traces[i].UploadFinish(upStart, s.ModelBytes)
		if err != nil {
			return IterationStats{}, fmt.Errorf("fl: device %d upload: %w", i, err)
		}
		tcom := upEnd - upStart
		var avgBW float64
		if tcom > 0 {
			avgBW = s.ModelBytes / tcom
		} else {
			avgBW = s.Traces[i].At(upStart)
		}
		ds := DeviceIterStats{
			FreqHz:        f,
			ComputeTime:   tcmp,
			ComTime:       tcom,
			TotalTime:     tcmp + wait + tcom,
			AvgBandwidth:  avgBW,
			ComputeEnergy: computeE,
			TxEnergy:      d.TxEnergy(tcom),
			Retries:       df.FailedUploads,
		}
		if opts.Deadline > 0 && ds.TotalTime > opts.Deadline {
			// Missed the barrier deadline: drop from the round. The local
			// computation ran in full (energy spent); the upload is cut off
			// at the deadline — account only the transmission that happened.
			ds.Dropped = true
			txTime := opts.Deadline - (tcmp + wait)
			if txTime < 0 {
				txTime = 0
			}
			if txTime > tcom {
				txTime = tcom
			}
			ds.ComTime = txTime
			ds.TotalTime = opts.Deadline
			ds.TxEnergy = d.TxEnergy(txTime)
			if txTime > 0 {
				ds.AvgBandwidth = s.Traces[i].Integrate(upStart, upStart+txTime) / txTime
			} else {
				ds.AvgBandwidth = 0
			}
			it.Dropped++
		}
		it.Devices[i] = ds
		it.ComputeEnergy += ds.ComputeEnergy
		it.TxEnergy += ds.TxEnergy
		if !ds.Dropped && ds.TotalTime > it.Duration {
			it.Duration = ds.TotalTime
		}
	}
	it.Survivors = s.N() - it.Down - it.Dropped
	if it.Survivors == 0 {
		if opts.Deadline == 0 {
			return IterationStats{}, fmt.Errorf("fl: no live devices in iteration %d", k)
		}
		// The server waits out the full deadline before giving up on the
		// round; eq. (11) still advances the wall clock.
		it.Duration = opts.Deadline
	}
	for i := range it.Devices {
		it.Devices[i].IdleTime = it.Duration - it.Devices[i].TotalTime
	}
	it.Cost = it.Duration + s.Lambda*it.TotalEnergy()
	return it, nil
}

// StepOpts runs the next iteration under the given options and advances the
// session clock. Step is equivalent to StepOpts with the session's Opts.
func (ses *Session) StepOpts(freqs []float64, opts IterOptions) (IterationStats, error) {
	it, err := ses.Sys.RunIterationOpts(ses.steps, ses.Clock, freqs, opts)
	if err != nil {
		return IterationStats{}, err
	}
	ses.Clock += it.Duration
	ses.History = append(ses.History, it)
	ses.steps++
	return it, nil
}
