package fl

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/testutil"
)

// Zero options must reproduce the fault-free engine bit-for-bit — the
// contract that lets RunIteration delegate to RunIterationOpts.
func TestZeroOptsBitIdentical(t *testing.T) {
	s := testSystem()
	fs := maxFreqs(s)
	plain, err := s.RunIteration(3, 17.25, fs)
	if err != nil {
		t.Fatal(err)
	}
	opted, err := s.RunIterationOpts(3, 17.25, fs, IterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, opted) {
		t.Fatalf("zero IterOptions diverge:\nplain %+v\nopts  %+v", plain, opted)
	}
	if plain.Survivors != s.N() || plain.Dropped != 0 || plain.Down != 0 {
		t.Fatalf("fault-free accounting wrong: %+v", plain)
	}
}

func TestDeadlineDropsStraggler(t *testing.T) {
	s := testSystem() // totals at max freq: 8.4, 9.8, 14 s
	fs := maxFreqs(s)
	for _, d := range s.Devices {
		d.TxEnergyPerSec = 0.1
	}
	it, err := s.RunIterationOpts(0, 0, fs, IterOptions{Deadline: 10})
	if err != nil {
		t.Fatal(err)
	}
	if it.Survivors != 2 || it.Dropped != 1 || it.Down != 0 {
		t.Fatalf("accounting: %+v", it)
	}
	if !it.Devices[2].Dropped || it.Devices[0].Dropped || it.Devices[1].Dropped {
		t.Fatalf("wrong device dropped: %+v", it.Devices)
	}
	// Barrier ranges over survivors only: Duration = max(8.4, 9.8).
	testutil.AssertWithin(t, "duration", it.Duration, 9.8, 1e-9)
	d2 := it.Devices[2]
	// Device 2 computed for 4 s, then transmitted until the 10 s deadline:
	// 6 s of its 10 s upload at 1 MB/s.
	testutil.AssertWithin(t, "dropped ComTime", d2.ComTime, 6, 1e-9)
	testutil.AssertWithin(t, "dropped TotalTime", d2.TotalTime, 10, 1e-9)
	testutil.AssertWithin(t, "dropped TxEnergy", d2.TxEnergy, 0.6, 1e-9)
	testutil.AssertWithin(t, "dropped AvgBandwidth", d2.AvgBandwidth, 1e6, 1e-3)
	// The wasted local computation is still charged in full.
	full, err := s.RunIteration(0, 0, fs)
	if err != nil {
		t.Fatal(err)
	}
	testutil.AssertWithin(t, "dropped ComputeEnergy",
		d2.ComputeEnergy, full.Devices[2].ComputeEnergy, 0)
	if it.Cost <= it.Duration {
		t.Fatal("cost must include energy")
	}
}

func TestDeadlineGenerousKeepsEveryone(t *testing.T) {
	s := testSystem()
	fs := maxFreqs(s)
	it, err := s.RunIterationOpts(0, 0, fs, IterOptions{Deadline: 100})
	if err != nil {
		t.Fatal(err)
	}
	full, err := s.RunIteration(0, 0, fs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(it, full) {
		t.Fatalf("generous deadline changed outcome:\nwith %+v\nwithout %+v", it, full)
	}
}

func TestAllCrashedRoundLastsDeadline(t *testing.T) {
	s := testSystem()
	fs := maxFreqs(s)
	// CrashProb 1: every device crashes entering iteration 1 (uniforms are
	// strictly below 1) regardless of seed.
	sched := fault.MustNewSchedule(fault.Config{CrashProb: 1, RejoinProb: 0.5}, s.N(), 7)
	opts := IterOptions{Deadline: 12, Faults: sched}
	it, err := s.RunIterationOpts(1, 0, fs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if it.Survivors != 0 || it.Down != s.N() {
		t.Fatalf("expected all down: %+v", it)
	}
	testutil.AssertWithin(t, "duration", it.Duration, 12, 0)
	if it.TotalEnergy() != 0 {
		t.Fatalf("crashed fleet burned energy: %v", it.TotalEnergy())
	}
	testutil.AssertWithin(t, "cost", it.Cost, 12, 0)
	for i, ds := range it.Devices {
		if !ds.Down || ds.ComputeTime != 0 || ds.TotalTime != 0 {
			t.Fatalf("device %d stats not zeroed: %+v", i, ds)
		}
		testutil.AssertWithin(t, "idle", ds.IdleTime, 12, 0)
	}
}

func TestStragglerSpikeStretchesComputeAndEnergy(t *testing.T) {
	s := testSystem()
	fs := maxFreqs(s)
	// StragglerProb 1 spikes every device every iteration at the default ×4.
	sched := fault.MustNewSchedule(fault.Config{StragglerProb: 1}, s.N(), 3)
	it, err := s.RunIterationOpts(0, 0, fs, IterOptions{Faults: sched})
	if err != nil {
		t.Fatal(err)
	}
	base, err := s.RunIteration(0, 0, fs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range it.Devices {
		testutil.AssertClose(t, "spiked compute time",
			it.Devices[i].ComputeTime, 4*base.Devices[i].ComputeTime, 1e-12, 0)
		testutil.AssertClose(t, "spiked compute energy",
			it.Devices[i].ComputeEnergy, 4*base.Devices[i].ComputeEnergy, 1e-12, 0)
		// Constant traces: the upload itself is unchanged.
		testutil.AssertClose(t, "com time",
			it.Devices[i].ComTime, base.Devices[i].ComTime, 1e-12, 0)
	}
	if it.Survivors != s.N() {
		t.Fatalf("stragglers are not casualties: %+v", it)
	}
}

func TestBlackoutRetriesDelayUpload(t *testing.T) {
	s := testSystem()
	fs := maxFreqs(s)
	cfg := fault.Config{BlackoutProb: 0.9, MaxRetries: 2}
	sched := fault.MustNewSchedule(cfg, s.N(), 5)
	// Find an iteration where device 0 fails both attempts.
	k := -1
	for q := 0; q < 200; q++ {
		if sched.At(q, 0).FailedUploads == 2 {
			k = q
			break
		}
	}
	if k < 0 {
		t.Fatal("no double blackout in 200 iterations at p=0.9")
	}
	it, err := s.RunIterationOpts(k, 0, fs, IterOptions{Faults: sched, RetryBackoffSec: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	base, err := s.RunIteration(k, 0, fs)
	if err != nil {
		t.Fatal(err)
	}
	// Two failed attempts wait 0.5 + 1.0 = 1.5 s; constant trace keeps tcom
	// unchanged, so the device's round stretches by exactly the backoff.
	d0, b0 := it.Devices[0], base.Devices[0]
	if d0.Retries != 2 {
		t.Fatalf("retries = %d", d0.Retries)
	}
	testutil.AssertWithin(t, "delayed total", d0.TotalTime, b0.TotalTime+1.5, 1e-9)
	testutil.AssertWithin(t, "tx energy unchanged", d0.TxEnergy, b0.TxEnergy, 1e-12)
}

func TestDefaultBackoffApplied(t *testing.T) {
	var o IterOptions
	if got := o.retryWait(3); math.Abs(got-(1+2+4)) > 1e-12 {
		t.Fatalf("default backoff wait = %v, want 7", got)
	}
	o.RetryBackoffSec = 2
	if got := o.retryWait(2); math.Abs(got-(2+4)) > 1e-12 {
		t.Fatalf("custom backoff wait = %v, want 6", got)
	}
	if o.retryWait(0) != 0 {
		t.Fatal("zero failures must wait zero")
	}
}

func TestIterOptionsValidate(t *testing.T) {
	s := testSystem()
	fs := maxFreqs(s)
	bad := []IterOptions{
		{Deadline: -1},
		{Deadline: math.NaN()},
		{RetryBackoffSec: -0.1},
		{Faults: fault.MustNewSchedule(fault.Config{}, 5, 1)},                                // wrong fleet size
		{Faults: fault.MustNewSchedule(fault.Config{CrashProb: 0.5, RejoinProb: 0.5}, 3, 1)}, // crashes need deadline
	}
	for i, o := range bad {
		if _, err := s.RunIterationOpts(0, 0, fs, o); err == nil {
			t.Errorf("case %d: invalid options accepted: %+v", i, o)
		}
	}
}

// Same fault seed must yield the same faulty trajectory — costs, survivor
// sets, clock — across independent sessions.
func TestFaultySessionDeterminism(t *testing.T) {
	run := func() []IterationStats {
		s := testSystem()
		sched := fault.MustNewSchedule(fault.Config{
			CrashProb: 0.2, RejoinProb: 0.5, BlackoutProb: 0.3, StragglerProb: 0.2,
		}, s.N(), 99)
		ses, err := NewSession(s, 0)
		if err != nil {
			t.Fatal(err)
		}
		ses.Opts = IterOptions{Deadline: 30, Faults: sched}
		for k := 0; k < 40; k++ {
			if _, err := ses.Step(maxFreqs(s)); err != nil {
				t.Fatal(err)
			}
		}
		return ses.History
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical fault seeds produced different trajectories")
	}
	// The fault processes must actually have fired over 40 iterations.
	var down, dropped, retried int
	for _, it := range a {
		down += it.Down
		dropped += it.Dropped
		for _, ds := range it.Devices {
			retried += ds.Retries
		}
	}
	if down == 0 || retried == 0 {
		t.Fatalf("fault schedule inert: down=%d dropped=%d retried=%d", down, dropped, retried)
	}
}

func TestSessionOptsAdvanceClock(t *testing.T) {
	s := testSystem()
	ses, err := NewSession(s, 5)
	if err != nil {
		t.Fatal(err)
	}
	ses.Opts = IterOptions{Deadline: 10}
	it, err := ses.Step(maxFreqs(s))
	if err != nil {
		t.Fatal(err)
	}
	testutil.AssertWithin(t, "clock", ses.Clock, 5+it.Duration, 0)
	if it.Dropped != 1 { // device 2 needs 14 s
		t.Fatalf("deadline not applied through session: %+v", it)
	}
}
