package stats

import (
	"fmt"
	"math/rand"
	"sort"
)

// CI is a two-sided confidence interval for a statistic.
type CI struct {
	// Point is the statistic on the original sample.
	Point float64
	// Lo and Hi bound the interval.
	Lo, Hi float64
	// Level is the nominal coverage (e.g. 0.95).
	Level float64
}

// String renders the interval compactly.
func (c CI) String() string {
	return fmt.Sprintf("%.4g [%.4g, %.4g]@%g", c.Point, c.Lo, c.Hi, c.Level)
}

// Contains reports whether x lies inside the interval.
func (c CI) Contains(x float64) bool { return x >= c.Lo && x <= c.Hi }

// BootstrapMean computes a percentile-bootstrap confidence interval for the
// mean of xs with the given resample count and level, seeded for
// reproducibility. It panics on an empty sample, bad level or resamples < 1.
func BootstrapMean(xs []float64, resamples int, level float64, seed int64) CI {
	return Bootstrap(xs, Mean, resamples, level, seed)
}

// Bootstrap computes a percentile-bootstrap confidence interval for an
// arbitrary statistic.
func Bootstrap(xs []float64, stat func([]float64) float64, resamples int, level float64, seed int64) CI {
	if len(xs) == 0 {
		panic("stats: Bootstrap of empty sample")
	}
	if resamples < 1 {
		panic(fmt.Sprintf("stats: resamples %d < 1", resamples))
	}
	if level <= 0 || level >= 1 {
		panic(fmt.Sprintf("stats: confidence level %v outside (0,1)", level))
	}
	if stat == nil {
		panic("stats: nil statistic")
	}
	rng := rand.New(rand.NewSource(seed))
	points := make([]float64, resamples)
	resample := make([]float64, len(xs))
	for r := 0; r < resamples; r++ {
		for i := range resample {
			resample[i] = xs[rng.Intn(len(xs))]
		}
		points[r] = stat(resample)
	}
	sort.Float64s(points)
	alpha := (1 - level) / 2
	lo := points[clampIndex(int(alpha*float64(resamples)), resamples)]
	hi := points[clampIndex(int((1-alpha)*float64(resamples)), resamples)]
	return CI{Point: stat(xs), Lo: lo, Hi: hi, Level: level}
}

func clampIndex(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// MeanDiffCI bootstraps a confidence interval on mean(a) − mean(b) for two
// independent samples — the right tool for "is scheduler X really cheaper
// than Y" questions on pooled per-iteration costs.
func MeanDiffCI(a, b []float64, resamples int, level float64, seed int64) CI {
	if len(a) == 0 || len(b) == 0 {
		panic("stats: MeanDiffCI with empty sample")
	}
	if resamples < 1 {
		panic(fmt.Sprintf("stats: resamples %d < 1", resamples))
	}
	if level <= 0 || level >= 1 {
		panic(fmt.Sprintf("stats: confidence level %v outside (0,1)", level))
	}
	rng := rand.New(rand.NewSource(seed))
	points := make([]float64, resamples)
	ra := make([]float64, len(a))
	rb := make([]float64, len(b))
	for r := 0; r < resamples; r++ {
		for i := range ra {
			ra[i] = a[rng.Intn(len(a))]
		}
		for i := range rb {
			rb[i] = b[rng.Intn(len(b))]
		}
		points[r] = Mean(ra) - Mean(rb)
	}
	sort.Float64s(points)
	alpha := (1 - level) / 2
	lo := points[clampIndex(int(alpha*float64(resamples)), resamples)]
	hi := points[clampIndex(int((1-alpha)*float64(resamples)), resamples)]
	return CI{Point: Mean(a) - Mean(b), Lo: lo, Hi: hi, Level: level}
}
