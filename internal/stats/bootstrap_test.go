package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestBootstrapMeanBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = 5 + rng.NormFloat64()
	}
	ci := BootstrapMean(xs, 500, 0.95, 7)
	if !ci.Contains(ci.Point) {
		t.Fatalf("interval excludes its own point: %v", ci)
	}
	if math.Abs(ci.Point-Mean(xs)) > 1e-12 {
		t.Fatalf("point %v != sample mean %v", ci.Point, Mean(xs))
	}
	// The true mean (5) should almost surely be inside a 95% interval of a
	// 200-sample unit-variance draw.
	if !ci.Contains(5) {
		t.Fatalf("true mean outside CI: %v", ci)
	}
	// Interval width scales like 2·1.96/√n ≈ 0.28.
	if w := ci.Hi - ci.Lo; w < 0.1 || w > 0.6 {
		t.Fatalf("implausible CI width %v", w)
	}
	if ci.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestBootstrapDeterministicUnderSeed(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	a := BootstrapMean(xs, 200, 0.9, 42)
	b := BootstrapMean(xs, 200, 0.9, 42)
	if a != b {
		t.Fatalf("same seed gave %v vs %v", a, b)
	}
	c := BootstrapMean(xs, 200, 0.9, 43)
	if a.Lo == c.Lo && a.Hi == c.Hi {
		t.Fatal("different seed should perturb the interval")
	}
}

func TestBootstrapHigherLevelWider(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 60)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 3
	}
	narrow := BootstrapMean(xs, 800, 0.8, 1)
	wide := BootstrapMean(xs, 800, 0.99, 1)
	if wide.Hi-wide.Lo <= narrow.Hi-narrow.Lo {
		t.Fatalf("99%% interval %v not wider than 80%% %v", wide, narrow)
	}
}

func TestBootstrapPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"empty":     func() { BootstrapMean(nil, 100, 0.95, 1) },
		"resamples": func() { BootstrapMean([]float64{1}, 0, 0.95, 1) },
		"level lo":  func() { BootstrapMean([]float64{1}, 100, 0, 1) },
		"level hi":  func() { BootstrapMean([]float64{1}, 100, 1, 1) },
		"nil stat":  func() { Bootstrap([]float64{1}, nil, 100, 0.9, 1) },
		"diff a":    func() { MeanDiffCI(nil, []float64{1}, 100, 0.9, 1) },
		"diff b":    func() { MeanDiffCI([]float64{1}, nil, 100, 0.9, 1) },
		"diff r":    func() { MeanDiffCI([]float64{1}, []float64{1}, 0, 0.9, 1) },
		"diff lvl":  func() { MeanDiffCI([]float64{1}, []float64{1}, 10, 2, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestMeanDiffCIDetectsSeparation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := make([]float64, 150)
	b := make([]float64, 150)
	for i := range a {
		a[i] = 10 + rng.NormFloat64()
		b[i] = 7 + rng.NormFloat64()
	}
	ci := MeanDiffCI(a, b, 600, 0.95, 5)
	if ci.Lo <= 0 {
		t.Fatalf("clearly separated means but CI includes 0: %v", ci)
	}
	if !ci.Contains(3) {
		t.Fatalf("true difference 3 outside CI %v", ci)
	}
	// Identical distributions: CI should straddle 0.
	same := MeanDiffCI(a, a, 600, 0.95, 6)
	if !same.Contains(0) {
		t.Fatalf("self-difference CI excludes 0: %v", same)
	}
}

func TestBootstrapCustomStatistic(t *testing.T) {
	xs := []float64{1, 2, 3, 100} // median robust to the outlier
	med := func(v []float64) float64 { return Percentile(v, 50) }
	ci := Bootstrap(xs, med, 400, 0.9, 9)
	if ci.Point != 2.5 {
		t.Fatalf("median point = %v", ci.Point)
	}
	if ci.Hi > 100 && ci.Lo > 3 {
		t.Fatalf("median CI blew up: %v", ci)
	}
}
