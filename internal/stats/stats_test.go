package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Min != 2 || s.Max != 9 {
		t.Fatalf("summary = %+v", s)
	}
	if !approx(s.Mean, 5, 1e-12) || !approx(s.Std, 2, 1e-12) {
		t.Fatalf("mean/std = %v/%v", s.Mean, s.Std)
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.Std != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
}

func TestMeanStdAgreeWithNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		var sum float64
		for _, x := range xs {
			sum += x
		}
		naiveMean := sum / float64(n)
		var sq float64
		for _, x := range xs {
			sq += (x - naiveMean) * (x - naiveMean)
		}
		naiveStd := math.Sqrt(sq / float64(n))
		return approx(Mean(xs), naiveMean, 1e-9) && approx(Std(xs), naiveStd, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 50}, {50, 30}, {25, 20}, {75, 40}, {12.5, 15},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !approx(got, c.want, 1e-12) {
			t.Errorf("P%v = %v want %v", c.p, got, c.want)
		}
	}
	if Percentile([]float64{7}, 50) != 7 {
		t.Fatal("single-element percentile")
	}
}

func TestPercentilePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"empty":   func() { Percentile(nil, 50) },
		"p < 0":   func() { Percentile([]float64{1}, -1) },
		"p > 100": func() { Percentile([]float64{1}, 101) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	}
	for _, cse := range cases {
		if got := c.At(cse.x); !approx(got, cse.want, 1e-12) {
			t.Errorf("F(%v) = %v want %v", cse.x, got, cse.want)
		}
	}
	if got := c.Quantile(0.5); got != 2 {
		t.Fatalf("Q(0.5) = %v", got)
	}
	if got := c.Quantile(1); got != 3 {
		t.Fatalf("Q(1) = %v", got)
	}
	if got := c.Quantile(0.01); got != 1 {
		t.Fatalf("Q(0.01) = %v", got)
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+rng.Intn(40))
		for i := range xs {
			xs[i] = rng.NormFloat64() * 5
		}
		c := NewCDF(xs)
		prev := -0.1
		for q := -6.0; q <= 6.0; q += 0.37 {
			v := c.At(q)
			if v < prev-1e-12 || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return c.At(math.Inf(1)) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCDFQuantileInverse(t *testing.T) {
	// F(Q(q)) ≥ q for all sample-achievable q.
	rng := rand.New(rand.NewSource(12))
	xs := make([]float64, 31)
	for i := range xs {
		xs[i] = rng.Float64() * 100
	}
	c := NewCDF(xs)
	for q := 0.05; q <= 1.0; q += 0.05 {
		if c.At(c.Quantile(q)) < q-1e-12 {
			t.Fatalf("F(Q(%v)) = %v < q", q, c.At(c.Quantile(q)))
		}
	}
}

func TestCDFEdge(t *testing.T) {
	empty := NewCDF(nil)
	if empty.At(3) != 0 {
		t.Fatal("empty CDF At should be 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Quantile on empty CDF should panic")
		}
	}()
	empty.Quantile(0.5)
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{0, 1, 2, 3, 4})
	xs, fs := c.Points(5)
	if len(xs) != 5 || len(fs) != 5 {
		t.Fatalf("points = %v %v", xs, fs)
	}
	if xs[0] != 0 || xs[4] != 4 || fs[4] != 1 {
		t.Fatalf("points span wrong: %v %v", xs, fs)
	}
	if !sort.Float64sAreSorted(fs) {
		t.Fatal("CDF points not monotone")
	}
	if x, f := NewCDF([]float64{5}).Points(3); len(x) != 3 || f[0] != 1 || x[2] != 5 {
		t.Fatalf("degenerate points = %v %v", x, f)
	}
	if x, _ := c.Points(0); x != nil {
		t.Fatal("n=0 should yield nil")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	if h.Total != 10 {
		t.Fatalf("total = %d", h.Total)
	}
	for i, c := range h.Counts {
		if c != 2 {
			t.Fatalf("bin %d = %d want 2", i, c)
		}
	}
	// Constant sample lands everything in bin 0.
	hc := NewHistogram([]float64{3, 3, 3}, 4)
	if hc.Counts[0] != 3 {
		t.Fatalf("constant histogram = %v", hc.Counts)
	}
	he := NewHistogram(nil, 3)
	if he.Total != 0 {
		t.Fatal("empty histogram total")
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bins <= 0 should panic")
		}
	}()
	NewHistogram([]float64{1}, 0)
}

func TestRunningMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	xs := make([]float64, 200)
	var r Running
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 1
		r.Add(xs[i])
	}
	s := Summarize(xs)
	if r.N() != s.N || !approx(r.Mean(), s.Mean, 1e-9) || !approx(r.Std(), s.Std, 1e-9) {
		t.Fatalf("running %v/%v vs batch %v/%v", r.Mean(), r.Std(), s.Mean, s.Std)
	}
	if !approx(r.Min(), s.Min, 0) || !approx(r.Max(), s.Max, 0) {
		t.Fatalf("running min/max %v/%v", r.Min(), r.Max())
	}
}

func TestRunningEdge(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Std() != 0 || r.N() != 0 {
		t.Fatal("fresh Running not zero")
	}
	r.Add(5)
	if r.Var() != 0 {
		t.Fatal("single-sample variance should be 0")
	}
}

func TestMovingAverage(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ma := MovingAverage(xs, 2)
	want := []float64{1, 1.5, 2.5, 3.5, 4.5}
	for i := range want {
		if !approx(ma[i], want[i], 1e-12) {
			t.Fatalf("MA = %v want %v", ma, want)
		}
	}
	cp := MovingAverage(xs, 1)
	for i := range xs {
		if cp[i] != xs[i] {
			t.Fatal("width 1 should copy")
		}
	}
	if len(MovingAverage(nil, 3)) != 0 {
		t.Fatal("empty input")
	}
}
