// Package stats provides the descriptive statistics used by the evaluation
// harness: summary moments, percentiles, empirical CDFs (the paper's
// Fig. 7(d)–(f)), histograms and running accumulators.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the basic descriptive statistics of a sample.
type Summary struct {
	N                   int
	Min, Max, Mean, Std float64
}

// Summarize computes the summary of xs; an empty sample yields a zero value.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	s.Min, s.Max = math.Inf(1), math.Inf(-1)
	var sum float64
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		sum += x
	}
	s.Mean = sum / float64(len(xs))
	var sq float64
	for _, x := range xs {
		d := x - s.Mean
		sq += d * d
	}
	s.Std = math.Sqrt(sq / float64(len(xs)))
	return s
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.4g max=%.4g mean=%.4g std=%.4g", s.N, s.Min, s.Max, s.Mean, s.Std)
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) float64 { return Summarize(xs).Std }

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between order statistics. It panics on an empty sample or
// out-of-range p.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty sample")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of [0,100]", p))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CDF is an empirical cumulative distribution function.
type CDF struct {
	// Xs are the sorted sample values.
	Xs []float64
}

// NewCDF builds an empirical CDF from a sample.
func NewCDF(xs []float64) *CDF {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return &CDF{Xs: sorted}
}

// At returns P(X ≤ x) ∈ [0, 1].
func (c *CDF) At(x float64) float64 {
	if len(c.Xs) == 0 {
		return 0
	}
	// Count of values ≤ x via binary search for the first value > x.
	idx := sort.SearchFloat64s(c.Xs, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(c.Xs))
}

// Quantile returns the smallest sample value v with P(X ≤ v) ≥ q, for
// q ∈ (0, 1]. It panics on an empty CDF or out-of-range q.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.Xs) == 0 {
		panic("stats: Quantile of empty CDF")
	}
	if q <= 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v out of (0,1]", q))
	}
	idx := int(math.Ceil(q*float64(len(c.Xs)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(c.Xs) {
		idx = len(c.Xs) - 1
	}
	return c.Xs[idx]
}

// Points returns n evenly spaced (x, F(x)) pairs spanning the sample range,
// suitable for plotting a CDF curve like Fig. 7(d)–(f).
func (c *CDF) Points(n int) (xs, fs []float64) {
	if len(c.Xs) == 0 || n <= 0 {
		return nil, nil
	}
	lo, hi := c.Xs[0], c.Xs[len(c.Xs)-1]
	xs = make([]float64, n)
	fs = make([]float64, n)
	if n == 1 || lo == hi {
		// Degenerate range: report the single value at F=1 across the
		// requested width so aligned CSV exports keep their shape.
		for i := range xs {
			xs[i] = hi
			fs[i] = 1
		}
		return xs, fs
	}
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		xs[i] = x
		fs[i] = c.At(x)
	}
	return xs, fs
}

// Histogram counts samples into equal-width bins over [min, max].
type Histogram struct {
	Min, Max float64
	Counts   []int
	Total    int
}

// NewHistogram bins xs into `bins` equal-width buckets spanning the sample
// range. It panics if bins ≤ 0.
func NewHistogram(xs []float64, bins int) *Histogram {
	if bins <= 0 {
		panic("stats: non-positive bin count")
	}
	h := &Histogram{Counts: make([]int, bins)}
	if len(xs) == 0 {
		return h
	}
	s := Summarize(xs)
	h.Min, h.Max = s.Min, s.Max
	width := (h.Max - h.Min) / float64(bins)
	for _, x := range xs {
		var idx int
		if width > 0 {
			idx = int((x - h.Min) / width)
		}
		if idx >= bins {
			idx = bins - 1
		}
		if idx < 0 {
			idx = 0
		}
		h.Counts[idx]++
		h.Total++
	}
	return h
}

// Running accumulates streaming mean/variance via Welford's algorithm.
type Running struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (r *Running) Add(x float64) {
	if r.n == 0 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of observations.
func (r *Running) N() int { return r.n }

// Mean returns the running mean (0 when empty).
func (r *Running) Mean() float64 { return r.mean }

// Var returns the running population variance (0 when n < 2).
func (r *Running) Var() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n)
}

// Std returns the running population standard deviation.
func (r *Running) Std() float64 { return math.Sqrt(r.Var()) }

// Min returns the smallest observation (0 when empty).
func (r *Running) Min() float64 { return r.min }

// Max returns the largest observation (0 when empty).
func (r *Running) Max() float64 { return r.max }

// MovingAverage smooths a series with a trailing window of the given width,
// used for the Fig. 6 convergence curves. Width ≤ 1 returns a copy.
func MovingAverage(xs []float64, width int) []float64 {
	out := make([]float64, len(xs))
	if width <= 1 {
		copy(out, xs)
		return out
	}
	var sum float64
	for i, x := range xs {
		sum += x
		if i >= width {
			sum -= xs[i-width]
			out[i] = sum / float64(width)
		} else {
			out[i] = sum / float64(i+1)
		}
	}
	return out
}
