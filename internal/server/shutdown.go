package server

import (
	"os"
	"os/signal"
	"sync"
	"syscall"
)

// OnSignal installs the repo-wide termination handler shared by every
// binary: fn runs once, in its own goroutine, on the first SIGINT or
// SIGTERM, giving the process a chance to flush audit logs, checkpoints
// and partial output before exiting. A second signal force-exits with
// status 1, so a hung cleanup can always be escaped interactively.
//
// The returned stop function uninstalls the handler (idempotent); call it
// once the state fn protects no longer needs flushing.
func OnSignal(fn func(sig os.Signal)) (stop func()) {
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		select {
		case sig := <-ch:
			go fn(sig)
			select {
			case <-ch:
				os.Exit(1)
			case <-done:
			}
		case <-done:
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			signal.Stop(ch)
			close(done)
		})
	}
}
