package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// Wire-format bounds. Requests beyond them are rejected before any work is
// queued, so a malformed or hostile client cannot balloon server memory.
const (
	// MaxRequestBytes bounds a request body.
	MaxRequestBytes = 1 << 20
	// MaxTenantName bounds tenant identifiers.
	MaxTenantName = 128
	// MaxTenantDevices bounds a tenant's fleet size.
	MaxTenantDevices = 4096
)

// DecideRequest asks for one frequency-plan decision.
type DecideRequest struct {
	// Tenant names the registered tenant whose plan is requested.
	Tenant string `json:"tenant"`
	// Clock optionally pins the wall-clock time t^k the plan is priced
	// at; omitted, the tenant's internal clock advances by its tick.
	Clock *float64 `json:"clock,omitempty"`
	// LastBW optionally reports the bandwidths realized since the last
	// decision (one per device, or empty for none).
	LastBW []float64 `json:"last_bw,omitempty"`
	// Down optionally marks crashed devices (one per device).
	Down []bool `json:"down,omitempty"`
	// DeadlineMS is the client's end-to-end budget in milliseconds; the
	// daemon sheds the request up front when the expected queue wait
	// already exceeds it. 0 selects the server default.
	DeadlineMS float64 `json:"deadline_ms,omitempty"`
	// ObservedCost optionally closes the loop on the tenant's previous
	// decision: the realized iteration cost is fed to the guard's
	// cost-regression breaker before this decision is made.
	ObservedCost *float64 `json:"observed_cost,omitempty"`
	// Count asks for this many consecutive decisions in one request
	// (1..MaxBatchDecisions; 0 means 1). Batching amortizes the HTTP
	// round trip; every decision still flows through the tenant's guard
	// serially and is charged against admission individually.
	Count int `json:"count,omitempty"`
}

// MaxBatchDecisions bounds Count so one request cannot monopolize a
// tenant's worker.
const MaxBatchDecisions = 1024

// Validate bounds and sanity-checks a decoded request.
func (r *DecideRequest) Validate() error {
	if err := validTenantName(r.Tenant); err != nil {
		return err
	}
	if r.Clock != nil {
		if c := *r.Clock; math.IsNaN(c) || math.IsInf(c, 0) || c < 0 {
			return fmt.Errorf("server: clock %v must be finite and non-negative", c)
		}
	}
	if len(r.LastBW) > MaxTenantDevices {
		return fmt.Errorf("server: %d bandwidth observations exceed the %d-device bound", len(r.LastBW), MaxTenantDevices)
	}
	for i, b := range r.LastBW {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			return fmt.Errorf("server: non-finite bandwidth %v at device %d", b, i)
		}
	}
	if len(r.Down) > MaxTenantDevices {
		return fmt.Errorf("server: %d down flags exceed the %d-device bound", len(r.Down), MaxTenantDevices)
	}
	if d := r.DeadlineMS; math.IsNaN(d) || math.IsInf(d, 0) || d < 0 {
		return fmt.Errorf("server: deadline %vms must be finite and non-negative", d)
	}
	if r.ObservedCost != nil {
		if c := *r.ObservedCost; math.IsNaN(c) || math.IsInf(c, 0) {
			return fmt.Errorf("server: non-finite observed cost %v", c)
		}
	}
	if r.Count < 0 || r.Count > MaxBatchDecisions {
		return fmt.Errorf("server: batch count %d outside [0,%d]", r.Count, MaxBatchDecisions)
	}
	return nil
}

// DecodeDecideRequest parses a decide request strictly: unknown fields,
// trailing garbage, oversized bodies and out-of-range values are all
// errors. FuzzDecodeRequest pins that no input can make it panic.
func DecodeDecideRequest(data []byte) (*DecideRequest, error) {
	var r DecideRequest
	if err := decodeStrict(data, &r); err != nil {
		return nil, err
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// DecodeRegisterRequest parses a tenant-registration request with the same
// strictness.
func DecodeRegisterRequest(data []byte) (*TenantSpec, error) {
	var s TenantSpec
	if err := decodeStrict(data, &s); err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// decodeStrict is the shared strict JSON decoding core.
func decodeStrict(data []byte, v interface{}) error {
	if len(data) > MaxRequestBytes {
		return fmt.Errorf("server: request body %d bytes exceeds the %d-byte bound", len(data), MaxRequestBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("server: decode request: %w", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return fmt.Errorf("server: trailing data after request body")
	}
	return nil
}

// validTenantName bounds and restricts tenant identifiers to a filesystem-
// and log-safe alphabet (audit files are named after tenants).
func validTenantName(name string) error {
	if name == "" {
		return fmt.Errorf("server: empty tenant name")
	}
	if len(name) > MaxTenantName {
		return fmt.Errorf("server: tenant name %d bytes exceeds the %d-byte bound", len(name), MaxTenantName)
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return fmt.Errorf("server: tenant name %q contains %q (want [A-Za-z0-9._-])", name, c)
		}
	}
	return nil
}

// DecideResponse is a served frequency plan (or batch of plans).
type DecideResponse struct {
	// Freqs is the plan: one CPU frequency per device, in Hz. For a batch
	// it is the final plan.
	Freqs []float64 `json:"freqs"`
	// Plans holds every plan of a batched request (Count > 1), oldest
	// first; omitted for single decisions.
	Plans [][]float64 `json:"plans,omitempty"`
	// Count is how many decisions this response carries.
	Count int `json:"count"`
	// Layer names the guard layer (or ladder stage) that produced the
	// final plan: "drl", "heuristic" or "maxfreq".
	Layer string `json:"layer"`
	// Mode is the tenant's ladder mode after serving.
	Mode string `json:"mode"`
	// Iter is the first decision's 0-based index.
	Iter int `json:"iter"`
	// Clock is the wall-clock time the first plan was priced at.
	Clock float64 `json:"clock"`
}

// ErrorBody is the JSON shape of every non-2xx response.
type ErrorBody struct {
	Error string `json:"error"`
	// RetryAfterMS, when positive, tells the client when capacity is
	// expected (mirrored in the Retry-After header, whole seconds).
	RetryAfterMS float64 `json:"retry_after_ms,omitempty"`
}
