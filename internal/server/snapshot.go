package server

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/report"
)

// snapshotVersion guards the snapshot wire format.
const snapshotVersion = 1

// Snapshot is the registry's crash-safe persistent form: enough to rebuild
// every tenant (specs are deterministic builders) plus the progress markers
// a restarted daemon resumes from. Guard in-memory audit windows are
// flushed separately as text on drain; they are evidence, not state.
type Snapshot struct {
	Version int           `json:"version"`
	Tenants []TenantState `json:"tenants"`
}

// TenantState is one tenant's persisted row.
type TenantState struct {
	Spec TenantSpec `json:"spec"`
	// Iter is the tenant's next decision index.
	Iter int `json:"iter"`
	// Clock is the tenant's internal wall clock, seconds.
	Clock float64 `json:"clock"`
	// Mode is the ladder mode at snapshot time (informational; a restart
	// begins guarded and re-degrades if the fault persists).
	Mode string `json:"mode"`
}

// snapshot captures every registered tenant in name order.
func (s *Server) snapshot() *Snapshot {
	snap := &Snapshot{Version: snapshotVersion}
	for _, t := range s.reg.all() {
		t.mu.Lock()
		snap.Tenants = append(snap.Tenants, TenantState{
			Spec:  t.spec,
			Iter:  t.iter,
			Clock: t.clock,
			Mode:  t.Mode().String(),
		})
		t.mu.Unlock()
	}
	return snap
}

// SaveSnapshot persists the registry atomically (temp file + rename): a
// kill -9 during the write leaves the previous snapshot intact.
func (s *Server) SaveSnapshot(path string) error {
	data, err := json.MarshalIndent(s.snapshot(), "", "  ")
	if err != nil {
		return fmt.Errorf("server: encode snapshot: %w", err)
	}
	return report.WriteFileAtomic(path, append(data, '\n'), 0o644)
}

// RestoreSnapshot re-registers every tenant from a snapshot file. A missing
// file is a clean cold start, not an error. Tenants that fail to rebuild
// (e.g. the daemon restarted without the agent a drl tenant requires) are
// reported but do not block the rest.
func (s *Server) RestoreSnapshot(path string) (restored int, err error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("server: read snapshot: %w", err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return 0, fmt.Errorf("server: decode snapshot %s: %w", path, err)
	}
	if snap.Version != snapshotVersion {
		return 0, fmt.Errorf("server: snapshot %s version %d, want %d", path, snap.Version, snapshotVersion)
	}
	var firstErr error
	for _, ts := range snap.Tenants {
		t, err := s.Register(ts.Spec)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		t.mu.Lock()
		t.iter = ts.Iter
		t.clock = ts.Clock
		t.mu.Unlock()
		restored++
	}
	return restored, firstErr
}
