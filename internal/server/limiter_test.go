package server

import (
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for limiter tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestBucketBurstThenRefill(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBucket(10, 3, clk.now) // 10/s, burst 3

	for k := 0; k < 3; k++ {
		if ok, _ := b.Take(); !ok {
			t.Fatalf("take %d refused within burst", k)
		}
	}
	ok, retry := b.Take()
	if ok {
		t.Fatal("take admitted past the burst with no time passing")
	}
	if retry <= 0 || retry > 100*time.Millisecond {
		t.Fatalf("retry hint %v, want (0, 100ms] at 10 tokens/s", retry)
	}

	// One token refills in 100ms at 10/s.
	clk.advance(100 * time.Millisecond)
	if ok, _ := b.Take(); !ok {
		t.Fatal("take refused after a full token refilled")
	}
	if ok, _ := b.Take(); ok {
		t.Fatal("second take admitted off a single refilled token")
	}

	// Refill caps at the burst even over a long idle gap.
	clk.advance(time.Hour)
	admitted := 0
	for k := 0; k < 10; k++ {
		if ok, _ := b.Take(); ok {
			admitted++
		}
	}
	if admitted != 3 {
		t.Fatalf("admitted %d after a long idle, want the burst of 3", admitted)
	}
}

func TestBucketNilAndUnlimited(t *testing.T) {
	var b *Bucket
	if ok, _ := b.Take(); !ok {
		t.Fatal("nil bucket must admit")
	}
	if NewBucket(0, 5, nil) != nil {
		t.Fatal("rate 0 must build an unlimited (nil) bucket")
	}
	if NewBucket(-1, 5, nil) != nil {
		t.Fatal("negative rate must build an unlimited (nil) bucket")
	}
}

func TestBucketMinimumBurst(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := NewBucket(1, 0, clk.now) // burst raised to 1
	if ok, _ := b.Take(); !ok {
		t.Fatal("fresh bucket with raised burst must admit one request")
	}
	if ok, _ := b.Take(); ok {
		t.Fatal("burst-1 bucket admitted twice with no refill")
	}
}
