package server

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// shardCount is the registry's fan-out. Tenant lookup is on every request's
// hot path, so the map is sharded to keep lock contention off the decide
// latency even with many handler goroutines registering and resolving
// concurrently.
const shardCount = 16

// registry is the sharded tenant table.
type registry struct {
	shards [shardCount]regShard
}

type regShard struct {
	mu sync.RWMutex
	m  map[string]*Tenant
}

// newRegistry builds an empty registry.
func newRegistry() *registry {
	r := &registry{}
	for i := range r.shards {
		r.shards[i].m = make(map[string]*Tenant)
	}
	return r
}

// shard maps a tenant name to its shard.
func (r *registry) shard(name string) *regShard {
	h := fnv.New32a()
	h.Write([]byte(name))
	return &r.shards[h.Sum32()%shardCount]
}

// get resolves a tenant, or nil.
func (r *registry) get(name string) *Tenant {
	s := r.shard(name)
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.m[name]
}

// put installs a tenant; it fails if the name is taken (registration is
// create-only so a tenant's guard state is never silently replaced).
func (r *registry) put(t *Tenant) error {
	s := r.shard(t.spec.Name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.m[t.spec.Name]; exists {
		return fmt.Errorf("server: tenant %q already registered", t.spec.Name)
	}
	s.m[t.spec.Name] = t
	return nil
}

// replace installs a tenant unconditionally and returns the previous
// holder of the name (nil if the name was free). The reload path uses it
// to swap a rebuilt tenant in before retiring the old one, so requests
// always resolve to a live tenant.
func (r *registry) replace(t *Tenant) *Tenant {
	s := r.shard(t.spec.Name)
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.m[t.spec.Name]
	s.m[t.spec.Name] = t
	return old
}

// all returns every tenant sorted by name — the stable order drain,
// snapshots and stats all iterate in.
func (r *registry) all() []*Tenant {
	var ts []*Tenant
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		for _, t := range s.m {
			ts = append(ts, t)
		}
		s.mu.RUnlock()
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i].spec.Name < ts[j].spec.Name })
	return ts
}

// size counts registered tenants.
func (r *registry) size() int {
	n := 0
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}
