package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestGuardChainConcurrentHammer drives several tenants' guard chains from
// many goroutines at once, interleaving decide calls (some carrying
// observed-cost feedback, which reaches guard.Observe) with stats reads
// (which walk the guard audit). Run under -race this pins the central
// concurrency claim: guards are documented single-stream, and the per-
// tenant worker plus tenant mutex make that safe under arbitrary handler
// concurrency.
//
// It also pins per-tenant audit determinism in the ordering sense: however
// the goroutines interleave, each tenant's audit is one gap-free serial
// decision stream (total == served decisions, k strictly sequential).
func TestGuardChainConcurrentHammer(t *testing.T) {
	cfg := testConfig()
	cfg.QueueCap = 4096
	cfg.RequestTimeout = 30 * time.Second
	// Keep the ladder parked on guarded: every decision must flow through
	// the guard chain so the audit accounts for all of them, even when the
	// cost feedback trips breakers inside the chain.
	cfg.DegradeAfter = 1 << 20
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	tenants := []string{"race-a", "race-b", "race-c"}
	for i, name := range tenants {
		registerTenant(t, ts, TenantSpec{Name: name, N: 3, Seed: int64(i + 1), Primary: PrimaryFresh})
	}

	const (
		goroutines = 12
		perG       = 40
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			client := &http.Client{Timeout: 30 * time.Second}
			for k := 0; k < perG; k++ {
				tenant := tenants[(g+k)%len(tenants)]
				req := DecideRequest{Tenant: tenant}
				if k%4 == 1 {
					cost := 5.0 + float64(k%7)
					req.ObservedCost = &cost
				}
				body, _ := json.Marshal(&req)
				resp, err := client.Post(ts.URL+"/v1/decide", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("goroutine %d call %d: status %d", g, k, resp.StatusCode)
				}
				resp.Body.Close()
				if k%8 == 3 {
					// Interleave audit walks with decisions.
					r2, err := client.Get(ts.URL + "/v1/tenants/" + tenant)
					if err != nil {
						t.Error(err)
						return
					}
					r2.Body.Close()
				}
			}
		}(g)
	}
	wg.Wait()

	// Every request was served: goroutines × calls, split across tenants.
	if got, want := s.Counters().Decisions.Load(), int64(goroutines*perG); got != want {
		t.Fatalf("decisions %d, want %d", got, want)
	}

	s.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rep, err := s.FinishDrain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dropped != 0 {
		t.Fatalf("dropped %d requests", rep.Dropped)
	}

	// Per-tenant serial audit: decisions indexed 0..n-1 with no gaps,
	// regardless of client interleaving.
	var total int
	for _, name := range tenants {
		tn := s.Tenant(name)
		recs := tn.guard.Audit().Records()
		if tn.guard.Audit().Dropped() > 0 {
			// The in-memory window wrapped; ordering is still checkable.
			t.Logf("tenant %s audit window dropped %d records", name, tn.guard.Audit().Dropped())
		}
		for i := 1; i < len(recs); i++ {
			if recs[i].Iter != recs[i-1].Iter+1 {
				t.Fatalf("tenant %s: audit k jumps %d -> %d (not a serial stream)",
					name, recs[i-1].Iter, recs[i].Iter)
			}
		}
		total += tn.guard.Audit().Total()
	}
	if total != goroutines*perG {
		t.Fatalf("audit total %d, want %d", total, goroutines*perG)
	}
}
