package server

import (
	"sync"
	"time"
)

// Bucket is a token-bucket admission limiter: each admitted request takes
// one token, tokens refill at rate per second up to burst. When empty, Take
// reports how long until the next token so the caller can return an honest
// Retry-After instead of queueing work it cannot serve in time.
//
// A nil Bucket (or one built with rate <= 0) admits everything — admission
// control is opt-in per tenant.
type Bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time
}

// NewBucket builds a limiter; rate <= 0 returns nil (unlimited). A burst
// below 1 is raised to 1 so a fresh bucket can admit at least one request.
// now is injectable for tests; nil selects time.Now.
func NewBucket(rate, burst float64, now func() time.Time) *Bucket {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	if now == nil {
		now = time.Now
	}
	return &Bucket{rate: rate, burst: burst, tokens: burst, last: now(), now: now}
}

// Take attempts to admit one request. On refusal it returns the wait until
// a token will be available.
func (b *Bucket) Take() (ok bool, retryAfter time.Duration) { return b.TakeN(1) }

// TakeN attempts to admit n decisions at once (a batched request is
// charged per decision, not per round trip). On refusal it returns the
// wait until n tokens will have accumulated — which may exceed what the
// burst can ever hold; such requests are simply never admitted whole, and
// the retry hint says how far away they are.
func (b *Bucket) TakeN(n float64) (ok bool, retryAfter time.Duration) {
	if b == nil {
		return true, 0
	}
	if n < 1 {
		n = 1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	t := b.now()
	if dt := t.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = t
	if b.tokens >= n {
		b.tokens -= n
		return true, 0
	}
	need := (n - b.tokens) / b.rate // seconds until enough tokens
	return false, time.Duration(need * float64(time.Second))
}
