package server

import (
	"testing"
	"time"
)

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram must report 0")
	}
	// 90 fast observations, 10 slow: p50 near 10µs, p99 near 10ms. The
	// estimate is the containing bucket's upper edge, so it errs high by
	// at most one growth factor.
	for k := 0; k < 90; k++ {
		h.Observe(10 * time.Microsecond)
	}
	for k := 0; k < 10; k++ {
		h.Observe(10 * time.Millisecond)
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("count %d, want 100", got)
	}
	p50 := h.Quantile(0.50)
	if p50 < 10*time.Microsecond || p50 > time.Duration(float64(10*time.Microsecond)*histGrowth) {
		t.Fatalf("p50 %v outside [10µs, 12.5µs]", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 10*time.Millisecond || p99 > time.Duration(float64(10*time.Millisecond)*histGrowth) {
		t.Fatalf("p99 %v outside [10ms, 12.5ms]", p99)
	}
	if h.Quantile(0) == 0 || h.Quantile(1) < p99 {
		t.Fatal("quantile bounds misbehave at p=0/p=1")
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	if bucketFor(0) != 0 || bucketFor(-time.Second) != 0 {
		t.Fatal("non-positive durations must land in bucket 0")
	}
	if bucketFor(time.Hour) != histBuckets-1 {
		t.Fatal("huge durations must land in the overflow bucket")
	}
	// Every observation lands in a bucket whose upper edge bounds it
	// (except overflow, which is unbounded by design).
	for _, d := range []time.Duration{
		time.Microsecond, 3 * time.Microsecond, 50 * time.Microsecond,
		time.Millisecond, 17 * time.Millisecond, time.Second,
	} {
		idx := bucketFor(d)
		if idx < histBuckets-1 && upperBound(idx) < d {
			t.Fatalf("%v landed in bucket %d with upper edge %v", d, idx, upperBound(idx))
		}
	}
}

func TestCountersSnapshotComplete(t *testing.T) {
	var c Counters
	c.Requests.Add(7)
	c.ShedDeadline.Add(2)
	snap := c.Snapshot()
	if snap["requests"] != 7 || snap["shed_deadline"] != 2 {
		t.Fatalf("snapshot %v", snap)
	}
	want := []string{
		"requests", "malformed", "not_found", "shed_rate", "shed_queue",
		"shed_deadline", "shed_drain", "timeouts", "errors", "decisions",
		"degraded", "degrade_transitions",
	}
	for _, k := range want {
		if _, ok := snap[k]; !ok {
			t.Fatalf("snapshot missing %q", k)
		}
	}
}
