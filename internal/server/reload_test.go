package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/guard"
	"repro/internal/online"
)

// specSource builds a TenantSource over a swappable in-memory spec list —
// the test stand-in for the -tenants file.
type specSource struct {
	mu    sync.Mutex
	specs []TenantSpec
}

func (s *specSource) set(specs []TenantSpec) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.specs = append([]TenantSpec(nil), specs...)
}

func (s *specSource) read() ([]TenantSpec, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]TenantSpec(nil), s.specs...), nil
}

func TestParseTenantSpecs(t *testing.T) {
	specs, err := ParseTenantSpecs([]byte(`[{"name":"a","n":2},{"name":"b","n":3,"primary":"fresh"}]`))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[0].Name != "a" || specs[1].N != 3 {
		t.Fatalf("unexpected specs: %+v", specs)
	}
	for _, bad := range []string{
		`[{"name":"a","n":2},{"name":"a","n":2}]`, // duplicate name
		`[{"name":"a","n":0}]`,                    // invalid fleet size
		`[{"name":"a","n":2,"bogus":1}]`,          // unknown field
		`[{"name":"a","n":2}] trailing`,           // trailing data
	} {
		if _, err := ParseTenantSpecs([]byte(bad)); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

// TestReloadAddRebuildUnchanged: reload classifies specs correctly and a
// rebuilt tenant restarts from a fresh guard while an unchanged one keeps
// its state.
func TestReloadAddRebuildUnchanged(t *testing.T) {
	src := &specSource{}
	cfg := testConfig()
	cfg.TenantSource = src.read
	s, ts := newTestServer(t, cfg)

	src.set([]TenantSpec{
		{Name: "keep", N: 2, Seed: 1, Primary: PrimaryFresh},
		{Name: "change", N: 2, Seed: 1, Primary: PrimaryFresh},
	})
	rep, err := s.ReloadFromSource()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Added != 2 || rep.Rebuilt != 0 || rep.Unchanged != 0 {
		t.Fatalf("boot reload: %+v", rep)
	}

	// Advance both tenants so the rebuilt one's reset is observable.
	for k := 0; k < 3; k++ {
		for _, name := range []string{"keep", "change"} {
			if _, status := decide(t, ts, DecideRequest{Tenant: name}); status != http.StatusOK {
				t.Fatalf("decide %s: status %d", name, status)
			}
		}
	}

	src.set([]TenantSpec{
		{Name: "keep", N: 2, Seed: 1, Primary: PrimaryFresh},
		{Name: "change", N: 2, Seed: 2, Primary: PrimaryFresh}, // new seed → rebuild
		{Name: "fresh", N: 2, Seed: 3, Primary: PrimaryFresh},
	})
	resp, err := http.Post(ts.URL+"/v1/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var rr ReloadReport
	decodeBody(t, resp, &rr)
	if rr.Added != 1 || rr.Rebuilt != 1 || rr.Unchanged != 1 || rr.Dropped != 0 {
		t.Fatalf("reload report: %+v", rr)
	}
	if got := s.Tenant("keep").Stats().Decisions; got != 3 {
		t.Fatalf("unchanged tenant lost state: %d decisions, want 3", got)
	}
	if got := s.Tenant("change").Stats().Decisions; got != 0 {
		t.Fatalf("rebuilt tenant kept state: %d decisions, want 0", got)
	}
	if _, status := decide(t, ts, DecideRequest{Tenant: "fresh"}); status != http.StatusOK {
		t.Fatalf("added tenant not serving: status %d", status)
	}
}

// TestReloadAtomicOnBadSpec: one invalid spec rejects the whole reload and
// the running configuration is untouched.
func TestReloadAtomicOnBadSpec(t *testing.T) {
	src := &specSource{}
	cfg := testConfig()
	cfg.TenantSource = src.read
	s, ts := newTestServer(t, cfg)

	src.set([]TenantSpec{{Name: "a", N: 2, Seed: 1, Primary: PrimaryFresh}})
	if _, err := s.ReloadFromSource(); err != nil {
		t.Fatal(err)
	}
	before := s.reg.get("a")

	src.set([]TenantSpec{
		{Name: "a", N: 2, Seed: 9, Primary: PrimaryFresh}, // would rebuild
		{Name: "b", N: 0}, // invalid
	})
	resp, err := http.Post(ts.URL+"/v1/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad reload status %d, want 422", resp.StatusCode)
	}
	if s.reg.get("a") != before {
		t.Fatal("failed reload replaced a tenant")
	}
}

// TestReloadZeroDroppedUnderLoad: hammer decide while the tenant is
// rebuilt repeatedly; every accepted request gets an answer (2xx or an
// honest shed), never a dropped connection or a send-on-closed panic.
func TestReloadZeroDroppedUnderLoad(t *testing.T) {
	src := &specSource{}
	cfg := testConfig()
	cfg.TenantSource = src.read
	s, ts := newTestServer(t, cfg)

	src.set([]TenantSpec{{Name: "hot", N: 2, Seed: 1, Primary: PrimaryFresh}})
	if _, err := s.ReloadFromSource(); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var served, shed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				_, status := decide(t, ts, DecideRequest{Tenant: "hot"})
				switch status {
				case http.StatusOK:
					served.Add(1)
				case http.StatusServiceUnavailable, http.StatusGatewayTimeout, http.StatusTooManyRequests:
					shed.Add(1)
				default:
					t.Errorf("unexpected decide status %d", status)
					return
				}
			}
		}()
	}

	var totalDropped int64
	for i := 0; i < 10; i++ {
		seed := int64(i%2 + 1) // flip-flop the spec so every reload rebuilds
		src.set([]TenantSpec{{Name: "hot", N: 2, Seed: seed + 1, Primary: PrimaryFresh}})
		rep, err := s.ReloadFromSource()
		if err != nil {
			t.Fatal(err)
		}
		totalDropped += rep.Dropped
	}
	stop.Store(true)
	wg.Wait()

	if totalDropped != 0 {
		t.Fatalf("reloads dropped %d in-flight requests", totalDropped)
	}
	if served.Load() == 0 {
		t.Fatal("no requests served during the reload storm")
	}
}

// TestAuditExportReplayable: the audit endpoint exports canonical lines
// that guard.ParseLines reads back; with RecordPlans they carry plans.
func TestAuditExportReplayable(t *testing.T) {
	cfg := testConfig()
	cfg.RecordPlans = true
	_, ts := newTestServer(t, cfg)
	registerTenant(t, ts, TenantSpec{Name: "aud", N: 2, Seed: 1, Primary: PrimaryFresh})
	for k := 0; k < 6; k++ {
		if _, status := decide(t, ts, DecideRequest{Tenant: "aud"}); status != http.StatusOK {
			t.Fatalf("decide: status %d", status)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/tenants/aud/audit")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("audit export status %d", resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, resp.Body); err != nil {
		t.Fatal(err)
	}
	recs := guard.ParseLines(buf.String())
	if len(recs) != 6 {
		t.Fatalf("parsed %d decisions from export, want 6:\n%s", len(recs), buf.String())
	}
	withPlans := 0
	for _, d := range recs {
		if len(d.Plan) == 2 {
			withPlans++
		}
	}
	if withPlans == 0 {
		t.Fatalf("no exported decision carries a plan:\n%s", buf.String())
	}

	if resp, err := http.Get(ts.URL + "/v1/tenants/nope/audit"); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown tenant audit status %d, want 404", resp.StatusCode)
		}
	}
}

// TestOnlineLoopWiredIntoTenant: with Online configured, a DRL-primary
// tenant streams decisions into its loop (buffer fills) while serving
// normally, and a heuristic tenant carries no loop.
func TestOnlineLoopWiredIntoTenant(t *testing.T) {
	cfg := testConfig()
	cfg.Online = &online.Config{
		BufferCap:  64,
		MinSamples: 32,
		Workers:    1,
	}
	s, ts := newTestServer(t, cfg)
	registerTenant(t, ts, TenantSpec{Name: "drl", N: 2, Seed: 1, Primary: PrimaryFresh})
	registerTenant(t, ts, TenantSpec{Name: "heur", N: 2, Seed: 1, Primary: PrimaryHeuristic})

	if s.Tenant("heur").loop != nil {
		t.Fatal("heuristic tenant got an online loop")
	}
	dt := s.Tenant("drl")
	if dt.loop == nil {
		t.Fatal("drl tenant has no online loop")
	}

	for k := 0; k < 8; k++ {
		if _, status := decide(t, ts, DecideRequest{Tenant: "drl"}); status != http.StatusOK {
			t.Fatalf("decide: status %d", status)
		}
	}

	// Drain so the online goroutine has consumed everything it will get.
	s.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	rep, err := s.FinishDrain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dropped != 0 {
		t.Fatalf("drain dropped %d", rep.Dropped)
	}
	replayed, skipped, _, _ := dt.loop.Stats()
	if replayed+skipped == 0 {
		t.Fatal("online loop saw no decisions")
	}
	if replayed == 0 {
		t.Fatalf("no decision was replayable (skipped %d) — RecordPlans not implied by Online?", skipped)
	}
}

// TestSwapActorHotSwap: promoting a cloned policy through swapActor keeps
// the tenant serving and swaps the DRL's weights in place.
func TestSwapActorHotSwap(t *testing.T) {
	cfg := testConfig()
	cfg.Online = &online.Config{BufferCap: 64, MinSamples: 32, Workers: 1}
	s, ts := newTestServer(t, cfg)
	registerTenant(t, ts, TenantSpec{Name: "swap", N: 2, Seed: 1, Primary: PrimaryFresh})
	tn := s.Tenant("swap")

	if _, status := decide(t, ts, DecideRequest{Tenant: "swap"}); status != http.StatusOK {
		t.Fatalf("pre-swap decide status %d", status)
	}
	oldPolicy := tn.drl.Policy
	cand := tn.loop.Agent()
	if err := tn.swapActor(cand); err != nil {
		t.Fatal(err)
	}
	if tn.drl.Policy == oldPolicy {
		t.Fatal("swapActor did not replace the serving policy")
	}
	if _, status := decide(t, ts, DecideRequest{Tenant: "swap"}); status != http.StatusOK {
		t.Fatalf("post-swap decide status %d", status)
	}
}

// decodeBody decodes a JSON response body and closes it.
func decodeBody(t *testing.T, resp *http.Response, v interface{}) {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	io.Copy(&buf, resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, strings.TrimSpace(buf.String()))
	}
	if err := json.Unmarshal(buf.Bytes(), v); err != nil {
		t.Fatal(err)
	}
}
