package server

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestFlushTelemetry checks one live flush: stats JSON, per-tenant audit
// and registry snapshot all land on disk while the server keeps serving.
func TestFlushTelemetry(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	cfg.AuditDir = filepath.Join(dir, "audits")
	cfg.SnapshotPath = filepath.Join(dir, "reg.snap.json")
	s, ts := newTestServer(t, cfg)
	registerTenant(t, ts, TenantSpec{Name: "alpha", N: 3, Seed: 1, Primary: PrimaryFresh})
	for k := 0; k < 4; k++ {
		if _, status := decide(t, ts, DecideRequest{Tenant: "alpha"}); status != 200 {
			t.Fatalf("decide %d: status %d", k, status)
		}
	}

	rep, err := s.FlushTelemetry()
	if err != nil {
		t.Fatalf("FlushTelemetry: %v", err)
	}
	data, err := os.ReadFile(rep.Stats)
	if err != nil {
		t.Fatalf("stats file: %v", err)
	}
	var body statsBody
	if err := json.Unmarshal(data, &body); err != nil {
		t.Fatalf("stats JSON: %v", err)
	}
	if len(body.Tenants) != 1 || body.Tenants[0].Name != "alpha" {
		t.Fatalf("stats tenants: %+v", body.Tenants)
	}
	if body.Counters["decisions"] != 4 {
		t.Fatalf("stats decisions = %d, want 4", body.Counters["decisions"])
	}
	if len(rep.AuditFiles) != 1 {
		t.Fatalf("audit files: %v", rep.AuditFiles)
	}
	if _, err := os.Stat(rep.AuditFiles[0]); err != nil {
		t.Fatalf("audit file: %v", err)
	}
	var snap Snapshot
	sd, err := os.ReadFile(rep.Snapshot)
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if err := json.Unmarshal(sd, &snap); err != nil {
		t.Fatalf("snapshot JSON: %v", err)
	}
	if len(snap.Tenants) != 1 || snap.Tenants[0].Iter != 4 {
		t.Fatalf("snapshot tenants: %+v", snap.Tenants)
	}
	// The live flush must not have disturbed serving.
	if _, status := decide(t, ts, DecideRequest{Tenant: "alpha"}); status != 200 {
		t.Fatalf("decide after flush: status %d", status)
	}
}

// TestFlushTelemetryNoop checks the unconfigured server flushes nothing.
func TestFlushTelemetryNoop(t *testing.T) {
	s, _ := newTestServer(t, testConfig())
	rep, err := s.FlushTelemetry()
	if err != nil {
		t.Fatalf("FlushTelemetry: %v", err)
	}
	if rep.Stats != "" || len(rep.AuditFiles) != 0 || rep.Snapshot != "" {
		t.Fatalf("no-op flush wrote %+v", rep)
	}
}

// TestStartTelemetry checks the ticker flushes periodically and that stop
// is idempotent and halts further flushes.
func TestStartTelemetry(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	cfg.AuditDir = dir
	s, ts := newTestServer(t, cfg)
	registerTenant(t, ts, TenantSpec{Name: "tick", N: 3, Seed: 1, Primary: PrimaryFresh})

	stop := s.StartTelemetry(5*time.Millisecond, t.Logf)
	statsPath := filepath.Join(dir, "stats.json")
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(statsPath); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("telemetry ticker never flushed")
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	stop() // idempotent

	os.Remove(statsPath)
	time.Sleep(25 * time.Millisecond)
	if _, err := os.Stat(statsPath); !os.IsNotExist(err) {
		t.Fatal("flush happened after stop")
	}

	// A disabled ticker returns a callable no-op stop.
	s.StartTelemetry(0, nil)()
}
