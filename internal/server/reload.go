package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// ParseTenantSpecs decodes a declarative tenant file: a JSON array of
// TenantSpec, strictly (unknown fields are errors), every spec validated
// and names checked for duplicates. This is the format the flserver
// -tenants flag points at and reload re-reads.
func ParseTenantSpecs(data []byte) ([]TenantSpec, error) {
	var specs []TenantSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&specs); err != nil {
		return nil, fmt.Errorf("server: decode tenant specs: %w", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, fmt.Errorf("server: trailing data after tenant specs")
	}
	seen := make(map[string]bool, len(specs))
	for i := range specs {
		if err := specs[i].Validate(); err != nil {
			return nil, fmt.Errorf("server: tenant spec %d: %w", i, err)
		}
		if seen[specs[i].Name] {
			return nil, fmt.Errorf("server: duplicate tenant spec %q", specs[i].Name)
		}
		seen[specs[i].Name] = true
	}
	return specs, nil
}

// ReloadReport accounts for one configuration reload.
type ReloadReport struct {
	// Total is the number of specs in the new configuration.
	Total int `json:"total"`
	// Added tenants did not exist before; Rebuilt tenants existed with a
	// different spec and were replaced; Unchanged specs matched the
	// running tenant exactly and were left untouched (guard state,
	// counters and queue intact).
	Added     int `json:"added"`
	Rebuilt   int `json:"rebuilt"`
	Unchanged int `json:"unchanged"`
	// Dropped counts in-flight requests lost across all rebuilds. The
	// reload contract pins it to zero: retired tenants drain their queue
	// before teardown and late arrivals re-route to the replacement.
	Dropped int64 `json:"dropped"`
	// AddedNames / RebuiltNames list the affected tenants in spec order.
	AddedNames   []string `json:"added_names,omitempty"`
	RebuiltNames []string `json:"rebuilt_names,omitempty"`
}

// Reload applies a new declarative tenant configuration atomically:
// every spec is validated and every new tenant fully built before any
// registry change, so a bad spec (or a failed build) rejects the whole
// reload and leaves the daemon exactly as it was. Unchanged specs keep
// their running tenant; changed ones are swapped in first and the old
// tenant retired after — its queued requests all finish (zero dropped),
// while new arrivals already resolve to the replacement. Tenants absent
// from the new configuration are left running (reload adds and rebuilds;
// it never removes).
func (s *Server) Reload(specs []TenantSpec) (*ReloadReport, error) {
	if s.draining.Load() {
		return nil, fmt.Errorf("server: draining, not reloading")
	}
	seen := make(map[string]bool, len(specs))
	for i := range specs {
		if err := specs[i].Validate(); err != nil {
			return nil, fmt.Errorf("server: reload spec %d: %w", i, err)
		}
		if seen[specs[i].Name] {
			return nil, fmt.Errorf("server: reload: duplicate tenant %q", specs[i].Name)
		}
		seen[specs[i].Name] = true
	}

	rep := &ReloadReport{Total: len(specs)}
	// Build phase: construct every new/changed tenant before touching the
	// registry. No goroutines start here, so abandoning the batch on an
	// error leaks nothing.
	var pending []*Tenant
	for _, spec := range specs {
		if cur := s.reg.get(spec.Name); cur != nil && cur.spec == spec {
			rep.Unchanged++
			continue
		}
		t, err := buildTenant(spec, s.cfg)
		if err != nil {
			return nil, fmt.Errorf("server: reload: %w", err)
		}
		pending = append(pending, t)
	}

	// Install phase: swap each tenant in, then retire its predecessor.
	// Handlers holding the old pointer observe the closed queue and
	// re-resolve to the replacement.
	for _, t := range pending {
		old := s.reg.replace(t)
		t.start(s)
		if old == nil {
			rep.Added++
			rep.AddedNames = append(rep.AddedNames, t.spec.Name)
			continue
		}
		old.retire()
		rep.Rebuilt++
		rep.RebuiltNames = append(rep.RebuiltNames, t.spec.Name)
		rep.Dropped += old.accepted.Load() - old.responded.Load()
	}
	return rep, nil
}

// ReloadFromSource re-reads the configured tenant source (the -tenants
// file) and applies it via Reload. This is the SIGHUP / POST /v1/reload
// entry point.
func (s *Server) ReloadFromSource() (*ReloadReport, error) {
	if s.cfg.TenantSource == nil {
		return nil, fmt.Errorf("server: no tenant source configured (start with -tenants)")
	}
	specs, err := s.cfg.TenantSource()
	if err != nil {
		return nil, err
	}
	return s.Reload(specs)
}

// handleReload re-reads the tenant source and applies it. 422 when no
// source is configured or the new configuration is invalid (the running
// configuration is untouched), 503 while draining.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	rep, err := s.ReloadFromSource()
	if err != nil {
		status := http.StatusUnprocessableEntity
		if s.draining.Load() {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err.Error(), 0)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// handleAudit exports one tenant's audit log as text — the summary table
// plus the canonical decision lines guard.ParseLines reads back. With
// RecordPlans (or the online loop) enabled the lines carry clock and
// served plan, so an exported audit is directly replayable into
// online continual learning.
func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	t := s.reg.get(r.PathValue("name"))
	if t == nil {
		writeError(w, http.StatusNotFound, "unknown tenant", 0)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	if err := t.flushAudit(w); err != nil {
		// Headers are gone; the truncated body is the best we can do.
		fmt.Fprintf(w, "\naudit render error: %v\n", err)
	}
}
