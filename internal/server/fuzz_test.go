package server

import (
	"testing"
)

// FuzzDecodeRequest pins the strict decoders against arbitrary input: they
// must never panic, and anything they accept must satisfy its own
// Validate — the property the whole overload pipeline's memory-safety
// rests on, since decode runs before any admission or queue bound.
func FuzzDecodeRequest(f *testing.F) {
	f.Add([]byte(`{"tenant": "alpha"}`))
	f.Add([]byte(`{"tenant": "alpha", "clock": 120, "deadline_ms": 250}`))
	f.Add([]byte(`{"tenant": "alpha", "last_bw": [1e6, 2e6, 3e6], "down": [false, true, false]}`))
	f.Add([]byte(`{"tenant": "alpha", "observed_cost": 5.5}`))
	f.Add([]byte(`{"name": "alpha", "n": 3, "primary": "fresh"}`))
	f.Add([]byte(`{"tenant": "alpha"} trailing`))
	f.Add([]byte(`{"tenant": "../etc"}`))
	f.Add([]byte(`{"tenant": "a", "clock": -1}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		if req, err := DecodeDecideRequest(data); err == nil {
			if verr := req.Validate(); verr != nil {
				t.Fatalf("accepted decide request fails its own validation: %v", verr)
			}
		}
		if spec, err := DecodeRegisterRequest(data); err == nil {
			if verr := spec.Validate(); verr != nil {
				t.Fatalf("accepted tenant spec fails its own validation: %v", verr)
			}
		}
	})
}
