package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// testConfig is a fast server config: fresh actors, small ladder, no
// admission limit.
func testConfig() Config {
	cfg := DefaultServerConfig()
	cfg.DegradeAfter = 3
	cfg.Cooldown = 5
	return cfg
}

// newTestServer boots a server and its HTTP front end.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// registerTenant registers a fresh-actor tenant over the API.
func registerTenant(t *testing.T, ts *httptest.Server, spec TenantSpec) {
	t.Helper()
	body, _ := json.Marshal(&spec)
	resp, err := http.Post(ts.URL+"/v1/tenants", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		var eb ErrorBody
		json.NewDecoder(resp.Body).Decode(&eb)
		t.Fatalf("register %q: %s (%s)", spec.Name, resp.Status, eb.Error)
	}
}

// decide posts one decide request and decodes the response.
func decide(t *testing.T, ts *httptest.Server, req DecideRequest) (*DecideResponse, int) {
	t.Helper()
	body, _ := json.Marshal(&req)
	resp, err := http.Post(ts.URL+"/v1/decide", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, resp.StatusCode
	}
	var dr DecideResponse
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		t.Fatal(err)
	}
	return &dr, resp.StatusCode
}

func TestRegisterAndDecide(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	registerTenant(t, ts, TenantSpec{Name: "alpha", N: 3, Seed: 1, Primary: PrimaryFresh})

	for k := 0; k < 5; k++ {
		dr, status := decide(t, ts, DecideRequest{Tenant: "alpha"})
		if status != http.StatusOK {
			t.Fatalf("decide %d: status %d", k, status)
		}
		if len(dr.Freqs) != 3 {
			t.Fatalf("decide %d: %d freqs, want 3", k, len(dr.Freqs))
		}
		for i, f := range dr.Freqs {
			if f <= 0 {
				t.Fatalf("decide %d: non-positive frequency %v at device %d", k, f, i)
			}
		}
		if dr.Iter != k {
			t.Fatalf("decide %d: iter %d", k, dr.Iter)
		}
		if dr.Mode != "guarded" {
			t.Fatalf("decide %d: mode %q", k, dr.Mode)
		}
	}
}

func TestBatchedDecide(t *testing.T) {
	s, ts := newTestServer(t, testConfig())
	registerTenant(t, ts, TenantSpec{Name: "batch", N: 3, Seed: 1, Primary: PrimaryFresh})

	dr, status := decide(t, ts, DecideRequest{Tenant: "batch", Count: 5})
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if dr.Count != 5 || len(dr.Plans) != 5 {
		t.Fatalf("count %d, %d plans, want 5/5", dr.Count, len(dr.Plans))
	}
	if len(dr.Freqs) != 3 {
		t.Fatalf("%d freqs in final plan, want 3", len(dr.Freqs))
	}
	for k, plan := range dr.Plans {
		if len(plan) != 3 {
			t.Fatalf("plan %d has %d freqs", k, len(plan))
		}
	}
	// All 5 decisions count, and the tenant's iterator advanced by 5.
	if got := s.Counters().Decisions.Load(); got != 5 {
		t.Fatalf("decisions counter %d, want 5", got)
	}
	dr2, status := decide(t, ts, DecideRequest{Tenant: "batch"})
	if status != http.StatusOK {
		t.Fatalf("followup status %d", status)
	}
	if dr2.Iter != 5 {
		t.Fatalf("followup iter %d, want 5", dr2.Iter)
	}
	// A batch is charged per decision by admission: burst 4 cannot admit
	// a 5-decision batch even when fresh.
	registerTenant(t, ts, TenantSpec{Name: "batch-lim", N: 3, Primary: PrimaryHeuristic, Rate: 1, Burst: 4})
	_, status = decide(t, ts, DecideRequest{Tenant: "batch-lim", Count: 5})
	if status != http.StatusTooManyRequests {
		t.Fatalf("over-burst batch status %d, want 429", status)
	}
	// An oversized count is malformed, not queued.
	_, status = decide(t, ts, DecideRequest{Tenant: "batch", Count: MaxBatchDecisions + 1})
	if status != http.StatusBadRequest {
		t.Fatalf("oversized batch status %d, want 400", status)
	}
}

func TestDecideHeuristicPrimary(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	registerTenant(t, ts, TenantSpec{Name: "h", N: 3, Primary: PrimaryHeuristic})
	dr, status := decide(t, ts, DecideRequest{Tenant: "h"})
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if dr.Layer != "heuristic" {
		t.Fatalf("layer %q, want heuristic", dr.Layer)
	}
}

func TestMalformedAndUnknown(t *testing.T) {
	s, ts := newTestServer(t, testConfig())
	registerTenant(t, ts, TenantSpec{Name: "alpha", N: 3, Primary: PrimaryFresh})

	cases := []struct {
		name, body string
		status     int
	}{
		{"truncated", `{"tenant": "alpha"`, http.StatusBadRequest},
		{"unknown field", `{"tenant": "alpha", "bogus": 1}`, http.StatusBadRequest},
		{"trailing", `{"tenant": "alpha"} x`, http.StatusBadRequest},
		{"bad name", `{"tenant": "../../etc/passwd"}`, http.StatusBadRequest},
		{"negative clock", `{"tenant": "alpha", "clock": -5}`, http.StatusBadRequest},
		{"unknown tenant", `{"tenant": "nobody"}`, http.StatusNotFound},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/decide", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
	}
	if got := s.Counters().Malformed.Load(); got != 5 {
		t.Fatalf("malformed counter %d, want 5", got)
	}
	if got := s.Counters().NotFound.Load(); got != 1 {
		t.Fatalf("not_found counter %d, want 1", got)
	}
}

func TestAdmissionControl(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	// 1 request/s with a burst of 2: the third immediate request must be
	// rejected with an honest Retry-After.
	registerTenant(t, ts, TenantSpec{Name: "limited", N: 3, Primary: PrimaryHeuristic, Rate: 1, Burst: 2})

	for k := 0; k < 2; k++ {
		if _, status := decide(t, ts, DecideRequest{Tenant: "limited"}); status != http.StatusOK {
			t.Fatalf("decide %d: status %d", k, status)
		}
	}
	body, _ := json.Marshal(&DecideRequest{Tenant: "limited"})
	resp, err := http.Post(ts.URL+"/v1/decide", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After header")
	}
	var eb ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if eb.RetryAfterMS <= 0 {
		t.Fatalf("retry_after_ms %v, want positive", eb.RetryAfterMS)
	}
}

func TestQueueSheddingUnderSlowActor(t *testing.T) {
	cfg := testConfig()
	cfg.SlowActor = 50 * time.Millisecond
	cfg.QueueCap = 1
	cfg.RequestTimeout = 5 * time.Second
	s, ts := newTestServer(t, cfg)
	registerTenant(t, ts, TenantSpec{Name: "slow", N: 3, Primary: PrimaryFresh})

	// Flood far past the queue bound; with cap 1 and a 50ms actor some
	// requests must be shed (queue-full or deadline-estimate).
	var wg sync.WaitGroup
	var okN, shedN int64
	var mu sync.Mutex
	for k := 0; k < 16; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, status := decide(t, ts, DecideRequest{Tenant: "slow"})
			mu.Lock()
			defer mu.Unlock()
			switch status {
			case http.StatusOK:
				okN++
			case http.StatusServiceUnavailable:
				shedN++
			}
		}()
	}
	wg.Wait()
	if okN == 0 {
		t.Fatal("no request served")
	}
	if shedN == 0 {
		t.Fatal("no request shed despite queue cap 1 and a 50ms actor")
	}
	c := s.Counters()
	if c.ShedQueue.Load()+c.ShedDeadline.Load() != shedN {
		t.Fatalf("shed counters %d+%d do not match %d observed 503s",
			c.ShedQueue.Load(), c.ShedDeadline.Load(), shedN)
	}
}

func TestDeadlineShedding(t *testing.T) {
	cfg := testConfig()
	cfg.SlowActor = 30 * time.Millisecond
	cfg.RequestTimeout = 5 * time.Second
	s, ts := newTestServer(t, cfg)
	registerTenant(t, ts, TenantSpec{Name: "dl", N: 3, Primary: PrimaryFresh})

	// Seed the EWMA with one slow decision.
	if _, status := decide(t, ts, DecideRequest{Tenant: "dl"}); status != http.StatusOK {
		t.Fatalf("seed decide: status %d", status)
	}
	// A 1ms budget cannot cover a ~30ms expected wait: shed up front.
	_, status := decide(t, ts, DecideRequest{Tenant: "dl", DeadlineMS: 1})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 deadline shed", status)
	}
	if s.Counters().ShedDeadline.Load() == 0 {
		t.Fatal("shed_deadline counter not incremented")
	}
}

func TestRequestTimeout(t *testing.T) {
	cfg := testConfig()
	cfg.SlowActor = 200 * time.Millisecond
	cfg.RequestTimeout = 20 * time.Millisecond
	s, ts := newTestServer(t, cfg)
	registerTenant(t, ts, TenantSpec{Name: "to", N: 3, Primary: PrimaryFresh})

	_, status := decide(t, ts, DecideRequest{Tenant: "to"})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", status)
	}
	if s.Counters().Timeouts.Load() == 0 {
		t.Fatal("timeout counter not incremented")
	}
}

func TestDegradeLadderAndRecovery(t *testing.T) {
	cfg := testConfig()
	cfg.ActorBudget = time.Nanosecond // every guarded decision blows the watchdog
	cfg.DegradeAfter = 3
	cfg.Cooldown = 4
	s, ts := newTestServer(t, cfg)
	registerTenant(t, ts, TenantSpec{Name: "lad", N: 3, Primary: PrimaryFresh})

	tn := s.Tenant("lad")
	// Three watchdog-tripped decisions demote the tenant.
	for k := 0; k < 3; k++ {
		if _, status := decide(t, ts, DecideRequest{Tenant: "lad"}); status != http.StatusOK {
			t.Fatalf("decide %d: status %d", k, status)
		}
	}
	if tn.Mode() != ModeHeuristic {
		t.Fatalf("mode %v after %d bad decisions, want heuristic", tn.Mode(), 3)
	}
	if s.Counters().DegradeTransitions.Load() == 0 {
		t.Fatal("degrade transition not counted")
	}
	// The heuristic rung serves successfully; after the cooldown the
	// tenant probes guarded again (and will re-degrade after one strike —
	// mode right after the probe decision window must be guarded at least
	// once).
	sawGuarded := false
	for k := 0; k < 10; k++ {
		dr, status := decide(t, ts, DecideRequest{Tenant: "lad"})
		if status != http.StatusOK {
			t.Fatalf("post-degrade decide %d: status %d", k, status)
		}
		if dr.Mode == "guarded" {
			sawGuarded = true
		}
	}
	if !sawGuarded {
		t.Fatal("tenant never probed back to guarded within 10 post-cooldown decisions")
	}
}

func TestDrainNoDroppedInFlight(t *testing.T) {
	cfg := testConfig()
	cfg.SlowActor = 5 * time.Millisecond
	cfg.RequestTimeout = 10 * time.Second
	cfg.QueueCap = 1024
	s, ts := newTestServer(t, cfg)
	registerTenant(t, ts, TenantSpec{Name: "drain", N: 3, Primary: PrimaryFresh})

	// Launch a burst and begin draining while it is in flight.
	var wg sync.WaitGroup
	var served, shed int64
	var mu sync.Mutex
	for k := 0; k < 32; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, status := decide(t, ts, DecideRequest{Tenant: "drain"})
			mu.Lock()
			defer mu.Unlock()
			switch status {
			case http.StatusOK:
				served++
			case http.StatusServiceUnavailable:
				shed++
			default:
				t.Errorf("unexpected status %d", status)
			}
		}()
	}
	time.Sleep(10 * time.Millisecond) // let some requests enter the pipeline
	s.BeginDrain()
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	rep, err := s.FinishDrain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dropped != 0 {
		t.Fatalf("drain dropped %d in-flight requests (accepted %d, responded %d)",
			rep.Dropped, rep.Accepted, rep.Responded)
	}
	if rep.Accepted != served {
		t.Fatalf("accepted %d != served %d", rep.Accepted, served)
	}
	// Post-drain requests are refused, not queued.
	_, status := decide(t, ts, DecideRequest{Tenant: "drain"})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("post-drain status %d, want 503", status)
	}
}

// driveSequence runs a fixed request sequence against a fresh server and
// returns the drained audit bytes for the tenant.
func driveSequence(t *testing.T, auditDir string) []byte {
	t.Helper()
	cfg := testConfig()
	cfg.AuditDir = auditDir
	s, ts := newTestServer(t, cfg)
	registerTenant(t, ts, TenantSpec{Name: "stable", N: 3, Seed: 7, Primary: PrimaryFresh})

	clock := 0.0
	for k := 0; k < 20; k++ {
		req := DecideRequest{Tenant: "stable", Clock: &clock}
		if k%3 == 2 {
			cost := 5.0 + float64(k)
			req.ObservedCost = &cost
		}
		if _, status := decide(t, ts, req); status != http.StatusOK {
			t.Fatalf("decide %d: status %d", k, status)
		}
		clock += 10
	}
	s.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := s.FinishDrain(ctx); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(auditDir, "stable.audit"))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestAuditByteStableAcrossRuns(t *testing.T) {
	a := driveSequence(t, t.TempDir())
	b := driveSequence(t, t.TempDir())
	if len(a) == 0 {
		t.Fatal("empty audit")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("audit bytes differ across identical runs:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "reg.snap.json")

	cfg := testConfig()
	cfg.SnapshotPath = snap
	s, ts := newTestServer(t, cfg)
	registerTenant(t, ts, TenantSpec{Name: "persist", N: 3, Seed: 3, Primary: PrimaryFresh})
	for k := 0; k < 4; k++ {
		if _, status := decide(t, ts, DecideRequest{Tenant: "persist"}); status != http.StatusOK {
			t.Fatalf("decide %d: status %d", k, status)
		}
	}
	s.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	rep, err := s.FinishDrain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Snapshot != snap {
		t.Fatalf("snapshot path %q, want %q", rep.Snapshot, snap)
	}

	// A restarted daemon restores the tenant and resumes its progress.
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tn := s2.Tenant("persist")
	if tn == nil {
		t.Fatal("tenant not restored from snapshot")
	}
	tn.mu.Lock()
	iter, clock := tn.iter, tn.clock
	tn.mu.Unlock()
	if iter != 4 {
		t.Fatalf("restored iter %d, want 4", iter)
	}
	if clock != 40 {
		t.Fatalf("restored clock %v, want 40", clock)
	}
	s2.BeginDrainForTest(t)
}

// BeginDrainForTest shuts the second server's workers down cleanly so the
// test leaves no goroutines behind.
func (s *Server) BeginDrainForTest(t *testing.T) *DrainReport {
	t.Helper()
	s.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	rep, err := s.FinishDrain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	registerTenant(t, ts, TenantSpec{Name: "st", N: 3, Primary: PrimaryFresh})
	if _, status := decide(t, ts, DecideRequest{Tenant: "st"}); status != http.StatusOK {
		t.Fatalf("decide status %d", status)
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Counters map[string]int64 `json:"counters"`
		Tenants  []TenantStats    `json:"tenants"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Counters["decisions"] != 1 {
		t.Fatalf("decisions counter %d, want 1", body.Counters["decisions"])
	}
	if len(body.Tenants) != 1 || body.Tenants[0].Name != "st" {
		t.Fatalf("tenants %+v", body.Tenants)
	}
}

func TestHealthzReflectsDrain(t *testing.T) {
	s, ts := newTestServer(t, testConfig())
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy status %d", resp.StatusCode)
	}
	s.BeginDrain()
	resp, err = http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining status %d, want 503", resp.StatusCode)
	}
}

func TestRegisterValidation(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	bad := []string{
		`{"name": "", "n": 3}`,
		`{"name": "x", "n": 0}`,
		fmt.Sprintf(`{"name": "x", "n": %d}`, MaxTenantDevices+1),
		`{"name": "x", "n": 3, "primary": "quantum"}`,
		`{"name": "x/y", "n": 3}`,
	}
	for _, body := range bad {
		resp, err := http.Post(ts.URL+"/v1/tenants", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", body, resp.StatusCode)
		}
	}
	// Duplicate registration is a 422, not a silent replace.
	registerTenant(t, ts, TenantSpec{Name: "dup", N: 3, Primary: PrimaryHeuristic})
	body, _ := json.Marshal(&TenantSpec{Name: "dup", N: 3, Primary: PrimaryHeuristic})
	resp, err := http.Post(ts.URL+"/v1/tenants", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("duplicate register status %d, want 422", resp.StatusCode)
	}
}
