package server

import (
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/env"
	"repro/internal/experiments"
	"repro/internal/fl"
	"repro/internal/guard"
	"repro/internal/online"
	"repro/internal/sched"
)

// Mode is a tenant's position on the degradation ladder. The ladder is the
// server-level breaker above the guard's own fallback chain: when the
// guarded path keeps failing (the guard serves off-primary decision after
// decision, errors, or blows its latency budget), the whole guard is
// bypassed for progressively cheaper, safer plans, then probed back.
type Mode int32

// Ladder rungs, in degradation order.
const (
	// ModeGuarded serves through the full guard chain (actor first).
	ModeGuarded Mode = iota
	// ModeHeuristic bypasses the guard and serves the re-optimizing
	// heuristic baseline directly (sanitized into the action box).
	ModeHeuristic
	// ModeMaxFreq serves the precomputed max-frequency safe plan — the
	// terminal mode that cannot fail.
	ModeMaxFreq
)

// String names the mode for responses and stats.
func (m Mode) String() string {
	switch m {
	case ModeGuarded:
		return "guarded"
	case ModeHeuristic:
		return "heuristic"
	default:
		return "maxfreq"
	}
}

// Primary kinds a tenant may request.
const (
	// PrimaryAuto serves the loaded agent when its layout matches the
	// tenant, else a fresh (untrained) actor of the right layout.
	PrimaryAuto = "auto"
	// PrimaryDRL requires the loaded agent (registration fails on layout
	// mismatch).
	PrimaryDRL = "drl"
	// PrimaryFresh builds an untrained actor for the tenant's layout —
	// the load-test configuration: full serving cost, no training needed.
	PrimaryFresh = "fresh"
	// PrimaryHeuristic serves the heuristic baseline as the guard's
	// primary (no actor at all).
	PrimaryHeuristic = "heuristic"
)

// TenantSpec declares one tenant: the FL deployment it schedules for and
// its robustness envelope. It is the registration wire format and the unit
// the registry snapshot persists.
type TenantSpec struct {
	// Name identifies the tenant ([A-Za-z0-9._-], ≤128 bytes).
	Name string `json:"name"`
	// N is the fleet size (devices).
	N int `json:"n"`
	// Lambda is the cost weight λ; 0 keeps the testbed default 1.
	Lambda float64 `json:"lambda,omitempty"`
	// Seed drives the tenant's trace/fleet generation (and its fresh
	// actor, when one is built).
	Seed int64 `json:"seed,omitempty"`
	// Primary selects the guard's primary: auto (default), drl, fresh or
	// heuristic.
	Primary string `json:"primary,omitempty"`
	// Fallback is the guard fallback chain spec (guard.ChainFromSpec;
	// empty keeps "heuristic,maxfreq").
	Fallback string `json:"fallback,omitempty"`
	// OODThreshold tunes the guard's drift gate (0 default, <0 disables).
	OODThreshold float64 `json:"ood_threshold,omitempty"`
	// Rate is the admission rate in requests/s (0 inherits the server
	// default; <0 disables admission control for this tenant).
	Rate float64 `json:"rate,omitempty"`
	// Burst is the admission burst (0 inherits the server default).
	Burst float64 `json:"burst,omitempty"`
	// QueueCap bounds the tenant's request queue (0 inherits).
	QueueCap int `json:"queue_cap,omitempty"`
	// TickSec advances the tenant clock per decision when requests do not
	// pin one (0 keeps 10s, one bandwidth slot).
	TickSec float64 `json:"tick_sec,omitempty"`
}

// Validate bounds a spec. Called by the strict decoder before any build
// work is queued.
func (s *TenantSpec) Validate() error {
	if err := validTenantName(s.Name); err != nil {
		return err
	}
	if s.N < 1 || s.N > MaxTenantDevices {
		return fmt.Errorf("server: tenant %q fleet size %d outside [1,%d]", s.Name, s.N, MaxTenantDevices)
	}
	if s.Lambda < 0 || math.IsNaN(s.Lambda) || math.IsInf(s.Lambda, 0) {
		return fmt.Errorf("server: tenant %q λ=%v must be finite and non-negative", s.Name, s.Lambda)
	}
	switch s.Primary {
	case "", PrimaryAuto, PrimaryDRL, PrimaryFresh, PrimaryHeuristic:
	default:
		return fmt.Errorf("server: tenant %q unknown primary %q (want auto, drl, fresh or heuristic)", s.Name, s.Primary)
	}
	if math.IsNaN(s.Rate) || math.IsInf(s.Rate, 0) || math.IsNaN(s.Burst) || math.IsInf(s.Burst, 0) || s.Burst < 0 {
		return fmt.Errorf("server: tenant %q invalid admission rate/burst %v/%v", s.Name, s.Rate, s.Burst)
	}
	if s.QueueCap < 0 || s.QueueCap > 1<<20 {
		return fmt.Errorf("server: tenant %q queue capacity %d outside [0,%d]", s.Name, s.QueueCap, 1<<20)
	}
	if s.TickSec < 0 || math.IsNaN(s.TickSec) || math.IsInf(s.TickSec, 0) {
		return fmt.Errorf("server: tenant %q tick %vs must be finite and non-negative", s.Name, s.TickSec)
	}
	if s.OODThreshold != 0 && (math.IsNaN(s.OODThreshold) || math.IsInf(s.OODThreshold, 0)) {
		return fmt.Errorf("server: tenant %q non-finite OOD threshold", s.Name)
	}
	return nil
}

// call is one queued decision request.
type call struct {
	ctx  context.Context
	req  *DecideRequest
	resp chan callResult // buffered(1): the worker's send never blocks
}

// callResult is what the worker hands back to the waiting handler.
type callResult struct {
	status     int
	plan       *DecideResponse
	errMsg     string
	retryAfter time.Duration
}

// Tenant is one registered tenant: its simulated FL system, its guard
// chain, its admission/queue state and its ladder position. All decision
// state (guard, schedulers, clock, ladder counters) is owned by the
// tenant's single worker goroutine under mu; stats readers take mu briefly.
type Tenant struct {
	spec TenantSpec
	sys  *fl.System

	mu        sync.Mutex
	guard     *guard.Guard
	drl       *sched.DRL // nil for heuristic-primary tenants
	primary   string     // layer name of the guard's primary
	heuristic sched.Scheduler
	maxPlan   []float64
	floors    []float64
	caps      []float64
	iter      int
	clock     float64

	// Ladder state (worker-owned under mu; mode is atomic for cheap
	// reads from stats and responses).
	mode           atomic.Int32
	consecFallback int
	cooldown       int
	degradeAfter   int
	cooldownN      int

	bucket *Bucket
	queue  chan *call
	ewmaNS atomic.Int64 // EWMA decide service time, nanoseconds

	// qmu serializes sends against the close in closeQueue: a reload can
	// retire this tenant while handlers still hold its pointer, and a send
	// on a closed channel would panic. qclosed makes the race observable —
	// the handler re-resolves the name and lands on the replacement.
	qmu     sync.RWMutex
	qclosed bool

	// Online continual learning (nil/zero when disabled): guarded
	// decisions stream into the loop's goroutine, which retrains on drift
	// and hot-swaps promoted candidates into the serving DRL.
	loop             *online.Loop
	onlineCh         chan guard.Decision
	onlineWG         sync.WaitGroup
	onlineDropped    atomic.Int64
	onlineErrs       atomic.Int64
	onlineRetrains   atomic.Int64
	onlinePromotions atomic.Int64

	// Drain accounting: every accepted (enqueued) call must be responded
	// to before the worker exits — the drain test pins accepted ==
	// responded, i.e. zero dropped in-flight requests.
	accepted  atomic.Int64
	responded atomic.Int64
	wg        sync.WaitGroup
}

// buildTenant materializes a spec: the trace-driven system, the primary
// scheduler, the guard chain and the safe plans.
func buildTenant(spec TenantSpec, cfg Config) (*Tenant, error) {
	sc := experiments.TestbedScenario(spec.Seed)
	sc.N = spec.N
	if spec.Lambda > 0 {
		sc.Lambda = spec.Lambda
	}
	sys, err := sc.Build()
	if err != nil {
		return nil, fmt.Errorf("server: tenant %q: %w", spec.Name, err)
	}

	t := &Tenant{
		spec:         spec,
		sys:          sys,
		degradeAfter: cfg.DegradeAfter,
		cooldownN:    cfg.Cooldown,
	}

	// Resolve the primary actor.
	primaryKind := spec.Primary
	if primaryKind == "" {
		primaryKind = PrimaryAuto
	}
	agent := cfg.Agent
	envCfg := env.DefaultConfig()
	if agent != nil {
		envCfg = agent.EnvCfg
	}
	stateDim := spec.N * (envCfg.History + 1)
	agentFits := agent != nil && agent.Policy.ActionDim() == spec.N && agent.Policy.StateDim() == stateDim
	if primaryKind == PrimaryAuto {
		if agentFits {
			primaryKind = PrimaryDRL
		} else {
			primaryKind = PrimaryFresh
		}
	}

	var primary sched.Scheduler
	switch primaryKind {
	case PrimaryDRL:
		if !agentFits {
			if agent == nil {
				return nil, fmt.Errorf("server: tenant %q wants the trained actor but the daemon has no agent loaded", spec.Name)
			}
			return nil, fmt.Errorf("server: tenant %q (N=%d) does not fit the loaded agent (action dim %d, state dim %d)",
				spec.Name, spec.N, agent.Policy.ActionDim(), agent.Policy.StateDim())
		}
		drl, err := agent.Scheduler()
		if err != nil {
			return nil, fmt.Errorf("server: tenant %q: %w", spec.Name, err)
		}
		t.drl = drl
		primary = drl
	case PrimaryFresh:
		fresh, err := freshAgent(sys, spec.Seed)
		if err != nil {
			return nil, fmt.Errorf("server: tenant %q: %w", spec.Name, err)
		}
		fresh.ServeF32 = agent != nil && agent.ServeF32
		envCfg = fresh.EnvCfg
		drl, err := fresh.Scheduler()
		if err != nil {
			return nil, fmt.Errorf("server: tenant %q: %w", spec.Name, err)
		}
		agent = fresh
		t.drl = drl
		primary = drl
	case PrimaryHeuristic:
		h, err := heuristicFor(sys, envCfg.MinFreqFrac)
		if err != nil {
			return nil, fmt.Errorf("server: tenant %q: %w", spec.Name, err)
		}
		primary = h
		agent = nil
	}

	// Chaos hook: a slow actor exposes the watchdog + ladder path.
	if cfg.SlowActor > 0 {
		primary = &slowScheduler{inner: primary, delay: cfg.SlowActor}
	}
	t.primary = primary.Name()

	// Guard chain around the primary.
	gcfg := guard.Config{
		Env:           envCfg,
		OODThreshold:  spec.OODThreshold,
		LatencyBudget: cfg.ActorBudget,
		RecordPlans:   cfg.RecordPlans || cfg.Online != nil,
	}
	if t.drl == nil {
		// No actor, no training distribution: the drift gate has nothing
		// to compare against.
		gcfg.OODThreshold = -1
	} else if gcfg.OODThreshold >= 0 {
		if agent != nil && agent.Norm != nil {
			gcfg.Ref, err = guard.RefFromNormalizer(agent.Norm)
		} else {
			gcfg.Ref, err = guard.ProbeReference(sys, envCfg, 256)
		}
		if err != nil {
			return nil, fmt.Errorf("server: tenant %q: %w", spec.Name, err)
		}
	}
	chain, err := guard.ChainFromSpec(sys, spec.Fallback, envCfg.MinFreqFrac)
	if err != nil {
		return nil, fmt.Errorf("server: tenant %q: %w", spec.Name, err)
	}
	t.guard, err = guard.New(primary, gcfg, chain...)
	if err != nil {
		return nil, fmt.Errorf("server: tenant %q: %w", spec.Name, err)
	}

	// Ladder backstops: heuristic and the precomputed safe plan.
	t.heuristic, err = heuristicFor(sys, envCfg.MinFreqFrac)
	if err != nil {
		return nil, fmt.Errorf("server: tenant %q: %w", spec.Name, err)
	}
	t.maxPlan = make([]float64, sys.N())
	t.floors = make([]float64, sys.N())
	t.caps = make([]float64, sys.N())
	for i, d := range sys.Devices {
		t.maxPlan[i] = d.MaxFreqHz
		t.floors[i] = envCfg.MinFreqFrac * d.MaxFreqHz
		t.caps[i] = d.MaxFreqHz
	}

	// Online continual learning: only DRL-primary tenants carry a loop
	// (there is no policy to fine-tune otherwise). The loop owns a clone
	// of the serving agent's policy as its champion seed; promotions swap
	// weights into the live DRL under the tenant lock.
	if cfg.Online != nil && t.drl != nil && agent != nil {
		ocfg := *cfg.Online
		ocfg.Guard.Env = envCfg
		ocfg.Fallback = spec.Fallback
		ocfg.OnPromote = t.swapActor
		loopAgent := &core.Agent{
			Policy: agent.Policy.ClonePolicy(),
			Critic: agent.Critic,
			EnvCfg: envCfg,
			Norm:   agent.Norm,
		}
		t.loop, err = online.NewLoop(sys, loopAgent, ocfg)
		if err != nil {
			return nil, fmt.Errorf("server: tenant %q online loop: %w", spec.Name, err)
		}
		t.onlineCh = make(chan guard.Decision, 256)
	}

	// Admission and queue.
	rate, burst := spec.Rate, spec.Burst
	if rate == 0 {
		rate = cfg.Rate
	}
	if burst == 0 {
		burst = cfg.Burst
	}
	t.bucket = NewBucket(rate, burst, cfg.Now)
	qcap := spec.QueueCap
	if qcap == 0 {
		qcap = cfg.QueueCap
	}
	t.queue = make(chan *call, qcap)
	return t, nil
}

// freshAgent builds an untrained agent for the system's layout — full
// serving cost without a training run, for load tests and smoke checks.
// Deterministic in (sys, seed).
func freshAgent(sys *fl.System, seed int64) (*core.Agent, error) {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	tr, err := core.NewTrainer(sys, cfg)
	if err != nil {
		return nil, err
	}
	return tr.Agent(), nil
}

// heuristicFor seeds the re-optimizing baseline from the tenant's trace
// means, exactly as guard.ChainFromSpec does.
func heuristicFor(sys *fl.System, minFrac float64) (sched.Scheduler, error) {
	bw := make([]float64, sys.N())
	for i, tr := range sys.Traces {
		bw[i] = tr.Summary().Mean
		if bw[i] <= 0 {
			bw[i] = 1
		}
	}
	return sched.NewHeuristic(bw, minFrac)
}

// slowScheduler injects artificial actor latency — the chaos hook that
// drives the watchdog/ladder path in tests and smoke runs.
type slowScheduler struct {
	inner sched.Scheduler
	delay time.Duration
}

// Name implements sched.Scheduler (keeping the wrapped name so ladder and
// audit attribution are unchanged).
func (s *slowScheduler) Name() string { return s.inner.Name() }

// Frequencies implements sched.Scheduler.
func (s *slowScheduler) Frequencies(ctx sched.Context) ([]float64, error) {
	time.Sleep(s.delay)
	return s.inner.Frequencies(ctx)
}

// Mode returns the tenant's current ladder mode.
func (t *Tenant) Mode() Mode { return Mode(t.mode.Load()) }

// QueueLen returns the instantaneous queue depth.
func (t *Tenant) QueueLen() int { return len(t.queue) }

// estWait estimates how long a request enqueued now would wait before
// being served: queued work plus itself, at the EWMA service time. Zero
// before the first decision (a cold tenant never sheds on estimates).
func (t *Tenant) estWait() time.Duration {
	ewma := time.Duration(t.ewmaNS.Load())
	return time.Duration(len(t.queue)+1) * ewma
}

// updateEWMA folds one service time into the estimate (α = 0.2).
func (t *Tenant) updateEWMA(d time.Duration) {
	old := t.ewmaNS.Load()
	if old == 0 {
		t.ewmaNS.Store(int64(d))
		return
	}
	t.ewmaNS.Store(old + (int64(d)-old)/5)
}

// start launches the tenant's worker (and, when configured, its online
// continual-learning goroutine). Called exactly once, after the tenant is
// installed in the registry.
func (t *Tenant) start(s *Server) {
	t.wg.Add(1)
	go t.run(s)
	if t.loop != nil {
		t.onlineWG.Add(1)
		go t.runOnline()
	}
}

// enqueue attempts to queue a call. closed reports that the tenant has
// been retired by a reload — the handler should re-resolve the name and
// retry on the replacement rather than fail the request.
func (t *Tenant) enqueue(c *call) (ok, closed bool) {
	t.qmu.RLock()
	defer t.qmu.RUnlock()
	if t.qclosed {
		return false, true
	}
	select {
	case t.queue <- c:
		t.accepted.Add(1)
		return true, false
	default:
		return false, false
	}
}

// closeQueue closes the tenant's queue exactly once, excluding concurrent
// enqueues. The worker drains whatever is already queued and exits —
// every accepted call is still answered.
func (t *Tenant) closeQueue() {
	t.qmu.Lock()
	defer t.qmu.Unlock()
	if !t.qclosed {
		t.qclosed = true
		close(t.queue)
	}
}

// retire shuts the tenant down: stop accepting, drain the queue, stop the
// online goroutine. On return every accepted call has been responded to.
func (t *Tenant) retire() {
	t.closeQueue()
	t.wg.Wait()
	t.stopOnline()
}

// stopOnline terminates the online goroutine after the worker has exited
// (the worker is the only sender).
func (t *Tenant) stopOnline() {
	if t.onlineCh != nil {
		close(t.onlineCh)
		t.onlineWG.Wait()
		t.onlineCh = nil
	}
}

// run is the tenant worker: it drains the queue sequentially, which is
// what makes the guard (documented single-run) safe under arbitrary
// handler concurrency and keeps each tenant's audit stream deterministic
// in its request order.
func (t *Tenant) run(s *Server) {
	defer t.wg.Done()
	for c := range t.queue {
		t.serveCall(s, c)
	}
}

// runOnline consumes streamed guard decisions off the serving path: the
// drift gate watches every score, replayable decisions fill the buffer,
// and a triggered retrain (fine-tune, checkpoint, shadow-eval, promote or
// roll back) runs here so decide latency never pays for it.
func (t *Tenant) runOnline() {
	defer t.onlineWG.Done()
	for d := range t.onlineCh {
		rep, err := t.loop.Ingest(d)
		if err != nil {
			t.onlineErrs.Add(1)
			continue
		}
		if rep != nil {
			t.onlineRetrains.Add(1)
			if rep.Promoted {
				t.onlinePromotions.Add(1)
			}
		}
	}
}

// swapActor is the loop's promotion hook: install the candidate's weights
// into the serving DRL under the tenant lock. Decisions in flight finish
// on the old weights; the next decision serves the new ones.
func (t *Tenant) swapActor(a *core.Agent) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.drl.SwapPolicy(a.Policy)
}

// serveCall answers one queued call, honoring its context deadline.
func (t *Tenant) serveCall(s *Server, c *call) {
	defer t.responded.Add(1)
	if c.ctx.Err() != nil {
		// The client's budget expired while the call was queued; the
		// handler has already answered 504. Do no work.
		c.resp <- callResult{status: http.StatusGatewayTimeout, errMsg: "deadline exceeded in queue"}
		return
	}
	start := s.now()
	res := t.decide(s, c.req)
	d := s.now().Sub(start)
	t.updateEWMA(d)
	s.hist.Observe(d)
	c.resp <- res
}

// decide makes one decision (or a batch) at the tenant's current ladder
// mode, advancing the ladder on each outcome. The guard sees the whole
// batch as consecutive serial decisions under one lock hold — batching
// amortizes the HTTP round trip without changing decision semantics.
func (t *Tenant) decide(s *Server, req *DecideRequest) callResult {
	t.mu.Lock()
	defer t.mu.Unlock()

	if req.ObservedCost != nil {
		// Close the realized-cost loop on the previous decision before
		// pricing the next one.
		t.guard.Observe(fl.IterationStats{Cost: *req.ObservedCost})
	}

	if req.Clock != nil {
		t.clock = *req.Clock
	}
	if len(req.LastBW) > 0 && len(req.LastBW) != t.sys.N() {
		return callResult{status: http.StatusBadRequest,
			errMsg: fmt.Sprintf("%d bandwidth observations for %d devices", len(req.LastBW), t.sys.N())}
	}
	if len(req.Down) > 0 && len(req.Down) != t.sys.N() {
		return callResult{status: http.StatusBadRequest,
			errMsg: fmt.Sprintf("%d down flags for %d devices", len(req.Down), t.sys.N())}
	}

	n := req.Count
	if n < 1 {
		n = 1
	}
	resp := &DecideResponse{Iter: t.iter, Clock: t.clock, Count: n}
	if n > 1 {
		resp.Plans = make([][]float64, 0, n)
	}
	for k := 0; k < n; k++ {
		// Realized-bandwidth/down observations apply to the first
		// decision of a batch; later ones are forecast from the traces.
		lastBW, down := req.LastBW, req.Down
		if k > 0 {
			lastBW, down = nil, nil
		}
		fs, layer := t.decideOne(s, sched.Context{
			Sys: t.sys, Clock: t.clock, Iter: t.iter, LastBW: lastBW, Down: down,
		})
		resp.Freqs, resp.Layer = fs, layer
		if n > 1 {
			resp.Plans = append(resp.Plans, fs)
		}
	}
	resp.Mode = Mode(t.mode.Load()).String()
	return callResult{status: http.StatusOK, plan: resp}
}

// decideOne serves one decision at the current ladder mode. Must hold
// t.mu. It cannot fail: errors fall through to the max-frequency plan.
func (t *Tenant) decideOne(s *Server, ctx sched.Context) (fs []float64, layer string) {
	mode := Mode(t.mode.Load())
	var err error
	switch mode {
	case ModeGuarded:
		fs, err = t.guard.Frequencies(ctx)
		if err == nil {
			if d, ok := t.guard.Audit().Last(); ok {
				layer = d.Layer
				if t.onlineCh != nil {
					// Stream the decision to the continual-learning
					// goroutine; a full channel drops the sample (counted)
					// rather than ever stalling the decide path.
					select {
					case t.onlineCh <- d:
					default:
						t.onlineDropped.Add(1)
					}
				}
			}
		}
	case ModeHeuristic:
		fs, err = t.heuristic.Frequencies(ctx)
		if err == nil {
			_, err = guard.Sanitize(fs, t.floors, t.caps)
		}
		layer = "heuristic"
	default: // ModeMaxFreq
		fs = append([]float64(nil), t.maxPlan...)
		layer = "maxfreq"
	}
	if err != nil {
		// Terminal backstop: the max-frequency plan cannot fail, so the
		// caller still gets a valid (if expensive) plan.
		s.counters.Errors.Add(1)
		fs = append([]float64(nil), t.maxPlan...)
		layer = "maxfreq"
	}

	t.iter++
	tick := t.spec.TickSec
	if tick == 0 {
		tick = 10
	}
	t.clock += tick

	t.advanceLadder(s, mode, layer, err)
	s.counters.Decisions.Add(1)
	if layer != t.primary {
		s.counters.Degraded.Add(1)
	}
	return fs, layer
}

// advanceLadder folds one decision outcome into the degradation ladder:
//
//	guarded   --degradeAfter consecutive off-primary serves or errors-->  heuristic
//	heuristic --any error--> maxfreq; --cooldown elapsed--> probe guarded
//	maxfreq   --cooldown elapsed--> heuristic
//
// A probe returns to guarded with one strike left, so a still-broken
// guard re-degrades after a single bad decision instead of degradeAfter.
func (t *Tenant) advanceLadder(s *Server, mode Mode, layer string, err error) {
	switch mode {
	case ModeGuarded:
		if err != nil || layer != t.primary {
			t.consecFallback++
			if t.consecFallback >= t.degradeAfter {
				t.setMode(s, ModeHeuristic)
				t.cooldown = t.cooldownN
			}
		} else {
			t.consecFallback = 0
		}
	case ModeHeuristic:
		if err != nil {
			t.setMode(s, ModeMaxFreq)
			t.cooldown = t.cooldownN
			return
		}
		t.cooldown--
		if t.cooldown <= 0 {
			// Probe: back to guarded with one strike left.
			t.mode.Store(int32(ModeGuarded))
			t.consecFallback = t.degradeAfter - 1
		}
	default: // ModeMaxFreq
		t.cooldown--
		if t.cooldown <= 0 {
			t.mode.Store(int32(ModeHeuristic))
			t.cooldown = t.cooldownN
		}
	}
}

// setMode records a degradation transition.
func (t *Tenant) setMode(s *Server, m Mode) {
	t.consecFallback = 0
	if Mode(t.mode.Load()) != m {
		s.counters.DegradeTransitions.Add(1)
	}
	t.mode.Store(int32(m))
}

// TenantStats is a tenant's row in /v1/stats.
type TenantStats struct {
	Name         string         `json:"name"`
	N            int            `json:"n"`
	Primary      string         `json:"primary"`
	Mode         string         `json:"mode"`
	Decisions    int            `json:"decisions"`
	Accepted     int64          `json:"accepted"`
	Responded    int64          `json:"responded"`
	QueueLen     int            `json:"queue_len"`
	Served       map[string]int `json:"served"`
	Events       map[string]int `json:"events,omitempty"`
	F32Fallbacks int64          `json:"f32_fallbacks,omitempty"`
	Backend      string         `json:"backend,omitempty"`
	// Online continual-learning counters (present only when the loop is
	// enabled for this tenant).
	OnlineRetrains   int64 `json:"online_retrains,omitempty"`
	OnlinePromotions int64 `json:"online_promotions,omitempty"`
	OnlineDropped    int64 `json:"online_dropped,omitempty"`
	OnlineErrors     int64 `json:"online_errors,omitempty"`
}

// Stats snapshots the tenant for the stats endpoint.
func (t *Tenant) Stats() TenantStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := TenantStats{
		Name:      t.spec.Name,
		N:         t.sys.N(),
		Primary:   t.primary,
		Mode:      t.Mode().String(),
		Decisions: t.iter,
		Accepted:  t.accepted.Load(),
		Responded: t.responded.Load(),
		QueueLen:  len(t.queue),
		Served:    t.guard.Audit().ServedCounts(),
		Events:    t.guard.Audit().EventCounts(),
	}
	if t.drl != nil {
		st.F32Fallbacks = t.drl.F32Fallbacks()
		st.Backend = t.drl.Backend()
	}
	if t.loop != nil {
		st.OnlineRetrains = t.onlineRetrains.Load()
		st.OnlinePromotions = t.onlinePromotions.Load()
		st.OnlineDropped = t.onlineDropped.Load()
		st.OnlineErrors = t.onlineErrs.Load()
	}
	return st
}

// flushAudit writes the tenant's audit (summary table plus canonical
// decision lines) to w. Byte-stable for a fixed per-tenant request
// sequence — the drain test compares these bytes across identical runs.
func (t *Tenant) flushAudit(w io.Writer) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.guard.Audit().Render(w)
}
