package server

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/report"
)

// Telemetry is the live observability flush: the same stats document
// /v1/stats serves, every tenant's audit log, and the registry snapshot —
// written atomically while the daemon keeps serving, so an operator (or a
// crash post-mortem) always has an on-disk view no older than one interval.
// Drain performs the same flush one final time; periodic flushes just make
// it continuous.

// TelemetryReport lists what one flush wrote.
type TelemetryReport struct {
	// Stats is the stats JSON path ("" when no AuditDir is configured).
	Stats string `json:"stats,omitempty"`
	// AuditFiles are the per-tenant audit logs, in tenant order.
	AuditFiles []string `json:"audit_files,omitempty"`
	// Snapshot is the registry snapshot path, when configured.
	Snapshot string `json:"snapshot,omitempty"`
}

// FlushTelemetry writes the current stats, audits and registry snapshot to
// the configured paths (AuditDir for stats.json and <tenant>.audit files,
// SnapshotPath for the registry). Every file is written via an atomic
// rename, so readers and a concurrent drain never observe a torn file. With
// neither path configured the flush is a no-op.
func (s *Server) FlushTelemetry() (*TelemetryReport, error) {
	rep := &TelemetryReport{}
	if s.cfg.AuditDir != "" {
		if err := os.MkdirAll(s.cfg.AuditDir, 0o755); err != nil {
			return rep, fmt.Errorf("server: audit dir: %w", err)
		}
		data, err := json.MarshalIndent(s.statsSnapshot(), "", "  ")
		if err != nil {
			return rep, fmt.Errorf("server: encode stats: %w", err)
		}
		path := filepath.Join(s.cfg.AuditDir, "stats.json")
		if err := report.WriteFileAtomic(path, append(data, '\n'), 0o644); err != nil {
			return rep, err
		}
		rep.Stats = path
		for _, t := range s.reg.all() {
			var buf []byte
			w := &sliceWriter{b: &buf}
			if err := t.flushAudit(w); err != nil {
				return rep, fmt.Errorf("server: render audit %q: %w", t.spec.Name, err)
			}
			path := filepath.Join(s.cfg.AuditDir, t.spec.Name+".audit")
			if err := report.WriteFileAtomic(path, buf, 0o644); err != nil {
				return rep, err
			}
			rep.AuditFiles = append(rep.AuditFiles, path)
		}
	}
	if s.cfg.SnapshotPath != "" {
		if err := s.SaveSnapshot(s.cfg.SnapshotPath); err != nil {
			return rep, err
		}
		rep.Snapshot = s.cfg.SnapshotPath
	}
	return rep, nil
}

// StartTelemetry flushes telemetry every interval until the returned stop
// function is called. Flush errors are reported through logf (nil = silent)
// and do not stop the ticker. A non-positive interval disables the ticker
// entirely. Flushes pause once a drain begins — the drain owns the final,
// authoritative flush. stop is idempotent and waits for the goroutine.
func (s *Server) StartTelemetry(interval time.Duration, logf func(format string, args ...interface{})) (stop func()) {
	if interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				if s.draining.Load() {
					continue
				}
				if _, err := s.FlushTelemetry(); err != nil && logf != nil {
					logf("telemetry: %v", err)
				}
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
		})
	}
}
