// Package server is the resilient multi-tenant scheduler daemon around the
// guarded fleet actor: a sharded tenant registry where each tenant owns a
// guard chain, fronted by the overload pipeline DESIGN.md §13 specifies —
// token-bucket admission, a bounded per-tenant queue with deadline-aware
// shedding, per-request timeouts, a degradation ladder (guarded → heuristic
// → max-frequency) and a graceful drain that finishes every in-flight
// request, flushes audits and snapshots the registry crash-safely.
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"context"

	"repro/internal/core"
	"repro/internal/online"
	"repro/internal/report"
)

// Config parameterizes the daemon. The zero value is not usable; start
// from DefaultServerConfig.
type Config struct {
	// Agent is the optionally loaded trained agent; tenants whose layout
	// fits may serve it ("auto"/"drl" primaries).
	Agent *core.Agent
	// Rate and Burst are the default per-tenant admission limits
	// (requests/s and bucket size); Rate <= 0 disables admission control
	// for tenants that do not set their own.
	Rate  float64
	Burst float64
	// QueueCap is the default per-tenant queue bound.
	QueueCap int
	// RequestTimeout bounds a request end to end when the client sends no
	// deadline of its own.
	RequestTimeout time.Duration
	// ActorBudget is the guard's per-decision latency watchdog (0
	// disables).
	ActorBudget time.Duration
	// DegradeAfter is how many consecutive off-primary or failed guarded
	// decisions demote a tenant to the heuristic rung.
	DegradeAfter int
	// Cooldown is how many decisions a demoted tenant serves on the lower
	// rung before probing back up.
	Cooldown int
	// SlowActor injects artificial latency into every tenant's primary —
	// the chaos hook exercising the watchdog and ladder.
	SlowActor time.Duration
	// AuditDir, when set, receives one <tenant>.audit file per tenant on
	// drain.
	AuditDir string
	// SnapshotPath, when set, is where drain persists the registry (and
	// where New restores it from).
	SnapshotPath string
	// RecordPlans switches every tenant guard to the extended audit lines
	// carrying decision clock and served plan, making exported audits
	// replayable by the online continual-learning loop.
	RecordPlans bool
	// Online, when set, enables the per-tenant continual-learning loop for
	// tenants serving a DRL primary: guard decisions stream into an
	// online.Loop off the decide path, and promoted candidates are
	// hot-swapped into the serving actor. The value is the loop
	// configuration (zero fields → the online package defaults); Guard.Env,
	// Fallback and OnPromote are filled per tenant. Implies RecordPlans.
	Online *online.Config
	// TenantSource, when set, supplies the declarative tenant specs that
	// SIGHUP / POST /v1/reload re-read (typically a file reader installed
	// by the flserver -tenants flag).
	TenantSource func() ([]TenantSpec, error)
	// Now is injectable time for tests; nil selects time.Now.
	Now func() time.Time
}

// DefaultServerConfig returns production-shaped defaults: no admission
// limit (opt-in per tenant), a 256-deep queue, a 1s request budget and a
// ladder that degrades after 8 consecutive bad decisions and probes back
// after 64.
func DefaultServerConfig() Config {
	return Config{
		QueueCap:       256,
		RequestTimeout: time.Second,
		DegradeAfter:   8,
		Cooldown:       64,
	}
}

// Server is the daemon: registry, counters, histogram and drain state.
type Server struct {
	cfg      Config
	reg      *registry
	counters Counters
	hist     Histogram

	draining atomic.Bool
	inflight atomic.Int64
	started  time.Time
}

// New builds a server and restores the registry snapshot when one exists.
func New(cfg Config) (*Server, error) {
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 256
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = time.Second
	}
	if cfg.DegradeAfter <= 0 {
		cfg.DegradeAfter = 8
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 64
	}
	s := &Server{cfg: cfg, reg: newRegistry(), started: time.Now()}
	if cfg.SnapshotPath != "" {
		if _, err := s.RestoreSnapshot(cfg.SnapshotPath); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// now is the server's clock.
func (s *Server) now() time.Time {
	if s.cfg.Now != nil {
		return s.cfg.Now()
	}
	return time.Now()
}

// Register builds and installs a tenant and starts its worker.
func (s *Server) Register(spec TenantSpec) (*Tenant, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if s.draining.Load() {
		return nil, fmt.Errorf("server: draining, not accepting tenants")
	}
	t, err := buildTenant(spec, s.cfg)
	if err != nil {
		return nil, err
	}
	if err := s.reg.put(t); err != nil {
		return nil, err
	}
	t.start(s)
	return t, nil
}

// Tenant resolves a registered tenant, or nil.
func (s *Server) Tenant(name string) *Tenant { return s.reg.get(name) }

// Counters exposes the lifetime counters.
func (s *Server) Counters() *Counters { return &s.counters }

// Hist exposes the decide service-time histogram.
func (s *Server) Hist() *Histogram { return &s.hist }

// Handler builds the daemon's HTTP surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/tenants", s.handleRegister)
	mux.HandleFunc("GET /v1/tenants/{name}", s.handleTenant)
	mux.HandleFunc("GET /v1/tenants/{name}/audit", s.handleAudit)
	mux.HandleFunc("POST /v1/decide", s.handleDecide)
	mux.HandleFunc("POST /v1/reload", s.handleReload)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	return mux
}

// readBody reads a bounded request body.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	return io.ReadAll(http.MaxBytesReader(w, r.Body, MaxRequestBytes))
}

// writeJSON renders one JSON response.
func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeError renders the uniform error body, mirroring any retry hint into
// the Retry-After header (whole seconds, rounded up, per RFC 9110).
func writeError(w http.ResponseWriter, status int, msg string, retryAfter time.Duration) {
	body := ErrorBody{Error: msg}
	if retryAfter > 0 {
		body.RetryAfterMS = float64(retryAfter) / float64(time.Millisecond)
		secs := int64((retryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	}
	writeJSON(w, status, body)
}

// handleRegister creates a tenant.
func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	data, err := readBody(w, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), 0)
		return
	}
	spec, err := DecodeRegisterRequest(data)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), 0)
		return
	}
	t, err := s.Register(*spec)
	if err != nil {
		status := http.StatusUnprocessableEntity
		if s.draining.Load() {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err.Error(), 0)
		return
	}
	writeJSON(w, http.StatusCreated, t.Stats())
}

// handleTenant reports one tenant's stats.
func (s *Server) handleTenant(w http.ResponseWriter, r *http.Request) {
	t := s.reg.get(r.PathValue("name"))
	if t == nil {
		writeError(w, http.StatusNotFound, "unknown tenant", 0)
		return
	}
	writeJSON(w, http.StatusOK, t.Stats())
}

// handleDecide runs the overload pipeline: drain gate → strict decode →
// tenant lookup → admission → deadline shed → bounded enqueue → await
// decision or timeout. Every request terminates in exactly one counter.
func (s *Server) handleDecide(w http.ResponseWriter, r *http.Request) {
	s.counters.Requests.Add(1)
	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	if s.draining.Load() {
		s.counters.ShedDrain.Add(1)
		writeError(w, http.StatusServiceUnavailable, "draining", time.Second)
		return
	}

	data, err := readBody(w, r)
	if err != nil {
		s.counters.Malformed.Add(1)
		writeError(w, http.StatusBadRequest, err.Error(), 0)
		return
	}
	req, err := DecodeDecideRequest(data)
	if err != nil {
		s.counters.Malformed.Add(1)
		writeError(w, http.StatusBadRequest, err.Error(), 0)
		return
	}

	t := s.reg.get(req.Tenant)
	if t == nil {
		s.counters.NotFound.Add(1)
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown tenant %q", req.Tenant), 0)
		return
	}

	// Admission: refuse over-rate traffic before any queue or decision
	// work, with an honest Retry-After. A batch is charged one token per
	// decision it carries.
	tokens := float64(req.Count)
	if tokens < 1 {
		tokens = 1
	}
	if ok, wait := t.bucket.TakeN(tokens); !ok {
		s.counters.ShedRate.Add(1)
		writeError(w, http.StatusTooManyRequests, "admission: rate limit", wait)
		return
	}

	// The client's budget, server-capped.
	budget := s.cfg.RequestTimeout
	if req.DeadlineMS > 0 {
		if d := time.Duration(req.DeadlineMS * float64(time.Millisecond)); d < budget {
			budget = d
		}
	}

	// Deadline-aware shedding: if the expected queue wait already spends
	// the budget, reject now instead of letting the request time out in
	// queue — the client learns in microseconds, not after its deadline.
	if est := t.estWait(); est > budget {
		s.counters.ShedDeadline.Add(1)
		writeError(w, http.StatusServiceUnavailable,
			fmt.Sprintf("queue wait ~%v exceeds %v budget", est.Round(time.Millisecond), budget), est-budget)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), budget)
	defer cancel()
	c := &call{ctx: ctx, req: req, resp: make(chan callResult, 1)}

	// Bounded enqueue: a full queue is backpressure, not a wait. A closed
	// queue means a reload retired this tenant after the lookup above —
	// re-resolve the name and land on the replacement, so reloads drop
	// zero in-flight requests.
	for attempt := 0; ; attempt++ {
		ok, closed := t.enqueue(c)
		if ok {
			break
		}
		if closed && attempt < 2 {
			if nt := s.reg.get(req.Tenant); nt != nil && nt != t {
				t = nt
				continue
			}
		}
		s.counters.ShedQueue.Add(1)
		msg := "queue full"
		if closed {
			msg = "tenant reloading"
		}
		writeError(w, http.StatusServiceUnavailable, msg, t.estWait())
		return
	}

	select {
	case res := <-c.resp:
		if res.status == http.StatusOK {
			writeJSON(w, http.StatusOK, res.plan)
		} else {
			if res.status == http.StatusGatewayTimeout {
				s.counters.Timeouts.Add(1)
			}
			writeError(w, res.status, res.errMsg, res.retryAfter)
		}
	case <-ctx.Done():
		// The worker will still drain the call (and observe the expired
		// context); the client gets its timeout now.
		s.counters.Timeouts.Add(1)
		writeError(w, http.StatusGatewayTimeout, "deadline exceeded", 0)
	}
}

// statsBody is the /v1/stats response.
type statsBody struct {
	UptimeSec float64            `json:"uptime_sec"`
	Draining  bool               `json:"draining"`
	Counters  map[string]int64   `json:"counters"`
	LatencyMS map[string]float64 `json:"latency_ms"`
	Tenants   []TenantStats      `json:"tenants"`
}

// statsSnapshot assembles the live stats document served by /v1/stats and
// flushed by the telemetry ticker.
func (s *Server) statsSnapshot() statsBody {
	body := statsBody{
		UptimeSec: time.Since(s.started).Seconds(),
		Draining:  s.draining.Load(),
		Counters:  s.counters.Snapshot(),
		LatencyMS: map[string]float64{
			"p50": float64(s.hist.Quantile(0.50)) / float64(time.Millisecond),
			"p90": float64(s.hist.Quantile(0.90)) / float64(time.Millisecond),
			"p99": float64(s.hist.Quantile(0.99)) / float64(time.Millisecond),
		},
	}
	for _, t := range s.reg.all() {
		body.Tenants = append(body.Tenants, t.Stats())
	}
	return body
}

// handleStats reports counters, decide-latency quantiles and every
// tenant's state.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.statsSnapshot())
}

// handleHealthz is the liveness/readiness probe: 200 serving, 503 draining.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining", 0)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// DrainReport accounts for a completed drain. Dropped is the invariant the
// chaos harness pins to zero: every accepted request was answered.
type DrainReport struct {
	Tenants   int   `json:"tenants"`
	Accepted  int64 `json:"accepted"`
	Responded int64 `json:"responded"`
	Dropped   int64 `json:"dropped"`
	// AuditFiles lists the audit logs flushed, in tenant order.
	AuditFiles []string `json:"audit_files,omitempty"`
	// Snapshot is the registry snapshot path, when persisted.
	Snapshot string `json:"snapshot,omitempty"`
}

// BeginDrain flips the server into drain mode: decide requests and tenant
// registrations are refused from this point on. Idempotent.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports drain mode.
func (s *Server) Draining() bool { return s.draining.Load() }

// FinishDrain completes a graceful shutdown. It must be called after
// BeginDrain and after the HTTP listener has stopped dispatching new
// requests (http.Server.Shutdown): it waits for every in-flight handler to
// finish, closes the tenant queues so the workers exit, flushes one audit
// file per tenant and snapshots the registry — all crash-safe via atomic
// renames. The report's Dropped count is accepted − responded: zero means
// no in-flight request was dropped.
func (s *Server) FinishDrain(ctx context.Context) (*DrainReport, error) {
	if !s.draining.Load() {
		return nil, fmt.Errorf("server: FinishDrain before BeginDrain")
	}

	// Wait out handlers that passed the drain gate before it flipped; no
	// new ones can start. Once inflight hits zero every accepted call has
	// been answered, so closing the queues below is safe.
	for s.inflight.Load() != 0 {
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("server: drain: %w", ctx.Err())
		case <-time.After(time.Millisecond):
		}
	}

	rep := &DrainReport{}
	tenants := s.reg.all()
	rep.Tenants = len(tenants)
	for _, t := range tenants {
		t.closeQueue()
	}
	for _, t := range tenants {
		t.wg.Wait()
		t.stopOnline()
		rep.Accepted += t.accepted.Load()
		rep.Responded += t.responded.Load()
	}
	rep.Dropped = rep.Accepted - rep.Responded

	if s.cfg.AuditDir != "" {
		if err := os.MkdirAll(s.cfg.AuditDir, 0o755); err != nil {
			return rep, fmt.Errorf("server: audit dir: %w", err)
		}
		for _, t := range tenants {
			var buf []byte
			w := &sliceWriter{b: &buf}
			if err := t.flushAudit(w); err != nil {
				return rep, fmt.Errorf("server: render audit %q: %w", t.spec.Name, err)
			}
			path := filepath.Join(s.cfg.AuditDir, t.spec.Name+".audit")
			if err := report.WriteFileAtomic(path, buf, 0o644); err != nil {
				return rep, err
			}
			rep.AuditFiles = append(rep.AuditFiles, path)
		}
	}

	if s.cfg.SnapshotPath != "" {
		if err := s.SaveSnapshot(s.cfg.SnapshotPath); err != nil {
			return rep, err
		}
		rep.Snapshot = s.cfg.SnapshotPath
	}
	return rep, nil
}

// sliceWriter collects writes into a byte slice (audit render target).
type sliceWriter struct{ b *[]byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	*w.b = append(*w.b, p...)
	return len(p), nil
}
