package server

import (
	"math"
	"sync/atomic"
	"time"
)

// Counters are the daemon's lifetime counters, one per overload-pipeline
// stage (DESIGN.md §13): every request lands in exactly one terminal
// counter, so admitted + the four rejection classes + timeouts always
// reconcile against Requests.
type Counters struct {
	// Requests counts decide requests that reached the handler.
	Requests atomic.Int64
	// Malformed counts requests rejected by the strict decoder (400).
	Malformed atomic.Int64
	// NotFound counts requests naming an unregistered tenant (404).
	NotFound atomic.Int64
	// ShedRate counts admission-control rejections (429, token bucket).
	ShedRate atomic.Int64
	// ShedQueue counts bounded-queue overflows (503).
	ShedQueue atomic.Int64
	// ShedDeadline counts deadline-aware rejections: the estimated queue
	// wait already exceeded the client's budget, so the request was
	// refused up front with Retry-After instead of timing out in queue.
	ShedDeadline atomic.Int64
	// ShedDrain counts requests refused because the daemon was draining.
	ShedDrain atomic.Int64
	// Timeouts counts requests whose context expired before a decision
	// was delivered (504).
	Timeouts atomic.Int64
	// Errors counts internal decision failures answered by the terminal
	// max-frequency plan (the response still succeeds; this counts how
	// often the emergency plan backed it).
	Errors atomic.Int64
	// Decisions counts successfully served frequency plans.
	Decisions atomic.Int64
	// Degraded counts served decisions that did not come from the
	// tenant's primary layer (guard fallback or ladder degradation).
	Degraded atomic.Int64
	// DegradeTransitions counts ladder mode changes away from guarded.
	DegradeTransitions atomic.Int64
}

// Snapshot copies the counters into a plain map for JSON rendering.
func (c *Counters) Snapshot() map[string]int64 {
	return map[string]int64{
		"requests":            c.Requests.Load(),
		"malformed":           c.Malformed.Load(),
		"not_found":           c.NotFound.Load(),
		"shed_rate":           c.ShedRate.Load(),
		"shed_queue":          c.ShedQueue.Load(),
		"shed_deadline":       c.ShedDeadline.Load(),
		"shed_drain":          c.ShedDrain.Load(),
		"timeouts":            c.Timeouts.Load(),
		"errors":              c.Errors.Load(),
		"decisions":           c.Decisions.Load(),
		"degraded":            c.Degraded.Load(),
		"degrade_transitions": c.DegradeTransitions.Load(),
	}
}

// histBuckets is the number of geometric latency buckets: 1µs growing by
// 1.25× per bucket spans 1µs … ~1.3s; slower observations land in the
// final overflow bucket.
const histBuckets = 64

// histBase and histGrowth parameterize the bucket boundaries.
const (
	histBase   = float64(time.Microsecond)
	histGrowth = 1.25
)

// Histogram is a lock-free log-bucketed service-time histogram for the
// /v1/stats latency quantiles. Observations and quantile reads may race
// freely; quantiles are computed from an atomic per-bucket snapshot.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
}

// bucketFor maps a duration to its bucket index.
func bucketFor(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	idx := int(math.Log(float64(d)/histBase) / math.Log(histGrowth))
	if idx < 0 {
		return 0
	}
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// upperBound returns a bucket's upper latency edge.
func upperBound(idx int) time.Duration {
	return time.Duration(histBase * math.Pow(histGrowth, float64(idx+1)))
}

// Observe records one service time.
func (h *Histogram) Observe(d time.Duration) {
	h.buckets[bucketFor(d)].Add(1)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Quantile returns an upper-bound estimate of the p-quantile (p in [0,1]),
// or 0 with no observations. The estimate is the upper edge of the bucket
// containing the p-th observation, so it errs high by at most one growth
// factor — honest for alerting thresholds.
func (h *Histogram) Quantile(p float64) time.Duration {
	var counts [histBuckets]int64
	var total int64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := int64(math.Ceil(p * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range counts {
		cum += counts[i]
		if cum >= rank {
			return upperBound(i)
		}
	}
	return upperBound(histBuckets - 1)
}
