package report

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes data to path crash-safely: the bytes land in a
// temporary file in the same directory, are fsynced, and are renamed over
// the destination in one step. A reader (or a restart after kill -9) sees
// either the previous complete file or the new complete file, never a
// partial write. This is the same pattern core.Checkpoint uses for agent
// snapshots; it lives here so servers and reporters can share it for audit
// flushes, registry snapshots and benchmark results.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("report: create %s: %w", dir, err)
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("report: stage %s: %w", path, err)
	}
	tmpName := tmp.Name()
	cleanup := func() { os.Remove(tmpName) }
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		cleanup()
		return fmt.Errorf("report: stage %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		cleanup()
		return fmt.Errorf("report: sync %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		cleanup()
		return fmt.Errorf("report: close %s: %w", path, err)
	}
	if err := os.Chmod(tmpName, perm); err != nil {
		cleanup()
		return fmt.Errorf("report: chmod %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		cleanup()
		return fmt.Errorf("report: commit %s: %w", path, err)
	}
	return nil
}
