package report

import (
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "nested", "out.json")

	if err := WriteFileAtomic(path, []byte("first"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "first" {
		t.Fatalf("content %q", got)
	}

	// Overwrite lands whole and leaves no stray temp files behind.
	if err := WriteFileAtomic(path, []byte("second"), 0o600); err != nil {
		t.Fatal(err)
	}
	got, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "second" {
		t.Fatalf("content %q after overwrite", got)
	}
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("%d entries in target dir, want only the file", len(entries))
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode().Perm() != 0o600 {
		t.Fatalf("mode %v, want 0600", info.Mode().Perm())
	}
}
