// Package report renders evaluation results for terminal output and CSV
// export: fixed-width tables, (x, y) series dumps, and ASCII sparklines for
// the convergence curves. The experiment runners use it to print the same
// rows and series the paper's tables and figures show.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Table is a simple fixed-width text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// AddRowf appends a row of formatted values: strings pass through, float64
// values are rendered with %.4g, ints with %d.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case string:
			row = append(row, v)
		case float64:
			row = append(row, strconv.FormatFloat(v, 'g', 4, 64))
		case int:
			row = append(row, strconv.Itoa(v))
		default:
			row = append(row, fmt.Sprint(v))
		}
	}
	t.AddRow(row...)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Render(&b); err != nil {
		return fmt.Sprintf("report: render failed: %v", err)
	}
	return b.String()
}

// WriteSeriesCSV dumps aligned series as CSV: the first column is x, the
// remaining columns are named series (all must have len(x) values).
func WriteSeriesCSV(w io.Writer, xName string, x []float64, series map[string][]float64) error {
	names := make([]string, 0, len(series))
	for name, ys := range series {
		if len(ys) != len(x) {
			return fmt.Errorf("report: series %q has %d points, x has %d", name, len(ys), len(x))
		}
		names = append(names, name)
	}
	sortStrings(names)
	cw := csv.NewWriter(w)
	header := append([]string{xName}, names...)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("report: write header: %w", err)
	}
	rec := make([]string, len(header))
	for i := range x {
		rec[0] = strconv.FormatFloat(x[i], 'g', -1, 64)
		for j, name := range names {
			rec[j+1] = strconv.FormatFloat(series[name][i], 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("report: write row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// sparkLevels are the eight block characters of a sparkline.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders ys as a compact unicode chart, downsampling to at most
// width points (width ≤ 0 uses len(ys)). Non-finite values render as spaces.
func Sparkline(ys []float64, width int) string {
	if len(ys) == 0 {
		return ""
	}
	if width <= 0 || width > len(ys) {
		width = len(ys)
	}
	// Downsample by averaging buckets.
	buckets := make([]float64, width)
	counts := make([]int, width)
	for i, y := range ys {
		b := i * width / len(ys)
		if !math.IsNaN(y) && !math.IsInf(y, 0) {
			buckets[b] += y
			counts[b]++
		}
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for b := range buckets {
		if counts[b] == 0 {
			buckets[b] = math.NaN()
			continue
		}
		buckets[b] /= float64(counts[b])
		if buckets[b] < lo {
			lo = buckets[b]
		}
		if buckets[b] > hi {
			hi = buckets[b]
		}
	}
	var sb strings.Builder
	for _, v := range buckets {
		if math.IsNaN(v) {
			sb.WriteRune(' ')
			continue
		}
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkLevels)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkLevels) {
			idx = len(sparkLevels) - 1
		}
		sb.WriteRune(sparkLevels[idx])
	}
	return sb.String()
}

// FormatSI renders a value with an SI suffix (k, M, G) for readable
// bandwidth and frequency reporting.
func FormatSI(v float64, unit string) string {
	abs := math.Abs(v)
	switch {
	case abs >= 1e9:
		return fmt.Sprintf("%.2fG%s", v/1e9, unit)
	case abs >= 1e6:
		return fmt.Sprintf("%.2fM%s", v/1e6, unit)
	case abs >= 1e3:
		return fmt.Sprintf("%.2fk%s", v/1e3, unit)
	default:
		return fmt.Sprintf("%.2f%s", v, unit)
	}
}
