package report

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"unicode/utf8"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Costs", "scheduler", "cost")
	tb.AddRow("drl", "7.25")
	tb.AddRow("heuristic", "9.74")
	out := tb.String()
	if !strings.Contains(out, "Costs") || !strings.Contains(out, "scheduler") {
		t.Fatalf("missing title/header:\n%s", out)
	}
	if !strings.Contains(out, "drl") || !strings.Contains(out, "9.74") {
		t.Fatalf("missing data:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Columns align: every data line has the second column starting at the
	// same offset.
	idx := strings.Index(lines[1], "cost")
	if strings.Index(lines[3], "7.25") != idx && !strings.Contains(lines[3], "7.25") {
		t.Fatalf("misaligned:\n%s", out)
	}
}

func TestTableAddRowf(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRowf("x", 3.14159, 42)
	if tb.Rows[0][0] != "x" || tb.Rows[0][2] != "42" {
		t.Fatalf("row = %v", tb.Rows[0])
	}
	if !strings.HasPrefix(tb.Rows[0][1], "3.14") {
		t.Fatalf("float cell = %q", tb.Rows[0][1])
	}
	// Short rows are padded.
	tb.AddRow("only")
	if len(tb.Rows[1]) != 3 {
		t.Fatal("row not padded")
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	var buf bytes.Buffer
	x := []float64{0, 1, 2}
	err := WriteSeriesCSV(&buf, "t", x, map[string][]float64{
		"b": {4, 5, 6},
		"a": {1, 2, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "t,a,b" {
		t.Fatalf("header = %q (columns must be sorted)", lines[0])
	}
	if lines[1] != "0,1,4" || lines[3] != "2,3,6" {
		t.Fatalf("rows = %v", lines[1:])
	}
}

func TestWriteSeriesCSVLengthMismatch(t *testing.T) {
	var buf bytes.Buffer
	err := WriteSeriesCSV(&buf, "t", []float64{1, 2}, map[string][]float64{"a": {1}})
	if err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if utf8.RuneCountInString(s) != 8 {
		t.Fatalf("len = %d (%q)", utf8.RuneCountInString(s), s)
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[7] != '█' {
		t.Fatalf("ramp wrong: %q", s)
	}
	// Constant series renders at the bottom without dividing by zero.
	c := Sparkline([]float64{5, 5, 5}, 3)
	for _, r := range c {
		if r != '▁' {
			t.Fatalf("constant = %q", c)
		}
	}
	if Sparkline(nil, 10) != "" {
		t.Fatal("empty input")
	}
	// NaN points render as spaces.
	n := Sparkline([]float64{math.NaN(), 1}, 2)
	if []rune(n)[0] != ' ' {
		t.Fatalf("NaN = %q", n)
	}
	// Downsampling keeps the width bound.
	d := Sparkline(make([]float64, 100), 10)
	if utf8.RuneCountInString(d) != 10 {
		t.Fatalf("downsampled len = %d", utf8.RuneCountInString(d))
	}
}

func TestFormatSI(t *testing.T) {
	cases := map[float64]string{
		1.5e9:  "1.50GHz",
		2.5e6:  "2.50MHz",
		3.5e3:  "3.50kHz",
		42:     "42.00Hz",
		-2.5e6: "-2.50MHz",
	}
	for v, want := range cases {
		if got := FormatSI(v, "Hz"); got != want {
			t.Errorf("FormatSI(%v) = %q want %q", v, got, want)
		}
	}
}
