// Package fault defines seeded, reproducible device-fault processes for the
// federated-learning simulator. Real mobile fleets violate the paper's
// implicit assumption that every device survives every iteration: devices
// crash and rejoin (churn), uploads black out and must be retried, and
// background load transiently inflates the per-bit CPU cost c_i. Each
// process here is driven by counter-based hashed uniforms — the fault state
// of device i in iteration k is a pure function of (seed, i, k) — so a fault
// schedule is bit-reproducible regardless of query order, worker count, or
// how far it has been materialized.
//
// A Schedule composes with the fl engine through fl.IterOptions; a nil
// schedule (or a zero Config) leaves the fault-free path untouched.
package fault

import (
	"fmt"
	"math"
)

// Config parameterizes the three fault processes. The zero value disables
// everything.
type Config struct {
	// CrashProb is the per-iteration probability that an up device crashes
	// (Markov up→down transition). A down device neither computes, uploads,
	// nor burns energy; it is masked from the MDP state.
	CrashProb float64
	// RejoinProb is the per-iteration probability that a down device comes
	// back (Markov down→up transition). It must be positive when CrashProb
	// is, or a crashed device would never return.
	RejoinProb float64
	// BlackoutProb is the per-attempt probability that a device's model
	// upload fails outright (a zero-bandwidth blackout) and must be retried
	// after a backoff wait. Attempts fail independently up to MaxRetries.
	BlackoutProb float64
	// MaxRetries bounds the number of failed upload attempts per iteration
	// (0 with BlackoutProb > 0 defaults to DefaultMaxRetries).
	MaxRetries int
	// StragglerProb is the per-iteration probability of a transient compute
	// spike: the device's effective workload (τ·c_i·D_i) is multiplied by
	// StragglerMult for that iteration, stretching both compute time and
	// compute energy.
	StragglerProb float64
	// StragglerMult is the workload multiplier applied during a spike
	// (must be ≥ 1; 0 with StragglerProb > 0 defaults to
	// DefaultStragglerMult).
	StragglerMult float64
}

// Defaults applied when the corresponding probability is enabled but the
// magnitude knob is left zero.
const (
	DefaultMaxRetries    = 3
	DefaultStragglerMult = 4.0
)

// Validate checks the configuration.
func (c Config) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"crash probability", c.CrashProb},
		{"rejoin probability", c.RejoinProb},
		{"blackout probability", c.BlackoutProb},
		{"straggler probability", c.StragglerProb},
	} {
		if p.v < 0 || p.v > 1 || math.IsNaN(p.v) {
			return fmt.Errorf("fault: %s %v outside [0,1]", p.name, p.v)
		}
	}
	if c.CrashProb > 0 && c.RejoinProb == 0 {
		return fmt.Errorf("fault: crash probability %v with zero rejoin probability (crashed devices would never return)", c.CrashProb)
	}
	if c.BlackoutProb >= 1 {
		return fmt.Errorf("fault: blackout probability %v must be below 1 (uploads must eventually succeed)", c.BlackoutProb)
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("fault: negative retry bound %d", c.MaxRetries)
	}
	if c.StragglerMult != 0 && (c.StragglerMult < 1 || math.IsNaN(c.StragglerMult) || math.IsInf(c.StragglerMult, 0)) {
		return fmt.Errorf("fault: straggler multiplier %v must be ≥ 1", c.StragglerMult)
	}
	return nil
}

// Enabled reports whether any fault process is active.
func (c Config) Enabled() bool {
	return c.CrashProb > 0 || c.BlackoutProb > 0 || c.StragglerProb > 0
}

// maxRetries resolves the retry bound default.
func (c Config) maxRetries() int {
	if c.MaxRetries > 0 {
		return c.MaxRetries
	}
	return DefaultMaxRetries
}

// stragglerMult resolves the spike multiplier default.
func (c Config) stragglerMult() float64 {
	if c.StragglerMult != 0 {
		return c.StragglerMult
	}
	return DefaultStragglerMult
}

// DeviceFault is the realized fault state of one device in one iteration.
// The zero value means "healthy".
type DeviceFault struct {
	// Down marks the device as crashed for the whole iteration.
	Down bool
	// FailedUploads is the number of upload attempts that black out before
	// one succeeds (each costs a backoff wait in the fl engine).
	FailedUploads int
	// ComputeMult scales the device's effective workload this iteration
	// (1 = no spike).
	ComputeMult float64
}

// Healthy reports whether the device is entirely fault-free this iteration.
func (d DeviceFault) Healthy() bool {
	return !d.Down && d.FailedUploads == 0 && d.ComputeMult == 1
}

// Schedule materializes the fault processes for a fleet: At(k, i) is device
// i's fault state in iteration k. Rows are computed lazily and memoized —
// the Markov crash chain needs its predecessor — but every entry is a pure
// function of (cfg, seed, i, k), so two schedules with the same inputs agree
// entry-for-entry no matter how they are queried. A Schedule is not safe for
// concurrent use; clone per goroutine (each training episode builds its own).
type Schedule struct {
	cfg  Config
	seed int64
	n    int
	rows [][]DeviceFault
}

// NewSchedule builds a schedule for n devices. All devices start up.
func NewSchedule(cfg Config, n int, seed int64) (*Schedule, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("fault: schedule for %d devices", n)
	}
	return &Schedule{cfg: cfg, seed: seed, n: n}, nil
}

// MustNewSchedule is NewSchedule, panicking on error (tests and literals).
func MustNewSchedule(cfg Config, n int, seed int64) *Schedule {
	s, err := NewSchedule(cfg, n, seed)
	if err != nil {
		panic(err)
	}
	return s
}

// N returns the fleet size the schedule was built for.
func (s *Schedule) N() int { return s.n }

// Config returns the generating configuration.
func (s *Schedule) Config() Config { return s.cfg }

// Seed returns the schedule's seed.
func (s *Schedule) Seed() int64 { return s.seed }

// At returns device i's fault state in iteration k (k ≥ 0), materializing
// rows up to k on first access.
func (s *Schedule) At(k, i int) DeviceFault {
	if k < 0 || i < 0 || i >= s.n {
		panic(fmt.Sprintf("fault: At(%d, %d) outside schedule (n=%d)", k, i, s.n))
	}
	s.extend(k)
	return s.rows[k][i]
}

// Down returns the per-device down mask of iteration k (freshly allocated).
func (s *Schedule) Down(k int) []bool {
	s.extend(k)
	mask := make([]bool, s.n)
	for i, df := range s.rows[k] {
		mask[i] = df.Down
	}
	return mask
}

// extend materializes rows up to and including iteration k.
func (s *Schedule) extend(k int) {
	for len(s.rows) <= k {
		iter := len(s.rows)
		row := make([]DeviceFault, s.n)
		for i := range row {
			row[i] = s.state(iter, i)
		}
		s.rows = append(s.rows, row)
	}
}

// Streams separating the uniform draws of the three processes. Blackout
// attempts use stream streamBlackout+r for attempt r.
const (
	streamCrash     = 0
	streamStraggler = 1
	streamBlackout  = 8
)

// state computes device i's fault state in iteration `iter`, assuming rows
// 0 … iter-1 are materialized (the crash chain reads its predecessor).
func (s *Schedule) state(iter, i int) DeviceFault {
	df := DeviceFault{ComputeMult: 1}
	// Markov on/off crash chain: all devices start up at iteration 0; the
	// transition into iteration k ≥ 1 is decided by one uniform.
	if s.cfg.CrashProb > 0 && iter > 0 {
		prevDown := s.rows[iter-1][i].Down
		u := s.uniform(iter, i, streamCrash)
		if prevDown {
			df.Down = u >= s.cfg.RejoinProb
		} else {
			df.Down = u < s.cfg.CrashProb
		}
	}
	if df.Down {
		return df
	}
	if s.cfg.BlackoutProb > 0 {
		for r := 0; r < s.cfg.maxRetries(); r++ {
			if s.uniform(iter, i, streamBlackout+r) >= s.cfg.BlackoutProb {
				break
			}
			df.FailedUploads++
		}
	}
	if s.cfg.StragglerProb > 0 && s.uniform(iter, i, streamStraggler) < s.cfg.StragglerProb {
		df.ComputeMult = s.cfg.stragglerMult()
	}
	return df
}

// uniform returns a deterministic draw in [0, 1) keyed by (seed, iter,
// device, stream) via a splitmix64-style mix, matching the counter-based
// seeding idiom of the parallel rollout layer.
func (s *Schedule) uniform(iter, i, stream int) float64 {
	x := uint64(s.seed)
	x += 0x9e3779b97f4a7c15 * uint64(iter+1)
	x += 0xbf58476d1ce4e9b9 * uint64(i+1)
	x += 0x94d049bb133111eb * uint64(stream+1)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e9b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}
