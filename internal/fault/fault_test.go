package fault

import (
	"testing"
)

func chaosConfig() Config {
	return Config{
		CrashProb:     0.15,
		RejoinProb:    0.5,
		BlackoutProb:  0.2,
		MaxRetries:    3,
		StragglerProb: 0.1,
		StragglerMult: 4,
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero", Config{}, true},
		{"chaos", chaosConfig(), true},
		{"negative crash", Config{CrashProb: -0.1, RejoinProb: 0.5}, false},
		{"crash prob above one", Config{CrashProb: 1.5, RejoinProb: 0.5}, false},
		{"crash without rejoin", Config{CrashProb: 0.1}, false},
		{"certain blackout", Config{BlackoutProb: 1}, false},
		{"negative retries", Config{BlackoutProb: 0.1, MaxRetries: -1}, false},
		{"straggler mult below one", Config{StragglerProb: 0.1, StragglerMult: 0.5}, false},
		{"straggler defaults", Config{StragglerProb: 0.1}, true},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestZeroConfigAllHealthy(t *testing.T) {
	s := MustNewSchedule(Config{}, 5, 7)
	if s.Config().Enabled() {
		t.Fatal("zero config reported enabled")
	}
	for k := 0; k < 50; k++ {
		for i := 0; i < 5; i++ {
			if df := s.At(k, i); !df.Healthy() {
				t.Fatalf("device %d iter %d not healthy under zero config: %+v", i, k, df)
			}
		}
	}
}

func TestAllDevicesStartUp(t *testing.T) {
	s := MustNewSchedule(chaosConfig(), 10, 3)
	for i := 0; i < 10; i++ {
		if s.At(0, i).Down {
			t.Fatalf("device %d down at iteration 0", i)
		}
	}
}

// Same seed must yield the same schedule no matter the query order or how
// the lazy rows are grown — the core determinism contract.
func TestDeterminismAcrossQueryOrder(t *testing.T) {
	cfg := chaosConfig()
	const n, iters = 6, 120

	forward := MustNewSchedule(cfg, n, 42)
	var fwd []DeviceFault
	for k := 0; k < iters; k++ {
		for i := 0; i < n; i++ {
			fwd = append(fwd, forward.At(k, i))
		}
	}

	// Query the second schedule backwards (forces one big extension first),
	// then re-read forwards.
	backward := MustNewSchedule(cfg, n, 42)
	_ = backward.At(iters-1, 0)
	var bwd []DeviceFault
	for k := 0; k < iters; k++ {
		for i := 0; i < n; i++ {
			bwd = append(bwd, backward.At(k, i))
		}
	}

	for j := range fwd {
		if fwd[j] != bwd[j] {
			t.Fatalf("entry %d differs: forward %+v backward %+v", j, fwd[j], bwd[j])
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	cfg := chaosConfig()
	a := MustNewSchedule(cfg, 8, 1)
	b := MustNewSchedule(cfg, 8, 2)
	diff := false
	for k := 0; k < 100 && !diff; k++ {
		for i := 0; i < 8; i++ {
			if a.At(k, i) != b.At(k, i) {
				diff = true
				break
			}
		}
	}
	if !diff {
		t.Fatal("seeds 1 and 2 produced identical 100-iteration schedules")
	}
}

// The Markov chain must actually visit both states and respect the chain
// structure (a device can only be down at k if the transition allows it).
func TestMarkovChainBehaves(t *testing.T) {
	cfg := Config{CrashProb: 0.3, RejoinProb: 0.4}
	s := MustNewSchedule(cfg, 4, 11)
	downSeen, upSeen, rejoins := false, false, 0
	for i := 0; i < 4; i++ {
		for k := 1; k < 300; k++ {
			cur, prev := s.At(k, i).Down, s.At(k-1, i).Down
			if cur {
				downSeen = true
			} else {
				upSeen = true
			}
			if prev && !cur {
				rejoins++
			}
		}
	}
	if !downSeen || !upSeen {
		t.Fatalf("chain degenerate: downSeen=%v upSeen=%v", downSeen, upSeen)
	}
	if rejoins == 0 {
		t.Fatal("no device ever rejoined over 300 iterations")
	}
}

func TestDownDeviceHasNoOtherFaults(t *testing.T) {
	s := MustNewSchedule(chaosConfig(), 6, 5)
	found := false
	for k := 0; k < 200; k++ {
		for i := 0; i < 6; i++ {
			df := s.At(k, i)
			if df.Down {
				found = true
				if df.FailedUploads != 0 || df.ComputeMult != 1 {
					t.Fatalf("down device %d iter %d carries other faults: %+v", i, k, df)
				}
			}
		}
	}
	if !found {
		t.Fatal("no crash observed in 200 iterations with CrashProb=0.15")
	}
}

func TestBlackoutRetriesBounded(t *testing.T) {
	cfg := Config{BlackoutProb: 0.6, MaxRetries: 2}
	s := MustNewSchedule(cfg, 5, 9)
	maxSeen := 0
	for k := 0; k < 300; k++ {
		for i := 0; i < 5; i++ {
			if f := s.At(k, i).FailedUploads; f > maxSeen {
				maxSeen = f
			}
		}
	}
	if maxSeen > 2 {
		t.Fatalf("failed uploads %d exceed MaxRetries 2", maxSeen)
	}
	if maxSeen == 0 {
		t.Fatal("no blackout observed with BlackoutProb=0.6")
	}
}

func TestStragglerDefaultsApplied(t *testing.T) {
	s := MustNewSchedule(Config{StragglerProb: 0.5}, 5, 13)
	spiked := false
	for k := 0; k < 100; k++ {
		for i := 0; i < 5; i++ {
			m := s.At(k, i).ComputeMult
			if m != 1 && m != DefaultStragglerMult {
				t.Fatalf("unexpected compute multiplier %v", m)
			}
			if m == DefaultStragglerMult {
				spiked = true
			}
		}
	}
	if !spiked {
		t.Fatal("no straggler spike observed with StragglerProb=0.5")
	}
}

func TestDownMask(t *testing.T) {
	s := MustNewSchedule(chaosConfig(), 7, 21)
	for k := 0; k < 50; k++ {
		mask := s.Down(k)
		if len(mask) != 7 {
			t.Fatalf("mask length %d", len(mask))
		}
		for i, down := range mask {
			if down != s.At(k, i).Down {
				t.Fatalf("mask[%d] disagrees with At at iter %d", i, k)
			}
		}
	}
}

func TestEmpiricalRatesRoughlyMatch(t *testing.T) {
	// With symmetric crash/rejoin probabilities the stationary down-fraction
	// is p/(p+q); check the long-run average lands near it.
	cfg := Config{CrashProb: 0.2, RejoinProb: 0.3}
	s := MustNewSchedule(cfg, 20, 77)
	const iters = 2000
	down := 0
	for k := 0; k < iters; k++ {
		for i := 0; i < 20; i++ {
			if s.At(k, i).Down {
				down++
			}
		}
	}
	frac := float64(down) / float64(iters*20)
	want := cfg.CrashProb / (cfg.CrashProb + cfg.RejoinProb)
	if frac < want-0.05 || frac > want+0.05 {
		t.Fatalf("stationary down-fraction %.3f, want ≈ %.3f", frac, want)
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	s := MustNewSchedule(Config{}, 3, 1)
	for _, c := range [][2]int{{-1, 0}, {0, -1}, {0, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d, %d) did not panic", c[0], c[1])
				}
			}()
			s.At(c[0], c[1])
		}()
	}
}

func TestNewScheduleRejectsBadInput(t *testing.T) {
	if _, err := NewSchedule(Config{}, 0, 1); err == nil {
		t.Fatal("zero devices accepted")
	}
	if _, err := NewSchedule(Config{CrashProb: 2, RejoinProb: 1}, 3, 1); err == nil {
		t.Fatal("invalid config accepted")
	}
}
