package tensor

import (
	"math/rand"
	"testing"
)

// randSparse fills a matrix with normal values, zeroing a fraction of
// elements and entire rows to exercise the zero-skip branches of the tiled
// kernels exactly where the PPO backward produces them (clip-inactive
// samples have all-zero gradient rows).
func randSparse(rows, cols int, rng *rand.Rand) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		if rng.Intn(5) == 0 {
			continue // exact zero
		}
		m.Data[i] = rng.NormFloat64()
	}
	for i := 0; i < rows; i++ {
		if rng.Intn(4) == 0 {
			m.Row(i).Zero()
		}
	}
	return m
}

// naiveMatMul is the historical saxpy-form kernel (zero dst, then
// accumulate row k of b scaled by a[i][k] in ascending k, skipping zeros) —
// the reference the tiled MatMul must reproduce bit for bit.
func naiveMatMul(dst, a, b *Matrix) {
	dst.Zero()
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		drow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// naiveAddMatMulTransA is the historical sample-major rank-1 accumulation —
// the reference the tiled AddMatMulTransA must reproduce bit for bit.
func naiveAddMatMulTransA(dst, a, b *Matrix) {
	for s := 0; s < a.Rows; s++ {
		arow := a.Data[s*a.Cols : (s+1)*a.Cols]
		brow := b.Data[s*b.Cols : (s+1)*b.Cols]
		for o, av := range arow {
			if av == 0 {
				continue
			}
			drow := dst.Data[o*dst.Cols : (o+1)*dst.Cols]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

func matricesEqual(t *testing.T, label string, got, want *Matrix) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d vs %dx%d", label, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range got.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("%s: element %d: %v != %v (bit mismatch)", label, i, got.Data[i], want.Data[i])
		}
	}
}

// TestMatMulTiledBitIdentical pins the tiled destination-major MatMul to the
// naive saxpy loop across shapes that exercise every tile-tail combination
// (odd rows, odd cols, tiny k) and zero-sprinkled inputs.
func TestMatMulTiledBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, sh := range [][3]int{{1, 1, 1}, {2, 3, 2}, {5, 4, 7}, {16, 18, 64}, {33, 64, 63}, {64, 64, 64}, {7, 1, 5}} {
		r, k, c := sh[0], sh[1], sh[2]
		a := randSparse(r, k, rng)
		b := randSparse(k, c, rng)
		want := NewMatrix(r, c)
		naiveMatMul(want, a, b)
		got := NewMatrix(r, c)
		got.Fill(3.25) // stale contents must be fully overwritten
		MatMul(got, a, b)
		matricesEqual(t, "MatMul", got, want)

		// Range form over a split must compose to the same result.
		got2 := NewMatrix(r, c)
		mid := r / 2
		MatMulRange(got2, a, b, 0, mid)
		MatMulRange(got2, a, b, mid, r)
		matricesEqual(t, "MatMulRange", got2, want)
	}
}

// TestAddMatMulTransATiledBitIdentical pins the tiled destination-major
// GW += dZᵀ·X kernel to the historical sample-major accumulation, starting
// from a non-zero dst so the accumulate-into-existing path is covered.
func TestAddMatMulTransATiledBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, sh := range [][3]int{{1, 1, 1}, {3, 2, 2}, {7, 5, 4}, {16, 64, 18}, {33, 63, 64}, {64, 64, 64}, {5, 1, 3}} {
		n, r, c := sh[0], sh[1], sh[2]
		a := randSparse(n, r, rng)
		b := randSparse(n, c, rng)
		init := randSparse(r, c, rng)

		want := init.Clone()
		naiveAddMatMulTransA(want, a, b)
		got := init.Clone()
		AddMatMulTransA(got, a, b)
		matricesEqual(t, "AddMatMulTransA", got, want)

		got2 := init.Clone()
		mid := r / 2
		AddMatMulTransARange(got2, a, b, 0, mid)
		AddMatMulTransARange(got2, a, b, mid, r)
		matricesEqual(t, "AddMatMulTransARange", got2, want)

		// Set form: identical to accumulating into a zero dst, regardless of
		// the stale contents it overwrites.
		wantSet := NewMatrix(r, c)
		naiveAddMatMulTransA(wantSet, a, b)
		got3 := init.Clone()
		MatMulTransA(got3, a, b)
		matricesEqual(t, "MatMulTransA", got3, wantSet)
		got4 := init.Clone()
		MatMulTransARange(got4, a, b, 0, mid)
		MatMulTransARange(got4, a, b, mid, r)
		matricesEqual(t, "MatMulTransARange", got4, wantSet)
	}
}

// TestMatMulTransBRangeComposes pins the exported range form of the tiled
// a·bᵀ kernel to the whole-matrix call.
func TestMatMulTransBRangeComposes(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for _, sh := range [][3]int{{1, 3, 1}, {5, 4, 7}, {16, 18, 64}, {33, 64, 63}} {
		r, k, c := sh[0], sh[1], sh[2]
		a := randSparse(r, k, rng)
		b := randSparse(c, k, rng)
		want := NewMatrix(r, c)
		MatMulTransB(want, a, b)
		got := NewMatrix(r, c)
		mid := r / 3
		MatMulTransBRange(got, a, b, 0, mid)
		MatMulTransBRange(got, a, b, mid, r)
		matricesEqual(t, "MatMulTransBRange", got, want)
	}
}

// BenchmarkAddMatMulTransA measures the GW += dZᵀ·X kernel at the PPO
// minibatch shape (64 samples, 64×64 weight gradient).
func BenchmarkAddMatMulTransA(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randSparse(64, 64, rng)
	x := randSparse(64, 64, rng)
	dst := NewMatrix(64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AddMatMulTransA(dst, a, x)
	}
}

// BenchmarkMatMulDX measures the dX = dZ·W kernel at the PPO minibatch
// shape.
func BenchmarkMatMulDX(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randSparse(64, 64, rng)
	w := randSparse(64, 64, rng)
	dst := NewMatrix(64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(dst, a, w)
	}
}
