// Package tensor provides small dense float64 vector and matrix types with
// the linear-algebra kernels needed by the neural-network and reinforcement-
// learning packages. It is deliberately minimal: no views, no strides beyond
// row-major matrices, and no generics — just the operations the DRL agent
// needs, implemented with predictable allocation behaviour so hot loops can
// run allocation-free.
package tensor

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// parallelMinWork is the approximate scalar-op count below which row-
// parallel kernels stay inline: goroutine hand-off costs more than the loop.
const parallelMinWork = 1 << 15

// ParallelRows splits [0, rows) into contiguous disjoint blocks and runs fn
// on each block, concurrently when GOMAXPROCS allows and the loop is big
// enough (work ≈ total scalar-op count). Because blocks partition the rows
// and each row's result must be independent of the others, kernels built on
// it stay bit-identical to their sequential form at any worker count.
func ParallelRows(rows, work int, fn func(lo, hi int)) {
	nw := runtime.GOMAXPROCS(0)
	if nw > rows {
		nw = rows
	}
	if nw <= 1 || work < parallelMinWork {
		fn(0, rows)
		return
	}
	chunk := (rows + nw - 1) / nw
	var wg sync.WaitGroup
	for lo := 0; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Vector is a dense float64 vector.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	w := make(Vector, len(v))
	copy(w, v)
	return w
}

// Fill sets every element of v to x.
func (v Vector) Fill(x float64) {
	for i := range v {
		v[i] = x
	}
}

// Zero sets every element of v to 0.
func (v Vector) Zero() { v.Fill(0) }

// Add stores a+b into v. All three must have equal length.
func (v Vector) Add(a, b Vector) {
	checkLen3(len(v), len(a), len(b))
	for i := range v {
		v[i] = a[i] + b[i]
	}
}

// Sub stores a-b into v.
func (v Vector) Sub(a, b Vector) {
	checkLen3(len(v), len(a), len(b))
	for i := range v {
		v[i] = a[i] - b[i]
	}
}

// Mul stores the elementwise product a*b into v.
func (v Vector) Mul(a, b Vector) {
	checkLen3(len(v), len(a), len(b))
	for i := range v {
		v[i] = a[i] * b[i]
	}
}

// Scale multiplies every element of v by s in place.
func (v Vector) Scale(s float64) {
	for i := range v {
		v[i] *= s
	}
}

// AddScaled performs v += s*a (axpy).
func (v Vector) AddScaled(s float64, a Vector) {
	checkLen2(len(v), len(a))
	for i := range v {
		v[i] += s * a[i]
	}
}

// Dot returns the inner product of a and b.
func Dot(a, b Vector) float64 {
	checkLen2(len(a), len(b))
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Sum returns the sum of the elements of v.
func (v Vector) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of v, or 0 for an empty vector.
func (v Vector) Mean() float64 {
	if len(v) == 0 {
		return 0
	}
	return v.Sum() / float64(len(v))
}

// Norm2 returns the Euclidean norm of v.
func (v Vector) Norm2() float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Max returns the maximum element of v. It panics on an empty vector.
func (v Vector) Max() float64 {
	if len(v) == 0 {
		panic("tensor: Max of empty vector")
	}
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum element of v. It panics on an empty vector.
func (v Vector) Min() float64 {
	if len(v) == 0 {
		panic("tensor: Min of empty vector")
	}
	m := v[0]
	for _, x := range v[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// ArgMax returns the index of the maximum element of v.
func (v Vector) ArgMax() int {
	if len(v) == 0 {
		panic("tensor: ArgMax of empty vector")
	}
	best, bi := v[0], 0
	for i, x := range v {
		if x > best {
			best, bi = x, i
		}
	}
	return bi
}

// Apply sets v[i] = f(v[i]) for every element.
func (v Vector) Apply(f func(float64) float64) {
	for i, x := range v {
		v[i] = f(x)
	}
}

// Map stores f(a[i]) into v[i].
func (v Vector) Map(f func(float64) float64, a Vector) {
	checkLen2(len(v), len(a))
	for i, x := range a {
		v[i] = f(x)
	}
}

// Clamp limits every element of v to [lo, hi] in place.
func (v Vector) Clamp(lo, hi float64) {
	for i, x := range v {
		if x < lo {
			v[i] = lo
		} else if x > hi {
			v[i] = hi
		}
	}
}

// Equal reports whether a and b have identical length and elements.
func Equal(a, b Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// AllFinite reports whether every element of v is finite (no NaN/Inf).
func (v Vector) AllFinite() bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// Matrix is a dense row-major float64 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix returns a zero matrix with the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("tensor: ragged rows")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, x float64) { m.Data[i*m.Cols+j] = x }

// Row returns row i as a Vector sharing the matrix storage.
func (m *Matrix) Row(i int) Vector { return Vector(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero sets every element of m to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element of m to x.
func (m *Matrix) Fill(x float64) {
	for i := range m.Data {
		m.Data[i] = x
	}
}

// Scale multiplies every element of m by s in place.
func (m *Matrix) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// AddScaled performs m += s*a elementwise; shapes must match.
func (m *Matrix) AddScaled(s float64, a *Matrix) {
	if m.Rows != a.Rows || m.Cols != a.Cols {
		panic("tensor: AddScaled shape mismatch")
	}
	for i := range m.Data {
		m.Data[i] += s * a.Data[i]
	}
}

// Transpose returns a newly allocated transpose of m.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return t
}

// MatVec stores m·x into dst. dst must have length m.Rows and x length
// m.Cols; dst must not alias x.
func MatVec(dst Vector, m *Matrix, x Vector) {
	if len(dst) != m.Rows || len(x) != m.Cols {
		panic(fmt.Sprintf("tensor: MatVec shape mismatch %dx%d · %d -> %d",
			m.Rows, m.Cols, len(x), len(dst)))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, w := range row {
			s += w * x[j]
		}
		dst[i] = s
	}
}

// MatTVec stores mᵀ·x into dst (dst len m.Cols, x len m.Rows).
func MatTVec(dst Vector, m *Matrix, x Vector) {
	if len(dst) != m.Cols || len(x) != m.Rows {
		panic("tensor: MatTVec shape mismatch")
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, w := range row {
			dst[j] += w * xi
		}
	}
}

// MatMul stores a·b into dst (shapes: a r×k, b k×c, dst r×c). dst must not
// alias a or b.
//
// The kernel is register-tiled 2×2 in destination-major form: each
// destination element owns an accumulator that sums a[i][k]·b[k][j] in
// ascending k, skipping a[i][k] == 0 — exactly the term sequence of the
// naive saxpy loop, so the result is bit-identical to it (pinned by
// TestMatMulTiledBitIdentical). The zero skip matters beyond speed: rows of
// a that are exactly zero (clip-inactive PPO samples) contribute no term,
// matching the per-sample MatTVec path bit for bit.
func MatMul(dst, a, b *Matrix) {
	checkMatMul(dst, a, b)
	ParallelRows(a.Rows, a.Rows*a.Cols*b.Cols, func(lo, hi int) {
		MatMulRange(dst, a, b, lo, hi)
	})
}

func checkMatMul(dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("tensor: MatMul shape mismatch")
	}
}

// MatMulRange computes rows [lo, hi) of dst = a·b with the register-tiled
// saxpy kernel on the calling goroutine. It is the building block for
// callers that manage their own parallelism (the sharded training engine
// runs one row block per gradient shard); each dst row depends only on the
// same row of a, so disjoint ranges compose to exactly MatMul.
//
// Each dst row accumulates Σ_kk a[i][kk]·b[kk][:] over contiguous b rows,
// four terms per pass; the chained d[j] + t₀ + t₁ + t₂ + t₃ associates left
// to right, keeping every element's accumulation in ascending kk order —
// bit-identical to the plain dot-product loop, including the skip of zero
// a[i][kk] terms (mixed quads fall back to sequential single-term axpys).
func MatMulRange(dst, a, b *Matrix, lo, hi int) {
	k, c := a.Cols, b.Cols
	ad, bd := a.Data, b.Data
	for i := lo; i < hi; i++ {
		arow := ad[i*k : (i+1)*k]
		d := dst.Data[i*c : (i+1)*c]
		for j := range d {
			d[j] = 0
		}
		kk := 0
		for ; kk+4 <= k; kk += 4 {
			t0, t1, t2, t3 := arow[kk], arow[kk+1], arow[kk+2], arow[kk+3]
			b0 := bd[kk*c : (kk+1)*c]
			b1 := bd[(kk+1)*c : (kk+2)*c]
			b2 := bd[(kk+2)*c : (kk+3)*c]
			b3 := bd[(kk+3)*c : (kk+4)*c]
			if t0 != 0 && t1 != 0 && t2 != 0 && t3 != 0 {
				for j := range d {
					d[j] = d[j] + t0*b0[j] + t1*b1[j] + t2*b2[j] + t3*b3[j]
				}
				continue
			}
			if t0 != 0 {
				for j := range d {
					d[j] += t0 * b0[j]
				}
			}
			if t1 != 0 {
				for j := range d {
					d[j] += t1 * b1[j]
				}
			}
			if t2 != 0 {
				for j := range d {
					d[j] += t2 * b2[j]
				}
			}
			if t3 != 0 {
				for j := range d {
					d[j] += t3 * b3[j]
				}
			}
		}
		for ; kk < k; kk++ {
			if av := arow[kk]; av != 0 {
				brow := bd[kk*c : (kk+1)*c]
				for j := range d {
					d[j] += av * brow[j]
				}
			}
		}
	}
}

// MatMulTransB stores a·bᵀ into dst (shapes: a r×k, b c×k, dst r×c). Each
// destination element is a dot product of two rows, so both operands stream
// sequentially through cache. The inner accumulation runs in ascending k
// order — exactly the order MatVec uses — so batching a stack of MatVec
// calls through this kernel is bit-identical to the per-vector loop.
//
// The kernel is register-tiled 2×2: four destination elements accumulate
// concurrently, so each load of a[i][j] / b[o][j] feeds two multiplies and
// the two a-rows' streams hit the same cache lines of b. Every destination
// element still has its own accumulator running in ascending k, so tiling
// changes no result bit (pinned by TestMatMulTransBTiledBitIdentical).
func MatMulTransB(dst, a, b *Matrix) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransB shape mismatch %dx%d · (%dx%d)ᵀ -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	ParallelRows(a.Rows, a.Rows*a.Cols*b.Rows, func(lo, hi int) {
		MatMulTransBRange(dst, a, b, lo, hi)
	})
}

// MatMulTransBRange computes rows [lo, hi) of dst = a·bᵀ on the calling
// goroutine (see MatMulTransB for the tiling and bit-identity contract).
func MatMulTransBRange(dst, a, b *Matrix, lo, hi int) {
	k, c := a.Cols, b.Rows
	{
		i := lo
		for ; i+2 <= hi; i += 2 {
			a0 := a.Data[i*k : (i+1)*k]
			a1 := a.Data[(i+1)*k : (i+2)*k]
			d0 := dst.Data[i*c : (i+1)*c]
			d1 := dst.Data[(i+1)*c : (i+2)*c]
			o := 0
			// 2×2 register tile: four independent accumulators per pass
			// raise the multiply-add to load ratio; each dst element still
			// owns one accumulator summed in ascending j, so the tile shape
			// cannot change a bit. (Wider 2×4 and 4×2 tiles measured slower
			// here: eight live accumulators spill on amd64.)
			for ; o+2 <= c; o += 2 {
				b0 := b.Data[o*k : (o+1)*k]
				b1 := b.Data[(o+1)*k : (o+2)*k]
				var s00, s01, s10, s11 float64
				for j, av0 := range a0 {
					av1 := a1[j]
					bv0, bv1 := b0[j], b1[j]
					s00 += av0 * bv0
					s01 += av0 * bv1
					s10 += av1 * bv0
					s11 += av1 * bv1
				}
				d0[o], d0[o+1] = s00, s01
				d1[o], d1[o+1] = s10, s11
			}
			for ; o < c; o++ {
				b0 := b.Data[o*k : (o+1)*k]
				var s00, s10 float64
				for j, av0 := range a0 {
					s00 += av0 * b0[j]
					s10 += a1[j] * b0[j]
				}
				d0[o], d1[o] = s00, s10
			}
		}
		if i < hi {
			arow := a.Data[i*k : (i+1)*k]
			drow := dst.Data[i*c : (i+1)*c]
			for o := 0; o < c; o++ {
				brow := b.Data[o*k : (o+1)*k]
				var s float64
				for j, av := range arow {
					s += av * brow[j]
				}
				drow[o] = s
			}
		}
	}
}

// AddMatMulTransA performs dst += aᵀ·b (shapes: a n×r, b n×c, dst r×c).
// Each destination element accumulates a[s][o]·b[s][j] in ascending sample
// order s, skipping a[s][o] == 0 — exactly the term sequence of n successive
// AddOuter rank-1 updates, reproduced bit for bit (pinned by
// TestAddMatMulTransATiledBitIdentical). The kernel iterates destination
// rows in the outer loop (so it parallelizes over them without changing a
// single bit) and streams four samples per pass inside each row.
func AddMatMulTransA(dst, a, b *Matrix) {
	checkMatMulTransA(dst, a, b)
	ParallelRows(dst.Rows, a.Rows*a.Cols*b.Cols, func(lo, hi int) {
		addMatMulTransARange(dst, a, b, false, lo, hi)
	})
}

// AddMatMulTransARange computes dst rows [lo, hi) of dst += aᵀ·b on the
// calling goroutine (see AddMatMulTransA for the accumulation contract).
func AddMatMulTransARange(dst, a, b *Matrix, lo, hi int) {
	addMatMulTransARange(dst, a, b, false, lo, hi)
}

// MatMulTransA stores aᵀ·b into dst (set form of AddMatMulTransA: the
// accumulators start from zero instead of the current dst values, so shard
// gradient replicas need no zeroing pass between minibatches).
func MatMulTransA(dst, a, b *Matrix) {
	checkMatMulTransA(dst, a, b)
	ParallelRows(dst.Rows, a.Rows*a.Cols*b.Cols, func(lo, hi int) {
		addMatMulTransARange(dst, a, b, true, lo, hi)
	})
}

// MatMulTransARange computes dst rows [lo, hi) of dst = aᵀ·b on the calling
// goroutine.
func MatMulTransARange(dst, a, b *Matrix, lo, hi int) {
	addMatMulTransARange(dst, a, b, true, lo, hi)
}

func checkMatMulTransA(dst, a, b *Matrix) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: AddMatMulTransA shape mismatch (%dx%d)ᵀ · %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
}

// addMatMulTransARange is the shared register-tiled core. Each dst row o is
// a column of a, accumulated as Σ_i a[i][o]·b[i][:]. The outer loop keeps
// one dst row hot while streaming four samples at a time: the unrolled axpy
// chain d[j] + t₀ + t₁ + t₂ + t₃ associates left to right, so every dst
// element still sees its contributions in ascending sample order —
// bit-identical to the one-sample-at-a-time loop. A zero a[i][o] skips that
// sample's contribution to the row (clipped PPO rows zero whole upstream
// rows); mixed zero/nonzero quads fall back to sequential single-sample
// axpys in the same i order. When set is true the row starts from zero
// (cleared up front) instead of the current dst values.
func addMatMulTransARange(dst, a, b *Matrix, set bool, lo, hi int) {
	n, r, c := a.Rows, a.Cols, b.Cols
	ad, bd := a.Data, b.Data
	for o := lo; o < hi; o++ {
		d := dst.Data[o*c : (o+1)*c]
		if set {
			for j := range d {
				d[j] = 0
			}
		}
		i := 0
		for ; i+4 <= n; i += 4 {
			a0, a1 := ad[i*r+o], ad[(i+1)*r+o]
			a2, a3 := ad[(i+2)*r+o], ad[(i+3)*r+o]
			b0 := bd[i*c : (i+1)*c]
			b1 := bd[(i+1)*c : (i+2)*c]
			b2 := bd[(i+2)*c : (i+3)*c]
			b3 := bd[(i+3)*c : (i+4)*c]
			if a0 != 0 && a1 != 0 && a2 != 0 && a3 != 0 {
				for j := range d {
					d[j] = d[j] + a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
				}
				continue
			}
			if a0 != 0 {
				for j := range d {
					d[j] += a0 * b0[j]
				}
			}
			if a1 != 0 {
				for j := range d {
					d[j] += a1 * b1[j]
				}
			}
			if a2 != 0 {
				for j := range d {
					d[j] += a2 * b2[j]
				}
			}
			if a3 != 0 {
				for j := range d {
					d[j] += a3 * b3[j]
				}
			}
		}
		for ; i < n; i++ {
			if av := ad[i*r+o]; av != 0 {
				brow := bd[i*c : (i+1)*c]
				for j := range d {
					d[j] += av * brow[j]
				}
			}
		}
	}
}

// AddRowSums accumulates the columnwise sums of m into dst (dst[j] += Σ_i
// m[i][j]), adding rows in ascending order so it matches a loop of
// Vector.Add calls bit for bit.
func AddRowSums(dst Vector, m *Matrix) {
	if len(dst) != m.Cols {
		panic("tensor: AddRowSums shape mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, x := range row {
			dst[j] += x
		}
	}
}

// EnsureShape returns m resized to rows×cols, reusing its backing array
// when it has enough capacity and allocating a fresh matrix otherwise. The
// contents after a resize are unspecified; callers that need zeros must
// call Zero themselves.
func EnsureShape(m *Matrix, rows, cols int) *Matrix {
	if m == nil || cap(m.Data) < rows*cols {
		return NewMatrix(rows, cols)
	}
	m.Rows, m.Cols = rows, cols
	m.Data = m.Data[:rows*cols]
	return m
}

// AddRowVector adds v to every row of m in place (broadcast bias add).
func (m *Matrix) AddRowVector(v Vector) {
	if len(v) != m.Cols {
		panic("tensor: AddRowVector shape mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, x := range v {
			row[j] += x
		}
	}
}

// AddOuter performs m += s · x·yᵀ (rank-1 update; x len m.Rows, y len m.Cols).
func (m *Matrix) AddOuter(s float64, x, y Vector) {
	if len(x) != m.Rows || len(y) != m.Cols {
		panic("tensor: AddOuter shape mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		sx := s * x[i]
		if sx == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, yv := range y {
			row[j] += sx * yv
		}
	}
}

func checkLen2(a, b int) {
	if a != b {
		panic(fmt.Sprintf("tensor: length mismatch %d vs %d", a, b))
	}
}

func checkLen3(a, b, c int) {
	if a != b || b != c {
		panic(fmt.Sprintf("tensor: length mismatch %d/%d/%d", a, b, c))
	}
}
