package tensor

// Arena is a bump allocator for serving-path scratch tensors. A fleet tick
// needs a handful of intermediates (converted states, hidden-layer panels,
// output rows) whose shapes repeat every tick; the arena hands out slices
// carved from two growable slabs and a Reset rewinds them all at once, so
// the steady state performs zero heap allocations (pinned by the
// AllocsPerRun tests).
//
// Lifetime rules (DESIGN.md §12): everything returned by an Arena is valid
// only until the next Reset. Callers must not retain arena-backed slices
// across ticks, and an Arena is not safe for concurrent use — each serving
// goroutine owns its own.
type Arena struct {
	f32 []float32
	f64 []float64
	n32 int // bump offsets
	n64 int

	mats32 []Matrix32 // reusable headers so &arena.mats32[i] doesn't allocate
	mats64 []Matrix
	m32    int
	m64    int
}

// NewArena returns an empty arena; slabs grow on demand.
func NewArena() *Arena { return &Arena{} }

// Reset rewinds the arena. All previously returned slices and matrix
// headers become invalid for reuse (their memory will be handed out again).
func (ar *Arena) Reset() { ar.n32, ar.n64, ar.m32, ar.m64 = 0, 0, 0, 0 }

// F32 returns a zeroed float32 slice of length n valid until Reset.
func (ar *Arena) F32(n int) Vector32 {
	if ar.n32+n > len(ar.f32) {
		ar.grow32(n)
	}
	s := ar.f32[ar.n32 : ar.n32+n]
	ar.n32 += n
	for i := range s {
		s[i] = 0
	}
	return s
}

// F64 returns a zeroed float64 slice of length n valid until Reset.
func (ar *Arena) F64(n int) Vector {
	if ar.n64+n > len(ar.f64) {
		ar.grow64(n)
	}
	s := ar.f64[ar.n64 : ar.n64+n]
	ar.n64 += n
	for i := range s {
		s[i] = 0
	}
	return s
}

// Matrix32 returns a zeroed rows×cols float32 matrix valid until Reset.
func (ar *Arena) Matrix32(rows, cols int) *Matrix32 {
	if ar.m32 == len(ar.mats32) {
		ar.mats32 = append(ar.mats32, Matrix32{})
	}
	m := &ar.mats32[ar.m32]
	ar.m32++
	m.Rows, m.Cols = rows, cols
	m.Data = ar.F32(rows * cols)
	return m
}

// Matrix returns a zeroed rows×cols float64 matrix valid until Reset.
func (ar *Arena) Matrix(rows, cols int) *Matrix {
	if ar.m64 == len(ar.mats64) {
		ar.mats64 = append(ar.mats64, Matrix{})
	}
	m := &ar.mats64[ar.m64]
	ar.m64++
	m.Rows, m.Cols = rows, cols
	m.Data = ar.F64(rows * cols)
	return m
}

// grow32 extends the f32 slab so n more elements fit. Growth doubles, so a
// warmup tick reaches steady state after O(log) growths; previously handed
// out slices stay valid because the old slab is still referenced by them.
func (ar *Arena) grow32(n int) {
	need := ar.n32 + n
	capNew := 2 * cap(ar.f32)
	if capNew < need {
		capNew = need
	}
	if capNew < 1024 {
		capNew = 1024
	}
	slab := make([]float32, capNew)
	copy(slab, ar.f32[:ar.n32])
	ar.f32 = slab
}

func (ar *Arena) grow64(n int) {
	need := ar.n64 + n
	capNew := 2 * cap(ar.f64)
	if capNew < need {
		capNew = need
	}
	if capNew < 1024 {
		capNew = 1024
	}
	slab := make([]float64, capNew)
	copy(slab, ar.f64[:ar.n64])
	ar.f64 = slab
}
