package tensor

// tanhClamp is the saturation bound of the float64 rational tanh: beyond it
// the polynomial ratio is no longer monotone, and tanh is already within
// 3e-7 of ±1, so the function saturates to exactly ±1 there (the float32
// serving kernel clamps at the same bound). Exact saturation matters to
// callers that drive units hard negative on purpose — a poisoned output
// bias must pin its action to the floor, not to floor±3e-7.
const tanhClamp = 7.90531110763549805

// FastTanh approximates tanh with the 13/6-degree rational minimax
// polynomial used by Eigen and XLA — the same approximation the float32
// serving backend vectorizes — evaluated in float64, saturating to exactly
// ±1 beyond ±tanhClamp. Maximum absolute error against math.Tanh is below 5e-7
// (pinned by TestFastTanhAccuracy), which is noise at training scale but
// roughly 3x faster than math.Tanh per call and branch-free inside the
// clamp. NaN propagates; FastTanh(0) == 0 exactly; the result is odd in x
// bit for bit because every term is odd.
func FastTanh(x float64) float64 {
	// Comparisons with NaN are false, so a NaN x falls through to the
	// polynomial and propagates.
	if x > tanhClamp {
		return 1
	} else if x < -tanhClamp {
		return -1
	}
	x2 := x * x
	p := -2.76076847742355e-16
	p = p*x2 + 2.00018790482477e-13
	p = p*x2 + -8.60467152213735e-11
	p = p*x2 + 5.12229709037114e-08
	p = p*x2 + 1.48572235717979e-05
	p = p*x2 + 6.37261928875436e-04
	p = p*x2 + 4.89352455891786e-03
	p = p * x
	q := 1.19825839466702e-06
	q = q*x2 + 1.18534705686654e-04
	q = q*x2 + 2.26843463243900e-03
	q = q*x2 + 4.89352518554385e-03
	return p / q
}
