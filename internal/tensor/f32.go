// Float32 serving backend. Training stays float64 for bit-for-bit
// determinism (DESIGN.md §7); online inference does not need that guarantee,
// so it can trade precision for throughput: float32 halves memory traffic
// and doubles SIMD lane width, and the kernels below are free to reorder
// accumulation. On amd64 with AVX2+FMA they dispatch to the hand-written
// assembly in f32_amd64.s; everywhere else the portable Go fallbacks run.
//
// Layout convention: serving weights are stored k-major (In×Out, the
// transpose of the training layout), so the inner product over k walks both
// operands with unit stride and the whole output row accumulates in
// registers (saxpy form). See DESIGN.md §12.
package tensor

import (
	"fmt"
	"math"
)

// Vector32 is a dense float32 vector.
type Vector32 []float32

// NewVector32 returns a zero vector of length n.
func NewVector32(n int) Vector32 { return make(Vector32, n) }

// Matrix32 is a dense row-major float32 matrix.
type Matrix32 struct {
	Rows, Cols int
	Data       []float32 // len == Rows*Cols, row-major
}

// NewMatrix32 returns a zero matrix with the given shape.
func NewMatrix32(rows, cols int) *Matrix32 {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d", rows, cols))
	}
	return &Matrix32{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// Row returns row i as a Vector32 sharing the matrix storage.
func (m *Matrix32) Row(i int) Vector32 { return Vector32(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// Zero sets every element of m to 0.
func (m *Matrix32) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// EnsureShape32 returns m resized to rows×cols, reusing its backing array
// when it has enough capacity and allocating a fresh matrix otherwise. The
// contents after a resize are unspecified.
func EnsureShape32(m *Matrix32, rows, cols int) *Matrix32 {
	if m == nil || cap(m.Data) < rows*cols {
		return NewMatrix32(rows, cols)
	}
	m.Rows, m.Cols = rows, cols
	m.Data = m.Data[:rows*cols]
	return m
}

// ToF32Sat converts a float64 to float32, saturating out-of-range finite
// magnitudes to ±MaxFloat32 instead of overflowing to ±Inf. Infinities and
// NaN pass through unchanged. Guard-sanitized states are finite but may be
// extreme (a mis-scaled telemetry unit, a chaos mutation); saturation keeps
// them finite in float32 so they flow through tanh layers to the same ±1
// plateau the float64 reference reaches, instead of minting Inf−Inf NaNs in
// the first matmul.
func ToF32Sat(x float64) float32 {
	if x > math.MaxFloat32 {
		if math.IsInf(x, 1) {
			return float32(math.Inf(1))
		}
		return math.MaxFloat32
	}
	if x < -math.MaxFloat32 {
		if math.IsInf(x, -1) {
			return float32(math.Inf(-1))
		}
		return -math.MaxFloat32
	}
	return float32(x) // NaN stays NaN
}

// ConvertSat fills dst with the saturating float32 conversion of src.
func ConvertSat(dst Vector32, src Vector) {
	checkLen2(len(dst), len(src))
	for i, x := range src {
		dst[i] = ToF32Sat(x)
	}
}

// tanhClamp32 is the saturation bound of the rational tanh approximation:
// beyond it the polynomial ratio is no longer monotone, and tanh is already
// 1 to float32 precision.
const tanhClamp32 = 7.90531110763549805

// Tanh32 approximates tanh with the 13/6-degree rational minimax polynomial
// used by Eigen and XLA, clamped to ±tanhClamp32. Maximum absolute error vs
// math.Tanh is below 5e-7 (pinned by TestTanh32Accuracy); NaN propagates,
// ±Inf lands on the clamp plateau (≈±1 − 2.4e-7, not exactly ±1 — the same
// value the vectorized kernel produces).
func Tanh32(x float32) float32 {
	// min/max ordered so a NaN x propagates (Go's math.Min semantics are
	// not needed: comparisons with NaN are false, so x stays NaN).
	if x > tanhClamp32 {
		x = tanhClamp32
	} else if x < -tanhClamp32 {
		x = -tanhClamp32
	}
	x2 := x * x
	p := float32(-2.76076847742355e-16)
	p = p*x2 + 2.00018790482477e-13
	p = p*x2 + -8.60467152213735e-11
	p = p*x2 + 5.12229709037114e-08
	p = p*x2 + 1.48572235717979e-05
	p = p*x2 + 6.37261928875436e-04
	p = p*x2 + 4.89352455891786e-03
	p = p * x
	q := float32(1.19825839466702e-06)
	q = q*x2 + 1.18534705686654e-04
	q = q*x2 + 2.26843463243900e-03
	q = q*x2 + 4.89352518554385e-03
	return p / q
}

// TanhInPlace32 applies Tanh32 elementwise (vectorized on amd64/AVX2).
func TanhInPlace32(x Vector32) { tanhInPlace32(x) }

// AddMatMul32 performs dst += a·b with b stored k-major (shapes: a m×k,
// b k×o, dst m×o). Unlike the float64 training kernels it makes no
// accumulation-order promise: lanes are summed in whatever order the
// hardware path prefers. dst must not alias a or b.
func AddMatMul32(dst, a, b *Matrix32) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: AddMatMul32 shape mismatch %dx%d · %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	if a.Cols == 0 || dst.Rows == 0 || dst.Cols == 0 {
		return
	}
	addMatMul32(dst, a, b)
}

// Dot32 returns the inner product of a and b (hardware accumulation order).
func Dot32(a, b Vector32) float32 {
	checkLen2(len(a), len(b))
	if len(a) == 0 {
		return 0
	}
	return dot32(a, b)
}

// addMatMul32Generic is the portable saxpy-form kernel: the destination row
// is the accumulator, and each a[i][j] broadcasts against a contiguous b
// row. Four independent partial products per element break the FP add
// dependency chain enough for scalar hardware to pipeline.
func addMatMul32Generic(dst, a, b *Matrix32) {
	m, k, o := a.Rows, a.Cols, b.Cols
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		drow := dst.Data[i*o : (i+1)*o]
		j := 0
		for ; j+4 <= k; j += 4 {
			a0, a1, a2, a3 := arow[j], arow[j+1], arow[j+2], arow[j+3]
			b0 := b.Data[j*o : (j+1)*o]
			b1 := b.Data[(j+1)*o : (j+2)*o]
			b2 := b.Data[(j+2)*o : (j+3)*o]
			b3 := b.Data[(j+3)*o : (j+4)*o]
			for c := range drow {
				drow[c] += a0*b0[c] + a1*b1[c] + a2*b2[c] + a3*b3[c]
			}
		}
		for ; j < k; j++ {
			aj := arow[j]
			brow := b.Data[j*o : (j+1)*o]
			for c := range drow {
				drow[c] += aj * brow[c]
			}
		}
	}
}

func dot32Generic(a, b Vector32) float32 {
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return (s0 + s1) + (s2 + s3)
}

func tanhInPlace32Generic(x Vector32) {
	for i, v := range x {
		x[i] = Tanh32(v)
	}
}
