package tensor

import (
	"math/rand"
	"sync"
	"testing"
)

func randMatrix(rows, cols int, rng *rand.Rand) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// TestMatMulTransBMatchesMatVec pins the batching contract: row i of
// MatMulTransB(dst, A, W) must be bit-identical to MatVec(y, W, A.Row(i)),
// because the batched kernels promise to reproduce the per-sample
// floating-point accumulation order exactly.
func TestMatMulTransBMatchesMatVec(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, dims := range [][3]int{{1, 4, 3}, {5, 8, 6}, {17, 13, 11}} {
		n, k, out := dims[0], dims[1], dims[2]
		a := randMatrix(n, k, rng)
		w := randMatrix(out, k, rng)
		dst := NewMatrix(n, out)
		MatMulTransB(dst, a, w)
		y := NewVector(out)
		for i := 0; i < n; i++ {
			MatVec(y, w, Vector(a.Data[i*k:(i+1)*k]))
			for j, want := range y {
				if got := dst.At(i, j); got != want {
					t.Fatalf("dims %v row %d col %d: %v != %v", dims, i, j, got, want)
				}
			}
		}
	}
}

// TestAddMatMulTransAMatchesAddOuter pins the gradient-accumulation
// contract: dst += aᵀ·b must equal n successive rank-1 AddOuter updates
// bit for bit.
func TestAddMatMulTransAMatchesAddOuter(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n, out, in := 9, 5, 7
	a := randMatrix(n, out, rng)
	b := randMatrix(n, in, rng)
	a.Data[3] = 0 // exercise the zero-skip path
	got := randMatrix(out, in, rng)
	want := got.Clone()
	AddMatMulTransA(got, a, b)
	for s := 0; s < n; s++ {
		want.AddOuter(1, Vector(a.Data[s*out:(s+1)*out]), Vector(b.Data[s*in:(s+1)*in]))
	}
	for i := range got.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("element %d: %v != %v", i, got.Data[i], want.Data[i])
		}
	}
}

// TestAddRowSumsMatchesVectorAdd pins the bias-gradient contract: column
// sums accumulate rows in ascending order, matching a loop of Vector.Add.
func TestAddRowSumsMatchesVectorAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := randMatrix(6, 4, rng)
	got := Vector{1, 2, 3, 4}
	want := got.Clone()
	AddRowSums(got, m)
	for i := 0; i < m.Rows; i++ {
		want.Add(want, Vector(m.Data[i*m.Cols:(i+1)*m.Cols]))
	}
	for j := range got {
		if got[j] != want[j] {
			t.Fatalf("col %d: %v != %v", j, got[j], want[j])
		}
	}
}

func TestAddRowVector(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	m.AddRowVector(Vector{10, 20})
	want := []float64{11, 22, 13, 24}
	for i, w := range want {
		if m.Data[i] != w {
			t.Fatalf("AddRowVector = %v, want %v", m.Data, want)
		}
	}
}

func TestEnsureShape(t *testing.T) {
	m := NewMatrix(4, 5)
	m.Data[0] = 42
	// Shrinking reuses the backing array.
	r := EnsureShape(m, 2, 3)
	if r != m || r.Rows != 2 || r.Cols != 3 || len(r.Data) != 6 {
		t.Fatalf("shrink did not reuse: %+v", r)
	}
	// Growing within capacity reuses too.
	r = EnsureShape(r, 5, 4)
	if r != m || len(r.Data) != 20 {
		t.Fatalf("grow within cap did not reuse: %+v", r)
	}
	// Growing past capacity allocates fresh.
	r = EnsureShape(m, 6, 5)
	if r == m {
		t.Fatal("grow past cap reused undersized array")
	}
	if r.Rows != 6 || r.Cols != 5 {
		t.Fatalf("bad shape %dx%d", r.Rows, r.Cols)
	}
	// nil allocates.
	if r = EnsureShape(nil, 2, 2); r == nil || r.Rows != 2 || r.Cols != 2 {
		t.Fatalf("nil case: %+v", r)
	}
}

// TestParallelRowsCoversEveryRowOnce drives both the inline path (work
// below the threshold) and the parallel path (work far above it) and
// checks that every row is visited exactly once with contiguous blocks.
func TestParallelRowsCoversEveryRowOnce(t *testing.T) {
	for _, work := range []int{1, parallelMinWork * 4} {
		const rows = 103
		seen := make([]int, rows)
		var mu sync.Mutex
		ParallelRows(rows, work, func(lo, hi int) {
			if lo < 0 || hi > rows || lo >= hi {
				t.Errorf("bad block [%d,%d)", lo, hi)
			}
			mu.Lock()
			for i := lo; i < hi; i++ {
				seen[i]++
			}
			mu.Unlock()
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("work=%d: row %d visited %d times", work, i, c)
			}
		}
	}
}

func TestParallelRowsZeroRows(t *testing.T) {
	called := false
	ParallelRows(0, parallelMinWork*2, func(lo, hi int) {
		if lo != hi {
			called = true
		}
	})
	if called {
		t.Fatal("fn received a non-empty block for zero rows")
	}
}

// TestMatMulParallelDeterministic checks that MatMul over a matrix large
// enough to trigger row parallelism equals the same product computed with
// the strictly sequential kernel semantics (each dst row is computed
// independently, so splitting rows cannot change any result bit).
func TestMatMulParallelDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randMatrix(64, 48, rng) // 64*48*48 work > parallelMinWork
	b := randMatrix(48, 48, rng)
	par := NewMatrix(64, 48)
	MatMul(par, a, b)
	// Sequential reference: one row at a time through the same kernel.
	seq := NewMatrix(64, 48)
	for i := 0; i < a.Rows; i++ {
		ar := &Matrix{Rows: 1, Cols: a.Cols, Data: a.Data[i*a.Cols : (i+1)*a.Cols]}
		dr := &Matrix{Rows: 1, Cols: seq.Cols, Data: seq.Data[i*seq.Cols : (i+1)*seq.Cols]}
		MatMul(dr, ar, b)
	}
	for i := range par.Data {
		if par.Data[i] != seq.Data[i] {
			t.Fatalf("element %d: parallel %v != sequential %v", i, par.Data[i], seq.Data[i])
		}
	}
}

func TestBatchKernelShapePanics(t *testing.T) {
	cases := map[string]func(){
		"MatMulTransB":    func() { MatMulTransB(NewMatrix(2, 2), NewMatrix(2, 3), NewMatrix(2, 4)) },
		"AddMatMulTransA": func() { AddMatMulTransA(NewMatrix(2, 2), NewMatrix(3, 2), NewMatrix(4, 2)) },
		"AddRowSums":      func() { AddRowSums(NewVector(3), NewMatrix(2, 2)) },
		"AddRowVector":    func() { NewMatrix(2, 2).AddRowVector(NewVector(3)) },
	}
	for name, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s mismatch did not panic", name)
				}
			}()
			f()
		}()
	}
}
