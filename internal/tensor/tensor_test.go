package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-12

func almostEq(a, b, tol float64) bool {
	d := math.Abs(a - b)
	if d <= tol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return d <= tol*scale
}

func TestVectorAddSubMul(t *testing.T) {
	a := Vector{1, 2, 3}
	b := Vector{4, 5, 6}
	v := NewVector(3)
	v.Add(a, b)
	if !Equal(v, Vector{5, 7, 9}) {
		t.Fatalf("Add = %v", v)
	}
	v.Sub(b, a)
	if !Equal(v, Vector{3, 3, 3}) {
		t.Fatalf("Sub = %v", v)
	}
	v.Mul(a, b)
	if !Equal(v, Vector{4, 10, 18}) {
		t.Fatalf("Mul = %v", v)
	}
}

func TestVectorScaleAddScaled(t *testing.T) {
	v := Vector{1, 2, 3}
	v.Scale(2)
	if !Equal(v, Vector{2, 4, 6}) {
		t.Fatalf("Scale = %v", v)
	}
	v.AddScaled(0.5, Vector{2, 2, 2})
	if !Equal(v, Vector{3, 5, 7}) {
		t.Fatalf("AddScaled = %v", v)
	}
}

func TestDotSumMeanNorm(t *testing.T) {
	a := Vector{3, 4}
	if Dot(a, a) != 25 {
		t.Fatalf("Dot = %v", Dot(a, a))
	}
	if a.Sum() != 7 || a.Mean() != 3.5 {
		t.Fatalf("Sum/Mean = %v/%v", a.Sum(), a.Mean())
	}
	if a.Norm2() != 5 {
		t.Fatalf("Norm2 = %v", a.Norm2())
	}
	var empty Vector
	if empty.Mean() != 0 {
		t.Fatal("empty mean should be 0")
	}
}

func TestMinMaxArgMax(t *testing.T) {
	v := Vector{2, -1, 7, 3}
	if v.Max() != 7 || v.Min() != -1 || v.ArgMax() != 2 {
		t.Fatalf("min/max/argmax = %v %v %v", v.Min(), v.Max(), v.ArgMax())
	}
}

func TestEmptyVectorPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"Max":    func() { Vector{}.Max() },
		"Min":    func() { Vector{}.Min() },
		"ArgMax": func() { Vector{}.ArgMax() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on empty vector did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestApplyMapClamp(t *testing.T) {
	v := Vector{-2, 0.5, 3}
	v.Clamp(0, 1)
	if !Equal(v, Vector{0, 0.5, 1}) {
		t.Fatalf("Clamp = %v", v)
	}
	v.Apply(func(x float64) float64 { return x * 10 })
	if !Equal(v, Vector{0, 5, 10}) {
		t.Fatalf("Apply = %v", v)
	}
	w := NewVector(3)
	w.Map(func(x float64) float64 { return -x }, v)
	if !Equal(w, Vector{0, -5, -10}) {
		t.Fatalf("Map = %v", w)
	}
}

func TestAllFinite(t *testing.T) {
	if !(Vector{1, 2}).AllFinite() {
		t.Fatal("finite vector reported non-finite")
	}
	if (Vector{1, math.NaN()}).AllFinite() {
		t.Fatal("NaN not caught")
	}
	if (Vector{math.Inf(1)}).AllFinite() {
		t.Fatal("Inf not caught")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := Vector{1, 2}
	b := a.Clone()
	b[0] = 9
	if a[0] != 1 {
		t.Fatal("Clone shares storage")
	}
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("Matrix Clone shares storage")
	}
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Fatalf("At = %v", m.At(1, 2))
	}
	r := m.Row(1)
	r[0] = 7 // rows share storage
	if m.At(1, 0) != 7 {
		t.Fatal("Row should share storage")
	}
	m.Fill(1)
	m.Scale(3)
	if m.At(0, 0) != 3 {
		t.Fatal("Fill/Scale failed")
	}
	m.Zero()
	for _, x := range m.Data {
		if x != 0 {
			t.Fatal("Zero failed")
		}
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged FromRows did not panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMatrix(3, 5)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	tt := m.Transpose().Transpose()
	for i := range m.Data {
		if m.Data[i] != tt.Data[i] {
			t.Fatal("(Aᵀ)ᵀ != A")
		}
	}
}

func TestMatVecKnown(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	x := Vector{1, 1}
	dst := NewVector(3)
	MatVec(dst, m, x)
	if !Equal(dst, Vector{3, 7, 11}) {
		t.Fatalf("MatVec = %v", dst)
	}
	// mᵀ·y
	y := Vector{1, 0, 1}
	dt := NewVector(2)
	MatTVec(dt, m, y)
	if !Equal(dt, Vector{6, 8}) {
		t.Fatalf("MatTVec = %v", dt)
	}
}

func TestMatVecLinearity(t *testing.T) {
	// M(ax + by) == a·Mx + b·My, via testing/quick on small random inputs.
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := NewMatrix(4, 3)
		for i := range m.Data {
			m.Data[i] = r.NormFloat64()
		}
		x, y := NewVector(3), NewVector(3)
		for i := range x {
			x[i], y[i] = r.NormFloat64(), r.NormFloat64()
		}
		a, b := r.NormFloat64(), r.NormFloat64()
		comb := NewVector(3)
		for i := range comb {
			comb[i] = a*x[i] + b*y[i]
		}
		lhs := NewVector(4)
		MatVec(lhs, m, comb)
		mx, my := NewVector(4), NewVector(4)
		MatVec(mx, m, x)
		MatVec(my, m, y)
		for i := range lhs {
			if !almostEq(lhs[i], a*mx[i]+b*my[i], 1e-9) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulAssociativity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := NewMatrix(3, 4), NewMatrix(4, 2), NewMatrix(2, 5)
		for _, m := range []*Matrix{a, b, c} {
			for i := range m.Data {
				m.Data[i] = r.NormFloat64()
			}
		}
		ab := NewMatrix(3, 2)
		MatMul(ab, a, b)
		abc1 := NewMatrix(3, 5)
		MatMul(abc1, ab, c)
		bc := NewMatrix(4, 5)
		MatMul(bc, b, c)
		abc2 := NewMatrix(3, 5)
		MatMul(abc2, a, bc)
		for i := range abc1.Data {
			if !almostEq(abc1.Data[i], abc2.Data[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := NewMatrix(4, 4)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	id := NewMatrix(4, 4)
	for i := 0; i < 4; i++ {
		id.Set(i, i, 1)
	}
	out := NewMatrix(4, 4)
	MatMul(out, a, id)
	for i := range a.Data {
		if out.Data[i] != a.Data[i] {
			t.Fatal("A·I != A")
		}
	}
	MatMul(out, id, a)
	for i := range a.Data {
		if out.Data[i] != a.Data[i] {
			t.Fatal("I·A != A")
		}
	}
}

func TestAddOuterMatchesMatMul(t *testing.T) {
	// x·yᵀ as AddOuter must equal MatMul of column × row matrices.
	x := Vector{1, 2, 3}
	y := Vector{4, 5}
	m := NewMatrix(3, 2)
	m.AddOuter(2, x, y)
	xc := FromRows([][]float64{{1}, {2}, {3}})
	yr := FromRows([][]float64{{4, 5}})
	want := NewMatrix(3, 2)
	MatMul(want, xc, yr)
	want.Scale(2)
	for i := range m.Data {
		if !almostEq(m.Data[i], want.Data[i], eps) {
			t.Fatalf("AddOuter = %v want %v", m.Data, want.Data)
		}
	}
}

func TestMatrixAddScaled(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{10, 20}})
	a.AddScaled(0.1, b)
	if !almostEq(a.At(0, 0), 2, eps) || !almostEq(a.At(0, 1), 4, eps) {
		t.Fatalf("AddScaled = %v", a.Data)
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	m := NewMatrix(2, 3)
	cases := map[string]func(){
		"MatVec":        func() { MatVec(NewVector(2), m, NewVector(2)) },
		"MatTVec":       func() { MatTVec(NewVector(2), m, NewVector(2)) },
		"MatMul":        func() { MatMul(NewMatrix(2, 2), m, NewMatrix(2, 2)) },
		"AddOuter":      func() { m.AddOuter(1, NewVector(3), NewVector(3)) },
		"AddScaled":     func() { m.AddScaled(1, NewMatrix(3, 2)) },
		"VecAdd":        func() { NewVector(2).Add(NewVector(3), NewVector(3)) },
		"VecAddScaled":  func() { NewVector(2).AddScaled(1, NewVector(3)) },
		"Dot":           func() { Dot(NewVector(2), NewVector(3)) },
		"negativeShape": func() { NewMatrix(-1, 2) },
	}
	for name, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s mismatch did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestEqual(t *testing.T) {
	if Equal(Vector{1}, Vector{1, 2}) {
		t.Fatal("length mismatch reported equal")
	}
	if !Equal(Vector{1, 2}, Vector{1, 2}) {
		t.Fatal("equal vectors reported unequal")
	}
	if Equal(Vector{1, 2}, Vector{1, 3}) {
		t.Fatal("unequal vectors reported equal")
	}
}
