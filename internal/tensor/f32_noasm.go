//go:build !amd64

package tensor

// F32Backend names the active float32 kernel implementation.
func F32Backend() string { return "generic" }

func addMatMul32(dst, a, b *Matrix32) { addMatMul32Generic(dst, a, b) }

func dot32(a, b Vector32) float32 { return dot32Generic(a, b) }

func tanhInPlace32(x Vector32) { tanhInPlace32Generic(x) }
