package tensor

import (
	"math"
	"testing"
)

// TestFastTanhAccuracy pins the absolute-error bound of the float64
// rational tanh against math.Tanh over a dense grid spanning the clamp.
func TestFastTanhAccuracy(t *testing.T) {
	const bound = 5e-7
	var maxErr, argMax float64
	for x := -12.0; x <= 12.0; x += 1.0 / 1024 {
		if e := math.Abs(FastTanh(x) - math.Tanh(x)); e > maxErr {
			maxErr, argMax = e, x
		}
	}
	if maxErr > bound {
		t.Fatalf("max |FastTanh-tanh| = %g at x=%v, want <= %g", maxErr, argMax, bound)
	}
}

// TestFastTanhSpecialValues pins the exact-zero, saturation, oddness and
// NaN-propagation contract.
func TestFastTanhSpecialValues(t *testing.T) {
	if got := FastTanh(0); got != 0 {
		t.Fatalf("FastTanh(0) = %v, want exact 0", got)
	}
	if !math.IsNaN(FastTanh(math.NaN())) {
		t.Fatal("FastTanh(NaN) did not propagate NaN")
	}
	// Saturation: everything beyond the clamp maps to exactly ±1, so a
	// hard-driven unit (e.g. a poisoned output bias) pins its action.
	for _, x := range []float64{8, 40, 1e12, math.Inf(1)} {
		if got := FastTanh(x); got != 1 {
			t.Fatalf("FastTanh(%v) = %v, want exact 1", x, got)
		}
		if got := FastTanh(-x); got != -1 {
			t.Fatalf("FastTanh(%v) = %v, want exact -1", -x, got)
		}
	}
	if sat := FastTanh(tanhClamp); math.Abs(sat-1) > 5e-7 {
		t.Fatalf("value at the clamp %v too far from 1", sat)
	}
	// Oddness bit for bit: the rational has only odd terms.
	for x := 0.1; x < 8; x += 0.37 {
		if FastTanh(-x) != -FastTanh(x) {
			t.Fatalf("FastTanh not odd at x=%v", x)
		}
	}
}

func BenchmarkFastTanh(b *testing.B) {
	var s float64
	for i := 0; i < b.N; i++ {
		s += FastTanh(float64(i%97)*0.06 - 2.9)
	}
	sinkF64 = s
}

func BenchmarkMathTanh(b *testing.B) {
	var s float64
	for i := 0; i < b.N; i++ {
		s += math.Tanh(float64(i%97)*0.06 - 2.9)
	}
	sinkF64 = s
}

var sinkF64 float64
