// AVX2+FMA kernels for the float32 serving backend. Only reached when
// runtime CPUID detection (f32_amd64.go) confirms AVX2, FMA and OS YMM
// state support; otherwise the portable Go fallbacks in f32.go run.
//
// The saxpy kernels keep an entire 64/32/8-wide destination block resident
// in YMM accumulators across the whole k loop, so each fused multiply-add
// streams one broadcast scalar of a and one contiguous row chunk of b —
// unit stride on both operands, zero intermediate stores. Eight independent
// accumulator chains hide the 4-cycle FMA latency.

#include "textflag.h"

// func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL	eaxArg+0(FP), AX
	MOVL	ecxArg+4(FP), CX
	CPUID
	MOVL	AX, eax+8(FP)
	MOVL	BX, ebx+12(FP)
	MOVL	CX, ecx+16(FP)
	MOVL	DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL	CX, CX
	XGETBV
	MOVL	AX, eax+0(FP)
	MOVL	DX, edx+4(FP)
	RET

// func saxpyK64(dst, a, b *float32, k, ldb int)
// dst[0:64] += Σ_{j<k} a[j] * b[j*ldb : j*ldb+64]
TEXT ·saxpyK64(SB), NOSPLIT, $0-40
	MOVQ	dst+0(FP), DI
	MOVQ	a+8(FP), SI
	MOVQ	b+16(FP), DX
	MOVQ	k+24(FP), CX
	MOVQ	ldb+32(FP), R8
	SHLQ	$2, R8
	VMOVUPS	(DI), Y0
	VMOVUPS	32(DI), Y1
	VMOVUPS	64(DI), Y2
	VMOVUPS	96(DI), Y3
	VMOVUPS	128(DI), Y4
	VMOVUPS	160(DI), Y5
	VMOVUPS	192(DI), Y6
	VMOVUPS	224(DI), Y7
	TESTQ	CX, CX
	JE	store64
loop64:
	VBROADCASTSS	(SI), Y8
	VFMADD231PS	(DX), Y8, Y0
	VFMADD231PS	32(DX), Y8, Y1
	VFMADD231PS	64(DX), Y8, Y2
	VFMADD231PS	96(DX), Y8, Y3
	VFMADD231PS	128(DX), Y8, Y4
	VFMADD231PS	160(DX), Y8, Y5
	VFMADD231PS	192(DX), Y8, Y6
	VFMADD231PS	224(DX), Y8, Y7
	ADDQ	$4, SI
	ADDQ	R8, DX
	DECQ	CX
	JNE	loop64
store64:
	VMOVUPS	Y0, (DI)
	VMOVUPS	Y1, 32(DI)
	VMOVUPS	Y2, 64(DI)
	VMOVUPS	Y3, 96(DI)
	VMOVUPS	Y4, 128(DI)
	VMOVUPS	Y5, 160(DI)
	VMOVUPS	Y6, 192(DI)
	VMOVUPS	Y7, 224(DI)
	VZEROUPPER
	RET

// func saxpyK32(dst, a, b *float32, k, ldb int)
// dst[0:32] += Σ_{j<k} a[j] * b[j*ldb : j*ldb+32]
TEXT ·saxpyK32(SB), NOSPLIT, $0-40
	MOVQ	dst+0(FP), DI
	MOVQ	a+8(FP), SI
	MOVQ	b+16(FP), DX
	MOVQ	k+24(FP), CX
	MOVQ	ldb+32(FP), R8
	SHLQ	$2, R8
	VMOVUPS	(DI), Y0
	VMOVUPS	32(DI), Y1
	VMOVUPS	64(DI), Y2
	VMOVUPS	96(DI), Y3
	TESTQ	CX, CX
	JE	store32
loop32:
	VBROADCASTSS	(SI), Y8
	VFMADD231PS	(DX), Y8, Y0
	VFMADD231PS	32(DX), Y8, Y1
	VFMADD231PS	64(DX), Y8, Y2
	VFMADD231PS	96(DX), Y8, Y3
	ADDQ	$4, SI
	ADDQ	R8, DX
	DECQ	CX
	JNE	loop32
store32:
	VMOVUPS	Y0, (DI)
	VMOVUPS	Y1, 32(DI)
	VMOVUPS	Y2, 64(DI)
	VMOVUPS	Y3, 96(DI)
	VZEROUPPER
	RET

// func saxpyK8(dst, a, b *float32, k, ldb int)
// dst[0:8] += Σ_{j<k} a[j] * b[j*ldb : j*ldb+8]
TEXT ·saxpyK8(SB), NOSPLIT, $0-40
	MOVQ	dst+0(FP), DI
	MOVQ	a+8(FP), SI
	MOVQ	b+16(FP), DX
	MOVQ	k+24(FP), CX
	MOVQ	ldb+32(FP), R8
	SHLQ	$2, R8
	VMOVUPS	(DI), Y0
	TESTQ	CX, CX
	JE	store8
loop8:
	VBROADCASTSS	(SI), Y8
	VFMADD231PS	(DX), Y8, Y0
	ADDQ	$4, SI
	ADDQ	R8, DX
	DECQ	CX
	JNE	loop8
store8:
	VMOVUPS	Y0, (DI)
	VZEROUPPER
	RET

// func dotAsm(a, b *float32, k int) float32
TEXT ·dotAsm(SB), NOSPLIT, $0-28
	MOVQ	a+0(FP), SI
	MOVQ	b+8(FP), DX
	MOVQ	k+16(FP), CX
	VXORPS	Y0, Y0, Y0
	VXORPS	Y1, Y1, Y1
	MOVQ	CX, R9
	SHRQ	$4, R9
	TESTQ	R9, R9
	JE	dtail
dloop16:
	VMOVUPS	(SI), Y2
	VFMADD231PS	(DX), Y2, Y0
	VMOVUPS	32(SI), Y3
	VFMADD231PS	32(DX), Y3, Y1
	ADDQ	$64, SI
	ADDQ	$64, DX
	DECQ	R9
	JNE	dloop16
dtail:
	VXORPS	X4, X4, X4
	ANDQ	$15, CX
	TESTQ	CX, CX
	JE	dsum
dtailloop:
	VMOVSS	(SI), X2
	VMOVSS	(DX), X3
	VFMADD231SS	X3, X2, X4
	ADDQ	$4, SI
	ADDQ	$4, DX
	DECQ	CX
	JNE	dtailloop
dsum:
	VADDPS	Y1, Y0, Y0
	VEXTRACTF128	$1, Y0, X1
	VADDPS	X1, X0, X0
	VHADDPS	X0, X0, X0
	VHADDPS	X0, X0, X0
	VADDSS	X4, X0, X0
	VMOVSS	X0, ret+24(FP)
	VZEROUPPER
	RET

// Broadcast scalars for the rational tanh (coefficients match Tanh32 in
// f32.go; bit patterns are float32).
DATA ·tanhClampC+0(SB)/4, $0x40fcf84f
GLOBL ·tanhClampC(SB), RODATA|NOPTR, $4
DATA ·tanhNegClampC+0(SB)/4, $0xc0fcf84f
GLOBL ·tanhNegClampC(SB), RODATA|NOPTR, $4
DATA ·tanhA13+0(SB)/4, $0xa59f25c0
GLOBL ·tanhA13(SB), RODATA|NOPTR, $4
DATA ·tanhA11+0(SB)/4, $0x2a61337e
GLOBL ·tanhA11(SB), RODATA|NOPTR, $4
DATA ·tanhA9+0(SB)/4, $0xaebd37ff
GLOBL ·tanhA9(SB), RODATA|NOPTR, $4
DATA ·tanhA7+0(SB)/4, $0x335c0041
GLOBL ·tanhA7(SB), RODATA|NOPTR, $4
DATA ·tanhA5+0(SB)/4, $0x3779434a
GLOBL ·tanhA5(SB), RODATA|NOPTR, $4
DATA ·tanhA3+0(SB)/4, $0x3a270ded
GLOBL ·tanhA3(SB), RODATA|NOPTR, $4
DATA ·tanhA1+0(SB)/4, $0x3ba059dc
GLOBL ·tanhA1(SB), RODATA|NOPTR, $4
DATA ·tanhB6+0(SB)/4, $0x35a0d3d8
GLOBL ·tanhB6(SB), RODATA|NOPTR, $4
DATA ·tanhB4+0(SB)/4, $0x38f895d6
GLOBL ·tanhB4(SB), RODATA|NOPTR, $4
DATA ·tanhB2+0(SB)/4, $0x3b14aa05
GLOBL ·tanhB2(SB), RODATA|NOPTR, $4
DATA ·tanhB0+0(SB)/4, $0x3ba059dd
GLOBL ·tanhB0(SB), RODATA|NOPTR, $4

// func tanhVec8(x *float32, n int)
// In-place rational tanh over the first n&^7 elements, 8 lanes at a time.
// The min/max operand order keeps NaN lanes NaN; ±Inf saturates to the
// clamp plateau, matching the scalar Tanh32.
TEXT ·tanhVec8(SB), NOSPLIT, $0-16
	MOVQ	x+0(FP), DI
	MOVQ	n+8(FP), CX
	SHRQ	$3, CX
	TESTQ	CX, CX
	JE	tvdone
	VBROADCASTSS	·tanhClampC(SB), Y4
	VBROADCASTSS	·tanhNegClampC(SB), Y5
	VBROADCASTSS	·tanhA11(SB), Y6
	VBROADCASTSS	·tanhA9(SB), Y7
	VBROADCASTSS	·tanhA7(SB), Y8
	VBROADCASTSS	·tanhA5(SB), Y9
	VBROADCASTSS	·tanhA3(SB), Y10
	VBROADCASTSS	·tanhA1(SB), Y11
	VBROADCASTSS	·tanhB6(SB), Y12
	VBROADCASTSS	·tanhB4(SB), Y13
	VBROADCASTSS	·tanhB2(SB), Y14
	VBROADCASTSS	·tanhB0(SB), Y15
tvloop:
	VMOVUPS	(DI), Y0
	VMINPS	Y0, Y4, Y0
	VMAXPS	Y0, Y5, Y0
	VMULPS	Y0, Y0, Y1
	VBROADCASTSS	·tanhA13(SB), Y2
	VFMADD213PS	Y6, Y1, Y2
	VFMADD213PS	Y7, Y1, Y2
	VFMADD213PS	Y8, Y1, Y2
	VFMADD213PS	Y9, Y1, Y2
	VFMADD213PS	Y10, Y1, Y2
	VFMADD213PS	Y11, Y1, Y2
	VMULPS	Y0, Y2, Y2
	VMOVAPS	Y12, Y3
	VFMADD213PS	Y13, Y1, Y3
	VFMADD213PS	Y14, Y1, Y3
	VFMADD213PS	Y15, Y1, Y3
	VDIVPS	Y3, Y2, Y0
	VMOVUPS	Y0, (DI)
	ADDQ	$32, DI
	DECQ	CX
	JNE	tvloop
tvdone:
	VZEROUPPER
	RET
