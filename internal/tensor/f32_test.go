package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func TestTanh32Accuracy(t *testing.T) {
	worst := 0.0
	worstAt := 0.0
	for x := -12.0; x <= 12.0; x += 1.0 / 512 {
		got := float64(Tanh32(float32(x)))
		want := math.Tanh(x)
		if d := math.Abs(got - want); d > worst {
			worst, worstAt = d, x
		}
	}
	t.Logf("max |Tanh32-tanh| = %.3g at x=%.4f", worst, worstAt)
	if worst > 5e-7 {
		t.Fatalf("Tanh32 max error %g exceeds 5e-7 (at x=%g)", worst, worstAt)
	}
}

func TestTanh32SpecialValues(t *testing.T) {
	if v := Tanh32(float32(math.NaN())); !math.IsNaN(float64(v)) {
		t.Fatalf("Tanh32(NaN) = %g, want NaN", v)
	}
	// ±Inf and huge finite inputs land on the clamp plateau, within float32
	// eps of ±1 but not exactly ±1 (the vector kernel produces the same).
	for _, x := range []float32{float32(math.Inf(1)), 1e30, 50, tanhClamp32} {
		v := Tanh32(x)
		if v <= 0.999999 || v > 1 {
			t.Fatalf("Tanh32(%g) = %g, want in (0.999999, 1]", x, v)
		}
		if n := Tanh32(-x); n != -v {
			t.Fatalf("odd symmetry broken: Tanh32(%g)=%g, Tanh32(%g)=%g", x, v, -x, n)
		}
	}
	if v := Tanh32(0); v != 0 {
		t.Fatalf("Tanh32(0) = %g, want 0", v)
	}
}

func TestToF32Sat(t *testing.T) {
	cases := []struct {
		in   float64
		want float32
	}{
		{0, 0},
		{1.5, 1.5},
		{-2.25, -2.25},
		{1e300, math.MaxFloat32},
		{-1e300, -math.MaxFloat32},
		{math.MaxFloat32 * 2, math.MaxFloat32},
		{math.Inf(1), float32(math.Inf(1))},
		{math.Inf(-1), float32(math.Inf(-1))},
	}
	for _, c := range cases {
		if got := ToF32Sat(c.in); got != c.want {
			t.Errorf("ToF32Sat(%g) = %g, want %g", c.in, got, c.want)
		}
	}
	if got := ToF32Sat(math.NaN()); !math.IsNaN(float64(got)) {
		t.Errorf("ToF32Sat(NaN) = %g, want NaN", got)
	}
	src := Vector{1, 1e40, -1e40, 0.5}
	dst := NewVector32(4)
	ConvertSat(dst, src)
	want := Vector32{1, math.MaxFloat32, -math.MaxFloat32, 0.5}
	for i := range want {
		if dst[i] != want[i] {
			t.Errorf("ConvertSat[%d] = %g, want %g", i, dst[i], want[i])
		}
	}
}

func TestTanhInPlace32MatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := make(Vector32, 1003) // not a multiple of 8: exercises the tail
	want := make(Vector32, len(x))
	for i := range x {
		x[i] = float32(rng.NormFloat64() * 4)
		want[i] = Tanh32(x[i])
	}
	x[0] = float32(math.Inf(1))
	x[1] = float32(math.Inf(-1))
	x[2] = float32(math.NaN())
	want[0], want[1] = Tanh32(x[0]), Tanh32(x[1])
	TanhInPlace32(x)
	if !math.IsNaN(float64(x[2])) {
		t.Fatalf("NaN lane not preserved: %g", x[2])
	}
	for i := range x {
		if i == 2 {
			continue
		}
		// The vector path fuses multiply-adds; allow one ulp-ish slack.
		if d := math.Abs(float64(x[i] - want[i])); d > 1e-6 {
			t.Fatalf("i=%d: vector %g vs scalar %g (diff %g)", i, x[i], want[i], d)
		}
	}
	if x[0] <= 0.999999 || x[1] >= -0.999999 {
		t.Fatalf("Inf lanes off the plateau: %g %g", x[0], x[1])
	}
}

// refAddMatMul32 accumulates in float64 — the precision yardstick.
func refAddMatMul32(dst, a, b *Matrix32) {
	for i := 0; i < a.Rows; i++ {
		for c := 0; c < b.Cols; c++ {
			s := float64(dst.Data[i*b.Cols+c])
			for j := 0; j < a.Cols; j++ {
				s += float64(a.Data[i*a.Cols+j]) * float64(b.Data[j*b.Cols+c])
			}
			dst.Data[i*b.Cols+c] = float32(s)
		}
	}
}

func TestAddMatMul32MatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	shapes := []struct{ m, k, o int }{
		{1, 1, 1}, {3, 5, 7}, {4, 6, 64}, {2, 64, 64}, {5, 6, 65},
		{7, 33, 32}, {1, 6, 97}, {9, 64, 129}, {8, 16, 40}, {2, 3, 8},
	}
	for _, sh := range shapes {
		a := NewMatrix32(sh.m, sh.k)
		b := NewMatrix32(sh.k, sh.o)
		for i := range a.Data {
			a.Data[i] = float32(rng.NormFloat64())
		}
		for i := range b.Data {
			b.Data[i] = float32(rng.NormFloat64())
		}
		got := NewMatrix32(sh.m, sh.o)
		want := NewMatrix32(sh.m, sh.o)
		for i := range got.Data {
			v := float32(rng.NormFloat64()) // nonzero dst: += semantics
			got.Data[i] = v
			want.Data[i] = v
		}
		AddMatMul32(got, a, b)
		refAddMatMul32(want, a, b)
		for i := range got.Data {
			d := math.Abs(float64(got.Data[i] - want.Data[i]))
			// k float32 rounding steps; scale tolerance with k.
			tol := 1e-5 * math.Sqrt(float64(sh.k))
			if d > tol {
				t.Fatalf("%dx%dx%d elem %d: got %g want %g (diff %g)",
					sh.m, sh.k, sh.o, i, got.Data[i], want.Data[i], d)
			}
		}
	}
}

func TestAddMatMul32AsmVsGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, sh := range []struct{ m, k, o int }{{3, 6, 64}, {2, 64, 64}, {5, 17, 70}, {4, 9, 12}} {
		a := NewMatrix32(sh.m, sh.k)
		b := NewMatrix32(sh.k, sh.o)
		for i := range a.Data {
			a.Data[i] = float32(rng.NormFloat64())
		}
		for i := range b.Data {
			b.Data[i] = float32(rng.NormFloat64())
		}
		fast := NewMatrix32(sh.m, sh.o)
		gen := NewMatrix32(sh.m, sh.o)
		AddMatMul32(fast, a, b)
		addMatMul32Generic(gen, a, b)
		for i := range fast.Data {
			if d := math.Abs(float64(fast.Data[i] - gen.Data[i])); d > 1e-5 {
				t.Fatalf("%v elem %d: dispatch %g vs generic %g", sh, i, fast.Data[i], gen.Data[i])
			}
		}
	}
}

func TestDot32(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, k := range []int{0, 1, 3, 8, 15, 16, 17, 31, 32, 63, 64, 100} {
		a := make(Vector32, k)
		b := make(Vector32, k)
		var ref float64
		for i := range a {
			a[i] = float32(rng.NormFloat64())
			b[i] = float32(rng.NormFloat64())
			ref += float64(a[i]) * float64(b[i])
		}
		if d := math.Abs(float64(Dot32(a, b)) - ref); d > 1e-4 {
			t.Fatalf("k=%d: Dot32 off by %g", k, d)
		}
	}
}

func TestAddMatMul32ShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape panic")
		}
	}()
	AddMatMul32(NewMatrix32(2, 2), NewMatrix32(2, 3), NewMatrix32(2, 2))
}

func TestMatMulTransBTiledBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	// Odd and even dims: exercises the 2×2 tiles plus both tail paths.
	for _, sh := range []struct{ r, k, c int }{{1, 1, 1}, {2, 3, 2}, {3, 5, 4}, {4, 64, 64}, {5, 7, 9}, {64, 6, 1}} {
		a := NewMatrix(sh.r, sh.k)
		b := NewMatrix(sh.c, sh.k)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		got := NewMatrix(sh.r, sh.c)
		MatMulTransB(got, a, b)
		for i := 0; i < sh.r; i++ {
			for o := 0; o < sh.c; o++ {
				var s float64
				for j := 0; j < sh.k; j++ {
					s += a.Data[i*sh.k+j] * b.Data[o*sh.k+j]
				}
				if got.Data[i*sh.c+o] != s {
					t.Fatalf("%v [%d,%d]: tiled %v != reference %v (must be bit-identical)",
						sh, i, o, got.Data[i*sh.c+o], s)
				}
			}
		}
	}
}

func TestArenaReuseAndReset(t *testing.T) {
	ar := NewArena()
	v := ar.F32(10)
	for i := range v {
		v[i] = float32(i)
	}
	m := ar.Matrix32(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("bad arena matrix shape %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	for _, x := range m.Data {
		if x != 0 {
			t.Fatal("arena matrix not zeroed")
		}
	}
	w := ar.F64(5)
	w[0] = 3
	m64 := ar.Matrix(2, 2)
	if m64.Rows != 2 || len(m64.Data) != 4 {
		t.Fatal("bad f64 arena matrix")
	}

	ar.Reset()
	v2 := ar.F32(10)
	for i, x := range v2 {
		if x != 0 {
			t.Fatalf("post-reset slice not zeroed at %d: %g", i, x)
		}
	}
	if &v2[0] != &v[0] {
		t.Fatal("reset did not rewind the f32 slab")
	}

	// Growth mid-tick must leave previously handed-out slices usable.
	big := ar.F32(100000)
	big[99999] = 1
	if v2[0] != 0 {
		t.Fatal("growth corrupted an earlier slice")
	}
}

func TestArenaSteadyStateZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc counting")
	}
	ar := NewArena()
	tick := func() {
		ar.Reset()
		_ = ar.F32(1000)
		_ = ar.Matrix32(10, 64)
		_ = ar.F64(100)
		_ = ar.Matrix(4, 4)
	}
	tick() // warm the slabs
	if n := testing.AllocsPerRun(50, tick); n != 0 {
		t.Fatalf("steady-state arena tick allocates %v times, want 0", n)
	}
}

func BenchmarkAddMatMul32(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := NewMatrix32(64, 64)
	w := NewMatrix32(64, 64)
	for i := range a.Data {
		a.Data[i] = float32(rng.NormFloat64())
	}
	for i := range w.Data {
		w.Data[i] = float32(rng.NormFloat64())
	}
	dst := NewMatrix32(64, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AddMatMul32(dst, a, w)
	}
}

func BenchmarkTanhInPlace32(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := make(Vector32, 4096)
	for i := range x {
		x[i] = float32(rng.NormFloat64())
	}
	b.SetBytes(int64(len(x) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TanhInPlace32(x)
	}
}

func BenchmarkMatMulTransB(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := NewMatrix(256, 64)
	w := NewMatrix(64, 64)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64()
	}
	dst := NewMatrix(256, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTransB(dst, a, w)
	}
}
