//go:build amd64

package tensor

// Assembly routines (f32_amd64.s).

func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
func xgetbv0() (eax, edx uint32)

//go:noescape
func saxpyK64(dst, a, b *float32, k, ldb int)

//go:noescape
func saxpyK32(dst, a, b *float32, k, ldb int)

//go:noescape
func saxpyK8(dst, a, b *float32, k, ldb int)

//go:noescape
func dotAsm(a, b *float32, k int) float32

//go:noescape
func tanhVec8(x *float32, n int)

// useAVX2 gates the assembly kernels: AVX2 + FMA + OS support for YMM
// state (XGETBV). Resolved once at startup.
var useAVX2 = detectAVX2FMA()

func detectAVX2FMA() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const fma = 1 << 12
	const osxsave = 1 << 27
	const avx = 1 << 28
	if ecx1&(fma|osxsave|avx) != (fma | osxsave | avx) {
		return false
	}
	if eax, _ := xgetbv0(); eax&0x6 != 0x6 {
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const avx2 = 1 << 5
	return ebx7&avx2 != 0
}

// F32Backend names the active float32 kernel implementation (for audit
// lines and benchmark records).
func F32Backend() string {
	if useAVX2 {
		return "avx2"
	}
	return "generic"
}

func addMatMul32(dst, a, b *Matrix32) {
	if !useAVX2 {
		addMatMul32Generic(dst, a, b)
		return
	}
	m, k, o := a.Rows, a.Cols, b.Cols
	for i := 0; i < m; i++ {
		ap := &a.Data[i*k]
		drow := dst.Data[i*o : (i+1)*o]
		c := 0
		for ; c+64 <= o; c += 64 {
			saxpyK64(&drow[c], ap, &b.Data[c], k, o)
		}
		if c+32 <= o {
			saxpyK32(&drow[c], ap, &b.Data[c], k, o)
			c += 32
		}
		for ; c+8 <= o; c += 8 {
			saxpyK8(&drow[c], ap, &b.Data[c], k, o)
		}
		if c < o {
			arow := a.Data[i*k : (i+1)*k]
			for j, aj := range arow {
				brow := b.Data[j*o : (j+1)*o]
				for cc := c; cc < o; cc++ {
					drow[cc] += aj * brow[cc]
				}
			}
		}
	}
}

func dot32(a, b Vector32) float32 {
	if useAVX2 {
		return dotAsm(&a[0], &b[0], len(a))
	}
	return dot32Generic(a, b)
}

func tanhInPlace32(x Vector32) {
	if !useAVX2 {
		tanhInPlace32Generic(x)
		return
	}
	n8 := len(x) &^ 7
	if n8 > 0 {
		tanhVec8(&x[0], n8)
	}
	for i := n8; i < len(x); i++ {
		x[i] = Tanh32(x[i])
	}
}
