package env

import (
	"testing"

	"repro/internal/tensor"
	"repro/internal/testutil"
)

func TestBuildStateStandalone(t *testing.T) {
	sys := testSystem()
	cfg := DefaultConfig()
	s := BuildState(sys, 100, cfg)
	if len(s) != sys.N()*(cfg.History+1) {
		t.Fatalf("state len %d", len(s))
	}
	// Identical inputs are deterministic.
	s2 := BuildState(sys, 100, cfg)
	if !tensor.Equal(s, s2) {
		t.Fatal("BuildState not deterministic")
	}
	// Different clocks change the state (traces are ramps).
	s3 := BuildState(sys, 200, cfg)
	if tensor.Equal(s, s3) {
		t.Fatal("state ignores the clock")
	}
}

func TestMapActionStandalone(t *testing.T) {
	sys := testSystem()
	fs, err := MapAction(sys, tensor.Vector{0, 0, 0}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range sys.Devices {
		want := (0.1 + 0.9/2) * d.MaxFreqHz
		if !testutil.Within(fs[i], want, 1e-6) {
			t.Fatalf("mid action freq %v want %v", fs[i], want)
		}
	}
	if _, err := MapAction(sys, tensor.Vector{0}, 0.1); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	if _, err := MapAction(sys, tensor.Vector{0, 0, 0}, 0); err == nil {
		t.Fatal("minFrac 0 accepted")
	}
	if _, err := MapAction(sys, tensor.Vector{0, 0, 0}, 1); err == nil {
		t.Fatal("minFrac 1 accepted")
	}
}

func TestMapActionMonotone(t *testing.T) {
	// Larger raw action ⇒ higher frequency, always.
	sys := testSystem()
	prev := -1.0
	for _, a := range []float64{-2, -1, -0.5, 0, 0.5, 1, 2} {
		fs, err := MapAction(sys, tensor.Vector{a, a, a}, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if fs[0] < prev {
			t.Fatalf("non-monotone mapping at a=%v", a)
		}
		prev = fs[0]
	}
}
