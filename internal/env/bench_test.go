package env

import (
	"math/rand"
	"testing"

	"repro/internal/bandwidth"
	"repro/internal/device"
	"repro/internal/fl"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// benchSystem builds an N-device fleet on generated walking-4G traces —
// the Fig. 8 simulation shape without importing the experiments package.
func benchSystem(n int) *fl.System {
	devs := device.MustNewFleet(n, device.FleetParams{}, 1)
	p := bandwidth.Walking4G()
	traces := make([]*trace.Trace, n)
	for i := range traces {
		traces[i] = p.MustGenerate("w", 3000, int64(i)*17+1)
	}
	return &fl.System{Devices: devs, Traces: traces, Tau: 1, ModelBytes: 25e6, Lambda: 1}
}

func benchEnv(b *testing.B, n int) *Env {
	b.Helper()
	e, err := New(benchSystem(n), DefaultConfig(), rand.New(rand.NewSource(7)))
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// BenchmarkEnvStep measures one environment transition (frequency mapping,
// one synchronous FL iteration over the traces, next-state construction) at
// the paper's simulation scale N=50, H=5.
func BenchmarkEnvStep(b *testing.B) {
	e := benchEnv(b, 50)
	if _, err := e.ResetAt(0); err != nil {
		b.Fatal(err)
	}
	action := tensor.NewVector(e.ActionDim())
	for i := range action {
		action[i] = 0.3
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Step(action); err != nil {
			b.Fatal(err)
		}
		if i%e.Cfg.EpisodeLen == e.Cfg.EpisodeLen-1 {
			b.StopTimer()
			if _, err := e.ResetAt(0); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
}

// BenchmarkEnvStepInto measures the zero-allocation transition on the same
// N=50 workload as BenchmarkEnvStep.
func BenchmarkEnvStepInto(b *testing.B) {
	e := benchEnv(b, 50)
	if _, err := e.ResetAt(0); err != nil {
		b.Fatal(err)
	}
	action := tensor.NewVector(e.ActionDim())
	for i := range action {
		action[i] = 0.3
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.StepInto(action); err != nil {
			b.Fatal(err)
		}
		if i%e.Cfg.EpisodeLen == e.Cfg.EpisodeLen-1 {
			b.StopTimer()
			if _, err := e.ResetAt(0); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
}

// BenchmarkEpisode measures one whole training episode (Reset + EpisodeLen
// steps) on the 3-device testbed shape — the rollout-collection unit cost.
func BenchmarkEpisode(b *testing.B) {
	e := benchEnv(b, 3)
	action := tensor.NewVector(e.ActionDim())
	for i := range action {
		action[i] = 0.1
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Reset(); err != nil {
			b.Fatal(err)
		}
		for k := 0; k < e.Cfg.EpisodeLen; k++ {
			if _, err := e.Step(action); err != nil {
				b.Fatal(err)
			}
		}
	}
}
