package env

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// MapFracsInto is the cohort-level analogue of MapActionInto: it maps a raw
// Gaussian action vector (one component per region, nominally in (−1, 1)
// but unbounded when sampled) to frequency fractions, each clipped to
// [−1, 1] and scaled affinely onto [minFrac, 1]. The hierarchical engine
// multiplies a region's fraction by every cohort device's δ_i^max, so one
// action component prices a whole region.
func MapFracsInto(dst []float64, a tensor.Vector, minFrac float64) ([]float64, error) {
	if minFrac <= 0 || minFrac >= 1 {
		return nil, fmt.Errorf("env: min frequency fraction %v outside (0,1)", minFrac)
	}
	if cap(dst) < len(a) {
		dst = make([]float64, len(a))
	} else {
		dst = dst[:len(a)]
	}
	for r, x := range a {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			// Same rationale as MapActionInto: a non-finite component would
			// pass both clamp comparisons and poison the engine downstream.
			return nil, fmt.Errorf("env: non-finite action component %v for region %d", x, r)
		}
		if x < -1 {
			x = -1
		} else if x > 1 {
			x = 1
		}
		dst[r] = minFrac + (x+1)/2*(1-minFrac)
	}
	return dst, nil
}
