package env

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// TestStepIntoMatchesStep pins the zero-allocation path to the allocating
// one: over a whole episode with varying actions, StepInto must produce
// bit-identical states, rewards, and iteration stats to Step — the only
// differences are buffer ownership and the missing history record.
func TestStepIntoMatchesStep(t *testing.T) {
	mk := func() *Env {
		e, err := New(benchSystem(5), DefaultConfig(), rand.New(rand.NewSource(3)))
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	ea, eb := mk(), mk()
	sa, err := ea.ResetAt(123.4)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := eb.ResetAt(123.4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	action := tensor.NewVector(ea.ActionDim())
	for k := 0; k < ea.Cfg.EpisodeLen; k++ {
		for i := range sa {
			if sa[i] != sb[i] {
				t.Fatalf("step %d: state[%d] %v vs %v", k, i, sa[i], sb[i])
			}
		}
		for i := range action {
			action[i] = rng.Float64()*2 - 1
		}
		ra, err := ea.Step(action)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := eb.StepInto(action)
		if err != nil {
			t.Fatal(err)
		}
		if ra.Reward != rb.Reward || ra.Done != rb.Done {
			t.Fatalf("step %d: reward/done %v/%v vs %v/%v", k, ra.Reward, ra.Done, rb.Reward, rb.Done)
		}
		if ra.Iter.Cost != rb.Iter.Cost || ra.Iter.Duration != rb.Iter.Duration ||
			ra.Iter.ComputeEnergy != rb.Iter.ComputeEnergy || ra.Iter.TxEnergy != rb.Iter.TxEnergy {
			t.Fatalf("step %d: iteration stats diverge: %+v vs %+v", k, ra.Iter, rb.Iter)
		}
		for i := range ra.Iter.Devices {
			if ra.Iter.Devices[i] != rb.Iter.Devices[i] {
				t.Fatalf("step %d device %d: %+v vs %+v", k, i, ra.Iter.Devices[i], rb.Iter.Devices[i])
			}
		}
		if ea.Clock() != eb.Clock() {
			t.Fatalf("step %d: clocks diverge: %v vs %v", k, ea.Clock(), eb.Clock())
		}
		sa, sb = ra.State, rb.State
	}
	if eb.Session().K() != ea.Session().K() {
		t.Fatalf("K diverges: %d vs %d", eb.Session().K(), ea.Session().K())
	}
	if len(eb.Session().History) != 0 {
		t.Fatalf("StepInto recorded %d history entries", len(eb.Session().History))
	}
}
