package env

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/tensor"
)

func faultyConfig() Config {
	cfg := DefaultConfig()
	cfg.EpisodeLen = 12
	cfg.MaxStartTime = 100
	cfg.RoundDeadline = 300
	cfg.Faults = &fault.Config{
		CrashProb: 0.25, RejoinProb: 0.5, BlackoutProb: 0.2, StragglerProb: 0.15,
	}
	return cfg
}

func TestFaultConfigValidation(t *testing.T) {
	cfg := faultyConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("faulty config rejected: %v", err)
	}
	cfg.RoundDeadline = 0
	if err := cfg.Validate(); err == nil {
		t.Fatal("crashes without a deadline accepted")
	}
	cfg = faultyConfig()
	cfg.Faults = &fault.Config{CrashProb: 2, RejoinProb: 1}
	if err := cfg.Validate(); err == nil {
		t.Fatal("invalid fault config accepted")
	}
	cfg = faultyConfig()
	cfg.RetryBackoffSec = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative backoff accepted")
	}
}

// A nil fault config must leave the environment's RNG stream — and thus
// every fault-free trajectory — bit-identical to before this feature.
func TestNilFaultsPreserveRNGStream(t *testing.T) {
	run := func(cfg Config) ([]float64, tensor.Vector) {
		e, err := New(testSystem(), cfg, rand.New(rand.NewSource(5)))
		if err != nil {
			t.Fatal(err)
		}
		var starts []float64
		var last tensor.Vector
		for ep := 0; ep < 4; ep++ {
			s, err := e.Reset()
			if err != nil {
				t.Fatal(err)
			}
			starts = append(starts, e.Clock())
			last = s
		}
		return starts, last
	}
	base := DefaultConfig()
	base.MaxStartTime = 100
	gotStarts, gotState := run(base)

	// Reference: the raw draws the pre-fault Reset made.
	rng := rand.New(rand.NewSource(5))
	for i, s := range gotStarts {
		want := rng.Float64() * 100
		if s != want {
			t.Fatalf("episode %d start %v, want %v (stream shifted)", i, s, want)
		}
	}
	if gotState == nil {
		t.Fatal("no state")
	}
}

func TestFaultyEpisodeDeterminism(t *testing.T) {
	run := func() ([]tensor.Vector, []float64, []int) {
		e, err := New(testSystem(), faultyConfig(), rand.New(rand.NewSource(11)))
		if err != nil {
			t.Fatal(err)
		}
		var states []tensor.Vector
		var rewards []float64
		var survivors []int
		for ep := 0; ep < 3; ep++ {
			s, err := e.Reset()
			if err != nil {
				t.Fatal(err)
			}
			states = append(states, s)
			for {
				res, err := e.Step(tensor.NewVector(e.ActionDim()))
				if err != nil {
					t.Fatal(err)
				}
				states = append(states, res.State)
				rewards = append(rewards, res.Reward)
				survivors = append(survivors, res.Iter.Survivors)
				if res.Done {
					break
				}
			}
		}
		return states, rewards, survivors
	}
	s1, r1, v1 := run()
	s2, r2, v2 := run()
	if !reflect.DeepEqual(s1, s2) || !reflect.DeepEqual(r1, r2) || !reflect.DeepEqual(v1, v2) {
		t.Fatal("same seed produced different faulty trajectories")
	}
	// Churn must actually occur across 36 iterations at CrashProb 0.25.
	saw := false
	for _, v := range v1 {
		if v < 3 {
			saw = true
			break
		}
	}
	if !saw {
		t.Fatal("no device ever missed a round under churn")
	}
}

func TestDownDevicesMaskedInState(t *testing.T) {
	cfg := faultyConfig()
	cfg.Faults = &fault.Config{CrashProb: 1, RejoinProb: 0.001}
	e, err := New(testSystem(), cfg, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.ResetAtFaults(50, 9); err != nil {
		t.Fatal(err)
	}
	// After iteration 0 every device has crashed (CrashProb 1); the state
	// for iteration 1 must be all zeros.
	res, err := e.Step(tensor.NewVector(e.ActionDim()))
	if err != nil {
		t.Fatal(err)
	}
	down := e.Down()
	if down == nil {
		t.Fatal("no down mask under faults")
	}
	for i, d := range down {
		if !d {
			t.Fatalf("device %d should be down at iteration 1", i)
		}
	}
	for i, v := range res.State {
		if v != 0 {
			t.Fatalf("state[%d] = %v, want 0 for a fully-crashed fleet", i, v)
		}
	}
}

func TestMaskState(t *testing.T) {
	s := tensor.Vector{1, 2, 3, 4, 5, 6}
	MaskState(s, []bool{false, true, false}, 1) // H+1 = 2 slots per device
	want := tensor.Vector{1, 2, 0, 0, 5, 6}
	if !reflect.DeepEqual(s, want) {
		t.Fatalf("masked state %v, want %v", s, want)
	}
	MaskState(s, nil, 1) // no-op
	if !reflect.DeepEqual(s, want) {
		t.Fatal("nil mask mutated state")
	}
}

func TestResetAtFaultSeedsDiffer(t *testing.T) {
	e, err := New(testSystem(), faultyConfig(), rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	trajectory := func(seed int64) []int {
		if _, err := e.ResetAtFaults(20, seed); err != nil {
			t.Fatal(err)
		}
		var surv []int
		for {
			res, err := e.Step(tensor.NewVector(e.ActionDim()))
			if err != nil {
				t.Fatal(err)
			}
			surv = append(surv, res.Iter.Survivors)
			if res.Done {
				break
			}
		}
		return surv
	}
	a := trajectory(1)
	b := trajectory(2)
	c := trajectory(1)
	if !reflect.DeepEqual(a, c) {
		t.Fatal("same fault seed diverged")
	}
	if reflect.DeepEqual(a, b) {
		t.Fatal("different fault seeds produced identical survivor sequences")
	}
}
