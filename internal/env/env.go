// Package env adapts the federated-learning simulator into the episodic
// MDP of the paper's §IV-B: states are per-device bandwidth-slot histories
// (s_k = (B_1^k, …, B_N^k) with B_i^k the H+1 most recent slot averages),
// actions are per-device CPU frequencies, and the reward is the negated
// system cost of the completed iteration (eq. 13).
package env

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/fault"
	"repro/internal/fl"
	"repro/internal/tensor"
)

// Config parameterizes the MDP around a fl.System.
type Config struct {
	// SlotSec is h, the bandwidth-slot width in seconds ("tens of
	// seconds" per [20][21]).
	SlotSec float64
	// History is H: the state holds H+1 slot averages per device.
	History int
	// BWScale normalizes bandwidth into O(1) network inputs (bytes/s).
	BWScale float64
	// MinFreqFrac is the action floor as a fraction of δ_i^max, keeping
	// the frequency strictly positive as the paper's (0, δmax] requires.
	MinFreqFrac float64
	// EpisodeLen is the number of FL iterations per training episode.
	EpisodeLen int
	// RewardScale divides the raw −cost reward into a range PPO likes.
	RewardScale float64
	// MaxStartTime bounds the random episode start time t¹; 0 uses each
	// trace's duration.
	MaxStartTime float64
	// Faults, when non-nil, injects the seeded device-fault processes of
	// internal/fault into every episode (a fresh schedule per episode,
	// seeded from the environment RNG) so the agent trains under churn.
	// nil keeps the paper's fault-free MDP bit-for-bit.
	Faults *fault.Config
	// RoundDeadline enables partial aggregation: devices missing the
	// deadline (seconds per iteration) are dropped from the round. It is
	// required when Faults allows crashes and optional otherwise; 0
	// disables it.
	RoundDeadline float64
	// RetryBackoffSec tunes the upload retry backoff
	// (fl.DefaultRetryBackoffSec when 0).
	RetryBackoffSec float64
	// DeadlineTarget is the per-iteration duration target (seconds) of the
	// constrained-training deadline cost signal: StepResult.Costs[CostDeadline]
	// is the normalized overshoot max(0, T^k − target)/target. 0 disables the
	// signal (the cost stays 0).
	DeadlineTarget float64
	// EnergyBudget is the per-iteration energy target (joules) of the
	// constrained-training energy cost signal, normalized the same way into
	// StepResult.Costs[CostEnergy]. 0 disables the signal.
	EnergyBudget float64
}

// Constraint-cost signal indices of StepResult.Costs. The vector has a fixed
// compile-time size so the zero-allocation step path stays allocation-free.
const (
	// CostDeadline indexes the normalized round-duration overshoot.
	CostDeadline = 0
	// CostEnergy indexes the normalized energy-budget overshoot.
	CostEnergy = 1
	// NumCostSignals is the number of per-step constraint cost signals.
	NumCostSignals = 2
)

// DefaultConfig returns settings matched to the paper's testbed scenario.
func DefaultConfig() Config {
	return Config{
		SlotSec:     10,
		History:     5,
		BWScale:     5e6,
		MinFreqFrac: 0.05,
		EpisodeLen:  40,
		RewardScale: 10,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.SlotSec <= 0:
		return fmt.Errorf("env: slot width %v must be positive", c.SlotSec)
	case c.History < 0:
		return fmt.Errorf("env: history H = %d negative", c.History)
	case c.BWScale <= 0:
		return fmt.Errorf("env: bandwidth scale %v must be positive", c.BWScale)
	case c.MinFreqFrac <= 0 || c.MinFreqFrac >= 1:
		return fmt.Errorf("env: min frequency fraction %v outside (0,1)", c.MinFreqFrac)
	case c.EpisodeLen <= 0:
		return fmt.Errorf("env: episode length %d must be positive", c.EpisodeLen)
	case c.RewardScale <= 0:
		return fmt.Errorf("env: reward scale %v must be positive", c.RewardScale)
	case c.MaxStartTime < 0:
		return fmt.Errorf("env: max start time %v negative", c.MaxStartTime)
	case c.RoundDeadline < 0:
		return fmt.Errorf("env: round deadline %v negative", c.RoundDeadline)
	case c.RetryBackoffSec < 0:
		return fmt.Errorf("env: retry backoff %v negative", c.RetryBackoffSec)
	case c.DeadlineTarget < 0:
		return fmt.Errorf("env: deadline target %v negative", c.DeadlineTarget)
	case c.EnergyBudget < 0:
		return fmt.Errorf("env: energy budget %v negative", c.EnergyBudget)
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return fmt.Errorf("env: %w", err)
		}
		if c.Faults.CrashProb > 0 && c.RoundDeadline == 0 {
			return fmt.Errorf("env: device crashes require a round deadline (partial aggregation)")
		}
	}
	return nil
}

// Opts materializes the fault-tolerance iteration options for one episode
// of an n-device system: a fresh fault schedule from faultSeed when Faults
// is configured, plus the deadline and backoff knobs. With no faults and no
// deadline it returns the zero options (the fault-free engine).
func (c Config) Opts(n int, faultSeed int64) (fl.IterOptions, error) {
	opts := fl.IterOptions{Deadline: c.RoundDeadline, RetryBackoffSec: c.RetryBackoffSec}
	if c.Faults != nil && c.Faults.Enabled() {
		sched, err := fault.NewSchedule(*c.Faults, n, faultSeed)
		if err != nil {
			return fl.IterOptions{}, fmt.Errorf("env: %w", err)
		}
		opts.Faults = sched
	}
	return opts, nil
}

// Env is the episodic RL view of a federated-learning system.
type Env struct {
	Cfg Config
	Sys *fl.System

	ses  *fl.Session
	step int
	rng  *rand.Rand

	// Scratch buffers behind the zero-allocation StepInto path; the
	// results they back are valid until the next StepInto or Reset.
	stateBuf tensor.Vector
	histBuf  []float64
	freqBuf  []float64
}

// New builds an environment; Reset must be called before Step.
func New(sys *fl.System, cfg Config, rng *rand.Rand) (*Env, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("env: nil rng")
	}
	return &Env{Cfg: cfg, Sys: sys, rng: rng}, nil
}

// StateDim returns N·(H+1).
func (e *Env) StateDim() int { return e.Sys.N() * (e.Cfg.History + 1) }

// ActionDim returns N (one frequency per device).
func (e *Env) ActionDim() int { return e.Sys.N() }

// Reset starts a new episode at a uniformly random wall-clock time
// (Algorithm 1 line 6) and returns the initial state s₁ built from the
// bandwidth history preceding it (lines 7–10).
func (e *Env) Reset() (tensor.Vector, error) {
	maxStart := e.Cfg.MaxStartTime
	if maxStart == 0 {
		for _, tr := range e.Sys.Traces {
			if d := tr.Duration(); maxStart == 0 || d < maxStart {
				maxStart = d
			}
		}
	}
	start := e.rng.Float64() * maxStart
	// The fault seed is drawn only when faults are configured, so the
	// fault-free RNG stream — and with it every existing training
	// trajectory — is untouched.
	var faultSeed int64
	if e.Cfg.Faults != nil && e.Cfg.Faults.Enabled() {
		faultSeed = e.rng.Int63()
	}
	return e.resetSession(start, faultSeed)
}

// ResetAt starts an episode at a fixed wall-clock time, for deterministic
// evaluation runs. When faults are configured the episode uses fault seed
// 0; ResetAtFaults chooses it explicitly.
func (e *Env) ResetAt(start float64) (tensor.Vector, error) {
	return e.ResetAtFaults(start, 0)
}

// ResetAtFaults starts an episode at a fixed wall-clock time with a fixed
// fault-schedule seed — fully deterministic faulty evaluation.
func (e *Env) ResetAtFaults(start float64, faultSeed int64) (tensor.Vector, error) {
	return e.resetSession(start, faultSeed)
}

func (e *Env) resetSession(start float64, faultSeed int64) (tensor.Vector, error) {
	ses, err := fl.NewSession(e.Sys, start)
	if err != nil {
		return nil, err
	}
	opts, err := e.Cfg.Opts(e.Sys.N(), faultSeed)
	if err != nil {
		return nil, err
	}
	ses.Opts = opts
	e.ses = ses
	e.step = 0
	return e.State(), nil
}

// State builds s_k from the traces at the current wall clock: each device
// contributes its H+1 most recent slot averages, normalized by BWScale.
// Devices that are crashed for the upcoming iteration are masked to zero —
// the server cannot observe a dead device's bandwidth, and the zero block
// tells the policy the device is gone.
func (e *Env) State() tensor.Vector {
	if e.ses == nil {
		panic("env: State before Reset")
	}
	s := BuildState(e.Sys, e.ses.Clock, e.Cfg)
	if sched := e.ses.Opts.Faults; sched != nil {
		MaskState(s, sched.Down(e.ses.K()), e.Cfg.History)
	}
	return s
}

// Down reports which devices are crashed for the upcoming iteration (nil
// when no faults are configured or before Reset).
func (e *Env) Down() []bool {
	if e.ses == nil || e.ses.Opts.Faults == nil {
		return nil
	}
	return e.ses.Opts.Faults.Down(e.ses.K())
}

// MaskState zeroes the H+1 bandwidth slots of every down device in a state
// vector built by BuildState, in place. The online DRL scheduler applies
// the same masking so reasoning states match training states under churn.
func MaskState(s tensor.Vector, down []bool, history int) {
	if down == nil {
		return
	}
	w := history + 1
	for i, d := range down {
		if !d {
			continue
		}
		for j := i * w; j < (i+1)*w; j++ {
			s[j] = 0
		}
	}
}

// BuildState constructs the paper's state s_k for an arbitrary system and
// wall-clock time: the concatenated, normalized H+1 bandwidth-slot histories
// of every device. Exposed so the online DRL scheduler can rebuild states
// exactly as they looked during training.
func BuildState(sys *fl.System, clock float64, cfg Config) tensor.Vector {
	s, _ := BuildStateInto(nil, nil, sys, clock, cfg)
	return s
}

// BuildStateInto is BuildState writing into caller-provided buffers: dst
// receives the state (resliced to N·(H+1) entries, reallocated only when
// its capacity is short) and scratch is reused for the per-device slot
// histories. Both are returned for reuse on the next call; with adequate
// buffers the call performs no allocation (DESIGN.md §10).
func BuildStateInto(dst tensor.Vector, scratch []float64, sys *fl.System, clock float64, cfg Config) (tensor.Vector, []float64) {
	n := sys.N() * (cfg.History + 1)
	if cap(dst) < n {
		dst = tensor.NewVector(n)
	} else {
		dst = dst[:n]
	}
	idx := 0
	for _, tr := range sys.Traces {
		scratch = tr.HistoryInto(scratch, clock, cfg.SlotSec, cfg.History)
		for _, b := range scratch {
			dst[idx] = b / cfg.BWScale
			idx++
		}
	}
	return dst, scratch
}

// FreqsFromAction maps a raw Gaussian action vector (one value per device,
// nominally in (−1, 1) but unbounded when sampled) to feasible frequencies:
// each component is clipped to [−1, 1] and scaled affinely onto
// [MinFreqFrac·δmax, δmax].
func (e *Env) FreqsFromAction(a tensor.Vector) ([]float64, error) {
	return MapAction(e.Sys, a, e.Cfg.MinFreqFrac)
}

// MapAction is the package-level form of FreqsFromAction (see there).
func MapAction(sys *fl.System, a tensor.Vector, minFreqFrac float64) ([]float64, error) {
	return MapActionInto(nil, sys, a, minFreqFrac)
}

// MapActionInto is MapAction writing the frequencies into a caller-provided
// buffer (reallocated only when its capacity is short).
func MapActionInto(dst []float64, sys *fl.System, a tensor.Vector, minFreqFrac float64) ([]float64, error) {
	if len(a) != sys.N() {
		return nil, fmt.Errorf("env: action dim %d, want %d", len(a), sys.N())
	}
	if minFreqFrac <= 0 || minFreqFrac >= 1 {
		return nil, fmt.Errorf("env: min frequency fraction %v outside (0,1)", minFreqFrac)
	}
	freqs := dst
	if cap(freqs) < len(a) {
		freqs = make([]float64, len(a))
	} else {
		freqs = freqs[:len(a)]
	}
	for i, d := range sys.Devices {
		x := a[i]
		if math.IsNaN(x) || math.IsInf(x, 0) {
			// A non-finite action component would silently map to a
			// non-finite frequency (NaN passes both clamp comparisons) and
			// poison the engine downstream; reject it here, where the device
			// index still identifies the offender.
			return nil, fmt.Errorf("env: non-finite action component %v for device %d", x, i)
		}
		if x < -1 {
			x = -1
		} else if x > 1 {
			x = 1
		}
		frac := minFreqFrac + (x+1)/2*(1-minFreqFrac)
		freqs[i] = frac * d.MaxFreqHz
	}
	return freqs, nil
}

// StepResult reports one environment transition.
type StepResult struct {
	// State is s_{k+1}.
	State tensor.Vector
	// Reward is r_k = −cost/RewardScale.
	Reward float64
	// Done marks the end of the episode.
	Done bool
	// Costs holds the per-constraint cost signals of the transition
	// (CostDeadline, CostEnergy), all zero unless the corresponding targets
	// are configured. A fixed-size array keeps the zero-alloc step path flat.
	Costs [NumCostSignals]float64
	// Iter holds the full simulator breakdown for metrics.
	Iter fl.IterationStats
}

// ConstraintCosts derives the per-constraint cost signals of one iteration:
// the normalized overshoot of the round duration past DeadlineTarget and of
// the total energy past EnergyBudget. Disabled targets (0) contribute 0, so
// unconstrained configurations see an all-zero vector.
func (c Config) ConstraintCosts(it fl.IterationStats) [NumCostSignals]float64 {
	var costs [NumCostSignals]float64
	if c.DeadlineTarget > 0 && it.Duration > c.DeadlineTarget {
		costs[CostDeadline] = (it.Duration - c.DeadlineTarget) / c.DeadlineTarget
	}
	if c.EnergyBudget > 0 {
		if e := it.TotalEnergy(); e > c.EnergyBudget {
			costs[CostEnergy] = (e - c.EnergyBudget) / c.EnergyBudget
		}
	}
	return costs
}

// Step applies the action, simulates one synchronous FL iteration, advances
// the wall clock, and returns the transition. The returned State is a fresh
// vector owned by the caller and the iteration is recorded in the session
// history; StepInto is the allocation-free alternative.
func (e *Env) Step(action tensor.Vector) (StepResult, error) {
	if e.ses == nil {
		return StepResult{}, fmt.Errorf("env: Step before Reset")
	}
	if e.step >= e.Cfg.EpisodeLen {
		return StepResult{}, fmt.Errorf("env: episode finished; call Reset")
	}
	freqs, err := MapActionInto(e.freqBuf, e.Sys, action, e.Cfg.MinFreqFrac)
	if err != nil {
		return StepResult{}, err
	}
	e.freqBuf = freqs
	it, err := e.ses.Step(freqs)
	if err != nil {
		return StepResult{}, err
	}
	e.step++
	return StepResult{
		State:  e.State(),
		Reward: fl.Reward(it) / e.Cfg.RewardScale,
		Done:   e.step >= e.Cfg.EpisodeLen,
		Costs:  e.Cfg.ConstraintCosts(it),
		Iter:   it,
	}, nil
}

// StepInto is Step on the zero-allocation hot path: the returned State and
// Iter.Devices alias per-environment scratch that the next StepInto (or
// Reset) overwrites, and the iteration is not recorded in the session
// history. Callers that retain the transition — like the trainer's replay
// buffer — must clone what they keep before the next call. In steady state
// (fault-free, after the first call warms the buffers) it allocates
// nothing.
func (e *Env) StepInto(action tensor.Vector) (StepResult, error) {
	if e.ses == nil {
		return StepResult{}, fmt.Errorf("env: Step before Reset")
	}
	if e.step >= e.Cfg.EpisodeLen {
		return StepResult{}, fmt.Errorf("env: episode finished; call Reset")
	}
	freqs, err := MapActionInto(e.freqBuf, e.Sys, action, e.Cfg.MinFreqFrac)
	if err != nil {
		return StepResult{}, err
	}
	e.freqBuf = freqs
	it, err := e.ses.StepInto(freqs)
	if err != nil {
		return StepResult{}, err
	}
	e.step++
	return StepResult{
		State:  e.stateInto(),
		Reward: fl.Reward(it) / e.Cfg.RewardScale,
		Done:   e.step >= e.Cfg.EpisodeLen,
		Costs:  e.Cfg.ConstraintCosts(it),
		Iter:   it,
	}, nil
}

// stateInto builds the current state into the environment's scratch buffer,
// applying the same fault masking as State.
func (e *Env) stateInto() tensor.Vector {
	s, scratch := BuildStateInto(e.stateBuf, e.histBuf, e.Sys, e.ses.Clock, e.Cfg)
	e.stateBuf, e.histBuf = s, scratch
	if sched := e.ses.Opts.Faults; sched != nil {
		MaskState(s, sched.Down(e.ses.K()), e.Cfg.History)
	}
	return s
}

// Clock returns the current wall-clock time t^k.
func (e *Env) Clock() float64 {
	if e.ses == nil {
		return 0
	}
	return e.ses.Clock
}

// Session exposes the underlying FL session (nil before Reset), which
// baselines use to read last-iteration bandwidths.
func (e *Env) Session() *fl.Session { return e.ses }
