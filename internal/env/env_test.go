package env

import (
	"math/rand"
	"testing"

	"repro/internal/device"
	"repro/internal/fl"
	"repro/internal/tensor"
	"repro/internal/testutil"
	"repro/internal/trace"
)

func testSystem() *fl.System {
	devs := device.MustNewFleet(3, device.FleetParams{}, 1)
	traces := []*trace.Trace{
		trace.MustNew("a", 1, rampSamples(300, 1e6, 5e6)),
		trace.MustNew("b", 1, rampSamples(300, 2e6, 4e6)),
		trace.MustNew("c", 1, rampSamples(300, 0.5e6, 3e6)),
	}
	return &fl.System{Devices: devs, Traces: traces, Tau: 1, ModelBytes: 25e6, Lambda: 1}
}

func rampSamples(n int, lo, hi float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return out
}

func newEnv(t *testing.T) *Env {
	t.Helper()
	e, err := New(testSystem(), DefaultConfig(), rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	muts := map[string]func(*Config){
		"slot":    func(c *Config) { c.SlotSec = 0 },
		"history": func(c *Config) { c.History = -1 },
		"bwscale": func(c *Config) { c.BWScale = 0 },
		"minfrac": func(c *Config) { c.MinFreqFrac = 0 },
		"maxfrac": func(c *Config) { c.MinFreqFrac = 1 },
		"episode": func(c *Config) { c.EpisodeLen = 0 },
		"reward":  func(c *Config) { c.RewardScale = 0 },
		"start":   func(c *Config) { c.MaxStartTime = -1 },
	}
	for name, mut := range muts {
		c := DefaultConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestNewValidation(t *testing.T) {
	sys := testSystem()
	if _, err := New(sys, DefaultConfig(), nil); err == nil {
		t.Fatal("nil rng accepted")
	}
	bad := DefaultConfig()
	bad.SlotSec = -1
	if _, err := New(sys, bad, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("bad config accepted")
	}
	sys.Tau = 0
	if _, err := New(sys, DefaultConfig(), rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("bad system accepted")
	}
}

func TestDims(t *testing.T) {
	e := newEnv(t)
	if e.StateDim() != 3*(5+1) {
		t.Fatalf("state dim %d", e.StateDim())
	}
	if e.ActionDim() != 3 {
		t.Fatalf("action dim %d", e.ActionDim())
	}
}

func TestResetBuildsState(t *testing.T) {
	e := newEnv(t)
	s, err := e.Reset()
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != e.StateDim() {
		t.Fatalf("state len %d", len(s))
	}
	if !s.AllFinite() {
		t.Fatal("non-finite state")
	}
	// Normalized bandwidths should be O(1) under the default scale.
	for i, x := range s {
		if x < 0 || x > 3 {
			t.Fatalf("state[%d] = %v not normalized", i, x)
		}
	}
}

func TestResetAtDeterministic(t *testing.T) {
	e := newEnv(t)
	s1, err := e.ResetAt(50)
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := e.ResetAt(50)
	if !tensor.Equal(s1, s2) {
		t.Fatal("ResetAt not deterministic")
	}
	if e.Clock() != 50 {
		t.Fatalf("clock %v", e.Clock())
	}
}

func TestStateMatchesTraceHistory(t *testing.T) {
	e := newEnv(t)
	if _, err := e.ResetAt(120); err != nil {
		t.Fatal(err)
	}
	s := e.State()
	// First device, most recent slot: trace.History at clock 120.
	want := e.Sys.Traces[0].History(120, e.Cfg.SlotSec, e.Cfg.History)
	for k, w := range want {
		if !testutil.Within(s[k], w/e.Cfg.BWScale, 1e-12) {
			t.Fatalf("state[%d] = %v want %v", k, s[k], w/e.Cfg.BWScale)
		}
	}
}

func TestFreqsFromActionMapping(t *testing.T) {
	e := newEnv(t)
	// a = +1 (and beyond) → δmax; a = −1 (and below) → MinFreqFrac·δmax.
	hi, err := e.FreqsFromAction(tensor.Vector{1, 2, 100})
	if err != nil {
		t.Fatal(err)
	}
	lo, _ := e.FreqsFromAction(tensor.Vector{-1, -2, -100})
	mid, _ := e.FreqsFromAction(tensor.Vector{0, 0, 0})
	for i, d := range e.Sys.Devices {
		if !testutil.Within(hi[i], d.MaxFreqHz, 1e-6) {
			t.Fatalf("a=+1 freq %v != δmax %v", hi[i], d.MaxFreqHz)
		}
		if !testutil.Within(lo[i], e.Cfg.MinFreqFrac*d.MaxFreqHz, 1e-6) {
			t.Fatalf("a=−1 freq %v != floor", lo[i])
		}
		wantMid := (e.Cfg.MinFreqFrac + (1-e.Cfg.MinFreqFrac)/2) * d.MaxFreqHz
		if !testutil.Within(mid[i], wantMid, 1e-6) {
			t.Fatalf("a=0 freq %v want %v", mid[i], wantMid)
		}
	}
	if _, err := e.FreqsFromAction(tensor.Vector{0}); err == nil {
		t.Fatal("wrong action dim accepted")
	}
}

func TestStepRewardNegatesCost(t *testing.T) {
	e := newEnv(t)
	if _, err := e.ResetAt(10); err != nil {
		t.Fatal(err)
	}
	res, err := e.Step(tensor.Vector{0.5, -0.5, 0})
	if err != nil {
		t.Fatal(err)
	}
	want := -res.Iter.Cost / e.Cfg.RewardScale
	if !testutil.Within(res.Reward, want, 1e-12) {
		t.Fatalf("reward %v want %v", res.Reward, want)
	}
	if res.Done {
		t.Fatal("done after one step of a 40-step episode")
	}
	if len(res.State) != e.StateDim() {
		t.Fatal("next state dim wrong")
	}
}

func TestEpisodeTermination(t *testing.T) {
	e := newEnv(t)
	e.Cfg.EpisodeLen = 3
	if _, err := e.ResetAt(0); err != nil {
		t.Fatal(err)
	}
	a := tensor.Vector{1, 1, 1}
	for k := 0; k < 3; k++ {
		res, err := e.Step(a)
		if err != nil {
			t.Fatal(err)
		}
		if (k == 2) != res.Done {
			t.Fatalf("done flag wrong at step %d", k)
		}
	}
	if _, err := e.Step(a); err == nil {
		t.Fatal("step past episode end accepted")
	}
	// Reset allows a fresh episode.
	if _, err := e.Reset(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Step(a); err != nil {
		t.Fatal(err)
	}
}

func TestStepBeforeResetFails(t *testing.T) {
	e := newEnv(t)
	if _, err := e.Step(tensor.Vector{0, 0, 0}); err == nil {
		t.Fatal("Step before Reset accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("State before Reset should panic")
		}
	}()
	e.State()
}

func TestClockAdvancesWithIterations(t *testing.T) {
	e := newEnv(t)
	if _, err := e.ResetAt(5); err != nil {
		t.Fatal(err)
	}
	res, err := e.Step(tensor.Vector{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !testutil.Within(e.Clock(), 5+res.Iter.Duration, 1e-9) {
		t.Fatalf("clock %v, want %v", e.Clock(), 5+res.Iter.Duration)
	}
	if e.Session() == nil || e.Session().K() != 1 {
		t.Fatal("session not tracking iterations")
	}
}

func TestRandomResetWithinTraceDuration(t *testing.T) {
	e := newEnv(t)
	for i := 0; i < 20; i++ {
		if _, err := e.Reset(); err != nil {
			t.Fatal(err)
		}
		if e.Clock() < 0 || e.Clock() > 300 {
			t.Fatalf("start time %v outside trace duration", e.Clock())
		}
	}
}

func TestLowerFrequencyLowersEnergy(t *testing.T) {
	// Driving the env with a lower action must never increase the energy
	// component of the iteration.
	e := newEnv(t)
	if _, err := e.ResetAt(0); err != nil {
		t.Fatal(err)
	}
	fast, err := e.Step(tensor.Vector{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.ResetAt(0); err != nil {
		t.Fatal(err)
	}
	slow, err := e.Step(tensor.Vector{-0.5, -0.5, -0.5})
	if err != nil {
		t.Fatal(err)
	}
	if slow.Iter.ComputeEnergy >= fast.Iter.ComputeEnergy {
		t.Fatalf("slow energy %v ≥ fast %v", slow.Iter.ComputeEnergy, fast.Iter.ComputeEnergy)
	}
	if slow.Iter.Duration <= fast.Iter.Duration {
		t.Fatalf("slow duration %v ≤ fast %v", slow.Iter.Duration, fast.Iter.Duration)
	}
}
