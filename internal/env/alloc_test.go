//go:build !race

package env

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// TestAllocsStepInto pins the zero-allocation contract of the environment's
// hot path (DESIGN.md §10): after the first step warms the trace indexes
// and scratch buffers, a steady-state StepInto — action mapping, one full
// synchronous FL iteration over 50 devices, next-state construction — must
// not allocate. Guarded from -race builds, whose instrumentation allocates.
func TestAllocsStepInto(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EpisodeLen = 1 << 20 // never hit the episode boundary in this test
	e, err := New(benchSystem(50), cfg, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.ResetAt(0); err != nil {
		t.Fatal(err)
	}
	action := tensor.NewVector(e.ActionDim())
	for i := range action {
		action[i] = 0.25
	}
	// Warm indexes, slot tables, and all scratch buffers.
	for k := 0; k < 3; k++ {
		if _, err := e.StepInto(action); err != nil {
			t.Fatal(err)
		}
	}
	if n := testing.AllocsPerRun(50, func() {
		if _, err := e.StepInto(action); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("StepInto allocates %v per run in steady state", n)
	}
}
