package guard

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/env"
	"repro/internal/fl"
	"repro/internal/sched"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// testSystem builds a small constant-bandwidth system.
func testSystem(n int) *fl.System {
	devs := device.MustNewFleet(n, device.FleetParams{}, 11)
	traces := make([]*trace.Trace, n)
	for i := range traces {
		traces[i] = trace.MustNew("c", 1, []float64{2e6, 2.2e6, 1.8e6})
	}
	return &fl.System{Devices: devs, Traces: traces, Tau: 1, ModelBytes: 25e6, Lambda: 1}
}

// stub is a scriptable primary scheduler; the test mutates fn between
// decisions.
type stub struct {
	name string
	fn   func(ctx sched.Context) ([]float64, error)
}

func (s *stub) Name() string                                     { return s.name }
func (s *stub) Frequencies(ctx sched.Context) ([]float64, error) { return s.fn(ctx) }

func maxFreqs(sys *fl.System) []float64 {
	fs := make([]float64, sys.N())
	for i, d := range sys.Devices {
		fs[i] = d.MaxFreqHz
	}
	return fs
}

func baseConfig() Config {
	return Config{
		Env:          env.DefaultConfig(),
		OODThreshold: -1, // isolate the layer under test
		CostFactor:   -1,
	}
}

func decide(t *testing.T, g *Guard, sys *fl.System, k int) []float64 {
	t.Helper()
	fs, err := g.Frequencies(sched.Context{Sys: sys, Clock: float64(k) * 10, Iter: k})
	if err != nil {
		t.Fatalf("decision %d: %v", k, err)
	}
	for i, f := range fs {
		lo := 0.05 * sys.Devices[i].MaxFreqHz
		if math.IsNaN(f) || f < lo*(1-1e-12) || f > sys.Devices[i].MaxFreqHz*(1+1e-12) {
			t.Fatalf("decision %d: frequency %d = %v outside [%v, %v]", k, i, f, lo, sys.Devices[i].MaxFreqHz)
		}
	}
	return fs
}

func hasEvent(d Decision, ev string) bool {
	for _, e := range d.Events {
		if e == ev {
			return true
		}
	}
	return false
}

func TestSanitize(t *testing.T) {
	floor := []float64{1, 1, 1}
	cap := []float64{10, 10, 10}
	fs := []float64{0.5, 5, 20}
	clamps, err := Sanitize(fs, floor, cap)
	if err != nil || clamps != 2 {
		t.Fatalf("clamps = %d, err = %v", clamps, err)
	}
	if fs[0] != 1 || fs[1] != 5 || fs[2] != 10 {
		t.Fatalf("sanitized = %v", fs)
	}
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := Sanitize([]float64{5, bad, 5}, floor, cap); err == nil {
			t.Fatalf("Sanitize accepted %v", bad)
		}
	}
	if _, err := Sanitize([]float64{1}, floor, cap); err == nil {
		t.Fatal("Sanitize accepted length mismatch")
	}
}

// TestBreakerTripProbationRecovery walks the full state machine through
// the pipeline: consecutive violations trip the actor, the fallback
// serves during probation, a successful probe re-closes.
func TestBreakerTripProbationRecovery(t *testing.T) {
	sys := testSystem(3)
	bad := true
	primary := &stub{name: "stub", fn: func(ctx sched.Context) ([]float64, error) {
		if bad {
			return []float64{math.NaN(), 1, 1}, nil
		}
		return maxFreqs(sys), nil
	}}
	cfg := baseConfig()
	cfg.TripAfter = 3
	cfg.Probation = 4
	chain, err := ChainFromSpec(sys, "heuristic,maxfreq", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(primary, cfg, chain...)
	if err != nil {
		t.Fatal(err)
	}
	// d0..d2: violations; trip fires at d2 (cooldown 4). d3..d5: probation.
	// d6: probe (Probation decisions after the trip) — scripted to succeed.
	for k := 0; k <= 5; k++ {
		decide(t, g, sys, k)
	}
	bad = false
	decide(t, g, sys, 6)
	decide(t, g, sys, 7) // finalizes the probe's deferred success -> close

	recs := g.Audit().Records()
	for k := 0; k <= 2; k++ {
		if !hasEvent(recs[k], "stub:non-finite-action") {
			t.Fatalf("decision %d missing violation event: %v", k, recs[k].Events)
		}
		if recs[k].Layer != "heuristic" {
			t.Fatalf("decision %d served by %s, want heuristic", k, recs[k].Layer)
		}
	}
	if !hasEvent(recs[2], "stub:trip") {
		t.Fatalf("no trip at decision 2: %v", recs[2].Events)
	}
	for k := 3; k <= 5; k++ {
		if recs[k].Layer != "heuristic" {
			t.Fatalf("probation decision %d served by %s", k, recs[k].Layer)
		}
		if hasEvent(recs[k], "stub:probe") {
			t.Fatalf("probe during probation at decision %d", k)
		}
	}
	if recs[6].Layer != "stub" || !hasEvent(recs[6], "stub:probe") {
		t.Fatalf("decision 6 = %+v, want stub probe serve", recs[6])
	}
	if !hasEvent(recs[6], "stub:close") {
		t.Fatalf("probe success did not close the breaker: %v", recs[6].Events)
	}
	if recs[7].Layer != "stub" {
		t.Fatalf("decision 7 served by %s after recovery", recs[7].Layer)
	}
}

// TestBreakerEscalation checks a failed probe reopens with an escalated
// probation window.
func TestBreakerEscalation(t *testing.T) {
	sys := testSystem(2)
	primary := &stub{name: "stub", fn: func(ctx sched.Context) ([]float64, error) {
		return []float64{math.Inf(1), 1}, nil // always bad
	}}
	cfg := baseConfig()
	cfg.TripAfter = 2
	cfg.Probation = 3
	cfg.ProbationBackoff = 2
	chain, _ := ChainFromSpec(sys, "maxfreq", 0.05)
	g, err := New(primary, cfg, chain...)
	if err != nil {
		t.Fatal(err)
	}
	// d0,d1 violations -> trip at d1 (cooldown 3). Probe at d4 fails ->
	// reopen, probation 6. Next probe at d10.
	for k := 0; k <= 11; k++ {
		decide(t, g, sys, k)
	}
	recs := g.Audit().Records()
	if !hasEvent(recs[1], "stub:trip") {
		t.Fatalf("no trip at d1: %v", recs[1].Events)
	}
	if !hasEvent(recs[4], "stub:probe") || !hasEvent(recs[4], "stub:reopen") {
		t.Fatalf("d4 = %v, want failed probe + reopen", recs[4].Events)
	}
	for k := 5; k <= 9; k++ {
		if hasEvent(recs[k], "stub:probe") {
			t.Fatalf("probe at d%d inside escalated probation", k)
		}
	}
	if !hasEvent(recs[10], "stub:probe") {
		t.Fatalf("no probe at d10 after escalated probation: %v", recs[10].Events)
	}
}

// TestClampCountsAsViolation: an out-of-range but finite plan is served
// clamped, yet charged against the layer's breaker.
func TestClampCountsAsViolation(t *testing.T) {
	sys := testSystem(2)
	primary := &stub{name: "stub", fn: func(ctx sched.Context) ([]float64, error) {
		return []float64{sys.Devices[0].MaxFreqHz * 1.5, sys.Devices[1].MaxFreqHz}, nil
	}}
	cfg := baseConfig()
	cfg.TripAfter = 2
	chain, _ := ChainFromSpec(sys, "maxfreq", 0.05)
	g, err := New(primary, cfg, chain...)
	if err != nil {
		t.Fatal(err)
	}
	fs := decide(t, g, sys, 0)
	if fs[0] != sys.Devices[0].MaxFreqHz {
		t.Fatalf("clamp did not cap: %v", fs[0])
	}
	decide(t, g, sys, 1)
	recs := g.Audit().Records()
	if recs[0].Layer != "stub" || !hasEvent(recs[0], "stub:clamp=1") {
		t.Fatalf("d0 = %+v", recs[0])
	}
	if !hasEvent(recs[1], "stub:trip") {
		t.Fatalf("two clamp violations did not trip: %v", recs[1].Events)
	}
}

// TestPlanCostGate: a finite, in-range stall plan is rejected before it
// executes.
func TestPlanCostGate(t *testing.T) {
	sys := testSystem(2)
	floorPlan := make([]float64, sys.N())
	for i, d := range sys.Devices {
		floorPlan[i] = 0.05 * d.MaxFreqHz
	}
	primary := &stub{name: "stub", fn: func(ctx sched.Context) ([]float64, error) {
		return append([]float64(nil), floorPlan...), nil
	}}
	cfg := baseConfig()
	cfg.CostFactor = 1.5
	chain, _ := ChainFromSpec(sys, "maxfreq", 0.05)
	g, err := New(primary, cfg, chain...)
	if err != nil {
		t.Fatal(err)
	}
	decide(t, g, sys, 0)
	recs := g.Audit().Records()
	if !hasEvent(recs[0], "stub:plan-cost") {
		t.Fatalf("stall plan not rejected: %+v", recs[0])
	}
	if recs[0].Layer == "stub" {
		t.Fatal("stall plan was served")
	}
}

// TestCostRegression: serve-time-clean decisions whose realized cost
// regresses (via Observe) trip the breaker.
func TestCostRegression(t *testing.T) {
	sys := testSystem(2)
	primary := &stub{name: "stub", fn: func(ctx sched.Context) ([]float64, error) {
		return maxFreqs(sys), nil
	}}
	cfg := baseConfig()
	cfg.CostFactor = 2
	cfg.TripAfter = 3
	chain, _ := ChainFromSpec(sys, "maxfreq", 0.05)
	g, err := New(primary, cfg, chain...)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3; k++ {
		decide(t, g, sys, k)
		g.Observe(fl.IterationStats{Cost: 1e18}) // absurd realized cost
	}
	recs := g.Audit().Records()
	if !hasEvent(recs[0], "stub:cost-regress") {
		t.Fatalf("no cost regression recorded: %v", recs[0].Events)
	}
	if !hasEvent(recs[2], "stub:trip") {
		t.Fatalf("three regressions did not trip: %v", recs[2].Events)
	}
	if recs[0].Cost != 1e18 {
		t.Fatalf("observed cost not recorded: %v", recs[0].Cost)
	}
}

// TestOODDetectorHysteresis unit-tests the gate's open/close thresholds.
func TestOODDetectorHysteresis(t *testing.T) {
	ref := &Reference{Mean: []float64{0, 0}, Std: []float64{1, 1}}
	o := newOODDetector(ref, 2, 0.5, 3)
	normal := tensor.Vector{0, 0}
	drifted := tensor.Vector{10, 10}
	for i := 0; i < 3; i++ {
		if ev := o.observe(o.score(normal)); ev != "" {
			t.Fatalf("event %q on normal input", ev)
		}
	}
	if ev := o.observe(o.score(drifted)); ev != "open" {
		t.Fatalf("drift did not open the gate (event %q)", ev)
	}
	// Window holds [10,0,0] then [0,10,0]...: avg 3.33 is back under the
	// open threshold but above hysteresis·threshold=1 — must stay open.
	if ev := o.observe(o.score(normal)); ev != "" {
		t.Fatalf("gate flapped at avg above hysteresis (event %q)", ev)
	}
	if ev := o.observe(o.score(normal)); ev != "" {
		t.Fatalf("gate closed early (event %q)", ev)
	}
	// Third normal flushes the spike out of the window: avg 0 < 1.
	if ev := o.observe(o.score(normal)); ev != "close" {
		t.Fatalf("gate did not close after recovery (event %q)", ev)
	}
	// Dimension mismatch is maximal drift.
	if s := o.score(tensor.Vector{1}); !math.IsInf(s, 1) {
		t.Fatalf("dim mismatch score = %v, want +Inf", s)
	}
}

// TestOODGateBypassesActor runs the full pipeline with a state-corruption
// hook shifting the observed state far from the reference: the gate must
// open (bypassing, not tripping, the actor) and close again after the
// corruption window.
func TestOODGateBypassesActor(t *testing.T) {
	sys := testSystem(3)
	served := 0
	primary := &stub{name: "stub", fn: func(ctx sched.Context) ([]float64, error) {
		served++
		return maxFreqs(sys), nil
	}}
	cfg := baseConfig()
	cfg.OODThreshold = 5
	cfg.OODWindow = 2
	cfg.OODHysteresis = 0.5
	ref, err := ProbeReference(sys, cfg.Env, 64)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Ref = ref
	cfg.CorruptState = func(iter int, s tensor.Vector) {
		if iter >= 3 && iter < 8 {
			for i := range s {
				s[i] += 1e4 // enormous in BWScale units
			}
		}
	}
	chain, _ := ChainFromSpec(sys, "heuristic,maxfreq", 0.05)
	g, err := New(primary, cfg, chain...)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 14; k++ {
		decide(t, g, sys, k)
	}
	recs := g.Audit().Records()
	opened, closed := -1, -1
	for k, r := range recs {
		if hasEvent(r, "ood:open") && opened < 0 {
			opened = k
		}
		if hasEvent(r, "ood:close") && closed < 0 {
			closed = k
		}
	}
	if opened < 3 || opened >= 8 {
		t.Fatalf("gate opened at %d, want within corruption window", opened)
	}
	if closed < 8 {
		t.Fatalf("gate closed at %d, want after corruption window", closed)
	}
	for k := opened; k < 8; k++ {
		if recs[k].Layer == "stub" && k > opened {
			t.Fatalf("actor served at %d while gate open", k)
		}
		if hasEvent(recs[k], "stub:trip") {
			t.Fatalf("gate bypass tripped the actor breaker at %d", k)
		}
	}
	if last := recs[len(recs)-1]; last.Layer != "stub" {
		t.Fatalf("actor not serving after gate closed: %+v", last)
	}
	if g.Audit().EventCounts()["stub:ood-bypass"] == 0 {
		t.Fatal("no ood-bypass events recorded")
	}
}

// TestWatchdog: a level exceeding the latency budget is skipped and its
// late answer discarded; a still-running call marks the level busy.
func TestWatchdog(t *testing.T) {
	sys := testSystem(2)
	release := make(chan struct{})
	primary := &stub{name: "slow", fn: func(ctx sched.Context) ([]float64, error) {
		<-release
		return maxFreqs(sys), nil
	}}
	cfg := baseConfig()
	cfg.LatencyBudget = 5 * time.Millisecond
	cfg.TripAfter = 10 // keep the breaker out of this test
	chain, _ := ChainFromSpec(sys, "maxfreq", 0.05)
	g, err := New(primary, cfg, chain...)
	if err != nil {
		t.Fatal(err)
	}
	decide(t, g, sys, 0) // times out
	decide(t, g, sys, 1) // still in flight: busy
	close(release)
	time.Sleep(50 * time.Millisecond) // let the abandoned call drain
	decide(t, g, sys, 2)              // answers within budget now

	recs := g.Audit().Records()
	if !hasEvent(recs[0], "slow:latency") || recs[0].Layer != "maxfreq" {
		t.Fatalf("d0 = %+v, want latency skip", recs[0])
	}
	if !hasEvent(recs[1], "slow:busy") || recs[1].Layer != "maxfreq" {
		t.Fatalf("d1 = %+v, want busy skip", recs[1])
	}
	if recs[2].Layer != "slow" {
		t.Fatalf("d2 served by %s, want slow after release", recs[2].Layer)
	}
}

// TestInvalidStateFallsBack: non-finite observed state bypasses the actor
// with a breaker violation, and the fallback still serves a valid plan.
func TestInvalidStateFallsBack(t *testing.T) {
	sys := testSystem(2)
	primary := &stub{name: "stub", fn: func(ctx sched.Context) ([]float64, error) {
		t.Fatal("actor consulted on non-finite state")
		return nil, nil
	}}
	cfg := baseConfig()
	cfg.CorruptState = func(iter int, s tensor.Vector) { s[0] = math.NaN() }
	chain, _ := ChainFromSpec(sys, "heuristic,maxfreq", 0.05)
	g, err := New(primary, cfg, chain...)
	if err != nil {
		t.Fatal(err)
	}
	decide(t, g, sys, 0)
	recs := g.Audit().Records()
	if !hasEvent(recs[0], "input:non-finite-state") || recs[0].Layer != "heuristic" {
		t.Fatalf("d0 = %+v", recs[0])
	}
}

func TestChainFromSpec(t *testing.T) {
	sys := testSystem(2)
	chain, err := ChainFromSpec(sys, "heuristic", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 2 || chain[1].Name() != "maxfreq" {
		t.Fatalf("terminal maxfreq not appended: %d levels", len(chain))
	}
	if _, err := ChainFromSpec(sys, "oracle", 0.05); err == nil {
		t.Fatal("unknown fallback accepted")
	}
	chain, err = ChainFromSpec(sys, "", 0.05)
	if err != nil || len(chain) != 2 {
		t.Fatalf("default spec: %d levels, err %v", len(chain), err)
	}
}

func TestAuditLineCanonical(t *testing.T) {
	d := Decision{Iter: 3, Clock: 12.5, Layer: "drl", Score: 0.25, Cost: math.NaN(),
		Events: []string{"ood:open", "drl:ood-bypass"}}
	want := "k=3 layer=drl score=0.25 cost=- events=ood:open,drl:ood-bypass"
	if got := d.Line(); got != want {
		t.Fatalf("line = %q, want %q", got, want)
	}
	e := Decision{Iter: 0, Layer: "maxfreq", Score: math.NaN(), Cost: 42}
	if got := e.Line(); got != "k=0 layer=maxfreq score=- cost=42 events=-" {
		t.Fatalf("line = %q", got)
	}
}

func TestAuditCapKeepsCounters(t *testing.T) {
	a := newAudit(2)
	for i := 0; i < 5; i++ {
		a.add(Decision{Iter: i, Layer: "x"})
	}
	if a.Len() != 2 || a.Total() != 5 || a.Dropped() != 3 {
		t.Fatalf("len=%d total=%d dropped=%d", a.Len(), a.Total(), a.Dropped())
	}
	if a.ServedCounts()["x"] != 5 {
		t.Fatalf("served = %v", a.ServedCounts())
	}
	if recs := a.Records(); recs[0].Iter != 3 || recs[1].Iter != 4 {
		t.Fatalf("retained records = %+v", recs)
	}
	var sb strings.Builder
	if err := a.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "guard audit") {
		t.Fatalf("render missing summary: %q", sb.String())
	}
}

func TestConfigValidation(t *testing.T) {
	sys := testSystem(2)
	primary := &stub{name: "stub", fn: func(ctx sched.Context) ([]float64, error) { return maxFreqs(sys), nil }}
	chain, _ := ChainFromSpec(sys, "", 0.05)
	// OOD enabled without a reference must be rejected loudly.
	cfg := Config{Env: env.DefaultConfig()}
	if _, err := New(primary, cfg, chain...); err == nil {
		t.Fatal("OOD without reference accepted")
	}
	cfg = baseConfig()
	cfg.CostFactor = 0.5
	if _, err := New(primary, cfg, chain...); err == nil {
		t.Fatal("cost factor below 1 accepted")
	}
	if _, err := New(primary, baseConfig()); err == nil {
		t.Fatal("empty fallback chain accepted")
	}
	if _, err := New(nil, baseConfig(), chain...); err == nil {
		t.Fatal("nil primary accepted")
	}
}
