package guard

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/report"
)

// Decision is the structured audit record of one guarded scheduling
// decision: which layer ultimately served it, the OOD drift score the
// input layer measured, the realized iteration cost once observed, and
// every guard event that fired along the way (violations, breaker
// transitions, gate open/close), in firing order.
type Decision struct {
	// Iter is the 0-based decision index within the guard's lifetime.
	Iter int
	// Clock is the wall-clock time t^k the decision was made at.
	Clock float64
	// Layer names the scheduler that served the decision ("drl",
	// "heuristic", "maxfreq", …).
	Layer string
	// Score is the windowed OOD drift score (NaN when the OOD layer is
	// disabled or the state was not scorable).
	Score float64
	// Cost is the realized iteration cost fed back through Observe (NaN
	// until observed).
	Cost float64
	// Events lists guard events in firing order, e.g. "drl:trip",
	// "ood:open", "drl:clamp=2". Empty for a clean actor-served decision.
	Events []string
	// Plan is the served frequency plan, recorded only when
	// Config.RecordPlans is set (the online continual-learning loop replays
	// it as the action of the logged transition). Nil keeps the legacy
	// 5-field line format.
	Plan []float64
}

// Line renders the decision as one canonical audit line. The format is
// deterministic byte-for-byte: floats use strconv's shortest round-trip
// form, NaN renders as "-", and events keep firing order. Golden tests
// compare these lines across worker counts. A recorded plan switches to
// the extended 7-field form (adding the decision clock and the plan) that
// the online replay loop parses back; decisions without one keep the
// historical 5-field encoding byte-for-byte.
func (d *Decision) Line() string {
	ev := "-"
	if len(d.Events) > 0 {
		ev = strings.Join(d.Events, ",")
	}
	if len(d.Plan) == 0 {
		return fmt.Sprintf("k=%d layer=%s score=%s cost=%s events=%s",
			d.Iter, d.Layer, auditFloat(d.Score), auditFloat(d.Cost), ev)
	}
	plan := make([]string, len(d.Plan))
	for i, v := range d.Plan {
		plan[i] = auditFloat(v)
	}
	return fmt.Sprintf("k=%d t=%s layer=%s score=%s cost=%s events=%s plan=%s",
		d.Iter, auditFloat(d.Clock), d.Layer, auditFloat(d.Score), auditFloat(d.Cost),
		ev, strings.Join(plan, ","))
}

// auditFloat formats a float for audit lines: shortest exact form, with
// NaN (the "not available" marker) as "-".
func auditFloat(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Audit accumulates the guard's decision records plus exact running
// counters. Records are capped (oldest dropped first) so a long-lived
// guard cannot grow without bound; the counters always cover the full
// lifetime regardless of the cap.
type Audit struct {
	cap     int
	recs    []Decision
	dropped int

	total  int            // decisions made
	served map[string]int // decisions served, by layer name
	events map[string]int // events fired, by event string
}

func newAudit(capacity int) *Audit {
	return &Audit{
		cap:    capacity,
		served: make(map[string]int),
		events: make(map[string]int),
	}
}

// add appends a finished decision record, evicting the oldest when the
// cap is reached.
func (a *Audit) add(d Decision) {
	a.total++
	a.served[d.Layer]++
	if a.cap > 0 && len(a.recs) >= a.cap {
		n := copy(a.recs, a.recs[1:])
		a.recs = a.recs[:n]
		a.dropped++
	}
	a.recs = append(a.recs, d)
}

// last returns the most recent record for post-serve mutation (Observe
// fills in the realized cost), or nil before the first decision.
func (a *Audit) last() *Decision {
	if len(a.recs) == 0 {
		return nil
	}
	return &a.recs[len(a.recs)-1]
}

// note records an event both on the decision and in the lifetime counter.
func (a *Audit) note(d *Decision, ev string) {
	d.Events = append(d.Events, ev)
	a.events[ev]++
}

// Len returns the number of retained decision records.
func (a *Audit) Len() int { return len(a.recs) }

// Total returns the lifetime decision count (including evicted records).
func (a *Audit) Total() int { return a.total }

// Dropped returns how many old records the cap evicted.
func (a *Audit) Dropped() int { return a.dropped }

// Last returns a copy of the most recent decision record, or false before
// the first decision. Callers that serialize access to the guard (one
// decision stream per guard) use it to observe which layer served without
// copying the whole record set.
func (a *Audit) Last() (Decision, bool) {
	if len(a.recs) == 0 {
		return Decision{}, false
	}
	d := a.recs[len(a.recs)-1]
	d.Events = append([]string(nil), d.Events...)
	if d.Plan != nil {
		d.Plan = append([]float64(nil), d.Plan...)
	}
	return d, true
}

// Records returns a copy of the retained decision records in order.
func (a *Audit) Records() []Decision {
	out := make([]Decision, len(a.recs))
	copy(out, a.recs)
	for i := range out {
		out[i].Events = append([]string(nil), a.recs[i].Events...)
		if a.recs[i].Plan != nil {
			out[i].Plan = append([]float64(nil), a.recs[i].Plan...)
		}
	}
	return out
}

// Lines renders every retained record as canonical audit lines.
func (a *Audit) Lines() []string {
	out := make([]string, len(a.recs))
	for i := range a.recs {
		out[i] = a.recs[i].Line()
	}
	return out
}

// ServedCounts returns the lifetime per-layer serve counts.
func (a *Audit) ServedCounts() map[string]int {
	out := make(map[string]int, len(a.served))
	for k, v := range a.served {
		out[k] = v
	}
	return out
}

// EventCounts returns the lifetime per-event counts.
func (a *Audit) EventCounts() map[string]int {
	out := make(map[string]int, len(a.events))
	for k, v := range a.events {
		out[k] = v
	}
	return out
}

// TripReasons correlates breaker trips with their causes across the
// retained records (the capped window, not the full lifetime): every
// "<layer>:trip" event is attributed to the event noted immediately
// before it in the same decision — the pipeline always notes the
// violation (latency, error, plan-cost, clamp, cost-regress,
// non-finite input/action, …) right before folding it into the breaker.
// Parameterized causes are normalized by stripping everything from "="
// ("drl:clamp=2" → "drl:clamp"); a trip with no attributable cause
// counts under "unknown".
func (a *Audit) TripReasons() map[string]int {
	out := make(map[string]int)
	for i := range a.recs {
		evs := a.recs[i].Events
		for j, ev := range evs {
			if !strings.HasSuffix(ev, ":trip") {
				continue
			}
			cause := "unknown"
			if j > 0 && !breakerTransition(evs[j-1]) {
				cause = evs[j-1]
				if k := strings.IndexByte(cause, '='); k >= 0 {
					cause = cause[:k]
				}
			}
			out[cause]++
		}
	}
	return out
}

// breakerTransition reports whether an event is a state transition rather
// than a violation cause.
func breakerTransition(ev string) bool {
	return strings.HasSuffix(ev, ":trip") || strings.HasSuffix(ev, ":reopen") ||
		strings.HasSuffix(ev, ":close") || strings.HasSuffix(ev, ":open")
}

// TripSummary renders TripReasons as a report table (one row per cause,
// sorted), with the total trip count in the title context. Nil when no
// retained record holds a trip, so callers can skip the section.
func (a *Audit) TripSummary() *report.Table {
	reasons := a.TripReasons()
	if len(reasons) == 0 {
		return nil
	}
	total := 0
	for _, v := range reasons {
		total += v
	}
	t := report.NewTable("guard trips by cause", "cause", "trips", "share")
	keys := make([]string, 0, len(reasons))
	for k := range reasons {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		t.AddRowf(k, reasons[k], fmt.Sprintf("%.1f%%", 100*float64(reasons[k])/float64(total)))
	}
	return t
}

// Summary renders the lifetime counters as a report table: one row per
// serving layer, then one per event, in sorted order so the rendering is
// deterministic.
func (a *Audit) Summary() *report.Table {
	t := report.NewTable("guard audit", "kind", "name", "count", "share")
	layers := make([]string, 0, len(a.served))
	for k := range a.served {
		layers = append(layers, k)
	}
	sort.Strings(layers)
	for _, k := range layers {
		share := "-"
		if a.total > 0 {
			share = fmt.Sprintf("%.1f%%", 100*float64(a.served[k])/float64(a.total))
		}
		t.AddRowf("served", k, a.served[k], share)
	}
	events := make([]string, 0, len(a.events))
	for k := range a.events {
		events = append(events, k)
	}
	sort.Strings(events)
	for _, k := range events {
		t.AddRowf("event", k, a.events[k], "-")
	}
	return t
}

// Render writes the summary table followed by the retained audit lines.
func (a *Audit) Render(w io.Writer) error {
	if err := a.Summary().Render(w); err != nil {
		return err
	}
	for _, line := range a.Lines() {
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}
