package guard

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sched"
)

var errTestFailure = errors.New("scripted stub failure")

// decisionsEqual compares two decisions treating NaN as equal to NaN.
func decisionsEqual(a, b Decision) bool {
	feq := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) {
			return math.IsNaN(x) && math.IsNaN(y)
		}
		return x == y
	}
	if a.Iter != b.Iter || a.Layer != b.Layer ||
		!feq(a.Clock, b.Clock) || !feq(a.Score, b.Score) || !feq(a.Cost, b.Cost) {
		return false
	}
	if !reflect.DeepEqual(a.Events, b.Events) {
		return false
	}
	if len(a.Plan) != len(b.Plan) {
		return false
	}
	for i := range a.Plan {
		if !feq(a.Plan[i], b.Plan[i]) {
			return false
		}
	}
	return true
}

func TestParseLineRoundTrip(t *testing.T) {
	cases := []Decision{
		{Iter: 0, Clock: math.NaN(), Layer: "drl", Score: math.NaN(), Cost: math.NaN()},
		{Iter: 7, Clock: math.NaN(), Layer: "heuristic", Score: 1.25, Cost: 42.5,
			Events: []string{"drl:latency", "drl:trip"}},
		{Iter: 3, Clock: math.NaN(), Layer: "maxfreq", Score: -0.5, Cost: math.NaN(),
			Events: []string{"input:non-finite-state", "drl:clamp=2"}},
		{Iter: 12, Clock: 99.625, Layer: "drl", Score: 2.5, Cost: 17.0,
			Plan: []float64{1e9, 2.5e9, 0.75e9}},
		{Iter: 1, Clock: 0, Layer: "maxfreq", Score: math.NaN(), Cost: math.NaN(),
			Events: []string{"ood:open", "drl:ood-bypass"},
			Plan:   []float64{5e8, math.NaN()}},
	}
	for _, want := range cases {
		line := want.Line()
		got, err := ParseLine(line)
		if err != nil {
			t.Fatalf("ParseLine(%q): %v", line, err)
		}
		if !decisionsEqual(got, want) {
			t.Fatalf("ParseLine(%q) = %+v, want %+v", line, got, want)
		}
		if re := got.Line(); re != line {
			t.Fatalf("re-rendered line %q, want %q", re, line)
		}
	}
}

func TestParseLineRejects(t *testing.T) {
	bad := []string{
		"",
		"k=1 layer=drl score=- cost=-", // 4 fields
		"k=1 layer=drl score=- cost=- events=- extra=1",        // 6 fields
		"iter=1 layer=drl score=- cost=- events=-",             // wrong key
		"k=x layer=drl score=- cost=- events=-",                // bad int
		"k=1 layer=drl score=z cost=- events=-",                // bad float
		"k=1 layer=drl score=- cost=- events=",                 // empty events
		"k=1 layer=drl score=- cost=- events=a,,b",             // empty event
		"k=1 t=0 layer=drl score=- cost=- events=- plan=",      // empty plan
		"k=1 t=0 layer=drl score=- cost=- events=- plan=1,z",   // bad plan entry
		"k=1 t=0 score=- layer=drl cost=- events=- plan=1",     // field order
		"k=1 layer=drl score=- cost=- events=- plan=1 extra=2", // no t= in extended
	}
	for _, line := range bad {
		if _, err := ParseLine(line); err == nil {
			t.Errorf("ParseLine(%q) accepted, want error", line)
		}
	}
}

// TestGuardAuditLinesRoundTrip runs a real guarded session with plan
// recording on and checks every emitted audit line survives the
// parse→render round trip exactly.
func TestGuardAuditLinesRoundTrip(t *testing.T) {
	sys := testSystem(3)
	k := 0
	primary := &stub{name: "drl", fn: func(ctx sched.Context) ([]float64, error) {
		k++
		if k%4 == 0 {
			return nil, errTestFailure
		}
		fs := maxFreqs(sys)
		if k%3 == 0 {
			fs[0] *= 2 // clamped: charged as a violation, still served
		}
		return fs, nil
	}}
	cfg := baseConfig()
	cfg.RecordPlans = true
	g, err := New(primary, cfg, sched.MaxFreq{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		decide(t, g, sys, i)
	}
	lines := g.Audit().Lines()
	if len(lines) == 0 {
		t.Fatal("no audit lines")
	}
	plans := 0
	for _, line := range lines {
		d, err := ParseLine(line)
		if err != nil {
			t.Fatalf("ParseLine(%q): %v", line, err)
		}
		if re := d.Line(); re != line {
			t.Fatalf("round trip %q -> %q", line, re)
		}
		if len(d.Plan) > 0 {
			plans++
			if !strings.Contains(line, " t=") {
				t.Fatalf("plan-bearing line missing clock: %q", line)
			}
		}
	}
	if plans == 0 {
		t.Fatal("RecordPlans on but no line carried a plan")
	}
}

func TestTripReasons(t *testing.T) {
	a := newAudit(0)
	add := func(events ...string) {
		d := Decision{Iter: a.total, Layer: "maxfreq"}
		for _, ev := range events {
			a.note(&d, ev)
		}
		a.add(d)
	}
	add("drl:latency", "drl:trip")
	add("drl:latency", "drl:trip")
	add("drl:clamp=2", "drl:trip")
	add("drl:clamp=5", "drl:trip")
	add("heuristic:error", "heuristic:trip")
	add("ood:open", "drl:trip") // transition precedes: unattributable
	add("drl:trip")             // no preceding event at all
	add("drl:plan-cost")        // violation without trip: not counted
	got := a.TripReasons()
	want := map[string]int{
		"drl:latency":     2,
		"drl:clamp":       2,
		"heuristic:error": 1,
		"unknown":         2,
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TripReasons = %v, want %v", got, want)
	}
}

// FuzzParseLine drives the audit-line parser with arbitrary input.
// Invariants: it never panics; any line it accepts re-renders to a
// canonical form that parses to the same decision and is a fixed point of
// the parse→render cycle.
func FuzzParseLine(f *testing.F) {
	f.Add("k=0 layer=drl score=- cost=- events=-")
	f.Add("k=12 layer=maxfreq score=3.5 cost=1e+09 events=drl:latency,drl:trip")
	f.Add("k=3 t=42.5 layer=drl score=-0.25 cost=- events=- plan=1e+09,2e+09")
	f.Add("k=1 t=- layer=h score=- cost=17 events=ood:open plan=-")
	f.Add("not an audit line")
	f.Fuzz(func(t *testing.T, line string) {
		d, err := ParseLine(line)
		if err != nil {
			return
		}
		canon := d.Line()
		d2, err := ParseLine(canon)
		if err != nil {
			t.Fatalf("canonical line %q (from %q) does not re-parse: %v", canon, line, err)
		}
		if !decisionsEqual(d, d2) {
			t.Fatalf("canonical line %q decodes to %+v, want %+v", canon, d2, d)
		}
		if re := d2.Line(); re != canon {
			t.Fatalf("canonical form not a fixed point: %q -> %q", canon, re)
		}
	})
}
