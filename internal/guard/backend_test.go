package guard

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/rl"
	"repro/internal/sched"
)

// buildDRL wires a shared-policy DRL matching the guard's env layout.
func buildDRL(t *testing.T, n int, f32 bool) *sched.DRL {
	t.Helper()
	cfg := baseConfig()
	rng := rand.New(rand.NewSource(9))
	pol := rl.NewSharedGaussianPolicy(n, cfg.Env.History+1, []int{8}, 0.5, rng)
	drl, err := sched.NewDRL(pol, cfg.Env)
	if err != nil {
		t.Fatal(err)
	}
	drl.F32 = f32
	return drl
}

// TestAuditRecordsServingBackend pins the audit contract: the first
// primary-served decision names the arithmetic backend, for both the
// float64 default and the float32 fleet actor.
func TestAuditRecordsServingBackend(t *testing.T) {
	for _, tc := range []struct {
		f32  bool
		want string
	}{
		{false, "drl:backend=f64"},
		{true, "drl:backend=f32-"},
	} {
		sys := testSystem(3)
		chain, err := ChainFromSpec(sys, "maxfreq", 0.05)
		if err != nil {
			t.Fatal(err)
		}
		g, err := New(buildDRL(t, 3, tc.f32), baseConfig(), chain...)
		if err != nil {
			t.Fatal(err)
		}
		decide(t, g, sys, 0)
		decide(t, g, sys, 1)
		recs := g.Audit().Records()
		found := 0
		for _, r := range recs {
			for _, e := range r.Events {
				if strings.HasPrefix(e, tc.want) {
					found++
				}
			}
		}
		if found != 1 {
			t.Fatalf("f32=%v: want exactly one %q* audit event, found %d in %+v", tc.f32, tc.want, found, recs)
		}
	}
}
