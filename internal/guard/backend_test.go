package guard

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/rl"
	"repro/internal/sched"
)

// buildDRL wires a shared-policy DRL matching the guard's env layout.
func buildDRL(t *testing.T, n int, f32 bool) *sched.DRL {
	t.Helper()
	cfg := baseConfig()
	rng := rand.New(rand.NewSource(9))
	pol := rl.NewSharedGaussianPolicy(n, cfg.Env.History+1, []int{8}, 0.5, rng)
	drl, err := sched.NewDRL(pol, cfg.Env)
	if err != nil {
		t.Fatal(err)
	}
	drl.F32 = f32
	return drl
}

// TestAuditRecordsServingBackend pins the audit contract: the first
// primary-served decision names the arithmetic backend, for both the
// float64 default and the float32 fleet actor.
func TestAuditRecordsServingBackend(t *testing.T) {
	for _, tc := range []struct {
		f32  bool
		want string
	}{
		{false, "drl:backend=f64"},
		{true, "drl:backend=f32-"},
	} {
		sys := testSystem(3)
		chain, err := ChainFromSpec(sys, "maxfreq", 0.05)
		if err != nil {
			t.Fatal(err)
		}
		g, err := New(buildDRL(t, 3, tc.f32), baseConfig(), chain...)
		if err != nil {
			t.Fatal(err)
		}
		decide(t, g, sys, 0)
		decide(t, g, sys, 1)
		recs := g.Audit().Records()
		found := 0
		for _, r := range recs {
			for _, e := range r.Events {
				if strings.HasPrefix(e, tc.want) {
					found++
				}
			}
		}
		if found != 1 {
			t.Fatalf("f32=%v: want exactly one %q* audit event, found %d in %+v", tc.f32, tc.want, found, recs)
		}
	}
}

// brokenF32Policy embeds a working policy but is a distinct concrete type,
// so rl.NewFleetActor rejects it and the DRL's f32 request degrades to the
// float64 path with a sticky error.
type brokenF32Policy struct{ rl.Policy }

// TestAuditSurfacesF32Fallback pins satellite coverage for the sticky-error
// fallback: a requested-but-unavailable f32 backend produces exactly one
// "drl:f32-fallback" audit event (alongside the backend=f64 event), and the
// DRL's fallback counter advances — the degradation is operator-visible.
func TestAuditSurfacesF32Fallback(t *testing.T) {
	cfg := baseConfig()
	rng := rand.New(rand.NewSource(9))
	pol := rl.NewSharedGaussianPolicy(3, cfg.Env.History+1, []int{8}, 0.5, rng)
	drl, err := sched.NewDRL(brokenF32Policy{pol}, cfg.Env)
	if err != nil {
		t.Fatal(err)
	}
	drl.F32 = true
	sys := testSystem(3)
	chain, err := ChainFromSpec(sys, "maxfreq", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(drl, cfg, chain...)
	if err != nil {
		t.Fatal(err)
	}
	decide(t, g, sys, 0)
	decide(t, g, sys, 1)
	counts := g.Audit().EventCounts()
	if counts["drl:f32-fallback"] != 1 {
		t.Fatalf("want exactly one drl:f32-fallback event, got %d (%v)", counts["drl:f32-fallback"], counts)
	}
	if counts["drl:backend=f64"] != 1 {
		t.Fatalf("degraded backend must still be named f64, got %v", counts)
	}
	if drl.F32Fallbacks() != 2 {
		t.Fatalf("want 2 counted fallback serves, got %d", drl.F32Fallbacks())
	}
	if drl.F32Err() == nil {
		t.Fatal("sticky construction error must be reported")
	}
}
