package guard

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ParseLine decodes one canonical audit line back into a Decision — the
// inverse of Decision.Line. Both encodings are accepted: the legacy
// 5-field form
//
//	k=<iter> layer=<name> score=<f> cost=<f> events=<e1,e2,…|->
//
// and the extended 7-field form written when plans are recorded
// (Config.RecordPlans)
//
//	k=<iter> t=<clock> layer=<name> score=<f> cost=<f> events=<…> plan=<f1,f2,…>
//
// Floats follow the audit convention: "-" means not available and decodes
// to NaN. A legacy line carries no clock, so Clock decodes to NaN there.
// For every line emitted by Line, ParseLine(line).Line() reproduces the
// input byte-for-byte; the fuzz target pins that round trip.
func ParseLine(line string) (Decision, error) {
	fields := strings.Split(line, " ")
	var d Decision
	extended := len(fields) == 7
	switch {
	case len(fields) == 5:
		d.Clock = math.NaN()
	case extended:
	default:
		return Decision{}, fmt.Errorf("guard: audit line has %d fields, want 5 or 7", len(fields))
	}
	next := func(key string) (string, error) {
		v, ok := strings.CutPrefix(fields[0], key+"=")
		if !ok {
			return "", fmt.Errorf("guard: audit field %q: want %s=", fields[0], key)
		}
		fields = fields[1:]
		return v, nil
	}
	ks, err := next("k")
	if err != nil {
		return Decision{}, err
	}
	if d.Iter, err = strconv.Atoi(ks); err != nil {
		return Decision{}, fmt.Errorf("guard: audit iter %q: %w", ks, err)
	}
	if extended {
		if d.Clock, err = parseField(next, "t"); err != nil {
			return Decision{}, err
		}
	}
	if d.Layer, err = next("layer"); err != nil {
		return Decision{}, err
	}
	if d.Score, err = parseField(next, "score"); err != nil {
		return Decision{}, err
	}
	if d.Cost, err = parseField(next, "cost"); err != nil {
		return Decision{}, err
	}
	evs, err := next("events")
	if err != nil {
		return Decision{}, err
	}
	if evs == "" {
		return Decision{}, fmt.Errorf("guard: audit line has empty events field")
	}
	if evs != "-" {
		d.Events = strings.Split(evs, ",")
		for _, ev := range d.Events {
			if ev == "" {
				return Decision{}, fmt.Errorf("guard: audit events %q hold an empty event", evs)
			}
		}
	}
	if extended {
		ps, err := next("plan")
		if err != nil {
			return Decision{}, err
		}
		if ps == "" {
			return Decision{}, fmt.Errorf("guard: audit line has empty plan field")
		}
		parts := strings.Split(ps, ",")
		d.Plan = make([]float64, len(parts))
		for i, p := range parts {
			if d.Plan[i], err = parseAuditFloat(p); err != nil {
				return Decision{}, fmt.Errorf("guard: audit plan entry %d: %w", i, err)
			}
		}
	}
	return d, nil
}

// parseField cuts the next key=value field and decodes its audit float.
func parseField(next func(string) (string, error), key string) (float64, error) {
	s, err := next(key)
	if err != nil {
		return 0, err
	}
	v, err := parseAuditFloat(s)
	if err != nil {
		return 0, fmt.Errorf("guard: audit %s %q: %w", key, s, err)
	}
	return v, nil
}

// parseAuditFloat is the inverse of auditFloat: "-" decodes to NaN.
func parseAuditFloat(s string) (float64, error) {
	if s == "-" {
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// ParseLines decodes a whole audit log (one line per record, blank lines
// skipped), as persisted by Audit.Render or the server's audit export.
// Lines that are not audit records (the summary table Render prepends)
// are skipped rather than rejected, so a rendered log replays directly.
func ParseLines(text string) []Decision {
	var out []Decision
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "k=") {
			continue
		}
		d, err := ParseLine(line)
		if err != nil {
			continue
		}
		out = append(out, d)
	}
	return out
}
