// Package guard implements the layered online safety pipeline that wraps
// the trained actor during Algorithm 1's online phase (DESIGN.md §11).
// The offline-trained policy is only trustworthy on inputs resembling its
// training distribution; deployment sees live, stochastic bandwidth that
// can drift, spike, flatline, arrive in the wrong unit, or — after a bad
// checkpoint — meet a poisoned actor. The guard makes the serving loop
// safe under all of those:
//
//  1. Input validation + OOD drift detection: live states are checked for
//     finiteness and scored against the training normalizer's frozen
//     statistics (mean capped |z| per feature, windowed with hysteresis).
//     A drifted distribution bypasses the actor without tripping it.
//  2. Action sanitization: non-finite frequencies are rejected outright;
//     out-of-range ones are clamped into [δ_floor, δ_i^max] (a clamp
//     counts as a constraint violation against the emitting layer).
//  3. Plan-sanity pricing: before a plan is served, its planner-model
//     cost under the current bandwidth estimate is compared against the
//     max-frequency safe plan; a plan pricing worse than CostFactor× the
//     safe plan is rejected, so a poisoned actor's stall plans never
//     execute — not even as circuit-breaker probes.
//  4. Fallback chain with circuit breakers: actor → heuristic baseline →
//     max-frequency safe mode. A level trips open after TripAfter
//     consecutive violations (or realized-cost regressions, observed via
//     sched.Observer), waits out a probation window, then serves one
//     probe; failure reopens with exponentially escalated probation.
//  5. Latency watchdog: with a positive budget, a level that does not
//     answer in time is skipped (violation) and the chain falls through;
//     an answer that arrives late is discarded, never served.
//
// Every decision produces a deterministic audit record (audit.go)
// surfaced through internal/report.
package guard

import (
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/env"
	"repro/internal/fl"
	"repro/internal/sched"
	"repro/internal/tensor"
)

// Defaults applied by New to zero-valued Config fields.
const (
	DefaultOODThreshold  = 4.0
	DefaultOODWindow     = 5
	DefaultOODHysteresis = 0.5
	DefaultTripAfter     = 3
	DefaultProbation     = 8
	DefaultBackoff       = 2.0
	DefaultMaxProbation  = 64
	DefaultCostFactor    = 2.0
	DefaultAuditCap      = 4096
)

// Config parameterizes the guard. The zero value of every field except
// Env selects the documented default; negative OODThreshold, CostFactor
// or AuditCap disable the respective mechanism.
type Config struct {
	// Env is the environment layout the actor was trained in; the guard
	// rebuilds states with it. Required.
	Env env.Config
	// Ref is the training-distribution reference for the OOD layer.
	// Required when the OOD layer is enabled (OODThreshold ≥ 0); see
	// RefFromNormalizer and ProbeReference.
	Ref *Reference
	// OODThreshold is the windowed drift score above which the gate
	// opens. 0 selects DefaultOODThreshold; negative disables the layer.
	OODThreshold float64
	// OODWindow is the number of recent per-decision scores averaged
	// into the gate statistic (0 → DefaultOODWindow).
	OODWindow int
	// OODHysteresis re-closes the gate only below
	// OODHysteresis·OODThreshold, in (0,1] (0 → DefaultOODHysteresis).
	OODHysteresis float64
	// TripAfter is the consecutive-violation budget before a level's
	// breaker trips open (0 → DefaultTripAfter).
	TripAfter int
	// Probation is the number of decisions a tripped level sits out
	// before its first probe (0 → DefaultProbation).
	Probation int
	// ProbationBackoff multiplies the probation window after each failed
	// probe, ≥ 1 (0 → DefaultBackoff).
	ProbationBackoff float64
	// MaxProbation caps the escalated probation window
	// (0 → DefaultMaxProbation).
	MaxProbation int
	// CostFactor bounds how much worse than the max-frequency safe plan
	// a served plan may price (layer 3) or a realized iteration may cost
	// (cost-regression breaker input). 0 selects DefaultCostFactor;
	// negative disables both cost checks.
	CostFactor float64
	// LatencyBudget is the per-decision wall-clock budget a level gets
	// to answer before the watchdog skips it. 0 disables the watchdog
	// and keeps the pipeline fully synchronous (and deterministic).
	LatencyBudget time.Duration
	// AuditCap bounds retained audit records (counters are never capped;
	// 0 → DefaultAuditCap, negative → unlimited).
	AuditCap int
	// RecordPlans stores a copy of every served frequency plan on its
	// Decision, switching audit lines to the extended form that carries the
	// decision clock and the plan. The online continual-learning loop needs
	// those to replay logged decisions as transitions; plain serving leaves
	// it off and keeps the legacy byte-stable lines.
	RecordPlans bool
	// CorruptState, when set, mutates the freshly built state vector
	// before validation — the chaos harness's hook for simulating
	// corrupted telemetry upstream of the guard. Production leaves it
	// nil.
	CorruptState func(iter int, s tensor.Vector)
}

// withDefaults resolves zero-valued fields.
func (c Config) withDefaults() Config {
	if c.OODThreshold == 0 {
		c.OODThreshold = DefaultOODThreshold
	}
	if c.OODWindow == 0 {
		c.OODWindow = DefaultOODWindow
	}
	if c.OODHysteresis == 0 {
		c.OODHysteresis = DefaultOODHysteresis
	}
	if c.TripAfter == 0 {
		c.TripAfter = DefaultTripAfter
	}
	if c.Probation == 0 {
		c.Probation = DefaultProbation
	}
	if c.ProbationBackoff == 0 {
		c.ProbationBackoff = DefaultBackoff
	}
	if c.MaxProbation == 0 {
		c.MaxProbation = DefaultMaxProbation
	}
	if c.CostFactor == 0 {
		c.CostFactor = DefaultCostFactor
	}
	if c.AuditCap == 0 {
		c.AuditCap = DefaultAuditCap
	}
	return c
}

// validate checks a defaults-resolved config.
func (c Config) validate() error {
	if err := c.Env.Validate(); err != nil {
		return fmt.Errorf("guard: %w", err)
	}
	if c.OODThreshold > 0 {
		if c.Ref == nil {
			return fmt.Errorf("guard: OOD layer enabled (threshold %v) but no reference; set Config.Ref (RefFromNormalizer or ProbeReference) or disable with a negative threshold", c.OODThreshold)
		}
		if c.OODWindow < 1 {
			return fmt.Errorf("guard: OOD window %d must be positive", c.OODWindow)
		}
		if c.OODHysteresis <= 0 || c.OODHysteresis > 1 {
			return fmt.Errorf("guard: OOD hysteresis %v outside (0,1]", c.OODHysteresis)
		}
	}
	if c.TripAfter < 1 {
		return fmt.Errorf("guard: trip budget %d must be positive", c.TripAfter)
	}
	if c.Probation < 1 {
		return fmt.Errorf("guard: probation %d must be positive", c.Probation)
	}
	if c.ProbationBackoff < 1 {
		return fmt.Errorf("guard: probation backoff %v must be ≥ 1", c.ProbationBackoff)
	}
	if c.MaxProbation < c.Probation {
		return fmt.Errorf("guard: max probation %d below probation %d", c.MaxProbation, c.Probation)
	}
	if c.CostFactor > 0 && c.CostFactor < 1 {
		return fmt.Errorf("guard: cost factor %v below 1 would reject the safe plan itself", c.CostFactor)
	}
	return nil
}

// breaker is one level's trip/probation state machine:
//
//	closed --TripAfter consecutive violations--> open (cooldown=probation)
//	open   --cooldown elapsed--> probing (one decision)
//	probe ok --> closed (probation resets to base)
//	probe fails --> open again, probation ×= backoff (capped)
type breaker struct {
	tripAfter int
	base      int
	max       int
	backoff   float64

	open      bool
	consec    int // consecutive violations while closed
	cooldown  int // decisions left before the next probe
	probation int // current (possibly escalated) probation window
}

func newBreaker(c Config) *breaker {
	return &breaker{
		tripAfter: c.TripAfter,
		base:      c.Probation,
		max:       c.MaxProbation,
		backoff:   c.ProbationBackoff,
		probation: c.Probation,
	}
}

// tick advances the probation countdown by one decision.
func (b *breaker) tick() {
	if b.open && b.cooldown > 0 {
		b.cooldown--
	}
}

// available reports whether the level may serve this decision (closed, or
// open with an elapsed cooldown — a probe).
func (b *breaker) available() bool { return !b.open || b.cooldown == 0 }

// probing reports whether the next serve attempt is a probe.
func (b *breaker) probing() bool { return b.open && b.cooldown == 0 }

// record folds one serve outcome in and returns the transition event
// ("trip", "reopen", "close") or "".
func (b *breaker) record(ok bool) string {
	if ok {
		b.consec = 0
		if b.open {
			b.open = false
			b.probation = b.base
			return "close"
		}
		return ""
	}
	if b.open { // failed probe: escalate
		next := int(float64(b.probation) * b.backoff)
		if next <= b.probation {
			next = b.probation + 1
		}
		if next > b.max {
			next = b.max
		}
		b.probation = next
		b.cooldown = next
		return "reopen"
	}
	b.consec++
	if b.consec >= b.tripAfter {
		b.consec = 0
		b.open = true
		b.cooldown = b.probation
		return "trip"
	}
	return ""
}

// stateActor is the actor entry point that accepts a prebuilt state, so
// the policy acts on exactly the vector the OOD layer inspected.
type stateActor interface {
	FrequenciesFromState(ctx sched.Context, state tensor.Vector) ([]float64, error)
}

// level is one link of the fallback chain.
type level struct {
	name    string
	s       sched.Scheduler
	br      *breaker // nil for the terminal safe mode
	primary bool
	busy    atomic.Bool // in-flight watchdog call (LatencyBudget > 0 only)
}

// Guard wraps an online actor in the layered safety pipeline. It is a
// sched.Scheduler (serving guarded frequencies) and a sched.Observer
// (closing the cost-regression loop through realized iteration stats).
// A Guard carries per-run state (breakers, OOD window, audit) and must
// not be shared across concurrent runs.
type Guard struct {
	cfg   Config
	chain []*level
	ood   *oodDetector
	aud   *Audit

	iter int

	// serving-loop scratch
	stateBuf tensor.Vector
	histBuf  []float64
	bwBuf    []float64
	maxBuf   []float64
	floors   []float64
	caps     []float64
	bwMeans  []float64

	// pending is the level whose serve outcome awaits Observe (nil when
	// the terminal level served or the outcome was already recorded).
	pending         *level
	pendingRecorded bool
	safeRef         float64 // planned safe cost backing the pending decision

	// backendNoted arms the one-time audit event naming the primary's
	// serving backend (f64 vs f32 kernels), so every audit log states which
	// arithmetic produced its decisions.
	backendNoted bool
}

// backender is implemented by schedulers that can name their serving
// backend (sched.DRL reports "f64" or "f32-<kernel>").
type backender interface {
	Backend() string
}

// f32Reporter is implemented by schedulers that can report a sticky
// serving-backend degradation (sched.DRL's f32→f64 fallback). The guard
// turns a non-nil error into a one-shot audit event so the degradation is
// operator-visible instead of silent.
type f32Reporter interface {
	F32Err() error
}

// New builds a guard around the primary actor with the given fallback
// chain. At least one fallback is required and the last one is the
// terminal safe mode: it has no breaker and must always produce a valid
// plan (sched.MaxFreq is the canonical choice; see ChainFromSpec).
func New(primary sched.Scheduler, cfg Config, fallbacks ...sched.Scheduler) (*Guard, error) {
	if primary == nil {
		return nil, fmt.Errorf("guard: nil primary scheduler")
	}
	if len(fallbacks) == 0 {
		return nil, fmt.Errorf("guard: need at least one fallback (terminal safe mode)")
	}
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	g := &Guard{cfg: cfg, safeRef: math.NaN()}
	g.chain = append(g.chain, &level{name: primary.Name(), s: primary, br: newBreaker(cfg), primary: true})
	for i, s := range fallbacks {
		if s == nil {
			return nil, fmt.Errorf("guard: nil fallback %d", i)
		}
		lv := &level{name: s.Name(), s: s}
		if i < len(fallbacks)-1 {
			lv.br = newBreaker(cfg)
		}
		g.chain = append(g.chain, lv)
	}
	if cfg.OODThreshold > 0 {
		g.ood = newOODDetector(cfg.Ref, cfg.OODThreshold, cfg.OODHysteresis, cfg.OODWindow)
	}
	cap := cfg.AuditCap
	if cap < 0 {
		cap = 0 // unlimited
	}
	g.aud = newAudit(cap)
	return g, nil
}

// ChainFromSpec builds a fallback chain from a comma-separated spec of
// "heuristic" (the paper's re-optimizing baseline, seeded from trace
// means) and "maxfreq". A terminal maxfreq stage is appended when the
// spec does not end in one, so the chain always bottoms out in a safe
// mode that cannot fail.
func ChainFromSpec(sys *fl.System, spec string, minFreqFrac float64) ([]sched.Scheduler, error) {
	if spec == "" {
		spec = "heuristic,maxfreq"
	}
	var out []sched.Scheduler
	for _, part := range strings.Split(spec, ",") {
		switch strings.TrimSpace(part) {
		case "heuristic":
			bw := make([]float64, sys.N())
			for i, tr := range sys.Traces {
				bw[i] = tr.Summary().Mean
				if bw[i] <= 0 {
					bw[i] = 1 // an all-outage trace: assume a trickle
				}
			}
			h, err := sched.NewHeuristic(bw, minFreqFrac)
			if err != nil {
				return nil, err
			}
			out = append(out, h)
		case "maxfreq":
			out = append(out, sched.MaxFreq{})
		default:
			return nil, fmt.Errorf("guard: unknown fallback %q (want heuristic or maxfreq)", strings.TrimSpace(part))
		}
	}
	if len(out) == 0 || out[len(out)-1].Name() != "maxfreq" {
		out = append(out, sched.MaxFreq{})
	}
	return out, nil
}

// Name implements sched.Scheduler.
func (g *Guard) Name() string { return g.chain[0].name + "+guard" }

// Audit exposes the decision-audit accumulator.
func (g *Guard) Audit() *Audit { return g.aud }

// Sanitize enforces the feasible action box in place: every frequency
// must be finite (error otherwise) and is clamped into
// [floor[i], cap[i]]. It returns the number of clamped entries. Exposed
// for the fuzz target; the pipeline calls it on every candidate plan.
func Sanitize(freqs, floor, cap []float64) (int, error) {
	if len(freqs) != len(floor) || len(freqs) != len(cap) {
		return 0, fmt.Errorf("guard: %d frequencies for %d devices", len(freqs), len(floor))
	}
	clamps := 0
	for i, f := range freqs {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return clamps, fmt.Errorf("guard: non-finite frequency %v for device %d", f, i)
		}
		if f < floor[i] {
			freqs[i] = floor[i]
			clamps++
		} else if f > cap[i] {
			freqs[i] = cap[i]
			clamps++
		}
	}
	return clamps, nil
}

// ensureBounds (re)builds the per-device action box and bandwidth fall-
// backs for the current system.
func (g *Guard) ensureBounds(sys *fl.System) {
	n := sys.N()
	if len(g.floors) == n {
		return
	}
	g.floors = make([]float64, n)
	g.caps = make([]float64, n)
	g.maxBuf = make([]float64, n)
	g.bwMeans = make([]float64, n)
	for i, d := range sys.Devices {
		g.floors[i] = g.cfg.Env.MinFreqFrac * d.MaxFreqHz
		g.caps[i] = d.MaxFreqHz
		g.maxBuf[i] = d.MaxFreqHz
		g.bwMeans[i] = sys.Traces[i].Summary().Mean
		if g.bwMeans[i] <= 0 {
			g.bwMeans[i] = 1
		}
	}
}

// assumedBW sanitizes the last observed bandwidths into a strictly
// positive finite estimate for plan pricing, falling back per device to
// the trace's long-run mean.
func (g *Guard) assumedBW(ctx sched.Context) []float64 {
	n := ctx.Sys.N()
	if cap(g.bwBuf) < n {
		g.bwBuf = make([]float64, n)
	}
	g.bwBuf = g.bwBuf[:n]
	for i := 0; i < n; i++ {
		v := 0.0
		if i < len(ctx.LastBW) {
			v = ctx.LastBW[i]
		}
		if !(v > 0) || math.IsInf(v, 0) {
			v = g.bwMeans[i]
		}
		g.bwBuf[i] = v
	}
	return g.bwBuf
}

// Frequencies implements sched.Scheduler: one guarded decision.
func (g *Guard) Frequencies(ctx sched.Context) ([]float64, error) {
	// An unobserved previous serve (no Observe arrived) counts as a
	// success so serve-time verdicts cannot be forgotten.
	g.finalizePending(true)
	g.ensureBounds(ctx.Sys)
	d := Decision{Iter: g.iter, Clock: ctx.Clock, Score: math.NaN(), Cost: math.NaN()}
	g.iter++
	for _, lv := range g.chain {
		if lv.br != nil {
			lv.br.tick()
		}
	}

	// Layer 1: rebuild the state the actor would act on, validate it,
	// score drift.
	state := g.buildState(ctx)
	stateOK := finiteVec(state)
	if !stateOK {
		g.aud.note(&d, "input:non-finite-state")
	}
	if g.ood != nil && stateOK {
		d.Score = g.ood.score(state)
		if ev := g.ood.observe(d.Score); ev != "" {
			g.aud.note(&d, "ood:"+ev)
		}
	}

	// Price the max-frequency safe plan once per decision; it anchors
	// both the plan-sanity gate and the realized-cost regression check.
	g.safeRef = math.NaN()
	var refBW []float64
	if g.cfg.CostFactor > 0 {
		refBW = g.assumedBW(ctx)
		if c, err := sched.PlanCost(ctx.Sys, refBW, g.maxBuf); err == nil {
			g.safeRef = c
		}
	}

	for li, lv := range g.chain {
		if li == len(g.chain)-1 {
			return g.serveTerminal(ctx, lv, &d)
		}
		if !lv.br.available() {
			continue
		}
		if lv.primary {
			if !stateOK {
				g.violation(&d, lv, "")
				continue
			}
			if g.ood != nil && g.ood.open {
				// The gate, unlike the breaker, is input hysteresis: the
				// actor is bypassed, not blamed.
				g.aud.note(&d, lv.name+":ood-bypass")
				continue
			}
			if !g.backendNoted {
				g.backendNoted = true
				if b, ok := lv.s.(backender); ok {
					g.aud.note(&d, lv.name+":backend="+b.Backend())
				}
				if fr, ok := lv.s.(f32Reporter); ok {
					if err := fr.F32Err(); err != nil {
						g.aud.note(&d, lv.name+":f32-fallback")
					}
				}
			}
		}
		if lv.br.probing() {
			g.aud.note(&d, lv.name+":probe")
		}
		fs, err, timedOut, busy := g.invoke(lv, ctx, state)
		switch {
		case busy:
			g.violation(&d, lv, lv.name+":busy")
			continue
		case timedOut:
			g.violation(&d, lv, lv.name+":latency")
			continue
		case err != nil:
			g.violation(&d, lv, lv.name+":error")
			continue
		}
		clamps, serr := Sanitize(fs, g.floors, g.caps)
		if serr != nil {
			g.violation(&d, lv, lv.name+":non-finite-action")
			continue
		}
		// Layer 3: price the (now feasible) plan before letting it run.
		if g.cfg.CostFactor > 0 && !math.IsNaN(g.safeRef) {
			if pc, perr := sched.PlanCost(ctx.Sys, refBW, fs); perr != nil || pc > g.cfg.CostFactor*g.safeRef {
				g.violation(&d, lv, lv.name+":plan-cost")
				continue
			}
		}
		if clamps > 0 {
			// Serve the clamped (feasible) plan but charge the layer with
			// the constraint violation its raw output committed.
			g.aud.note(&d, fmt.Sprintf("%s:clamp=%d", lv.name, clamps))
			g.pendingRecorded = true
			if ev := lv.br.record(false); ev != "" {
				g.aud.note(&d, lv.name+":"+ev)
			}
		} else {
			g.pendingRecorded = false
		}
		g.pending = lv
		d.Layer = lv.name
		if g.cfg.RecordPlans {
			d.Plan = append([]float64(nil), fs...)
		}
		g.aud.add(d)
		return fs, nil
	}
	// Unreachable: the terminal level always returns.
	return nil, fmt.Errorf("guard: empty chain")
}

// serveTerminal serves the terminal safe mode. Its plan is still
// sanitized — the guard's contract is that it never emits an invalid
// plan, no matter which layer produced it.
func (g *Guard) serveTerminal(ctx sched.Context, lv *level, d *Decision) ([]float64, error) {
	fs, err := lv.s.Frequencies(ctx)
	if err == nil {
		var clamps int
		clamps, err = Sanitize(fs, g.floors, g.caps)
		if clamps > 0 {
			g.aud.note(d, fmt.Sprintf("%s:clamp=%d", lv.name, clamps))
		}
	}
	if err != nil {
		d.Layer = lv.name
		g.aud.note(d, lv.name+":error")
		g.aud.add(*d)
		return nil, fmt.Errorf("guard: terminal safe mode failed: %w", err)
	}
	g.pending = nil
	d.Layer = lv.name
	if g.cfg.RecordPlans {
		d.Plan = append([]float64(nil), fs...)
	}
	g.aud.add(*d)
	return fs, nil
}

// violation charges a level with a failed serve attempt: the optional
// cause event, then the breaker outcome (possibly a trip/reopen event).
func (g *Guard) violation(d *Decision, lv *level, cause string) {
	if cause != "" {
		g.aud.note(d, cause)
	}
	if ev := lv.br.record(false); ev != "" {
		g.aud.note(d, lv.name+":"+ev)
	}
}

// invoke calls one level, through the watchdog when a latency budget is
// configured. busy means a previous over-budget call is still running in
// its goroutine and the level must be skipped to avoid racing its
// internal scratch.
func (g *Guard) invoke(lv *level, ctx sched.Context, state tensor.Vector) (fs []float64, err error, timedOut, busy bool) {
	call := func(s tensor.Vector) ([]float64, error) {
		if sa, ok := lv.s.(stateActor); ok && lv.primary {
			return sa.FrequenciesFromState(ctx, s)
		}
		return lv.s.Frequencies(ctx)
	}
	if g.cfg.LatencyBudget <= 0 {
		fs, err = call(state)
		return
	}
	if !lv.busy.CompareAndSwap(false, true) {
		busy = true
		return
	}
	// The goroutine may outlive this decision, so it gets its own copy of
	// the state buffer (the shared one is overwritten next decision).
	owned := append(tensor.Vector(nil), state...)
	type result struct {
		fs  []float64
		err error
	}
	ch := make(chan result, 1)
	go func() {
		f, e := call(owned)
		ch <- result{f, e}
		lv.busy.Store(false)
	}()
	timer := time.NewTimer(g.cfg.LatencyBudget)
	defer timer.Stop()
	select {
	case r := <-ch:
		fs, err = r.fs, r.err
	case <-timer.C:
		timedOut = true
	}
	return
}

// buildState rebuilds (and masks, and optionally chaos-corrupts) the
// actor's observation for this decision.
func (g *Guard) buildState(ctx sched.Context) tensor.Vector {
	g.stateBuf, g.histBuf = env.BuildStateInto(g.stateBuf, g.histBuf, ctx.Sys, ctx.Clock, g.cfg.Env)
	env.MaskState(g.stateBuf, ctx.Down, g.cfg.Env.History)
	if g.cfg.CorruptState != nil {
		g.cfg.CorruptState(g.iter-1, g.stateBuf)
	}
	return g.stateBuf
}

// Observe implements sched.Observer: the realized iteration closes the
// loop on the last served decision, feeding the cost-regression verdict
// into the serving level's breaker.
func (g *Guard) Observe(it fl.IterationStats) {
	if d := g.aud.last(); d != nil {
		d.Cost = it.Cost
	}
	ok := true
	if g.cfg.CostFactor > 0 && !math.IsNaN(g.safeRef) && it.Cost > g.cfg.CostFactor*g.safeRef {
		ok = false
		if g.pending != nil && !g.pendingRecorded {
			if d := g.aud.last(); d != nil {
				g.aud.note(d, g.pending.name+":cost-regress")
			}
		}
	}
	g.finalizePending(ok)
}

// finalizePending records the deferred serve outcome of the last decision
// into the serving level's breaker (at most once per decision).
func (g *Guard) finalizePending(ok bool) {
	lv := g.pending
	g.pending = nil
	if lv == nil || g.pendingRecorded {
		return
	}
	g.pendingRecorded = true
	if ev := lv.br.record(ok); ev != "" {
		if d := g.aud.last(); d != nil {
			g.aud.note(d, lv.name+":"+ev)
		}
	}
}

// finiteVec reports whether every component is finite.
func finiteVec(s tensor.Vector) bool {
	for _, x := range s {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}
