package guard

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzSanitize drives the action sanitizer with arbitrary bit patterns.
// Invariants: it never panics; it errors exactly when the input holds a
// non-finite frequency it reached before clamping stopped; on success
// every output lies in [floor[i], cap[i]] and the clamp count never
// exceeds the vector length.
func FuzzSanitize(f *testing.F) {
	f.Add([]byte{})
	f.Add(le(1e9, 2e9, 0.5e9))
	f.Add(le(math.NaN(), 1e9))
	f.Add(le(math.Inf(1), math.Inf(-1)))
	f.Add(le(-5, 1e300, 1e-300))
	f.Fuzz(func(t *testing.T, data []byte) {
		n := len(data) / 8
		if n > 64 {
			n = 64
		}
		freqs := make([]float64, n)
		hadNonFinite := false
		for i := 0; i < n; i++ {
			freqs[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
			if math.IsNaN(freqs[i]) || math.IsInf(freqs[i], 0) {
				hadNonFinite = true
			}
		}
		floor := make([]float64, n)
		cap := make([]float64, n)
		for i := range floor {
			floor[i] = 0.05 * 1e9 * float64(i+1)
			cap[i] = 1e9 * float64(i+1)
		}
		clamps, err := Sanitize(freqs, floor, cap)
		if err != nil {
			if !hadNonFinite {
				t.Fatalf("Sanitize errored on all-finite input: %v", err)
			}
			return
		}
		if hadNonFinite {
			t.Fatal("Sanitize accepted a non-finite frequency")
		}
		if clamps < 0 || clamps > n {
			t.Fatalf("clamp count %d outside [0,%d]", clamps, n)
		}
		for i, v := range freqs {
			if !(v >= floor[i] && v <= cap[i]) {
				t.Fatalf("frequency %d = %v outside [%v,%v]", i, v, floor[i], cap[i])
			}
		}
	})
}

func le(vals ...float64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(v))
	}
	return out
}
