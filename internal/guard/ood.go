package guard

import (
	"fmt"
	"math"

	"repro/internal/env"
	"repro/internal/fl"
	"repro/internal/rl"
	"repro/internal/tensor"
)

// Reference is the frozen per-dimension training distribution the OOD
// layer scores live states against: the mean and standard deviation of
// each state feature as the training normalizer saw them.
type Reference struct {
	Mean []float64
	Std  []float64
}

// Dim returns the reference dimensionality.
func (r *Reference) Dim() int { return len(r.Mean) }

// RefFromNormalizer freezes a trained observation normalizer's running
// statistics into an OOD reference via the stable Snapshot accessor — the
// natural source when the agent trained with observation normalization.
func RefFromNormalizer(n *rl.ObsNormalizer) (*Reference, error) {
	if n == nil || n.Dim() == 0 {
		return nil, fmt.Errorf("guard: nil or empty normalizer")
	}
	st := n.Snapshot()
	r := &Reference{Mean: st.Mean, Std: make([]float64, st.Dim())}
	for i := range r.Std {
		r.Std[i] = st.StdDev(i)
	}
	return r, nil
}

// ProbeReference builds an OOD reference for an agent that trained
// without observation normalization: it replays the training system's
// traces through env.BuildState at `samples` evenly spaced times across
// one replay cycle and folds the states into a fresh Welford accumulator.
// Deterministic: same system and sample count, same reference.
func ProbeReference(sys *fl.System, cfg env.Config, samples int) (*Reference, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if samples < 2 {
		return nil, fmt.Errorf("guard: probe needs at least 2 samples, got %d", samples)
	}
	dur := math.Inf(1)
	for _, tr := range sys.Traces {
		if d := tr.Duration(); d < dur {
			dur = d
		}
	}
	n := rl.NewObsNormalizer(sys.N()*(cfg.History+1), 0)
	var state tensor.Vector
	var scratch []float64
	for j := 0; j < samples; j++ {
		t := dur * float64(j) / float64(samples)
		state, scratch = env.BuildStateInto(state, scratch, sys, t, cfg)
		n.Update(state)
	}
	return RefFromNormalizer(n)
}

// zCap bounds a single feature's |z| contribution to the drift score, so
// one insane feature (a unit-scale error is 10^3 σ off) saturates rather
// than dwarfing the windowed average and masking when it recovers.
const zCap = 20.0

// oodDetector scores live states against a Reference and runs the
// open/close hysteresis gate: the gate opens when the windowed mean drift
// score exceeds the threshold and re-closes only once it falls below
// hysteresis·threshold, so a score oscillating around the threshold
// cannot flap the actor in and out of service.
type oodDetector struct {
	ref        *Reference
	threshold  float64
	hysteresis float64

	win  []float64 // ring buffer of recent per-decision scores
	pos  int
	n    int
	open bool
}

func newOODDetector(ref *Reference, threshold, hysteresis float64, window int) *oodDetector {
	return &oodDetector{
		ref:        ref,
		threshold:  threshold,
		hysteresis: hysteresis,
		win:        make([]float64, window),
	}
}

// score computes the mean capped |z| of the state against the reference.
// A state whose dimensionality does not match the reference is maximal
// drift by definition (the deployment does not match training).
func (o *oodDetector) score(s tensor.Vector) float64 {
	if len(s) != o.ref.Dim() {
		return math.Inf(1)
	}
	var sum float64
	for i, x := range s {
		z := math.Abs(x-o.ref.Mean[i]) / o.ref.Std[i]
		if z > zCap {
			z = zCap
		}
		sum += z
	}
	return sum / float64(len(s))
}

// observe folds one per-decision score into the window and advances the
// gate. It returns "open" or "close" on a transition, "" otherwise.
func (o *oodDetector) observe(score float64) string {
	o.win[o.pos] = score
	o.pos = (o.pos + 1) % len(o.win)
	if o.n < len(o.win) {
		o.n++
	}
	var sum float64
	for i := 0; i < o.n; i++ {
		sum += o.win[i]
	}
	avg := sum / float64(o.n)
	switch {
	case !o.open && avg > o.threshold:
		o.open = true
		return "open"
	case o.open && avg < o.hysteresis*o.threshold:
		o.open = false
		return "close"
	}
	return ""
}
