package chaos_test

import (
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/bandwidth"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/fl"
	"repro/internal/guard"
	"repro/internal/guard/chaos"
	"repro/internal/sched"
	"repro/internal/trace"
)

// fixture trains one small agent once and shares it (read-only; every
// chaos run clones the policy) across the suite's tests.
var fixture struct {
	once  sync.Once
	sys   *fl.System
	agent *core.Agent
	err   error
}

func testbed(t *testing.T) (*fl.System, *core.Agent) {
	t.Helper()
	fixture.once.Do(func() {
		devs, err := device.NewFleet(3, device.FleetParams{}, 7)
		if err != nil {
			fixture.err = err
			return
		}
		p := bandwidth.Walking4G()
		traces := make([]*trace.Trace, len(devs))
		for i := range traces {
			traces[i], err = p.Generate("w", 1600, 7+int64(i)*31)
			if err != nil {
				fixture.err = err
				return
			}
		}
		sys := &fl.System{Devices: devs, Traces: traces, Tau: 1, ModelBytes: 25e6, Lambda: 1}
		cfg := core.DefaultConfig()
		cfg.Hidden = []int{24, 24}
		cfg.Episodes = 30
		cfg.BufferSize = 128
		cfg.Seed = 7
		cfg.NormalizeObs = true // exercise the RefFromNormalizer OOD path
		tr, err := core.NewTrainer(sys, cfg)
		if err != nil {
			fixture.err = err
			return
		}
		if _, err := tr.Run(nil); err != nil {
			fixture.err = err
			return
		}
		fixture.sys = sys
		fixture.agent = tr.Agent()
	})
	if fixture.err != nil {
		t.Fatal(fixture.err)
	}
	return fixture.sys, fixture.agent
}

// conservativeOptions is the deployment profile whose contract includes
// the safe-mode cost bound: a tight plan gate (CostFactor 1 — served
// plans must price no worse than the max-frequency plan), a one-strike
// breaker, and a long probation so at most one probe lands per episode.
// Exploration is what risks losing to safe mode (a probe's communication
// can straddle an unforeseeable bandwidth collapse), so this profile
// spends almost none.
func conservativeOptions() chaos.Options {
	return chaos.Options{
		Iters: 40,
		Start: 65,
		Seed:  31,
		Guard: guard.Config{
			CostFactor: 1.0,
			TripAfter:  1,
			Probation:  20,
		},
	}
}

// exploreOptions is the exploratory profile: the default plan gate and a
// short probation reinstate a benched actor quickly, trading a small
// exploration margin for adaptivity. The trip/probation dynamics tests
// run under it.
func exploreOptions() chaos.Options {
	return chaos.Options{
		Iters: 40,
		Start: 120,
		Seed:  31,
		Guard: guard.Config{
			TripAfter: 3,
			Probation: 6,
		},
	}
}

// TestChaosSuite is the acceptance gate: under the conservative profile,
// across every mutation class, the guarded controller emits only in-range
// frequencies and its episode cost never exceeds the max-frequency safe
// mode's paired counterfactual.
func TestChaosSuite(t *testing.T) {
	sys, agent := testbed(t)
	classes := chaos.Classes()
	if len(classes) < 5 {
		t.Fatalf("only %d chaos classes, issue requires ≥5", len(classes))
	}
	opts := conservativeOptions()
	results, err := chaos.RunAll(sys, agent, classes, opts, 3)
	if err != nil {
		t.Fatal(err)
	}
	minFrac := agent.EnvCfg.MinFreqFrac
	for _, r := range results {
		t.Logf("%-10s guarded=%.1f safe=%.1f unguarded=%.1f trips=%d actor=%d/%d unguardedErr=%q",
			r.Class, r.GuardedCost, r.SafeCost, r.UnguardedCost, r.Trips, r.ActorServed, r.Decisions, r.UnguardedErr)
		if r.FreqViolations > 0 {
			t.Errorf("class %s: %d guarded frequencies outside the action box", r.Class, r.FreqViolations)
		}
		if r.MinFracServed < minFrac*(1-1e-12) {
			t.Errorf("class %s: served frequency fraction %v below floor %v", r.Class, r.MinFracServed, minFrac)
		}
		if !(r.GuardedCost <= r.SafeCost*(1+1e-9)) {
			t.Errorf("class %s: guarded cost %v exceeds safe-mode %v", r.Class, r.GuardedCost, r.SafeCost)
		}
		if r.Decisions != opts.Iters {
			t.Errorf("class %s: %d decisions, want %d", r.Class, r.Decisions, opts.Iters)
		}
	}
}

// TestChaosTripAndRecovery drills into the nan-state episode: the actor
// must trip within the configured violation budget of the corruption
// window's start, stay benched through probation, and serve again after
// the window ends.
func TestChaosTripAndRecovery(t *testing.T) {
	sys, agent := testbed(t)
	var nan chaos.Class
	for _, c := range chaos.Classes() {
		if c.Name == "nan-state" {
			nan = c
		}
	}
	opts := exploreOptions()
	r, err := chaos.Run(sys, agent, nan, opts)
	if err != nil {
		t.Fatal(err)
	}
	recs := r.Audit.Records()
	trip := -1
	for k, rec := range recs {
		for _, ev := range rec.Events {
			if strings.HasSuffix(ev, ":trip") && trip < 0 {
				trip = k
			}
		}
	}
	budget := chaos.NaNFrom + opts.Guard.TripAfter - 1
	if trip < 0 || trip > budget {
		t.Fatalf("trip at decision %d, want within violation budget (≤%d)", trip, budget)
	}
	if r.Closes == 0 {
		t.Fatalf("breaker never re-closed after probation (trips=%d)", r.Trips)
	}
	servedLate := false
	for k := chaos.NaNUntil + opts.Guard.Probation; k < len(recs); k++ {
		if recs[k].Layer == "drl" {
			servedLate = true
			break
		}
	}
	if !servedLate {
		t.Fatal("actor never served again after the corruption window + probation")
	}
	// The corruption window itself must never be actor-served.
	for k := chaos.NaNFrom; k < chaos.NaNUntil; k++ {
		if recs[k].Layer == "drl" {
			t.Fatalf("actor served corrupted decision %d", k)
		}
	}
}

// TestChaosNegativeControl: the same actor without the guard must
// demonstrably violate the invariants the guard enforces — it either
// fails outright on corrupted state (nan-state) or executes stall plans
// that cost far more than safe mode (poison).
func TestChaosNegativeControl(t *testing.T) {
	sys, agent := testbed(t)
	byName := map[string]chaos.Class{}
	for _, c := range chaos.Classes() {
		byName[c.Name] = c
	}
	opts := exploreOptions()

	rn, err := chaos.Run(sys, agent, byName["nan-state"], opts)
	if err != nil {
		t.Fatal(err)
	}
	if rn.UnguardedErr == "" {
		t.Fatal("unguarded actor survived NaN telemetry; the engine should have rejected its frequencies")
	}

	rp, err := chaos.Run(sys, agent, byName["poison"], opts)
	if err != nil {
		t.Fatal(err)
	}
	if rp.UnguardedErr != "" {
		t.Fatalf("poisoned unguarded run failed unexpectedly: %s", rp.UnguardedErr)
	}
	// The poisoned actor's stall plans are feasible, so the unguarded run
	// completes — at a cost that dwarfs both safe mode and the guard.
	if !(rp.UnguardedCost > rp.UnguardedSafeCost) {
		t.Fatalf("poisoned unguarded cost %v did not exceed its safe counterfactual %v", rp.UnguardedCost, rp.UnguardedSafeCost)
	}
	if !(rp.UnguardedCost > rp.GuardedCost) {
		t.Fatalf("poisoned unguarded cost %v did not exceed guarded cost %v", rp.UnguardedCost, rp.GuardedCost)
	}
	if rp.ActorServed != 0 {
		t.Fatalf("guard served %d poisoned actor plans", rp.ActorServed)
	}
}

// TestChaosAuditGoldenAcrossWorkers is the determinism satellite: the
// same seed and chaos schedule must yield byte-identical audit logs at
// any worker count.
func TestChaosAuditGoldenAcrossWorkers(t *testing.T) {
	sys, agent := testbed(t)
	classes := chaos.Classes()
	opts := exploreOptions()
	render := func(results []*chaos.Result) string {
		var sb strings.Builder
		for _, r := range results {
			sb.WriteString("== " + r.Class + "\n")
			for _, line := range r.Audit.Lines() {
				sb.WriteString(line + "\n")
			}
		}
		return sb.String()
	}
	r1, err := chaos.RunAll(sys, agent, classes, opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := chaos.RunAll(sys, agent, classes, opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	g1, g4 := render(r1), render(r4)
	if g1 != g4 {
		t.Fatalf("audit logs differ between 1 and 4 workers:\n--- w=1\n%s\n--- w=4\n%s", g1, g4)
	}
	if len(g1) == 0 {
		t.Fatal("empty audit log")
	}
}

// TestPoisonAgent checks the poisoned checkpoint really pins actions to
// the frequency floor while the original agent is untouched.
func TestPoisonAgent(t *testing.T) {
	sys, agent := testbed(t)
	poisoned, err := chaos.PoisonAgent(agent)
	if err != nil {
		t.Fatal(err)
	}
	drl, err := poisoned.Scheduler()
	if err != nil {
		t.Fatal(err)
	}
	fs, err := drl.Frequencies(sched.Context{Sys: sys, Clock: 500})
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range fs {
		floor := agent.EnvCfg.MinFreqFrac * sys.Devices[i].MaxFreqHz
		if math.Abs(f-floor) > 1e-6*floor {
			t.Fatalf("poisoned frequency %d = %v, want floor %v", i, f, floor)
		}
	}
	orig, err := agent.Scheduler()
	if err != nil {
		t.Fatal(err)
	}
	ofs, err := orig.Frequencies(sched.Context{Sys: sys, Clock: 500})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range ofs {
		if math.Abs(ofs[i]-fs[i]) > 1e-9 {
			same = false
		}
	}
	if same {
		t.Fatal("poisoning leaked into the original agent")
	}
}
