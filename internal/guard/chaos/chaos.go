// Package chaos adversarially stresses the guarded serving loop: it
// mutates a system's bandwidth traces (or the actor itself) the way real
// deployments go wrong — regime spikes, dead links, corrupted telemetry,
// unit-scale errors, truncated logs, poisoned checkpoints — and runs the
// guarded controller, an unguarded copy of the same actor, and the
// max-frequency safe mode side by side over the mutated system. The
// harness asserts the guard's contract: every emitted frequency stays in
// [δ_floor, δ_i^max], and the guarded total cost never exceeds the safe
// mode's.
//
// The safe-mode bound is evaluated as a paired counterfactual: at every
// decision the harness also steps a throwaway session at max frequencies
// from the controller's own clock, so both policies face the identical
// realized bandwidth. An independent safe episode from the same start is
// reported too (SafeEpisodeCost), but it is not the bound — two runs of
// different speeds cover different wall-clock spans of a time-varying
// trace, so their totals are not comparable decision-for-decision.
package chaos

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/core"
	"repro/internal/env"
	"repro/internal/fl"
	"repro/internal/guard"
	"repro/internal/nn"
	"repro/internal/rl"
	"repro/internal/sched"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// Class is one adversarial mutation family. Mutate derives the serving
// system from the pristine one (deterministically from the seed);
// Corrupt, when set, additionally mutates the actor's observed state
// in-flight (telemetry corruption the trace model itself cannot express,
// since trace.New rejects non-finite samples); Poison swaps the trained
// actor for a stall-plan checkpoint.
type Class struct {
	Name        string
	Description string
	Mutate      func(sys *fl.System, seed int64) (*fl.System, error)
	Corrupt     func(iter int, s tensor.Vector)
	Poison      bool
}

// NaN-corruption window of the nan-state class: decisions in
// [NaNFrom, NaNUntil) observe a state whose first device block is NaN.
const (
	NaNFrom  = 5
	NaNUntil = 15
)

// Classes returns the built-in mutation classes, in canonical order.
func Classes() []Class {
	return []Class{
		{
			Name:        "spike",
			Description: "×50 bandwidth bursts on ~8% of samples (regime flips the trainer never saw)",
			Mutate: func(sys *fl.System, seed int64) (*fl.System, error) {
				return mutateTraces(sys, func(tr *trace.Trace, rng *rand.Rand) error {
					for i := range tr.Samples {
						if rng.Float64() < 0.08 {
							tr.Samples[i] *= 50
						}
					}
					return nil
				}, seed)
			},
		},
		{
			Name:        "flatline",
			Description: "middle half of every trace pinned to its minimum (near-dead links)",
			Mutate: func(sys *fl.System, seed int64) (*fl.System, error) {
				return mutateTraces(sys, func(tr *trace.Trace, rng *rand.Rand) error {
					lo := tr.Summary().Min
					if lo <= 0 {
						lo = 1
					}
					n := len(tr.Samples)
					for i := n / 4; i < 3*n/4; i++ {
						tr.Samples[i] = lo
					}
					return nil
				}, seed)
			},
		},
		{
			Name:        "nan-state",
			Description: "telemetry corruption: the actor's observed state turns NaN for a window of decisions",
			Mutate:      identityMutate,
			Corrupt: func(iter int, s tensor.Vector) {
				if iter >= NaNFrom && iter < NaNUntil {
					for i := range s {
						s[i] = math.NaN()
					}
				}
			},
		},
		{
			Name:        "scale",
			Description: "unit-scale error: every bandwidth sample ×1000 (bytes fed where kilobytes were meant)",
			Mutate: func(sys *fl.System, seed int64) (*fl.System, error) {
				return mutateTraces(sys, func(tr *trace.Trace, rng *rand.Rand) error {
					for i := range tr.Samples {
						tr.Samples[i] *= 1000
					}
					return nil
				}, seed)
			},
		},
		{
			Name:        "truncate",
			Description: "traces cut to a short prefix, replayed cyclically (stale, unrepresentative logs)",
			Mutate: func(sys *fl.System, seed int64) (*fl.System, error) {
				return mutateTraces(sys, func(tr *trace.Trace, rng *rand.Rand) error {
					keep := len(tr.Samples) / 20
					if keep < 8 {
						keep = 8
					}
					if keep < len(tr.Samples) {
						tr.Samples = tr.Samples[:keep]
					}
					return nil
				}, seed)
			},
		},
		{
			Name:        "poison",
			Description: "poisoned checkpoint: actor output layer saturated to the frequency floor (stall plans)",
			Mutate:      identityMutate,
			Poison:      true,
		},
	}
}

func identityMutate(sys *fl.System, seed int64) (*fl.System, error) {
	return cloneSystem(sys), nil
}

// cloneSystem deep-copies traces (devices are immutable here and shared).
func cloneSystem(sys *fl.System) *fl.System {
	out := *sys
	out.Traces = make([]*trace.Trace, len(sys.Traces))
	for i, tr := range sys.Traces {
		out.Traces[i] = tr.Clone()
	}
	return &out
}

// mutateTraces clones the system and applies f to every trace, seeding
// one RNG per trace so the mutation is deterministic and independent of
// evaluation order. Mutated traces are revalidated through trace.New —
// a mutator cannot smuggle an invalid trace into the engine.
func mutateTraces(sys *fl.System, f func(tr *trace.Trace, rng *rand.Rand) error, seed int64) (*fl.System, error) {
	out := *sys
	out.Traces = make([]*trace.Trace, len(sys.Traces))
	for i, tr := range sys.Traces {
		c := tr.Clone()
		rng := rand.New(rand.NewSource(seed + int64(i)*1_000_003))
		if err := f(c, rng); err != nil {
			return nil, err
		}
		v, err := trace.New(c.Name, c.Interval, c.Samples)
		if err != nil {
			return nil, fmt.Errorf("chaos: mutated trace invalid: %w", err)
		}
		out.Traces[i] = v
	}
	return &out, nil
}

// PoisonAgent returns a copy of the agent whose actor has been corrupted
// the way a bad checkpoint would corrupt it: the output layer's weights
// are zeroed and its biases saturated hard negative, so every action pins
// to −1 and every frequency to the floor — a maximal-stall plan that
// looks perfectly finite and in-range.
func PoisonAgent(a *core.Agent) (*core.Agent, error) {
	p := a.Policy.ClonePolicy()
	var net *nn.MLP
	switch q := p.(type) {
	case *rl.GaussianPolicy:
		net = q.Net
	case *rl.SharedGaussianPolicy:
		net = q.Net
	default:
		return nil, fmt.Errorf("chaos: cannot poison policy type %T", p)
	}
	last := net.Layers[len(net.Layers)-1]
	for i := range last.W.Data {
		last.W.Data[i] = 0
	}
	for i := range last.B {
		last.B[i] = -10
	}
	return &core.Agent{Policy: p, Critic: a.Critic, EnvCfg: a.EnvCfg, Norm: a.Norm}, nil
}

// Options parameterizes one chaos episode.
type Options struct {
	// Iters is the number of FL iterations per episode.
	Iters int
	// Start is the wall-clock start time of the episode.
	Start float64
	// Seed drives the trace mutators.
	Seed int64
	// Guard configures the pipeline. Env and (when needed) Ref are
	// filled by Run from the agent and the pristine system if unset.
	Guard guard.Config
	// Fallback is the ChainFromSpec fallback spec ("" → heuristic,maxfreq).
	Fallback string
	// ProbeSamples sizes the ProbeReference fallback when the agent has
	// no trained normalizer (0 → 256).
	ProbeSamples int
}

// Result is one chaos episode's verdict.
type Result struct {
	Class       string
	Description string
	// GuardedCost is the guarded controller's total episode cost on the
	// mutated system. SafeCost is its paired max-frequency counterfactual:
	// the cost of stepping at max frequencies from the same decision
	// clocks, i.e. what safe mode would have paid for the guard's exact
	// decision points. The guard's contract is GuardedCost ≤ SafeCost.
	GuardedCost float64
	SafeCost    float64
	// SafeEpisodeCost is an independent max-frequency episode from the
	// same start time (context only — its trajectory diverges).
	SafeEpisodeCost float64
	// UnguardedCost / UnguardedSafeCost are the bare actor's total and its
	// paired counterfactual (both NaN when the unguarded run failed).
	UnguardedCost     float64
	UnguardedSafeCost float64
	// UnguardedErr records how the unguarded actor failed ("" if it ran).
	UnguardedErr string
	// FreqViolations counts guarded frequencies outside [floor, max]
	// (the guard's contract is that this is always 0).
	FreqViolations int
	// MinFracServed is the minimum served f/δmax across all devices and
	// iterations.
	MinFracServed float64
	// Trips / Closes total breaker trip and re-close events.
	Trips  int
	Closes int
	// ActorServed counts decisions served by the primary actor.
	ActorServed int
	// Decisions is the total decision count.
	Decisions int
	// Audit is the guard's full decision audit for the episode.
	Audit *guard.Audit
}

// isolate clones the agent's policy so concurrent episodes never share
// network scratch buffers (same discipline as experiments.Compare).
func isolate(a *core.Agent) *core.Agent {
	return &core.Agent{Policy: a.Policy.ClonePolicy(), Critic: a.Critic, EnvCfg: a.EnvCfg, Norm: a.Norm}
}

// counterfactualSafe steps a throwaway session at max frequencies from
// the given clock: the cost safe mode would have realized for the same
// decision point, under the same bandwidth the live session is about to
// see.
func counterfactualSafe(sys *fl.System, clock float64, maxFreqs []float64) (float64, error) {
	ses, err := fl.NewSession(sys, clock)
	if err != nil {
		return 0, err
	}
	it, err := ses.Step(maxFreqs)
	if err != nil {
		return 0, err
	}
	return it.Cost, nil
}

// unguarded runs the bare actor on the same (possibly corrupted) state
// the guard would have seen — the negative control. It also accumulates
// its own paired safe counterfactual.
type unguarded struct {
	drl        *sched.DRL
	corrupt    func(int, tensor.Vector)
	iter       int
	maxFreqs   []float64
	pairedSafe float64
}

func (u *unguarded) Name() string { return "drl-unguarded" }

func (u *unguarded) Frequencies(ctx sched.Context) ([]float64, error) {
	safe, err := counterfactualSafe(ctx.Sys, ctx.Clock, u.maxFreqs)
	if err != nil {
		return nil, err
	}
	u.pairedSafe += safe
	state := env.BuildState(ctx.Sys, ctx.Clock, u.drl.Cfg)
	env.MaskState(state, ctx.Down, u.drl.Cfg.History)
	if u.corrupt != nil {
		u.corrupt(u.iter, state)
	}
	u.iter++
	return u.drl.FrequenciesFromState(ctx, state)
}

// recorder wraps the guard to witness every served plan against the
// action box, independently of the guard's own bookkeeping, and to
// accumulate the paired safe counterfactual.
type recorder struct {
	g          *guard.Guard
	floors     []float64
	caps       []float64
	violations int
	minFrac    float64
	maxFreqs   []float64
	pairedSafe float64
}

func (r *recorder) Name() string { return r.g.Name() }

func (r *recorder) Frequencies(ctx sched.Context) ([]float64, error) {
	safe, err := counterfactualSafe(ctx.Sys, ctx.Clock, r.maxFreqs)
	if err != nil {
		return nil, err
	}
	r.pairedSafe += safe
	fs, err := r.g.Frequencies(ctx)
	if err != nil {
		return nil, err
	}
	for i, f := range fs {
		if math.IsNaN(f) || f < r.floors[i]*(1-1e-12) || f > r.caps[i]*(1+1e-12) {
			r.violations++
		}
		if frac := f / r.caps[i]; frac < r.minFrac {
			r.minFrac = frac
		}
	}
	return fs, nil
}

func (r *recorder) Observe(it fl.IterationStats) { r.g.Observe(it) }

// Run executes one chaos episode: mutate the system per the class, then
// race the guarded controller, the unguarded actor, and the max-frequency
// safe mode over the mutated system. The pristine system supplies the
// OOD reference (the training distribution) — never the mutated one.
func Run(pristine *fl.System, agent *core.Agent, cl Class, opts Options) (*Result, error) {
	if opts.Iters <= 0 {
		return nil, fmt.Errorf("chaos: iteration count %d must be positive", opts.Iters)
	}
	mutated, err := cl.Mutate(pristine, opts.Seed)
	if err != nil {
		return nil, err
	}
	actorAgent := agent
	if cl.Poison {
		if actorAgent, err = PoisonAgent(agent); err != nil {
			return nil, err
		}
	}

	// Guarded controller.
	iso := isolate(actorAgent)
	drl, err := iso.Scheduler()
	if err != nil {
		return nil, err
	}
	gcfg := opts.Guard
	gcfg.Env = agent.EnvCfg
	gcfg.CorruptState = cl.Corrupt
	if gcfg.Ref == nil && gcfg.OODThreshold >= 0 {
		if agent.Norm != nil {
			gcfg.Ref, err = guard.RefFromNormalizer(agent.Norm)
		} else {
			samples := opts.ProbeSamples
			if samples == 0 {
				samples = 256
			}
			gcfg.Ref, err = guard.ProbeReference(pristine, agent.EnvCfg, samples)
		}
		if err != nil {
			return nil, err
		}
	}
	chain, err := guard.ChainFromSpec(mutated, opts.Fallback, agent.EnvCfg.MinFreqFrac)
	if err != nil {
		return nil, err
	}
	g, err := guard.New(drl, gcfg, chain...)
	if err != nil {
		return nil, err
	}
	maxFreqs := make([]float64, mutated.N())
	rec := &recorder{g: g, minFrac: math.Inf(1), maxFreqs: maxFreqs}
	rec.floors = make([]float64, mutated.N())
	rec.caps = make([]float64, mutated.N())
	for i, d := range mutated.Devices {
		rec.floors[i] = agent.EnvCfg.MinFreqFrac * d.MaxFreqHz
		rec.caps[i] = d.MaxFreqHz
		maxFreqs[i] = d.MaxFreqHz
	}
	guarded, err := sched.Run(mutated, rec, opts.Start, opts.Iters)
	if err != nil {
		return nil, fmt.Errorf("chaos: guarded run failed on class %s: %w", cl.Name, err)
	}

	// Max-frequency safe baseline.
	safe, err := sched.Run(mutated, sched.MaxFreq{}, opts.Start, opts.Iters)
	if err != nil {
		return nil, fmt.Errorf("chaos: safe baseline failed on class %s: %w", cl.Name, err)
	}

	// Unguarded actor: the negative control. Its failure is data, not an
	// error.
	iso2 := isolate(actorAgent)
	drl2, err := iso2.Scheduler()
	if err != nil {
		return nil, err
	}
	ug := &unguarded{drl: drl2, corrupt: cl.Corrupt, maxFreqs: maxFreqs}
	res := &Result{
		Class:             cl.Name,
		Description:       cl.Description,
		UnguardedCost:     math.NaN(),
		UnguardedSafeCost: math.NaN(),
	}
	if unguardedIts, uerr := sched.Run(mutated, ug, opts.Start, opts.Iters); uerr != nil {
		res.UnguardedErr = uerr.Error()
	} else {
		res.UnguardedCost = total(unguardedIts)
		res.UnguardedSafeCost = ug.pairedSafe
	}

	res.GuardedCost = total(guarded)
	res.SafeCost = rec.pairedSafe
	res.SafeEpisodeCost = total(safe)
	res.FreqViolations = rec.violations
	res.MinFracServed = rec.minFrac
	res.Audit = g.Audit()
	res.Decisions = res.Audit.Total()
	for ev, n := range res.Audit.EventCounts() {
		if hasSuffix(ev, ":trip") {
			res.Trips += n
		}
		if hasSuffix(ev, ":close") {
			res.Closes += n
		}
	}
	res.ActorServed = res.Audit.ServedCounts()[drl.Name()]
	return res, nil
}

// RunAll evaluates every class with a bounded worker pool. Results are in
// class order and bit-identical at any worker count: each episode derives
// everything from (pristine, agent, class, opts) alone.
func RunAll(pristine *fl.System, agent *core.Agent, classes []Class, opts Options, workers int) ([]*Result, error) {
	if workers <= 0 {
		workers = 1
	}
	results := make([]*Result, len(classes))
	errs := make([]error, len(classes))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, cl := range classes {
		wg.Add(1)
		go func(i int, cl Class) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = Run(pristine, agent, cl, opts)
		}(i, cl)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("chaos: class %s: %w", classes[i].Name, err)
		}
	}
	return results, nil
}

func total(its []fl.IterationStats) float64 {
	var c float64
	for _, it := range its {
		c += it.Cost
	}
	return c
}

func hasSuffix(s, suf string) bool {
	return len(s) >= len(suf) && s[len(s)-len(suf):] == suf
}
