package online

import (
	"fmt"
	"math"

	"repro/internal/env"
	"repro/internal/fl"
	"repro/internal/guard"
	"repro/internal/rl"
	"repro/internal/tensor"
)

// Replayer turns parsed audit decisions back into training transitions
// against a serving system: the state is rebuilt from the decision clock
// with the same env layout (and frozen normalizer) the actor served
// under, and the served plan is mapped back through the inverse of the
// action box. Only extended-form records (Config.RecordPlans) replay —
// a legacy 5-field line carries neither clock nor plan.
type Replayer struct {
	sys  *fl.System
	cfg  env.Config
	norm *rl.ObsNormalizer

	stateBuf tensor.Vector
	scratch  []float64
}

// NewReplayer builds a replayer for the system and env layout the audit
// log was served against. norm is the agent's frozen observation
// normalizer (nil when the agent trained without one).
func NewReplayer(sys *fl.System, cfg env.Config, norm *rl.ObsNormalizer) (*Replayer, error) {
	if err := sys.Validate(); err != nil {
		return nil, fmt.Errorf("online: %w", err)
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("online: %w", err)
	}
	return &Replayer{sys: sys, cfg: cfg, norm: norm}, nil
}

// Transition replays one decision. Decisions without a plan or a finite
// clock are not replayable and return an error (callers skip them).
func (r *Replayer) Transition(d guard.Decision) (Transition, error) {
	if len(d.Plan) == 0 {
		return Transition{}, fmt.Errorf("online: decision k=%d carries no plan (audit written without RecordPlans?)", d.Iter)
	}
	if math.IsNaN(d.Clock) || math.IsInf(d.Clock, 0) || d.Clock < 0 {
		return Transition{}, fmt.Errorf("online: decision k=%d has unusable clock %v", d.Iter, d.Clock)
	}
	if len(d.Plan) != r.sys.N() {
		return Transition{}, fmt.Errorf("online: decision k=%d plans %d devices, system has %d", d.Iter, len(d.Plan), r.sys.N())
	}
	action, err := UnmapPlan(r.sys, d.Plan, r.cfg.MinFreqFrac)
	if err != nil {
		return Transition{}, fmt.Errorf("online: decision k=%d: %w", d.Iter, err)
	}
	r.stateBuf, r.scratch = env.BuildStateInto(r.stateBuf, r.scratch, r.sys, d.Clock, r.cfg)
	state := r.stateBuf.Clone()
	if r.norm != nil {
		r.norm.NormalizeInto(state, state)
	}
	reason := ""
	if len(d.Events) > 0 {
		reason = d.Events[0]
	}
	return Transition{
		Iter:   d.Iter,
		Clock:  d.Clock,
		State:  state,
		Action: action,
		Layer:  d.Layer,
		Reason: reason,
		Score:  d.Score,
		Cost:   d.Cost,
	}, nil
}

// UnmapPlan inverts env.MapAction: the raw action vector in [−1,1] whose
// affine image on [MinFreqFrac·δmax, δmax] is the given feasible plan.
// Sanitized plans always invert exactly; a frequency outside the box (a
// hand-edited log) errors rather than extrapolating outside the clip
// range the policy was trained in.
func UnmapPlan(sys *fl.System, plan []float64, minFreqFrac float64) (tensor.Vector, error) {
	if len(plan) != sys.N() {
		return nil, fmt.Errorf("online: plan has %d frequencies for %d devices", len(plan), sys.N())
	}
	if minFreqFrac <= 0 || minFreqFrac >= 1 {
		return nil, fmt.Errorf("online: min frequency fraction %v outside (0,1)", minFreqFrac)
	}
	a := tensor.NewVector(len(plan))
	const slack = 1 + 1e-9 // absorb the round trip through decimal formatting
	for i, d := range sys.Devices {
		lo := minFreqFrac * d.MaxFreqHz
		f := plan[i]
		if math.IsNaN(f) || f < lo/slack || f > d.MaxFreqHz*slack {
			return nil, fmt.Errorf("online: plan frequency %v for device %d outside [%v, %v]", f, i, lo, d.MaxFreqHz)
		}
		frac := f / d.MaxFreqHz
		x := 2*(frac-minFreqFrac)/(1-minFreqFrac) - 1
		if x < -1 {
			x = -1
		} else if x > 1 {
			x = 1
		}
		a[i] = x
	}
	return a, nil
}
