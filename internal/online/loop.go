package online

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fl"
	"repro/internal/guard"
	"repro/internal/guard/chaos"
	"repro/internal/rl"
)

// Defaults applied by NewLoop to zero-valued Config fields.
const (
	DefaultBufferCap       = 1024
	DefaultDriftThreshold  = guard.DefaultOODThreshold
	DefaultDriftHysteresis = guard.DefaultOODHysteresis
	DefaultDriftWindow     = 16
	DefaultMinSamples      = 64
	DefaultLR              = 1e-3
	DefaultEpochs          = 25
	DefaultMaxGradNorm     = 0.5
	DefaultProbeIters      = 20
)

// Config parameterizes the continual-learning loop. The zero value of
// every field selects the documented default.
type Config struct {
	// BufferCap bounds the replay buffer (0 → DefaultBufferCap).
	BufferCap int
	// DriftThreshold/DriftHysteresis/DriftWindow parameterize the retrain
	// gate over parsed drift scores, mirroring the guard's OOD gate
	// semantics (0 → the documented defaults).
	DriftThreshold  float64
	DriftHysteresis float64
	DriftWindow     int
	// MinSamples is the replay-buffer fill required before a retrain can
	// trigger (0 → DefaultMinSamples).
	MinSamples int
	// Cooldown is the number of ingested decisions between retrain
	// attempts (0 → MinSamples), bounding retrain frequency while the
	// gate stays open.
	Cooldown int
	// LR / Epochs / MaxGradNorm shape the behavior-cloning fine-tune
	// (0 → the documented defaults).
	LR          float64
	Epochs      int
	MaxGradNorm float64
	// Workers sets the imitation engine's and probe harness's worker
	// counts. Results are bit-identical at any value (0 → 1).
	Workers int
	// CheckpointDir, when set, receives every candidate as an atomically
	// written agent file (candidate-<n>.gob) before validation — crash
	// mid-validation never leaves a half-written candidate.
	CheckpointDir string
	// ProbeIters is the per-class iteration count of the promotion probe
	// (0 → DefaultProbeIters).
	ProbeIters int
	// ProbeSeed drives the probe's trace mutators.
	ProbeSeed int64
	// ProbeClasses is the fixed probe set (nil → chaos.Classes()).
	ProbeClasses []chaos.Class
	// Guard configures the probe pipeline (Env/Ref filled by the harness).
	Guard guard.Config
	// Fallback is the probe guard's fallback chain spec.
	Fallback string
	// OnPromote, when set, is called with every promoted candidate — the
	// serving side's hot-swap hook. An error fails the Ingest that
	// triggered the retrain (the loop's champion is already swapped).
	OnPromote func(*core.Agent) error
}

func (c Config) withDefaults() Config {
	if c.BufferCap == 0 {
		c.BufferCap = DefaultBufferCap
	}
	if c.DriftThreshold == 0 {
		c.DriftThreshold = DefaultDriftThreshold
	}
	if c.DriftHysteresis == 0 {
		c.DriftHysteresis = DefaultDriftHysteresis
	}
	if c.DriftWindow == 0 {
		c.DriftWindow = DefaultDriftWindow
	}
	if c.MinSamples == 0 {
		c.MinSamples = DefaultMinSamples
	}
	if c.Cooldown == 0 {
		c.Cooldown = c.MinSamples
	}
	if c.LR == 0 {
		c.LR = DefaultLR
	}
	if c.Epochs == 0 {
		c.Epochs = DefaultEpochs
	}
	if c.MaxGradNorm == 0 {
		c.MaxGradNorm = DefaultMaxGradNorm
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.ProbeIters == 0 {
		c.ProbeIters = DefaultProbeIters
	}
	if c.ProbeClasses == nil {
		c.ProbeClasses = chaos.Classes()
	}
	return c
}

func (c Config) validate() error {
	switch {
	case c.BufferCap < 1:
		return fmt.Errorf("online: buffer capacity %d must be positive", c.BufferCap)
	case c.DriftThreshold <= 0:
		return fmt.Errorf("online: drift threshold %v must be positive", c.DriftThreshold)
	case c.DriftHysteresis <= 0 || c.DriftHysteresis > 1:
		return fmt.Errorf("online: drift hysteresis %v outside (0,1]", c.DriftHysteresis)
	case c.DriftWindow < 1:
		return fmt.Errorf("online: drift window %d must be positive", c.DriftWindow)
	case c.MinSamples < 1:
		return fmt.Errorf("online: min samples %d must be positive", c.MinSamples)
	case c.MinSamples > c.BufferCap:
		return fmt.Errorf("online: min samples %d exceeds buffer capacity %d", c.MinSamples, c.BufferCap)
	case c.Cooldown < 1:
		return fmt.Errorf("online: cooldown %d must be positive", c.Cooldown)
	case c.LR <= 0:
		return fmt.Errorf("online: learning rate %v must be positive", c.LR)
	case c.Epochs < 1:
		return fmt.Errorf("online: epochs %d must be positive", c.Epochs)
	case c.MaxGradNorm <= 0:
		return fmt.Errorf("online: gradient clip %v must be positive", c.MaxGradNorm)
	case c.ProbeIters < 1:
		return fmt.Errorf("online: probe iterations %d must be positive", c.ProbeIters)
	case len(c.ProbeClasses) == 0:
		return fmt.Errorf("online: empty probe class set")
	}
	return nil
}

// Loop is the continual-learning driver. It is not safe for concurrent
// use; the serving side feeds it from one goroutine (or hands it whole
// log files).
type Loop struct {
	cfg   Config
	sys   *fl.System
	agent *core.Agent

	rep  *Replayer
	buf  *Buffer
	gate *DriftGate

	sinceAttempt int
	skipped      int
	retrains     int
	promotions   int
}

// NewLoop builds a continual-learning loop around the serving agent and
// the pristine system its audit logs were served against (the probe
// harness mutates it per class; it is never written).
func NewLoop(sys *fl.System, agent *core.Agent, cfg Config) (*Loop, error) {
	if agent == nil || agent.Policy == nil || agent.Critic == nil {
		return nil, fmt.Errorf("online: nil agent")
	}
	if _, ok := agent.Policy.(rl.ShardedPolicy); !ok {
		return nil, fmt.Errorf("online: policy %T does not support sharded imitation", agent.Policy)
	}
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rep, err := NewReplayer(sys, agent.EnvCfg, agent.Norm)
	if err != nil {
		return nil, err
	}
	return &Loop{
		cfg:          cfg,
		sys:          sys,
		agent:        agent,
		rep:          rep,
		buf:          NewBuffer(cfg.BufferCap),
		gate:         NewDriftGate(cfg.DriftThreshold, cfg.DriftHysteresis, cfg.DriftWindow),
		sinceAttempt: cfg.Cooldown, // an already-drifted log retrains as soon as MinSamples arrive
	}, nil
}

// Agent returns the current champion (the initial agent until a
// promotion, then the latest promoted candidate).
func (l *Loop) Agent() *core.Agent { return l.agent }

// Buffer exposes the replay buffer (tests and diagnostics).
func (l *Loop) Buffer() *Buffer { return l.buf }

// Stats returns lifetime counters: replayed transitions, skipped
// (non-replayable) decisions, retrains and promotions.
func (l *Loop) Stats() (replayed, skipped, retrains, promotions int) {
	return l.buf.Total(), l.skipped, l.retrains, l.promotions
}

// Ingest feeds one parsed audit decision through the loop: the drift gate
// sees its score, replayable decisions join the buffer, and a sustained
// drift with enough buffered experience triggers a retrain. The returned
// report is nil when no retrain ran.
func (l *Loop) Ingest(d guard.Decision) (*Report, error) {
	l.gate.Observe(d.Score)
	if tr, err := l.rep.Transition(d); err == nil {
		l.buf.Add(tr)
	} else {
		l.skipped++
	}
	l.sinceAttempt++
	if !l.gate.Open() || l.buf.Len() < l.cfg.MinSamples || l.sinceAttempt < l.cfg.Cooldown {
		return nil, nil
	}
	l.sinceAttempt = 0
	return l.retrain()
}

// ProcessLog parses a persisted audit log (Audit.Render output or raw
// Lines) and ingests every record in order, returning the reports of all
// retrains it triggered.
func (l *Loop) ProcessLog(text string) ([]*Report, error) {
	var reports []*Report
	for _, d := range guard.ParseLines(text) {
		r, err := l.Ingest(d)
		if err != nil {
			return reports, err
		}
		if r != nil {
			reports = append(reports, r)
		}
	}
	return reports, nil
}
