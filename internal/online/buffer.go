// Package online closes the guard-audit loop into training: it replays
// persisted guard audit logs back into (state, action, fallback-reason)
// transitions, accumulates them in a bounded deterministic replay buffer,
// and — when the parsed OOD drift statistics cross a hysteresis gate —
// fine-tunes a candidate actor by behavior cloning on the logged
// decisions. Every retrain is checkpointed atomically and shadow-evaluated
// against the current actor on the chaos harness's fixed probe set before
// promotion; a regression rolls the candidate back, a win hot-swaps it
// into the serving loop through the OnPromote hook. Given the same audit
// log and the same starting agent, every retrain — candidate weights,
// probe verdict, promotion decision — is deterministic.
package online

import (
	"repro/internal/tensor"
)

// Transition is one replayed guarded decision: the (normalized) state the
// actor saw, the raw action equivalent of the served plan, and the
// provenance needed to weigh it (which layer served, why the actor was
// bypassed, what the decision realized).
type Transition struct {
	// Iter and Clock locate the decision in its serving session.
	Iter  int
	Clock float64
	// State is the observation, normalized exactly as serving normalized it.
	State tensor.Vector
	// Action is the served plan mapped back through the inverse action
	// box: the raw [−1,1] vector whose env.MapAction image is the plan.
	Action tensor.Vector
	// Layer names the scheduler that served the plan.
	Layer string
	// Reason is the first guard event of the decision ("" for a clean
	// actor-served one) — the fallback reason when a fallback served.
	Reason string
	// Score is the decision's OOD drift score (NaN when unscored).
	Score float64
	// Cost is the realized iteration cost (NaN when never observed).
	Cost float64
}

// Buffer is the bounded replay buffer: strict FIFO, oldest evicted first,
// no sampling — consumers read the retained window in arrival order, so
// the buffer contents are a pure function of the ingested sequence.
type Buffer struct {
	cap     int
	items   []Transition
	dropped int
	total   int
}

// NewBuffer returns a replay buffer retaining at most capacity
// transitions (capacity must be positive).
func NewBuffer(capacity int) *Buffer {
	if capacity < 1 {
		capacity = 1
	}
	return &Buffer{cap: capacity}
}

// Add appends one transition, evicting the oldest when full.
func (b *Buffer) Add(t Transition) {
	b.total++
	if len(b.items) >= b.cap {
		n := copy(b.items, b.items[1:])
		b.items = b.items[:n]
		b.dropped++
	}
	b.items = append(b.items, t)
}

// Len returns the number of retained transitions.
func (b *Buffer) Len() int { return len(b.items) }

// Cap returns the retention bound.
func (b *Buffer) Cap() int { return b.cap }

// Total returns the lifetime ingest count.
func (b *Buffer) Total() int { return b.total }

// Dropped returns how many transitions eviction discarded.
func (b *Buffer) Dropped() int { return b.dropped }

// Items exposes the retained window in arrival order. The slice is owned
// by the buffer; callers must not mutate it.
func (b *Buffer) Items() []Transition { return b.items }

// Clear drops the retained window (counters keep the lifetime totals).
func (b *Buffer) Clear() { b.items = b.items[:0] }
