package online

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/guard/chaos"
	"repro/internal/rl"
	"repro/internal/tensor"
)

// Report documents one retrain: the fine-tune's loss trajectory, the
// candidate checkpoint, the shadow-evaluation verdict against the current
// champion on the fixed probe set, and whether the candidate was
// promoted.
type Report struct {
	// Retrain is the 1-based retrain ordinal within the loop's lifetime.
	Retrain int
	// Samples is the replay-buffer size the candidate trained on.
	Samples int
	// Epochs is the number of full-batch imitation steps taken.
	Epochs int
	// NLLFirst/NLLLast bracket the behavior-cloning loss (before the
	// first and last step respectively).
	NLLFirst, NLLLast float64
	// CheckpointPath is the atomically written candidate file ("" when
	// checkpointing is disabled).
	CheckpointPath string
	// CurrentCost/CandidateCost are summed guarded probe costs;
	// CurrentTrips/CandidateTrips the summed breaker trips.
	CurrentCost, CandidateCost   float64
	CurrentTrips, CandidateTrips int
	// Promoted reports whether the candidate replaced the champion.
	Promoted bool
}

// retrain fine-tunes a candidate on the replay buffer, checkpoints it,
// shadow-evaluates both agents on the fixed probe set and promotes the
// candidate only when it regresses on neither guarded cost nor trips.
func (l *Loop) retrain() (*Report, error) {
	l.retrains++
	items := l.buf.Items()
	rep := &Report{Retrain: l.retrains, Samples: len(items), Epochs: l.cfg.Epochs}

	candidate := &core.Agent{
		Policy: l.agent.Policy.ClonePolicy(),
		Critic: l.agent.Critic,
		EnvCfg: l.agent.EnvCfg,
		Norm:   l.agent.Norm,
	}
	sp := candidate.Policy.(rl.ShardedPolicy)
	S := tensor.NewMatrix(len(items), sp.StateDim())
	A := tensor.NewMatrix(len(items), sp.ActionDim())
	for i, t := range items {
		if len(t.State) != sp.StateDim() || len(t.Action) != sp.ActionDim() {
			return rep, fmt.Errorf("online: transition %d dims (%d,%d) do not match policy (%d,%d)",
				i, len(t.State), len(t.Action), sp.StateDim(), sp.ActionDim())
		}
		copy(S.Data[i*S.Cols:], t.State)
		copy(A.Data[i*A.Cols:], t.Action)
	}
	im, err := rl.NewImitator(sp, candidate.Critic, l.cfg.LR, l.cfg.MaxGradNorm, l.cfg.Workers)
	if err != nil {
		return rep, err
	}
	for e := 0; e < l.cfg.Epochs; e++ {
		nll, err := im.Step(S, A)
		if err != nil {
			return rep, fmt.Errorf("online: retrain %d epoch %d: %w", l.retrains, e, err)
		}
		if e == 0 {
			rep.NLLFirst = nll
		}
		rep.NLLLast = nll
	}

	if l.cfg.CheckpointDir != "" {
		path, err := writeCandidate(l.cfg.CheckpointDir, l.retrains, candidate)
		if err != nil {
			return rep, err
		}
		rep.CheckpointPath = path
	}

	curCost, curTrips, err := l.probe(l.agent)
	if err != nil {
		return rep, fmt.Errorf("online: probe current: %w", err)
	}
	candCost, candTrips, err := l.probe(candidate)
	if err != nil {
		return rep, fmt.Errorf("online: probe candidate: %w", err)
	}
	rep.CurrentCost, rep.CurrentTrips = curCost, curTrips
	rep.CandidateCost, rep.CandidateTrips = candCost, candTrips

	if candCost <= curCost && candTrips <= curTrips {
		rep.Promoted = true
		l.promotions++
		l.agent = candidate
		if l.cfg.OnPromote != nil {
			if err := l.cfg.OnPromote(candidate); err != nil {
				return rep, fmt.Errorf("online: promote hook: %w", err)
			}
		}
	}
	return rep, nil
}

// probe shadow-evaluates an agent through the chaos harness on the fixed
// probe set, returning summed guarded cost and breaker trips.
func (l *Loop) probe(a *core.Agent) (cost float64, trips int, err error) {
	opts := chaos.Options{
		Iters:    l.cfg.ProbeIters,
		Seed:     l.cfg.ProbeSeed,
		Guard:    l.cfg.Guard,
		Fallback: l.cfg.Fallback,
	}
	results, err := chaos.RunAll(l.sys, a, l.cfg.ProbeClasses, opts, l.cfg.Workers)
	if err != nil {
		return 0, 0, err
	}
	for _, r := range results {
		cost += r.GuardedCost
		trips += r.Trips
	}
	return cost, trips, nil
}

// writeCandidate persists a candidate agent crash-safely: encode, write
// to a temp file in the target directory, rename into place.
func writeCandidate(dir string, ordinal int, a *core.Agent) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("online: checkpoint dir: %w", err)
	}
	data, err := a.MarshalBinary()
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("candidate-%04d.gob", ordinal))
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return "", fmt.Errorf("online: write candidate: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("online: commit candidate: %w", err)
	}
	return path, nil
}
