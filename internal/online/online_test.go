package online_test

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/bandwidth"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/env"
	"repro/internal/fl"
	"repro/internal/guard"
	"repro/internal/guard/chaos"
	"repro/internal/online"
	"repro/internal/sched"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// fixture trains one small agent once (read-only afterwards; every
// consumer clones the policy before mutating).
var fixture struct {
	once  sync.Once
	sys   *fl.System
	agent *core.Agent
	err   error
}

func testbed(t *testing.T) (*fl.System, *core.Agent) {
	t.Helper()
	fixture.once.Do(func() {
		devs, err := device.NewFleet(3, device.FleetParams{}, 7)
		if err != nil {
			fixture.err = err
			return
		}
		p := bandwidth.Walking4G()
		traces := make([]*trace.Trace, len(devs))
		for i := range traces {
			traces[i], err = p.Generate("w", 1600, 7+int64(i)*31)
			if err != nil {
				fixture.err = err
				return
			}
		}
		sys := &fl.System{Devices: devs, Traces: traces, Tau: 1, ModelBytes: 25e6, Lambda: 1}
		cfg := core.DefaultConfig()
		cfg.Hidden = []int{24, 24}
		cfg.Episodes = 30
		cfg.BufferSize = 128
		cfg.Seed = 7
		cfg.NormalizeObs = true
		tr, err := core.NewTrainer(sys, cfg)
		if err != nil {
			fixture.err = err
			return
		}
		if _, err := tr.Run(nil); err != nil {
			fixture.err = err
			return
		}
		fixture.sys = sys
		fixture.agent = tr.Agent()
	})
	if fixture.err != nil {
		t.Fatal(fixture.err)
	}
	return fixture.sys, fixture.agent
}

func TestBufferFIFO(t *testing.T) {
	b := online.NewBuffer(3)
	for i := 0; i < 5; i++ {
		b.Add(online.Transition{Iter: i})
	}
	if b.Len() != 3 || b.Total() != 5 || b.Dropped() != 2 {
		t.Fatalf("len=%d total=%d dropped=%d", b.Len(), b.Total(), b.Dropped())
	}
	for i, tr := range b.Items() {
		if tr.Iter != i+2 {
			t.Fatalf("item %d has iter %d, want %d (oldest-first eviction)", i, tr.Iter, i+2)
		}
	}
}

func TestDriftGateHysteresis(t *testing.T) {
	g := online.NewDriftGate(4, 0.5, 2)
	if ev := g.Observe(10); ev != "open" {
		t.Fatalf("high score: %q, want open", ev)
	}
	// NaN (unscorable) must not advance or flap the window.
	if ev := g.Observe(math.NaN()); ev != "" || !g.Open() {
		t.Fatal("NaN score moved the gate")
	}
	// Window mean (10+3)/2 = 6.5 > 2: still open.
	if ev := g.Observe(3); ev != "" || !g.Open() {
		t.Fatal("gate closed above the hysteresis band")
	}
	// Window mean (3+0)/2 = 1.5 < 0.5·4: closes.
	if ev := g.Observe(0); ev != "close" || g.Open() {
		t.Fatal("gate failed to close below hysteresis")
	}
}

func TestUnmapPlanInvertsMapAction(t *testing.T) {
	sys, _ := testbed(t)
	a := tensor.Vector{-1, 0.25, 1}
	plan, err := env.MapAction(sys, a, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	back, err := online.UnmapPlan(sys, plan, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if math.Abs(back[i]-a[i]) > 1e-12 {
			t.Fatalf("component %d: unmapped %v, want %v", i, back[i], a[i])
		}
	}
	if _, err := online.UnmapPlan(sys, []float64{1, 1, 1}, 0.05); err == nil {
		t.Fatal("accepted a plan below the frequency floor")
	}
}

// serveDriftedLog runs a guarded session with plan recording on a
// unit-scale-corrupted copy of the system (massive OOD drift) and returns
// the mutated system and the rendered audit log.
func serveDriftedLog(t *testing.T, iters int) (*fl.System, string) {
	t.Helper()
	sys, agent := testbed(t)
	var scale chaos.Class
	for _, c := range chaos.Classes() {
		if c.Name == "scale" {
			scale = c
		}
	}
	mutated, err := scale.Mutate(sys, 31)
	if err != nil {
		t.Fatal(err)
	}
	g, err := agent.GuardedScheduler(mutated, guard.Config{RecordPlans: true}, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sched.Run(mutated, g, 65, iters); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, line := range g.Audit().Lines() {
		sb.WriteString(line + "\n")
	}
	return mutated, sb.String()
}

// TestReplayerRebuildsServedDecisions: every plan-bearing line of a real
// audit log replays into a transition whose action maps back onto the
// served plan and whose state matches a fresh BuildState at the decision
// clock.
func TestReplayerRebuildsServedDecisions(t *testing.T) {
	_, agent := testbed(t)
	mutated, log := serveDriftedLog(t, 30)
	rep, err := online.NewReplayer(mutated, agent.EnvCfg, agent.Norm)
	if err != nil {
		t.Fatal(err)
	}
	decs := guard.ParseLines(log)
	if len(decs) != 30 {
		t.Fatalf("parsed %d decisions, want 30", len(decs))
	}
	replayed := 0
	for _, d := range decs {
		tr, err := rep.Transition(d)
		if err != nil {
			continue
		}
		replayed++
		plan, merr := env.MapAction(mutated, tr.Action, agent.EnvCfg.MinFreqFrac)
		if merr != nil {
			t.Fatal(merr)
		}
		for i := range plan {
			if math.Abs(plan[i]-d.Plan[i]) > 1e-6*d.Plan[i] {
				t.Fatalf("k=%d device %d: action maps to %v, served plan was %v", d.Iter, i, plan[i], d.Plan[i])
			}
		}
		raw := env.BuildState(mutated, d.Clock, agent.EnvCfg)
		agent.Norm.NormalizeInto(raw, raw)
		if !reflect.DeepEqual(raw, tr.State) {
			t.Fatalf("k=%d: replayed state differs from rebuilt state", d.Iter)
		}
		if tr.Layer == "" {
			t.Fatalf("k=%d: transition lost its serving layer", d.Iter)
		}
	}
	if replayed == 0 {
		t.Fatal("no decision replayed")
	}
}

func loopConfig(dir string) online.Config {
	return online.Config{
		BufferCap:  128,
		MinSamples: 20,
		Cooldown:   40,
		Epochs:     5,
		ProbeIters: 8,
		ProbeSeed:  31,
		// Probe on two cheap classes; the full set is exercised by the
		// chaos suite itself.
		ProbeClasses:  chaos.Classes()[:2],
		CheckpointDir: dir,
	}
}

// TestLoopRetrainDeterministic: feeding the same audit log to two fresh
// loops produces identical retrain reports and byte-identical candidate
// checkpoints — the promotion decision is a pure function of (agent, log).
func TestLoopRetrainDeterministic(t *testing.T) {
	_, agent := testbed(t)
	mutated, log := serveDriftedLog(t, 70)
	run := func(dir string) []*online.Report {
		loop, err := online.NewLoop(mutated, agent, loopConfig(dir))
		if err != nil {
			t.Fatal(err)
		}
		reports, err := loop.ProcessLog(log)
		if err != nil {
			t.Fatal(err)
		}
		return reports
	}
	d1, d2 := t.TempDir(), t.TempDir()
	r1 := run(d1)
	r2 := run(d2)
	if len(r1) == 0 {
		t.Fatal("drifted log triggered no retrain")
	}
	for i := range r1 {
		a, b := *r1[i], *r2[i]
		a.CheckpointPath, b.CheckpointPath = "", ""
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("retrain %d reports differ:\n%+v\n%+v", i, a, b)
		}
		c1, err := os.ReadFile(r1[i].CheckpointPath)
		if err != nil {
			t.Fatal(err)
		}
		c2, err := os.ReadFile(r2[i].CheckpointPath)
		if err != nil {
			t.Fatal(err)
		}
		if string(c1) != string(c2) {
			t.Fatalf("retrain %d candidate checkpoints differ", i)
		}
		if r1[i].NLLLast >= r1[i].NLLFirst {
			t.Errorf("retrain %d: NLL did not improve (%v -> %v)", i, r1[i].NLLFirst, r1[i].NLLLast)
		}
		if filepath.Dir(r1[i].CheckpointPath) != d1 {
			t.Errorf("checkpoint %q outside requested dir", r1[i].CheckpointPath)
		}
	}
}

// TestLoopRollbackOnRegression: a replay buffer full of stall plans
// trains a candidate that trips the guard's plan gate; the shadow
// evaluation must refuse to promote it and keep the champion.
func TestLoopRollbackOnRegression(t *testing.T) {
	sys, agent := testbed(t)
	cfg := loopConfig("")
	cfg.MinSamples = 24
	cfg.Cooldown = 200 // single retrain at the end of the feed
	cfg.Epochs = 60
	cfg.LR = 5e-2
	promoted := false
	cfg.OnPromote = func(*core.Agent) error { promoted = true; return nil }
	loop, err := online.NewLoop(sys, agent, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Synthesize a drifted log whose expert served nothing but stall
	// plans at the frequency floor.
	floor := make([]float64, sys.N())
	for i, d := range sys.Devices {
		floor[i] = agent.EnvCfg.MinFreqFrac * d.MaxFreqHz
	}
	var report *online.Report
	for k := 0; k < 220 && report == nil; k++ {
		d := guard.Decision{
			Iter: k, Clock: 65 + float64(k)*10, Layer: "heuristic",
			Score: 12, Cost: math.NaN(),
			Plan: append([]float64(nil), floor...),
		}
		if report, err = loop.Ingest(d); err != nil {
			t.Fatal(err)
		}
	}
	if report == nil {
		t.Fatal("stall-plan log triggered no retrain")
	}
	if report.Promoted || promoted {
		t.Fatalf("stall-trained candidate was promoted: %+v", report)
	}
	if loop.Agent() != agent {
		t.Fatal("champion changed despite rollback")
	}
	if !(report.CandidateTrips > report.CurrentTrips || report.CandidateCost > report.CurrentCost) {
		t.Fatalf("rollback without a measured regression: %+v", report)
	}
}

// TestLoopPromotesRecoveredAgent: a poisoned champion whose audit log
// records the fallback's healthy plans must be healed — the candidate
// clones the poisoned actor, imitates the healthy expert, beats the
// champion on the probe and is promoted through the hot-swap hook.
func TestLoopPromotesRecoveredAgent(t *testing.T) {
	sys, agent := testbed(t)
	poisoned, err := chaos.PoisonAgent(agent)
	if err != nil {
		t.Fatal(err)
	}
	// Serve the pristine system with the healthy agent, recording plans:
	// the "expert" log the poisoned champion will learn from.
	g, err := agent.GuardedScheduler(sys, guard.Config{RecordPlans: true}, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sched.Run(sys, g, 65, 60); err != nil {
		t.Fatal(err)
	}
	cfg := loopConfig(t.TempDir())
	cfg.MinSamples = 40
	cfg.Cooldown = 55
	cfg.Epochs = 80
	cfg.LR = 1e-2
	var swapped *core.Agent
	cfg.OnPromote = func(a *core.Agent) error { swapped = a; return nil }
	loop, err := online.NewLoop(sys, poisoned, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var report *online.Report
	for _, d := range g.Audit().Records() {
		d.Score = 12 // drive the loop's gate open; serving scores are clean here
		r, err := loop.Ingest(d)
		if err != nil {
			t.Fatal(err)
		}
		if r != nil {
			report = r
		}
	}
	if report == nil {
		t.Fatal("no retrain triggered")
	}
	if !report.Promoted {
		t.Fatalf("healed candidate not promoted: %+v", report)
	}
	if swapped == nil || loop.Agent() != swapped || loop.Agent() == poisoned {
		t.Fatal("promotion did not hot-swap the champion through OnPromote")
	}
	if !(report.CandidateTrips <= report.CurrentTrips && report.CandidateCost <= report.CurrentCost) {
		t.Fatalf("promotion without equal-or-better probe: %+v", report)
	}
}
