package online

import "math"

// DriftGate decides when the replayed drift statistics justify a retrain.
// It mirrors the guard's serving-side OOD hysteresis exactly — windowed
// mean of per-decision scores, opening above the threshold and re-closing
// only below hysteresis·threshold — but runs over the *parsed* log, so
// the training side reaches the same drift verdict the serving side
// reached, from the audit bytes alone. Unscorable decisions (NaN score:
// OOD layer disabled, or a non-finite state) do not advance the window.
type DriftGate struct {
	threshold  float64
	hysteresis float64

	win  []float64
	pos  int
	n    int
	open bool
}

// NewDriftGate builds a gate (threshold > 0, hysteresis in (0,1],
// window ≥ 1 — mirroring guard.Config's OOD validation).
func NewDriftGate(threshold, hysteresis float64, window int) *DriftGate {
	return &DriftGate{threshold: threshold, hysteresis: hysteresis, win: make([]float64, window)}
}

// Observe folds one score in and returns "open"/"close" on a transition,
// "" otherwise.
func (g *DriftGate) Observe(score float64) string {
	if math.IsNaN(score) {
		return ""
	}
	g.win[g.pos] = score
	g.pos = (g.pos + 1) % len(g.win)
	if g.n < len(g.win) {
		g.n++
	}
	var sum float64
	for i := 0; i < g.n; i++ {
		sum += g.win[i]
	}
	avg := sum / float64(g.n)
	switch {
	case !g.open && avg > g.threshold:
		g.open = true
		return "open"
	case g.open && avg < g.hysteresis*g.threshold:
		g.open = false
		return "close"
	}
	return ""
}

// Open reports whether the gate is currently open (drift sustained).
func (g *DriftGate) Open() bool { return g.open }
