package trace

import (
	"math"
	"sort"
	"sync/atomic"
)

// This file is the indexed trace engine. A Trace lazily builds (and caches)
// a prefix-sum index of cumulative byte volume at sample boundaries, which
// turns the windowed integral of eq. (3) into O(1) arithmetic on two prefix
// lookups, the upload-finish solve into one binary search over the prefix
// array, and slot averages into reads from a memoized per-slot-width table.
// The index is derived state only: it is built deterministically from
// (Interval, Samples), it is dropped by Clone (copy-on-write safety — a
// clone whose samples are then edited re-indexes lazily from its own data),
// and concurrent builds are benign because every builder produces the same
// values and the cache is an atomic pointer swap.
//
// Invariant required of callers: a Trace's Samples must not be mutated after
// the trace is first used. All package transforms (Resample, Slice, Scale,
// Smooth, Concat) already return fresh traces; mutate-after-Clone, the
// pattern the tests use, is safe because Clone never shares the cache.

// maxSlotTableSlots bounds the memoized slot-average table; a slot pattern
// with a longer period is computed directly (still O(1) via the prefix sums).
const maxSlotTableSlots = 1 << 20

// traceIndex is the immutable acceleration structure of one Trace.
type traceIndex struct {
	// prefix[i] is the byte volume over [0, i·Interval); len(Samples)+1
	// entries, monotone non-decreasing, prefix[n] = cycleVol.
	prefix []float64
	// cycleVol is the byte volume of one full replay cycle.
	cycleVol float64
	// slots heads an immutable linked list of per-width slot tables,
	// extended by CAS on first use of a new width.
	slots atomic.Pointer[slotTable]
}

// slotTable memoizes the per-slot bandwidth averages for one slot width h.
// vals[i] is the average of slot i; slot j maps to vals[j mod q]. A nil vals
// records that the width is ineligible (the slot pattern does not repeat
// within maxSlotTableSlots), so the decision is not re-derived per call.
type slotTable struct {
	width float64
	vals  []float64
	next  *slotTable
}

// index returns the trace's acceleration structure, building it on first
// use. Concurrent callers may race to build; every build yields identical
// values, so whichever store wins is equivalent.
func (tr *Trace) index() *traceIndex {
	if ix := tr.idx.Load(); ix != nil && len(ix.prefix) == len(tr.Samples)+1 {
		return ix
	}
	n := len(tr.Samples)
	ix := &traceIndex{prefix: make([]float64, n+1)}
	for i, s := range tr.Samples {
		ix.prefix[i+1] = ix.prefix[i] + s*tr.Interval
	}
	ix.cycleVol = ix.prefix[n]
	tr.idx.Store(ix)
	return ix
}

// locate maps a wall-clock time t ≥ 0 to its position in the cyclic replay:
// the sample index holding t and the within-cycle offset u ∈ [0, d). It is
// the one shared segment lookup behind At, Integrate, UploadFinish and the
// slot averages, including the single float-edge clamp at exactly u = d.
func (tr *Trace) locate(t float64) (idx int, u float64) {
	u = math.Mod(t, tr.Duration())
	idx = int(u / tr.Interval)
	if idx >= len(tr.Samples) { // float edge at exactly one cycle
		idx = len(tr.Samples) - 1
	}
	return idx, u
}

// cum returns the byte volume over [0, u) of one cycle, where (idx, u) came
// from locate. The fractional term is clamped to the sample so float jitter
// in the division can never push the volume outside the segment.
func (ix *traceIndex) cum(tr *Trace, idx int, u float64) float64 {
	frac := u - float64(idx)*tr.Interval
	if frac < 0 {
		frac = 0
	} else if frac > tr.Interval {
		frac = tr.Interval
	}
	return ix.prefix[idx] + tr.Samples[idx]*frac
}

// invCum returns the earliest within-cycle time at which the cumulative
// volume reaches rem ∈ (0, cycleVol], via binary search over the prefix
// array. The found segment necessarily has positive rate: rem > prefix[i]
// and rem ≤ prefix[i+1] together force Samples[i] > 0.
func (ix *traceIndex) invCum(tr *Trace, rem float64) float64 {
	n := len(tr.Samples)
	i := sort.Search(n, func(i int) bool { return ix.prefix[i+1] >= rem })
	if i >= n {
		// rem exceeded cycleVol by float noise; land on the cycle end.
		return tr.Duration()
	}
	return float64(i)*tr.Interval + (rem-ix.prefix[i])/tr.Samples[i]
}

// slotsFor returns the memoized slot table for width h, building it on
// first use, or nil when the width is ineligible for memoization (the slot
// pattern does not repeat every q = d/h slots for an integer q within
// maxSlotTableSlots).
func (ix *traceIndex) slotsFor(tr *Trace, h float64) *slotTable {
	for t := ix.slots.Load(); t != nil; t = t.next {
		if t.width == h {
			if t.vals == nil {
				return nil
			}
			return t
		}
	}
	tbl := &slotTable{width: h}
	d := tr.Duration()
	q := math.Round(d / h)
	if q >= 1 && q <= maxSlotTableSlots && math.Abs(q*h-d) <= 1e-9*d {
		vals := make([]float64, int(q))
		for i := range vals {
			vals[i] = tr.slotDirect(i, h)
		}
		tbl.vals = vals
	}
	for {
		head := ix.slots.Load()
		// Another goroutine may have installed the same width meanwhile.
		for t := head; t != nil; t = t.next {
			if t.width == h {
				if t.vals == nil {
					return nil
				}
				return t
			}
		}
		tbl.next = head
		if ix.slots.CompareAndSwap(head, tbl) {
			if tbl.vals == nil {
				return nil
			}
			return tbl
		}
	}
}
