package trace

import (
	"fmt"
	"math"
)

// Resample returns a new trace with the given sample interval whose
// piecewise-constant value at each new sample is the volume-preserving
// average of the original over that interval. Useful for aligning real
// datasets with different logging rates to the simulator's clock.
func (tr *Trace) Resample(interval float64) (*Trace, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("trace %q: resample interval %v must be positive", tr.Name, interval)
	}
	d := tr.Duration()
	n := int(math.Round(d / interval))
	if n < 1 {
		n = 1
	}
	samples := make([]float64, n)
	for i := 0; i < n; i++ {
		t0 := float64(i) * interval
		t1 := t0 + interval
		if t1 > d {
			t1 = d
		}
		if t1 <= t0 {
			samples[i] = tr.At(t0)
			continue
		}
		samples[i] = tr.Integrate(t0, t1) / (t1 - t0)
	}
	return New(tr.Name, interval, samples)
}

// Slice returns the sub-trace covering [t0, t1) of one replay cycle,
// sampled at the original interval. Bounds are clamped to the cycle.
func (tr *Trace) Slice(t0, t1 float64) (*Trace, error) {
	if t1 <= t0 {
		return nil, fmt.Errorf("trace %q: empty slice [%v, %v)", tr.Name, t0, t1)
	}
	d := tr.Duration()
	if t0 < 0 {
		t0 = 0
	}
	if t1 > d {
		t1 = d
	}
	i0 := int(t0 / tr.Interval)
	i1 := int(math.Ceil(t1 / tr.Interval))
	if i1 > len(tr.Samples) {
		i1 = len(tr.Samples)
	}
	if i1 <= i0 {
		return nil, fmt.Errorf("trace %q: slice [%v, %v) selects no samples", tr.Name, t0, t1)
	}
	return New(fmt.Sprintf("%s[%g:%g]", tr.Name, t0, t1), tr.Interval,
		append([]float64(nil), tr.Samples[i0:i1]...))
}

// Concat joins traces with identical sample intervals into one.
func Concat(name string, traces ...*Trace) (*Trace, error) {
	if len(traces) == 0 {
		return nil, fmt.Errorf("trace: Concat of nothing")
	}
	interval := traces[0].Interval
	var samples []float64
	for i, t := range traces {
		if t == nil {
			return nil, fmt.Errorf("trace: Concat argument %d is nil", i)
		}
		if t.Interval != interval {
			return nil, fmt.Errorf("trace: Concat interval mismatch: %v vs %v", t.Interval, interval)
		}
		samples = append(samples, t.Samples...)
	}
	return New(name, interval, samples)
}

// Scale returns a copy with every sample multiplied by factor ≥ 0 — handy
// for deriving "slower route" variants of a measured trace.
func (tr *Trace) Scale(factor float64) (*Trace, error) {
	if factor < 0 || math.IsNaN(factor) || math.IsInf(factor, 0) {
		return nil, fmt.Errorf("trace %q: invalid scale factor %v", tr.Name, factor)
	}
	samples := make([]float64, len(tr.Samples))
	for i, s := range tr.Samples {
		samples[i] = s * factor
	}
	return New(tr.Name, tr.Interval, samples)
}

// Smooth returns a copy with a trailing moving-average filter of the given
// window (in samples), preserving the mean level while damping jitter.
func (tr *Trace) Smooth(window int) (*Trace, error) {
	if window <= 0 {
		return nil, fmt.Errorf("trace %q: smoothing window %d must be positive", tr.Name, window)
	}
	samples := make([]float64, len(tr.Samples))
	var sum float64
	for i, s := range tr.Samples {
		sum += s
		if i >= window {
			sum -= tr.Samples[i-window]
			samples[i] = sum / float64(window)
		} else {
			samples[i] = sum / float64(i+1)
		}
	}
	return New(tr.Name, tr.Interval, samples)
}
