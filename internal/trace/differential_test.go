package trace

import (
	"math"
	"math/rand"
	"testing"
)

// This file pins the indexed engine (index.go) to the legacy segment walker
// it replaced. The implementations below reproduce the pre-index
// At/Integrate/UploadFinish/Slot semantics by walking segments, kept only as
// test oracles: every query the simulator performs is checked against them
// within 1e-9 relative tolerance across random traces, windows spanning
// multiple replay cycles, and zero-bandwidth outages.

// legacyAt is the pre-index Trace.At.
func legacyAt(tr *Trace, t float64) float64 {
	if t < 0 {
		t = 0
	}
	d := tr.Duration()
	t = math.Mod(t, d)
	idx := int(t / tr.Interval)
	if idx >= len(tr.Samples) {
		idx = len(tr.Samples) - 1
	}
	return tr.Samples[idx]
}

// legacyIntegrate is the pre-index Trace.Integrate: walk segment by segment
// within a cycle, with whole cycles batched through the summed volume.
func legacyIntegrate(tr *Trace, t0, t1 float64) float64 {
	if t1 < t0 {
		t0, t1 = t1, t0
	}
	if t0 < 0 {
		t0 = 0
	}
	if t1 <= t0 {
		return 0
	}
	d := tr.Duration()
	var cycleVol float64
	for _, s := range tr.Samples {
		cycleVol += s * tr.Interval
	}
	var total float64
	// Whole replay cycles inside the window.
	if span := t1 - t0; span >= d {
		cycles := math.Floor(span / d)
		total += cycles * cycleVol
		t0 += cycles * d
	}
	// Walk the remaining partial window segment by segment.
	for t0 < t1 {
		u := math.Mod(t0, d)
		idx := int(u / tr.Interval)
		if idx >= len(tr.Samples) {
			idx = len(tr.Samples) - 1
		}
		segEnd := t0 + (float64(idx+1)*tr.Interval - u)
		if segEnd > t1 {
			segEnd = t1
		}
		if segEnd <= t0 {
			segEnd = math.Nextafter(t0, math.Inf(1))
		}
		total += tr.Samples[idx] * (segEnd - t0)
		t0 = segEnd
	}
	return total
}

// legacyUploadFinish is the pre-index Trace.UploadFinish: walk segments
// accumulating volume until `bytes` have moved, finishing only inside a
// segment with positive rate.
func legacyUploadFinish(tr *Trace, t0, bytes float64) (float64, bool) {
	if bytes <= 0 {
		return t0, true
	}
	if t0 < 0 {
		t0 = 0
	}
	d := tr.Duration()
	var cycleVol float64
	for _, s := range tr.Samples {
		cycleVol += s * tr.Interval
	}
	if cycleVol <= 0 {
		return 0, false
	}
	// Skip whole cycles first so the walk below stays bounded.
	if cycles := math.Floor(bytes / cycleVol); cycles > 0 {
		// Conservative: back off one cycle so the walk never overshoots.
		skip := cycles - 1
		if skip > 0 {
			bytes -= skip * cycleVol
			t0 += skip * d
		}
	}
	t := t0
	remaining := bytes
	for {
		u := math.Mod(t, d)
		idx := int(u / tr.Interval)
		if idx >= len(tr.Samples) {
			idx = len(tr.Samples) - 1
		}
		segEnd := t + (float64(idx+1)*tr.Interval - u)
		if segEnd <= t {
			segEnd = math.Nextafter(t, math.Inf(1))
		}
		rate := tr.Samples[idx]
		vol := rate * (segEnd - t)
		if rate > 0 && vol >= remaining {
			return t + remaining/rate, true
		}
		remaining -= vol
		t = segEnd
	}
}

// legacySlot is the pre-index Trace.Slot, defined via legacyIntegrate.
func legacySlot(tr *Trace, j int, h float64) float64 {
	d := tr.Duration()
	start := math.Mod(float64(j)*h, d)
	if start < 0 {
		start += d
	}
	if h <= 0 {
		panic("trace: non-positive slot width")
	}
	return legacyIntegrate(tr, start, start+h) / h
}

// relClose reports |a-b| ≤ tol·max(1, |a|, |b|).
func relClose(a, b, tol float64) bool {
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}

// randomTrace draws a trace with volatile rates and explicit outage runs —
// including, occasionally, a leading outage (the firstPosTime edge).
func randomTrace(rng *rand.Rand, n int) *Trace {
	samples := make([]float64, n)
	for i := 0; i < n; {
		if rng.Float64() < 0.15 { // outage run
			for run := 1 + rng.Intn(4); run > 0 && i < n; run-- {
				samples[i] = 0
				i++
			}
			continue
		}
		samples[i] = rng.Float64() * 5e6
		i++
	}
	interval := []float64{0.25, 0.5, 1, 2}[rng.Intn(4)]
	return MustNew("diff", interval, samples)
}

func TestDifferentialIntegrate(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		tr := randomTrace(rng, 2+rng.Intn(60))
		d := tr.Duration()
		for q := 0; q < 50; q++ {
			t0 := rng.Float64() * 3 * d
			// Mix short windows, cycle-boundary-straddling windows, and
			// windows spanning several replay cycles.
			span := []float64{rng.Float64() * tr.Interval, rng.Float64() * d, (1 + 4*rng.Float64()) * d}[q%3]
			got := tr.Integrate(t0, t0+span)
			want := legacyIntegrate(tr, t0, t0+span)
			if !relClose(got, want, 1e-9) {
				t.Fatalf("trial %d: Integrate(%v, %v) = %v, legacy %v (interval %v, n %d)",
					trial, t0, t0+span, got, want, tr.Interval, len(tr.Samples))
			}
		}
	}
}

func TestDifferentialAt(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 200; trial++ {
		tr := randomTrace(rng, 2+rng.Intn(60))
		d := tr.Duration()
		for q := 0; q < 50; q++ {
			at := rng.Float64() * 3 * d
			if got, want := tr.At(at), legacyAt(tr, at); got != want {
				t.Fatalf("trial %d: At(%v) = %v, legacy %v", trial, at, got, want)
			}
		}
	}
}

func TestDifferentialUploadFinish(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 200; trial++ {
		tr := randomTrace(rng, 2+rng.Intn(60))
		d := tr.Duration()
		vol := tr.Integrate(0, d)
		if vol <= 0 {
			if _, err := tr.UploadFinish(0, 1); err == nil {
				t.Fatalf("trial %d: all-outage trace must refuse uploads", trial)
			}
			continue
		}
		for q := 0; q < 30; q++ {
			t0 := rng.Float64() * 3 * d
			// Sub-cycle, cycle-scale, and many-cycle uploads.
			bytes := []float64{rng.Float64() * vol * 0.5, (0.5 + rng.Float64()) * vol, (1 + 30*rng.Float64()) * vol}[q%3]
			got, err := tr.UploadFinish(t0, bytes)
			if err != nil {
				t.Fatalf("trial %d: UploadFinish: %v", trial, err)
			}
			want, ok := legacyUploadFinish(tr, t0, bytes)
			if !ok {
				t.Fatalf("trial %d: legacy walker refused a finishable upload", trial)
			}
			// Compare relative to the elapsed time, not the absolute clock.
			if !relClose(got-t0, want-t0, 1e-9) && !relClose(got, want, 1e-9) {
				t.Fatalf("trial %d: UploadFinish(%v, %v) = %v, legacy %v", trial, t0, bytes, got, want)
			}
		}
	}
}

func TestDifferentialSlotAndHistory(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for trial := 0; trial < 100; trial++ {
		tr := randomTrace(rng, 2+rng.Intn(60))
		d := tr.Duration()
		// Widths that divide the cycle exactly (memoized table) and widths
		// that do not (direct path).
		widths := []float64{tr.Interval, d / 4, d, 1.37 * tr.Interval, d / 3.1}
		for _, h := range widths {
			for q := 0; q < 20; q++ {
				j := rng.Intn(200) - 100
				got, want := tr.Slot(j, h), legacySlot(tr, j, h)
				if !relClose(got, want, 1e-9) {
					t.Fatalf("trial %d: Slot(%d, %v) = %v, legacy %v", trial, j, h, got, want)
				}
			}
			at := rng.Float64() * 3 * d
			hist := tr.History(at, h, 5)
			j := int(math.Floor(at / h))
			for k, got := range hist {
				if want := legacySlot(tr, j-k, h); !relClose(got, want, 1e-9) {
					t.Fatalf("trial %d: History[%d] at t=%v h=%v: %v, legacy %v", trial, k, at, h, got, want)
				}
			}
		}
	}
}

// TestDifferentialLeadingOutage pins the firstPosTime edge: an upload whose
// volume is an exact multiple of the cycle volume on a trace that opens
// with an outage must finish at the first positive-rate instant of the next
// cycle, exactly as the legacy walker's skip-zero-segments behavior.
func TestDifferentialLeadingOutage(t *testing.T) {
	tr := MustNew("lead", 1, []float64{0, 0, 1e6, 0, 1e6})
	vol := tr.Integrate(0, tr.Duration())
	for _, cycles := range []float64{1, 2, 7} {
		got, err := tr.UploadFinish(0, cycles*vol)
		if err != nil {
			t.Fatal(err)
		}
		want, ok := legacyUploadFinish(tr, 0, cycles*vol)
		if !ok {
			t.Fatal("legacy refused")
		}
		if !relClose(got, want, 1e-9) {
			t.Fatalf("UploadFinish(0, %v cycles) = %v, legacy %v", cycles, got, want)
		}
	}
}

// TestCloneDropsIndex verifies the copy-on-write contract: mutating a
// clone's samples (the pattern transform tests rely on) must never read the
// original's cached index, and vice versa.
func TestCloneDropsIndex(t *testing.T) {
	tr := MustNew("cow", 1, []float64{1e6, 2e6, 3e6})
	if got := tr.Integrate(0, 3); !relClose(got, 6e6, 1e-12) {
		t.Fatalf("warmup integral %v", got)
	}
	cl := tr.Clone()
	for i := range cl.Samples {
		cl.Samples[i] = 10e6
	}
	if got := cl.Integrate(0, 3); !relClose(got, 30e6, 1e-12) {
		t.Fatalf("clone integral %v, want 30e6 (stale shared index?)", got)
	}
	if got := tr.Integrate(0, 3); !relClose(got, 6e6, 1e-12) {
		t.Fatalf("original integral %v changed after clone edit", got)
	}
}
