package trace

import (
	"math/rand"
	"testing"
)

// benchTrace builds a volatile 3000-sample trace (1 s interval, ~50 min of
// replay) with outage runs, shaped like the generated 4G traces the
// simulator replays: the worst case for the legacy segment walker and the
// representative case for the prefix-sum index.
func benchTrace(seed int64) *Trace {
	rng := rand.New(rand.NewSource(seed))
	samples := make([]float64, 3000)
	for i := 0; i < len(samples); {
		if rng.Float64() < 0.05 { // outage run
			for run := 1 + rng.Intn(5); run > 0 && i < len(samples); run-- {
				samples[i] = 0
				i++
			}
			continue
		}
		samples[i] = 5e5 + rng.Float64()*4.5e6
		i++
	}
	return MustNew("bench", 1, samples)
}

// BenchmarkTraceIntegrate measures the windowed integral (eq. 3) over a
// slot-sized window — the state-construction workhorse (H+1 calls per
// device per step).
func BenchmarkTraceIntegrate(b *testing.B) {
	tr := benchTrace(1)
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := float64(i%2900) * 1.03
		sink += tr.Integrate(t0, t0+10)
	}
	_ = sink
}

// BenchmarkTraceIntegrateMultiCycle measures the integral over a window
// spanning several replay cycles.
func BenchmarkTraceIntegrateMultiCycle(b *testing.B) {
	tr := benchTrace(1)
	d := tr.Duration()
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := float64(i%100) * 1.7
		sink += tr.Integrate(t0, t0+3.5*d)
	}
	_ = sink
}

// BenchmarkUploadFinish measures the upload-completion solver for a short
// upload (a fraction of one replay cycle) — the per-device cost of every
// synchronous FL iteration.
func BenchmarkUploadFinish(b *testing.B) {
	tr := benchTrace(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.UploadFinish(float64(i%2900)*1.03, 25e6); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUploadFinishManyCycles measures the solver when the upload spans
// hundreds of replay cycles — the regime where the legacy walker had to
// fall back to walking whole cycles segment by segment.
func BenchmarkUploadFinishManyCycles(b *testing.B) {
	tr := benchTrace(1)
	vol := tr.Integrate(0, tr.Duration()) * 300.25
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.UploadFinish(float64(i%2900)*1.03, vol); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceSlot measures one slot average at the paper's h = 10 s.
func BenchmarkTraceSlot(b *testing.B) {
	tr := benchTrace(1)
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += tr.Slot(i%600, 10)
	}
	_ = sink
}

// BenchmarkTraceHistory measures the H+1 slot-average state block of one
// device (h = 10 s, H = 5), the per-device share of BuildState.
func BenchmarkTraceHistory(b *testing.B) {
	tr := benchTrace(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.History(float64(i%2900)*1.03, 10, 5)
	}
}
