package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
)

// WriteCSV writes the trace as rows of "time_s,bandwidth_Bps" with a header.
func (tr *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_s", "bandwidth_Bps"}); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for i, s := range tr.Samples {
		t := float64(i) * tr.Interval
		rec := []string{
			strconv.FormatFloat(t, 'g', -1, 64),
			strconv.FormatFloat(s, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: write row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// timestampTolerance is the allowed relative drift between consecutive
// timestamp gaps and the inferred sample interval. Real exports carry
// float formatting jitter; anything beyond 0.1% means the file is not
// uniformly sampled and the fixed-interval Trace model would misplace it.
const timestampTolerance = 1e-3

// ReadCSV parses a trace written by WriteCSV (or a real-world dataset
// exported to the same two-column format). The sample interval is inferred
// from the first two timestamps and every subsequent gap must match it:
// timestamps must be finite, non-negative, strictly increasing and
// uniformly spaced (within a 0.1% tolerance), or the trace is rejected
// with the offending row. A single-row file defaults to a 1 s interval.
func ReadCSV(name string, r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace %q: parse CSV: %w", name, err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("trace %q: %w", name, ErrEmptyTrace)
	}
	// Skip a header row if the first field is not numeric.
	start := 0
	if _, err := strconv.ParseFloat(rows[0][0], 64); err != nil {
		start = 1
	}
	if len(rows) <= start {
		return nil, fmt.Errorf("trace %q: %w", name, ErrEmptyTrace)
	}
	var times, samples []float64
	for i := start; i < len(rows); i++ {
		t, err := strconv.ParseFloat(rows[i][0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace %q: row %d time: %w", name, i, err)
		}
		if math.IsNaN(t) || math.IsInf(t, 0) {
			return nil, fmt.Errorf("trace %q: row %d time %v is not finite", name, i, t)
		}
		if t < 0 {
			return nil, fmt.Errorf("trace %q: row %d negative time %v", name, i, t)
		}
		b, err := strconv.ParseFloat(rows[i][1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace %q: row %d bandwidth: %w", name, i, err)
		}
		times = append(times, t)
		samples = append(samples, b)
	}
	interval := 1.0
	if len(times) >= 2 {
		interval = times[1] - times[0]
		if interval <= 0 {
			return nil, fmt.Errorf("trace %q: non-increasing timestamps at row %d (%v after %v)", name, start+1, times[1], times[0])
		}
		for i := 2; i < len(times); i++ {
			gap := times[i] - times[i-1]
			if gap <= 0 {
				return nil, fmt.Errorf("trace %q: non-increasing timestamps at row %d (%v after %v)", name, start+i, times[i], times[i-1])
			}
			if math.Abs(gap-interval) > timestampTolerance*interval {
				return nil, fmt.Errorf("trace %q: non-uniform sampling at row %d: gap %v, expected interval %v", name, start+i, gap, interval)
			}
		}
	}
	return New(name, interval, samples)
}

// LoadCSVFile reads a trace from a CSV file on disk.
func LoadCSVFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	return ReadCSV(path, f)
}

// SaveCSVFile writes the trace to a CSV file on disk.
func (tr *Trace) SaveCSVFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if err := tr.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
