package trace

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewValidation(t *testing.T) {
	if _, err := New("x", 0, []float64{1}); err == nil {
		t.Fatal("zero interval accepted")
	}
	if _, err := New("x", 1, nil); err == nil {
		t.Fatal("empty samples accepted")
	}
	if _, err := New("x", 1, []float64{-1}); err == nil {
		t.Fatal("negative sample accepted")
	}
	if _, err := New("x", 1, []float64{math.NaN()}); err == nil {
		t.Fatal("NaN sample accepted")
	}
	if _, err := New("x", 1, []float64{1, 2}); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew should panic on invalid input")
		}
	}()
	MustNew("bad", -1, []float64{1})
}

func TestAtCyclic(t *testing.T) {
	tr := MustNew("t", 1, []float64{10, 20, 30})
	cases := []struct{ t, want float64 }{
		{0, 10}, {0.5, 10}, {1, 20}, {2.9, 30},
		{3, 10}, {4.5, 20}, {-5, 10},
	}
	for _, c := range cases {
		if got := tr.At(c.t); got != c.want {
			t.Errorf("At(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestIntegrateKnown(t *testing.T) {
	tr := MustNew("t", 1, []float64{10, 20, 30})
	cases := []struct{ t0, t1, want float64 }{
		{0, 1, 10},
		{0, 3, 60},
		{0.5, 1.5, 5 + 10},
		{0, 6, 120},        // two cycles
		{2.5, 3.5, 15 + 5}, // wrap
		{1, 1, 0},
		{2, 1, 20}, // swapped bounds behave as [1,2]
	}
	for _, c := range cases {
		if got := tr.Integrate(c.t0, c.t1); !approx(got, c.want, 1e-9) {
			t.Errorf("Integrate(%v,%v) = %v, want %v", c.t0, c.t1, got, c.want)
		}
	}
}

func TestIntegrateAdditivityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	samples := make([]float64, 37)
	for i := range samples {
		samples[i] = rng.Float64() * 1e6
	}
	tr := MustNew("p", 0.7, samples)
	f := func(a, b, c uint16) bool {
		t0 := float64(a) * 0.013
		t1 := t0 + float64(b)*0.017
		t2 := t1 + float64(c)*0.019
		whole := tr.Integrate(t0, t2)
		split := tr.Integrate(t0, t1) + tr.Integrate(t1, t2)
		return approx(whole, split, 1e-6*(1+whole))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAverage(t *testing.T) {
	tr := MustNew("t", 1, []float64{10, 30})
	if got := tr.Average(0, 2); !approx(got, 20, 1e-12) {
		t.Fatalf("Average = %v", got)
	}
	// Empty window falls back to the instantaneous value.
	if got := tr.Average(1.5, 1.5); got != 30 {
		t.Fatalf("empty-window Average = %v", got)
	}
}

func TestUploadFinishInverseOfIntegrate(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	samples := make([]float64, 23)
	for i := range samples {
		samples[i] = 1e5 + rng.Float64()*9e5
	}
	tr := MustNew("u", 1.3, samples)
	f := func(a uint16, volScale uint8) bool {
		t0 := float64(a) * 0.11
		vol := (1 + float64(volScale)) * 5e4
		tf, err := tr.UploadFinish(t0, vol)
		if err != nil {
			return false
		}
		got := tr.Integrate(t0, tf)
		return approx(got, vol, 1e-6*vol) && tf >= t0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestUploadFinishAcrossOutage(t *testing.T) {
	// 1 MB at 1 MB/s for 1 s, then a 3 s outage, then 1 MB/s again.
	tr := MustNew("o", 1, []float64{1e6, 0, 0, 0, 1e6})
	tf, err := tr.UploadFinish(0, 1.5e6)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(tf, 4.5, 1e-9) {
		t.Fatalf("UploadFinish through outage = %v, want 4.5", tf)
	}
}

func TestUploadFinishZeroTrace(t *testing.T) {
	tr := MustNew("z", 1, []float64{0, 0})
	if _, err := tr.UploadFinish(0, 1); err == nil {
		t.Fatal("upload on all-zero trace should error")
	}
	// Zero bytes finish instantly even on a dead link.
	tf, err := tr.UploadFinish(5, 0)
	if err != nil || tf != 5 {
		t.Fatalf("zero-byte upload: %v, %v", tf, err)
	}
}

func TestUploadFinishManyCycles(t *testing.T) {
	tr := MustNew("c", 1, []float64{100})
	tf, err := tr.UploadFinish(2, 100*1000)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(tf, 1002, 1e-6) {
		t.Fatalf("UploadFinish = %v, want 1002", tf)
	}
}

func TestSlotAndHistory(t *testing.T) {
	tr := MustNew("s", 1, []float64{10, 20, 30, 40})
	// Slot width 2 s: slot 0 = avg(10,20) = 15, slot 1 = avg(30,40) = 35.
	if got := tr.Slot(0, 2); !approx(got, 15, 1e-12) {
		t.Fatalf("Slot(0) = %v", got)
	}
	if got := tr.Slot(1, 2); !approx(got, 35, 1e-12) {
		t.Fatalf("Slot(1) = %v", got)
	}
	// Negative slots wrap cyclically: slot -1 ≡ slot 1.
	if got := tr.Slot(-1, 2); !approx(got, 35, 1e-12) {
		t.Fatalf("Slot(-1) = %v", got)
	}
	h := tr.History(3.5, 2, 2) // t in slot 1
	want := []float64{35, 15, 35}
	for i := range want {
		if !approx(h[i], want[i], 1e-12) {
			t.Fatalf("History = %v, want %v", h, want)
		}
	}
	if len(tr.History(0, 2, 0)) != 1 {
		t.Fatal("History with H=0 should have one entry")
	}
}

func TestSlotPanics(t *testing.T) {
	tr := MustNew("s", 1, []float64{1})
	for name, f := range map[string]func(){
		"zero width": func() { tr.Slot(0, 0) },
		"negative H": func() { tr.History(0, 1, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSummary(t *testing.T) {
	tr := MustNew("sum", 1, []float64{2, 4, 6, 8})
	s := tr.Summary()
	if s.Min != 2 || s.Max != 8 || !approx(s.Mean, 5, 1e-12) {
		t.Fatalf("Summary = %+v", s)
	}
	wantStd := math.Sqrt((9 + 1 + 1 + 9) / 4.0)
	if !approx(s.Std, wantStd, 1e-12) {
		t.Fatalf("Std = %v want %v", s.Std, wantStd)
	}
}

func TestCloneIndependent(t *testing.T) {
	tr := MustNew("c", 1, []float64{1, 2})
	c := tr.Clone()
	c.Samples[0] = 99
	if tr.Samples[0] != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := MustNew("rt", 0.5, []float64{1.5, 2.25, 0, 9.125})
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("rt", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Interval != tr.Interval {
		t.Fatalf("interval %v != %v", back.Interval, tr.Interval)
	}
	for i := range tr.Samples {
		if back.Samples[i] != tr.Samples[i] {
			t.Fatalf("sample %d: %v != %v", i, back.Samples[i], tr.Samples[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":                "",
		"header only":          "time_s,bandwidth_Bps\n",
		"bad time":             "abc,1\nxyz,2\n",
		"bad bandwidth":        "0,one\n1,two\n",
		"non-increasing":       "1,5\n1,6\n",
		"negative bw":          "0,-5\n1,6\n",
		"nan time":             "NaN,5\n1,6\n",
		"inf time":             "0,5\n+Inf,6\n",
		"negative time":        "-1,5\n0,6\n",
		"decreasing later row": "0,5\n1,6\n0.5,7\n",
		"repeated later row":   "0,5\n1,6\n1,7\n",
		"non-uniform spacing":  "0,5\n1,6\n3,7\n",
		"drifting interval":    "0,5\n1,6\n2,7\n3.5,8\n",
	}
	for name, data := range cases {
		if _, err := ReadCSV(name, strings.NewReader(data)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	// Single data row defaults to 1 s interval.
	tr, err := ReadCSV("one", strings.NewReader("0,42\n"))
	if err != nil || tr.Interval != 1 || tr.Samples[0] != 42 {
		t.Fatalf("single-row parse: %v %v", tr, err)
	}
	// Sub-tolerance float jitter in the timestamps must not reject a
	// uniformly sampled export.
	tr, err = ReadCSV("jitter", strings.NewReader("0,1\n0.5,2\n1.0000001,3\n1.5,4\n"))
	if err != nil || tr.Interval != 0.5 || len(tr.Samples) != 4 {
		t.Fatalf("jittered parse: %v %v", tr, err)
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/trace.csv"
	tr := MustNew("f", 1, []float64{3, 1, 4})
	if err := tr.SaveCSVFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCSVFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Samples) != 3 || back.Samples[2] != 4 {
		t.Fatalf("loaded %v", back.Samples)
	}
	if _, err := LoadCSVFile(dir + "/missing.csv"); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestDurationAndVolume(t *testing.T) {
	tr := MustNew("d", 2, []float64{5, 10})
	if tr.Duration() != 4 {
		t.Fatalf("Duration = %v", tr.Duration())
	}
	if got := tr.Integrate(0, 4); !approx(got, 30, 1e-12) {
		t.Fatalf("cycle volume = %v", got)
	}
}
