package trace

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestResampleVolumePreserving(t *testing.T) {
	tr := MustNew("r", 1, []float64{10, 20, 30, 40})
	// Down to 2 s intervals: averages of pairs.
	down, err := tr.Resample(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(down.Samples) != 2 || down.Samples[0] != 15 || down.Samples[1] != 35 {
		t.Fatalf("downsampled = %v", down.Samples)
	}
	// Total volume preserved exactly.
	if got, want := down.Integrate(0, 4), tr.Integrate(0, 4); math.Abs(got-want) > 1e-9 {
		t.Fatalf("volume %v != %v", got, want)
	}
	// Up to 0.5 s: each original sample split in two.
	up, err := tr.Resample(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(up.Samples) != 8 || up.Samples[0] != 10 || up.Samples[1] != 10 {
		t.Fatalf("upsampled = %v", up.Samples)
	}
}

func TestResampleVolumeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	samples := make([]float64, 60)
	for i := range samples {
		samples[i] = rng.Float64() * 1e6
	}
	tr := MustNew("p", 1, samples)
	f := func(k uint8) bool {
		interval := 0.5 + float64(k%20)*0.5
		rs, err := tr.Resample(interval)
		if err != nil {
			return false
		}
		want := tr.Integrate(0, tr.Duration())
		got := rs.Integrate(0, rs.Duration())
		// Durations can differ by a partial tail interval; compare rates.
		return math.Abs(got/rs.Duration()-want/tr.Duration()) < 0.02*(want/tr.Duration())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestResampleErrors(t *testing.T) {
	tr := MustNew("r", 1, []float64{1})
	if _, err := tr.Resample(0); err == nil {
		t.Fatal("zero interval accepted")
	}
	// Interval longer than the trace collapses to one sample.
	one, err := tr.Resample(10)
	if err != nil || len(one.Samples) != 1 {
		t.Fatalf("collapse: %v %v", one, err)
	}
}

func TestSlice(t *testing.T) {
	tr := MustNew("s", 1, []float64{1, 2, 3, 4, 5})
	sub, err := tr.Slice(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Samples) != 3 || sub.Samples[0] != 2 || sub.Samples[2] != 4 {
		t.Fatalf("slice = %v", sub.Samples)
	}
	// Clamped bounds.
	all, err := tr.Slice(-5, 100)
	if err != nil || len(all.Samples) != 5 {
		t.Fatalf("clamped slice = %v %v", all, err)
	}
	if _, err := tr.Slice(3, 3); err == nil {
		t.Fatal("empty slice accepted")
	}
	// Mutating the slice must not touch the original.
	sub.Samples[0] = 99
	if tr.Samples[1] != 2 {
		t.Fatal("slice shares storage")
	}
}

func TestConcat(t *testing.T) {
	a := MustNew("a", 1, []float64{1, 2})
	b := MustNew("b", 1, []float64{3})
	c, err := Concat("ab", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Samples) != 3 || c.Samples[2] != 3 || c.Name != "ab" {
		t.Fatalf("concat = %+v", c)
	}
	if _, err := Concat("x"); err == nil {
		t.Fatal("empty concat accepted")
	}
	if _, err := Concat("x", a, nil); err == nil {
		t.Fatal("nil trace accepted")
	}
	mis := MustNew("m", 2, []float64{1})
	if _, err := Concat("x", a, mis); err == nil {
		t.Fatal("interval mismatch accepted")
	}
}

func TestScale(t *testing.T) {
	tr := MustNew("sc", 1, []float64{2, 4})
	half, err := tr.Scale(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if half.Samples[0] != 1 || half.Samples[1] != 2 {
		t.Fatalf("scaled = %v", half.Samples)
	}
	if tr.Samples[0] != 2 {
		t.Fatal("Scale mutated original")
	}
	if _, err := tr.Scale(-1); err == nil {
		t.Fatal("negative factor accepted")
	}
	if _, err := tr.Scale(math.NaN()); err == nil {
		t.Fatal("NaN factor accepted")
	}
}

func TestSmooth(t *testing.T) {
	tr := MustNew("sm", 1, []float64{0, 10, 0, 10, 0, 10})
	sm, err := tr.Smooth(2)
	if err != nil {
		t.Fatal(err)
	}
	// After warmup every sample is the average of the last two: 5.
	for i := 2; i < len(sm.Samples); i++ {
		if sm.Samples[i] != 5 {
			t.Fatalf("smoothed[%d] = %v", i, sm.Samples[i])
		}
	}
	// Mean preserved approximately.
	if math.Abs(sm.Summary().Mean-tr.Summary().Mean) > 1.5 {
		t.Fatalf("mean drifted: %v vs %v", sm.Summary().Mean, tr.Summary().Mean)
	}
	if _, err := tr.Smooth(0); err == nil {
		t.Fatal("zero window accepted")
	}
	// Window 1 is the identity.
	id, _ := tr.Smooth(1)
	for i := range id.Samples {
		if id.Samples[i] != tr.Samples[i] {
			t.Fatal("window 1 changed samples")
		}
	}
}
