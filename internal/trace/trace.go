// Package trace models time-varying uplink bandwidth as piecewise-constant
// functions of time, the substrate behind the paper's eq. (3): the effective
// transmission speed of an upload is the time-average of the trace over the
// actual upload window, so finishing an upload means integrating the trace
// until the model's ξ bits have moved.
//
// A Trace is a sequence of samples at a fixed interval; bandwidth is in
// bytes/second and held constant within each interval. Traces are replayed
// cyclically, matching the paper's methodology of training/evaluating against
// replayed real-world 4G/HSDPA measurements.
package trace

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
)

// Trace is a piecewise-constant bandwidth function: Samples[i] is the
// bandwidth in bytes/second during [i·Interval, (i+1)·Interval). Replay is
// cyclic, so the trace is defined for all t ≥ 0.
//
// Samples must not be mutated once the trace is in use: query methods
// lazily build and cache a prefix-sum index over the samples (see index.go)
// that would go stale. Derive modified traces with Clone (which never
// shares the cache) or the transforms in transform.go instead.
type Trace struct {
	// Name identifies the trace (e.g. "walking-4g-03").
	Name string
	// Interval is the sample spacing in seconds (> 0).
	Interval float64
	// Samples holds bandwidth values in bytes/second (≥ 0).
	Samples []float64

	// idx caches the lazily built acceleration index (see index.go).
	idx atomic.Pointer[traceIndex]
}

// ErrEmptyTrace is returned when an operation requires at least one sample.
var ErrEmptyTrace = errors.New("trace: empty trace")

// New validates and constructs a trace.
func New(name string, interval float64, samples []float64) (*Trace, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("trace %q: interval %v must be positive", name, interval)
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("trace %q: %w", name, ErrEmptyTrace)
	}
	for i, s := range samples {
		if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
			return nil, fmt.Errorf("trace %q: sample %d = %v is invalid", name, i, s)
		}
	}
	return &Trace{Name: name, Interval: interval, Samples: samples}, nil
}

// MustNew is New, panicking on error; intended for tests and literals.
func MustNew(name string, interval float64, samples []float64) *Trace {
	tr, err := New(name, interval, samples)
	if err != nil {
		panic(err)
	}
	return tr
}

// Duration returns the length of one replay cycle in seconds.
func (tr *Trace) Duration() float64 {
	return float64(len(tr.Samples)) * tr.Interval
}

// At returns the bandwidth at time t (seconds), replaying cyclically.
// Negative t is treated as 0.
func (tr *Trace) At(t float64) float64 {
	if t < 0 {
		t = 0
	}
	idx, _ := tr.locate(t)
	return tr.Samples[idx]
}

// Integrate returns the number of bytes transferred over [t0, t1]
// (∫ B(t) dt), handling cyclic replay and partial intervals exactly. With
// the prefix-sum index the cost is O(1) regardless of window length: the
// cumulative volume at each endpoint is a prefix lookup plus a fractional
// segment, and whole replay cycles contribute an exact multiple of the
// per-cycle volume.
func (tr *Trace) Integrate(t0, t1 float64) float64 {
	if t1 < t0 {
		t0, t1 = t1, t0
	}
	if t0 < 0 {
		t0 = 0
	}
	if t1 <= t0 {
		return 0
	}
	ix := tr.index()
	d := tr.Duration()
	i0, u0 := tr.locate(t0)
	i1, u1 := tr.locate(t1)
	// (t - u) is an exact whole number of cycles; Round recovers the count
	// without the drift a bare Floor(t/d) picks up on large clocks.
	k0 := math.Round((t0 - u0) / d)
	k1 := math.Round((t1 - u1) / d)
	total := (k1-k0)*ix.cycleVol + ix.cum(tr, i1, u1) - ix.cum(tr, i0, u0)
	if total < 0 { // float jitter on a near-empty window
		total = 0
	}
	return total
}

// cycleVolume returns the bytes transferred over one full replay cycle.
func (tr *Trace) cycleVolume() float64 {
	return tr.index().cycleVol
}

// Average returns the mean bandwidth over [t0, t1] in bytes/second. If the
// window is empty it returns the instantaneous bandwidth at t0.
func (tr *Trace) Average(t0, t1 float64) float64 {
	if t1 <= t0 {
		return tr.At(t0)
	}
	return tr.Integrate(t0, t1) / (t1 - t0)
}

// UploadFinish returns the time at which an upload of `bytes` that starts at
// time t0 completes: the earliest t ≥ t0 with Integrate(t0, t) ≥ bytes and
// positive instantaneous bandwidth (an upload cannot complete inside an
// outage, matching the segment walker this engine replaced). It returns an
// error if the trace's per-cycle volume is zero (the upload would never
// finish) while bytes > 0.
//
// The solve is O(log n): the target cumulative volume is reduced modulo the
// per-cycle volume and the finishing segment found by binary search over
// the prefix array — no matter how many replay cycles the upload spans.
func (tr *Trace) UploadFinish(t0 float64, bytes float64) (float64, error) {
	if bytes <= 0 {
		return t0, nil
	}
	if t0 < 0 {
		t0 = 0
	}
	ix := tr.index()
	if ix.cycleVol <= 0 {
		return 0, fmt.Errorf("trace %q: zero bandwidth everywhere, upload of %v bytes never finishes", tr.Name, bytes)
	}
	d := tr.Duration()
	i0, u0 := tr.locate(t0)
	base := t0 - u0 // wall-clock start of t0's replay cycle
	// Cumulative volume (from base) at which the upload completes.
	target := ix.cum(tr, i0, u0) + bytes
	cycles := math.Floor(target / ix.cycleVol)
	rem := target - cycles*ix.cycleVol
	if rem <= 0 {
		// The target is an exact multiple of the cycle volume: the upload
		// finishes at the end of the last positive segment of the final
		// cycle (trailing outage time transfers nothing), which is where
		// the in-cycle search lands when asked for the full cycle volume.
		cycles--
		rem = ix.cycleVol
	}
	return base + cycles*d + ix.invCum(tr, rem), nil
}

// Slot returns the average bandwidth in the j-th slot of width h seconds,
// i.e. over [j·h, (j+1)·h), replaying cyclically. Negative j wraps around,
// matching the paper's state construction B_i(⌊t/h⌋ - k) for history slots
// that precede the randomly chosen start time.
//
// When the slot pattern repeats every q = d/h slots for an integer q, the
// q averages are computed once and memoized per width (see index.go), so a
// steady-state Slot is a table read.
func (tr *Trace) Slot(j int, h float64) float64 {
	if h <= 0 {
		panic("trace: non-positive slot width")
	}
	if tbl := tr.index().slotsFor(tr, h); tbl != nil {
		i := j % len(tbl.vals)
		if i < 0 {
			i += len(tbl.vals)
		}
		return tbl.vals[i]
	}
	return tr.slotDirect(j, h)
}

// slotDirect computes a slot average straight from the prefix index, with
// no memo table — the defining formula of Slot.
func (tr *Trace) slotDirect(j int, h float64) float64 {
	d := tr.Duration()
	start := math.Mod(float64(j)*h, d)
	if start < 0 {
		start += d
	}
	return tr.Average(start, start+h)
}

// History returns the H+1 most recent slot averages ending at the slot that
// contains time t, most recent first:
//
//	[B(⌊t/h⌋), B(⌊t/h⌋-1), …, B(⌊t/h⌋-H)]
//
// exactly matching the paper's state definition.
func (tr *Trace) History(t, h float64, H int) []float64 {
	return tr.HistoryInto(nil, t, h, H)
}

// HistoryInto is History writing into a caller-provided buffer: dst is
// resliced to H+1 entries (reallocated only when its capacity is short) and
// returned. With an adequate buffer a steady-state call performs no
// allocation — the zero-allocation contract the simulation hot path relies
// on (DESIGN.md §10).
func (tr *Trace) HistoryInto(dst []float64, t, h float64, H int) []float64 {
	if H < 0 {
		panic("trace: negative history length")
	}
	if cap(dst) < H+1 {
		dst = make([]float64, H+1)
	} else {
		dst = dst[:H+1]
	}
	j := int(math.Floor(t / h))
	for k := 0; k <= H; k++ {
		dst[k] = tr.Slot(j-k, h)
	}
	return dst
}

// Stats summarizes a trace for reporting.
type Stats struct {
	Min, Max, Mean, Std float64
}

// Summary computes bandwidth statistics across the samples.
func (tr *Trace) Summary() Stats {
	var s Stats
	s.Min = math.Inf(1)
	s.Max = math.Inf(-1)
	var sum, sq float64
	for _, x := range tr.Samples {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		sum += x
		sq += x * x
	}
	n := float64(len(tr.Samples))
	s.Mean = sum / n
	variance := sq/n - s.Mean*s.Mean
	if variance < 0 {
		variance = 0
	}
	s.Std = math.Sqrt(variance)
	return s
}

// Clone returns a deep copy of the trace. The cached index is deliberately
// not shared: the clone re-indexes lazily from its own samples, so the
// clone-then-edit pattern can never poison the original's cache (nor read a
// stale one).
func (tr *Trace) Clone() *Trace {
	return &Trace{
		Name:     tr.Name,
		Interval: tr.Interval,
		Samples:  append([]float64(nil), tr.Samples...),
	}
}
