// Package trace models time-varying uplink bandwidth as piecewise-constant
// functions of time, the substrate behind the paper's eq. (3): the effective
// transmission speed of an upload is the time-average of the trace over the
// actual upload window, so finishing an upload means integrating the trace
// until the model's ξ bits have moved.
//
// A Trace is a sequence of samples at a fixed interval; bandwidth is in
// bytes/second and held constant within each interval. Traces are replayed
// cyclically, matching the paper's methodology of training/evaluating against
// replayed real-world 4G/HSDPA measurements.
package trace

import (
	"errors"
	"fmt"
	"math"
)

// Trace is a piecewise-constant bandwidth function: Samples[i] is the
// bandwidth in bytes/second during [i·Interval, (i+1)·Interval). Replay is
// cyclic, so the trace is defined for all t ≥ 0.
type Trace struct {
	// Name identifies the trace (e.g. "walking-4g-03").
	Name string
	// Interval is the sample spacing in seconds (> 0).
	Interval float64
	// Samples holds bandwidth values in bytes/second (≥ 0).
	Samples []float64
}

// ErrEmptyTrace is returned when an operation requires at least one sample.
var ErrEmptyTrace = errors.New("trace: empty trace")

// New validates and constructs a trace.
func New(name string, interval float64, samples []float64) (*Trace, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("trace %q: interval %v must be positive", name, interval)
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("trace %q: %w", name, ErrEmptyTrace)
	}
	for i, s := range samples {
		if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
			return nil, fmt.Errorf("trace %q: sample %d = %v is invalid", name, i, s)
		}
	}
	return &Trace{Name: name, Interval: interval, Samples: samples}, nil
}

// MustNew is New, panicking on error; intended for tests and literals.
func MustNew(name string, interval float64, samples []float64) *Trace {
	tr, err := New(name, interval, samples)
	if err != nil {
		panic(err)
	}
	return tr
}

// Duration returns the length of one replay cycle in seconds.
func (tr *Trace) Duration() float64 {
	return float64(len(tr.Samples)) * tr.Interval
}

// At returns the bandwidth at time t (seconds), replaying cyclically.
// Negative t is treated as 0.
func (tr *Trace) At(t float64) float64 {
	if t < 0 {
		t = 0
	}
	d := tr.Duration()
	t = math.Mod(t, d)
	idx := int(t / tr.Interval)
	if idx >= len(tr.Samples) { // float edge at exactly d
		idx = len(tr.Samples) - 1
	}
	return tr.Samples[idx]
}

// Integrate returns the number of bytes transferred over [t0, t1]
// (∫ B(t) dt), handling cyclic replay and partial intervals exactly.
func (tr *Trace) Integrate(t0, t1 float64) float64 {
	if t1 < t0 {
		t0, t1 = t1, t0
	}
	if t0 < 0 {
		t0 = 0
	}
	if t1 <= t0 {
		return 0
	}
	d := tr.Duration()
	// Whole cycles are cheap: precompute the per-cycle volume.
	var total float64
	if span := t1 - t0; span >= d {
		cycles := math.Floor(span / d)
		total += cycles * tr.cycleVolume()
		t1 = t0 + (span - cycles*d)
	}
	// Remaining window is shorter than one cycle; walk its segments.
	t := t0
	for t < t1-1e-15 {
		tm := math.Mod(t, d)
		idx := int(tm / tr.Interval)
		if idx >= len(tr.Samples) {
			idx = len(tr.Samples) - 1
		}
		segEnd := t + (float64(idx+1)*tr.Interval - tm)
		if segEnd > t1 {
			segEnd = t1
		}
		total += tr.Samples[idx] * (segEnd - t)
		if segEnd <= t {
			// Defensive: avoid an infinite loop on pathological floats.
			segEnd = math.Nextafter(t, math.Inf(1))
		}
		t = segEnd
	}
	return total
}

// cycleVolume returns the bytes transferred over one full replay cycle.
func (tr *Trace) cycleVolume() float64 {
	var v float64
	for _, s := range tr.Samples {
		v += s
	}
	return v * tr.Interval
}

// Average returns the mean bandwidth over [t0, t1] in bytes/second. If the
// window is empty it returns the instantaneous bandwidth at t0.
func (tr *Trace) Average(t0, t1 float64) float64 {
	if t1 <= t0 {
		return tr.At(t0)
	}
	return tr.Integrate(t0, t1) / (t1 - t0)
}

// UploadFinish returns the time at which an upload of `bytes` that starts at
// time t0 completes, i.e. the smallest t ≥ t0 with Integrate(t0, t) ≥ bytes.
// It returns an error if the trace's per-cycle volume is zero (the upload
// would never finish) while bytes > 0.
func (tr *Trace) UploadFinish(t0 float64, bytes float64) (float64, error) {
	if bytes <= 0 {
		return t0, nil
	}
	if t0 < 0 {
		t0 = 0
	}
	cv := tr.cycleVolume()
	if cv <= 0 {
		return 0, fmt.Errorf("trace %q: zero bandwidth everywhere, upload of %v bytes never finishes", tr.Name, bytes)
	}
	d := tr.Duration()
	// Skip whole cycles first.
	remaining := bytes
	t := t0
	if cycles := math.Floor(remaining / cv); cycles > 0 {
		// Careful: partial cycle alignment means we can only safely skip
		// cycles-1 full cycles worth without overshooting; walking segments
		// below finishes the job. Skipping (cycles-1) keeps the walk short.
		skip := cycles - 1
		if skip > 0 {
			t += skip * d
			remaining -= skip * cv
		}
	}
	// Walk segments until the remaining volume is consumed.
	const maxSegments = 100_000_000
	for n := 0; n < maxSegments; n++ {
		tm := math.Mod(t, d)
		idx := int(tm / tr.Interval)
		if idx >= len(tr.Samples) {
			idx = len(tr.Samples) - 1
		}
		segEnd := t + (float64(idx+1)*tr.Interval - tm)
		rate := tr.Samples[idx]
		segVol := rate * (segEnd - t)
		if segVol >= remaining && rate > 0 {
			return t + remaining/rate, nil
		}
		remaining -= segVol
		if segEnd <= t {
			segEnd = math.Nextafter(t, math.Inf(1))
		}
		t = segEnd
	}
	return 0, fmt.Errorf("trace %q: upload solver exceeded segment budget", tr.Name)
}

// Slot returns the average bandwidth in the j-th slot of width h seconds,
// i.e. over [j·h, (j+1)·h), replaying cyclically. Negative j wraps around,
// matching the paper's state construction B_i(⌊t/h⌋ - k) for history slots
// that precede the randomly chosen start time.
func (tr *Trace) Slot(j int, h float64) float64 {
	if h <= 0 {
		panic("trace: non-positive slot width")
	}
	d := tr.Duration()
	start := math.Mod(float64(j)*h, d)
	if start < 0 {
		start += d
	}
	return tr.Average(start, start+h)
}

// History returns the H+1 most recent slot averages ending at the slot that
// contains time t, most recent first:
//
//	[B(⌊t/h⌋), B(⌊t/h⌋-1), …, B(⌊t/h⌋-H)]
//
// exactly matching the paper's state definition.
func (tr *Trace) History(t, h float64, H int) []float64 {
	if H < 0 {
		panic("trace: negative history length")
	}
	j := int(math.Floor(t / h))
	out := make([]float64, H+1)
	for k := 0; k <= H; k++ {
		out[k] = tr.Slot(j-k, h)
	}
	return out
}

// Stats summarizes a trace for reporting.
type Stats struct {
	Min, Max, Mean, Std float64
}

// Summary computes bandwidth statistics across the samples.
func (tr *Trace) Summary() Stats {
	var s Stats
	s.Min = math.Inf(1)
	s.Max = math.Inf(-1)
	var sum, sq float64
	for _, x := range tr.Samples {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		sum += x
		sq += x * x
	}
	n := float64(len(tr.Samples))
	s.Mean = sum / n
	variance := sq/n - s.Mean*s.Mean
	if variance < 0 {
		variance = 0
	}
	s.Std = math.Sqrt(variance)
	return s
}

// Clone returns a deep copy of the trace.
func (tr *Trace) Clone() *Trace {
	return &Trace{
		Name:     tr.Name,
		Interval: tr.Interval,
		Samples:  append([]float64(nil), tr.Samples...),
	}
}
