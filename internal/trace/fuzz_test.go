package trace

import (
	"math"
	"strings"
	"testing"
)

// FuzzReadCSV drives the CSV loader with arbitrary input. Invariants: it
// never panics; every accepted trace satisfies the Trace contract —
// positive finite interval and non-empty, finite, non-negative samples.
func FuzzReadCSV(f *testing.F) {
	f.Add("time_s,bandwidth_Bps\n0,1e6\n1,2e6\n2,1.5e6\n")
	f.Add("0,5\n0.5,6\n1.0,7\n")
	f.Add("")
	f.Add("time_s,bandwidth_Bps\n")
	f.Add("a,b,c\n")
	f.Add("0,NaN\n1,2\n")
	f.Add("0,1\n1,2\n1,3\n")
	f.Add("0,1\n2,2\n3,3\n")
	f.Add("-1,5\n0,6\n")
	f.Add("0,1e309\n1,2\n")
	f.Add("time_s,bandwidth_Bps\n0,-3\n1,4\n")
	f.Fuzz(func(t *testing.T, data string) {
		tr, err := ReadCSV("fuzz", strings.NewReader(data))
		if err != nil {
			return
		}
		if tr == nil {
			t.Fatal("nil trace with nil error")
		}
		if !(tr.Interval > 0) || math.IsInf(tr.Interval, 0) {
			t.Fatalf("accepted interval %v", tr.Interval)
		}
		if len(tr.Samples) == 0 {
			t.Fatal("accepted empty sample set")
		}
		for i, s := range tr.Samples {
			if math.IsNaN(s) || math.IsInf(s, 0) || s < 0 {
				t.Fatalf("accepted invalid sample %d = %v", i, s)
			}
		}
	})
}
