//go:build !race

package trace

import "testing"

// Steady-state allocation regression tests: once a trace's index and slot
// tables are warm, the query API on the simulation hot path must not
// allocate (DESIGN.md §10). Guarded from -race builds, whose
// instrumentation allocates.

func TestAllocsIntegrate(t *testing.T) {
	tr := benchTrace(9)
	tr.Integrate(0, 10) // warm the index
	if n := testing.AllocsPerRun(100, func() {
		tr.Integrate(123.4, 567.8)
	}); n != 0 {
		t.Fatalf("Integrate allocates %v per run in steady state", n)
	}
}

func TestAllocsUploadFinish(t *testing.T) {
	tr := benchTrace(9)
	vol := tr.Integrate(0, tr.Duration()) * 12.5
	if _, err := tr.UploadFinish(0, vol); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		if _, err := tr.UploadFinish(321.7, vol); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("UploadFinish allocates %v per run in steady state", n)
	}
}

func TestAllocsHistoryInto(t *testing.T) {
	tr := benchTrace(9)
	buf := tr.HistoryInto(nil, 100, 10, 5) // warm index, slot table, buffer
	if n := testing.AllocsPerRun(100, func() {
		buf = tr.HistoryInto(buf, 731.3, 10, 5)
	}); n != 0 {
		t.Fatalf("HistoryInto allocates %v per run in steady state", n)
	}
}

func TestAllocsSlot(t *testing.T) {
	tr := benchTrace(9)
	tr.Slot(0, 10) // warm the memo table
	if n := testing.AllocsPerRun(100, func() {
		tr.Slot(-17, 10)
	}); n != 0 {
		t.Fatalf("Slot allocates %v per run in steady state", n)
	}
}
