package rl

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// PPOConfig holds the hyperparameters of the PPO-clip update.
type PPOConfig struct {
	// Gamma is the discount factor γ.
	Gamma float64
	// Lambda is the GAE smoothing λ (distinct from the cost weight λ).
	Lambda float64
	// ClipEps is the surrogate clipping radius ε.
	ClipEps float64
	// ActorLR and CriticLR are the Adam learning rates.
	ActorLR, CriticLR float64
	// Epochs is M, the number of passes over the buffer per update
	// (Algorithm 1 line 18).
	Epochs int
	// MinibatchSize splits the buffer per epoch; 0 uses the whole buffer.
	MinibatchSize int
	// EntropyCoef weights the entropy bonus that sustains exploration.
	EntropyCoef float64
	// ValueCoef weights the critic loss in the reported training loss.
	ValueCoef float64
	// MaxGradNorm clips the global gradient norm (≤ 0 disables).
	MaxGradNorm float64
	// TargetKL stops the update early when the sampled KL divergence from
	// θ_old exceeds it (≤ 0 disables).
	TargetKL float64
	// Workers caps the goroutines of the data-parallel update engine. The
	// engine's gradients are bit-identical at any worker count (fixed block
	// decomposition plus a worker-independent merge tree), so this knob
	// changes wall-clock time only. 0 or 1 runs single-threaded.
	Workers int
	// Constraint configures the Lagrangian constrained variant (see
	// constrained.go); the zero value is plain unconstrained PPO.
	Constraint ConstraintConfig
}

// DefaultPPOConfig returns hyperparameters that train the paper's agent
// stably.
func DefaultPPOConfig() PPOConfig {
	return PPOConfig{
		Gamma:         0.95,
		Lambda:        0.95,
		ClipEps:       0.2,
		ActorLR:       3e-4,
		CriticLR:      1e-3,
		Epochs:        8,
		MinibatchSize: 64,
		EntropyCoef:   1e-3,
		ValueCoef:     0.5,
		MaxGradNorm:   0.5,
		TargetKL:      0.05,
	}
}

// Validate checks the configuration.
func (c PPOConfig) Validate() error {
	switch {
	case c.Gamma < 0 || c.Gamma > 1:
		return fmt.Errorf("rl: γ = %v outside [0,1]", c.Gamma)
	case c.Lambda < 0 || c.Lambda > 1:
		return fmt.Errorf("rl: GAE λ = %v outside [0,1]", c.Lambda)
	case c.ClipEps <= 0:
		return fmt.Errorf("rl: clip ε = %v must be positive", c.ClipEps)
	case c.ActorLR <= 0 || c.CriticLR <= 0:
		return fmt.Errorf("rl: learning rates must be positive")
	case c.Epochs <= 0:
		return fmt.Errorf("rl: epochs M = %d must be positive", c.Epochs)
	case c.MinibatchSize < 0:
		return fmt.Errorf("rl: minibatch size %d negative", c.MinibatchSize)
	case c.EntropyCoef < 0 || c.ValueCoef < 0:
		return fmt.Errorf("rl: negative loss coefficients")
	case c.Workers < 0:
		return fmt.Errorf("rl: workers %d must not be negative", c.Workers)
	}
	return c.Constraint.Validate()
}

// UpdateStats summarizes one PPO update for the Fig. 6(a) training-loss
// curve and debugging.
type UpdateStats struct {
	// PolicyLoss is the mean clipped-surrogate loss.
	PolicyLoss float64
	// ValueLoss is the mean squared TD error of the critic.
	ValueLoss float64
	// Entropy is the policy entropy at update time.
	Entropy float64
	// ApproxKL estimates KL(θ_old ‖ θ) from the sampled ratios.
	ApproxKL float64
	// ClipFraction is the share of samples whose ratio was clipped.
	ClipFraction float64
	// EpochsRun counts epochs before a TargetKL early stop.
	EpochsRun int
	// SkippedMinibatches counts minibatches dropped by the NaN guard: a
	// non-finite loss or gradient norm skips the optimizer step and leaves
	// the minibatch out of every statistic.
	SkippedMinibatches int
	// Restored reports that the final parameters were non-finite and the
	// update was rolled back to the weights it started from.
	Restored bool
	// CostValueLoss is the mean squared TD error of the cost critic
	// (constrained updates only).
	CostValueLoss float64
	// MeanCost is the batch-mean per-constraint cost this update saw.
	MeanCost CostVec
	// Multipliers holds the Lagrange multipliers after this update's
	// projected-ascent step.
	Multipliers CostVec
}

// Loss is the combined training loss reported in Fig. 6(a):
// policy + c_v·value − c_e·entropy.
func (s UpdateStats) Loss(cfg PPOConfig) float64 {
	return s.PolicyLoss + cfg.ValueCoef*s.ValueLoss - cfg.EntropyCoef*s.Entropy
}

// PPO couples an actor policy and a critic value network with their
// optimizers.
type PPO struct {
	Cfg    PPOConfig
	Actor  Policy
	Critic *nn.MLP
	// CostCritic regresses per-constraint discounted cost returns; nil for
	// plain PPO (set by NewConstrainedPPO).
	CostCritic *nn.MLP

	actorOpt  *nn.Adam
	criticOpt *nn.Adam
	costOpt   *nn.Adam
	lambda    CostVec // Lagrange multipliers λ_j
	rng       *rand.Rand

	// Data-parallel engine state, created on the first Update when the
	// actor implements ShardedPolicy. Everything below is reused across
	// updates so the steady-state update path allocates nothing (pinned by
	// TestPPOUpdateSteadyStateAllocs).
	engine                    *shardEngine
	arena                     *tensor.Arena
	scratch                   *ppoScratch // minibatch staging
	fullScratch               *ppoScratch // full-batch KL staging
	idx                       []int
	swap                      func(i, j int)
	actorParams, criticParams []nn.Param
	costParams                []nn.Param
	actorSnap, criticSnap     [][]float64
	costSnap                  [][]float64
}

// NewPPO wires the actor and critic to fresh Adam optimizers.
func NewPPO(cfg PPOConfig, actor Policy, critic *nn.MLP, rng *rand.Rand) (*PPO, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if critic.OutDim() != 1 {
		return nil, fmt.Errorf("rl: critic must output one value, has %d", critic.OutDim())
	}
	if critic.InDim() != actor.StateDim() {
		return nil, fmt.Errorf("rl: actor/critic state dims differ: %d vs %d", actor.StateDim(), critic.InDim())
	}
	return &PPO{
		Cfg:       cfg,
		Actor:     actor,
		Critic:    critic,
		actorOpt:  nn.NewAdam(cfg.ActorLR),
		criticOpt: nn.NewAdam(cfg.CriticLR),
		rng:       rng,
	}, nil
}

// Value returns the critic's estimate V(s).
func (p *PPO) Value(s tensor.Vector) float64 {
	return p.Critic.Forward(s)[0]
}

// Update runs M epochs of minibatch PPO-clip over the batch and returns the
// aggregated statistics. The batch must be non-empty.
//
// When the actor implements ShardedPolicy (both built-in policies do), every
// minibatch runs through the data-parallel engine: fixed 16-row blocks with
// per-block gradient replicas, merged by a worker-count-independent
// reduction tree, then a fused clip+Adam step. The result is bit-identical
// at any Cfg.Workers setting, and the steady-state path performs zero heap
// allocations. Actors implementing only BatchPolicy use the monolithic
// batched path; plain Policies fall back to the per-sample loop. The batched
// paths preserve per-row log-prob and value bits, so their statistics match
// the per-sample loop exactly until gradient summation grouping (engine
// blocks vs sample order) lets parameters drift at rounding level.
func (p *PPO) Update(batch *Batch) (UpdateStats, error) {
	n := batch.Len()
	if n == 0 {
		return UpdateStats{}, fmt.Errorf("rl: empty batch")
	}
	mb := p.Cfg.MinibatchSize
	if mb <= 0 || mb > n {
		mb = n
	}
	sp, sharded := p.Actor.(ShardedPolicy)
	bp, batched := p.Actor.(BatchPolicy)
	constrained := p.CostCritic != nil
	if constrained {
		if !sharded {
			return UpdateStats{}, fmt.Errorf("rl: constrained update requires a sharded policy, have %T", p.Actor)
		}
		if len(batch.CostAdv[0]) != n {
			return UpdateStats{}, fmt.Errorf("rl: constrained update needs a constrained batch: %d cost rows for %d samples (use MakeConstrainedBatchInto)", len(batch.CostAdv[0]), n)
		}
	}
	var scratch *ppoScratch
	if sharded {
		if p.engine == nil {
			p.engine = newShardEngine(sp, p.Critic, p.Cfg.Workers)
			if constrained {
				p.engine.attachCostCritic(p.CostCritic)
			}
			p.arena = tensor.NewArena()
			p.scratch = &ppoScratch{}
			p.fullScratch = &ppoScratch{}
		}
		p.arena.Reset()
		p.scratch.carve(p.arena, mb, p.Actor.StateDim(), p.Actor.ActionDim())
		p.fullScratch.carve(p.arena, n, p.Actor.StateDim(), p.Actor.ActionDim())
		scratch = p.scratch
	} else if batched {
		scratch = newPPOScratch(mb, p.Actor.StateDim(), p.Actor.ActionDim())
	}
	if cap(p.idx) < n {
		p.idx = make([]int, n)
	}
	p.idx = p.idx[:n]
	idx := p.idx
	for i := range idx {
		idx[i] = i
	}
	if p.swap == nil {
		p.swap = func(i, j int) { p.idx[i], p.idx[j] = p.idx[j], p.idx[i] }
	}
	if p.actorParams == nil {
		if sharded {
			p.actorParams = p.engine.actorParams
		} else {
			p.actorParams = p.Actor.Params()
		}
		p.criticParams = p.Critic.Params()
		if constrained {
			p.costParams = p.engine.costParams
		}
	}
	actorParams, criticParams := p.actorParams, p.criticParams

	// Last-good snapshot for the divergence guard: if the update somehow
	// drives the parameters non-finite despite the per-minibatch checks, it
	// rolls back to these.
	p.actorSnap = snapshotParamsInto(p.actorSnap, actorParams)
	p.criticSnap = snapshotParamsInto(p.criticSnap, criticParams)
	if constrained {
		p.costSnap = snapshotParamsInto(p.costSnap, p.costParams)
	}

	// The multipliers are frozen for the whole update — every epoch ascends
	// the same penalized advantage Â_eff = (Â_r − Σ λ_j·Â_cj)/(1 + Σ λ_j);
	// the dual ascent happens once afterwards, on the batch-mean cost.
	var invPenalty float64 = 1
	if constrained {
		var lsum float64
		for j := 0; j < NumConstraints; j++ {
			lsum += p.lambda[j]
		}
		invPenalty = 1 / (1 + lsum)
	}

	var stats UpdateStats
	var lossSamples, clipped int
	var dv tensor.Vector
	if !batched {
		dv = tensor.NewVector(1)
	}

	for epoch := 0; epoch < p.Cfg.Epochs; epoch++ {
		p.rng.Shuffle(n, p.swap)
		var epochKL float64
		var epochSamples int
		for start := 0; start < n; start += mb {
			end := start + mb
			if end > n {
				end = n
			}
			size := float64(end - start)
			// Minibatch-local accumulators: folded into the update statistics
			// only if the minibatch survives the NaN guard, so one poisoned
			// sample cannot contaminate the reported loss.
			var mbPolicy, mbValue, mbCost, mbKL float64
			var mbClipped int
			if !sharded {
				// The engine's gradient merge overwrites the primary
				// accumulators, so only the legacy paths need to zero them.
				p.Actor.ZeroGrad()
				p.Critic.ZeroGrad()
			}
			if sharded {
				ids := idx[start:end]
				scratch.gather(batch, ids)
				// One forward wave covers actor log-probs and critic values:
				// neither depends on the surrogate loop between the waves.
				V := p.engine.forward(scratch.S, scratch.A, scratch.logp, true)
				for j, k := range ids {
					adv := batch.Advantages[k]
					if constrained {
						// Penalized advantage: the multipliers trade reward
						// against each constraint's cost advantage.
						for c := 0; c < NumConstraints; c++ {
							adv -= p.lambda[c] * batch.CostAdv[c][k]
						}
						adv *= invPenalty
					}
					diff := scratch.logp[j] - batch.OldLogProb[k]
					if diff > 30 {
						diff = 30 // guard exp overflow on degenerate ratios
					}
					ratio := math.Exp(diff)
					lo, hi := 1-p.Cfg.ClipEps, 1+p.Cfg.ClipEps

					surr1 := ratio * adv
					clippedRatio := math.Min(math.Max(ratio, lo), hi)
					surr2 := clippedRatio * adv
					objective := math.Min(surr1, surr2)
					mbPolicy += -objective
					mbKL += -diff // E[log old − log new] ≈ KL

					// Gradient of −min(surr1, surr2): zero when the clipped
					// branch is active and binding, else −adv·ratio·∇logp.
					gradActive := surr1 <= surr2 || (clippedRatio == ratio)
					if ratio < lo || ratio > hi {
						mbClipped++
					}
					if gradActive {
						scratch.upstream[j] = -adv * ratio / size
					} else {
						scratch.upstream[j] = 0
					}

					// Critic regression toward the GAE return.
					verr := V[j] - batch.Returns[k]
					mbValue += verr * verr
					scratch.dV.Data[j] = 2 * verr / size

					if constrained {
						// Cost critic regression toward the cost-GAE returns,
						// fused into the same block waves.
						K := p.engine.kbuf
						for c := 0; c < NumConstraints; c++ {
							kerr := K[j*NumConstraints+c] - batch.CostRet[c][k]
							mbCost += kerr * kerr
							scratch.dK.Data[j*NumConstraints+c] = 2 * kerr / size
						}
					}
				}
				var dK *tensor.Matrix
				if constrained {
					dK = scratch.dK
				}
				p.engine.backward(scratch.upstream, scratch.dV, dK, true)
			} else if batched {
				ids := idx[start:end]
				scratch.gather(batch, ids)
				bp.LogProbBatch(scratch.S, scratch.A, scratch.logp)
				for j, k := range ids {
					adv := batch.Advantages[k]
					diff := scratch.logp[j] - batch.OldLogProb[k]
					if diff > 30 {
						diff = 30 // guard exp overflow on degenerate ratios
					}
					ratio := math.Exp(diff)
					lo, hi := 1-p.Cfg.ClipEps, 1+p.Cfg.ClipEps

					surr1 := ratio * adv
					clippedRatio := math.Min(math.Max(ratio, lo), hi)
					surr2 := clippedRatio * adv
					objective := math.Min(surr1, surr2)
					mbPolicy += -objective
					mbKL += -diff // E[log old − log new] ≈ KL

					// Gradient of −min(surr1, surr2): zero when the clipped
					// branch is active and binding, else −adv·ratio·∇logp.
					gradActive := surr1 <= surr2 || (clippedRatio == ratio)
					if ratio < lo || ratio > hi {
						mbClipped++
					}
					if gradActive {
						scratch.upstream[j] = -adv * ratio / size
					} else {
						scratch.upstream[j] = 0
					}
				}
				bp.BackwardLogProbBatch(scratch.S, scratch.A, scratch.upstream)

				// Critic regression toward the GAE return, one matrix pass.
				V := p.Critic.ForwardBatch(scratch.S)
				for j, k := range ids {
					verr := V.Data[j] - batch.Returns[k]
					mbValue += verr * verr
					scratch.dV.Data[j] = 2 * verr / size
				}
				p.Critic.BackwardBatchParams(scratch.dV)
			} else {
				for _, k := range idx[start:end] {
					s := batch.States[k]
					a := batch.Actions[k]
					adv := batch.Advantages[k]

					logp := p.Actor.LogProb(s, a)
					diff := logp - batch.OldLogProb[k]
					if diff > 30 {
						diff = 30 // guard exp overflow on degenerate ratios
					}
					ratio := math.Exp(diff)
					lo, hi := 1-p.Cfg.ClipEps, 1+p.Cfg.ClipEps

					surr1 := ratio * adv
					clippedRatio := math.Min(math.Max(ratio, lo), hi)
					surr2 := clippedRatio * adv
					objective := math.Min(surr1, surr2)
					mbPolicy += -objective
					mbKL += -diff // E[log old − log new] ≈ KL

					// Gradient of −min(surr1, surr2): zero when the clipped
					// branch is active and binding, else −adv·ratio·∇logp.
					gradActive := surr1 <= surr2 || (clippedRatio == ratio)
					if ratio < lo || ratio > hi {
						mbClipped++
					}
					if gradActive {
						p.Actor.BackwardLogProb(s, a, -adv*ratio/size)
					}

					// Critic regression toward the GAE return.
					v := p.Critic.Forward(s)[0]
					verr := v - batch.Returns[k]
					mbValue += verr * verr
					dv[0] = 2 * verr / size
					p.Critic.Backward(dv)
				}
			}
			// Entropy bonus: ascend H ⇒ descend −c_e·H.
			p.Actor.AddEntropyGrad(-p.Cfg.EntropyCoef)

			var actorNorm, criticNorm, costNorm float64
			if sharded {
				// Fused tail: measure the norms here, fold the clip into the
				// Adam step below as a per-read gradient scale. Bit-identical
				// to clip-then-step (scale 1 is an exact identity).
				actorNorm = nn.GradNorm(actorParams)
				criticNorm = nn.GradNorm(criticParams)
				if constrained {
					costNorm = nn.GradNorm(p.costParams)
				}
			} else {
				actorNorm = nn.ClipGradNorm(actorParams, p.Cfg.MaxGradNorm)
				criticNorm = nn.ClipGradNorm(criticParams, p.Cfg.MaxGradNorm)
			}
			// NaN guard: a poisoned sample (NaN reward, diverged advantage)
			// shows up as a non-finite loss or gradient norm. Skip the
			// optimizer step — the parameters keep their last-good values —
			// and leave the minibatch out of the statistics.
			if !finite(mbPolicy) || !finite(mbValue) || !finite(mbCost) || !finite(mbKL) ||
				!finite(actorNorm) || !finite(criticNorm) || !finite(costNorm) {
				stats.SkippedMinibatches++
				continue
			}
			if sharded {
				p.actorOpt.StepScaled(actorParams, nn.ClipScale(actorNorm, p.Cfg.MaxGradNorm))
				p.criticOpt.StepScaled(criticParams, nn.ClipScale(criticNorm, p.Cfg.MaxGradNorm))
				if constrained {
					p.costOpt.StepScaled(p.costParams, nn.ClipScale(costNorm, p.Cfg.MaxGradNorm))
				}
			} else {
				p.actorOpt.Step(actorParams)
				p.criticOpt.Step(criticParams)
			}
			stats.PolicyLoss += mbPolicy
			stats.ValueLoss += mbValue
			stats.CostValueLoss += mbCost
			epochKL += mbKL
			clipped += mbClipped
			epochSamples += end - start
			lossSamples += end - start
		}
		stats.EpochsRun++
		if p.Cfg.TargetKL > 0 && epochSamples > 0 && epochKL/float64(epochSamples) > p.Cfg.TargetKL {
			break
		}
	}

	// Divergence guard: if the parameters still went non-finite (e.g. an
	// optimizer step overflowed), roll the whole update back to the weights
	// it started from so training can continue.
	if !paramsFinite(actorParams) || !paramsFinite(criticParams) ||
		(constrained && !paramsFinite(p.costParams)) {
		restoreParams(actorParams, p.actorSnap)
		restoreParams(criticParams, p.criticSnap)
		if constrained {
			restoreParams(p.costParams, p.costSnap)
		}
		stats.Restored = true
	}

	if lossSamples > 0 {
		stats.PolicyLoss /= float64(lossSamples)
		stats.ValueLoss /= float64(lossSamples)
		stats.CostValueLoss /= float64(lossSamples)
		stats.ClipFraction = float64(clipped) / float64(lossSamples)
	}

	// Projected dual ascent on the batch-mean episodic cost: λ_j moves up
	// when the constraint is violated (Ĵ_cj > d_j), decays toward 0 when
	// satisfied, and is clamped into [0, λ_max]. Non-finite cost means
	// (poisoned batch) skip the step so λ cannot be corrupted.
	if constrained {
		stats.MeanCost = batch.CostMean
		cc := p.Cfg.Constraint
		for j := 0; j < NumConstraints; j++ {
			if !finite(batch.CostMean[j]) {
				continue
			}
			l := p.lambda[j] + cc.LagrangeLR*(batch.CostMean[j]-cc.CostLimit[j])
			if l < 0 {
				l = 0
			} else if l > cc.MultiplierMax {
				l = cc.MultiplierMax
			}
			p.lambda[j] = l
		}
		stats.Multipliers = p.lambda
	}
	stats.Entropy = p.Actor.Entropy()
	// Final-parameter KL estimate over the whole batch.
	var kl float64
	if sharded {
		fs := p.fullScratch
		fs.resize(n)
		for k := 0; k < n; k++ {
			copy(fs.S.Row(k), batch.States[k])
			copy(fs.A.Row(k), batch.Actions[k])
		}
		p.engine.forward(fs.S, fs.A, fs.logp, false)
		for k := 0; k < n; k++ {
			kl += batch.OldLogProb[k] - fs.logp[k]
		}
	} else if batched {
		full := newPPOScratch(n, p.Actor.StateDim(), p.Actor.ActionDim())
		for k := 0; k < n; k++ {
			copy(full.S.Row(k), batch.States[k])
			copy(full.A.Row(k), batch.Actions[k])
		}
		bp.LogProbBatch(full.S, full.A, full.logp)
		for k := 0; k < n; k++ {
			kl += batch.OldLogProb[k] - full.logp[k]
		}
	} else {
		for k := 0; k < n; k++ {
			kl += batch.OldLogProb[k] - p.Actor.LogProb(batch.States[k], batch.Actions[k])
		}
	}
	stats.ApproxKL = kl / float64(n)
	return stats, nil
}

func finite(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0)
}

// snapshotParams deep-copies parameter values (not gradients).
func snapshotParams(params []nn.Param) [][]float64 {
	out := make([][]float64, len(params))
	for i, p := range params {
		out[i] = append([]float64(nil), p.W...)
	}
	return out
}

// snapshotParamsInto refreshes a reusable parameter snapshot in place,
// allocating only on first use (or an architecture change).
func snapshotParamsInto(dst [][]float64, params []nn.Param) [][]float64 {
	if len(dst) != len(params) {
		dst = make([][]float64, len(params))
	}
	for i, p := range params {
		if len(dst[i]) != len(p.W) {
			dst[i] = make([]float64, len(p.W))
		}
		copy(dst[i], p.W)
	}
	return dst
}

// restoreParams copies a snapshot back into the parameters in place.
func restoreParams(params []nn.Param, snap [][]float64) {
	for i, p := range params {
		copy(p.W, snap[i])
	}
}

// paramsFinite reports whether every parameter value is finite.
func paramsFinite(params []nn.Param) bool {
	for _, p := range params {
		for _, w := range p.W {
			if !finite(w) {
				return false
			}
		}
	}
	return true
}

// ppoScratch holds the reusable minibatch staging buffers of the batched
// update path. dK is the cost critic's upstream (m×NumConstraints), carved
// alongside the rest so the constrained update stays allocation-free.
type ppoScratch struct {
	S, A, dV, dK   *tensor.Matrix
	logp, upstream tensor.Vector
}

func newPPOScratch(rows, stateDim, actionDim int) *ppoScratch {
	return &ppoScratch{
		S:        tensor.NewMatrix(rows, stateDim),
		A:        tensor.NewMatrix(rows, actionDim),
		dV:       tensor.NewMatrix(rows, 1),
		dK:       tensor.NewMatrix(rows, NumConstraints),
		logp:     tensor.NewVector(rows),
		upstream: tensor.NewVector(rows),
	}
}

// carve (re-)backs the scratch with arena slices sized for rows samples.
// The caller resets the arena once per update and carves in a fixed order,
// so after the slabs reach steady state no carve allocates. Caps are pinned
// to the carved lengths: an arena slice's natural capacity extends to the
// end of the slab, and an unpinned cap would let resize silently grow one
// carve into its neighbor.
func (sc *ppoScratch) carve(ar *tensor.Arena, rows, stateDim, actionDim int) {
	if sc.S == nil {
		sc.S, sc.A, sc.dV, sc.dK = &tensor.Matrix{}, &tensor.Matrix{}, &tensor.Matrix{}, &tensor.Matrix{}
	}
	sc.S.Rows, sc.S.Cols, sc.S.Data = rows, stateDim, pinCap(ar.F64(rows*stateDim))
	sc.A.Rows, sc.A.Cols, sc.A.Data = rows, actionDim, pinCap(ar.F64(rows*actionDim))
	sc.dV.Rows, sc.dV.Cols, sc.dV.Data = rows, 1, pinCap(ar.F64(rows))
	sc.dK.Rows, sc.dK.Cols, sc.dK.Data = rows, NumConstraints, pinCap(ar.F64(rows*NumConstraints))
	sc.logp = pinCap(ar.F64(rows))
	sc.upstream = pinCap(ar.F64(rows))
}

func pinCap(v tensor.Vector) tensor.Vector { return v[:len(v):len(v)] }

// gather stages the indexed samples as matrix rows, shrinking the scratch
// views to the chunk size (the final minibatch of an epoch may be short).
func (sc *ppoScratch) gather(batch *Batch, ids []int) {
	m := len(ids)
	if m == 0 {
		return
	}
	sc.resize(m)
	for j, k := range ids {
		copy(sc.S.Row(j), batch.States[k])
		copy(sc.A.Row(j), batch.Actions[k])
	}
}

func (sc *ppoScratch) resize(m int) {
	if m*sc.S.Cols > cap(sc.S.Data) {
		sc.S = tensor.NewMatrix(m, sc.S.Cols)
		sc.A = tensor.NewMatrix(m, sc.A.Cols)
		sc.dV = tensor.NewMatrix(m, 1)
		sc.dK = tensor.NewMatrix(m, NumConstraints)
		sc.logp = tensor.NewVector(m)
		sc.upstream = tensor.NewVector(m)
		return
	}
	sc.S.Rows, sc.S.Data = m, sc.S.Data[:m*sc.S.Cols]
	sc.A.Rows, sc.A.Data = m, sc.A.Data[:m*sc.A.Cols]
	sc.dV.Rows, sc.dV.Data = m, sc.dV.Data[:m]
	sc.dK.Rows, sc.dK.Data = m, sc.dK.Data[:m*NumConstraints]
	sc.logp = sc.logp[:m]
	sc.upstream = sc.upstream[:m]
}
