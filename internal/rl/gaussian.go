// Package rl implements the reinforcement-learning machinery of the paper's
// §IV: a diagonal-Gaussian actor for the continuous CPU-frequency action
// space, a value-function critic, generalized advantage estimation, an
// experience buffer, and the PPO-clip update used in Algorithm 1.
package rl

import (
	"math"
	"math/rand"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// log(2π), used by the Gaussian log-density.
var log2Pi = math.Log(2 * math.Pi)

// GaussianPolicy is a stochastic policy π(a|s) = N(μ(s), diag σ²) with a
// state-dependent mean produced by an MLP (tanh output, so μ ∈ (−1,1)) and
// a state-independent learned log-σ vector, the standard parameterization
// for continuous-control PPO.
type GaussianPolicy struct {
	// Net maps states to action means.
	Net *nn.MLP
	// LogStd holds log σ per action dimension.
	LogStd tensor.Vector
	// GLogStd accumulates gradients for LogStd.
	GLogStd tensor.Vector

	// lastS/lastMu cache the most recent LogProbBatch forward pass so an
	// immediately following BackwardLogProbBatch on the same S skips the
	// duplicate forward (see the BatchPolicy contract). dmuBuf is the
	// reusable upstream-gradient buffer for the batched backward; sigBuf
	// holds the per-dimension σ hoisted out of the row loops.
	lastS  *tensor.Matrix
	lastMu *tensor.Matrix
	dmuBuf *tensor.Matrix
	sigBuf tensor.Vector

	// shardMode marks a CloneGradShard replica: its batched backward
	// overwrites GLogStd instead of accumulating, matching the set-grads
	// behavior of its nn.CloneGradOnly network.
	shardMode bool
}

// NewGaussianPolicy builds a policy for the given state/action dimensions
// with tanh hidden layers. initStd is the initial exploration σ.
func NewGaussianPolicy(stateDim, actionDim int, hidden []int, initStd float64, rng *rand.Rand) *GaussianPolicy {
	sizes := append(append([]int{stateDim}, hidden...), actionDim)
	p := &GaussianPolicy{
		Net:     nn.NewMLP(sizes, nn.Tanh, nn.Tanh, rng),
		LogStd:  tensor.NewVector(actionDim),
		GLogStd: tensor.NewVector(actionDim),
	}
	if initStd <= 0 {
		initStd = 0.5
	}
	p.LogStd.Fill(math.Log(initStd))
	return p
}

// ActionDim returns the action dimensionality.
func (p *GaussianPolicy) ActionDim() int { return len(p.LogStd) }

// StateDim returns the state dimensionality.
func (p *GaussianPolicy) StateDim() int { return p.Net.InDim() }

// Mean returns μ(s). The returned slice is owned by the network.
func (p *GaussianPolicy) Mean(s tensor.Vector) tensor.Vector {
	return p.Net.Forward(s)
}

// MeanInto computes μ(s) into dst without allocating the result.
func (p *GaussianPolicy) MeanInto(dst, s tensor.Vector) {
	if len(dst) != p.ActionDim() {
		panic("rl: policy action length mismatch")
	}
	copy(dst, p.Net.Forward(s))
}

// Std returns the current σ vector (freshly allocated).
func (p *GaussianPolicy) Std() tensor.Vector {
	out := tensor.NewVector(len(p.LogStd))
	for i, l := range p.LogStd {
		out[i] = math.Exp(l)
	}
	return out
}

// Sample draws a ~ N(μ(s), σ²) and returns the action with its log-density.
func (p *GaussianPolicy) Sample(s tensor.Vector, rng *rand.Rand) (tensor.Vector, float64) {
	mu := p.Mean(s)
	a := tensor.NewVector(len(mu))
	var logp float64
	for i := range mu {
		sigma := math.Exp(p.LogStd[i])
		a[i] = mu[i] + sigma*rng.NormFloat64()
		logp += gaussLogPDF(a[i], mu[i], sigma, p.LogStd[i])
	}
	return a, logp
}

// LogProb returns log π(a|s) under the current parameters.
func (p *GaussianPolicy) LogProb(s, a tensor.Vector) float64 {
	mu := p.Mean(s)
	var logp float64
	for i := range mu {
		sigma := math.Exp(p.LogStd[i])
		logp += gaussLogPDF(a[i], mu[i], sigma, p.LogStd[i])
	}
	return logp
}

// Entropy returns the differential entropy of the policy, which for a
// diagonal Gaussian depends only on σ: Σ_j (log σ_j + ½log 2πe).
func (p *GaussianPolicy) Entropy() float64 {
	var h float64
	for _, l := range p.LogStd {
		h += l + 0.5*(log2Pi+1)
	}
	return h
}

// BackwardLogProb backpropagates upstream·∇log π(a|s) into the network and
// LogStd gradient accumulators, assuming the mean for state s was just
// computed by Mean/LogProb (the MLP caches its last forward pass). It also
// returns log π(a|s) for convenience.
func (p *GaussianPolicy) BackwardLogProb(s, a tensor.Vector, upstream float64) float64 {
	mu := p.Mean(s)
	dmu := tensor.NewVector(len(mu))
	var logp float64
	for i := range mu {
		sigma := math.Exp(p.LogStd[i])
		z := (a[i] - mu[i]) / sigma
		logp += gaussLogPDF(a[i], mu[i], sigma, p.LogStd[i])
		// ∂logp/∂μ = (a−μ)/σ²; ∂logp/∂logσ = z² − 1.
		dmu[i] = upstream * z / sigma
		p.GLogStd[i] += upstream * (z*z - 1)
	}
	p.Net.Backward(dmu)
	return logp
}

// sigmas refreshes and returns the hoisted per-dimension σ buffer. Each σ
// is the same math.Exp value the per-sample loops compute, just evaluated
// once per batch instead of once per row.
func (p *GaussianPolicy) sigmas() tensor.Vector {
	d := len(p.LogStd)
	if cap(p.sigBuf) < d {
		p.sigBuf = tensor.NewVector(d)
	}
	sig := p.sigBuf[:d]
	for j, l := range p.LogStd {
		sig[j] = math.Exp(l)
	}
	return sig
}

// LogProbBatch implements BatchPolicy: it computes log π(a|s) for every
// (state, action) row pair with one batched network pass. out[i] is
// bit-identical to LogProb(S.Row(i), A.Row(i)).
func (p *GaussianPolicy) LogProbBatch(S, A *tensor.Matrix, out tensor.Vector) {
	n := p.checkBatch(S, A, len(out))
	mu := p.Net.ForwardBatch(S)
	p.lastS, p.lastMu = S, mu
	sig := p.sigmas()
	for i := 0; i < n; i++ {
		murow, arow := mu.Row(i), A.Row(i)
		var logp float64
		for j := range murow {
			logp += gaussLogPDF(arow[j], murow[j], sig[j], p.LogStd[j])
		}
		out[i] = logp
	}
}

// BackwardLogProbBatch implements BatchPolicy: it accumulates
// Σ_i upstream[i]·∇log π(a_i|s_i) into the parameter gradients with one
// batched forward/backward pass. Rows with upstream 0 contribute no
// gradient, mirroring a skipped per-sample BackwardLogProb call.
func (p *GaussianPolicy) BackwardLogProbBatch(S, A *tensor.Matrix, upstream tensor.Vector) {
	n := p.checkBatch(S, A, len(upstream))
	mu := p.lastMu
	if p.lastS != S || mu == nil || mu.Rows != n {
		mu = p.Net.ForwardBatch(S)
	}
	p.lastS, p.lastMu = nil, nil
	if p.shardMode {
		p.GLogStd.Zero() // replicas set, not accumulate (see CloneGradShard)
	}
	p.dmuBuf = tensor.EnsureShape(p.dmuBuf, n, p.ActionDim())
	dmu := p.dmuBuf
	dmu.Zero()
	sig := p.sigmas()
	for i := 0; i < n; i++ {
		u := upstream[i]
		if u == 0 {
			continue
		}
		murow, arow, drow := mu.Row(i), A.Row(i), dmu.Row(i)
		for j := range murow {
			sigma := sig[j]
			z := (arow[j] - murow[j]) / sigma
			// ∂logp/∂μ = (a−μ)/σ²; ∂logp/∂logσ = z² − 1.
			drow[j] = u * z / sigma
			p.GLogStd[j] += u * (z*z - 1)
		}
	}
	p.Net.BackwardBatchParams(dmu)
}

// CloneGradShard implements ShardedPolicy: the replica shares the mean
// network's weights and the LogStd vector with p, owns private gradient
// accumulators, and runs the serial set-grads kernels of nn.CloneGradOnly.
func (p *GaussianPolicy) CloneGradShard() ShardedPolicy {
	return &GaussianPolicy{
		Net:       p.Net.CloneGradOnly(),
		LogStd:    p.LogStd, // shared: replicas always see live parameters
		GLogStd:   tensor.NewVector(len(p.LogStd)),
		shardMode: true,
	}
}

func (p *GaussianPolicy) checkBatch(S, A *tensor.Matrix, n int) int {
	if S.Rows != n || A.Rows != n || S.Cols != p.StateDim() || A.Cols != p.ActionDim() {
		panic("rl: batch shape mismatch")
	}
	return n
}

// AddEntropyGrad accumulates coef·∇H. Since ∂H/∂logσ_j = 1, this simply
// adds coef to each LogStd gradient.
func (p *GaussianPolicy) AddEntropyGrad(coef float64) {
	for i := range p.GLogStd {
		p.GLogStd[i] += coef
	}
}

// ZeroGrad clears all gradient accumulators.
func (p *GaussianPolicy) ZeroGrad() {
	p.Net.ZeroGrad()
	p.GLogStd.Zero()
}

// Params returns all trainable parameters (network weights plus LogStd).
func (p *GaussianPolicy) Params() []nn.Param {
	ps := p.Net.Params()
	ps = append(ps, nn.Param{Name: "logstd", W: p.LogStd, G: p.GLogStd})
	return ps
}

// Clone deep-copies the policy (for the θ_old snapshot of Algorithm 1).
func (p *GaussianPolicy) Clone() *GaussianPolicy {
	return &GaussianPolicy{
		Net:     p.Net.Clone(),
		LogStd:  p.LogStd.Clone(),
		GLogStd: tensor.NewVector(len(p.LogStd)),
	}
}

// ClonePolicy implements Policy.
func (p *GaussianPolicy) ClonePolicy() Policy { return p.Clone() }

// CopyFrom copies parameters from src (θ_old ← θ). It panics if src is not
// a *GaussianPolicy of the same architecture.
func (p *GaussianPolicy) CopyFrom(src Policy) {
	s, ok := src.(*GaussianPolicy)
	if !ok {
		panic("rl: CopyFrom with mismatched policy type")
	}
	p.Net.CopyParamsFrom(s.Net)
	copy(p.LogStd, s.LogStd)
	p.lastS, p.lastMu = nil, nil // parameters changed: cached forward is stale
}

func gaussLogPDF(x, mu, sigma, logSigma float64) float64 {
	z := (x - mu) / sigma
	return -0.5*z*z - logSigma - 0.5*log2Pi
}
