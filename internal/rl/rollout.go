package rl

import (
	"sync"

	"repro/internal/tensor"
)

// Trajectory is one complete episode collected by a rollout worker: the
// transitions in step order plus the bookkeeping the trainer needs to merge
// the episode into the shared experience buffer after the fact (bootstrap
// state, cost/reward sums, and — when observation normalization is on —
// the raw states in visit order so running statistics can be replayed
// deterministically).
type Trajectory struct {
	// Episode is the 0-based episode index the trajectory belongs to.
	Episode int
	// Steps holds the transitions in step order. State/Action slices are
	// owned by the trajectory.
	Steps []Transition
	// FinalState is the state observed after the last step (normalized
	// with the same statistics the worker sampled under, when
	// normalization is active). It bootstraps the value target when the
	// buffer fills on the episode's last transition.
	FinalState tensor.Vector
	// RawStates lists every unnormalized state in visit order (initial
	// state first, final state last; length len(Steps)+1). It is only
	// populated when the collector uses observation normalization.
	RawStates []tensor.Vector
	// CostSum and RewardSum accumulate the per-iteration system cost and
	// scaled reward over the episode.
	CostSum, RewardSum float64
}

// CollectEpisodes runs collect for the episode indices first … first+count-1
// across min(workers, count) goroutines and returns the trajectories ordered
// by episode index. The ordering contract is what makes parallel collection
// deterministic: as long as collect(_, ep) depends only on ep (per-episode
// seeding, snapshot parameters), the returned slice — and therefore
// everything merged from it — is independent of the worker count and of
// goroutine scheduling. The worker index is passed through so callers can
// hand each goroutine its own cloned networks. The first error observed
// cancels the remaining episodes and is returned.
func CollectEpisodes(first, count, workers int, collect func(worker, episode int) (*Trajectory, error)) ([]*Trajectory, error) {
	if count <= 0 {
		return nil, nil
	}
	if workers > count {
		workers = count
	}
	out := make([]*Trajectory, count)
	if workers <= 1 {
		for i := 0; i < count; i++ {
			tr, err := collect(0, first+i)
			if err != nil {
				return nil, err
			}
			out[i] = tr
		}
		return out, nil
	}

	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			failed := false
			for i := range jobs {
				if failed {
					continue // drain remaining jobs without working them
				}
				tr, err := collect(worker, first+i)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					failed = true
					continue
				}
				out[i] = tr
			}
		}(w)
	}
	for i := 0; i < count; i++ {
		mu.Lock()
		stop := firstErr != nil
		mu.Unlock()
		if stop {
			break
		}
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
