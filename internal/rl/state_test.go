package rl

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// A rand.Rand on a CountingSource must produce exactly the stream of one on
// the plain default source — across every consumer method the trainer uses.
func TestCountingSourceMatchesDefaultStream(t *testing.T) {
	a := rand.New(rand.NewSource(42))
	b := rand.New(NewCountingSource(42))
	for i := 0; i < 200; i++ {
		switch i % 5 {
		case 0:
			if x, y := a.Float64(), b.Float64(); x != y {
				t.Fatalf("Float64 diverged at %d: %v vs %v", i, x, y)
			}
		case 1:
			if x, y := a.NormFloat64(), b.NormFloat64(); x != y {
				t.Fatalf("NormFloat64 diverged at %d: %v vs %v", i, x, y)
			}
		case 2:
			if x, y := a.Int63(), b.Int63(); x != y {
				t.Fatalf("Int63 diverged at %d: %v vs %v", i, x, y)
			}
		case 3:
			if x, y := a.Intn(97), b.Intn(97); x != y {
				t.Fatalf("Intn diverged at %d: %v vs %v", i, x, y)
			}
		case 4:
			pa := []int{0, 1, 2, 3, 4, 5, 6}
			pb := append([]int(nil), pa...)
			a.Shuffle(len(pa), func(i, j int) { pa[i], pa[j] = pa[j], pa[i] })
			b.Shuffle(len(pb), func(i, j int) { pb[i], pb[j] = pb[j], pb[i] })
			if !reflect.DeepEqual(pa, pb) {
				t.Fatalf("Shuffle diverged at %d", i)
			}
		}
	}
}

// Restoring (seed, draws) mid-stream must continue the sequence exactly
// where the original left off.
func TestCountingSourceRestoreContinuesStream(t *testing.T) {
	src := NewCountingSource(7)
	rng := rand.New(src)
	for i := 0; i < 137; i++ {
		rng.NormFloat64()
	}
	st := src.State()
	want := make([]float64, 50)
	for i := range want {
		want[i] = rng.Float64()
	}

	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var back RNGState
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	src2 := NewCountingSource(1) // wrong seed on purpose; Restore reseeds
	rng2 := rand.New(src2)
	src2.Restore(back)
	for i := range want {
		if got := rng2.Float64(); got != want[i] {
			t.Fatalf("draw %d after restore: %v, want %v", i, got, want[i])
		}
	}
	if src2.State().Seed != 7 {
		t.Fatal("restore did not adopt the checkpoint seed")
	}
}

func TestPolicyStateRoundTripJoint(t *testing.T) {
	src := NewGaussianPolicy(6, 3, []int{8}, 0.3, rand.New(rand.NewSource(1)))
	src.LogStd[1] = -0.7 // make LogStd non-uniform so the copy is observable
	st, err := CapturePolicy(src)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var back PolicyState
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	dst := NewGaussianPolicy(6, 3, []int{8}, 0.5, rand.New(rand.NewSource(2)))
	wPtr := &dst.Net.Layers[0].W.Data[0]
	if err := RestorePolicy(dst, back); err != nil {
		t.Fatal(err)
	}
	if &dst.Net.Layers[0].W.Data[0] != wPtr {
		t.Fatal("restore reallocated the network weights")
	}
	s := tensor.Vector{0.1, -0.2, 0.3, -0.4, 0.5, -0.6}
	a := tensor.Vector{0.2, 0.1, -0.1}
	if got, want := dst.LogProb(s, a), src.LogProb(s, a); got != want {
		t.Fatalf("restored log-prob %v, want %v", got, want)
	}
}

func TestPolicyStateRoundTripShared(t *testing.T) {
	src := NewSharedGaussianPolicy(3, 2, []int{4}, 0.3, rand.New(rand.NewSource(5)))
	st, err := CapturePolicy(src)
	if err != nil {
		t.Fatal(err)
	}
	dst := NewSharedGaussianPolicy(3, 2, []int{4}, 0.5, rand.New(rand.NewSource(6)))
	if err := RestorePolicy(dst, st); err != nil {
		t.Fatal(err)
	}
	s := tensor.Vector{0.1, -0.2, 0.3, -0.4, 0.5, -0.6}
	a := tensor.Vector{0.2, 0.1, -0.1}
	if got, want := dst.LogProb(s, a), src.LogProb(s, a); got != want {
		t.Fatalf("restored log-prob %v, want %v", got, want)
	}
}

func TestRestorePolicyRejectsMismatch(t *testing.T) {
	joint := NewGaussianPolicy(6, 3, []int{8}, 0.3, rand.New(rand.NewSource(1)))
	shared := NewSharedGaussianPolicy(3, 2, []int{4}, 0.3, rand.New(rand.NewSource(1)))
	jointSt, err := CapturePolicy(joint)
	if err != nil {
		t.Fatal(err)
	}
	sharedSt, err := CapturePolicy(shared)
	if err != nil {
		t.Fatal(err)
	}
	if err := RestorePolicy(joint, sharedSt); err == nil {
		t.Fatal("shared checkpoint accepted by joint policy")
	}
	if err := RestorePolicy(shared, jointSt); err == nil {
		t.Fatal("joint checkpoint accepted by shared policy")
	}
	other := NewSharedGaussianPolicy(4, 2, []int{4}, 0.3, rand.New(rand.NewSource(1)))
	if err := RestorePolicy(other, sharedSt); err == nil {
		t.Fatal("device-count mismatch accepted")
	}
}

func TestOptimizersExposed(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	actor := NewGaussianPolicy(4, 2, []int{4}, 0.3, rng)
	critic := nn.NewMLP([]int{4, 4, 1}, nn.Tanh, nn.Identity, rng)
	ppo, err := NewPPO(DefaultPPOConfig(), actor, critic, rng)
	if err != nil {
		t.Fatal(err)
	}
	if ao, co := ppo.Optimizers(); ao == nil || co == nil || ao == co {
		t.Fatal("PPO optimizers not exposed as distinct instances")
	}
	a2c, err := NewA2C(DefaultA2CConfig(), actor, critic)
	if err != nil {
		t.Fatal(err)
	}
	if ao, co := a2c.Optimizers(); ao == nil || co == nil || ao == co {
		t.Fatal("A2C optimizers not exposed as distinct instances")
	}
}

func TestNormalizerStateRoundTrip(t *testing.T) {
	src := NewObsNormalizer(3, 8)
	for i := 0; i < 17; i++ {
		src.Update(tensor.Vector{float64(i), float64(i) * 0.5, -float64(i)})
	}
	st := CaptureNormalizer(src)
	dst := NewObsNormalizer(3, 10)
	if err := RestoreNormalizer(dst, st); err != nil {
		t.Fatal(err)
	}
	x := tensor.Vector{2, 3, 4}
	got := append(tensor.Vector(nil), dst.Normalize(x.Clone())...)
	want := append(tensor.Vector(nil), src.Normalize(x.Clone())...)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("restored normalizer output %v, want %v", got, want)
	}
	if dst.Clip != 8 {
		t.Fatal("clip not restored")
	}

	if CaptureNormalizer(nil).Mean != nil {
		t.Fatal("nil normalizer snapshot not empty")
	}
	if err := RestoreNormalizer(nil, NormalizerState{}); err != nil {
		t.Fatal("empty state into nil normalizer should be fine")
	}
	if err := RestoreNormalizer(nil, st); err == nil {
		t.Fatal("normalizer state into norm-free trainer accepted")
	}
	if err := RestoreNormalizer(dst, NormalizerState{}); err == nil {
		t.Fatal("empty state into live normalizer accepted")
	}
	if err := RestoreNormalizer(NewObsNormalizer(5, 10), st); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}
