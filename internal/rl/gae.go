package rl

import (
	"fmt"
	"math"
)

// GAE computes generalized advantage estimates and discounted returns for a
// trajectory segment.
//
//	δ_t = r_t + γ·V(s_{t+1})·(1−done_t) − V(s_t)
//	A_t = δ_t + γλ·(1−done_t)·A_{t+1}
//
// values has one entry per step; lastValue bootstraps V(s_T) for a segment
// cut before episode end. Returns are A_t + V(s_t), the critic's regression
// targets. With λ=1 the advantages reduce to discounted Monte-Carlo returns
// minus the baseline.
func GAE(rewards, values []float64, lastValue float64, dones []bool, gamma, lambda float64) (adv, ret []float64) {
	n := len(rewards)
	adv = make([]float64, n)
	ret = make([]float64, n)
	GAEInto(adv, ret, rewards, values, lastValue, dones, gamma, lambda)
	return adv, ret
}

// GAEInto is the allocation-free core of GAE: it writes the advantages and
// returns into caller-provided slices, which must match the trajectory
// length.
func GAEInto(adv, ret, rewards, values []float64, lastValue float64, dones []bool, gamma, lambda float64) {
	n := len(rewards)
	if len(values) != n || len(dones) != n {
		panic(fmt.Sprintf("rl: GAE length mismatch r=%d v=%d d=%d", n, len(values), len(dones)))
	}
	if len(adv) != n || len(ret) != n {
		panic(fmt.Sprintf("rl: GAE output length mismatch adv=%d ret=%d want %d", len(adv), len(ret), n))
	}
	if gamma < 0 || gamma > 1 || lambda < 0 || lambda > 1 {
		panic(fmt.Sprintf("rl: GAE γ=%v λ=%v outside [0,1]", gamma, lambda))
	}
	var next float64
	nextValue := lastValue
	for t := n - 1; t >= 0; t-- {
		notDone := 1.0
		if dones[t] {
			notDone = 0
		}
		delta := rewards[t] + gamma*nextValue*notDone - values[t]
		next = delta + gamma*lambda*notDone*next
		adv[t] = next
		ret[t] = adv[t] + values[t]
		nextValue = values[t]
	}
}

// NormalizeAdvantages rescales advantages to zero mean and unit variance in
// place, the standard PPO stabilization. A near-constant batch is left
// centered but unscaled.
func NormalizeAdvantages(adv []float64) {
	if len(adv) == 0 {
		return
	}
	var mean float64
	for _, a := range adv {
		mean += a
	}
	mean /= float64(len(adv))
	var sq float64
	for _, a := range adv {
		d := a - mean
		sq += d * d
	}
	std := math.Sqrt(sq / float64(len(adv)))
	for i := range adv {
		adv[i] -= mean
		if std > 1e-8 {
			adv[i] /= std
		}
	}
}
