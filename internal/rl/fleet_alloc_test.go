//go:build !race

package rl

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// TestFleetTickZeroAllocs pins the steady-state allocation contract of the
// float32 serving path: after one warmup tick, pricing a 1000-device fleet
// must not touch the heap at all. Guarded from -race builds because the race
// runtime instruments allocation and breaks AllocsPerRun counts.
func TestFleetTickZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	const n, perDev = 1000, 6
	p := NewSharedGaussianPolicy(n, perDev, []int{64, 64}, 0.5, rng)
	fa, err := NewFleetActor(p)
	if err != nil {
		t.Fatal(err)
	}
	s := tensor.NewVector(p.StateDim())
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	act := tensor.NewVector(n)
	fa.MeanInto(act, s) // warmup: grows the arena slabs
	if allocs := testing.AllocsPerRun(20, func() { fa.MeanInto(act, s) }); allocs != 0 {
		t.Fatalf("steady-state fleet tick allocates %v times per run, want 0", allocs)
	}
}
