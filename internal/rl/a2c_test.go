package rl

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestA2CConfigValidate(t *testing.T) {
	if err := DefaultA2CConfig().Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	muts := map[string]func(*A2CConfig){
		"gamma":  func(c *A2CConfig) { c.Gamma = -0.1 },
		"lambda": func(c *A2CConfig) { c.Lambda = 1.1 },
		"lr":     func(c *A2CConfig) { c.ActorLR = 0 },
		"coef":   func(c *A2CConfig) { c.ValueCoef = -1 },
	}
	for name, mut := range muts {
		c := DefaultA2CConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestNewA2CArchitectureChecks(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	actor := NewGaussianPolicy(3, 1, []int{4}, 0.5, rng)
	badOut := nn.NewMLP([]int{3, 4, 2}, nn.Tanh, nn.Identity, rng)
	if _, err := NewA2C(DefaultA2CConfig(), actor, badOut); err == nil {
		t.Fatal("2-output critic accepted")
	}
	badIn := nn.NewMLP([]int{5, 4, 1}, nn.Tanh, nn.Identity, rng)
	if _, err := NewA2C(DefaultA2CConfig(), actor, badIn); err == nil {
		t.Fatal("state-dim mismatch accepted")
	}
	bad := DefaultA2CConfig()
	bad.Gamma = 2
	good := nn.NewMLP([]int{3, 4, 1}, nn.Tanh, nn.Identity, rng)
	if _, err := NewA2C(bad, actor, good); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestA2CImprovesBandit(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	actor := NewGaussianPolicy(1, 1, []int{16}, 0.4, rng)
	critic := nn.NewMLP([]int{1, 16, 1}, nn.Tanh, nn.Identity, rng)
	cfg := DefaultA2CConfig()
	cfg.ActorLR = 5e-3
	cfg.CriticLR = 1e-2
	agent, err := NewA2C(cfg, actor, critic)
	if err != nil {
		t.Fatal(err)
	}
	avgReward := func() float64 {
		var sum float64
		const n = 400
		for i := 0; i < n; i++ {
			s := tensor.Vector{rng.Float64()*2 - 1}
			a, _ := actor.Sample(s, rng)
			target := 0.5 * s[0]
			sum += -(a[0] - target) * (a[0] - target)
		}
		return sum / n
	}
	before := avgReward()
	for round := 0; round < 60; round++ {
		buf := NewBuffer(128)
		for !buf.Full() {
			s := tensor.Vector{rng.Float64()*2 - 1}
			a, logp := actor.Sample(s, rng)
			target := 0.5 * s[0]
			r := -(a[0] - target) * (a[0] - target)
			buf.Add(Transition{State: s.Clone(), Action: a.Clone(), Reward: r,
				LogProb: logp, Value: agent.Value(s), Done: true})
		}
		if _, err := agent.Update(MakeBatch(buf, 0, cfg.Gamma, cfg.Lambda)); err != nil {
			t.Fatal(err)
		}
	}
	after := avgReward()
	if after <= before {
		t.Fatalf("A2C did not improve: %v → %v", before, after)
	}
}

func TestA2CUpdateStats(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	actor := NewGaussianPolicy(2, 1, []int{6}, 0.5, rng)
	critic := nn.NewMLP([]int{2, 6, 1}, nn.Tanh, nn.Identity, rng)
	agent, err := NewA2C(DefaultA2CConfig(), actor, critic)
	if err != nil {
		t.Fatal(err)
	}
	buf := NewBuffer(16)
	for !buf.Full() {
		s := tensor.Vector{rng.NormFloat64(), rng.NormFloat64()}
		a, logp := actor.Sample(s, rng)
		buf.Add(Transition{State: s.Clone(), Action: a.Clone(), Reward: rng.NormFloat64(),
			LogProb: logp, Value: agent.Value(s), Done: true})
	}
	st, err := agent.Update(MakeBatch(buf, 0, 0.95, 0.95))
	if err != nil {
		t.Fatal(err)
	}
	if st.EpochsRun != 1 {
		t.Fatalf("A2C should run exactly one epoch, got %d", st.EpochsRun)
	}
	if math.IsNaN(st.PolicyLoss) || math.IsNaN(st.ValueLoss) || st.Entropy == 0 {
		t.Fatalf("stats: %+v", st)
	}
	if _, err := agent.Update(&Batch{}); err == nil {
		t.Fatal("empty batch accepted")
	}
}

func TestA2CCriticRegresses(t *testing.T) {
	// With a fixed batch whose returns are constant, repeated critic-only
	// pressure should shrink the value loss.
	rng := rand.New(rand.NewSource(9))
	actor := NewGaussianPolicy(1, 1, []int{4}, 0.5, rng)
	critic := nn.NewMLP([]int{1, 8, 1}, nn.Tanh, nn.Identity, rng)
	cfg := DefaultA2CConfig()
	cfg.ActorLR = 1e-9 // freeze the actor; watch the critic
	cfg.CriticLR = 5e-3
	agent, _ := NewA2C(cfg, actor, critic)
	batch := &Batch{}
	for i := 0; i < 32; i++ {
		s := tensor.Vector{rng.Float64()}
		a, logp := actor.Sample(s, rng)
		batch.States = append(batch.States, s)
		batch.Actions = append(batch.Actions, a.Clone())
		batch.OldLogProb = append(batch.OldLogProb, logp)
		batch.Advantages = append(batch.Advantages, 0)
		batch.Returns = append(batch.Returns, 2.5)
	}
	var first, last float64
	for k := 0; k < 200; k++ {
		st, err := agent.Update(batch)
		if err != nil {
			t.Fatal(err)
		}
		if k == 0 {
			first = st.ValueLoss
		}
		last = st.ValueLoss
	}
	if last >= first {
		t.Fatalf("critic loss did not shrink: %v → %v", first, last)
	}
}

func TestTrainableInterface(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	actor := NewGaussianPolicy(2, 1, []int{4}, 0.5, rng)
	critic := nn.NewMLP([]int{2, 4, 1}, nn.Tanh, nn.Identity, rng)
	tr, err := NewTrainableA2C(DefaultA2CConfig(), actor, critic, rng)
	if err != nil {
		t.Fatal(err)
	}
	if v := tr.Value(tensor.Vector{0.1, 0.2}); math.IsNaN(v) {
		t.Fatal("NaN value")
	}
}
