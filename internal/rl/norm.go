package rl

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// ObsNormalizer standardizes observations with running per-dimension
// mean/variance (Welford's algorithm) — the usual stabilizer for PPO when
// state features span different scales. It must travel with the trained
// policy: online reasoning has to normalize exactly as training did, so the
// Agent serializes it alongside the networks.
type ObsNormalizer struct {
	// Mean and M2 are Welford accumulators per dimension.
	Mean tensor.Vector
	M2   tensor.Vector
	// Count is the number of observations folded in.
	Count float64
	// Clip bounds normalized features to [−Clip, Clip] (0 disables).
	Clip float64
}

// NewObsNormalizer creates a normalizer for dim-dimensional observations.
func NewObsNormalizer(dim int, clip float64) *ObsNormalizer {
	if dim <= 0 {
		panic(fmt.Sprintf("rl: normalizer dimension %d must be positive", dim))
	}
	if clip < 0 {
		panic(fmt.Sprintf("rl: negative clip %v", clip))
	}
	return &ObsNormalizer{
		Mean: tensor.NewVector(dim),
		M2:   tensor.NewVector(dim),
		Clip: clip,
	}
}

// Dim returns the observation dimensionality.
func (n *ObsNormalizer) Dim() int { return len(n.Mean) }

// Update folds one raw observation into the running statistics.
func (n *ObsNormalizer) Update(s tensor.Vector) {
	if len(s) != n.Dim() {
		panic(fmt.Sprintf("rl: normalizer got %d dims, want %d", len(s), n.Dim()))
	}
	n.Count++
	for i, x := range s {
		d := x - n.Mean[i]
		n.Mean[i] += d / n.Count
		n.M2[i] += d * (x - n.Mean[i])
	}
}

// Std returns the running standard deviation of dimension i (1 before any
// variance information exists, so early normalization is a no-op shift).
func (n *ObsNormalizer) Std(i int) float64 {
	if n.Count < 2 {
		return 1
	}
	v := n.M2[i] / n.Count
	if v < 1e-8 {
		return 1
	}
	return math.Sqrt(v)
}

// Normalize returns the standardized copy of s.
func (n *ObsNormalizer) Normalize(s tensor.Vector) tensor.Vector {
	out := tensor.NewVector(len(s))
	n.NormalizeInto(out, s)
	return out
}

// NormalizeInto standardizes s into dst without allocating. dst and s may
// alias.
func (n *ObsNormalizer) NormalizeInto(dst, s tensor.Vector) {
	if len(s) != n.Dim() || len(dst) != n.Dim() {
		panic(fmt.Sprintf("rl: normalizer got %d dims, want %d", len(s), n.Dim()))
	}
	for i, x := range s {
		z := (x - n.Mean[i]) / n.Std(i)
		if n.Clip > 0 {
			if z > n.Clip {
				z = n.Clip
			} else if z < -n.Clip {
				z = -n.Clip
			}
		}
		dst[i] = z
	}
}

// Snapshot returns a deep copy of the running statistics as the stable,
// serializable NormalizerState. This is the accessor consumers outside the
// training loop (the guard's OOD layer, checkpointing) should use instead
// of reaching into the Welford accumulators directly: the snapshot never
// aliases the live normalizer, so a concurrent Update cannot tear it.
func (n *ObsNormalizer) Snapshot() NormalizerState {
	return CaptureNormalizer(n)
}

// Clone deep-copies the normalizer (frozen statistics for deployment).
func (n *ObsNormalizer) Clone() *ObsNormalizer {
	return &ObsNormalizer{
		Mean:  n.Mean.Clone(),
		M2:    n.M2.Clone(),
		Count: n.Count,
		Clip:  n.Clip,
	}
}
