package rl

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestObsNormalizerStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := NewObsNormalizer(2, 0)
	// Dimension 0 ~ N(10, 4), dimension 1 ~ N(-3, 0.25).
	for i := 0; i < 5000; i++ {
		n.Update(tensor.Vector{10 + 2*rng.NormFloat64(), -3 + 0.5*rng.NormFloat64()})
	}
	if math.Abs(n.Mean[0]-10) > 0.2 || math.Abs(n.Mean[1]+3) > 0.05 {
		t.Fatalf("means = %v", n.Mean)
	}
	if math.Abs(n.Std(0)-2) > 0.1 || math.Abs(n.Std(1)-0.5) > 0.05 {
		t.Fatalf("stds = %v, %v", n.Std(0), n.Std(1))
	}
	// Normalized samples are ≈ standard normal.
	var sum, sq float64
	const m = 2000
	for i := 0; i < m; i++ {
		z := n.Normalize(tensor.Vector{10 + 2*rng.NormFloat64(), -3 + 0.5*rng.NormFloat64()})
		sum += z[0]
		sq += z[0] * z[0]
	}
	if math.Abs(sum/m) > 0.1 || math.Abs(sq/m-1) > 0.15 {
		t.Fatalf("normalized moments: mean %v, var %v", sum/m, sq/m)
	}
}

func TestObsNormalizerEarlyNoop(t *testing.T) {
	n := NewObsNormalizer(1, 0)
	// Before any update, normalization is identity (mean 0, std 1).
	z := n.Normalize(tensor.Vector{3.5})
	if z[0] != 3.5 {
		t.Fatalf("pre-update normalize = %v", z[0])
	}
	// After one sample, std stays 1 so only the shift applies.
	n.Update(tensor.Vector{2})
	z = n.Normalize(tensor.Vector{3})
	if z[0] != 1 {
		t.Fatalf("one-sample normalize = %v", z[0])
	}
}

func TestObsNormalizerClip(t *testing.T) {
	n := NewObsNormalizer(1, 5)
	for i := 0; i < 100; i++ {
		n.Update(tensor.Vector{float64(i % 3)})
	}
	z := n.Normalize(tensor.Vector{1e9})
	if z[0] != 5 {
		t.Fatalf("clip high = %v", z[0])
	}
	z = n.Normalize(tensor.Vector{-1e9})
	if z[0] != -5 {
		t.Fatalf("clip low = %v", z[0])
	}
}

func TestObsNormalizerConstantDimension(t *testing.T) {
	n := NewObsNormalizer(1, 0)
	for i := 0; i < 50; i++ {
		n.Update(tensor.Vector{7})
	}
	// Zero variance falls back to std 1 (no division blow-up).
	z := n.Normalize(tensor.Vector{8})
	if z[0] != 1 {
		t.Fatalf("constant-dim normalize = %v", z[0])
	}
}

func TestObsNormalizerCloneIndependent(t *testing.T) {
	n := NewObsNormalizer(1, 3)
	n.Update(tensor.Vector{5})
	c := n.Clone()
	n.Update(tensor.Vector{100})
	if c.Count != 1 || c.Mean[0] != 5 {
		t.Fatalf("clone tracked the original: %+v", c)
	}
	if c.Clip != 3 {
		t.Fatal("clone lost clip")
	}
}

func TestObsNormalizerPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"dim":       func() { NewObsNormalizer(0, 1) },
		"clip":      func() { NewObsNormalizer(2, -1) },
		"update":    func() { NewObsNormalizer(2, 0).Update(tensor.Vector{1}) },
		"normalize": func() { NewObsNormalizer(2, 0).Normalize(tensor.Vector{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}
