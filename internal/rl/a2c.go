package rl

import (
	"fmt"
	"math/rand"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// The paper (§IV-C) surveys policy-optimization alternatives — DPG, A2C,
// TRPO — and selects PPO for its balance of sample complexity and tuning
// ease. This file implements the A2C alternative (advantage actor-critic,
// one on-policy gradient step per batch, no ratio clipping) so that choice
// can be examined empirically: see experiments.AblationOptimizer.

// A2CConfig holds the advantage-actor-critic hyperparameters.
type A2CConfig struct {
	// Gamma is the discount factor γ.
	Gamma float64
	// Lambda is the GAE smoothing λ.
	Lambda float64
	// ActorLR and CriticLR are the Adam learning rates.
	ActorLR, CriticLR float64
	// EntropyCoef weights the exploration bonus.
	EntropyCoef float64
	// ValueCoef weights the critic loss in the reported training loss.
	ValueCoef float64
	// MaxGradNorm clips the global gradient norm (≤ 0 disables).
	MaxGradNorm float64
	// Workers caps the goroutines of the data-parallel update engine (same
	// bit-identical contract as PPOConfig.Workers). 0 or 1 runs
	// single-threaded.
	Workers int
}

// DefaultA2CConfig mirrors the PPO defaults where they overlap.
func DefaultA2CConfig() A2CConfig {
	return A2CConfig{
		Gamma:       0.95,
		Lambda:      0.95,
		ActorLR:     3e-4,
		CriticLR:    1e-3,
		EntropyCoef: 1e-3,
		ValueCoef:   0.5,
		MaxGradNorm: 0.5,
	}
}

// Validate checks the configuration.
func (c A2CConfig) Validate() error {
	switch {
	case c.Gamma < 0 || c.Gamma > 1:
		return fmt.Errorf("rl: γ = %v outside [0,1]", c.Gamma)
	case c.Lambda < 0 || c.Lambda > 1:
		return fmt.Errorf("rl: GAE λ = %v outside [0,1]", c.Lambda)
	case c.ActorLR <= 0 || c.CriticLR <= 0:
		return fmt.Errorf("rl: learning rates must be positive")
	case c.EntropyCoef < 0 || c.ValueCoef < 0:
		return fmt.Errorf("rl: negative loss coefficients")
	case c.Workers < 0:
		return fmt.Errorf("rl: workers %d must not be negative", c.Workers)
	}
	return nil
}

// A2C couples a policy and critic under the vanilla advantage
// policy-gradient update.
type A2C struct {
	Cfg    A2CConfig
	Actor  Policy
	Critic *nn.MLP

	actorOpt  *nn.Adam
	criticOpt *nn.Adam

	// Data-parallel engine state, created on the first Update when the actor
	// implements ShardedPolicy; reused across updates so the steady-state
	// path allocates nothing (pinned by TestA2CUpdateSteadyStateAllocs).
	engine                    *shardEngine
	arena                     *tensor.Arena
	scratch                   *ppoScratch
	actorParams, criticParams []nn.Param
}

// NewA2C wires the actor and critic to fresh Adam optimizers.
func NewA2C(cfg A2CConfig, actor Policy, critic *nn.MLP) (*A2C, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if critic.OutDim() != 1 {
		return nil, fmt.Errorf("rl: critic must output one value, has %d", critic.OutDim())
	}
	if critic.InDim() != actor.StateDim() {
		return nil, fmt.Errorf("rl: actor/critic state dims differ: %d vs %d", actor.StateDim(), critic.InDim())
	}
	return &A2C{
		Cfg:       cfg,
		Actor:     actor,
		Critic:    critic,
		actorOpt:  nn.NewAdam(cfg.ActorLR),
		criticOpt: nn.NewAdam(cfg.CriticLR),
	}, nil
}

// Value returns the critic's estimate V(s).
func (a *A2C) Value(s tensor.Vector) float64 {
	return a.Critic.Forward(s)[0]
}

// Update applies one policy-gradient step over the whole batch:
//
//	∇J = E[ A·∇log π(a|s) ] + c_e·∇H − c_v·∇MSE(V, returns)
//
// Because A2C takes a single step per batch it must sample fresh data every
// update — the sample-inefficiency PPO's clipped re-use fixes.
//
// Actors implementing ShardedPolicy run through the same deterministic
// data-parallel engine as PPO (bit-identical at any Cfg.Workers, zero
// steady-state allocations); other actors use the per-sample loop.
func (a *A2C) Update(batch *Batch) (UpdateStats, error) {
	n := batch.Len()
	if n == 0 {
		return UpdateStats{}, fmt.Errorf("rl: empty batch")
	}
	sp, sharded := a.Actor.(ShardedPolicy)
	if a.actorParams == nil {
		if sharded {
			a.engine = newShardEngine(sp, a.Critic, a.Cfg.Workers)
			a.arena = tensor.NewArena()
			a.scratch = &ppoScratch{}
			a.actorParams = a.engine.actorParams
			a.criticParams = a.engine.criticParams
		} else {
			a.actorParams = a.Actor.Params()
			a.criticParams = a.Critic.Params()
		}
	}
	actorParams, criticParams := a.actorParams, a.criticParams
	var stats UpdateStats
	size := float64(n)
	if sharded {
		a.arena.Reset()
		sc := a.scratch
		sc.carve(a.arena, n, a.Actor.StateDim(), a.Actor.ActionDim())
		for k := 0; k < n; k++ {
			copy(sc.S.Row(k), batch.States[k])
			copy(sc.A.Row(k), batch.Actions[k])
		}
		V := a.engine.forward(sc.S, sc.A, sc.logp, true)
		for k := 0; k < n; k++ {
			adv := batch.Advantages[k]
			// Ascend A·log π ⇒ descend −A·log π.
			sc.upstream[k] = -adv / size
			stats.PolicyLoss += -adv * sc.logp[k]
			verr := V[k] - batch.Returns[k]
			stats.ValueLoss += verr * verr
			sc.dV.Data[k] = 2 * verr / size
		}
		a.engine.backward(sc.upstream, sc.dV, nil, true)
	} else {
		a.Actor.ZeroGrad()
		a.Critic.ZeroGrad()
		dv := tensor.NewVector(1)
		for k := 0; k < n; k++ {
			s := batch.States[k]
			act := batch.Actions[k]
			adv := batch.Advantages[k]
			// Ascend A·log π ⇒ descend −A·log π.
			logp := a.Actor.BackwardLogProb(s, act, -adv/size)
			stats.PolicyLoss += -adv * logp
			v := a.Critic.Forward(s)[0]
			verr := v - batch.Returns[k]
			stats.ValueLoss += verr * verr
			dv[0] = 2 * verr / size
			a.Critic.Backward(dv)
		}
	}
	a.Actor.AddEntropyGrad(-a.Cfg.EntropyCoef)
	var actorNorm, criticNorm float64
	if sharded {
		actorNorm = nn.GradNorm(actorParams)
		criticNorm = nn.GradNorm(criticParams)
	} else {
		actorNorm = nn.ClipGradNorm(actorParams, a.Cfg.MaxGradNorm)
		criticNorm = nn.ClipGradNorm(criticParams, a.Cfg.MaxGradNorm)
	}
	// NaN guard (same contract as PPO): a poisoned batch must not corrupt
	// the parameters — skip the step and report it.
	if !finite(stats.PolicyLoss) || !finite(stats.ValueLoss) ||
		!finite(actorNorm) || !finite(criticNorm) {
		stats.SkippedMinibatches = 1
		stats.PolicyLoss, stats.ValueLoss = 0, 0
		stats.Entropy = a.Actor.Entropy()
		stats.EpochsRun = 1
		return stats, nil
	}
	if sharded {
		a.actorOpt.StepScaled(actorParams, nn.ClipScale(actorNorm, a.Cfg.MaxGradNorm))
		a.criticOpt.StepScaled(criticParams, nn.ClipScale(criticNorm, a.Cfg.MaxGradNorm))
	} else {
		a.actorOpt.Step(actorParams)
		a.criticOpt.Step(criticParams)
	}

	stats.PolicyLoss /= size
	stats.ValueLoss /= size
	stats.Entropy = a.Actor.Entropy()
	stats.EpochsRun = 1
	return stats, nil
}

// Trainable abstracts PPO and A2C so training loops can swap optimizers —
// the interface behind experiments.AblationOptimizer.
type Trainable interface {
	// Value returns the critic's V(s).
	Value(s tensor.Vector) float64
	// Update consumes one batch of on-policy experience.
	Update(batch *Batch) (UpdateStats, error)
}

var (
	_ Trainable = (*PPO)(nil)
	_ Trainable = (*A2C)(nil)
)

// NewTrainableA2C adapts A2C construction to the same shape as NewPPO for
// callers that select the algorithm at run time.
func NewTrainableA2C(cfg A2CConfig, actor Policy, critic *nn.MLP, _ *rand.Rand) (Trainable, error) {
	return NewA2C(cfg, actor, critic)
}
