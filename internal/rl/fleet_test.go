package rl

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// fleetTol mirrors the serving-precision contract documented in nn:
// float32 actions within 1e-4 of the float64 reference.
const fleetTol = 1e-4

func TestFleetActorMatchesSharedPolicy(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const n, perDev = 37, 6
	p := NewSharedGaussianPolicy(n, perDev, []int{64, 64}, 0.5, rng)
	fa, err := NewFleetActor(p)
	if err != nil {
		t.Fatal(err)
	}
	if fa.StateDim() != p.StateDim() || fa.ActionDim() != p.ActionDim() {
		t.Fatal("fleet actor dims disagree with the policy")
	}
	s := tensor.NewVector(p.StateDim())
	for trial := 0; trial < 5; trial++ {
		for i := range s {
			s[i] = rng.NormFloat64() * 2
		}
		if trial == 4 {
			// Guard-sanitized but wildly mis-scaled state: both precisions
			// must saturate to the same plateau, not mint NaNs.
			for i := range s {
				s[i] = 1e30
				if i%2 == 1 {
					s[i] = -1e30
				}
			}
		}
		want := p.Mean(s)
		got := tensor.NewVector(n)
		fa.MeanInto(got, s)
		for i := range want {
			if math.IsNaN(got[i]) || math.IsInf(got[i], 0) {
				t.Fatalf("trial %d dev %d: non-finite f32 action %g", trial, i, got[i])
			}
			if d := math.Abs(got[i] - want[i]); d > fleetTol {
				t.Fatalf("trial %d dev %d: f32 %g vs f64 %g (diff %g)", trial, i, got[i], want[i], d)
			}
		}
	}
}

func TestFleetActorMatchesGaussianPolicy(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	p := NewGaussianPolicy(18, 3, []int{32, 32}, 0.5, rng)
	fa, err := NewFleetActor(p)
	if err != nil {
		t.Fatal(err)
	}
	s := tensor.NewVector(18)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	want := p.Mean(s)
	got := fa.Mean(s)
	for i := range want {
		if d := math.Abs(got[i] - want[i]); d > fleetTol {
			t.Fatalf("dim %d: f32 %g vs f64 %g", i, got[i], want[i])
		}
	}
}

// TestMeanIntoBitIdenticalToMean pins the float64 fleet-batched serving
// path: batching all devices through one ForwardBatch must not change a
// single output bit relative to the per-device Forward loop.
func TestMeanIntoBitIdenticalToMean(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	p := NewSharedGaussianPolicy(23, 6, []int{64, 64}, 0.5, rng)
	s := tensor.NewVector(p.StateDim())
	for i := range s {
		s[i] = rng.NormFloat64() * 3
	}
	want := p.Mean(s)
	got := tensor.NewVector(p.N)
	p.MeanInto(got, s)
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("dev %d: MeanInto %x differs from Mean %x", i, math.Float64bits(got[i]), math.Float64bits(want[i]))
		}
	}
}

// TestFleetServingLeavesTrainingBitIdentical runs the same batched
// log-prob/backward pass on two identical policies, one of which also
// serves float32 fleet decisions in between, and requires the resulting
// parameters and gradients to match bit for bit: the serving backend must
// be invisible to training.
func TestFleetServingLeavesTrainingBitIdentical(t *testing.T) {
	build := func() *SharedGaussianPolicy {
		rng := rand.New(rand.NewSource(31))
		return NewSharedGaussianPolicy(11, 6, []int{32, 32}, 0.5, rng)
	}
	clean, served := build(), build()

	data := rand.New(rand.NewSource(5))
	const batch = 8
	S := tensor.NewMatrix(batch, clean.StateDim())
	A := tensor.NewMatrix(batch, clean.ActionDim())
	for i := range S.Data {
		S.Data[i] = data.NormFloat64()
	}
	for i := range A.Data {
		A.Data[i] = data.NormFloat64()
	}
	up := tensor.NewVector(batch)
	for i := range up {
		up[i] = data.NormFloat64()
	}
	out := tensor.NewVector(batch)

	fa, err := NewFleetActor(served)
	if err != nil {
		t.Fatal(err)
	}
	act := tensor.NewVector(served.ActionDim())

	for step := 0; step < 3; step++ {
		clean.LogProbBatch(S, A, out)
		clean.BackwardLogProbBatch(S, A, up)

		fa.MeanInto(act, S.Row(0)) // interleaved serving on the twin
		served.LogProbBatch(S, A, out)
		fa.MeanInto(act, S.Row(1))
		served.BackwardLogProbBatch(S, A, up)
		fa.MeanInto(act, S.Row(2))
	}

	cp, sp := clean.Params(), served.Params()
	for i := range cp {
		for j := range cp[i].W {
			if math.Float64bits(cp[i].W[j]) != math.Float64bits(sp[i].W[j]) {
				t.Fatalf("param %s[%d]: serving perturbed training weights", cp[i].Name, j)
			}
		}
		for j := range cp[i].G {
			if math.Float64bits(cp[i].G[j]) != math.Float64bits(sp[i].G[j]) {
				t.Fatalf("param %s[%d]: serving perturbed training gradients", cp[i].Name, j)
			}
		}
	}
}

type stubPolicy struct{ Policy }

func TestFleetActorUnsupportedPolicy(t *testing.T) {
	if _, err := NewFleetActor(stubPolicy{}); err == nil {
		t.Fatal("expected an error for an unsupported policy type")
	}
}
