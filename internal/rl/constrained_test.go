package rl

import (
	"math/rand"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// buildConstrainedPPO mirrors buildEnginePPO with the Lagrangian extras: a
// cost critic sized for NumConstraints outputs and the default constraint
// config (CostLimit 0, so any positive batch cost drives the multipliers up).
func buildConstrainedPPO(t *testing.T, arch string, seed int64, workers int) (*PPO, Policy, *nn.MLP, *nn.MLP) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var actor Policy
	switch arch {
	case "joint":
		actor = NewGaussianPolicy(12, 4, []int{16, 16}, 0.4, rng)
	case "shared":
		actor = NewSharedGaussianPolicy(4, 3, []int{8, 8}, 0.4, rng)
	default:
		t.Fatalf("unknown arch %q", arch)
	}
	critic := nn.NewMLP([]int{actor.StateDim(), 16, 16, 1}, nn.Tanh, nn.Identity, rng)
	costCritic := nn.NewMLP([]int{actor.StateDim(), 16, 16, NumConstraints}, nn.Tanh, nn.Identity, rng)
	cfg := DefaultPPOConfig()
	cfg.Epochs = 3
	cfg.MinibatchSize = 24 // two blocks, plus a short trailing minibatch
	cfg.TargetKL = 0
	cfg.Workers = workers
	cfg.Constraint = DefaultConstraintConfig()
	p, err := NewConstrainedPPO(cfg, actor, critic, costCritic, rand.New(rand.NewSource(seed+1)))
	if err != nil {
		t.Fatal(err)
	}
	return p, actor, critic, costCritic
}

// randomConstrainedBatchFor extends randomBatchFor with per-constraint cost
// samples shaped like the env's normalized overshoots (nonnegative, often
// zero) and cost-value bootstraps from the cost critic.
func randomConstrainedBatchFor(actor Policy, critic, costCritic *nn.MLP, n int, rng *rand.Rand) *Batch {
	buf := NewBuffer(n)
	for !buf.Full() {
		s := tensor.NewVector(actor.StateDim())
		for i := range s {
			s[i] = rng.NormFloat64()
		}
		a, logp := actor.Sample(s, rng)
		var cost, costValue CostVec
		for j := range cost {
			if v := rng.NormFloat64(); v > 0 {
				cost[j] = v
			}
		}
		copy(costValue[:], costCritic.Forward(s))
		buf.Add(Transition{State: s, Action: a.Clone(), Reward: rng.NormFloat64(),
			LogProb: logp, Value: critic.Forward(s)[0],
			Cost: cost, CostValue: costValue, Done: rng.Intn(17) == 0})
	}
	return MakeConstrainedBatchInto(&Batch{}, buf, 0, CostVec{}, 0.95, 0.95)
}

// TestConstrainedPPOUpdateWorkerInvariance extends the engine's central
// determinism contract to the Lagrangian path: five constrained updates at
// Workers ∈ {0, 1, 2, 8} must agree to the last bit — statistics, actor,
// reward critic, cost critic, and the Lagrange multipliers.
func TestConstrainedPPOUpdateWorkerInvariance(t *testing.T) {
	for _, arch := range []string{"joint", "shared"} {
		t.Run(arch, func(t *testing.T) {
			base, baseActor, baseCritic, baseCost := buildConstrainedPPO(t, arch, 17, 0)
			batchRng := rand.New(rand.NewSource(23))
			batches := make([]*Batch, 5)
			for i := range batches {
				batches[i] = randomConstrainedBatchFor(baseActor, baseCritic, baseCost, 57, batchRng)
			}
			baseStats := make([]UpdateStats, len(batches))
			for i, b := range batches {
				st, err := base.Update(b)
				if err != nil {
					t.Fatal(err)
				}
				baseStats[i] = st
			}
			// The fixture must actually exercise the dual ascent: with
			// CostLimit 0 and positive costs, the multipliers leave zero.
			if base.Multipliers() == (CostVec{}) {
				t.Fatal("multipliers never moved — fixture costs do not bind")
			}
			for _, workers := range []int{1, 2, 8} {
				p, actor, critic, cost := buildConstrainedPPO(t, arch, 17, workers)
				for i, b := range batches {
					st, err := p.Update(b)
					if err != nil {
						t.Fatal(err)
					}
					if st != baseStats[i] {
						t.Fatalf("workers=%d update %d stats diverge:\n%+v\n%+v",
							workers, i, st, baseStats[i])
					}
				}
				if p.Multipliers() != base.Multipliers() {
					t.Fatalf("workers=%d multipliers diverge: %v vs %v",
						workers, p.Multipliers(), base.Multipliers())
				}
				compareParams(t, "actor", actor.Params(), baseActor.Params())
				compareParams(t, "critic", critic.Params(), baseCritic.Params())
				compareParams(t, "cost critic", cost.Params(), baseCost.Params())
			}
		})
	}
}

// TestConstrainedUpdateRequiresConstrainedBatch: feeding a plain batch (no
// cost-GAE rows) to a constrained PPO is a loud error, not a silent zero.
func TestConstrainedUpdateRequiresConstrainedBatch(t *testing.T) {
	p, actor, critic, _ := buildConstrainedPPO(t, "joint", 7, 0)
	plain := randomBatchFor(actor, critic, 57, rand.New(rand.NewSource(8)))
	if _, err := p.Update(plain); err == nil {
		t.Fatal("constrained update accepted an unconstrained batch")
	}
}

// TestNewConstrainedPPOValidation pins the constructor's shape checks.
func TestNewConstrainedPPOValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	actor := NewGaussianPolicy(12, 4, []int{16}, 0.4, rng)
	critic := nn.NewMLP([]int{12, 16, 1}, nn.Tanh, nn.Identity, rng)
	costCritic := nn.NewMLP([]int{12, 16, NumConstraints}, nn.Tanh, nn.Identity, rng)
	cfg := DefaultPPOConfig()
	cfg.Constraint = DefaultConstraintConfig()

	if _, err := NewConstrainedPPO(cfg, actor, critic, costCritic, rng); err != nil {
		t.Fatalf("valid constrained PPO rejected: %v", err)
	}
	off := cfg
	off.Constraint.Enabled = false
	if _, err := NewConstrainedPPO(off, actor, critic, costCritic, rng); err == nil {
		t.Error("Enabled=false accepted")
	}
	if _, err := NewConstrainedPPO(cfg, seqOnly{actor}, critic, costCritic, rng); err == nil {
		t.Error("non-sharded actor accepted")
	}
	badOut := nn.NewMLP([]int{12, 16, NumConstraints + 1}, nn.Tanh, nn.Identity, rng)
	if _, err := NewConstrainedPPO(cfg, actor, critic, badOut, rng); err == nil {
		t.Error("wrong cost-critic output dim accepted")
	}
	badIn := nn.NewMLP([]int{11, 16, NumConstraints}, nn.Tanh, nn.Identity, rng)
	if _, err := NewConstrainedPPO(cfg, actor, critic, badIn, rng); err == nil {
		t.Error("wrong cost-critic input dim accepted")
	}
}

// TestMultiplierProjectedAscent pins the dual-ascent projection: λ climbs on
// violated constraints but never past MultiplierMax, and decays toward (but
// never below) zero when the batch cost sits under the limit.
func TestMultiplierProjectedAscent(t *testing.T) {
	build := func(mut func(*ConstraintConfig)) (*PPO, *Batch) {
		rng := rand.New(rand.NewSource(11))
		actor := NewGaussianPolicy(12, 4, []int{16}, 0.4, rng)
		critic := nn.NewMLP([]int{12, 16, 1}, nn.Tanh, nn.Identity, rng)
		costCritic := nn.NewMLP([]int{12, 16, NumConstraints}, nn.Tanh, nn.Identity, rng)
		cfg := DefaultPPOConfig()
		cfg.Epochs = 1
		cfg.TargetKL = 0
		cfg.Constraint = DefaultConstraintConfig()
		mut(&cfg.Constraint)
		p, err := NewConstrainedPPO(cfg, actor, critic, costCritic, rand.New(rand.NewSource(12)))
		if err != nil {
			t.Fatal(err)
		}
		return p, randomConstrainedBatchFor(actor, critic, costCritic, 48, rand.New(rand.NewSource(13)))
	}

	// Violated constraint + aggressive step: the cap must hold.
	capped, batch := build(func(c *ConstraintConfig) {
		c.LagrangeLR = 100
		c.MultiplierMax = 0.25
	})
	for i := 0; i < 3; i++ {
		if _, err := capped.Update(batch); err != nil {
			t.Fatal(err)
		}
	}
	for j, l := range capped.Multipliers() {
		if l != 0.25 {
			t.Fatalf("λ_%d = %v after saturating updates, want clamp at 0.25", j, l)
		}
	}

	// Satisfied constraint (huge limit) with a positive seed: λ decays and
	// the projection floors it at zero.
	floored, batch := build(func(c *ConstraintConfig) {
		c.LagrangeLR = 100
		for j := range c.CostLimit {
			c.CostLimit[j] = 1e6
			c.Init[j] = 1
		}
	})
	if _, err := floored.Update(batch); err != nil {
		t.Fatal(err)
	}
	for j, l := range floored.Multipliers() {
		if l != 0 {
			t.Fatalf("λ_%d = %v with satisfied constraint, want projection to 0", j, l)
		}
	}
}

// benchConstrainedPPOBatch builds the paper-scale constrained agent (18-dim
// state, 3 actions, 64×64 actor, matching cost critic) plus a 256-sample
// constrained batch — the shape behind results/BENCH_constrained.json.
func benchConstrainedPPOBatch(b *testing.B, workers int) (*PPO, *Batch) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	stateDim, actionDim := 18, 3
	actor := NewGaussianPolicy(stateDim, actionDim, []int{64, 64}, 0.4, rng)
	critic := nn.NewMLP([]int{stateDim, 64, 64, 1}, nn.Tanh, nn.Identity, rng)
	costCritic := nn.NewMLP([]int{stateDim, 64, 64, NumConstraints}, nn.Tanh, nn.Identity, rng)
	cfg := DefaultPPOConfig()
	cfg.TargetKL = 0
	cfg.Workers = workers
	cfg.Constraint = DefaultConstraintConfig()
	p, err := NewConstrainedPPO(cfg, actor, critic, costCritic, rng)
	if err != nil {
		b.Fatal(err)
	}
	buf := NewBuffer(256)
	for !buf.Full() {
		s := tensor.NewVector(stateDim)
		for i := range s {
			s[i] = rng.NormFloat64()
		}
		a, logp := actor.Sample(s, rng)
		var cost, costValue CostVec
		for j := range cost {
			if v := rng.NormFloat64(); v > 0 {
				cost[j] = v
			}
		}
		copy(costValue[:], costCritic.Forward(s))
		buf.Add(Transition{State: s, Action: a.Clone(), Reward: rng.NormFloat64(),
			LogProb: logp, Value: critic.Forward(s)[0],
			Cost: cost, CostValue: costValue, Done: rng.Intn(40) == 0})
	}
	return p, MakeConstrainedBatchInto(&Batch{}, buf, 0, CostVec{}, 0.99, 0.95)
}

// BenchmarkConstrainedPPOUpdate measures one Lagrangian update over the
// 256-sample paper-scale batch on the single-threaded engine. Compare against
// the root package's BenchmarkPPOUpdate for the constrained-path overhead
// (cost-critic forward/backward waves + multiplier step).
func BenchmarkConstrainedPPOUpdate(b *testing.B) {
	p, batch := benchConstrainedPPOBatch(b, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Update(batch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConstrainedPPOUpdateParallel is the same update with four engine
// workers — bit-identical results, only wall-clock moves.
func BenchmarkConstrainedPPOUpdateParallel(b *testing.B) {
	p, batch := benchConstrainedPPOBatch(b, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Update(batch); err != nil {
			b.Fatal(err)
		}
	}
}
