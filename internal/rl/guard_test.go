package rl

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

func guardBatch(n, stateDim, actionDim int, seed int64) *Batch {
	rng := rand.New(rand.NewSource(seed))
	b := &Batch{}
	for i := 0; i < n; i++ {
		s := tensor.NewVector(stateDim)
		a := tensor.NewVector(actionDim)
		for j := range s {
			s[j] = rng.NormFloat64()
		}
		for j := range a {
			a[j] = 0.3 * rng.NormFloat64()
		}
		b.States = append(b.States, s)
		b.Actions = append(b.Actions, a)
		b.OldLogProb = append(b.OldLogProb, -1.0+0.1*rng.NormFloat64())
		b.Advantages = append(b.Advantages, rng.NormFloat64())
		b.Returns = append(b.Returns, rng.NormFloat64())
	}
	return b
}

func guardPPO(t *testing.T, cfg PPOConfig) *PPO {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	actor := NewGaussianPolicy(4, 2, []int{6}, 0.3, rng)
	critic := nn.NewMLP([]int{4, 6, 1}, nn.Tanh, nn.Identity, rng)
	p, err := NewPPO(cfg, actor, critic, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// A NaN advantage poisons its whole minibatch: with the minibatch spanning
// the entire batch, every epoch must be skipped and the parameters must not
// move at all.
func TestPPONaNGuardSkipsPoisonedBatch(t *testing.T) {
	cfg := DefaultPPOConfig()
	cfg.MinibatchSize = 0 // whole buffer per minibatch
	p := guardPPO(t, cfg)
	before := snapshotParams(p.Actor.Params())
	beforeCritic := snapshotParams(p.Critic.Params())

	batch := guardBatch(12, 4, 2, 1)
	batch.Advantages[5] = math.NaN()
	st, err := p.Update(batch)
	if err != nil {
		t.Fatal(err)
	}
	if st.SkippedMinibatches != cfg.Epochs {
		t.Fatalf("skipped %d minibatches, want %d (one per epoch)", st.SkippedMinibatches, cfg.Epochs)
	}
	if !reflect.DeepEqual(snapshotParams(p.Actor.Params()), before) ||
		!reflect.DeepEqual(snapshotParams(p.Critic.Params()), beforeCritic) {
		t.Fatal("poisoned batch moved the parameters")
	}
	for _, v := range []float64{st.PolicyLoss, st.ValueLoss, st.ApproxKL, st.ClipFraction} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite statistic leaked through the guard: %+v", st)
		}
	}
}

// With smaller minibatches only the poisoned one is dropped; the rest of the
// data still trains, and every reported statistic stays finite.
func TestPPONaNGuardTrainsOnHealthyMinibatches(t *testing.T) {
	cfg := DefaultPPOConfig()
	cfg.MinibatchSize = 4
	cfg.TargetKL = 0 // keep all epochs so skips are predictable in count
	p := guardPPO(t, cfg)
	before := snapshotParams(p.Actor.Params())

	batch := guardBatch(12, 4, 2, 2)
	batch.Advantages[7] = math.NaN()
	st, err := p.Update(batch)
	if err != nil {
		t.Fatal(err)
	}
	// One of the three minibatches per epoch holds the poisoned sample.
	if st.SkippedMinibatches != cfg.Epochs {
		t.Fatalf("skipped %d minibatches, want %d", st.SkippedMinibatches, cfg.Epochs)
	}
	if reflect.DeepEqual(snapshotParams(p.Actor.Params()), before) {
		t.Fatal("healthy minibatches did not train")
	}
	if !paramsFinite(p.Actor.Params()) || !paramsFinite(p.Critic.Params()) {
		t.Fatal("parameters went non-finite")
	}
	for _, v := range []float64{st.PolicyLoss, st.ValueLoss, st.ApproxKL, st.ClipFraction, st.Entropy} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite statistic: %+v", st)
		}
	}
}

// If an optimizer step itself overflows the parameters, the divergence guard
// must roll the whole update back to the weights it started from.
func TestPPODivergenceRestoresLastGoodWeights(t *testing.T) {
	cfg := DefaultPPOConfig()
	cfg.Epochs = 1
	cfg.MinibatchSize = 0
	cfg.CriticLR = math.Inf(1) // an overflowing step drives weights to ±Inf/NaN
	p := guardPPO(t, cfg)
	actorBefore := snapshotParams(p.Actor.Params())
	criticBefore := snapshotParams(p.Critic.Params())

	st, err := p.Update(guardBatch(8, 4, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !st.Restored {
		t.Fatalf("divergence not detected: %+v", st)
	}
	if !reflect.DeepEqual(snapshotParams(p.Actor.Params()), actorBefore) ||
		!reflect.DeepEqual(snapshotParams(p.Critic.Params()), criticBefore) {
		t.Fatal("rollback did not restore the starting weights")
	}
	if !paramsFinite(p.Critic.Params()) {
		t.Fatal("critic still non-finite after rollback")
	}
	// A follow-up update with sane data must work on the restored weights.
	p.Cfg.CriticLR = 1e-3
	p.criticOpt = nn.NewAdam(1e-3)
	if _, err := p.Update(guardBatch(8, 4, 2, 4)); err != nil {
		t.Fatal(err)
	}
	if !paramsFinite(p.Critic.Params()) {
		t.Fatal("training after rollback corrupted the critic")
	}
}

// The A2C guard must skip its single step on a poisoned batch.
func TestA2CNaNGuardSkipsUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	actor := NewGaussianPolicy(4, 2, []int{6}, 0.3, rng)
	critic := nn.NewMLP([]int{4, 6, 1}, nn.Tanh, nn.Identity, rng)
	a, err := NewA2C(DefaultA2CConfig(), actor, critic)
	if err != nil {
		t.Fatal(err)
	}
	before := snapshotParams(actor.Params())
	batch := guardBatch(8, 4, 2, 5)
	batch.Returns[2] = math.NaN()
	st, err := a.Update(batch)
	if err != nil {
		t.Fatal(err)
	}
	if st.SkippedMinibatches != 1 {
		t.Fatalf("poisoned A2C batch not skipped: %+v", st)
	}
	if !reflect.DeepEqual(snapshotParams(actor.Params()), before) {
		t.Fatal("poisoned A2C batch moved the parameters")
	}
	if math.IsNaN(st.PolicyLoss) || math.IsNaN(st.ValueLoss) {
		t.Fatal("NaN leaked into A2C stats")
	}
}
