package rl

import (
	"math"
	"math/rand"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Policy is a stochastic continuous-action policy trainable by PPO. Both
// the joint actor of the paper's Fig. 5 (one network maps the whole state
// to all device frequencies) and the weight-shared per-device actor
// implement it.
type Policy interface {
	// StateDim returns the expected state length.
	StateDim() int
	// ActionDim returns the action length.
	ActionDim() int
	// Mean returns μ(s); the slice may be owned by the policy.
	Mean(s tensor.Vector) tensor.Vector
	// Sample draws a ~ π(·|s) and returns it with log π(a|s).
	Sample(s tensor.Vector, rng *rand.Rand) (tensor.Vector, float64)
	// LogProb returns log π(a|s).
	LogProb(s, a tensor.Vector) float64
	// BackwardLogProb accumulates upstream·∇log π(a|s) into the parameter
	// gradients and returns log π(a|s).
	BackwardLogProb(s, a tensor.Vector, upstream float64) float64
	// AddEntropyGrad accumulates coef·∇H(π).
	AddEntropyGrad(coef float64)
	// Entropy returns the policy entropy H(π).
	Entropy() float64
	// ZeroGrad clears gradient accumulators.
	ZeroGrad()
	// Params exposes all trainable parameters.
	Params() []nn.Param
	// ClonePolicy deep-copies the policy (the θ_old snapshot).
	ClonePolicy() Policy
	// CopyFrom copies parameters from a policy of the same concrete type.
	CopyFrom(src Policy)
}

// SharedGaussianPolicy applies one small per-device network to each
// device's slice of the state (its H+1 bandwidth-slot history), producing
// that device's action mean; a single log-σ is shared by all devices. With
// N devices the state must be N·perDev long. Weight sharing turns every
// device in every iteration into a training example for the same network,
// which is what makes the 50-device simulation of Fig. 8 learnable at the
// paper's sample budget.
type SharedGaussianPolicy struct {
	// Net maps one device's perDev-long history slice to its action mean.
	Net *nn.MLP
	// N is the number of devices.
	N int
	// LogStd is the shared log-σ (one scalar stored as a length-1 vector).
	LogStd tensor.Vector
	// GLogStd accumulates its gradient.
	GLogStd tensor.Vector
}

var _ Policy = (*SharedGaussianPolicy)(nil)
var _ Policy = (*GaussianPolicy)(nil)

// NewSharedGaussianPolicy builds the weight-shared actor: perDev inputs per
// device, tanh hidden layers, one tanh output.
func NewSharedGaussianPolicy(n, perDev int, hidden []int, initStd float64, rng *rand.Rand) *SharedGaussianPolicy {
	if n <= 0 || perDev <= 0 {
		panic("rl: shared policy needs positive device count and per-device dim")
	}
	sizes := append(append([]int{perDev}, hidden...), 1)
	p := &SharedGaussianPolicy{
		Net:     nn.NewMLP(sizes, nn.Tanh, nn.Tanh, rng),
		N:       n,
		LogStd:  tensor.NewVector(1),
		GLogStd: tensor.NewVector(1),
	}
	if initStd <= 0 {
		initStd = 0.5
	}
	p.LogStd[0] = math.Log(initStd)
	return p
}

// StateDim implements Policy.
func (p *SharedGaussianPolicy) StateDim() int { return p.N * p.Net.InDim() }

// ActionDim implements Policy.
func (p *SharedGaussianPolicy) ActionDim() int { return p.N }

func (p *SharedGaussianPolicy) slice(s tensor.Vector, i int) tensor.Vector {
	per := p.Net.InDim()
	return s[i*per : (i+1)*per]
}

// Mean implements Policy; the returned vector is freshly allocated.
func (p *SharedGaussianPolicy) Mean(s tensor.Vector) tensor.Vector {
	p.checkState(s)
	out := tensor.NewVector(p.N)
	for i := 0; i < p.N; i++ {
		out[i] = p.Net.Forward(p.slice(s, i))[0]
	}
	return out
}

func (p *SharedGaussianPolicy) checkState(s tensor.Vector) {
	if len(s) != p.StateDim() {
		panic("rl: shared policy state length mismatch")
	}
}

// Sample implements Policy.
func (p *SharedGaussianPolicy) Sample(s tensor.Vector, rng *rand.Rand) (tensor.Vector, float64) {
	mu := p.Mean(s)
	sigma := math.Exp(p.LogStd[0])
	a := tensor.NewVector(p.N)
	var logp float64
	for i := range mu {
		a[i] = mu[i] + sigma*rng.NormFloat64()
		logp += gaussLogPDF(a[i], mu[i], sigma, p.LogStd[0])
	}
	return a, logp
}

// LogProb implements Policy.
func (p *SharedGaussianPolicy) LogProb(s, a tensor.Vector) float64 {
	mu := p.Mean(s)
	sigma := math.Exp(p.LogStd[0])
	var logp float64
	for i := range mu {
		logp += gaussLogPDF(a[i], mu[i], sigma, p.LogStd[0])
	}
	return logp
}

// BackwardLogProb implements Policy: it re-runs each device's forward pass
// and immediately backpropagates that device's mean gradient, so the
// shared network accumulates all N contributions.
func (p *SharedGaussianPolicy) BackwardLogProb(s, a tensor.Vector, upstream float64) float64 {
	p.checkState(s)
	if len(a) != p.N {
		panic("rl: shared policy action length mismatch")
	}
	sigma := math.Exp(p.LogStd[0])
	var logp float64
	dmu := tensor.NewVector(1)
	for i := 0; i < p.N; i++ {
		xs := p.slice(s, i)
		mu := p.Net.Forward(xs)[0]
		z := (a[i] - mu) / sigma
		logp += gaussLogPDF(a[i], mu, sigma, p.LogStd[0])
		dmu[0] = upstream * z / sigma
		p.Net.Backward(dmu)
		p.GLogStd[0] += upstream * (z*z - 1)
	}
	return logp
}

// AddEntropyGrad implements Policy: H = N·(logσ + ½log 2πe), so
// ∂H/∂logσ = N.
func (p *SharedGaussianPolicy) AddEntropyGrad(coef float64) {
	p.GLogStd[0] += coef * float64(p.N)
}

// Entropy implements Policy.
func (p *SharedGaussianPolicy) Entropy() float64 {
	return float64(p.N) * (p.LogStd[0] + 0.5*(log2Pi+1))
}

// ZeroGrad implements Policy.
func (p *SharedGaussianPolicy) ZeroGrad() {
	p.Net.ZeroGrad()
	p.GLogStd.Zero()
}

// Params implements Policy.
func (p *SharedGaussianPolicy) Params() []nn.Param {
	ps := p.Net.Params()
	return append(ps, nn.Param{Name: "logstd", W: p.LogStd, G: p.GLogStd})
}

// ClonePolicy implements Policy.
func (p *SharedGaussianPolicy) ClonePolicy() Policy {
	return &SharedGaussianPolicy{
		Net:     p.Net.Clone(),
		N:       p.N,
		LogStd:  p.LogStd.Clone(),
		GLogStd: tensor.NewVector(1),
	}
}

// CopyFrom implements Policy.
func (p *SharedGaussianPolicy) CopyFrom(src Policy) {
	s, ok := src.(*SharedGaussianPolicy)
	if !ok {
		panic("rl: CopyFrom with mismatched policy type")
	}
	p.Net.CopyParamsFrom(s.Net)
	copy(p.LogStd, s.LogStd)
}
