package rl

import (
	"math"
	"math/rand"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Policy is a stochastic continuous-action policy trainable by PPO. Both
// the joint actor of the paper's Fig. 5 (one network maps the whole state
// to all device frequencies) and the weight-shared per-device actor
// implement it.
type Policy interface {
	// StateDim returns the expected state length.
	StateDim() int
	// ActionDim returns the action length.
	ActionDim() int
	// Mean returns μ(s); the slice may be owned by the policy.
	Mean(s tensor.Vector) tensor.Vector
	// Sample draws a ~ π(·|s) and returns it with log π(a|s).
	Sample(s tensor.Vector, rng *rand.Rand) (tensor.Vector, float64)
	// LogProb returns log π(a|s).
	LogProb(s, a tensor.Vector) float64
	// BackwardLogProb accumulates upstream·∇log π(a|s) into the parameter
	// gradients and returns log π(a|s).
	BackwardLogProb(s, a tensor.Vector, upstream float64) float64
	// AddEntropyGrad accumulates coef·∇H(π).
	AddEntropyGrad(coef float64)
	// Entropy returns the policy entropy H(π).
	Entropy() float64
	// ZeroGrad clears gradient accumulators.
	ZeroGrad()
	// Params exposes all trainable parameters.
	Params() []nn.Param
	// ClonePolicy deep-copies the policy (the θ_old snapshot).
	ClonePolicy() Policy
	// CopyFrom copies parameters from a policy of the same concrete type.
	CopyFrom(src Policy)
}

// BatchPolicy is implemented by policies that can evaluate and
// backpropagate a whole minibatch in one matrix pass. The contract is
// strict: per-row results and gradient accumulation must be bit-identical
// to the per-sample Policy methods applied in ascending row order, so the
// PPO update can take the batched fast path without changing training
// output. Both built-in policies implement it.
type BatchPolicy interface {
	Policy
	// LogProbBatch stores log π(a_i|s_i) for every row pair into out. It
	// additionally caches the forward pass it runs.
	LogProbBatch(S, A *tensor.Matrix, out tensor.Vector)
	// BackwardLogProbBatch accumulates Σ_i upstream[i]·∇log π(a_i|s_i)
	// into the parameter gradients. Rows with upstream[i] == 0 must
	// contribute no gradient. When called with the same S matrix as an
	// immediately preceding LogProbBatch — with parameters and S contents
	// unchanged in between, as in the PPO minibatch loop — it reuses the
	// cached forward pass instead of recomputing it; callers that mutate
	// S.Data or the parameters between the two calls must not interleave
	// them this way.
	BackwardLogProbBatch(S, A *tensor.Matrix, upstream tensor.Vector)
}

var _ BatchPolicy = (*SharedGaussianPolicy)(nil)
var _ BatchPolicy = (*GaussianPolicy)(nil)

// SharedGaussianPolicy applies one small per-device network to each
// device's slice of the state (its H+1 bandwidth-slot history), producing
// that device's action mean; a single log-σ is shared by all devices. With
// N devices the state must be N·perDev long. Weight sharing turns every
// device in every iteration into a training example for the same network,
// which is what makes the 50-device simulation of Fig. 8 learnable at the
// paper's sample budget.
type SharedGaussianPolicy struct {
	// Net maps one device's perDev-long history slice to its action mean.
	Net *nn.MLP
	// N is the number of devices.
	N int
	// LogStd is the shared log-σ (one scalar stored as a length-1 vector).
	LogStd tensor.Vector
	// GLogStd accumulates its gradient.
	GLogStd tensor.Vector

	// lastS/lastMu cache the most recent LogProbBatch forward pass so an
	// immediately following BackwardLogProbBatch on the same S skips the
	// duplicate forward (see the BatchPolicy contract). dmuBuf is the
	// reusable upstream-gradient buffer for the batched backward; devView
	// is the persistent header deviceRows reinterprets batches through.
	lastS   *tensor.Matrix
	lastMu  *tensor.Matrix
	dmuBuf  *tensor.Matrix
	devView tensor.Matrix

	// shardMode marks a CloneGradShard replica: its batched backward
	// overwrites GLogStd instead of accumulating, matching the set-grads
	// behavior of its nn.CloneGradOnly network.
	shardMode bool
}

var _ Policy = (*SharedGaussianPolicy)(nil)
var _ Policy = (*GaussianPolicy)(nil)

// NewSharedGaussianPolicy builds the weight-shared actor: perDev inputs per
// device, tanh hidden layers, one tanh output.
func NewSharedGaussianPolicy(n, perDev int, hidden []int, initStd float64, rng *rand.Rand) *SharedGaussianPolicy {
	if n <= 0 || perDev <= 0 {
		panic("rl: shared policy needs positive device count and per-device dim")
	}
	sizes := append(append([]int{perDev}, hidden...), 1)
	p := &SharedGaussianPolicy{
		Net:     nn.NewMLP(sizes, nn.Tanh, nn.Tanh, rng),
		N:       n,
		LogStd:  tensor.NewVector(1),
		GLogStd: tensor.NewVector(1),
	}
	if initStd <= 0 {
		initStd = 0.5
	}
	p.LogStd[0] = math.Log(initStd)
	return p
}

// StateDim implements Policy.
func (p *SharedGaussianPolicy) StateDim() int { return p.N * p.Net.InDim() }

// ActionDim implements Policy.
func (p *SharedGaussianPolicy) ActionDim() int { return p.N }

func (p *SharedGaussianPolicy) slice(s tensor.Vector, i int) tensor.Vector {
	per := p.Net.InDim()
	return s[i*per : (i+1)*per]
}

// Mean implements Policy; the returned vector is freshly allocated.
func (p *SharedGaussianPolicy) Mean(s tensor.Vector) tensor.Vector {
	p.checkState(s)
	out := tensor.NewVector(p.N)
	for i := 0; i < p.N; i++ {
		out[i] = p.Net.Forward(p.slice(s, i))[0]
	}
	return out
}

// MeanInto computes μ(s) into dst with one fleet-batched float64 forward:
// the state is reinterpreted (zero-copy) as N per-device rows and pushed
// through the shared network in a single pass. Each row of ForwardBatch is
// bit-identical to the corresponding per-device Forward call, so MeanInto
// returns exactly what Mean returns — only the batching changes.
func (p *SharedGaussianPolicy) MeanInto(dst, s tensor.Vector) {
	p.checkState(s)
	if len(dst) != p.N {
		panic("rl: shared policy action length mismatch")
	}
	p.devView.Rows, p.devView.Cols, p.devView.Data = p.N, p.Net.InDim(), s
	mu := p.Net.ForwardBatch(&p.devView)
	for i := 0; i < p.N; i++ {
		dst[i] = mu.Data[i*mu.Cols]
	}
}

func (p *SharedGaussianPolicy) checkState(s tensor.Vector) {
	if len(s) != p.StateDim() {
		panic("rl: shared policy state length mismatch")
	}
}

// Sample implements Policy.
func (p *SharedGaussianPolicy) Sample(s tensor.Vector, rng *rand.Rand) (tensor.Vector, float64) {
	mu := p.Mean(s)
	sigma := math.Exp(p.LogStd[0])
	a := tensor.NewVector(p.N)
	var logp float64
	for i := range mu {
		a[i] = mu[i] + sigma*rng.NormFloat64()
		logp += gaussLogPDF(a[i], mu[i], sigma, p.LogStd[0])
	}
	return a, logp
}

// LogProb implements Policy.
func (p *SharedGaussianPolicy) LogProb(s, a tensor.Vector) float64 {
	mu := p.Mean(s)
	sigma := math.Exp(p.LogStd[0])
	var logp float64
	for i := range mu {
		logp += gaussLogPDF(a[i], mu[i], sigma, p.LogStd[0])
	}
	return logp
}

// BackwardLogProb implements Policy: it re-runs each device's forward pass
// and immediately backpropagates that device's mean gradient, so the
// shared network accumulates all N contributions.
func (p *SharedGaussianPolicy) BackwardLogProb(s, a tensor.Vector, upstream float64) float64 {
	p.checkState(s)
	if len(a) != p.N {
		panic("rl: shared policy action length mismatch")
	}
	sigma := math.Exp(p.LogStd[0])
	var logp float64
	dmu := tensor.NewVector(1)
	for i := 0; i < p.N; i++ {
		xs := p.slice(s, i)
		mu := p.Net.Forward(xs)[0]
		z := (a[i] - mu) / sigma
		logp += gaussLogPDF(a[i], mu, sigma, p.LogStd[0])
		dmu[0] = upstream * z / sigma
		p.Net.Backward(dmu)
		p.GLogStd[0] += upstream * (z*z - 1)
	}
	return logp
}

// LogProbBatch implements BatchPolicy. The batch of full states (one row
// per sample, N·perDev wide) is reinterpreted — zero-copy, thanks to
// row-major layout — as a (n·N)×perDev matrix of per-device histories and
// pushed through the shared network in one pass. out[i] is bit-identical to
// LogProb(S.Row(i), A.Row(i)).
func (p *SharedGaussianPolicy) LogProbBatch(S, A *tensor.Matrix, out tensor.Vector) {
	n := p.checkBatch(S, A, len(out))
	mu := p.Net.ForwardBatch(p.deviceRows(S))
	p.lastS, p.lastMu = S, mu
	sigma := math.Exp(p.LogStd[0])
	for i := 0; i < n; i++ {
		arow := A.Row(i)
		var logp float64
		for d := 0; d < p.N; d++ {
			logp += gaussLogPDF(arow[d], mu.Data[i*p.N+d], sigma, p.LogStd[0])
		}
		out[i] = logp
	}
}

// BackwardLogProbBatch implements BatchPolicy: one batched forward/backward
// over all n·N device rows, accumulating gradients in (sample, device)
// order — the same order the per-sample BackwardLogProb loop uses.
func (p *SharedGaussianPolicy) BackwardLogProbBatch(S, A *tensor.Matrix, upstream tensor.Vector) {
	n := p.checkBatch(S, A, len(upstream))
	mu := p.lastMu
	if p.lastS != S || mu == nil || mu.Rows != n*p.N {
		mu = p.Net.ForwardBatch(p.deviceRows(S))
	}
	p.lastS, p.lastMu = nil, nil
	if p.shardMode {
		p.GLogStd.Zero() // replicas set, not accumulate (see CloneGradShard)
	}
	sigma := math.Exp(p.LogStd[0])
	p.dmuBuf = tensor.EnsureShape(p.dmuBuf, n*p.N, 1)
	dmu := p.dmuBuf
	dmu.Zero()
	for i := 0; i < n; i++ {
		u := upstream[i]
		if u == 0 {
			continue
		}
		arow := A.Row(i)
		for d := 0; d < p.N; d++ {
			z := (arow[d] - mu.Data[i*p.N+d]) / sigma
			dmu.Data[i*p.N+d] = u * z / sigma
			p.GLogStd[0] += u * (z*z - 1)
		}
	}
	p.Net.BackwardBatchParams(dmu)
}

// CloneGradShard implements ShardedPolicy: the replica shares the per-device
// network's weights and the LogStd vector with p, owns private gradient
// accumulators, and runs the serial set-grads kernels of nn.CloneGradOnly.
func (p *SharedGaussianPolicy) CloneGradShard() ShardedPolicy {
	return &SharedGaussianPolicy{
		Net:       p.Net.CloneGradOnly(),
		N:         p.N,
		LogStd:    p.LogStd, // shared: replicas always see live parameters
		GLogStd:   tensor.NewVector(1),
		shardMode: true,
	}
}

// deviceRows reinterprets a batch of full states as per-device input rows,
// reusing the policy's persistent header. The view stays valid until the
// next deviceRows call, which is exactly the forward→backward window the
// layer input-reference contract requires.
func (p *SharedGaussianPolicy) deviceRows(S *tensor.Matrix) *tensor.Matrix {
	p.devView.Rows, p.devView.Cols, p.devView.Data = S.Rows*p.N, p.Net.InDim(), S.Data
	return &p.devView
}

func (p *SharedGaussianPolicy) checkBatch(S, A *tensor.Matrix, n int) int {
	if S.Rows != n || A.Rows != n || S.Cols != p.StateDim() || A.Cols != p.N {
		panic("rl: shared policy batch shape mismatch")
	}
	return n
}

// AddEntropyGrad implements Policy: H = N·(logσ + ½log 2πe), so
// ∂H/∂logσ = N.
func (p *SharedGaussianPolicy) AddEntropyGrad(coef float64) {
	p.GLogStd[0] += coef * float64(p.N)
}

// Entropy implements Policy.
func (p *SharedGaussianPolicy) Entropy() float64 {
	return float64(p.N) * (p.LogStd[0] + 0.5*(log2Pi+1))
}

// ZeroGrad implements Policy.
func (p *SharedGaussianPolicy) ZeroGrad() {
	p.Net.ZeroGrad()
	p.GLogStd.Zero()
}

// Params implements Policy.
func (p *SharedGaussianPolicy) Params() []nn.Param {
	ps := p.Net.Params()
	return append(ps, nn.Param{Name: "logstd", W: p.LogStd, G: p.GLogStd})
}

// ClonePolicy implements Policy.
func (p *SharedGaussianPolicy) ClonePolicy() Policy {
	return &SharedGaussianPolicy{
		Net:     p.Net.Clone(),
		N:       p.N,
		LogStd:  p.LogStd.Clone(),
		GLogStd: tensor.NewVector(1),
	}
}

// CopyFrom implements Policy.
func (p *SharedGaussianPolicy) CopyFrom(src Policy) {
	s, ok := src.(*SharedGaussianPolicy)
	if !ok {
		panic("rl: CopyFrom with mismatched policy type")
	}
	p.Net.CopyParamsFrom(s.Net)
	copy(p.LogStd, s.LogStd)
	p.lastS, p.lastMu = nil, nil // parameters changed: cached forward is stale
}
