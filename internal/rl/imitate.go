package rl

import (
	"fmt"
	"math"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Imitator fine-tunes a policy by behavior cloning: maximum-likelihood
// regression of the policy onto (state, action) pairs logged by the guard
// (the safe expert's served plans on drifted inputs, plus the actor's own
// clean decisions as anchors against forgetting). One Step minimizes the
// batch NLL −mean_i log π(a_i|s_i) with a clipped Adam step.
//
// The forward/backward waves run on the same fixed-block shard engine as
// the PPO update, so imitation inherits its contract unchanged: the
// resulting parameters are bit-identical at any worker count.
type Imitator struct {
	actor       ShardedPolicy
	params      []nn.Param
	opt         *nn.Adam
	engine      *shardEngine
	maxGradNorm float64

	logp     tensor.Vector
	upstream tensor.Vector
}

// NewImitator builds an imitation fine-tuner around the actor. The critic
// rides along only to satisfy the engine's replica pool (imitation never
// touches it); lr and maxGradNorm mirror PPOConfig.LR/MaxGradNorm.
func NewImitator(actor ShardedPolicy, critic *nn.MLP, lr, maxGradNorm float64, workers int) (*Imitator, error) {
	if actor == nil || critic == nil {
		return nil, fmt.Errorf("rl: imitator needs an actor and a critic")
	}
	if lr <= 0 {
		return nil, fmt.Errorf("rl: imitation learning rate %v must be positive", lr)
	}
	if maxGradNorm <= 0 {
		return nil, fmt.Errorf("rl: imitation gradient clip %v must be positive", maxGradNorm)
	}
	return &Imitator{
		actor:       actor,
		params:      actor.Params(),
		opt:         nn.NewAdam(lr),
		engine:      newShardEngine(actor, critic, workers),
		maxGradNorm: maxGradNorm,
	}, nil
}

// Optimizer exposes the Adam state (tests pin its determinism).
func (im *Imitator) Optimizer() *nn.Adam { return im.opt }

// Step runs one full-batch NLL descent step over the row-aligned state and
// action matrices and returns the batch NLL measured before the step. A
// non-finite loss (poisoned log entries) skips the parameter update and
// errors instead of corrupting the candidate.
func (im *Imitator) Step(S, A *tensor.Matrix) (float64, error) {
	m := S.Rows
	switch {
	case m == 0:
		return 0, fmt.Errorf("rl: imitation step on an empty batch")
	case A.Rows != m:
		return 0, fmt.Errorf("rl: imitation batch has %d states for %d actions", m, A.Rows)
	case S.Cols != im.actor.StateDim():
		return 0, fmt.Errorf("rl: imitation state dim %d, want %d", S.Cols, im.actor.StateDim())
	case A.Cols != im.actor.ActionDim():
		return 0, fmt.Errorf("rl: imitation action dim %d, want %d", A.Cols, im.actor.ActionDim())
	}
	if cap(im.logp) < m {
		im.logp = tensor.NewVector(m)
		im.upstream = tensor.NewVector(m)
	}
	im.logp = im.logp[:m]
	im.upstream = im.upstream[:m]
	im.engine.forward(S, A, im.logp, false)
	var nll float64
	g := -1.0 / float64(m)
	for i, lp := range im.logp {
		nll -= lp
		im.upstream[i] = g
	}
	nll /= float64(m)
	if math.IsNaN(nll) || math.IsInf(nll, 0) {
		return nll, fmt.Errorf("rl: non-finite imitation loss %v", nll)
	}
	im.engine.backward(im.upstream, nil, nil, false)
	norm := nn.GradNorm(im.params)
	if math.IsNaN(norm) || math.IsInf(norm, 0) {
		return nll, fmt.Errorf("rl: non-finite imitation gradient norm %v", norm)
	}
	im.opt.StepScaled(im.params, nn.ClipScale(norm, im.maxGradNorm))
	return nll, nil
}
