package rl

import (
	"sync"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// This file implements the deterministic data-parallel training engine used
// by the PPO and A2C updates. A minibatch is cut into fixed gradShardRows-row
// blocks; each block owns a gradient replica of the actor and critic
// (weights shared, gradients and forward caches private), so any number of
// workers can process disjoint blocks concurrently without synchronization.
// The per-block gradients are then folded into the primary networks by
// nn.MergeGradTree, whose reduction shape depends only on the block count —
// never on the worker count — so the merged gradient, and therefore the
// entire training trajectory, is bit-identical whether the engine runs on
// one goroutine or eight. This is the same invariance contract the rollout
// collector (core.Config.Workers) and the hierarchical federation engine
// already keep: parallelism changes wall-clock time, never results.

// ShardedPolicy is implemented by policies that can produce gradient
// replicas for the data-parallel update engine. Both built-in policies
// implement it.
type ShardedPolicy interface {
	BatchPolicy
	// CloneGradShard returns a replica sharing this policy's parameters
	// (network weights, biases, log-σ) but owning private gradient
	// accumulators and forward caches. Replicas run serial kernels and
	// overwrite rather than accumulate their gradients on each
	// BackwardLogProbBatch call.
	CloneGradShard() ShardedPolicy
}

var (
	_ ShardedPolicy = (*GaussianPolicy)(nil)
	_ ShardedPolicy = (*SharedGaussianPolicy)(nil)
)

// gradShardRows is the fixed row-block size of the engine. The block
// decomposition — and with it every floating-point grouping in the merged
// gradient — is a function of the minibatch size alone, which is what makes
// the update worker-count invariant. 16 rows keeps per-block kernel calls
// large enough to amortize dispatch while giving a 64-row minibatch four
// blocks to spread across workers.
const gradShardRows = 16

// shardEngine drives the two waves of one minibatch step: a forward wave
// (policy log-probs and critic values, per block) and a backward wave
// (policy and critic backprop per block) followed by the gradient merge.
type shardEngine struct {
	workers int

	actor  ShardedPolicy
	critic *nn.MLP

	// Merge destinations, captured once: Policy.Params() appends the log-σ
	// view to the network's cached slice and therefore allocates per call.
	actorParams  []nn.Param
	criticParams []nn.Param

	// Optional cost critic of the constrained update, attached once before
	// the first ensure. Its replicas ride the same block decomposition and
	// merge tree as the critic's, so the constrained update inherits the
	// worker-invariance contract unchanged.
	costCritic *nn.MLP
	costParams []nn.Param

	// Per-block replicas and their cached parameter views, grown on demand
	// (the full-batch KL pass needs more blocks than a minibatch).
	ashards []ShardedPolicy
	cshards []*nn.MLP
	kshards []*nn.MLP
	aparams [][]nn.Param
	cparams [][]nn.Param
	kparams [][]nn.Param

	// Persistent per-block view headers into the caller's staging matrices.
	// Individually allocated so their addresses are stable: the replicas'
	// forward caches are keyed on them.
	sviews, aviews, dvviews, dkviews []*tensor.Matrix

	vbuf tensor.Vector // critic values of the forward wave
	kbuf tensor.Vector // cost critic values, row-major m×NumConstraints
}

func newShardEngine(actor ShardedPolicy, critic *nn.MLP, workers int) *shardEngine {
	if workers < 1 {
		workers = 1
	}
	return &shardEngine{
		workers:      workers,
		actor:        actor,
		critic:       critic,
		actorParams:  actor.Params(),
		criticParams: critic.Params(),
	}
}

// attachCostCritic registers the constrained update's cost critic. It must
// be called before the first forward (replica pools grow in lockstep).
func (e *shardEngine) attachCostCritic(k *nn.MLP) {
	e.costCritic = k
	e.costParams = k.Params()
}

// ensure grows the replica pool to blocks and the value buffer to m rows.
func (e *shardEngine) ensure(blocks, m int) {
	for len(e.ashards) < blocks {
		as := e.actor.CloneGradShard()
		cs := e.critic.CloneGradOnly()
		e.ashards = append(e.ashards, as)
		e.cshards = append(e.cshards, cs)
		e.aparams = append(e.aparams, as.Params())
		e.cparams = append(e.cparams, cs.Params())
		e.sviews = append(e.sviews, &tensor.Matrix{})
		e.aviews = append(e.aviews, &tensor.Matrix{})
		e.dvviews = append(e.dvviews, &tensor.Matrix{})
		if e.costCritic != nil {
			ks := e.costCritic.CloneGradOnly()
			e.kshards = append(e.kshards, ks)
			e.kparams = append(e.kparams, ks.Params())
			e.dkviews = append(e.dkviews, &tensor.Matrix{})
		}
	}
	if cap(e.vbuf) < m {
		e.vbuf = tensor.NewVector(m)
	}
	e.vbuf = e.vbuf[:m]
	if e.costCritic != nil {
		if cap(e.kbuf) < m*NumConstraints {
			e.kbuf = tensor.NewVector(m * NumConstraints)
		}
		e.kbuf = e.kbuf[:m*NumConstraints]
	}
}

func blockCount(m int) int { return (m + gradShardRows - 1) / gradShardRows }

// forward runs the forward wave over S/A: per-block policy log-probs into
// logp and, when withCritic, critic values into the returned vector (owned
// by the engine, valid until the next forward). Blocks are statically
// assigned worker t ∈ [0,w) the blocks t, t+w, t+2w, …; since blocks touch
// disjoint replicas and disjoint output rows, the assignment cannot affect
// any result bit.
func (e *shardEngine) forward(S, A *tensor.Matrix, logp tensor.Vector, withCritic bool) tensor.Vector {
	m := S.Rows
	blocks := blockCount(m)
	e.ensure(blocks, m)
	w := e.workers
	if w > blocks {
		w = blocks
	}
	if w <= 1 {
		// Kept free of closures: a goroutine closure in this function body —
		// even in a branch never taken — would move the captured arguments
		// to the heap and break the zero-alloc steady state.
		for b := 0; b < blocks; b++ {
			e.forwardBlock(b, S, A, logp, withCritic)
		}
	} else {
		e.forwardParallel(S, A, logp, withCritic, blocks, w)
	}
	if withCritic {
		return e.vbuf
	}
	return nil
}

func (e *shardEngine) forwardParallel(S, A *tensor.Matrix, logp tensor.Vector, withCritic bool, blocks, w int) {
	var wg sync.WaitGroup
	wg.Add(w - 1)
	for t := 1; t < w; t++ {
		go func(t int) {
			defer wg.Done()
			for b := t; b < blocks; b += w {
				e.forwardBlock(b, S, A, logp, withCritic)
			}
		}(t)
	}
	for b := 0; b < blocks; b += w {
		e.forwardBlock(b, S, A, logp, withCritic)
	}
	wg.Wait()
}

func (e *shardEngine) forwardBlock(b int, S, A *tensor.Matrix, logp tensor.Vector, withCritic bool) {
	lo := b * gradShardRows
	hi := lo + gradShardRows
	if hi > S.Rows {
		hi = S.Rows
	}
	sv := e.sviews[b]
	sv.Rows, sv.Cols, sv.Data = hi-lo, S.Cols, S.Data[lo*S.Cols:hi*S.Cols]
	av := e.aviews[b]
	av.Rows, av.Cols, av.Data = hi-lo, A.Cols, A.Data[lo*A.Cols:hi*A.Cols]
	e.ashards[b].LogProbBatch(sv, av, logp[lo:hi])
	if withCritic {
		out := e.cshards[b].ForwardBatch(sv)
		copy(e.vbuf[lo:hi], out.Data)
		if e.costCritic != nil {
			kout := e.kshards[b].ForwardBatch(sv)
			copy(e.kbuf[lo*NumConstraints:hi*NumConstraints], kout.Data)
		}
	}
}

// backward runs the backward wave for the staging views set up by the
// immediately preceding forward call (same row count, S/A unchanged in
// between), then merges the per-block gradients into the primary actor and
// critic, overwriting their gradient accumulators. dK is the cost critic's
// upstream (row-major m×NumConstraints); nil skips the cost wave.
func (e *shardEngine) backward(upstream tensor.Vector, dV, dK *tensor.Matrix, withCritic bool) {
	m := len(upstream)
	blocks := blockCount(m)
	w := e.workers
	if w > blocks {
		w = blocks
	}
	if w <= 1 {
		// Closure-free for the same reason as forward.
		for b := 0; b < blocks; b++ {
			e.backwardBlock(b, m, upstream, dV, dK, withCritic)
		}
	} else {
		e.backwardParallel(upstream, dV, dK, withCritic, m, blocks, w)
	}
	nn.MergeGradTree(e.actorParams, e.aparams[:blocks])
	if withCritic {
		nn.MergeGradTree(e.criticParams, e.cparams[:blocks])
		if e.costCritic != nil && dK != nil {
			nn.MergeGradTree(e.costParams, e.kparams[:blocks])
		}
	}
}

func (e *shardEngine) backwardParallel(upstream tensor.Vector, dV, dK *tensor.Matrix, withCritic bool, m, blocks, w int) {
	var wg sync.WaitGroup
	wg.Add(w - 1)
	for t := 1; t < w; t++ {
		go func(t int) {
			defer wg.Done()
			for b := t; b < blocks; b += w {
				e.backwardBlock(b, m, upstream, dV, dK, withCritic)
			}
		}(t)
	}
	for b := 0; b < blocks; b += w {
		e.backwardBlock(b, m, upstream, dV, dK, withCritic)
	}
	wg.Wait()
}

func (e *shardEngine) backwardBlock(b, m int, upstream tensor.Vector, dV, dK *tensor.Matrix, withCritic bool) {
	lo := b * gradShardRows
	hi := lo + gradShardRows
	if hi > m {
		hi = m
	}
	e.ashards[b].BackwardLogProbBatch(e.sviews[b], e.aviews[b], upstream[lo:hi])
	if withCritic {
		dv := e.dvviews[b]
		dv.Rows, dv.Cols, dv.Data = hi-lo, 1, dV.Data[lo:hi]
		e.cshards[b].BackwardBatchParams(dv)
		if e.costCritic != nil && dK != nil {
			dk := e.dkviews[b]
			dk.Rows, dk.Cols, dk.Data = hi-lo, NumConstraints, dK.Data[lo*NumConstraints:hi*NumConstraints]
			e.kshards[b].BackwardBatchParams(dk)
		}
	}
}
