package rl

import (
	"fmt"

	"repro/internal/tensor"
)

// Transition is one (s, a, r, s') experience with the sampling policy's
// log-density and the critic's value estimate, as stored in Algorithm 1's
// replay buffer D.
type Transition struct {
	State   tensor.Vector
	Action  tensor.Vector
	Reward  float64
	LogProb float64
	Value   float64
	Done    bool
}

// Buffer is the experience replay buffer D of Algorithm 1: it fills to a
// fixed capacity, the agent runs M PPO epochs over it, and it is cleared
// (lines 16–23). It is an on-policy store, not a DQN-style reservoir.
type Buffer struct {
	capacity int
	items    []Transition
}

// NewBuffer creates a buffer with the given capacity (|D| > 0).
func NewBuffer(capacity int) *Buffer {
	if capacity <= 0 {
		panic(fmt.Sprintf("rl: buffer capacity %d must be positive", capacity))
	}
	return &Buffer{capacity: capacity, items: make([]Transition, 0, capacity)}
}

// Add appends a transition; it panics when the buffer is already full, since
// Algorithm 1 always drains a full buffer before sampling more.
func (b *Buffer) Add(t Transition) {
	if b.Full() {
		panic("rl: Add to full buffer; drain with Update and Clear first")
	}
	b.items = append(b.items, t)
}

// Len returns the number of stored transitions.
func (b *Buffer) Len() int { return len(b.items) }

// Cap returns the buffer capacity |D|.
func (b *Buffer) Cap() int { return b.capacity }

// Full reports whether the buffer reached capacity.
func (b *Buffer) Full() bool { return len(b.items) >= b.capacity }

// Items exposes the stored transitions (read-only by convention).
func (b *Buffer) Items() []Transition { return b.items }

// Clear empties the buffer (Algorithm 1 line 23).
func (b *Buffer) Clear() { b.items = b.items[:0] }

// Batch is the flattened training view of a buffer after GAE: everything
// the PPO update needs.
type Batch struct {
	States     []tensor.Vector
	Actions    []tensor.Vector
	OldLogProb []float64
	Advantages []float64
	Returns    []float64
}

// Len returns the number of samples.
func (b *Batch) Len() int { return len(b.States) }

// MakeBatch converts buffered transitions into a PPO batch. lastValue
// bootstraps the value of the state following the final transition (0 when
// that transition ended an episode). Advantages are normalized.
func MakeBatch(buf *Buffer, lastValue, gamma, lambda float64) *Batch {
	items := buf.Items()
	n := len(items)
	rewards := make([]float64, n)
	values := make([]float64, n)
	dones := make([]bool, n)
	for i, tr := range items {
		rewards[i] = tr.Reward
		values[i] = tr.Value
		dones[i] = tr.Done
	}
	adv, ret := GAE(rewards, values, lastValue, dones, gamma, lambda)
	NormalizeAdvantages(adv)
	batch := &Batch{
		States:     make([]tensor.Vector, n),
		Actions:    make([]tensor.Vector, n),
		OldLogProb: make([]float64, n),
		Advantages: adv,
		Returns:    ret,
	}
	for i, tr := range items {
		batch.States[i] = tr.State
		batch.Actions[i] = tr.Action
		batch.OldLogProb[i] = tr.LogProb
	}
	return batch
}
