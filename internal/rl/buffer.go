package rl

import (
	"fmt"

	"repro/internal/tensor"
)

// NumConstraints is the number of per-transition constraint cost signals of
// the Lagrangian update (deadline, energy — matching env.NumCostSignals). A
// compile-time size keeps the transition flat and the cost staging
// allocation-free.
const NumConstraints = 2

// CostVec is one value per constraint — a cost sample, a cost-value
// estimate, a Lagrange multiplier, or a cost limit, depending on context.
type CostVec [NumConstraints]float64

// Transition is one (s, a, r, s') experience with the sampling policy's
// log-density and the critic's value estimate, as stored in Algorithm 1's
// replay buffer D. Cost and CostValue carry the per-constraint cost signal
// and the cost critic's estimates; both stay zero in unconstrained training.
type Transition struct {
	State     tensor.Vector
	Action    tensor.Vector
	Reward    float64
	LogProb   float64
	Value     float64
	Done      bool
	Cost      CostVec
	CostValue CostVec
}

// Buffer is the experience replay buffer D of Algorithm 1: it fills to a
// fixed capacity, the agent runs M PPO epochs over it, and it is cleared
// (lines 16–23). It is an on-policy store, not a DQN-style reservoir.
type Buffer struct {
	capacity int
	items    []Transition
}

// NewBuffer creates a buffer with the given capacity (|D| > 0).
func NewBuffer(capacity int) *Buffer {
	if capacity <= 0 {
		panic(fmt.Sprintf("rl: buffer capacity %d must be positive", capacity))
	}
	return &Buffer{capacity: capacity, items: make([]Transition, 0, capacity)}
}

// Add appends a transition; it panics when the buffer is already full, since
// Algorithm 1 always drains a full buffer before sampling more.
func (b *Buffer) Add(t Transition) {
	if b.Full() {
		panic("rl: Add to full buffer; drain with Update and Clear first")
	}
	b.items = append(b.items, t)
}

// Len returns the number of stored transitions.
func (b *Buffer) Len() int { return len(b.items) }

// Cap returns the buffer capacity |D|.
func (b *Buffer) Cap() int { return b.capacity }

// Full reports whether the buffer reached capacity.
func (b *Buffer) Full() bool { return len(b.items) >= b.capacity }

// Items exposes the stored transitions (read-only by convention).
func (b *Buffer) Items() []Transition { return b.items }

// Clear empties the buffer (Algorithm 1 line 23).
func (b *Buffer) Clear() { b.items = b.items[:0] }

// Batch is the flattened training view of a buffer after GAE: everything
// the PPO update needs.
type Batch struct {
	States     []tensor.Vector
	Actions    []tensor.Vector
	OldLogProb []float64
	Advantages []float64
	Returns    []float64

	// Constrained extension, filled by MakeConstrainedBatchInto: per-
	// constraint cost advantages and cost returns (same GAE recursion over
	// the cost signal), plus the batch-mean episodic cost the multiplier
	// update compares against its limit. All empty/zero for plain batches.
	CostAdv  [NumConstraints][]float64
	CostRet  [NumConstraints][]float64
	CostMean CostVec

	// GAE staging, private to MakeBatchInto so a reused Batch converts a
	// full buffer without allocating.
	rewards, values []float64
	dones           []bool
	costs           [NumConstraints][]float64
	costValues      [NumConstraints][]float64
}

// Len returns the number of samples.
func (b *Batch) Len() int { return len(b.States) }

// grow resizes every slice to n samples, reusing capacity when possible.
func (b *Batch) grow(n int) {
	if cap(b.States) < n {
		b.States = make([]tensor.Vector, n)
		b.Actions = make([]tensor.Vector, n)
		b.OldLogProb = make([]float64, n)
		b.Advantages = make([]float64, n)
		b.Returns = make([]float64, n)
		b.rewards = make([]float64, n)
		b.values = make([]float64, n)
		b.dones = make([]bool, n)
		return
	}
	b.States = b.States[:n]
	b.Actions = b.Actions[:n]
	b.OldLogProb = b.OldLogProb[:n]
	b.Advantages = b.Advantages[:n]
	b.Returns = b.Returns[:n]
	b.rewards = b.rewards[:n]
	b.values = b.values[:n]
	b.dones = b.dones[:n]
}

// growCosts resizes the constrained extension to n samples, reusing
// capacity when possible. Separate from grow so plain batches never touch
// the cost slices.
func (b *Batch) growCosts(n int) {
	for j := 0; j < NumConstraints; j++ {
		if cap(b.CostAdv[j]) < n {
			b.CostAdv[j] = make([]float64, n)
			b.CostRet[j] = make([]float64, n)
			b.costs[j] = make([]float64, n)
			b.costValues[j] = make([]float64, n)
			continue
		}
		b.CostAdv[j] = b.CostAdv[j][:n]
		b.CostRet[j] = b.CostRet[j][:n]
		b.costs[j] = b.costs[j][:n]
		b.costValues[j] = b.costValues[j][:n]
	}
}

// MakeBatch converts buffered transitions into a PPO batch. lastValue
// bootstraps the value of the state following the final transition (0 when
// that transition ended an episode). Advantages are normalized.
func MakeBatch(buf *Buffer, lastValue, gamma, lambda float64) *Batch {
	return MakeBatchInto(&Batch{}, buf, lastValue, gamma, lambda)
}

// MakeBatchInto is MakeBatch writing into a reusable Batch: once dst's
// slices reach the buffer capacity, converting a drained buffer performs no
// heap allocations. It returns dst.
func MakeBatchInto(dst *Batch, buf *Buffer, lastValue, gamma, lambda float64) *Batch {
	items := buf.Items()
	n := len(items)
	dst.grow(n)
	for i, tr := range items {
		dst.rewards[i] = tr.Reward
		dst.values[i] = tr.Value
		dst.dones[i] = tr.Done
		dst.States[i] = tr.State
		dst.Actions[i] = tr.Action
		dst.OldLogProb[i] = tr.LogProb
	}
	GAEInto(dst.Advantages, dst.Returns, dst.rewards, dst.values, lastValue, dst.dones, gamma, lambda)
	NormalizeAdvantages(dst.Advantages)
	return dst
}

// MakeConstrainedBatchInto extends MakeBatchInto with per-constraint cost
// GAE for the Lagrangian update: for each constraint j it runs the same GAE
// recursion over (Cost[j], CostValue[j]) with bootstrap lastCost[j], filling
// dst.CostAdv[j]/dst.CostRet[j] and the batch-mean cost dst.CostMean[j].
// Cost advantages are deliberately NOT variance-normalized — their scale
// against the reward advantage is exactly what the Lagrange multiplier
// weighs. Reuses dst's slices like MakeBatchInto; returns dst.
func MakeConstrainedBatchInto(dst *Batch, buf *Buffer, lastValue float64, lastCost CostVec, gamma, lambda float64) *Batch {
	MakeBatchInto(dst, buf, lastValue, gamma, lambda)
	items := buf.Items()
	n := len(items)
	dst.growCosts(n)
	for j := 0; j < NumConstraints; j++ {
		costs, costValues := dst.costs[j], dst.costValues[j]
		var sum float64
		for i := range items {
			costs[i] = items[i].Cost[j]
			costValues[i] = items[i].CostValue[j]
			sum += costs[i]
		}
		GAEInto(dst.CostAdv[j], dst.CostRet[j], costs, costValues, lastCost[j], dst.dones, gamma, lambda)
		if n > 0 {
			dst.CostMean[j] = sum / float64(n)
		} else {
			dst.CostMean[j] = 0
		}
	}
	return dst
}
