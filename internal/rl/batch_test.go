package rl

import (
	"math/rand"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// seqOnly hides the BatchPolicy methods of a policy so PPO.Update takes the
// per-sample fallback path.
type seqOnly struct{ Policy }

func randomBatchFor(actor Policy, critic *nn.MLP, n int, rng *rand.Rand) *Batch {
	buf := NewBuffer(n)
	for !buf.Full() {
		s := tensor.NewVector(actor.StateDim())
		for i := range s {
			s[i] = rng.NormFloat64()
		}
		a, logp := actor.Sample(s, rng)
		buf.Add(Transition{State: s, Action: a.Clone(), Reward: rng.NormFloat64(),
			LogProb: logp, Value: critic.Forward(s)[0], Done: rng.Intn(17) == 0})
	}
	return MakeBatch(buf, 0, 0.95, 0.95)
}

// buildPPO constructs an actor/critic/PPO triple deterministically from seed.
func buildPPO(t *testing.T, arch string, seed int64, sequential bool) (*PPO, Policy, *nn.MLP) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var actor Policy
	switch arch {
	case "joint":
		actor = NewGaussianPolicy(12, 4, []int{16, 16}, 0.4, rng)
	case "shared":
		actor = NewSharedGaussianPolicy(4, 3, []int{8, 8}, 0.4, rng)
	default:
		t.Fatalf("unknown arch %q", arch)
	}
	critic := nn.NewMLP([]int{12, 16, 16, 1}, nn.Tanh, nn.Identity, rng)
	cfg := DefaultPPOConfig()
	cfg.Epochs = 3
	cfg.MinibatchSize = 7 // force a short trailing minibatch
	cfg.TargetKL = 0
	trainActor := actor
	if sequential {
		trainActor = seqOnly{actor}
	}
	p, err := NewPPO(cfg, trainActor, critic, rand.New(rand.NewSource(seed+1)))
	if err != nil {
		t.Fatal(err)
	}
	return p, actor, critic
}

// TestPPOUpdateBatchedMatchesSequential is the contract behind the batched
// kernels: running the same update through the matrix path and through the
// per-sample path must produce bit-identical statistics and parameters.
func TestPPOUpdateBatchedMatchesSequential(t *testing.T) {
	for _, arch := range []string{"joint", "shared"} {
		t.Run(arch, func(t *testing.T) {
			pb, actorB, criticB := buildPPO(t, arch, 3, false)
			ps, actorS, criticS := buildPPO(t, arch, 3, true)
			if _, ok := ps.Actor.(BatchPolicy); ok {
				t.Fatal("sequential wrapper still batch-capable")
			}
			batchRng := rand.New(rand.NewSource(99))
			batch := randomBatchFor(actorB, criticB, 33, batchRng)

			stB, err := pb.Update(batch)
			if err != nil {
				t.Fatal(err)
			}
			stS, err := ps.Update(batch)
			if err != nil {
				t.Fatal(err)
			}
			if stB != stS {
				t.Fatalf("stats diverge:\nbatched    %+v\nsequential %+v", stB, stS)
			}
			compareParams(t, "actor", actorB.Params(), actorS.Params())
			compareParams(t, "critic", criticB.Params(), criticS.Params())
		})
	}
}

func compareParams(t *testing.T, label string, a, b []nn.Param) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: param count %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		for j := range a[i].W {
			if a[i].W[j] != b[i].W[j] {
				t.Fatalf("%s %s[%d]: %v != %v", label, a[i].Name, j, a[i].W[j], b[i].W[j])
			}
		}
	}
}

// TestLogProbBatchMatchesLogProb pins the row-level equivalence of the
// batched log-density evaluation for both policy architectures.
func TestLogProbBatchMatchesLogProb(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pols := []BatchPolicy{
		NewGaussianPolicy(10, 3, []int{8}, 0.5, rng),
		NewSharedGaussianPolicy(5, 2, []int{8}, 0.5, rng),
	}
	for _, p := range pols {
		n := 9
		S := tensor.NewMatrix(n, p.StateDim())
		A := tensor.NewMatrix(n, p.ActionDim())
		for i := range S.Data {
			S.Data[i] = rng.NormFloat64()
		}
		for i := range A.Data {
			A.Data[i] = rng.NormFloat64()
		}
		out := tensor.NewVector(n)
		p.LogProbBatch(S, A, out)
		for i := 0; i < n; i++ {
			if want := p.LogProb(S.Row(i).Clone(), A.Row(i)); out[i] != want {
				t.Fatalf("row %d: batched %v vs sequential %v", i, out[i], want)
			}
		}
	}
}

// TestBackwardLogProbBatchMatchesSequential checks gradient accumulation
// equivalence, including skipped zero-upstream rows.
func TestBackwardLogProbBatchMatchesSequential(t *testing.T) {
	mk := func(seed int64) []BatchPolicy {
		rng := rand.New(rand.NewSource(seed))
		return []BatchPolicy{
			NewGaussianPolicy(6, 2, []int{8}, 0.5, rng),
			NewSharedGaussianPolicy(3, 2, []int{8}, 0.5, rng),
		}
	}
	as, bs := mk(11), mk(11)
	rng := rand.New(rand.NewSource(5))
	for pi := range as {
		pa, pb := as[pi], bs[pi]
		n := 8
		S := tensor.NewMatrix(n, pa.StateDim())
		A := tensor.NewMatrix(n, pa.ActionDim())
		up := tensor.NewVector(n)
		for i := range S.Data {
			S.Data[i] = rng.NormFloat64()
		}
		for i := range A.Data {
			A.Data[i] = rng.NormFloat64()
		}
		for i := range up {
			if i%3 == 0 {
				up[i] = 0 // exercise the skipped-row path
			} else {
				up[i] = rng.NormFloat64()
			}
		}
		pa.BackwardLogProbBatch(S, A, up)
		for i := 0; i < n; i++ {
			if up[i] != 0 {
				pb.BackwardLogProb(S.Row(i).Clone(), A.Row(i), up[i])
			}
		}
		ga, gb := pa.Params(), pb.Params()
		for i := range ga {
			for j := range ga[i].G {
				if ga[i].G[j] != gb[i].G[j] {
					t.Fatalf("policy %d param %s grad[%d]: %v != %v",
						pi, ga[i].Name, j, ga[i].G[j], gb[i].G[j])
				}
			}
		}
	}
}
