package rl

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/nn"
)

// batchOnly hides CloneGradShard so PPO/A2C take the legacy monolithic
// batched path instead of the data-parallel engine.
type batchOnly struct{ BatchPolicy }

// buildEnginePPO is buildPPO with an engine-sized minibatch (several 16-row
// gradient blocks per step) and a configurable worker count.
func buildEnginePPO(t *testing.T, arch string, seed int64, workers int) (*PPO, Policy, *nn.MLP) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var actor Policy
	switch arch {
	case "joint":
		actor = NewGaussianPolicy(12, 4, []int{16, 16}, 0.4, rng)
	case "shared":
		actor = NewSharedGaussianPolicy(4, 3, []int{8, 8}, 0.4, rng)
	default:
		t.Fatalf("unknown arch %q", arch)
	}
	critic := nn.NewMLP([]int{12, 16, 16, 1}, nn.Tanh, nn.Identity, rng)
	cfg := DefaultPPOConfig()
	cfg.Epochs = 3
	cfg.MinibatchSize = 24 // two blocks, plus a short trailing minibatch
	cfg.TargetKL = 0
	cfg.Workers = workers
	p, err := NewPPO(cfg, actor, critic, rand.New(rand.NewSource(seed+1)))
	if err != nil {
		t.Fatal(err)
	}
	return p, actor, critic
}

// TestPPOUpdateWorkerInvariance is the engine's central determinism
// contract: the fixed block decomposition plus the worker-count-independent
// merge tree make the whole training trajectory bit-identical at any worker
// count. Five updates at Workers ∈ {0, 1, 2, 8} must agree to the last bit.
func TestPPOUpdateWorkerInvariance(t *testing.T) {
	for _, arch := range []string{"joint", "shared"} {
		t.Run(arch, func(t *testing.T) {
			base, baseActor, baseCritic := buildEnginePPO(t, arch, 17, 0)
			batchRng := rand.New(rand.NewSource(23))
			batches := make([]*Batch, 5)
			for i := range batches {
				batches[i] = randomBatchFor(baseActor, baseCritic, 57, batchRng)
			}
			baseStats := make([]UpdateStats, len(batches))
			for i, b := range batches {
				st, err := base.Update(b)
				if err != nil {
					t.Fatal(err)
				}
				baseStats[i] = st
			}
			for _, workers := range []int{1, 2, 8} {
				p, actor, critic := buildEnginePPO(t, arch, 17, workers)
				for i, b := range batches {
					st, err := p.Update(b)
					if err != nil {
						t.Fatal(err)
					}
					if st != baseStats[i] {
						t.Fatalf("workers=%d update %d stats diverge:\n%+v\n%+v",
							workers, i, st, baseStats[i])
					}
				}
				compareParams(t, "actor", actor.Params(), baseActor.Params())
				compareParams(t, "critic", critic.Params(), baseCritic.Params())
			}
		})
	}
}

// TestA2CUpdateWorkerInvariance: the same contract for the A2C engine path.
func TestA2CUpdateWorkerInvariance(t *testing.T) {
	build := func(workers int) (*A2C, Policy, *nn.MLP) {
		rng := rand.New(rand.NewSource(31))
		actor := NewGaussianPolicy(10, 3, []int{16}, 0.4, rng)
		critic := nn.NewMLP([]int{10, 16, 1}, nn.Tanh, nn.Identity, rng)
		cfg := DefaultA2CConfig()
		cfg.Workers = workers
		a, err := NewA2C(cfg, actor, critic)
		if err != nil {
			t.Fatal(err)
		}
		return a, actor, critic
	}
	base, baseActor, baseCritic := build(0)
	batchRng := rand.New(rand.NewSource(41))
	batches := make([]*Batch, 5)
	for i := range batches {
		batches[i] = randomBatchFor(baseActor, baseCritic, 53, batchRng)
	}
	baseStats := make([]UpdateStats, len(batches))
	for i, b := range batches {
		st, err := base.Update(b)
		if err != nil {
			t.Fatal(err)
		}
		baseStats[i] = st
	}
	for _, workers := range []int{1, 2, 8} {
		a, actor, critic := build(workers)
		for i, b := range batches {
			st, err := a.Update(b)
			if err != nil {
				t.Fatal(err)
			}
			if st != baseStats[i] {
				t.Fatalf("workers=%d update %d stats diverge:\n%+v\n%+v",
					workers, i, st, baseStats[i])
			}
		}
		compareParams(t, "actor", actor.Params(), baseActor.Params())
		compareParams(t, "critic", critic.Params(), baseCritic.Params())
	}
}

// TestPPOUpdateEngineMatchesLegacyBatched bounds the drift between the
// engine and the monolithic batched path. Per-row forward bits are identical
// (row-independent kernels), but gradient summation grouping differs — the
// engine sums 16-row blocks then merges, the legacy path sums the whole
// minibatch in sample order — so parameters may differ at rounding level.
func TestPPOUpdateEngineMatchesLegacyBatched(t *testing.T) {
	const tol = 1e-8
	pe, actorE, criticE := buildEnginePPO(t, "joint", 59, 0)
	pl, actorL, criticL := buildEnginePPO(t, "joint", 59, 0)
	pl.Actor = batchOnly{actorL.(BatchPolicy)}
	if _, ok := pl.Actor.(ShardedPolicy); ok {
		t.Fatal("legacy wrapper still shard-capable")
	}
	batch := randomBatchFor(actorE, criticE, 57, rand.New(rand.NewSource(61)))
	stE, err := pe.Update(batch)
	if err != nil {
		t.Fatal(err)
	}
	stL, err := pl.Update(batch)
	if err != nil {
		t.Fatal(err)
	}
	if stE.EpochsRun != stL.EpochsRun || stE.SkippedMinibatches != stL.SkippedMinibatches ||
		stE.Restored != stL.Restored || stE.ClipFraction != stL.ClipFraction {
		t.Fatalf("discrete stats diverge:\nengine %+v\nlegacy %+v", stE, stL)
	}
	for _, d := range []struct {
		name string
		e, l float64
	}{
		{"policy", stE.PolicyLoss, stL.PolicyLoss},
		{"value", stE.ValueLoss, stL.ValueLoss},
		{"kl", stE.ApproxKL, stL.ApproxKL},
	} {
		if diff := math.Abs(d.e - d.l); diff > tol*(1+math.Abs(d.l)) {
			t.Fatalf("%s loss drift %v: engine %v legacy %v", d.name, diff, d.e, d.l)
		}
	}
	checkClose := func(label string, a, b []nn.Param) {
		t.Helper()
		for i := range a {
			for j := range a[i].W {
				diff := math.Abs(a[i].W[j] - b[i].W[j])
				if diff > tol*(1+math.Abs(b[i].W[j])) {
					t.Fatalf("%s %s[%d] drift %v: %v vs %v",
						label, a[i].Name, j, diff, a[i].W[j], b[i].W[j])
				}
			}
		}
	}
	checkClose("actor", actorE.Params(), actorL.Params())
	checkClose("critic", criticE.Params(), criticL.Params())
}

// TestMakeBatchIntoMatchesMakeBatch pins the reusable batch conversion to
// the allocating one, including reuse across differently-sized buffers.
func TestMakeBatchIntoMatchesMakeBatch(t *testing.T) {
	actorRng := rand.New(rand.NewSource(72))
	actor := NewGaussianPolicy(6, 2, []int{8}, 0.5, actorRng)
	critic := nn.NewMLP([]int{6, 8, 1}, nn.Tanh, nn.Identity, actorRng)
	dst := &Batch{}
	for _, n := range []int{19, 7, 31} {
		want := randomBatchFor(actor, critic, n, rand.New(rand.NewSource(int64(n))))
		buf := NewBuffer(n)
		for i := 0; i < n; i++ {
			buf.Add(Transition{
				State:   want.States[i],
				Action:  want.Actions[i],
				LogProb: want.OldLogProb[i],
				Reward:  float64(i%5) - 2,
				Value:   float64(i%3) * 0.25,
				Done:    i%7 == 0,
			})
		}
		got := MakeBatchInto(dst, buf, 0.5, 0.95, 0.9)
		ref := MakeBatch(buf, 0.5, 0.95, 0.9)
		if got != dst {
			t.Fatal("MakeBatchInto must return dst")
		}
		if got.Len() != ref.Len() {
			t.Fatalf("len %d vs %d", got.Len(), ref.Len())
		}
		for i := 0; i < ref.Len(); i++ {
			if got.OldLogProb[i] != ref.OldLogProb[i] ||
				got.Advantages[i] != ref.Advantages[i] ||
				got.Returns[i] != ref.Returns[i] {
				t.Fatalf("n=%d row %d diverges", n, i)
			}
		}
	}
}
