package rl

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/nn"
)

// This file provides the serializable state snapshots crash-safe training
// needs from the RL layer: a replayable RNG source, in-place policy
// restores, and access to the optimizers inside PPO/A2C so their Adam
// moments can ride along in a checkpoint.

// CountingSource wraps math/rand's default source and counts every draw, so
// the generator's exact position can be checkpointed as (seed, draws) and
// restored by replaying that many draws. The wrapper is exact — rand.New
// uses the Source64 fast path, and the default source advances its state by
// exactly one step per Int63 or Uint64 call — so a *rand.Rand built on a
// CountingSource produces the same stream as one built on rand.NewSource
// with the same seed.
type CountingSource struct {
	src   rand.Source64
	seed  int64
	draws uint64
}

var _ rand.Source64 = (*CountingSource)(nil)

// NewCountingSource returns a counting source seeded like rand.NewSource.
func NewCountingSource(seed int64) *CountingSource {
	return &CountingSource{src: rand.NewSource(seed).(rand.Source64), seed: seed}
}

// Int63 implements rand.Source.
func (c *CountingSource) Int63() int64 {
	c.draws++
	return c.src.Int63()
}

// Uint64 implements rand.Source64.
func (c *CountingSource) Uint64() uint64 {
	c.draws++
	return c.src.Uint64()
}

// Seed implements rand.Source, resetting the draw count.
func (c *CountingSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.seed = seed
	c.draws = 0
}

// RNGState pins a generator's exact position in its stream.
type RNGState struct {
	Seed  int64  `json:"seed"`
	Draws uint64 `json:"draws"`
}

// State captures the source's current position.
func (c *CountingSource) State() RNGState {
	return RNGState{Seed: c.seed, Draws: c.draws}
}

// Restore rewinds the source to a captured position by reseeding and
// replaying the recorded number of draws. Cost is linear in Draws, which is
// bounded by a few draws per training episode — negligible next to the
// training compute the checkpoint saves.
func (c *CountingSource) Restore(st RNGState) {
	c.Seed(st.Seed)
	for i := uint64(0); i < st.Draws; i++ {
		c.src.Uint64()
	}
	c.draws = st.Draws
}

// Policy architecture tags used in PolicyState.
const (
	policyArchJoint  = "gaussian"
	policyArchShared = "shared-gaussian"
)

// PolicyState is a serializable snapshot of either built-in policy.
type PolicyState struct {
	Arch   string      `json:"arch"`
	N      int         `json:"n,omitempty"` // device count (shared arch only)
	Net    nn.MLPState `json:"net"`
	LogStd []float64   `json:"log_std"`
}

// CapturePolicy snapshots a policy's parameters.
func CapturePolicy(p Policy) (PolicyState, error) {
	switch q := p.(type) {
	case *GaussianPolicy:
		return PolicyState{
			Arch:   policyArchJoint,
			Net:    q.Net.State(),
			LogStd: append([]float64(nil), q.LogStd...),
		}, nil
	case *SharedGaussianPolicy:
		return PolicyState{
			Arch:   policyArchShared,
			N:      q.N,
			Net:    q.Net.State(),
			LogStd: append([]float64(nil), q.LogStd...),
		}, nil
	default:
		return PolicyState{}, fmt.Errorf("rl: cannot checkpoint policy type %T", p)
	}
}

// RestorePolicy copies a snapshot's parameters into an existing policy of
// the same architecture, in place: the policy's weight slices keep their
// identity so optimizer moment maps keyed on them stay valid.
func RestorePolicy(p Policy, st PolicyState) error {
	switch q := p.(type) {
	case *GaussianPolicy:
		if st.Arch != policyArchJoint {
			return fmt.Errorf("rl: checkpoint policy arch %q, want %q", st.Arch, policyArchJoint)
		}
		if len(st.LogStd) != len(q.LogStd) {
			return fmt.Errorf("rl: checkpoint has %d action dims, policy has %d", len(st.LogStd), len(q.LogStd))
		}
		if err := q.Net.LoadState(st.Net); err != nil {
			return err
		}
		copy(q.LogStd, st.LogStd)
		q.lastS, q.lastMu = nil, nil
	case *SharedGaussianPolicy:
		if st.Arch != policyArchShared {
			return fmt.Errorf("rl: checkpoint policy arch %q, want %q", st.Arch, policyArchShared)
		}
		if st.N != q.N {
			return fmt.Errorf("rl: checkpoint has %d devices, policy has %d", st.N, q.N)
		}
		if len(st.LogStd) != len(q.LogStd) {
			return fmt.Errorf("rl: checkpoint log-σ length %d, policy has %d", len(st.LogStd), len(q.LogStd))
		}
		if err := q.Net.LoadState(st.Net); err != nil {
			return err
		}
		copy(q.LogStd, st.LogStd)
		q.lastS, q.lastMu = nil, nil
	default:
		return fmt.Errorf("rl: cannot restore policy type %T", p)
	}
	return nil
}

// Optimizers exposes PPO's actor and critic Adam instances for
// checkpointing.
func (p *PPO) Optimizers() (actor, critic *nn.Adam) {
	return p.actorOpt, p.criticOpt
}

// Optimizers exposes A2C's actor and critic Adam instances for
// checkpointing.
func (a *A2C) Optimizers() (actor, critic *nn.Adam) {
	return a.actorOpt, a.criticOpt
}

// NormalizerState is a serializable snapshot of an observation normalizer.
type NormalizerState struct {
	Mean  []float64 `json:"mean"`
	M2    []float64 `json:"m2"`
	Count float64   `json:"count"`
	Clip  float64   `json:"clip"`
}

// Dim returns the snapshot's observation dimensionality.
func (st NormalizerState) Dim() int { return len(st.Mean) }

// StdDev returns the running standard deviation of dimension i under the
// same floor rules as ObsNormalizer.Std: 1 before any variance information
// exists, so consumers (the guard's OOD z-scores) divide by exactly the
// scale training normalization used.
func (st NormalizerState) StdDev(i int) float64 {
	if st.Count < 2 {
		return 1
	}
	v := st.M2[i] / st.Count
	if v < 1e-8 {
		return 1
	}
	return math.Sqrt(v)
}

// CaptureNormalizer snapshots a normalizer; nil maps to the zero state
// (Mean nil), letting checkpoints of norm-free runs round-trip.
func CaptureNormalizer(n *ObsNormalizer) NormalizerState {
	if n == nil {
		return NormalizerState{}
	}
	return NormalizerState{
		Mean:  append([]float64(nil), n.Mean...),
		M2:    append([]float64(nil), n.M2...),
		Count: n.Count,
		Clip:  n.Clip,
	}
}

// RestoreNormalizer copies a snapshot into an existing normalizer.
func RestoreNormalizer(n *ObsNormalizer, st NormalizerState) error {
	if n == nil {
		if st.Mean == nil {
			return nil
		}
		return fmt.Errorf("rl: checkpoint has a normalizer, trainer does not")
	}
	if st.Mean == nil {
		return fmt.Errorf("rl: checkpoint has no normalizer state, trainer expects one")
	}
	if len(st.Mean) != n.Dim() || len(st.M2) != n.Dim() {
		return fmt.Errorf("rl: checkpoint normalizer dim %d, trainer has %d", len(st.Mean), n.Dim())
	}
	copy(n.Mean, st.Mean)
	copy(n.M2, st.M2)
	n.Count = st.Count
	n.Clip = st.Clip
	return nil
}
