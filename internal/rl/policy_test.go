package rl

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/testutil"
)

func newShared(t *testing.T, n, perDev int, seed int64) *SharedGaussianPolicy {
	t.Helper()
	return NewSharedGaussianPolicy(n, perDev, []int{6}, 0.5, rand.New(rand.NewSource(seed)))
}

func TestSharedPolicyDims(t *testing.T) {
	p := newShared(t, 5, 4, 1)
	if p.StateDim() != 20 || p.ActionDim() != 5 {
		t.Fatalf("dims = %d/%d", p.StateDim(), p.ActionDim())
	}
	if len(p.LogStd) != 1 {
		t.Fatal("shared policy should have one logstd")
	}
}

func TestSharedPolicyConstructorPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"n":      func() { NewSharedGaussianPolicy(0, 3, []int{4}, 0.5, rand.New(rand.NewSource(1))) },
		"perDev": func() { NewSharedGaussianPolicy(3, 0, []int{4}, 0.5, rand.New(rand.NewSource(1))) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSharedPolicyWeightSharing(t *testing.T) {
	// Two devices with identical history slices must get identical means.
	p := newShared(t, 2, 3, 2)
	s := tensor.Vector{0.1, 0.2, 0.3, 0.1, 0.2, 0.3}
	mu := p.Mean(s)
	if mu[0] != mu[1] {
		t.Fatalf("identical inputs gave different means: %v", mu)
	}
	// Different slices give different means (almost surely).
	s2 := tensor.Vector{0.1, 0.2, 0.3, -0.9, 0.5, 0.0}
	mu2 := p.Mean(s2)
	if mu2[0] == mu2[1] {
		t.Fatal("distinct inputs gave identical means")
	}
}

func TestSharedPolicyLogProbMatchesDensity(t *testing.T) {
	p := newShared(t, 3, 2, 3)
	s := tensor.Vector{0.4, -0.2, 0.1, 0.9, -0.5, 0.3}
	a := tensor.Vector{0.2, -0.1, 0.4}
	mu := p.Mean(s)
	sigma := math.Exp(p.LogStd[0])
	want := 0.0
	for i := range a {
		z := (a[i] - mu[i]) / sigma
		want += -0.5*z*z - p.LogStd[0] - 0.5*math.Log(2*math.Pi)
	}
	if got := p.LogProb(s, a); !testutil.Within(got, want, 1e-12) {
		t.Fatalf("LogProb = %v want %v", got, want)
	}
}

func TestSharedPolicySampleStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := newShared(t, 2, 2, 4)
	s := tensor.Vector{0.3, 0.3, -0.3, -0.3}
	mu := p.Mean(s).Clone()
	var sum0 float64
	const n = 8000
	for i := 0; i < n; i++ {
		a, logp := p.Sample(s, rng)
		if math.IsNaN(logp) {
			t.Fatal("NaN logp")
		}
		sum0 += a[0]
	}
	if !testutil.Within(sum0/n, mu[0], 0.05) {
		t.Fatalf("sample mean %v vs μ %v", sum0/n, mu[0])
	}
}

func TestSharedPolicyGradLogStd(t *testing.T) {
	p := newShared(t, 3, 2, 5)
	s := tensor.Vector{0.4, -0.2, 0.1, 0.9, -0.5, 0.3}
	a := tensor.Vector{0.2, -0.1, 0.4}
	p.ZeroGrad()
	p.BackwardLogProb(s, a, 1)
	h := 1e-6
	orig := p.LogStd[0]
	p.LogStd[0] = orig + h
	lp := p.LogProb(s, a)
	p.LogStd[0] = orig - h
	lm := p.LogProb(s, a)
	p.LogStd[0] = orig
	num := (lp - lm) / (2 * h)
	if !testutil.Close(p.GLogStd[0], num, 1e-4, 1e-4) {
		t.Fatalf("dlogσ analytic %v numeric %v", p.GLogStd[0], num)
	}
}

func TestSharedPolicyGradNet(t *testing.T) {
	p := newShared(t, 2, 3, 6)
	s := tensor.Vector{0.1, -0.4, 0.2, 0.7, 0.0, -0.3}
	a := tensor.Vector{0.5, -0.2}
	p.ZeroGrad()
	p.BackwardLogProb(s, a, 1)
	params := p.Net.Params()
	h := 1e-6
	for pi := range params {
		for _, i := range []int{0, len(params[pi].W) - 1} {
			orig := params[pi].W[i]
			params[pi].W[i] = orig + h
			lp := p.LogProb(s, a)
			params[pi].W[i] = orig - h
			lm := p.LogProb(s, a)
			params[pi].W[i] = orig
			num := (lp - lm) / (2 * h)
			if !testutil.Close(params[pi].G[i], num, 1e-4, 1e-4) {
				t.Fatalf("param %q[%d]: analytic %v numeric %v", params[pi].Name, i, params[pi].G[i], num)
			}
		}
	}
}

func TestSharedPolicyEntropyAndGrad(t *testing.T) {
	p := newShared(t, 4, 2, 7)
	want := 4 * (p.LogStd[0] + 0.5*math.Log(2*math.Pi*math.E))
	if !testutil.Within(p.Entropy(), want, 1e-9) {
		t.Fatalf("entropy = %v want %v", p.Entropy(), want)
	}
	p.ZeroGrad()
	p.AddEntropyGrad(0.01)
	if !testutil.Within(p.GLogStd[0], 0.04, 1e-12) {
		t.Fatalf("entropy grad = %v want 0.04 (coef·N)", p.GLogStd[0])
	}
}

func TestSharedPolicyCloneCopy(t *testing.T) {
	p := newShared(t, 2, 2, 8)
	c := p.ClonePolicy()
	s := tensor.Vector{0.1, 0.2, 0.3, 0.4}
	a := tensor.Vector{0.1, -0.1}
	if !testutil.Within(p.LogProb(s, a), c.LogProb(s, a), 1e-15) {
		t.Fatal("clone differs")
	}
	p.LogStd[0] += 0.3
	p.Net.Params()[0].W[0] += 0.2
	if testutil.Within(p.LogProb(s, a), c.LogProb(s, a), 1e-12) {
		t.Fatal("clone shares storage")
	}
	c.CopyFrom(p)
	if !testutil.Within(p.LogProb(s, a), c.LogProb(s, a), 1e-15) {
		t.Fatal("CopyFrom failed")
	}
}

func TestCopyFromTypeMismatchPanics(t *testing.T) {
	shared := newShared(t, 2, 2, 9)
	joint := NewGaussianPolicy(4, 2, []int{4}, 0.5, rand.New(rand.NewSource(9)))
	for name, f := range map[string]func(){
		"shared←joint": func() { shared.CopyFrom(joint) },
		"joint←shared": func() { joint.CopyFrom(shared) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSharedPolicyStateMismatchPanics(t *testing.T) {
	p := newShared(t, 2, 2, 10)
	for name, f := range map[string]func(){
		"mean":     func() { p.Mean(tensor.Vector{1}) },
		"backward": func() { p.BackwardLogProb(tensor.NewVector(4), tensor.Vector{1}, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestPPOWithSharedPolicyImproves(t *testing.T) {
	// Contextual bandit with per-device structure: device i's optimal
	// action is 0.5·s_i. The shared policy must learn the mapping once and
	// apply it to every device.
	rng := rand.New(rand.NewSource(11))
	const n, perDev = 4, 1
	actor := NewSharedGaussianPolicy(n, perDev, []int{12}, 0.4, rng)
	critic := nn.NewMLP([]int{n * perDev, 16, 1}, nn.Tanh, nn.Identity, rng)
	cfg := DefaultPPOConfig()
	cfg.ActorLR = 1e-2
	cfg.CriticLR = 1e-2
	cfg.TargetKL = 0
	agent, err := NewPPO(cfg, actor, critic, rng)
	if err != nil {
		t.Fatal(err)
	}
	reward := func(s, a tensor.Vector) float64 {
		var r float64
		for i := 0; i < n; i++ {
			d := a[i] - 0.5*s[i]
			r -= d * d
		}
		return r / n
	}
	avg := func() float64 {
		var sum float64
		for i := 0; i < 300; i++ {
			s := tensor.NewVector(n)
			for j := range s {
				s[j] = rng.Float64()*2 - 1
			}
			a, _ := actor.Sample(s, rng)
			sum += reward(s, a)
		}
		return sum / 300
	}
	before := avg()
	for round := 0; round < 25; round++ {
		buf := NewBuffer(128)
		for !buf.Full() {
			s := tensor.NewVector(n)
			for j := range s {
				s[j] = rng.Float64()*2 - 1
			}
			a, logp := actor.Sample(s, rng)
			buf.Add(Transition{State: s, Action: a.Clone(), Reward: reward(s, a),
				LogProb: logp, Value: agent.Value(s), Done: true})
		}
		if _, err := agent.Update(MakeBatch(buf, 0, cfg.Gamma, cfg.Lambda)); err != nil {
			t.Fatal(err)
		}
	}
	after := avg()
	if after <= before {
		t.Fatalf("shared-policy PPO did not improve: %v → %v", before, after)
	}
}
