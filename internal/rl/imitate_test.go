package rl

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// imitateFixture builds a policy, critic and a synthetic (S, A) batch.
func imitateFixture(rows int) (*GaussianPolicy, *nn.MLP, *tensor.Matrix, *tensor.Matrix) {
	rng := rand.New(rand.NewSource(5))
	p := NewGaussianPolicy(6, 3, []int{16}, 0.4, rng)
	critic := nn.NewMLP([]int{6, 16, 1}, nn.Tanh, nn.Identity, rng)
	S := tensor.NewMatrix(rows, 6)
	A := tensor.NewMatrix(rows, 3)
	for i := range S.Data {
		S.Data[i] = rng.NormFloat64()
	}
	for i := range A.Data {
		A.Data[i] = 0.8 * math.Tanh(rng.NormFloat64())
	}
	return p, critic, S, A
}

// TestImitatorReducesNLL: behavior cloning must actually fit the batch.
func TestImitatorReducesNLL(t *testing.T) {
	p, critic, S, A := imitateFixture(50)
	im, err := NewImitator(p, critic, 1e-2, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	first, err := im.Step(S, A)
	if err != nil {
		t.Fatal(err)
	}
	var last float64
	for e := 0; e < 60; e++ {
		if last, err = im.Step(S, A); err != nil {
			t.Fatal(err)
		}
	}
	if !(last < first) {
		t.Fatalf("NLL did not decrease: first %v, last %v", first, last)
	}
}

// TestImitatorWorkerInvariance: the imitation update inherits the shard
// engine's contract — parameters after K steps are bit-identical at any
// worker count.
func TestImitatorWorkerInvariance(t *testing.T) {
	run := func(workers int) []nn.Param {
		p, critic, S, A := imitateFixture(50)
		im, err := NewImitator(p, critic, 1e-2, 0.5, workers)
		if err != nil {
			t.Fatal(err)
		}
		for e := 0; e < 10; e++ {
			if _, err := im.Step(S, A); err != nil {
				t.Fatal(err)
			}
		}
		return p.Params()
	}
	ref := run(1)
	for _, w := range []int{2, 8} {
		got := run(w)
		if len(got) != len(ref) {
			t.Fatalf("param count %d vs %d", len(got), len(ref))
		}
		for pi := range ref {
			for k := range ref[pi].W {
				if got[pi].W[k] != ref[pi].W[k] {
					t.Fatalf("workers=%d: param %d element %d = %v, want %v (bit-exact)",
						w, pi, k, got[pi].W[k], ref[pi].W[k])
				}
			}
		}
	}
}

// TestImitatorRejectsBadBatches: dimension mismatches and empty batches
// error before touching parameters.
func TestImitatorRejectsBadBatches(t *testing.T) {
	p, critic, S, A := imitateFixture(10)
	im, err := NewImitator(p, critic, 1e-2, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := im.Step(tensor.NewMatrix(0, 6), tensor.NewMatrix(0, 3)); err == nil {
		t.Fatal("accepted empty batch")
	}
	if _, err := im.Step(S, tensor.NewMatrix(9, 3)); err == nil {
		t.Fatal("accepted row mismatch")
	}
	if _, err := im.Step(tensor.NewMatrix(10, 7), A); err == nil {
		t.Fatal("accepted state dim mismatch")
	}
	bad := tensor.NewMatrix(10, 3)
	bad.Data[0] = math.NaN()
	if _, err := im.Step(S, bad); err == nil {
		t.Fatal("accepted NaN action without erroring")
	}
}
